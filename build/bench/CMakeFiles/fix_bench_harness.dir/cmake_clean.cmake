file(REMOVE_RECURSE
  "CMakeFiles/fix_bench_harness.dir/harness.cc.o"
  "CMakeFiles/fix_bench_harness.dir/harness.cc.o.d"
  "libfix_bench_harness.a"
  "libfix_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
