file(REMOVE_RECURSE
  "libfix_bench_harness.a"
)
