# Empty dependencies file for fix_bench_harness.
# This may be replaced when dependencies are built.
