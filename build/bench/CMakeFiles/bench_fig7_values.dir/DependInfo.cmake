
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_values.cc" "bench/CMakeFiles/bench_fig7_values.dir/bench_fig7_values.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_values.dir/bench_fig7_values.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/fix_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/fix_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/fix_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/fix_query.dir/DependInfo.cmake"
  "/root/repo/build/src/spectral/CMakeFiles/fix_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fix_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fix_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/fix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
