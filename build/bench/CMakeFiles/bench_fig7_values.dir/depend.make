# Empty dependencies file for bench_fig7_values.
# This may be replaced when dependencies are built.
