file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_values.dir/bench_fig7_values.cc.o"
  "CMakeFiles/bench_fig7_values.dir/bench_fig7_values.cc.o.d"
  "bench_fig7_values"
  "bench_fig7_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
