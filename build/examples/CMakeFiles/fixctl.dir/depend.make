# Empty dependencies file for fixctl.
# This may be replaced when dependencies are built.
