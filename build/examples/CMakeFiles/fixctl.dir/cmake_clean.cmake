file(REMOVE_RECURSE
  "CMakeFiles/fixctl.dir/fixctl.cpp.o"
  "CMakeFiles/fixctl.dir/fixctl.cpp.o.d"
  "fixctl"
  "fixctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
