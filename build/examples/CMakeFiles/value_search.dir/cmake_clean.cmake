file(REMOVE_RECURSE
  "CMakeFiles/value_search.dir/value_search.cpp.o"
  "CMakeFiles/value_search.dir/value_search.cpp.o.d"
  "value_search"
  "value_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
