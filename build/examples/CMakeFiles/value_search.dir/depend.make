# Empty dependencies file for value_search.
# This may be replaced when dependencies are built.
