# Empty compiler generated dependencies file for document_collection.
# This may be replaced when dependencies are built.
