file(REMOVE_RECURSE
  "CMakeFiles/document_collection.dir/document_collection.cpp.o"
  "CMakeFiles/document_collection.dir/document_collection.cpp.o.d"
  "document_collection"
  "document_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
