# Empty dependencies file for large_document.
# This may be replaced when dependencies are built.
