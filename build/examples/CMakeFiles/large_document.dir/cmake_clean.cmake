file(REMOVE_RECURSE
  "CMakeFiles/large_document.dir/large_document.cpp.o"
  "CMakeFiles/large_document.dir/large_document.cpp.o.d"
  "large_document"
  "large_document.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_document.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
