# Empty compiler generated dependencies file for fix_common.
# This may be replaced when dependencies are built.
