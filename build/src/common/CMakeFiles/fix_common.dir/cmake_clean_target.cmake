file(REMOVE_RECURSE
  "libfix_common.a"
)
