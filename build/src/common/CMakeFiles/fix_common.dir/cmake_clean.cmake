file(REMOVE_RECURSE
  "CMakeFiles/fix_common.dir/logging.cc.o"
  "CMakeFiles/fix_common.dir/logging.cc.o.d"
  "CMakeFiles/fix_common.dir/rng.cc.o"
  "CMakeFiles/fix_common.dir/rng.cc.o.d"
  "CMakeFiles/fix_common.dir/status.cc.o"
  "CMakeFiles/fix_common.dir/status.cc.o.d"
  "libfix_common.a"
  "libfix_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
