file(REMOVE_RECURSE
  "libfix_spectral.a"
)
