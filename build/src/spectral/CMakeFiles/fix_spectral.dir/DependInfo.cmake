
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spectral/skew_matrix.cc" "src/spectral/CMakeFiles/fix_spectral.dir/skew_matrix.cc.o" "gcc" "src/spectral/CMakeFiles/fix_spectral.dir/skew_matrix.cc.o.d"
  "/root/repo/src/spectral/spectrum.cc" "src/spectral/CMakeFiles/fix_spectral.dir/spectrum.cc.o" "gcc" "src/spectral/CMakeFiles/fix_spectral.dir/spectrum.cc.o.d"
  "/root/repo/src/spectral/sym_eigen.cc" "src/spectral/CMakeFiles/fix_spectral.dir/sym_eigen.cc.o" "gcc" "src/spectral/CMakeFiles/fix_spectral.dir/sym_eigen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fix_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fix_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/fix_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
