file(REMOVE_RECURSE
  "CMakeFiles/fix_spectral.dir/skew_matrix.cc.o"
  "CMakeFiles/fix_spectral.dir/skew_matrix.cc.o.d"
  "CMakeFiles/fix_spectral.dir/spectrum.cc.o"
  "CMakeFiles/fix_spectral.dir/spectrum.cc.o.d"
  "CMakeFiles/fix_spectral.dir/sym_eigen.cc.o"
  "CMakeFiles/fix_spectral.dir/sym_eigen.cc.o.d"
  "libfix_spectral.a"
  "libfix_spectral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
