# Empty dependencies file for fix_spectral.
# This may be replaced when dependencies are built.
