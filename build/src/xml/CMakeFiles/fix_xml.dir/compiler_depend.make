# Empty compiler generated dependencies file for fix_xml.
# This may be replaced when dependencies are built.
