file(REMOVE_RECURSE
  "libfix_xml.a"
)
