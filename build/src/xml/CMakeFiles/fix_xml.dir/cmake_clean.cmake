file(REMOVE_RECURSE
  "CMakeFiles/fix_xml.dir/doc_stats.cc.o"
  "CMakeFiles/fix_xml.dir/doc_stats.cc.o.d"
  "CMakeFiles/fix_xml.dir/document.cc.o"
  "CMakeFiles/fix_xml.dir/document.cc.o.d"
  "CMakeFiles/fix_xml.dir/parser.cc.o"
  "CMakeFiles/fix_xml.dir/parser.cc.o.d"
  "CMakeFiles/fix_xml.dir/sax.cc.o"
  "CMakeFiles/fix_xml.dir/sax.cc.o.d"
  "CMakeFiles/fix_xml.dir/serializer.cc.o"
  "CMakeFiles/fix_xml.dir/serializer.cc.o.d"
  "libfix_xml.a"
  "libfix_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
