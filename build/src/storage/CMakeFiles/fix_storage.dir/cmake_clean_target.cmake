file(REMOVE_RECURSE
  "libfix_storage.a"
)
