file(REMOVE_RECURSE
  "CMakeFiles/fix_storage.dir/btree.cc.o"
  "CMakeFiles/fix_storage.dir/btree.cc.o.d"
  "CMakeFiles/fix_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/fix_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/fix_storage.dir/page_file.cc.o"
  "CMakeFiles/fix_storage.dir/page_file.cc.o.d"
  "CMakeFiles/fix_storage.dir/record_store.cc.o"
  "CMakeFiles/fix_storage.dir/record_store.cc.o.d"
  "libfix_storage.a"
  "libfix_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
