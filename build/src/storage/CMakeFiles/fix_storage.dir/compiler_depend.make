# Empty compiler generated dependencies file for fix_storage.
# This may be replaced when dependencies are built.
