# Empty compiler generated dependencies file for fix_core.
# This may be replaced when dependencies are built.
