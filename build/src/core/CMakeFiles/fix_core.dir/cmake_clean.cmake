file(REMOVE_RECURSE
  "CMakeFiles/fix_core.dir/corpus.cc.o"
  "CMakeFiles/fix_core.dir/corpus.cc.o.d"
  "CMakeFiles/fix_core.dir/database.cc.o"
  "CMakeFiles/fix_core.dir/database.cc.o.d"
  "CMakeFiles/fix_core.dir/fix_index.cc.o"
  "CMakeFiles/fix_core.dir/fix_index.cc.o.d"
  "CMakeFiles/fix_core.dir/fix_query.cc.o"
  "CMakeFiles/fix_core.dir/fix_query.cc.o.d"
  "CMakeFiles/fix_core.dir/histogram.cc.o"
  "CMakeFiles/fix_core.dir/histogram.cc.o.d"
  "CMakeFiles/fix_core.dir/metrics.cc.o"
  "CMakeFiles/fix_core.dir/metrics.cc.o.d"
  "CMakeFiles/fix_core.dir/persist.cc.o"
  "CMakeFiles/fix_core.dir/persist.cc.o.d"
  "CMakeFiles/fix_core.dir/spatial_probe.cc.o"
  "CMakeFiles/fix_core.dir/spatial_probe.cc.o.d"
  "libfix_core.a"
  "libfix_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
