
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/corpus.cc" "src/core/CMakeFiles/fix_core.dir/corpus.cc.o" "gcc" "src/core/CMakeFiles/fix_core.dir/corpus.cc.o.d"
  "/root/repo/src/core/database.cc" "src/core/CMakeFiles/fix_core.dir/database.cc.o" "gcc" "src/core/CMakeFiles/fix_core.dir/database.cc.o.d"
  "/root/repo/src/core/fix_index.cc" "src/core/CMakeFiles/fix_core.dir/fix_index.cc.o" "gcc" "src/core/CMakeFiles/fix_core.dir/fix_index.cc.o.d"
  "/root/repo/src/core/fix_query.cc" "src/core/CMakeFiles/fix_core.dir/fix_query.cc.o" "gcc" "src/core/CMakeFiles/fix_core.dir/fix_query.cc.o.d"
  "/root/repo/src/core/histogram.cc" "src/core/CMakeFiles/fix_core.dir/histogram.cc.o" "gcc" "src/core/CMakeFiles/fix_core.dir/histogram.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/fix_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/fix_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/persist.cc" "src/core/CMakeFiles/fix_core.dir/persist.cc.o" "gcc" "src/core/CMakeFiles/fix_core.dir/persist.cc.o.d"
  "/root/repo/src/core/spatial_probe.cc" "src/core/CMakeFiles/fix_core.dir/spatial_probe.cc.o" "gcc" "src/core/CMakeFiles/fix_core.dir/spatial_probe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fix_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/fix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fix_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fix_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/spectral/CMakeFiles/fix_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/fix_query.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
