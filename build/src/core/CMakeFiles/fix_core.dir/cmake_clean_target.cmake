file(REMOVE_RECURSE
  "libfix_core.a"
)
