file(REMOVE_RECURSE
  "CMakeFiles/fix_query.dir/compile.cc.o"
  "CMakeFiles/fix_query.dir/compile.cc.o.d"
  "CMakeFiles/fix_query.dir/match.cc.o"
  "CMakeFiles/fix_query.dir/match.cc.o.d"
  "CMakeFiles/fix_query.dir/structural_join.cc.o"
  "CMakeFiles/fix_query.dir/structural_join.cc.o.d"
  "CMakeFiles/fix_query.dir/twig_query.cc.o"
  "CMakeFiles/fix_query.dir/twig_query.cc.o.d"
  "CMakeFiles/fix_query.dir/xpath_parser.cc.o"
  "CMakeFiles/fix_query.dir/xpath_parser.cc.o.d"
  "libfix_query.a"
  "libfix_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
