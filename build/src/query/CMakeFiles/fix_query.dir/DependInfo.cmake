
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/compile.cc" "src/query/CMakeFiles/fix_query.dir/compile.cc.o" "gcc" "src/query/CMakeFiles/fix_query.dir/compile.cc.o.d"
  "/root/repo/src/query/match.cc" "src/query/CMakeFiles/fix_query.dir/match.cc.o" "gcc" "src/query/CMakeFiles/fix_query.dir/match.cc.o.d"
  "/root/repo/src/query/structural_join.cc" "src/query/CMakeFiles/fix_query.dir/structural_join.cc.o" "gcc" "src/query/CMakeFiles/fix_query.dir/structural_join.cc.o.d"
  "/root/repo/src/query/twig_query.cc" "src/query/CMakeFiles/fix_query.dir/twig_query.cc.o" "gcc" "src/query/CMakeFiles/fix_query.dir/twig_query.cc.o.d"
  "/root/repo/src/query/xpath_parser.cc" "src/query/CMakeFiles/fix_query.dir/xpath_parser.cc.o" "gcc" "src/query/CMakeFiles/fix_query.dir/xpath_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fix_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/fix_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fix_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
