# Empty compiler generated dependencies file for fix_query.
# This may be replaced when dependencies are built.
