file(REMOVE_RECURSE
  "libfix_query.a"
)
