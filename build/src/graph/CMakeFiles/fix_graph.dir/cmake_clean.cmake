file(REMOVE_RECURSE
  "CMakeFiles/fix_graph.dir/bisim_builder.cc.o"
  "CMakeFiles/fix_graph.dir/bisim_builder.cc.o.d"
  "CMakeFiles/fix_graph.dir/bisim_traveler.cc.o"
  "CMakeFiles/fix_graph.dir/bisim_traveler.cc.o.d"
  "CMakeFiles/fix_graph.dir/fb_graph.cc.o"
  "CMakeFiles/fix_graph.dir/fb_graph.cc.o.d"
  "libfix_graph.a"
  "libfix_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
