# Empty compiler generated dependencies file for fix_graph.
# This may be replaced when dependencies are built.
