
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bisim_builder.cc" "src/graph/CMakeFiles/fix_graph.dir/bisim_builder.cc.o" "gcc" "src/graph/CMakeFiles/fix_graph.dir/bisim_builder.cc.o.d"
  "/root/repo/src/graph/bisim_traveler.cc" "src/graph/CMakeFiles/fix_graph.dir/bisim_traveler.cc.o" "gcc" "src/graph/CMakeFiles/fix_graph.dir/bisim_traveler.cc.o.d"
  "/root/repo/src/graph/fb_graph.cc" "src/graph/CMakeFiles/fix_graph.dir/fb_graph.cc.o" "gcc" "src/graph/CMakeFiles/fix_graph.dir/fb_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fix_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/fix_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
