file(REMOVE_RECURSE
  "libfix_graph.a"
)
