file(REMOVE_RECURSE
  "libfix_baseline.a"
)
