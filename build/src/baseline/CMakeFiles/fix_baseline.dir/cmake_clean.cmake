file(REMOVE_RECURSE
  "CMakeFiles/fix_baseline.dir/fb_index.cc.o"
  "CMakeFiles/fix_baseline.dir/fb_index.cc.o.d"
  "CMakeFiles/fix_baseline.dir/full_scan.cc.o"
  "CMakeFiles/fix_baseline.dir/full_scan.cc.o.d"
  "libfix_baseline.a"
  "libfix_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
