# Empty dependencies file for fix_baseline.
# This may be replaced when dependencies are built.
