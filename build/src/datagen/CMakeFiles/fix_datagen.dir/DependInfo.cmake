
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/dblp_gen.cc" "src/datagen/CMakeFiles/fix_datagen.dir/dblp_gen.cc.o" "gcc" "src/datagen/CMakeFiles/fix_datagen.dir/dblp_gen.cc.o.d"
  "/root/repo/src/datagen/query_gen.cc" "src/datagen/CMakeFiles/fix_datagen.dir/query_gen.cc.o" "gcc" "src/datagen/CMakeFiles/fix_datagen.dir/query_gen.cc.o.d"
  "/root/repo/src/datagen/tcmd_gen.cc" "src/datagen/CMakeFiles/fix_datagen.dir/tcmd_gen.cc.o" "gcc" "src/datagen/CMakeFiles/fix_datagen.dir/tcmd_gen.cc.o.d"
  "/root/repo/src/datagen/text_pool.cc" "src/datagen/CMakeFiles/fix_datagen.dir/text_pool.cc.o" "gcc" "src/datagen/CMakeFiles/fix_datagen.dir/text_pool.cc.o.d"
  "/root/repo/src/datagen/treebank_gen.cc" "src/datagen/CMakeFiles/fix_datagen.dir/treebank_gen.cc.o" "gcc" "src/datagen/CMakeFiles/fix_datagen.dir/treebank_gen.cc.o.d"
  "/root/repo/src/datagen/xmark_gen.cc" "src/datagen/CMakeFiles/fix_datagen.dir/xmark_gen.cc.o" "gcc" "src/datagen/CMakeFiles/fix_datagen.dir/xmark_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fix_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/fix_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fix_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/spectral/CMakeFiles/fix_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fix_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/fix_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
