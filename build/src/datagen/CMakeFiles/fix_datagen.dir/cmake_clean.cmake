file(REMOVE_RECURSE
  "CMakeFiles/fix_datagen.dir/dblp_gen.cc.o"
  "CMakeFiles/fix_datagen.dir/dblp_gen.cc.o.d"
  "CMakeFiles/fix_datagen.dir/query_gen.cc.o"
  "CMakeFiles/fix_datagen.dir/query_gen.cc.o.d"
  "CMakeFiles/fix_datagen.dir/tcmd_gen.cc.o"
  "CMakeFiles/fix_datagen.dir/tcmd_gen.cc.o.d"
  "CMakeFiles/fix_datagen.dir/text_pool.cc.o"
  "CMakeFiles/fix_datagen.dir/text_pool.cc.o.d"
  "CMakeFiles/fix_datagen.dir/treebank_gen.cc.o"
  "CMakeFiles/fix_datagen.dir/treebank_gen.cc.o.d"
  "CMakeFiles/fix_datagen.dir/xmark_gen.cc.o"
  "CMakeFiles/fix_datagen.dir/xmark_gen.cc.o.d"
  "libfix_datagen.a"
  "libfix_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
