file(REMOVE_RECURSE
  "libfix_datagen.a"
)
