# Empty compiler generated dependencies file for fix_datagen.
# This may be replaced when dependencies are built.
