# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/document_test[1]_include.cmake")
include("/root/repo/build/tests/xml_parser_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/bisim_test[1]_include.cmake")
include("/root/repo/build/tests/fb_graph_test[1]_include.cmake")
include("/root/repo/build/tests/spectral_test[1]_include.cmake")
include("/root/repo/build/tests/xpath_test[1]_include.cmake")
include("/root/repo/build/tests/match_test[1]_include.cmake")
include("/root/repo/build/tests/compile_test[1]_include.cmake")
include("/root/repo/build/tests/fix_index_test[1]_include.cmake")
include("/root/repo/build/tests/fix_query_test[1]_include.cmake")
include("/root/repo/build/tests/fb_index_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_test[1]_include.cmake")
include("/root/repo/build/tests/persist_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/wildcard_test[1]_include.cmake")
include("/root/repo/build/tests/update_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/structural_join_test[1]_include.cmake")
include("/root/repo/build/tests/feature_key_test[1]_include.cmake")
