# Empty compiler generated dependencies file for fix_index_test.
# This may be replaced when dependencies are built.
