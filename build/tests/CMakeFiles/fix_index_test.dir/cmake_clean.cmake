file(REMOVE_RECURSE
  "CMakeFiles/fix_index_test.dir/fix_index_test.cc.o"
  "CMakeFiles/fix_index_test.dir/fix_index_test.cc.o.d"
  "fix_index_test"
  "fix_index_test.pdb"
  "fix_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
