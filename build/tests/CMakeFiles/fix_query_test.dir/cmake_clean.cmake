file(REMOVE_RECURSE
  "CMakeFiles/fix_query_test.dir/fix_query_test.cc.o"
  "CMakeFiles/fix_query_test.dir/fix_query_test.cc.o.d"
  "fix_query_test"
  "fix_query_test.pdb"
  "fix_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
