# Empty compiler generated dependencies file for fix_query_test.
# This may be replaced when dependencies are built.
