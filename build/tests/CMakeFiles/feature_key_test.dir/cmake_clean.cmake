file(REMOVE_RECURSE
  "CMakeFiles/feature_key_test.dir/feature_key_test.cc.o"
  "CMakeFiles/feature_key_test.dir/feature_key_test.cc.o.d"
  "feature_key_test"
  "feature_key_test.pdb"
  "feature_key_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
