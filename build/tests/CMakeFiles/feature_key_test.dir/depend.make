# Empty dependencies file for feature_key_test.
# This may be replaced when dependencies are built.
