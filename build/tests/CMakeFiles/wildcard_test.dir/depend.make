# Empty dependencies file for wildcard_test.
# This may be replaced when dependencies are built.
