file(REMOVE_RECURSE
  "CMakeFiles/fb_graph_test.dir/fb_graph_test.cc.o"
  "CMakeFiles/fb_graph_test.dir/fb_graph_test.cc.o.d"
  "fb_graph_test"
  "fb_graph_test.pdb"
  "fb_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fb_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
