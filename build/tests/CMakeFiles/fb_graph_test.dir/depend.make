# Empty dependencies file for fb_graph_test.
# This may be replaced when dependencies are built.
