// Reproduces Figure 5: average selectivity, pruning power, and
// false-positive ratio over 1000 random twig queries per data set.
//
// Shape expectations from the paper:
//   * XMark / Treebank: avg pp tracks avg sel closely (structure-rich);
//   * TCMD: a large gap between sel and pp (~32% in the paper) — similar
//     documents cannot be told apart structurally;
//   * DBLP: a moderate gap (~14% in the paper).
//
// A second table A/Bs the two probe engines (IndexOptions::probe_engine)
// over the same query stream: per-probe cost distribution (p50/p95/p99 in
// microseconds) and total index work (B+-tree entries scanned vs kd-tree
// nodes visited), with the B+-tree as the baseline.

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "datagen/query_gen.h"
#include "query/compile.h"
#include "harness.h"

namespace fix::bench {
namespace {

struct PaperAvg {
  DataSet data;
  const char* paper_sel;
  const char* paper_pp;
  const char* paper_fpr;
};

// Approximate bar heights read off Figure 5.
constexpr PaperAvg kPaper[] = {
    {DataSet::kTcmd, "~0.62", "~0.30", "~0.47"},
    {DataSet::kDblp, "~0.84", "~0.70", "~0.42"},
    {DataSet::kXMark, "~0.98", "~0.96", "~0.40"},
    {DataSet::kTreebank, "~0.99", "~0.95", "~0.66"},
};

// Nearest-rank percentile over an ascending-sorted sample.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct EngineRow {
  std::string dataset;
  const char* engine;
  uint64_t probes = 0;
  uint64_t work = 0;  // entries scanned (btree) / nodes visited (spatial)
  double p50 = 0, p95 = 0, p99 = 0;
};

void Run() {
  Report report("bench_fig5_random_queries");
  report.Note("Figure 5: averages over 1000 random twig queries per set.");
  report.Header({"dataset", "queries", "avg_sel", "avg_pp", "avg_fpr",
                 "queries_with_false_neg", "paper_sel", "paper_pp",
                 "paper_fpr"});

  std::vector<EngineRow> engine_rows;
  for (const PaperAvg& paper : kPaper) {
    auto corpus = BuildCorpus(paper.data);
    auto index = BuildFix(corpus.get(), paper.data, /*clustered=*/false, 0,
                          nullptr,
                          std::string("f5_") + DataSetName(paper.data));
    FIX_CHECK(index.ok());

    QueryGenOptions qopts;
    qopts.seed = 20060301;  // the TR's publication date
    qopts.max_depth = PaperDepthLimit(paper.data) > 0
                          ? PaperDepthLimit(paper.data)
                          : 5;
    qopts.rooted = paper.data == DataSet::kTcmd;  // TCMD queries are rooted
    auto queries = GenerateRandomQueries(*corpus, 1000, qopts);

    double sel = 0, pp = 0, fpr = 0;
    uint64_t with_fn = 0;
    for (const auto& q : queries) {
      QueryMetrics m = MeasureQuery(corpus.get(), &*index, q, q.ToString());
      sel += m.sel;
      pp += m.pp;
      fpr += m.fpr;
      with_fn += m.false_negatives > 0 ? 1 : 0;
    }
    double n = static_cast<double>(queries.size());
    char avg_sel[16], avg_pp[16], avg_fpr[16];
    std::snprintf(avg_sel, sizeof(avg_sel), "%.3f", sel / n);
    std::snprintf(avg_pp, sizeof(avg_pp), "%.3f", pp / n);
    std::snprintf(avg_fpr, sizeof(avg_fpr), "%.3f", fpr / n);
    report.Row({DataSetName(paper.data), Num(queries.size()), avg_sel,
                avg_pp, avg_fpr, Num(with_fn), paper.paper_sel,
                paper.paper_pp, paper.paper_fpr});

    // Per-engine probe cost over the same stream: probe the first pure
    // subtwig of each query through both engines (the production path the
    // query processor takes before refinement).
    for (ProbeEngine engine : {ProbeEngine::kBTree, ProbeEngine::kSpatial}) {
      EngineRow row;
      row.dataset = DataSetName(paper.data);
      row.engine = engine == ProbeEngine::kBTree ? "btree" : "spatial";
      std::vector<double> probe_us;
      probe_us.reserve(queries.size());
      for (const auto& q : queries) {
        auto parts = DecomposeAtDescendantEdges(q);
        auto start = std::chrono::steady_clock::now();
        auto lookup = index->ProbeWithEngine(parts[0],
                                             /*use_root_label=*/true, engine);
        auto stop = std::chrono::steady_clock::now();
        FIX_CHECK(lookup.ok());
        probe_us.push_back(
            std::chrono::duration<double, std::micro>(stop - start).count());
        row.work += lookup->entries_scanned;
        ++row.probes;
      }
      std::sort(probe_us.begin(), probe_us.end());
      row.p50 = Percentile(probe_us, 0.50);
      row.p95 = Percentile(probe_us, 0.95);
      row.p99 = Percentile(probe_us, 0.99);
      engine_rows.push_back(std::move(row));
    }
  }

  report.Section("probe engines (same 1000 queries; work = entries scanned "
                 "for btree, kd nodes visited for spatial)");
  report.Header({"dataset", "engine", "probes", "probe_work", "probe_p50_us",
                 "probe_p95_us", "probe_p99_us"});
  for (const EngineRow& row : engine_rows) {
    char p50[16], p95[16], p99[16];
    std::snprintf(p50, sizeof(p50), "%.1f", row.p50);
    std::snprintf(p95, sizeof(p95), "%.1f", row.p95);
    std::snprintf(p99, sizeof(p99), "%.1f", row.p99);
    report.Row({row.dataset, row.engine, Num(row.probes), Num(row.work),
                p50, p95, p99});
  }
  report.Note(
      "queries_with_false_neg counts random queries where paper-mode "
      "pruning lost producers (see DESIGN.md finding F1; expected nonzero "
      "on recursive data, 0 under IndexOptions::sound_probe).");
}

}  // namespace
}  // namespace fix::bench

int main() {
  fix::bench::Run();
  return 0;
}
