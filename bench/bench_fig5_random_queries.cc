// Reproduces Figure 5: average selectivity, pruning power, and
// false-positive ratio over 1000 random twig queries per data set.
//
// Shape expectations from the paper:
//   * XMark / Treebank: avg pp tracks avg sel closely (structure-rich);
//   * TCMD: a large gap between sel and pp (~32% in the paper) — similar
//     documents cannot be told apart structurally;
//   * DBLP: a moderate gap (~14% in the paper).

#include <string>

#include "datagen/query_gen.h"
#include "harness.h"

namespace fix::bench {
namespace {

struct PaperAvg {
  DataSet data;
  const char* paper_sel;
  const char* paper_pp;
  const char* paper_fpr;
};

// Approximate bar heights read off Figure 5.
constexpr PaperAvg kPaper[] = {
    {DataSet::kTcmd, "~0.62", "~0.30", "~0.47"},
    {DataSet::kDblp, "~0.84", "~0.70", "~0.42"},
    {DataSet::kXMark, "~0.98", "~0.96", "~0.40"},
    {DataSet::kTreebank, "~0.99", "~0.95", "~0.66"},
};

void Run() {
  Report report("bench_fig5_random_queries");
  report.Note("Figure 5: averages over 1000 random twig queries per set.");
  report.Header({"dataset", "queries", "avg_sel", "avg_pp", "avg_fpr",
                 "queries_with_false_neg", "paper_sel", "paper_pp",
                 "paper_fpr"});

  for (const PaperAvg& paper : kPaper) {
    auto corpus = BuildCorpus(paper.data);
    auto index = BuildFix(corpus.get(), paper.data, /*clustered=*/false, 0,
                          nullptr,
                          std::string("f5_") + DataSetName(paper.data));
    FIX_CHECK(index.ok());

    QueryGenOptions qopts;
    qopts.seed = 20060301;  // the TR's publication date
    qopts.max_depth = PaperDepthLimit(paper.data) > 0
                          ? PaperDepthLimit(paper.data)
                          : 5;
    qopts.rooted = paper.data == DataSet::kTcmd;  // TCMD queries are rooted
    auto queries = GenerateRandomQueries(*corpus, 1000, qopts);

    double sel = 0, pp = 0, fpr = 0;
    uint64_t with_fn = 0;
    for (const auto& q : queries) {
      QueryMetrics m = MeasureQuery(corpus.get(), &*index, q, q.ToString());
      sel += m.sel;
      pp += m.pp;
      fpr += m.fpr;
      with_fn += m.false_negatives > 0 ? 1 : 0;
    }
    double n = static_cast<double>(queries.size());
    char avg_sel[16], avg_pp[16], avg_fpr[16];
    std::snprintf(avg_sel, sizeof(avg_sel), "%.3f", sel / n);
    std::snprintf(avg_pp, sizeof(avg_pp), "%.3f", pp / n);
    std::snprintf(avg_fpr, sizeof(avg_fpr), "%.3f", fpr / n);
    report.Row({DataSetName(paper.data), Num(queries.size()), avg_sel,
                avg_pp, avg_fpr, Num(with_fn), paper.paper_sel,
                paper.paper_pp, paper.paper_fpr});
  }
  report.Note(
      "queries_with_false_neg counts random queries where paper-mode "
      "pruning lost producers (see DESIGN.md finding F1; expected nonzero "
      "on recursive data, 0 under IndexOptions::sound_probe).");
}

}  // namespace
}  // namespace fix::bench

int main() {
  fix::bench::Run();
  return 0;
}
