// Ablation C: the subpattern depth limit k (Section 4.4). Larger k covers
// deeper twig queries and sharpens pruning (patterns carry more structure)
// but costs construction time and risks oversized patterns. Sweeps k on
// XMark and reports construction cost, coverage, and average pruning power
// over a fixed random workload of depth <= 6.

#include <string>

#include "datagen/query_gen.h"
#include "harness.h"

namespace fix::bench {
namespace {

void Run() {
  Report report("bench_ablation_depth");
  report.Note("Ablation C: depth-limit sweep on XMark; fixed 300-query "
              "random workload of depth <= 6.");
  auto corpus = BuildCorpus(DataSet::kXMark);

  QueryGenOptions qopts;
  qopts.seed = 4242;
  qopts.max_depth = 6;
  auto queries = GenerateRandomQueries(*corpus, 300, qopts);

  report.Header({"k", "ICT", "entries", "distinct_patterns", "oversized",
                 "covered_queries", "avg_pp_covered"});
  for (int k : {2, 3, 4, 6, 8}) {
    BuildStats stats;
    auto index = BuildFix(corpus.get(), DataSet::kXMark, false, 0, &stats,
                          "ablC_k" + std::to_string(k),
                          /*use_lambda2=*/false, /*depth_limit=*/k);
    FIX_CHECK(index.ok());

    uint64_t covered = 0;
    double pp = 0;
    for (const auto& q : queries) {
      if (q.Depth() > k) continue;
      ++covered;
      pp += MeasureQuery(corpus.get(), &*index, q, q.ToString()).pp;
    }
    char ict[32], avg_pp[16];
    std::snprintf(ict, sizeof(ict), "%.2f s", stats.construction_seconds);
    std::snprintf(avg_pp, sizeof(avg_pp), "%.4f",
                  covered ? pp / covered : 0.0);
    report.Row({Num(k), ict, Num(stats.entries),
                Num(stats.distinct_patterns), Num(stats.oversized_patterns),
                Num(covered) + "/" + Num(queries.size()), avg_pp});
  }
  report.Note("Expectation: ICT grows with k; coverage grows with k; "
              "avg_pp of covered queries grows with k (deeper patterns "
              "discriminate better).");
}

}  // namespace
}  // namespace fix::bench

int main() {
  fix::bench::Run();
  return 0;
}
