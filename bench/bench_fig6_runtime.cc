// Reproduces Figure 6 (a, b, c): query runtime on XMark, Treebank, and
// DBLP for the {hi, lo} x {simple path, branching path} query grid, under
// four engines:
//   NoK            — navigational full scan, no index (baseline);
//   FIX uncl.      — unclustered FIX pruning + NoK refinement;
//   F&B            — the covering-index baseline;
//   FIX clustered  — clustered FIX (subtree copies in key order).
//
// Shape expectations from the paper:
//   * XMark/Treebank: FIX-unclustered beats NoK by ~an order of magnitude;
//     FIX-clustered beats F&B.
//   * DBLP: FIX-unclustered still beats NoK, but F&B beats FIX-clustered
//     (tiny, regular F&B graph that fits in memory).

#include <algorithm>
#include <string>

#include "baseline/fb_index.h"
#include "baseline/full_scan.h"
#include "common/timer.h"
#include "harness.h"

namespace fix::bench {
namespace {

struct RuntimeQuery {
  DataSet data;
  const char* name;
  const char* xpath;
};

constexpr RuntimeQuery kQueries[] = {
    {DataSet::kXMark, "XMark_hi_sp", "//item/mailbox/mail/text/emph/keyword"},
    {DataSet::kXMark, "XMark_lo_sp", "//description/parlist/listitem"},
    {DataSet::kXMark, "XMark_hi_bp",
     "//item[name]/mailbox/mail[to]/text[bold]/emph/bold"},
    {DataSet::kXMark, "XMark_lo_bp",
     "//item[payment][quantity][shipping][mailbox/mail/text]"
     "/description/parlist"},
    {DataSet::kTreebank, "Trbnk_hi_sp", "//EMPTY/S/NP/NP/PP"},
    {DataSet::kTreebank, "Trbnk_lo_sp", "//EMPTY/S/VP"},
    {DataSet::kTreebank, "Trbnk_hi_bp", "//EMPTY/S/NP[PP]/NP"},
    {DataSet::kTreebank, "Trbnk_lo_bp", "//EMPTY/S[VP]/NP"},
    {DataSet::kDblp, "DBLP_hi_sp", "//inproceedings/title/i"},
    {DataSet::kDblp, "DBLP_lo_sp", "//dblp/inproceedings/author"},
    {DataSet::kDblp, "DBLP_hi_bp", "//inproceedings[url]/title[sub][i]"},
    {DataSet::kDblp, "DBLP_lo_bp", "//article[number]/author"},
};

/// Medians over repetitions keep the numbers stable on a shared machine.
template <typename F>
double MedianMs(F&& body, int reps = 5) {
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    body();
    times.push_back(timer.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void Run() {
  Report report("bench_fig6_runtime");
  report.Note("Figure 6: runtime (ms, median of 5) per engine, plus the "
              "implementation-independent matcher work (nodes touched).");
  report.Note("The paper's testbed was disk-resident; in-memory wall-clock "
              "compresses the I/O-driven gaps, so the work ratio is the "
              "faithful signal of FIX's pruning benefit (Section 6.2).");
  report.Header({"query", "NoK_ms", "FIXuncl_ms", "FB_ms", "FIXclus_ms",
                 "NoK_nodes", "FIX_nodes", "work_ratio", "results"});

  DataSet current = DataSet::kTcmd;  // sentinel != first query's set
  std::unique_ptr<Corpus> corpus;
  Result<FixIndex> uidx = Status::Internal("unbuilt");
  Result<FixIndex> cidx = Status::Internal("unbuilt");
  Result<FbIndex> fb = Status::Internal("unbuilt");

  for (const RuntimeQuery& rq : kQueries) {
    if (corpus == nullptr || rq.data != current) {
      current = rq.data;
      corpus = BuildCorpus(current);
      FIX_CHECK(
          corpus->WritePrimaryStorage(WorkDir(std::string("f6p_") +
                                              DataSetName(current)) +
                                      "/primary.dat")
              .ok());
      uidx = BuildFix(corpus.get(), current, /*clustered=*/false, 0, nullptr,
                      std::string("f6u_") + DataSetName(current));
      cidx = BuildFix(corpus.get(), current, /*clustered=*/true, 0, nullptr,
                      std::string("f6c_") + DataSetName(current));
      fb = FbIndex::Build(corpus.get(), nullptr);
      FIX_CHECK(uidx.ok());
      FIX_CHECK(cidx.ok());
      FIX_CHECK(fb.ok());
    }
    TwigQuery q = Compile(corpus.get(), rq.xpath);

    uint64_t results = 0;
    uint64_t nok_nodes = 0;
    double nok_ms = MedianMs([&] {
      ScanStats s = FullScan(*corpus, q);
      results = s.result_count;
      nok_nodes = s.nodes_visited;
    });
    FixQueryProcessor uproc(corpus.get(), &*uidx);
    uint64_t fix_nodes = 0;
    double fixu_ms = MedianMs([&] {
      auto s = uproc.Execute(q, nullptr, RefineMode::kBatch);
      FIX_CHECK(s.ok());
      fix_nodes = s->nodes_visited;
    });
    double fb_ms = MedianMs([&] { FIX_CHECK(fb->Execute(q).ok()); });
    FixQueryProcessor cproc(corpus.get(), &*cidx);
    double fixc_ms = MedianMs([&] { FIX_CHECK(cproc.Execute(q).ok()); });

    char ratio[16];
    std::snprintf(ratio, sizeof(ratio), "%.1fx",
                  fix_nodes > 0 ? double(nok_nodes) / fix_nodes : 0.0);
    report.Row({std::string(rq.name) + "  " + rq.xpath, Ms(nok_ms),
                Ms(fixu_ms), Ms(fb_ms), Ms(fixc_ms), Num(nok_nodes),
                Num(fix_nodes), ratio, Num(results)});
  }
}

}  // namespace
}  // namespace fix::bench

int main() {
  fix::bench::Run();
  return 0;
}
