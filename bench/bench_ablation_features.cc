// Ablation A (DESIGN.md): which features earn their keep?
//
// The paper's key is {root label, λ_min, λ_max}; Section 8 proposes finding
// more features. Because λ_min = -λ_max for anti-symmetric matrices (a
// consequence the paper does not state), the published key is effectively
// {root label, λ_max}. This ablation measures average pruning power over
// random queries for:
//   label-only      — candidates = all entries with the root label;
//   label+lambda    — the paper's key;
//   label+lambda+l2 — adding the second eigenvalue magnitude (extension);
//   sound-probe     — the provably-sound pairwise bound (finding F1).

#include <string>

#include "datagen/query_gen.h"
#include "harness.h"

namespace fix::bench {
namespace {

struct Variant {
  const char* name;
  bool use_lambda;   // lambda filtering at all (false = label only)
  bool use_lambda2;
  bool sound_probe;
};

void Run() {
  Report report("bench_ablation_features");
  report.Note("Ablation A: feature-set contributions to pruning power "
              "(300 random queries per data set).");
  report.Header({"dataset", "variant", "avg_pp", "avg_fpr",
                 "queries_with_false_neg"});

  for (DataSet data : {DataSet::kXMark, DataSet::kTreebank}) {
    auto corpus = BuildCorpus(data);
    QueryGenOptions qopts;
    qopts.seed = 777;
    qopts.max_depth = PaperDepthLimit(data);
    auto queries = GenerateRandomQueries(*corpus, 300, qopts);

    const Variant variants[] = {
        {"label-only", false, false, false},
        {"label+lambda (paper)", true, false, false},
        {"label+lambda+l2", true, true, false},
        {"sound-probe (F1 fix)", true, false, true},
    };
    for (const Variant& variant : variants) {
      auto index = BuildFix(corpus.get(), data, false, 0, nullptr,
                            std::string("ablA_") + DataSetName(data) + "_" +
                                variant.name,
                            variant.use_lambda2, -1, variant.sound_probe);
      FIX_CHECK(index.ok());

      double pp = 0, fpr = 0;
      uint64_t with_fn = 0;
      for (const auto& q : queries) {
        QueryMetrics m;
        if (variant.use_lambda) {
          m = MeasureQuery(corpus.get(), &*index, q, q.ToString());
        } else {
          // Label-only: candidates = every entry whose root label matches.
          GroundTruth gt =
              ComputeGroundTruth(*corpus, q, index->options().depth_limit);
          uint64_t label_candidates = 0;
          const Document& doc = corpus->doc(0);
          for (NodeId n = 1; n < doc.num_nodes(); ++n) {
            if (doc.IsElement(n) &&
                doc.label(n) == q.steps[q.root].label) {
              ++label_candidates;
            }
          }
          m.pp = gt.entries
                     ? 1.0 - double(label_candidates) / gt.entries
                     : 0;
          m.fpr = label_candidates
                      ? 1.0 - double(gt.producers) / label_candidates
                      : 0;
          m.false_negatives = 0;  // label pruning alone is sound
        }
        pp += m.pp;
        fpr += m.fpr;
        with_fn += m.false_negatives > 0 ? 1 : 0;
      }
      double n = static_cast<double>(queries.size());
      char avg_pp[16], avg_fpr[16];
      std::snprintf(avg_pp, sizeof(avg_pp), "%.4f", pp / n);
      std::snprintf(avg_fpr, sizeof(avg_fpr), "%.4f", fpr / n);
      report.Row({DataSetName(data), variant.name, avg_pp, avg_fpr,
                  Num(with_fn)});
    }
  }
  report.Note("Expected ordering of avg_pp: label-only < sound-probe <= "
              "paper <= paper+l2; false negatives only in paper modes.");
}

}  // namespace
}  // namespace fix::bench

int main() {
  fix::bench::Run();
  return 0;
}
