// Reproduces Figure 7: the integrated structure + value index on DBLP.
//   (a) implementation-independent metrics for the two value queries,
//       structural index vs value index (β = 10, the paper's setting);
//   (b) runtime, F&B vs clustered FIX-with-values.
//
// Shape expectations from the paper: the value index improves pruning
// power over the pure structural index, and FIX-with-values beats F&B
// (which must refine value predicates against the documents).
//
// Deviation we observe and document (EXPERIMENTS.md): because λ_min always
// equals -λ_max for anti-symmetric matrices, bucket edges only shift ONE
// scalar, so paper-mode value pruning is weight-order dependent and weaker
// than the paper's reported fpr≈1.7%; enabling the λ₂ extension feature
// recovers most of the bucket separation (extra row below).

#include <algorithm>
#include <string>

#include "baseline/fb_index.h"
#include "common/timer.h"
#include "harness.h"

namespace fix::bench {
namespace {

constexpr const char* kValueQueries[] = {
    "//proceedings[publisher=\"Springer\"][title]",
    "//inproceedings[year=\"1998\"][title]/author",
};

template <typename F>
double MedianMs(F&& body, int reps = 5) {
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    body();
    times.push_back(timer.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void Run() {
  Report report("bench_fig7_values");
  auto corpus = BuildCorpus(DataSet::kDblp);

  BuildStats sstats, vstats, v2stats;
  auto structural = BuildFix(corpus.get(), DataSet::kDblp, false, 0, &sstats,
                             "f7_struct");
  auto values = BuildFix(corpus.get(), DataSet::kDblp, false, /*beta=*/10,
                         &vstats, "f7_values");
  auto values_l2 = BuildFix(corpus.get(), DataSet::kDblp, false, /*beta=*/10,
                            &v2stats, "f7_values_l2", /*use_lambda2=*/true);
  auto values_clustered = BuildFix(corpus.get(), DataSet::kDblp, true,
                                   /*beta=*/10, nullptr, "f7_values_c");
  auto fb = FbIndex::Build(corpus.get(), nullptr);
  FIX_CHECK(structural.ok() && values.ok() && values_l2.ok() &&
            values_clustered.ok() && fb.ok());

  report.Section("Figure 7(a): implementation-independent metrics");
  report.Note("paper (value index): hi query sel~=pp, fpr~1.7%; lo query "
              "comparable to structural");
  report.Header({"query", "index", "sel", "pp", "fpr", "false_neg"});
  for (const char* text : kValueQueries) {
    TwigQuery q = Compile(corpus.get(), text);
    struct Row {
      const char* name;
      FixIndex* index;
    } rows[] = {{"structural", &*structural},
                {"values b=10", &*values},
                {"values b=10 +l2", &*values_l2}};
    for (const Row& row : rows) {
      QueryMetrics m = MeasureQuery(corpus.get(), row.index, q, text);
      report.Row({std::string(text), row.name, Pct(m.sel), Pct(m.pp),
                  Pct(m.fpr), Num(m.false_negatives)});
    }
  }

  report.Section("Figure 7(b): runtime (ms, median of 5), F&B vs FIX");
  report.Note("paper: FIX clustered with values beats F&B by >2x on both");
  report.Header({"query", "FB_ms", "FIXvalues_ms", "FIXvalues_clustered_ms",
                 "results"});
  for (const char* text : kValueQueries) {
    TwigQuery q = Compile(corpus.get(), text);
    uint64_t results = 0;
    double fb_ms = MedianMs([&] {
      auto s = fb->Execute(q);
      FIX_CHECK(s.ok());
      results = s->result_count;
    });
    FixQueryProcessor vproc(corpus.get(), &*values);
    double v_ms = MedianMs([&] { FIX_CHECK(vproc.Execute(q).ok()); });
    FixQueryProcessor cproc(corpus.get(), &*values_clustered);
    double c_ms = MedianMs([&] { FIX_CHECK(cproc.Execute(q).ok()); });
    report.Row({std::string(text), Ms(fb_ms), Ms(v_ms), Ms(c_ms),
                Num(results)});
  }

  report.Section("construction cost of value integration (Section 6.4)");
  report.Header({"index", "entries", "btree_size", "ICT"});
  char a[32], b[32], c[32];
  std::snprintf(a, sizeof(a), "%.2f s", sstats.construction_seconds);
  std::snprintf(b, sizeof(b), "%.2f s", vstats.construction_seconds);
  std::snprintf(c, sizeof(c), "%.2f s", v2stats.construction_seconds);
  report.Row({"structural", Num(sstats.entries), Mb(sstats.btree_bytes), a});
  report.Row({"values b=10", Num(vstats.entries), Mb(vstats.btree_bytes), b});
  report.Row({"values b=10 +l2", Num(v2stats.entries),
              Mb(v2stats.btree_bytes), c});
}

}  // namespace
}  // namespace fix::bench

int main() {
  fix::bench::Run();
  return 0;
}
