// Reproduces Table 2: selectivity (sel), pruning power (pp), and
// false-positive ratio (fpr) for the twelve representative queries — three
// selectivity bands per data set. Also reports false negatives (producers
// lost to pruning), a signal the paper's metrics could not expose.
//
// Shape expectations from the paper:
//   * TCMD: low pruning power across the board (documents are similar);
//     fpr stays close to sel, i.e. most surviving candidates produce.
//   * DBLP: pp tracks sel closely for hi/md/lo; fpr small for lo.
//   * XMark/Treebank: very high sel AND pp (structure-rich data); fpr can
//     still be high on Treebank (features miss some distinctions).

#include <string>
#include <vector>

#include "harness.h"

namespace fix::bench {
namespace {

struct PaperQuery {
  DataSet data;
  const char* name;
  const char* xpath;
  const char* paper_sel;
  const char* paper_pp;
  const char* paper_fpr;
};

// Queries transliterated 1:1 to the generator vocabularies (see DESIGN.md).
constexpr PaperQuery kQueries[] = {
    {DataSet::kTcmd, "TCMD_hi",
     "/article/epilog[acknowledgements]/references/a_id", "79.31%", "26.12%",
     "71.99%"},
    {DataSet::kTcmd, "TCMD_md",
     "/article/prolog[keywords]/authors/author/contact[phone]", "49.23%",
     "5.62%", "46.21%"},
    {DataSet::kTcmd, "TCMD_lo", "/article[epilog]/prolog/authors/author",
     "16.85%", "0.35%", "16.29%"},
    {DataSet::kDblp, "DBLP_hi", "//proceedings[booktitle]/title[sup][i]",
     "99.97%", "99.79%", "84.91%"},
    {DataSet::kDblp, "DBLP_md", "//article[number]/author", "72.59%",
     "70.85%", "5.91%"},
    {DataSet::kDblp, "DBLP_lo", "//inproceedings[url]/title", "47.36%",
     "47.35%", "0.002%"},
    {DataSet::kXMark, "XMark_hi",
     "//category/description[parlist]/parlist/listitem/text", "99.96%",
     "99.87%", "75.13%"},
    {DataSet::kXMark, "XMark_md",
     "//closed_auction/annotation/description/text", "99.10%", "98.71%",
     "30.14%"},
    {DataSet::kXMark, "XMark_lo",
     "//open_auction[seller]/annotation/description/text", "98.89%",
     "98.43%", "30.01%"},
    {DataSet::kTreebank, "TrBnk_hi", "//EMPTY/S/NP[PP]/NP", "99.97%",
     "95.37%", "99.45%"},
    {DataSet::kTreebank, "TrBnk_md", "//S[VP]/NP/NP/PP/NP", "99.81%",
     "85.97%", "98.67%"},
    {DataSet::kTreebank, "TrBnk_lo", "//EMPTY/S[VP]/NP", "97.48%", "95.36%",
     "45.79%"},
};

void Run() {
  Report report("bench_table2_metrics");
  report.Note(
      "Table 2: implementation-independent metrics for the representative "
      "queries (measured | paper).");
  report.Header({"query", "sel", "pp", "fpr", "cand", "false_neg",
                 "paper_sel", "paper_pp", "paper_fpr"});

  DataSet current = DataSet::kTcmd;
  std::unique_ptr<Corpus> corpus;
  Result<FixIndex> index = Status::Internal("unbuilt");
  for (const PaperQuery& pq : kQueries) {
    if (corpus == nullptr || pq.data != current) {
      current = pq.data;
      corpus = BuildCorpus(current);
      index = BuildFix(corpus.get(), current, /*clustered=*/false, 0,
                       nullptr, std::string("t2_") + DataSetName(current));
      FIX_CHECK(index.ok());
    }
    TwigQuery q = Compile(corpus.get(), pq.xpath);
    QueryMetrics m = MeasureQuery(corpus.get(), &*index, q, pq.name);
    report.Row({std::string(pq.name) + "  " + pq.xpath, Pct(m.sel),
                Pct(m.pp), Pct(m.fpr), Num(m.candidates),
                Num(m.false_negatives), pq.paper_sel, pq.paper_pp,
                pq.paper_fpr});
  }
}

}  // namespace
}  // namespace fix::bench

int main() {
  fix::bench::Run();
  return 0;
}
