// Ablation B: the value-hash domain size β (Section 4.6 leaves "how to
// choose β" as future work). Sweeps β and reports the trade-off the paper
// describes qualitatively: larger β ⇒ bigger bisimulation graphs, more
// distinct patterns, larger index, slower construction — but fewer hash
// collisions, hence better value pruning.

#include <string>

#include "harness.h"

namespace fix::bench {
namespace {

constexpr uint32_t kBetas[] = {2, 10, 50, 250};

constexpr const char* kValueQueries[] = {
    "//proceedings[publisher=\"Springer\"][title]",
    "//inproceedings[year=\"1998\"][title]/author",
};

void Run() {
  Report report("bench_ablation_beta");
  report.Note("Ablation B: value-hash domain size sweep on DBLP "
              "(lambda2 feature enabled to expose bucket separation).");
  auto corpus = BuildCorpus(DataSet::kDblp);

  report.Header({"beta", "entries", "btree_size", "ICT",
                 "pp(q1)", "fpr(q1)", "pp(q2)", "fpr(q2)", "false_neg"});
  for (uint32_t beta : kBetas) {
    BuildStats stats;
    auto index = BuildFix(corpus.get(), DataSet::kDblp, false, beta, &stats,
                          "ablB_beta" + std::to_string(beta),
                          /*use_lambda2=*/true);
    FIX_CHECK(index.ok());
    std::vector<QueryMetrics> ms;
    for (const char* text : kValueQueries) {
      TwigQuery q = Compile(corpus.get(), text);
      ms.push_back(MeasureQuery(corpus.get(), &*index, q, text));
    }
    char ict[32];
    std::snprintf(ict, sizeof(ict), "%.2f s", stats.construction_seconds);
    report.Row({Num(beta), Num(stats.entries), Mb(stats.btree_bytes), ict,
                Pct(ms[0].pp), Pct(ms[0].fpr), Pct(ms[1].pp),
                Pct(ms[1].fpr),
                Num(ms[0].false_negatives + ms[1].false_negatives)});
  }
  report.Note("q1 = " + std::string(kValueQueries[0]));
  report.Note("q2 = " + std::string(kValueQueries[1]));
}

}  // namespace
}  // namespace fix::bench

int main() {
  fix::bench::Run();
  return 0;
}
