// Shared support for the table/figure benchmark harnesses: data-set
// construction at benchmark scale, the paper's query workloads, metric
// execution, and paper-vs-measured report printing (stdout + CSV).

#ifndef FIX_BENCH_HARNESS_H_
#define FIX_BENCH_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/corpus.h"
#include "core/fix_index.h"
#include "core/fix_query.h"
#include "core/metrics.h"
#include "query/twig_query.h"

namespace fix::bench {

enum class DataSet { kTcmd, kDblp, kXMark, kTreebank };

const char* DataSetName(DataSet data);

/// Builds a data set at benchmark scale (deterministic). Returns the corpus
/// and logs generation stats.
std::unique_ptr<Corpus> BuildCorpus(DataSet data);

/// The paper's depth limit for each data set (Section 6.1: 0 for the TCMD
/// collection, 6 elsewhere).
int PaperDepthLimit(DataSet data);

/// Builds a FIX index over `corpus` in a temp work dir. `build_threads`
/// and `feature_cache_mb` mirror the IndexOptions fields of the same name
/// (defaults match IndexOptions).
[[nodiscard]] Result<FixIndex> BuildFix(Corpus* corpus, DataSet data, bool clustered,
                          uint32_t value_beta, BuildStats* stats,
                          const std::string& tag, bool use_lambda2 = false,
                          int depth_limit_override = -1,
                          bool sound_probe = false, uint32_t build_threads = 1,
                          uint32_t feature_cache_mb = 64);

/// Parses + resolves an XPath string against the corpus.
TwigQuery Compile(Corpus* corpus, const std::string& xpath);

/// One measured query: executes through the index, computes ground truth,
/// and reports the Section 6.2 metrics plus a false-negative count (a
/// reproduction-quality signal the paper could not measure).
struct QueryMetrics {
  std::string query;
  double sel = 0, pp = 0, fpr = 0;
  uint64_t entries = 0, candidates = 0, producing = 0, results = 0;
  uint64_t false_negatives = 0;  ///< ground-truth producers lost by pruning
  double lookup_ms = 0, refine_ms = 0;
};

QueryMetrics MeasureQuery(Corpus* corpus, FixIndex* index,
                          const TwigQuery& query, const std::string& label);

/// Fixed-width report writer that tees rows into a CSV file next to the
/// binary (path: <name>.csv).
class Report {
 public:
  explicit Report(const std::string& name);
  ~Report();

  /// Prints a section banner.
  void Section(const std::string& title);

  /// Sets the column headers (also written to the CSV).
  void Header(const std::vector<std::string>& columns);

  /// Adds one row.
  void Row(const std::vector<std::string>& cells);

  /// Free-form note printed to stdout and echoed as a CSV comment.
  void Note(const std::string& text);

 private:
  std::string csv_path_;
  std::string csv_;
  std::vector<size_t> widths_;
};

/// Formatting helpers.
std::string Pct(double fraction);          // "97.48%"
std::string Ms(double ms);                 // "12.34"
std::string Num(uint64_t v);               // "123456"
std::string Mb(uint64_t bytes);            // "5.6 MB"

/// A scratch directory for index files; recreated per call.
std::string WorkDir(const std::string& tag);

}  // namespace fix::bench

#endif  // FIX_BENCH_HARNESS_H_
