// Microbenchmarks (google-benchmark) for the hot kernels: the symmetric
// eigensolver, skew-spectrum extraction, bisimulation construction, B+-tree
// operations, XPath parsing, and twig matching. These back the paper's
// Section 3.3 cost claims (sub-millisecond eigensolves for pattern-sized
// matrices).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics_registry.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/corpus.h"
#include "core/fix_index.h"
#include "core/fix_query.h"
#include "datagen/datasets.h"
#include "graph/bisim_builder.h"
#include "query/compile.h"
#include "query/match.h"
#include "query/xpath_parser.h"
#include "spectral/skew_matrix.h"
#include "spectral/spectrum.h"
#include "spectral/sym_eigen.h"
#include "storage/btree.h"

namespace fix {
namespace {

DenseMatrix RandomSkew(size_t n, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (rng.Chance(0.3)) {
        double w = 1 + rng.Uniform(40);
        m.at(j, i) = w;
        m.at(i, j) = -w;
      }
    }
  }
  return m;
}

void BM_SymmetricEigenvalues(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  DenseMatrix skew = RandomSkew(n, 7);
  // Symmetrize (MtM) outside the timer? No: the paper's cost includes the
  // full feature extraction, so time the whole SkewSpectrum path.
  for (auto _ : state) {
    auto sigmas = SkewSpectrum(skew);
    benchmark::DoNotOptimize(sigmas);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_SymmetricEigenvalues)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Arg(128)->Arg(256)->Complexity(benchmark::oNCubed);

void BM_BisimBuild(benchmark::State& state) {
  Corpus corpus;
  TreebankOptions o;
  o.num_sentences = static_cast<int>(state.range(0));
  GenerateTreebank(&corpus, o);
  const Document& doc = corpus.doc(0);
  for (auto _ : state) {
    auto graph = BuildBisimGraph(doc);
    benchmark::DoNotOptimize(graph);
  }
  state.counters["elements"] =
      static_cast<double>(corpus.TotalElements());
}
BENCHMARK(BM_BisimBuild)->Arg(50)->Arg(200)->Arg(800);

void BM_BTreeInsert(benchmark::State& state) {
  std::string dir = "/tmp/fix_bench_micro";
  std::filesystem::create_directories(dir);
  Rng rng(13);
  for (auto _ : state) {
    state.PauseTiming();
    PageFile file;
    FIX_CHECK(file.Open(dir + "/bt", true).ok());
    BufferPool pool(&file, 1024);
    auto tree = BTree::Create(&pool, 32, 16);
    FIX_CHECK(tree.ok());
    state.ResumeTiming();
    std::string key(32, '\0');
    std::string value(16, '\0');
    for (int i = 0; i < state.range(0); ++i) {
      uint64_t k = rng.Next();
      std::memcpy(key.data(), &k, 8);
      FIX_CHECK(tree->Insert(key, value).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000);

void BM_BTreeBulkLoad(benchmark::State& state) {
  // The sorted-run load used by the construction pipeline, against the same
  // key/value shape as BM_BTreeInsert (compare items_per_second directly).
  std::string dir = "/tmp/fix_bench_micro";
  std::filesystem::create_directories(dir);
  Rng rng(13);
  std::vector<std::pair<std::string, std::string>> entries(state.range(0));
  for (auto& [key, value] : entries) {
    key.assign(32, '\0');
    value.assign(16, '\0');
    uint64_t k = rng.Next();
    std::memcpy(key.data(), &k, 8);
  }
  std::sort(entries.begin(), entries.end());
  for (auto _ : state) {
    state.PauseTiming();
    PageFile file;
    FIX_CHECK(file.Open(dir + "/btb", true).ok());
    BufferPool pool(&file, 1024);
    auto tree = BTree::Create(&pool, 32, 16);
    FIX_CHECK(tree.ok());
    state.ResumeTiming();
    FIX_CHECK(tree->BulkLoad(entries).ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeBulkLoad)->Arg(1000)->Arg(10000);

void BM_ParallelIndexBuild(benchmark::State& state) {
  // End-to-end pipeline scaling: full FIX build over a small XMark corpus
  // at state.range(0) worker threads.
  std::string dir = "/tmp/fix_bench_micro_pipeline";
  Corpus corpus;
  XMarkOptions xmark;
  xmark.num_items = 150;
  xmark.num_people = 150;
  xmark.num_open_auctions = 120;
  xmark.num_closed_auctions = 100;
  xmark.num_categories = 50;
  GenerateXMark(&corpus, xmark);
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    state.ResumeTiming();
    IndexOptions options;
    options.depth_limit = 6;
    options.build_threads = static_cast<uint32_t>(state.range(0));
    options.path = dir + "/index.fix";
    BuildStats stats;
    auto idx = FixIndex::Build(&corpus, options, &stats);
    FIX_CHECK(idx.ok());
    benchmark::DoNotOptimize(stats.entries);
  }
}
BENCHMARK(BM_ParallelIndexBuild)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_BTreeSeekScan(benchmark::State& state) {
  std::string dir = "/tmp/fix_bench_micro";
  std::filesystem::create_directories(dir);
  PageFile file;
  FIX_CHECK(file.Open(dir + "/bts", true).ok());
  BufferPool pool(&file, 4096);
  auto tree = BTree::Create(&pool, 32, 16);
  FIX_CHECK(tree.ok());
  Rng rng(17);
  std::string key(32, '\0');
  std::string value(16, '\0');
  for (int i = 0; i < 50000; ++i) {
    uint64_t k = rng.Next();
    std::memcpy(key.data(), &k, 8);
    FIX_CHECK(tree->Insert(key, value).ok());
  }
  for (auto _ : state) {
    uint64_t k = rng.Next();
    std::memcpy(key.data(), &k, 8);
    auto it = tree->Seek(key);
    FIX_CHECK(it.ok());
    int scanned = 0;
    while (it->Valid() && scanned < 64) {
      benchmark::DoNotOptimize(it->key());
      FIX_CHECK(it->Next().ok());
      ++scanned;
    }
  }
}
BENCHMARK(BM_BTreeSeekScan);

void BM_XPathParse(benchmark::State& state) {
  const std::string query =
      "//open_auction[.//bidder[name][email]]/annotation/description/text";
  for (auto _ : state) {
    auto q = ParseXPath(query);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_XPathParse);

void BM_TwigMatchFullScan(benchmark::State& state) {
  Corpus corpus;
  XMarkOptions o;
  o.num_items = 60;
  o.num_people = 60;
  o.num_open_auctions = 60;
  o.num_closed_auctions = 60;
  o.num_categories = 30;
  GenerateXMark(&corpus, o);
  auto parsed = ParseXPath("//item[name]/mailbox/mail[to]/text");
  TwigQuery q = std::move(parsed).value();
  q.ResolveLabels(corpus.labels());
  const Document& doc = corpus.doc(0);
  for (auto _ : state) {
    TwigMatcher matcher(&doc);
    auto results = matcher.Evaluate(q);
    benchmark::DoNotOptimize(results);
  }
  state.counters["elements"] = static_cast<double>(corpus.TotalElements());
}
BENCHMARK(BM_TwigMatchFullScan);

void BM_MetricsCounterIncrement(benchmark::State& state) {
  // The registry's hot-path unit: one relaxed fetch_add. This is what every
  // instrumented call site (buffer pool Fetch, PageIo Read, ...) pays.
  Counter* counter = MetricsRegistry::Instance().FindOrCreateCounter(
      "bench.micro.counter", "ops", "");
  for (auto _ : state) {
    counter->Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterIncrement);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  Histogram* hist = MetricsRegistry::Instance().FindOrCreateHistogram(
      "bench.micro.hist", "us", "");
  uint64_t v = 1;
  for (auto _ : state) {
    hist->Record(v);
    v = v * 2862933555777941757ull + 3037000493ull;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramRecord);

void BM_TraceSpanDisabled(benchmark::State& state) {
  // The zero-sink fast path: with no sink attached a span must cost one
  // relaxed load and a branch — this is the overhead every traced region
  // (query execute/lookup/refine, index probe) carries in production.
  FIX_CHECK(!Trace::enabled());
  for (auto _ : state) {
    TraceSpan span("bench.disabled");
    span.AddAttr("n", uint64_t{1});
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_IndexedQueryHotPath(benchmark::State& state) {
  // End-to-end Algorithm 2 with tracing disabled: the denominator for the
  // "instrumentation adds <= 2% to the query hot path" acceptance check.
  // Compare against BM_TraceSpanDisabled and BM_MetricsCounterIncrement —
  // a query executes ~4 spans and one RecordExecStats (a dozen relaxed
  // RMWs), nanoseconds against the microseconds measured here.
  std::string dir = "/tmp/fix_bench_micro_query";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Corpus corpus;
  XMarkOptions o;
  o.num_items = 60;
  o.num_people = 60;
  o.num_open_auctions = 60;
  o.num_closed_auctions = 60;
  o.num_categories = 30;
  GenerateXMark(&corpus, o);
  IndexOptions options;
  options.depth_limit = 6;
  options.path = dir + "/index.fix";
  auto index = FixIndex::Build(&corpus, options, nullptr);
  FIX_CHECK(index.ok());
  auto parsed = ParseXPath("//item[name]/mailbox/mail[to]/text");
  TwigQuery q = std::move(parsed).value();
  q.ResolveLabels(corpus.labels());
  FixQueryProcessor processor(&corpus, &*index);
  FIX_CHECK(!Trace::enabled());
  for (auto _ : state) {
    auto stats = processor.Execute(q);
    FIX_CHECK(stats.ok());
    benchmark::DoNotOptimize(stats->result_count);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedQueryHotPath)->Unit(benchmark::kMicrosecond);

void BM_QueryFeatureExtraction(benchmark::State& state) {
  // Full Algorithm 2 front end: parse -> pattern -> matrix -> eigenvalues.
  LabelTable labels;
  EdgeEncoder encoder;
  auto parsed =
      ParseXPath("//item[name][payment]/mailbox/mail[to][from]/text[bold]");
  TwigQuery q = std::move(parsed).value();
  q.ResolveLabels(&labels);
  for (auto _ : state) {
    auto graph = QueryToBisimGraph(q);
    FIX_CHECK(graph.ok());
    DenseMatrix m = BuildSkewMatrix(*graph, &encoder);
    auto pair = SkewEigPair(m);
    benchmark::DoNotOptimize(pair);
  }
}
BENCHMARK(BM_QueryFeatureExtraction);

}  // namespace
}  // namespace fix

BENCHMARK_MAIN();
