#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/timer.h"
#include "datagen/datasets.h"
#include "query/xpath_parser.h"

namespace fix::bench {

const char* DataSetName(DataSet data) {
  switch (data) {
    case DataSet::kTcmd:
      return "XBench-TCMD";
    case DataSet::kDblp:
      return "DBLP";
    case DataSet::kXMark:
      return "XMark";
    case DataSet::kTreebank:
      return "Treebank";
  }
  return "?";
}

std::unique_ptr<Corpus> BuildCorpus(DataSet data) {
  auto corpus = std::make_unique<Corpus>();
  switch (data) {
    case DataSet::kTcmd: {
      TcmdOptions o;  // defaults: 800 documents
      GenerateTcmd(corpus.get(), o);
      break;
    }
    case DataSet::kDblp: {
      DblpOptions o;  // defaults: 9000 publications
      GenerateDblp(corpus.get(), o);
      break;
    }
    case DataSet::kXMark: {
      XMarkOptions o;  // defaults
      GenerateXMark(corpus.get(), o);
      break;
    }
    case DataSet::kTreebank: {
      TreebankOptions o;  // defaults: 1400 sentences
      GenerateTreebank(corpus.get(), o);
      break;
    }
  }
  return corpus;
}

int PaperDepthLimit(DataSet data) {
  return data == DataSet::kTcmd ? 0 : 6;
}

std::string WorkDir(const std::string& tag) {
  std::string dir = "/tmp/fix_bench/" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Result<FixIndex> BuildFix(Corpus* corpus, DataSet data, bool clustered,
                          uint32_t value_beta, BuildStats* stats,
                          const std::string& tag, bool use_lambda2,
                          int depth_limit_override, bool sound_probe,
                          uint32_t build_threads, uint32_t feature_cache_mb) {
  IndexOptions options;
  options.depth_limit = depth_limit_override >= 0 ? depth_limit_override
                                                  : PaperDepthLimit(data);
  options.clustered = clustered;
  options.value_beta = value_beta;
  options.use_lambda2 = use_lambda2;
  options.sound_probe = sound_probe;
  options.build_threads = build_threads;
  options.feature_cache_mb = feature_cache_mb;
  options.path = WorkDir(tag) + "/index.fix";
  return FixIndex::Build(corpus, options, stats);
}

TwigQuery Compile(Corpus* corpus, const std::string& xpath) {
  auto parsed = ParseXPath(xpath);
  FIX_CHECK(parsed.ok());
  TwigQuery q = std::move(parsed).value();
  q.ResolveLabels(corpus->labels());
  return q;
}

QueryMetrics MeasureQuery(Corpus* corpus, FixIndex* index,
                          const TwigQuery& query, const std::string& label) {
  QueryMetrics out;
  out.query = label;
  FixQueryProcessor processor(corpus, index);
  auto stats = processor.Execute(query);
  FIX_CHECK(stats.ok());
  GroundTruth gt =
      ComputeGroundTruth(*corpus, query, index->options().depth_limit);
  out.entries = gt.entries;
  out.candidates = stats->candidates;
  out.producing = gt.producers;  // exact, index-independent
  out.results = gt.results;
  out.false_negatives =
      gt.producers > stats->producing ? gt.producers - stats->producing : 0;
  out.sel = gt.entries ? 1.0 - double(gt.producers) / gt.entries : 0;
  out.pp = gt.entries ? 1.0 - double(stats->candidates) / gt.entries : 0;
  out.fpr = stats->candidates
                ? 1.0 - double(stats->producing) / stats->candidates
                : 0;
  out.lookup_ms = stats->lookup_ms;
  out.refine_ms = stats->refine_ms;
  return out;
}

// --- Report ------------------------------------------------------------

Report::Report(const std::string& name) {
  csv_path_ = name + ".csv";
  std::printf("==================================================================="
              "=============\n");
  std::printf("%s\n", name.c_str());
  std::printf("==================================================================="
              "=============\n");
}

Report::~Report() {
  FILE* f = std::fopen(csv_path_.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(csv_.data(), 1, csv_.size(), f);
    std::fclose(f);
    std::printf("[csv written to %s]\n\n", csv_path_.c_str());
  }
  // The same registry snapshot fixctl stats --format=prom serves: the
  // run's candidate-selection vs refinement split, I/O counts, and
  // eigensolve costs come from the instrumented path, not bespoke
  // stopwatches.
  const std::string prom_path = csv_path_ + ".metrics.prom";
  FILE* pf = std::fopen(prom_path.c_str(), "w");
  if (pf != nullptr) {
    const std::string text = MetricsRegistry::Instance().PrometheusText();
    std::fwrite(text.data(), 1, text.size(), pf);
    std::fclose(pf);
    std::printf("[metrics snapshot written to %s]\n\n", prom_path.c_str());
  }
}

void Report::Section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
  csv_ += "# " + title + "\n";
}

void Report::Header(const std::vector<std::string>& columns) {
  widths_.clear();
  std::string line;
  for (size_t i = 0; i < columns.size(); ++i) {
    size_t w = std::max<size_t>(columns[i].size() + 2, i == 0 ? 44 : 12);
    widths_.push_back(w);
    std::printf("%-*s", static_cast<int>(w), columns[i].c_str());
    if (i > 0) line += ",";
    line += columns[i];
  }
  std::printf("\n");
  csv_ += line + "\n";
}

void Report::Row(const std::vector<std::string>& cells) {
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    size_t w = i < widths_.size() ? widths_[i] : 12;
    if (cells[i].size() >= w) {
      // Overlong cell: keep at least two spaces of separation so columns
      // stay readable.
      std::printf("%s  ", cells[i].c_str());
    } else {
      std::printf("%-*s", static_cast<int>(w), cells[i].c_str());
    }
    if (i > 0) line += ",";
    line += cells[i];
  }
  std::printf("\n");
  csv_ += line + "\n";
}

void Report::Note(const std::string& text) {
  std::printf("%s\n", text.c_str());
  csv_ += "# " + text + "\n";
}

std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100);
  return buf;
}

std::string Ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ms);
  return buf;
}

std::string Num(uint64_t v) { return std::to_string(v); }

std::string Mb(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / (1024.0 * 1024.0));
  return buf;
}

}  // namespace fix::bench
