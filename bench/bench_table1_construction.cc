// Reproduces Table 1: data-set characteristics, index construction time
// (ICT), and the sizes of the unclustered (UIdx) and clustered (CIdx) FIX
// indexes, for all four data sets.
//
// Our generators run at laptop scale (the paper used full-size corpora on
// 2006 hardware); absolute numbers differ by the scale factor, but the
// relationships Table 1 demonstrates must hold:
//   * CIdx >> UIdx (clustered copies dominate),
//   * Treebank has by far the costliest construction and largest UIdx
//     relative to its data size (structure-rich ⇒ many distinct patterns),
//   * DBLP/TCMD build fast (few distinct patterns).

#include <string>

#include "common/timer.h"
#include "harness.h"
#include "xml/doc_stats.h"

namespace fix::bench {
namespace {

struct PaperRow {
  DataSet data;
  const char* size;
  const char* elements;
  const char* ict;
  const char* uidx;
  const char* cidx;
};

constexpr PaperRow kPaper[] = {
    {DataSet::kTcmd, "27.9 MB", "115306", "17.8 s", "0.2 MB", "6.1 MB"},
    {DataSet::kDblp, "169 MB", "4022548", "32.5 s", "2 MB", "77.9 MB"},
    {DataSet::kXMark, "116 MB", "1666315", "86 s", "5.6 MB", "143.3 MB"},
    {DataSet::kTreebank, "86 MB", "2437666", "375 s", "37.3 MB",
     "310.6 MB"},
};

void Run() {
  Report report("bench_table1_construction");
  report.Note("Table 1: data sets, construction time, index sizes.");
  report.Note("Generators are scaled down; compare ratios, not absolutes.");
  report.Header({"dataset", "docs", "elements", "depth", "xml_size", "ICT",
                 "UIdx", "CIdx", "bisim_vertices", "oversized",
                 "cache_hit_rate"});

  for (const PaperRow& paper : kPaper) {
    auto corpus = BuildCorpus(paper.data);
    DocStats agg;
    for (uint32_t d = 0; d < corpus->num_docs(); ++d) {
      agg.Merge(ComputeDocStats(corpus->doc(d), *corpus->labels()));
    }

    BuildStats ustats;
    auto uidx = BuildFix(corpus.get(), paper.data, /*clustered=*/false, 0,
                         &ustats, std::string("t1u_") + DataSetName(paper.data));
    FIX_CHECK(uidx.ok());
    BuildStats cstats;
    auto cidx = BuildFix(corpus.get(), paper.data, /*clustered=*/true, 0,
                         &cstats, std::string("t1c_") + DataSetName(paper.data));
    FIX_CHECK(cidx.ok());

    char ict[32];
    std::snprintf(ict, sizeof(ict), "%.2f s", ustats.construction_seconds);
    const uint64_t lookups =
        ustats.feature_cache_hits + ustats.feature_cache_misses;
    report.Row({DataSetName(paper.data), Num(corpus->num_docs()),
                Num(agg.elements), Num(agg.max_depth),
                Mb(agg.serialized_bytes), ict, Mb(ustats.btree_bytes),
                Mb(cstats.btree_bytes + cstats.clustered_bytes),
                Num(ustats.bisim_vertices), Num(ustats.oversized_patterns),
                Pct(lookups ? double(ustats.feature_cache_hits) / lookups
                            : 0.0)});
  }

  report.Section("thread scaling (unclustered, paper depth limit)");
  report.Note("Pipeline sweep over build_threads; cache hit rate = hits /");
  report.Note("(hits + misses) of the spectral feature cache (64 MiB).");
  report.Header({"dataset", "threads", "ICT", "speedup", "cache_hits",
                 "cache_misses", "hit_rate", "evictions"});
  for (const PaperRow& paper : kPaper) {
    auto corpus = BuildCorpus(paper.data);
    double base_seconds = 0;
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      BuildStats stats;
      auto idx = BuildFix(
          corpus.get(), paper.data, /*clustered=*/false, 0, &stats,
          std::string("t1s_") + DataSetName(paper.data) + "_t" +
              std::to_string(threads),
          /*use_lambda2=*/false, /*depth_limit_override=*/-1,
          /*sound_probe=*/false, threads);
      FIX_CHECK(idx.ok());
      if (threads == 1) base_seconds = stats.construction_seconds;
      const uint64_t lookups =
          stats.feature_cache_hits + stats.feature_cache_misses;
      char ict[32], speedup[32];
      std::snprintf(ict, sizeof(ict), "%.2f s", stats.construction_seconds);
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    stats.construction_seconds > 0
                        ? base_seconds / stats.construction_seconds
                        : 0.0);
      report.Row({DataSetName(paper.data), Num(threads), ict, speedup,
                  Num(stats.feature_cache_hits),
                  Num(stats.feature_cache_misses),
                  Pct(lookups ? double(stats.feature_cache_hits) / lookups
                              : 0.0),
                  Num(stats.feature_cache_evictions)});
    }
  }

  report.Section("paper values (full-scale data, Pentium 4, Berkeley DB)");
  report.Header({"dataset", "size", "elements", "ICT", "UIdx", "CIdx"});
  for (const PaperRow& paper : kPaper) {
    report.Row({DataSetName(paper.data), paper.size, paper.elements,
                paper.ict, paper.uidx, paper.cidx});
  }
}

}  // namespace
}  // namespace fix::bench

int main() {
  fix::bench::Run();
  return 0;
}
