// Ablation D: the Section 8 future-work extension — probing through
// per-label kd-trees over (λ_max, λ₂) instead of the B+-tree range scan.
//
// The B+-tree exploits only its (label, λ_max) sort order and then filters
// λ₂ row by row; the kd-tree prunes subtrees on both dimensions. This
// harness measures, per random query, the entries touched by each probe
// (identical candidate sets, different work).

#include <string>

#include "core/spatial_probe.h"
#include "query/compile.h"
#include "datagen/query_gen.h"
#include "harness.h"

namespace fix::bench {
namespace {

void Run() {
  Report report("bench_ablation_spatial");
  report.Note("Ablation D: B+-tree range scan vs kd-tree dominance probe "
              "(lambda2 feature enabled; 300 random queries per set).");
  report.Header({"dataset", "btree_entries_scanned", "kdtree_nodes_visited",
                 "probe_work_ratio", "candidates_equal", "kd_bytes"});

  for (DataSet data : {DataSet::kXMark, DataSet::kTreebank}) {
    auto corpus = BuildCorpus(data);
    auto index = BuildFix(corpus.get(), data, false, 0, nullptr,
                          std::string("ablD_") + DataSetName(data),
                          /*use_lambda2=*/true);
    FIX_CHECK(index.ok());
    auto spatial = SpatialProbe::FromBTree(index->btree());
    FIX_CHECK(spatial.ok());

    QueryGenOptions qopts;
    qopts.seed = 909;
    qopts.max_depth = PaperDepthLimit(data);
    auto queries = GenerateRandomQueries(*corpus, 300, qopts);

    uint64_t btree_work = 0, kd_work = 0;
    bool all_equal = true;
    const double eps = index->options().epsilon;
    for (const auto& q : queries) {
      auto parts = DecomposeAtDescendantEdges(q);
      auto probe_key = index->QueryFeatures(parts[0]);
      if (!probe_key.ok()) continue;
      auto lookup = index->Probe(parts[0]);
      FIX_CHECK(lookup.ok());
      btree_work += lookup->entries_scanned;

      uint64_t visited = 0;
      auto hits = spatial->Query(probe_key->root_label,
                                 probe_key->lambda_max - eps,
                                 probe_key->lambda2 - eps, &visited);
      kd_work += visited;
      if (hits.size() != lookup->candidates.size()) all_equal = false;
    }
    char ratio[16];
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  kd_work > 0 ? double(btree_work) / kd_work : 0.0);
    report.Row({DataSetName(data), Num(btree_work), Num(kd_work), ratio,
                all_equal ? "yes" : "NO", Mb(spatial->ApproxBytes())});
  }
  report.Note("probe_work_ratio > 1 means the kd-tree touches fewer "
              "entries; candidate sets must be identical.");
}

}  // namespace
}  // namespace fix::bench

int main() {
  fix::bench::Run();
  return 0;
}
