// Ablation D, promoted: the per-label kd-tree over (λ_max, λ₂) is now the
// production probe engine (IndexOptions::probe_engine), so this harness
// A/Bs the two engines through the same FixIndex::ProbeWithEngine entry
// point the query processor uses — no side-built structure.
//
// The B+-tree exploits only its (label, λ_max) sort order and then filters
// λ₂ row by row; the kd-tree prunes subtrees on both dimensions. Per random
// query the harness FIX_CHECKs that both engines return byte-identical
// candidate sets (this binary doubles as the CI engine-parity smoke) and
// reports the work each did: B+-tree entries scanned vs kd-tree nodes
// visited.

#include <cstring>
#include <string>

#include "core/feature.h"
#include "core/spatial_probe.h"
#include "query/compile.h"
#include "datagen/query_gen.h"
#include "harness.h"

namespace fix::bench {
namespace {

// Byte-exact fingerprint of a candidate list: encoded 32-byte keys (the
// on-disk memcmp order) plus the value payload, in result order.
std::string Fingerprint(const std::vector<FixIndex::Candidate>& candidates) {
  std::string out;
  out.reserve(candidates.size() * (kFeatureKeySize + 16));
  for (const FixIndex::Candidate& c : candidates) {
    out += EncodeFeatureKey(c.key);
    char buf[16];
    std::memcpy(buf, &c.ref.doc_id, 4);
    std::memcpy(buf + 4, &c.ref.node_id, 4);
    std::memcpy(buf + 8, &c.clustered_offset, 8);
    out.append(buf, sizeof(buf));
  }
  return out;
}

void Run() {
  Report report("bench_ablation_spatial");
  report.Note("Ablation D (production): ProbeWithEngine(kBTree) vs "
              "ProbeWithEngine(kSpatial) — same entry point as the query "
              "processor (lambda2 feature enabled; 300 random queries per "
              "set; candidate sets FIX_CHECKed byte-identical).");
  report.Header({"dataset", "btree_entries_scanned", "kdtree_nodes_visited",
                 "probe_work_ratio", "candidates_equal", "kd_bytes"});

  for (DataSet data : {DataSet::kTcmd, DataSet::kDblp, DataSet::kXMark,
                       DataSet::kTreebank}) {
    auto corpus = BuildCorpus(data);
    auto index = BuildFix(corpus.get(), data, false, 0, nullptr,
                          std::string("ablD_") + DataSetName(data),
                          /*use_lambda2=*/true);
    FIX_CHECK(index.ok());
    auto spatial = index->spatial_probe();
    FIX_CHECK(spatial != nullptr);  // Build attaches the kd-tree snapshot

    QueryGenOptions qopts;
    qopts.seed = 909;
    qopts.max_depth = PaperDepthLimit(data);
    auto queries = GenerateRandomQueries(*corpus, 300, qopts);

    uint64_t btree_work = 0, kd_work = 0;
    for (const auto& q : queries) {
      auto parts = DecomposeAtDescendantEdges(q);
      auto by_btree =
          index->ProbeWithEngine(parts[0], /*use_root_label=*/true,
                                 ProbeEngine::kBTree);
      auto by_kd =
          index->ProbeWithEngine(parts[0], /*use_root_label=*/true,
                                 ProbeEngine::kSpatial);
      FIX_CHECK(by_btree.ok());
      FIX_CHECK(by_kd.ok());
      btree_work += by_btree->entries_scanned;
      kd_work += by_kd->entries_scanned;
      // The parity contract: same candidates, same order, byte for byte.
      FIX_CHECK(Fingerprint(by_btree->candidates) ==
                Fingerprint(by_kd->candidates));
    }
    char ratio[16];
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  kd_work > 0 ? double(btree_work) / kd_work : 0.0);
    report.Row({DataSetName(data), Num(btree_work), Num(kd_work), ratio,
                "yes", Mb(spatial->ApproxBytes())});
  }
  report.Note("probe_work_ratio > 1 means the kd-tree touches fewer "
              "entries; a parity failure aborts the binary (FIX_CHECK).");
}

}  // namespace
}  // namespace fix::bench

int main() {
  fix::bench::Run();
  return 0;
}
