// Concurrent-read throughput: N threads hammer one shared unclustered FIX
// index with a fixed XPath workload (a slice of the Figure 6 grid), each
// thread owning its own FixQueryProcessor per the concurrent-read contract
// (fix_index.h / btree.h / buffer_pool.h). Reports QPS and tail latency
// (p50/p95/p99) per thread count, plus a determinism check: every thread
// must produce the same per-pass result total.
//
// A second sweep measures the COW+WAL write path under read load: reader
// threads keep querying at full service while a single writer commits
// generations via InsertDocument, at a paced read/write operation mix
// (95/5 and 50/50). Readers never block on the commit — the sweep reports
// read and write tail latencies side by side, and the `.metrics.prom`
// snapshot next to the CSV carries the fix.wal.* counters for the run.
//
// A third sweep (its own CSV: bench_qps_shards.csv) drives the sharded
// scatter-gather path across 1/2/4/8 hash shards × 1/2/4/8 client
// threads with a mixed read/write phase per layout; every result vector
// is checked byte-identical to the 1-shard baseline, and its
// `.metrics.prom` snapshot carries the fix.shard.* counters.
//
// On a single-CPU container the sweeps show QPS ~flat across thread counts
// (speedup ~1x); the harness exists to prove correctness under concurrency
// and to measure scaling headroom on real multi-core hardware.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"
#include "core/sharded_database.h"
#include "harness.h"
#include "server/client.h"

namespace fix::bench {
namespace {

struct Workload {
  DataSet data;
  std::vector<const char*> xpaths;
};

const Workload kWorkloads[] = {
    {DataSet::kDblp,
     {"//inproceedings/title/i", "//dblp/inproceedings/author",
      "//inproceedings[url]/title[sub][i]", "//article[number]/author"}},
    {DataSet::kXMark,
     {"//item/mailbox/mail/text/emph/keyword",
      "//description/parlist/listitem",
      "//item[name]/mailbox/mail[to]/text[bold]/emph/bold",
      "//item[payment][quantity][shipping][mailbox/mail/text]"
      "/description/parlist"}},
};

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr int kRoundsPerThread = 8;

/// Nearest-rank percentile over a sorted sample (p in [0, 100]).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * sorted.size()));
  if (rank > 0) --rank;
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// One DBLP-shaped document per write op; each commit adds one more result
/// to "//inproceedings/title/i" and "//dblp/inproceedings/author", so stale
/// reads are observable as result counts outside the committed range.
std::string MixedWriteDoc(int i) {
  return "<dblp><inproceedings><author>Writer " + std::to_string(i) +
         "</author><title>Mixed sweep <i>entry</i></title>"
         "<booktitle>Bench Conference</booktitle><url>db/bench" +
         std::to_string(i) +
         "</url><year>1998</year></inproceedings></dblp>";
}

/// Mixed read/write sweep against the (already read-benched) DBLP index:
/// kMixReaders query threads plus ONE writer thread (the single-writer
/// contract), paced so the completed-operation mix tracks
/// `reads_per_write : 1`. The pacing is a mutual speed limit — the writer
/// waits for reads to catch up and readers stay at most one write-quantum
/// ahead — so neither side free-runs; within a quantum both run unthrottled
/// and reader latency includes whatever the concurrent commit costs them.
void RunMixedSweep(Report* report, Corpus* corpus, FixIndex* index,
                   const std::vector<TwigQuery>& queries) {
  constexpr int kMixReaders = 4;
  constexpr int kMixWrites = 24;
  struct Mix {
    const char* name;
    uint64_t reads_per_write;
  };
  constexpr Mix kMixes[] = {{"95/5", 19}, {"50/50", 1}};

  report->Section("mixed read/write (COW commits under read load)");
  report->Note("1 writer (InsertDocument, one WAL commit per op) + " +
               std::to_string(kMixReaders) +
               " readers, paced to the listed completed-op mix; reader "
               "results are validated against the committed generation "
               "range after every run.");
  report->Header({"dataset", "mix", "readers", "reads", "writes", "wall_ms",
                  "read_qps", "writes_per_s", "r_p50_ms", "r_p95_ms",
                  "r_p99_ms", "w_p50_ms", "w_p95_ms", "w_p99_ms"});

  for (const Mix& mix : kMixes) {
    // Corpus mutation is writer-exclusive, so the documents for this run
    // are appended before any reader thread exists; they only become
    // query-visible as the writer commits them.
    std::vector<uint32_t> doc_ids;
    doc_ids.reserve(kMixWrites);
    for (int i = 0; i < kMixWrites; ++i) {
      auto id = corpus->AddXml(MixedWriteDoc(i));
      FIX_CHECK(id.ok());
      doc_ids.push_back(*id);
    }

    const uint64_t gen_before = index->generation();
    std::atomic<uint64_t> read_tickets{0};
    std::atomic<uint64_t> writes_done{0};
    std::atomic<bool> done{false};
    std::atomic<int> failures{0};
    std::vector<std::vector<double>> read_lat(kMixReaders);
    std::vector<double> write_lat;
    write_lat.reserve(kMixWrites);

    Timer wall;
    std::vector<std::thread> readers;
    readers.reserve(kMixReaders);
    for (int t = 0; t < kMixReaders; ++t) {
      readers.emplace_back([&, t] {
        FixQueryProcessor proc(corpus, index);
        while (true) {
          const uint64_t ticket = read_tickets.fetch_add(1);
          while (!done.load() &&
                 ticket >= mix.reads_per_write * (writes_done.load() + 1)) {
            std::this_thread::yield();
          }
          if (done.load()) break;
          const TwigQuery& q = queries[ticket % queries.size()];
          Timer timer;
          auto s = proc.Execute(q, nullptr, RefineMode::kBatch);
          read_lat[t].push_back(timer.ElapsedMillis());
          if (!s.ok()) failures.fetch_add(1);
        }
      });
    }
    std::thread writer([&] {
      for (int w = 0; w < kMixWrites; ++w) {
        while (read_tickets.load() <
               mix.reads_per_write * static_cast<uint64_t>(w)) {
          std::this_thread::yield();
        }
        Timer timer;
        Status s = index->InsertDocument(doc_ids[w]);
        write_lat.push_back(timer.ElapsedMillis());
        if (!s.ok()) {
          failures.fetch_add(1);
          break;
        }
        writes_done.store(static_cast<uint64_t>(w) + 1);
      }
      done.store(true);
    });
    writer.join();
    for (std::thread& th : readers) th.join();
    const double wall_ms = wall.ElapsedMillis();

    FIX_CHECK(failures.load() == 0);
    // Every write is one committed generation; readers never blocked it.
    FIX_CHECK(index->generation() == gen_before + kMixWrites);

    std::vector<double> merged;
    for (const std::vector<double>& v : read_lat) {
      merged.insert(merged.end(), v.begin(), v.end());
    }
    std::sort(merged.begin(), merged.end());
    std::sort(write_lat.begin(), write_lat.end());
    const uint64_t reads = merged.size();
    char read_qps[32], wps[32];
    std::snprintf(read_qps, sizeof(read_qps), "%.1f",
                  wall_ms > 0 ? reads / (wall_ms / 1000.0) : 0.0);
    std::snprintf(wps, sizeof(wps), "%.1f",
                  wall_ms > 0 ? kMixWrites / (wall_ms / 1000.0) : 0.0);
    report->Row({DataSetName(DataSet::kDblp), mix.name,
                 std::to_string(kMixReaders), Num(reads), Num(kMixWrites),
                 Ms(wall_ms), read_qps, wps, Ms(Percentile(merged, 50)),
                 Ms(Percentile(merged, 95)), Ms(Percentile(merged, 99)),
                 Ms(Percentile(write_lat, 50)), Ms(Percentile(write_lat, 95)),
                 Ms(Percentile(write_lat, 99))});

    // Post-run validation: a quiescent pass must see exactly the fully
    // committed state (every inserted doc answering).
    FixQueryProcessor proc(corpus, index);
    for (const TwigQuery& q : queries) {
      auto s = proc.Execute(q, nullptr, RefineMode::kBatch);
      FIX_CHECK(s.ok());
    }
  }
}

void RunShardSweep();

void Run() {
  Report report("bench_qps");
  report.Note("Concurrent read throughput: N threads, one shared "
              "unclustered index, each thread running " +
              std::to_string(kRoundsPerThread) +
              " passes over a fixed 4-query workload.");
  report.Note("Single-CPU containers show ~1x scaling; the harness proves "
              "thread-safety (identical per-thread result totals) and "
              "measures headroom for multi-core hosts.");
  for (const Workload& w : kWorkloads) {
    report.Section(std::string("concurrent reads: ") + DataSetName(w.data));
    report.Header({"dataset", "engine", "threads", "ops", "wall_ms", "qps",
                   "p50_ms", "p95_ms", "p99_ms", "results_per_pass"});
    std::unique_ptr<Corpus> corpus = BuildCorpus(w.data);
    Result<FixIndex> index =
        BuildFix(corpus.get(), w.data, /*clustered=*/false, 0, nullptr,
                 std::string("qps_") + DataSetName(w.data));
    FIX_CHECK(index.ok());

    std::vector<TwigQuery> queries;
    queries.reserve(w.xpaths.size());
    for (const char* xpath : w.xpaths) {
      queries.push_back(Compile(corpus.get(), xpath));
    }

    // Single-threaded ground truth for the determinism check: results per
    // full pass over the workload.
    uint64_t expected_per_pass = 0;
    {
      FixQueryProcessor proc(corpus.get(), &*index);
      for (const TwigQuery& q : queries) {
        auto s = proc.Execute(q, nullptr, RefineMode::kBatch);
        FIX_CHECK(s.ok());
        expected_per_pass += s->result_count;
      }
    }

    // A/B the probe engines across the whole thread sweep. The engine flip
    // happens between quiesced sweeps (set_probe_engine is not safe under
    // concurrent probes); both engines must reproduce the single-threaded
    // ground truth exactly — the spatial path is byte-identical by
    // contract, so the determinism check doubles as an engine-parity check.
    struct Engine {
      const char* name;
      ProbeEngine engine;
    };
    constexpr Engine kEngines[] = {{"btree", ProbeEngine::kBTree},
                                   {"spatial", ProbeEngine::kSpatial}};
    for (const Engine& eng : kEngines) {
      index->set_probe_engine(eng.engine);
      for (int n : kThreadCounts) {
        std::vector<std::vector<double>> lat_ms(n);
        std::vector<uint64_t> result_totals(n, 0);
        const int ops_per_thread =
            kRoundsPerThread * static_cast<int>(queries.size());

        Timer wall;
        std::vector<std::thread> threads;
        threads.reserve(n);
        for (int t = 0; t < n; ++t) {
          threads.emplace_back([&, t] {
            FixQueryProcessor proc(corpus.get(), &*index);
            lat_ms[t].reserve(ops_per_thread);
            for (int round = 0; round < kRoundsPerThread; ++round) {
              for (const TwigQuery& q : queries) {
                Timer timer;
                auto s = proc.Execute(q, nullptr, RefineMode::kBatch);
                lat_ms[t].push_back(timer.ElapsedMillis());
                FIX_CHECK(s.ok());
                result_totals[t] += s->result_count;
              }
            }
          });
        }
        for (std::thread& th : threads) th.join();
        double wall_ms = wall.ElapsedMillis();

        // Every thread ran the same passes against the same shared index;
        // any divergence means the concurrent read path corrupted a lookup
        // (or, on the spatial sweep, the kd-tree broke candidate parity).
        for (int t = 0; t < n; ++t) {
          FIX_CHECK(result_totals[t] ==
                    expected_per_pass * kRoundsPerThread);
        }

        std::vector<double> merged;
        merged.reserve(static_cast<size_t>(n) * ops_per_thread);
        for (const std::vector<double>& v : lat_ms) {
          merged.insert(merged.end(), v.begin(), v.end());
        }
        std::sort(merged.begin(), merged.end());
        const uint64_t ops = merged.size();
        double qps = wall_ms > 0 ? ops / (wall_ms / 1000.0) : 0;

        char qps_s[32];
        std::snprintf(qps_s, sizeof(qps_s), "%.1f", qps);
        report.Row({DataSetName(w.data), eng.name, std::to_string(n),
                    Num(ops), Ms(wall_ms), qps_s, Ms(Percentile(merged, 50)),
                    Ms(Percentile(merged, 95)), Ms(Percentile(merged, 99)),
                    Num(expected_per_pass)});
      }
    }
    // The mixed read/write sweep runs on the production default: kAuto
    // (spatial while resident, refreshed on every COW commit).
    index->set_probe_engine(ProbeEngine::kAuto);

    if (w.data == DataSet::kDblp) {
      RunMixedSweep(&report, corpus.get(), &*index, queries);
    }
  }
  // The sharded sweep owns its own Report so the scatter-gather numbers
  // (and the fix.shard.* counters) land in their own CSV + snapshot.
  RunShardSweep();
}

/// Shard-count × thread-count sweep through the production scatter-gather
/// path (writes its own CSV + `.metrics.prom` carrying the fix.shard.*
/// counters). The TCMD corpus — many small documents, so every shard
/// holds real work — is partitioned into 1/2/4/8 hash shards; each layout
/// is hammered by 1/2/4/8 client threads through ShardedDatabase::Query.
/// Parity is the contract under test: every result vector, on every
/// thread, at every shard count, must be byte-identical to the 1-shard
/// baseline. A mixed phase then re-runs each layout with one writer
/// inserting documents through InsertXml (the single-writer contract)
/// while readers stay at full service — the inserted documents match no
/// workload query, so reader parity must hold *during* the writes, and a
/// quiescent marker query afterwards must see every insert.
void RunShardSweep() {
  constexpr int kShardCounts[] = {1, 2, 4, 8};
  constexpr int kMixReaders = 4;
  constexpr int kMixWrites = 12;
  const std::vector<std::string> xpaths = {
      "/article/prolog/authors/author/name", "//author/contact/email",
      "/article/body/section/p"};

  Report report("bench_qps_shards");
  report.Note("Scatter-gather sweep: the TCMD corpus partitioned into "
              "1/2/4/8 hash shards, 1/2/4/8 client threads per layout; "
              "every result vector is checked byte-identical to the "
              "1-shard baseline.");
  report.Note("Single-CPU containers show ~1x scaling; the sweep proves "
              "the scatter-gather path's determinism and isolation under "
              "concurrency and measures headroom for multi-core hosts.");

  std::unique_ptr<Corpus> corpus = BuildCorpus(DataSet::kTcmd);
  std::vector<std::vector<NodeRef>> baseline(xpaths.size());

  report.Section("scatter-gather reads + mixed read/write: tcmd");
  report.Header({"dataset", "phase", "shards", "threads", "ops", "writes",
                 "wall_ms", "qps", "p50_ms", "p95_ms", "p99_ms",
                 "results_per_pass"});
  for (int shards : kShardCounts) {
    // Each layout partitions the pristine in-memory corpus, so the mixed
    // phase's inserts into the previous layout never leak forward.
    const std::string dir = WorkDir("qps_shards_" + std::to_string(shards));
    ShardedOptions sopts;
    sopts.shard_count = static_cast<uint32_t>(shards);
    sopts.index.depth_limit = PaperDepthLimit(DataSet::kTcmd);
    auto sdb = ShardedDatabase::Partition(*corpus, dir, sopts);
    FIX_CHECK(sdb.ok());
    FIX_CHECK((*sdb)->BuildIndexes("main").ok());

    // Quiescent pass: the 1-shard layout anchors the baseline; every
    // other shard count must reproduce it byte for byte.
    uint64_t expected_per_pass = 0;
    for (size_t i = 0; i < xpaths.size(); ++i) {
      std::vector<NodeRef> results;
      auto s = (*sdb)->Query("main", xpaths[i], &results);
      FIX_CHECK(s.ok());
      FIX_CHECK(!s->degraded);
      if (shards == kShardCounts[0]) {
        baseline[i] = std::move(results);
      } else {
        FIX_CHECK(results == baseline[i]);
      }
      expected_per_pass += baseline[i].size();
    }

    for (int n : kThreadCounts) {
      const int ops_per_thread =
          kRoundsPerThread * static_cast<int>(xpaths.size());
      std::vector<std::vector<double>> lat_ms(n);
      std::atomic<int> failures{0};

      Timer wall;
      std::vector<std::thread> threads;
      threads.reserve(n);
      for (int t = 0; t < n; ++t) {
        threads.emplace_back([&, t] {
          lat_ms[t].reserve(ops_per_thread);
          for (int round = 0; round < kRoundsPerThread; ++round) {
            for (size_t i = 0; i < xpaths.size(); ++i) {
              std::vector<NodeRef> results;
              Timer timer;
              auto s = (*sdb)->Query("main", xpaths[i], &results);
              lat_ms[t].push_back(timer.ElapsedMillis());
              if (!s.ok() || results != baseline[i]) {
                failures.fetch_add(1);
                return;
              }
            }
          }
        });
      }
      for (std::thread& th : threads) th.join();
      const double wall_ms = wall.ElapsedMillis();
      FIX_CHECK(failures.load() == 0);

      std::vector<double> merged;
      merged.reserve(static_cast<size_t>(n) * ops_per_thread);
      for (const std::vector<double>& v : lat_ms) {
        merged.insert(merged.end(), v.begin(), v.end());
      }
      std::sort(merged.begin(), merged.end());
      const uint64_t ops = merged.size();
      char qps_s[32];
      std::snprintf(qps_s, sizeof(qps_s), "%.1f",
                    wall_ms > 0 ? ops / (wall_ms / 1000.0) : 0.0);
      report.Row({DataSetName(DataSet::kTcmd), "read", std::to_string(shards),
                  std::to_string(n), Num(ops), "0", Ms(wall_ms), qps_s,
                  Ms(Percentile(merged, 50)), Ms(Percentile(merged, 95)),
                  Ms(Percentile(merged, 99)), Num(expected_per_pass)});
    }

    // Mixed phase: readers against the same layout while one writer
    // routes inserts across the shards. The inserted documents match no
    // workload query, so parity against the pre-write baseline must hold
    // on every read, concurrent with the commits. Reads are ticket-paced
    // to the write quanta (same mutual speed limit as the mixed WAL
    // sweep): free-running readers on a single CPU re-acquire the shard
    // gates back to back and can starve the writer's exclusive
    // acquisition — with pacing the sweep measures commit cost under
    // read load, not starvation.
    {
      constexpr uint64_t kReadsPerWrite = 8;
      std::atomic<uint64_t> read_tickets{0};
      std::atomic<uint64_t> writes_done{0};
      std::atomic<bool> done{false};
      std::atomic<int> failures{0};
      std::vector<std::vector<double>> lat_ms(kMixReaders);
      Timer wall;
      std::vector<std::thread> readers;
      readers.reserve(kMixReaders);
      for (int t = 0; t < kMixReaders; ++t) {
        readers.emplace_back([&, t] {
          while (true) {
            const uint64_t ticket = read_tickets.fetch_add(1);
            while (!done.load() &&
                   ticket >= kReadsPerWrite * (writes_done.load() + 1)) {
              std::this_thread::yield();
            }
            if (done.load()) break;
            const size_t i = ticket % xpaths.size();
            std::vector<NodeRef> results;
            Timer timer;
            auto s = (*sdb)->Query("main", xpaths[i], &results);
            lat_ms[t].push_back(timer.ElapsedMillis());
            if (!s.ok() || results != baseline[i]) {
              failures.fetch_add(1);
              return;
            }
          }
        });
      }
      std::thread writer([&] {
        for (int w = 0; w < kMixWrites; ++w) {
          while (read_tickets.load() <
                 kReadsPerWrite * static_cast<uint64_t>(w)) {
            std::this_thread::yield();
          }
          auto id = (*sdb)->InsertXml(
              "main",
              "<article><prolog><title>shard sweep filler</title></prolog>"
              "<benchmark><marker>m" +
                  std::to_string(w) + "</marker></benchmark></article>");
          if (!id.ok()) {
            failures.fetch_add(1);
            break;
          }
          writes_done.store(static_cast<uint64_t>(w) + 1);
        }
        done.store(true);
      });
      writer.join();
      for (std::thread& th : readers) th.join();
      const double wall_ms = wall.ElapsedMillis();
      FIX_CHECK(failures.load() == 0);

      // Quiescent validation: the workload still answers the baseline and
      // every routed insert is query-visible through its shard's index.
      for (size_t i = 0; i < xpaths.size(); ++i) {
        std::vector<NodeRef> results;
        auto s = (*sdb)->Query("main", xpaths[i], &results);
        FIX_CHECK(s.ok());
        FIX_CHECK(results == baseline[i]);
      }
      {
        std::vector<NodeRef> markers;
        auto s = (*sdb)->Query("main", "//benchmark/marker", &markers);
        FIX_CHECK(s.ok());
        FIX_CHECK(markers.size() == static_cast<size_t>(kMixWrites));
      }

      std::vector<double> merged;
      for (const std::vector<double>& v : lat_ms) {
        merged.insert(merged.end(), v.begin(), v.end());
      }
      std::sort(merged.begin(), merged.end());
      const uint64_t reads = merged.size();
      char qps_s[32];
      std::snprintf(qps_s, sizeof(qps_s), "%.1f",
                    wall_ms > 0 ? reads / (wall_ms / 1000.0) : 0.0);
      report.Row({DataSetName(DataSet::kTcmd), "mixed",
                  std::to_string(shards), std::to_string(kMixReaders),
                  Num(reads), Num(kMixWrites), Ms(wall_ms), qps_s,
                  Ms(Percentile(merged, 50)), Ms(Percentile(merged, 95)),
                  Ms(Percentile(merged, 99)), Num(expected_per_pass)});
    }
  }
}

/// Remote sweep against a running fixd server (`--remote host:port`). The
/// server must serve the default-scale DBLP corpus with the paper's depth
/// limit (`fixctl gen DIR dblp` + `fixctl build DIR --depth 6` — the
/// generators are deterministic, so that corpus is identical to
/// BuildCorpus(kDblp) here, and depth 6 matches BuildFix's ground-truth
/// index: result bytes include ordering, which follows candidate order). The sweep first proves the
/// wire path is lossless — every QUERY and QUERY_BATCH result vector must
/// be byte-identical to an in-process execution over the same corpus —
/// then measures end-to-end QPS and tail latency across 1/2/4/8 client
/// connections, each thread owning one FixdClient (one request in flight
/// per connection, matching the server's model).
void RunRemote(const std::string& address) {
  const Workload& w = kWorkloads[0];
  FIX_CHECK(w.data == DataSet::kDblp);

  Report report("bench_qps_remote");
  report.Note("Network sweep against fixd at " + address +
              "; per-op latency includes wire framing, one TCP round "
              "trip, and server-side dispatch.");
  report.Note("Every response is checked byte-identical to an in-process "
              "execution over the same deterministic DBLP corpus.");

  // In-process ground truth: same corpus, same workload, local execution.
  std::unique_ptr<Corpus> corpus = BuildCorpus(w.data);
  Result<FixIndex> index = BuildFix(corpus.get(), w.data,
                                    /*clustered=*/false, 0, nullptr,
                                    "qps_remote");
  FIX_CHECK(index.ok());
  std::vector<std::string> xpaths(w.xpaths.begin(), w.xpaths.end());
  std::vector<std::vector<NodeRef>> expected(xpaths.size());
  {
    FixQueryProcessor proc(corpus.get(), &*index);
    for (size_t i = 0; i < xpaths.size(); ++i) {
      TwigQuery q = Compile(corpus.get(), xpaths[i]);
      // kPerCandidate is what Database::Query runs server-side (and what
      // ExecuteMany's deterministic merge reproduces), so the comparison
      // below is order-sensitive byte equality, not just set equality.
      auto s = proc.Execute(q, &expected[i], RefineMode::kPerCandidate);
      FIX_CHECK(s.ok());
    }
  }

  auto same = [](const std::vector<wire::WireNodeRef>& got,
                 const std::vector<NodeRef>& want) {
    if (got.size() != want.size()) return false;
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].doc_id != want[i].doc_id ||
          got[i].node_id != want[i].node_id) {
        return false;
      }
    }
    return true;
  };

  // Parity phase: single QUERYs plus one QUERY_BATCH with server-side
  // fan-out; a mismatch is a wire-protocol or server-dispatch bug, so it
  // aborts the benchmark rather than producing numbers for a broken path.
  {
    auto client = server::FixdClient::Connect(address);
    FIX_CHECK(client.ok());
    for (size_t i = 0; i < xpaths.size(); ++i) {
      auto outcome = (*client)->Query("main", xpaths[i]);
      FIX_CHECK(outcome.ok());
      FIX_CHECK(same(outcome->results, expected[i]));
    }
    auto batch = (*client)->QueryBatch("main", xpaths, /*threads=*/2);
    FIX_CHECK(batch.ok());
    FIX_CHECK(batch->size() == xpaths.size());
    for (size_t i = 0; i < xpaths.size(); ++i) {
      FIX_CHECK((*batch)[i].code == wire::Code::kOk);
      FIX_CHECK(same((*batch)[i].results, expected[i]));
    }
    report.Note("parity: " + std::to_string(xpaths.size()) +
                " QUERY + 1 QUERY_BATCH byte-identical to in-process");
  }

  report.Section("remote concurrent reads: " +
                 std::string(DataSetName(w.data)));
  report.Header({"dataset", "transport", "threads", "ops", "wall_ms", "qps",
                 "p50_ms", "p95_ms", "p99_ms", "results_per_pass"});
  uint64_t expected_per_pass = 0;
  for (const std::vector<NodeRef>& v : expected) expected_per_pass += v.size();

  for (int n : kThreadCounts) {
    const int ops_per_thread =
        kRoundsPerThread * static_cast<int>(xpaths.size());
    std::vector<std::vector<double>> lat_ms(n);
    std::atomic<int> failures{0};

    Timer wall;
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (int t = 0; t < n; ++t) {
      threads.emplace_back([&, t] {
        auto client = server::FixdClient::Connect(address);
        if (!client.ok()) {
          failures.fetch_add(1);
          return;
        }
        lat_ms[t].reserve(ops_per_thread);
        for (int round = 0; round < kRoundsPerThread; ++round) {
          for (size_t i = 0; i < xpaths.size(); ++i) {
            Timer timer;
            auto outcome = (*client)->Query("main", xpaths[i]);
            lat_ms[t].push_back(timer.ElapsedMillis());
            if (!outcome.ok() || !same(outcome->results, expected[i])) {
              failures.fetch_add(1);
              return;
            }
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    const double wall_ms = wall.ElapsedMillis();
    FIX_CHECK(failures.load() == 0);

    std::vector<double> merged;
    merged.reserve(static_cast<size_t>(n) * ops_per_thread);
    for (const std::vector<double>& v : lat_ms) {
      merged.insert(merged.end(), v.begin(), v.end());
    }
    std::sort(merged.begin(), merged.end());
    const uint64_t ops = merged.size();
    char qps_s[32];
    std::snprintf(qps_s, sizeof(qps_s), "%.1f",
                  wall_ms > 0 ? ops / (wall_ms / 1000.0) : 0.0);
    report.Row({DataSetName(w.data), "fixd", std::to_string(n), Num(ops),
                Ms(wall_ms), qps_s, Ms(Percentile(merged, 50)),
                Ms(Percentile(merged, 95)), Ms(Percentile(merged, 99)),
                Num(expected_per_pass)});
  }
}

}  // namespace
}  // namespace fix::bench

int main(int argc, char** argv) {
  std::string remote;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--remote=", 0) == 0) {
      remote = arg.substr(std::strlen("--remote="));
    } else if (arg == "--remote" && i + 1 < argc) {
      remote = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--remote host:port]\n"
                   "  (no flags: in-process sweeps; --remote: network sweep "
                   "against a fixd serving the default DBLP corpus)\n",
                   argv[0]);
      return 2;
    }
  }
  if (remote.empty()) {
    fix::bench::Run();
  } else {
    fix::bench::RunRemote(remote);
  }
  return 0;
}
