// Concurrent-read throughput: N threads hammer one shared unclustered FIX
// index with a fixed XPath workload (a slice of the Figure 6 grid), each
// thread owning its own FixQueryProcessor per the concurrent-read contract
// (fix_index.h / btree.h / buffer_pool.h). Reports QPS and tail latency
// (p50/p95/p99) per thread count, plus a determinism check: every thread
// must produce the same per-pass result total.
//
// On a single-CPU container the sweep shows QPS ~flat across thread counts
// (speedup ~1x); the harness exists to prove correctness under concurrency
// and to measure scaling headroom on real multi-core hardware.

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"
#include "harness.h"

namespace fix::bench {
namespace {

struct Workload {
  DataSet data;
  std::vector<const char*> xpaths;
};

const Workload kWorkloads[] = {
    {DataSet::kDblp,
     {"//inproceedings/title/i", "//dblp/inproceedings/author",
      "//inproceedings[url]/title[sub][i]", "//article[number]/author"}},
    {DataSet::kXMark,
     {"//item/mailbox/mail/text/emph/keyword",
      "//description/parlist/listitem",
      "//item[name]/mailbox/mail[to]/text[bold]/emph/bold",
      "//item[payment][quantity][shipping][mailbox/mail/text]"
      "/description/parlist"}},
};

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr int kRoundsPerThread = 8;

/// Nearest-rank percentile over a sorted sample (p in [0, 100]).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * sorted.size()));
  if (rank > 0) --rank;
  return sorted[std::min(rank, sorted.size() - 1)];
}

void Run() {
  Report report("bench_qps");
  report.Note("Concurrent read throughput: N threads, one shared "
              "unclustered index, each thread running " +
              std::to_string(kRoundsPerThread) +
              " passes over a fixed 4-query workload.");
  report.Note("Single-CPU containers show ~1x scaling; the harness proves "
              "thread-safety (identical per-thread result totals) and "
              "measures headroom for multi-core hosts.");
  report.Header({"dataset", "threads", "ops", "wall_ms", "qps", "p50_ms",
                 "p95_ms", "p99_ms", "results_per_pass"});

  for (const Workload& w : kWorkloads) {
    std::unique_ptr<Corpus> corpus = BuildCorpus(w.data);
    Result<FixIndex> index =
        BuildFix(corpus.get(), w.data, /*clustered=*/false, 0, nullptr,
                 std::string("qps_") + DataSetName(w.data));
    FIX_CHECK(index.ok());

    std::vector<TwigQuery> queries;
    queries.reserve(w.xpaths.size());
    for (const char* xpath : w.xpaths) {
      queries.push_back(Compile(corpus.get(), xpath));
    }

    // Single-threaded ground truth for the determinism check: results per
    // full pass over the workload.
    uint64_t expected_per_pass = 0;
    {
      FixQueryProcessor proc(corpus.get(), &*index);
      for (const TwigQuery& q : queries) {
        auto s = proc.Execute(q, nullptr, RefineMode::kBatch);
        FIX_CHECK(s.ok());
        expected_per_pass += s->result_count;
      }
    }

    for (int n : kThreadCounts) {
      std::vector<std::vector<double>> lat_ms(n);
      std::vector<uint64_t> result_totals(n, 0);
      const int ops_per_thread =
          kRoundsPerThread * static_cast<int>(queries.size());

      Timer wall;
      std::vector<std::thread> threads;
      threads.reserve(n);
      for (int t = 0; t < n; ++t) {
        threads.emplace_back([&, t] {
          FixQueryProcessor proc(corpus.get(), &*index);
          lat_ms[t].reserve(ops_per_thread);
          for (int round = 0; round < kRoundsPerThread; ++round) {
            for (const TwigQuery& q : queries) {
              Timer timer;
              auto s = proc.Execute(q, nullptr, RefineMode::kBatch);
              lat_ms[t].push_back(timer.ElapsedMillis());
              FIX_CHECK(s.ok());
              result_totals[t] += s->result_count;
            }
          }
        });
      }
      for (std::thread& th : threads) th.join();
      double wall_ms = wall.ElapsedMillis();

      // Every thread ran the same passes against the same shared index;
      // any divergence means the concurrent read path corrupted a lookup.
      for (int t = 0; t < n; ++t) {
        FIX_CHECK(result_totals[t] ==
                  expected_per_pass * kRoundsPerThread);
      }

      std::vector<double> merged;
      merged.reserve(static_cast<size_t>(n) * ops_per_thread);
      for (const std::vector<double>& v : lat_ms) {
        merged.insert(merged.end(), v.begin(), v.end());
      }
      std::sort(merged.begin(), merged.end());
      const uint64_t ops = merged.size();
      double qps = wall_ms > 0 ? ops / (wall_ms / 1000.0) : 0;

      char qps_s[32];
      std::snprintf(qps_s, sizeof(qps_s), "%.1f", qps);
      report.Row({DataSetName(w.data), std::to_string(n), Num(ops),
                  Ms(wall_ms), qps_s, Ms(Percentile(merged, 50)),
                  Ms(Percentile(merged, 95)), Ms(Percentile(merged, 99)),
                  Num(expected_per_pass)});
    }
  }
}

}  // namespace
}  // namespace fix::bench

int main() {
  fix::bench::Run();
  return 0;
}
