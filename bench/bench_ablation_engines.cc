// Ablation E: refinement-operator choice. The paper positions FIX as
// operator-agnostic ("can be coupled with any path processing operator");
// this harness runs the same query workload through the navigational
// matcher (NoK-style) and the join-based engine (structural joins) on full
// documents, comparing wall time and each engine's own work metric.

#include <algorithm>
#include <string>

#include "common/timer.h"
#include "datagen/query_gen.h"
#include "harness.h"
#include "query/match.h"
#include "query/structural_join.h"

namespace fix::bench {
namespace {

void Run() {
  Report report("bench_ablation_engines");
  report.Note("Ablation E: navigational vs join-based refinement engines "
              "(full-document evaluation, 200 random queries per set).");
  report.Header({"dataset", "nav_ms", "join_ms", "nav_nodes",
                 "join_positions", "results_equal"});

  for (DataSet data : {DataSet::kXMark, DataSet::kTreebank, DataSet::kDblp}) {
    auto corpus = BuildCorpus(data);
    QueryGenOptions qopts;
    qopts.seed = 515;
    qopts.max_depth = 5;
    auto queries = GenerateRandomQueries(*corpus, 200, qopts);

    double nav_ms = 0, join_ms = 0;
    uint64_t nav_nodes = 0, join_positions = 0;
    bool equal = true;
    for (uint32_t d = 0; d < corpus->num_docs(); ++d) {
      const Document& doc = corpus->doc(d);
      PositionIndex index(&doc);
      for (const auto& q : queries) {
        Timer t1;
        TwigMatcher matcher(&doc);
        auto via_nav = matcher.Evaluate(q);
        nav_ms += t1.ElapsedMillis();
        nav_nodes += matcher.nodes_visited();

        Timer t2;
        StructuralJoinEngine engine(&doc, &index);
        auto via_join = engine.Evaluate(q);
        join_ms += t2.ElapsedMillis();
        join_positions += engine.positions_scanned();

        std::sort(via_nav.begin(), via_nav.end());
        if (via_nav != via_join) equal = false;
      }
    }
    report.Row({DataSetName(data), Ms(nav_ms), Ms(join_ms), Num(nav_nodes),
                Num(join_positions), equal ? "yes" : "NO"});
  }
  report.Note("Join-based evaluation wins when per-label streams are short "
              "relative to the document (selective labels); navigation wins "
              "on label-dense recursive data.");
}

}  // namespace
}  // namespace fix::bench

int main() {
  fix::bench::Run();
  return 0;
}
