// Integration tests through the Database facade — the same flow the
// examples and a downstream user would run.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/database.h"
#include "datagen/datasets.h"

namespace fix {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_db_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    db_ = std::make_unique<Database>(dir_);
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, QuickstartFlow) {
  ASSERT_TRUE(db_->AddXml("<bib><book><title>A</title><author>X</author>"
                          "</book></bib>").ok());
  ASSERT_TRUE(db_->AddXml("<bib><article><title>B</title></article></bib>")
                  .ok());
  ASSERT_TRUE(db_->Finalize().ok());
  BuildStats stats;
  auto index = db_->BuildIndex("main", IndexOptions{}, &stats);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_EQ(stats.entries, 2u);

  std::vector<NodeRef> results;
  auto exec = db_->Query("main", "//book/title", &results);
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_EQ(results.size(), 1u);
  EXPECT_EQ(exec->result_count, 1u);
}

TEST_F(DatabaseTest, MultipleIndexesCoexist) {
  ASSERT_TRUE(db_->AddXml("<a><b><c/></b></a>").ok());
  IndexOptions unclustered;
  IndexOptions clustered;
  clustered.clustered = true;
  ASSERT_TRUE(db_->BuildIndex("u", unclustered, nullptr).ok());
  ASSERT_TRUE(db_->BuildIndex("c", clustered, nullptr).ok());
  EXPECT_NE(db_->index("u"), nullptr);
  EXPECT_NE(db_->index("c"), nullptr);
  EXPECT_EQ(db_->index("missing"), nullptr);

  auto via_u = db_->Query("u", "//b/c");
  auto via_c = db_->Query("c", "//b/c");
  ASSERT_TRUE(via_u.ok());
  ASSERT_TRUE(via_c.ok());
  EXPECT_EQ(via_u->result_count, via_c->result_count);
}

TEST_F(DatabaseTest, AttachReopensPersistedIndex) {
  ASSERT_TRUE(db_->AddXml("<a><b/><c/></a>").ok());
  ASSERT_TRUE(db_->AddXml("<a><b/></a>").ok());
  ASSERT_TRUE(db_->corpus()->Save(dir_).ok());
  ASSERT_TRUE(db_->BuildIndex("main", IndexOptions{}, nullptr).ok());
  auto before = db_->Query("main", "/a[b]/c");
  ASSERT_TRUE(before.ok());

  // Simulate a new process: fresh Database over the same workdir.
  db_ = std::make_unique<Database>(dir_);
  auto corpus = Corpus::Load(dir_);
  ASSERT_TRUE(corpus.ok());
  *db_->corpus() = std::move(corpus).value();
  auto attached = db_->AttachIndex("main");
  ASSERT_TRUE(attached.ok()) << attached.status();
  auto after = db_->Query("main", "/a[b]/c");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->result_count, before->result_count);
  EXPECT_EQ(after->candidates, before->candidates);
}

TEST_F(DatabaseTest, AttachMissingIndexFails) {
  ASSERT_TRUE(db_->AddXml("<a/>").ok());
  EXPECT_FALSE(db_->AttachIndex("ghost").ok());
}

TEST_F(DatabaseTest, QueryUnknownIndexFails) {
  ASSERT_TRUE(db_->AddXml("<a/>").ok());
  EXPECT_FALSE(db_->Query("nope", "//a").ok());
}

TEST_F(DatabaseTest, BadXPathSurfacesParseError) {
  ASSERT_TRUE(db_->AddXml("<a/>").ok());
  ASSERT_TRUE(db_->BuildIndex("main", IndexOptions{}, nullptr).ok());
  auto exec = db_->Query("main", "not an xpath");
  ASSERT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsParseError());
}

TEST_F(DatabaseTest, GeneratedWorkloadEndToEnd) {
  XMarkOptions options;
  options.num_items = 18;
  options.num_people = 18;
  options.num_open_auctions = 18;
  options.num_closed_auctions = 18;
  options.num_categories = 9;
  GenerateXMark(db_->corpus(), options);
  ASSERT_TRUE(db_->Finalize().ok());
  IndexOptions iopts;
  iopts.depth_limit = 6;
  BuildStats stats;
  ASSERT_TRUE(db_->BuildIndex("xmark", iopts, &stats).ok());
  EXPECT_GT(stats.entries, 1000u);

  auto exec = db_->Query("xmark", "//closed_auction/annotation/description");
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_GT(exec->result_count, 0u);
  EXPECT_GT(exec->pruning_power(), 0.5);  // structure-rich data prunes well
}

TEST_F(DatabaseTest, ValueIndexEndToEnd) {
  DblpOptions options;
  options.num_publications = 200;
  GenerateDblp(db_->corpus(), options);
  IndexOptions iopts;
  iopts.depth_limit = 6;
  iopts.value_beta = 10;
  ASSERT_TRUE(db_->BuildIndex("values", iopts, nullptr).ok());
  auto exec =
      db_->Query("values", "//proceedings[publisher=\"Springer\"][title]");
  ASSERT_TRUE(exec.ok()) << exec.status();
  // The generator makes Springer the most common publisher; matches exist.
  EXPECT_GT(exec->result_count, 0u);
}

}  // namespace
}  // namespace fix
