// Tests for query compilation: //-edge decomposition (Section 5) and twig
// query -> bisimulation-graph conversion (Algorithm 2).

#include <gtest/gtest.h>

#include <string>

#include "query/compile.h"
#include "query/xpath_parser.h"
#include "xml/value_hash.h"

namespace fix {
namespace {

TwigQuery MustParse(const std::string& text, LabelTable* labels) {
  auto q = ParseXPath(text);
  EXPECT_TRUE(q.ok()) << q.status();
  TwigQuery query = std::move(q).value();
  query.ResolveLabels(labels);
  return query;
}

TEST(DecomposeTest, PureTwigStaysWhole) {
  LabelTable labels;
  TwigQuery q = MustParse("//a[b]/c", &labels);
  auto parts = DecomposeAtDescendantEdges(q);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].ToString(), "//a[b]/c");
}

TEST(DecomposeTest, PaperExample) {
  // Section 5: //open_auction[.//bidder[name][email]]/price decomposes into
  // //open_auction/price and //bidder[name][email].
  LabelTable labels;
  TwigQuery q =
      MustParse("//open_auction[.//bidder[name][email]]/price", &labels);
  auto parts = DecomposeAtDescendantEdges(q);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].ToString(), "//open_auction/price");
  EXPECT_EQ(parts[1].ToString(), "//bidder[name][email]");
  EXPECT_TRUE(parts[0].IsPureTwig());
  EXPECT_TRUE(parts[1].IsPureTwig());
}

TEST(DecomposeTest, InteriorDescendantOnMainPath) {
  LabelTable labels;
  TwigQuery q = MustParse("/a/b//c/d", &labels);
  auto parts = DecomposeAtDescendantEdges(q);
  ASSERT_EQ(parts.size(), 2u);
  // Top part keeps the original rooted axis.
  EXPECT_EQ(parts[0].ToString(), "/a/b");
  EXPECT_EQ(parts[1].ToString(), "//c/d");
  EXPECT_EQ(parts[0].steps[parts[0].root].axis, Axis::kChild);
}

TEST(DecomposeTest, CascadedCuts) {
  LabelTable labels;
  TwigQuery q = MustParse("//a[x//y]//b//c", &labels);
  auto parts = DecomposeAtDescendantEdges(q);
  // //a[x], //y, //b, //c (BFS order from the top).
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].ToString(), "//a[x]");
}

TEST(DecomposeTest, ResultStepTracked) {
  LabelTable labels;
  TwigQuery q = MustParse("//a//b/c", &labels);
  auto parts = DecomposeAtDescendantEdges(q);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1].steps[parts[1].result].name, "c");
}

TEST(QueryToBisimTest, LinearPath) {
  LabelTable labels;
  TwigQuery q = MustParse("//a/b/c", &labels);
  auto graph = QueryToBisimGraph(q);
  ASSERT_TRUE(graph.ok()) << graph.status();
  EXPECT_EQ(graph->num_vertices(), 3u);
  EXPECT_EQ(graph->num_edges(), 2u);
  EXPECT_EQ(labels.Name(graph->vertex(graph->root()).label), "a");
}

TEST(QueryToBisimTest, IdenticalBranchesMerge) {
  // //a[b][b] has two structurally identical predicates; the twig pattern
  // merges them into one vertex (Section 2.2: the pattern is a bisimulation
  // graph of the query tree).
  LabelTable labels;
  TwigQuery q = MustParse("//a[b][b]", &labels);
  auto graph = QueryToBisimGraph(q);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_vertices(), 2u);
}

TEST(QueryToBisimTest, BranchingPattern) {
  LabelTable labels;
  TwigQuery q = MustParse("//a[b][c/d]/e", &labels);
  auto graph = QueryToBisimGraph(q);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_vertices(), 5u);  // a, b, c, d, e
  EXPECT_EQ(graph->max_depth(), 3);
}

TEST(QueryToBisimTest, RejectsInteriorDescendant) {
  LabelTable labels;
  TwigQuery q = MustParse("//a//b", &labels);
  EXPECT_FALSE(QueryToBisimGraph(q).ok());
}

TEST(QueryToBisimTest, RejectsUnresolvedLabels) {
  auto parsed = ParseXPath("//a/b");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(QueryToBisimGraph(*parsed).ok());
}

TEST(QueryToBisimTest, ValueConstraintsAddLeaves) {
  LabelTable labels;
  ValueHasher hasher(&labels, 8);
  TwigQuery q = MustParse("//proceedings[publisher=\"Springer\"][title]",
                          &labels);
  auto structural = QueryToBisimGraph(q, nullptr);
  auto valued = QueryToBisimGraph(q, &hasher);
  ASSERT_TRUE(structural.ok());
  ASSERT_TRUE(valued.ok());
  // The value adds exactly one extra leaf vertex under publisher.
  EXPECT_EQ(valued->num_vertices(), structural->num_vertices() + 1);
  EXPECT_EQ(valued->max_depth(), 3);
  EXPECT_EQ(structural->max_depth(), 2);
}

TEST(QueryToBisimTest, SameValueSameBucketVertex) {
  LabelTable labels;
  ValueHasher hasher(&labels, 4);
  TwigQuery q1 = MustParse("//a[b=\"x\"][c=\"x\"]", &labels);
  auto graph = QueryToBisimGraph(q1, &hasher);
  ASSERT_TRUE(graph.ok());
  // b and c both have the same hashed value child; the value vertex is
  // shared (same label, same empty child set).
  EXPECT_EQ(graph->num_vertices(), 4u);  // a, b, c, #vK
}

}  // namespace
}  // namespace fix
