// Tests for the F&B-index baseline: covering-index exactness on structural
// queries (results must equal the ground-truth matcher's, with no document
// access) and value-query refinement.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "baseline/fb_index.h"
#include "baseline/full_scan.h"
#include "datagen/datasets.h"
#include "datagen/query_gen.h"
#include "query/xpath_parser.h"

namespace fix {
namespace {

class FbIndexTest : public ::testing::Test {
 protected:
  void AddXml(const std::string& xml) {
    auto id = corpus_.AddXml(xml);
    ASSERT_TRUE(id.ok()) << id.status();
  }

  TwigQuery Query(const std::string& text) {
    auto q = ParseXPath(text);
    EXPECT_TRUE(q.ok()) << q.status();
    TwigQuery query = std::move(q).value();
    query.ResolveLabels(corpus_.labels());
    return query;
  }

  void ExpectSameResults(FbIndex& index, const TwigQuery& q,
                         const std::string& label) {
    std::vector<NodeRef> via_fb;
    auto stats = index.Execute(q, &via_fb);
    ASSERT_TRUE(stats.ok()) << label;
    std::vector<NodeRef> via_scan;
    FullScan(corpus_, q, &via_scan);
    std::set<std::pair<uint32_t, uint32_t>> a, b;
    for (auto r : via_fb) a.insert({r.doc_id, r.node_id});
    for (auto r : via_scan) b.insert({r.doc_id, r.node_id});
    EXPECT_EQ(a, b) << label;
    EXPECT_EQ(stats->result_count, b.size()) << label;
  }

  Corpus corpus_;
};

TEST_F(FbIndexTest, SimplePathsExact) {
  AddXml("<a><b><c/></b><b/></a>");
  AddXml("<a><d><c/></d></a>");
  FbBuildStats build;
  auto index = FbIndex::Build(&corpus_, &build);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_GT(build.classes, 0u);
  for (const char* text : {"/a/b", "//c", "//b/c", "/a/d/c", "//a//c"}) {
    ExpectSameResults(*index, Query(text), text);
  }
}

TEST_F(FbIndexTest, BranchingPathsExact) {
  AddXml(
      "<lib><book><title/><isbn/><author><name/></author></book>"
      "<book><title/></book>"
      "<journal><title/><isbn/></journal></lib>");
  auto index = FbIndex::Build(&corpus_, nullptr);
  ASSERT_TRUE(index.ok());
  for (const char* text :
       {"//book[isbn]/title", "//book[author/name]/title",
        "/lib[journal]/book/title", "//book[title][isbn]",
        "//lib//title"}) {
    ExpectSameResults(*index, Query(text), text);
  }
}

TEST_F(FbIndexTest, RecursiveDataExact) {
  AddXml("<S><S><NP><PP/></NP><S><NP/></S></S><NP><NP><PP/></NP></NP></S>");
  auto index = FbIndex::Build(&corpus_, nullptr);
  ASSERT_TRUE(index.ok());
  for (const char* text : {"//S/NP", "//S//NP", "//NP[PP]", "//S/S/NP",
                           "//NP/NP/PP", "//S[NP]/S"}) {
    ExpectSameResults(*index, Query(text), text);
  }
}

TEST_F(FbIndexTest, ValueQueriesRefineOnDocuments) {
  AddXml("<p><pub>Springer</pub><t/></p>");
  AddXml("<p><pub>ACM</pub><t/></p>");
  auto index = FbIndex::Build(&corpus_, nullptr);
  ASSERT_TRUE(index.ok());
  TwigQuery q = Query("/p[pub=\"Springer\"]/t");
  std::vector<NodeRef> results;
  auto stats = index->Execute(q, &results);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc_id, 0u);
  EXPECT_GT(stats->refined_nodes, 0u);
}

TEST_F(FbIndexTest, RandomQueriesOnGeneratedDataExact) {
  TcmdOptions options;
  options.num_docs = 40;
  options.seed = 5;
  GenerateTcmd(&corpus_, options);
  auto index = FbIndex::Build(&corpus_, nullptr);
  ASSERT_TRUE(index.ok());
  QueryGenOptions qopts;
  qopts.seed = 17;
  qopts.max_depth = 3;
  auto queries = GenerateRandomQueries(corpus_, 40, qopts);
  ASSERT_GT(queries.size(), 10u);
  for (const auto& q : queries) {
    ExpectSameResults(*index, q, q.ToString());
  }
}

TEST_F(FbIndexTest, EmptyQueryResult) {
  AddXml("<a><b/></a>");
  auto index = FbIndex::Build(&corpus_, nullptr);
  ASSERT_TRUE(index.ok());
  TwigQuery q = Query("//zz/yy");
  auto stats = index->Execute(q);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->result_count, 0u);
}

}  // namespace
}  // namespace fix
