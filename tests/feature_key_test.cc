// Tests for the feature-key codec: the memcmp order of encoded keys must
// equal the semantic (label, λ_max, λ_min, λ₂, seq) order — the whole
// range-scan design rests on this — plus round trips including infinities
// (the oversized-pattern sentinel) and the index-value codec.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/feature.h"

namespace fix {
namespace {

FeatureKey Make(LabelId label, double lmax, double l2, uint32_t seq) {
  FeatureKey k;
  k.root_label = label;
  k.lambda_max = lmax;
  k.lambda_min = -lmax;
  k.lambda2 = l2;
  k.seq = seq;
  return k;
}

TEST(FeatureKeyTest, RoundTrip) {
  FeatureKey k = Make(42, 3.14159, 1.25, 7);
  FeatureKey d = DecodeFeatureKey(EncodeFeatureKey(k));
  EXPECT_EQ(d.root_label, 42u);
  EXPECT_DOUBLE_EQ(d.lambda_max, 3.14159);
  EXPECT_DOUBLE_EQ(d.lambda_min, -3.14159);
  EXPECT_DOUBLE_EQ(d.lambda2, 1.25);
  EXPECT_EQ(d.seq, 7u);
}

TEST(FeatureKeyTest, OversizedSentinelRoundTrip) {
  FeatureKey k = FeatureKey::Oversized(9);
  FeatureKey d = DecodeFeatureKey(EncodeFeatureKey(k));
  EXPECT_EQ(d.root_label, 9u);
  EXPECT_EQ(d.lambda_max, std::numeric_limits<double>::infinity());
  EXPECT_EQ(d.lambda_min, -std::numeric_limits<double>::infinity());
  // The sentinel sorts after every finite key of the same label — it must
  // survive any λ_max >= x seek.
  FeatureKey finite = Make(9, 1e300, 0, 0);
  EXPECT_GT(EncodeFeatureKey(k), EncodeFeatureKey(finite));
}

TEST(FeatureKeyTest, EncodedOrderEqualsSemanticOrder) {
  Rng rng(4242);
  std::vector<FeatureKey> keys;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back(Make(static_cast<LabelId>(rng.Uniform(5)),
                        rng.NextDouble() * 100,
                        rng.NextDouble() * 10,
                        static_cast<uint32_t>(rng.Uniform(100))));
  }
  auto semantic_less = [](const FeatureKey& a, const FeatureKey& b) {
    if (a.root_label != b.root_label) return a.root_label < b.root_label;
    if (a.lambda_max != b.lambda_max) return a.lambda_max < b.lambda_max;
    if (a.lambda_min != b.lambda_min) return a.lambda_min < b.lambda_min;
    if (a.lambda2 != b.lambda2) return a.lambda2 < b.lambda2;
    return a.seq < b.seq;
  };
  for (size_t i = 0; i + 1 < keys.size(); i += 2) {
    const FeatureKey& a = keys[i];
    const FeatureKey& b = keys[i + 1];
    bool sem = semantic_less(a, b);
    bool enc = EncodeFeatureKey(a) < EncodeFeatureKey(b);
    // Exactly one of a<b / b<a / a==b; equality is measure-zero here.
    EXPECT_EQ(sem, enc);
  }
}

TEST(FeatureKeyTest, LabelIsThePrimaryDimension) {
  // A huge lambda under a small label still sorts before a tiny lambda
  // under a bigger label.
  FeatureKey small_label = Make(1, 1e12, 1e12, 0);
  FeatureKey big_label = Make(2, 1e-12, 0, 0);
  EXPECT_LT(EncodeFeatureKey(small_label), EncodeFeatureKey(big_label));
}

TEST(FeatureKeyTest, SeqDisambiguatesEqualFeatures) {
  FeatureKey a = Make(3, 2.5, 1.0, 10);
  FeatureKey b = Make(3, 2.5, 1.0, 11);
  std::string ea = EncodeFeatureKey(a), eb = EncodeFeatureKey(b);
  EXPECT_NE(ea, eb);
  EXPECT_LT(ea, eb);
  EXPECT_EQ(ea.size(), kFeatureKeySize);
}

TEST(IndexValueTest, RoundTripBothVariants) {
  IndexValue unclustered{{7, 1234}, 0};
  IndexValue decoded = DecodeIndexValue(EncodeIndexValue(unclustered));
  EXPECT_EQ(decoded.ref.doc_id, 7u);
  EXPECT_EQ(decoded.ref.node_id, 1234u);
  EXPECT_EQ(decoded.clustered_offset, 0u);

  IndexValue clustered{{0, 5}, (1ULL << 45) + 17};
  decoded = DecodeIndexValue(EncodeIndexValue(clustered));
  EXPECT_EQ(decoded.ref.node_id, 5u);
  EXPECT_EQ(decoded.clustered_offset, (1ULL << 45) + 17);
  EXPECT_EQ(EncodeIndexValue(clustered).size(), kIndexValueSize);
}

}  // namespace
}  // namespace fix
