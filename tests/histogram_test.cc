// Tests for the Section 5 costing aid: per-label equi-depth histograms over
// λ_max and FixIndex::EstimateCandidates accuracy.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include <algorithm>
#include <cmath>

#include "core/corpus.h"
#include "core/fix_index.h"
#include "core/histogram.h"
#include "datagen/datasets.h"
#include "datagen/query_gen.h"
#include "query/xpath_parser.h"

namespace fix {
namespace {

class HistogramTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_hist_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(HistogramTest, CountsAndBoundsOnGeneratedIndex) {
  Corpus corpus;
  XMarkOptions gen;
  gen.num_items = 60;
  gen.num_people = 60;
  gen.num_open_auctions = 60;
  gen.num_closed_auctions = 60;
  gen.num_categories = 30;
  GenerateXMark(&corpus, gen);
  IndexOptions options;
  options.depth_limit = 4;
  options.path = dir_ + "/h.fix";
  auto index = FixIndex::Build(&corpus, options, nullptr);
  ASSERT_TRUE(index.ok());

  auto hist = FeatureHistogram::FromBTree(index->btree());
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->total(), index->num_entries());
  EXPECT_GT(hist->num_labels(), 10u);

  // Per-label counts match a direct corpus count.
  LabelId item = corpus.labels()->Find("item");
  ASSERT_NE(item, kInvalidLabel);
  uint64_t actual = 0;
  const Document& doc = corpus.doc(0);
  for (NodeId n = 1; n < doc.num_nodes(); ++n) {
    if (doc.IsElement(n) && doc.label(n) == item) ++actual;
  }
  EXPECT_EQ(hist->LabelCount(item), actual);

  // EstimateGreaterEqual is monotone decreasing in lambda and bounded by
  // the label count.
  double prev = static_cast<double>(hist->LabelCount(item)) + 1;
  for (double lambda : {0.0, 1.0, 5.0, 20.0, 100.0, 1e9}) {
    uint64_t estimate = hist->EstimateGreaterEqual(item, lambda);
    EXPECT_LE(estimate, hist->LabelCount(item));
    EXPECT_LE(static_cast<double>(estimate), prev);
    prev = static_cast<double>(estimate);
  }
  EXPECT_EQ(hist->EstimateGreaterEqual(item, 1e12), 0u);
  EXPECT_EQ(hist->EstimateGreaterEqual(item, 0.0), hist->LabelCount(item));
  EXPECT_EQ(hist->EstimateGreaterEqual(9999999, 0.0), 0u);  // unknown label
}

TEST_F(HistogramTest, EstimateTracksActualCandidates) {
  Corpus corpus;
  TreebankOptions gen;
  gen.num_sentences = 200;
  GenerateTreebank(&corpus, gen);
  IndexOptions options;
  options.depth_limit = 5;
  options.path = dir_ + "/t.fix";
  auto index = FixIndex::Build(&corpus, options, nullptr);
  ASSERT_TRUE(index.ok());

  QueryGenOptions qopts;
  qopts.seed = 71;
  qopts.max_depth = 5;
  auto queries = GenerateRandomQueries(corpus, 40, qopts);
  ASSERT_GT(queries.size(), 10u);
  const Document& doc = corpus.doc(0);
  for (const auto& q : queries) {
    auto estimate = index->EstimateCandidates(q);
    auto lookup = index->Lookup(q);
    ASSERT_TRUE(estimate.ok());
    ASSERT_TRUE(lookup.ok());
    uint64_t actual = lookup->candidates.size();
    // The estimate over-counts by at most one equi-depth bucket of the
    // root label's population (the partially-covered boundary bucket) and
    // under-counts only by integer rounding.
    uint64_t label_count = 0;
    for (NodeId n = 1; n < doc.num_nodes(); ++n) {
      if (doc.IsElement(n) && doc.label(n) == q.steps[q.root].label) {
        ++label_count;
      }
    }
    double bucket = static_cast<double>(label_count) / 32.0;
    EXPECT_LE(static_cast<double>(*estimate),
              static_cast<double>(actual) + bucket + 40)
        << q.ToString();
    EXPECT_GE(static_cast<double>(*estimate) + 40.0,
              static_cast<double>(actual))
        << q.ToString();
  }
}

TEST_F(HistogramTest, EstimateInvalidatedByUpdates) {
  Corpus corpus;
  ASSERT_TRUE(corpus.AddXml("<a><b/></a>").ok());
  IndexOptions options;
  options.depth_limit = 2;
  options.path = dir_ + "/u.fix";
  auto index = FixIndex::Build(&corpus, options, nullptr);
  ASSERT_TRUE(index.ok());

  auto parsed_q = [&](const char* text) {
    auto p = ParseXPath(text);
    TwigQuery q = std::move(p).value();
    q.ResolveLabels(corpus.labels());
    return q;
  };
  auto before = index->EstimateCandidates(parsed_q("//a/b"));
  ASSERT_TRUE(before.ok());

  auto id = corpus.AddXml("<a><b/></a>");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(index->InsertDocument(*id, nullptr).ok());
  auto after = index->EstimateCandidates(parsed_q("//a/b"));
  ASSERT_TRUE(after.ok());
  EXPECT_GT(*after, *before);
}

}  // namespace
}  // namespace fix
