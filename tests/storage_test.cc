// Unit tests for the storage substrate below the B+-tree: page file,
// buffer pool (caching, pinning, eviction, write-back), record store.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/record_store.h"

namespace fix {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_storage_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::string dir_;
};

// --- PageFile ---------------------------------------------------------------

TEST_F(StorageTest, PageFileAllocateWriteRead) {
  PageFile file;
  ASSERT_TRUE(file.Open(Path("pages"), true).ok());
  PageId p0, p1;
  ASSERT_TRUE(file.AllocatePage(&p0).ok());
  ASSERT_TRUE(file.AllocatePage(&p1).ok());
  EXPECT_EQ(p0, 0u);
  EXPECT_EQ(p1, 1u);
  EXPECT_EQ(file.num_pages(), 2u);

  std::string buf(kPageSize, 'x');
  ASSERT_TRUE(file.WritePage(p1, buf.data()).ok());
  std::string read(kPageSize, 0);
  ASSERT_TRUE(file.ReadPage(p1, read.data()).ok());
  EXPECT_EQ(read, buf);
  // Allocation is metadata-only: a page that was never written has no valid
  // header yet, so reading it reports corruption rather than silent zeros.
  Status fresh = file.ReadPage(p0, read.data());
  EXPECT_TRUE(fresh.IsCorruption()) << fresh.ToString();
  ASSERT_TRUE(file.WritePage(p0, buf.data()).ok());
  ASSERT_TRUE(file.ReadPage(p0, read.data()).ok());
  EXPECT_EQ(read, buf);
}

TEST_F(StorageTest, PageFileReadPastEndFails) {
  PageFile file;
  ASSERT_TRUE(file.Open(Path("pages"), true).ok());
  char buf[kPageSize];
  EXPECT_FALSE(file.ReadPage(0, buf).ok());
}

TEST_F(StorageTest, PageFileReopenRecoversPageCount) {
  {
    PageFile file;
    ASSERT_TRUE(file.Open(Path("pages"), true).ok());
    PageId id;
    ASSERT_TRUE(file.AllocatePage(&id).ok());
    ASSERT_TRUE(file.AllocatePage(&id).ok());
    ASSERT_TRUE(file.Sync().ok());
    ASSERT_TRUE(file.Close().ok());
  }
  PageFile file;
  ASSERT_TRUE(file.Open(Path("pages"), false).ok());
  EXPECT_EQ(file.num_pages(), 2u);
}

TEST_F(StorageTest, PageFileCountsIo) {
  PageFile file;
  ASSERT_TRUE(file.Open(Path("pages"), true).ok());
  PageId id;
  ASSERT_TRUE(file.AllocatePage(&id).ok());
  char buf[kPageSize] = {0};
  ASSERT_TRUE(file.WritePage(id, buf).ok());
  ASSERT_TRUE(file.ReadPage(id, buf).ok());
  ASSERT_TRUE(file.ReadPage(id, buf).ok());
  EXPECT_EQ(file.reads(), 2u);
  EXPECT_EQ(file.writes(), 1u);  // allocation is metadata-only, no write
}

// --- BufferPool -------------------------------------------------------------

TEST_F(StorageTest, BufferPoolCachesPages) {
  PageFile file;
  ASSERT_TRUE(file.Open(Path("pool"), true).ok());
  BufferPool pool(&file, 8);
  auto page = pool.New();
  ASSERT_TRUE(page.ok());
  PageId id = page->page_id();
  page->data()[0] = 'z';
  page->MarkDirty();
  page->Release();

  auto again = pool.Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[0], 'z');
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 0u);
}

TEST_F(StorageTest, BufferPoolEvictsLruAndWritesBack) {
  PageFile file;
  ASSERT_TRUE(file.Open(Path("pool"), true).ok());
  BufferPool pool(&file, 8);
  std::vector<PageId> ids;
  for (int i = 0; i < 20; ++i) {
    auto page = pool.New();
    ASSERT_TRUE(page.ok());
    page->data()[0] = static_cast<char>('a' + i);
    page->MarkDirty();
    ids.push_back(page->page_id());
  }
  EXPECT_GT(pool.evictions(), 0u);
  // Every page's content must survive eviction.
  for (int i = 0; i < 20; ++i) {
    auto page = pool.Fetch(ids[i]);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->data()[0], static_cast<char>('a' + i)) << i;
  }
}

TEST_F(StorageTest, BufferPoolPinnedPagesNotEvicted) {
  PageFile file;
  ASSERT_TRUE(file.Open(Path("pool"), true).ok());
  BufferPool pool(&file, 8);
  // Hold pins on 8 pages: the pool is saturated.
  std::vector<PageHandle> pinned;
  for (int i = 0; i < 8; ++i) {
    auto page = pool.New();
    ASSERT_TRUE(page.ok());
    pinned.push_back(std::move(page).value());
  }
  // A ninth request must fail (every frame pinned).
  auto overflow = pool.New();
  EXPECT_FALSE(overflow.ok());
  // Releasing one pin unblocks allocation.
  pinned.pop_back();
  auto retry = pool.New();
  EXPECT_TRUE(retry.ok());
}

TEST_F(StorageTest, BufferPoolFlushAllPersists) {
  PageFile file;
  ASSERT_TRUE(file.Open(Path("pool"), true).ok());
  PageId id;
  {
    BufferPool pool(&file, 8);
    auto page = pool.New();
    ASSERT_TRUE(page.ok());
    id = page->page_id();
    std::memcpy(page->data(), "persisted", 9);
    page->MarkDirty();
    page->Release();
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  char buf[kPageSize];
  ASSERT_TRUE(file.ReadPage(id, buf).ok());
  EXPECT_EQ(std::memcmp(buf, "persisted", 9), 0);
}

// --- RecordStore ------------------------------------------------------------

TEST_F(StorageTest, RecordStoreAppendRead) {
  RecordStore store;
  ASSERT_TRUE(store.Open(Path("records"), true).ok());
  auto id1 = store.Append("hello");
  auto id2 = store.Append("world!");
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  auto r1 = store.Read(*id1);
  auto r2 = store.Read(*id2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, "hello");
  EXPECT_EQ(*r2, "world!");
  EXPECT_EQ(store.num_records(), 2u);
  EXPECT_EQ(store.reads(), 2u);
}

TEST_F(StorageTest, RecordStoreEmptyPayload) {
  RecordStore store;
  ASSERT_TRUE(store.Open(Path("records"), true).ok());
  auto id = store.Append("");
  ASSERT_TRUE(id.ok());
  auto r = store.Read(*id);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "");
}

TEST_F(StorageTest, RecordStoreTouchCountsRead) {
  RecordStore store;
  ASSERT_TRUE(store.Open(Path("records"), true).ok());
  auto id = store.Append("payload");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Touch(*id).ok());
  EXPECT_EQ(store.reads(), 1u);
}

TEST_F(StorageTest, RecordStoreBadOffsetDetected) {
  RecordStore store;
  ASSERT_TRUE(store.Open(Path("records"), true).ok());
  ASSERT_TRUE(store.Append("data").ok());
  // Offset 2 lands mid-record: magic check must fail.
  EXPECT_FALSE(store.Read(RecordId{2}).ok());
  EXPECT_FALSE(store.Touch(RecordId{2}).ok());
}

}  // namespace
}  // namespace fix
