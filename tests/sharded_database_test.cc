// ShardedDatabase tests: byte-identical scatter-gather parity against the
// unsharded path on all four datasets at 1/2/4/8 shards (both probe
// engines, both sound_probe settings), the shared plan cache, per-shard
// quarantine isolation, online rebalance, the sharded write path, and a
// concurrent scatter-gather stress. Carries the `concurrency` ctest label
// so CI runs it in the Release and TSan trees.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/fix_index.h"
#include "core/sharded_database.h"
#include "datagen/datasets.h"

namespace fix {
namespace {

class ShardedDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_shard_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Subdir(const std::string& name) {
    std::string d = dir_ + "/" + name;
    std::filesystem::create_directories(d);
    return d;
  }

  std::string dir_;
};

void GenTinyTcmd(Corpus* c) {
  TcmdOptions o;
  o.num_docs = 40;
  GenerateTcmd(c, o);
}
void GenTinyDblp(Corpus* c) {
  DblpOptions o;
  o.num_publications = 240;
  GenerateDblp(c, o);
}
void GenTinyXMark(Corpus* c) {
  XMarkOptions o;
  o.num_items = 50;
  o.num_people = 60;
  o.num_open_auctions = 50;
  o.num_closed_auctions = 40;
  o.num_categories = 25;
  GenerateXMark(c, o);
}
void GenTinyTreebank(Corpus* c) {
  TreebankOptions o;
  o.num_sentences = 100;
  GenerateTreebank(c, o);
}

struct DatasetCase {
  const char* name;
  void (*generate)(Corpus*);
  int depth_limit;
  std::vector<const char*> xpaths;
};

const DatasetCase kDatasets[] = {
    {"tcmd", GenTinyTcmd, 0,
     {"/article/prolog/authors/author/name", "//author/contact/email",
      "/article/body/section/p"}},
    {"dblp", GenTinyDblp, 6,
     {"//inproceedings/title", "//article[number]/author",
      "//dblp/inproceedings/author"}},
    {"xmark", GenTinyXMark, 6,
     {"//item/mailbox/mail", "//closed_auction/annotation/description",
      "//person/name"}},
    {"treebank", GenTinyTreebank, 6,
     {"//EMPTY/S/VP", "//EMPTY/S[VP]/NP", "//S/NP/PP"}},
};

void SetEngineEverywhere(Database* unsharded, ShardedDatabase* sharded,
                         ProbeEngine engine) {
  unsharded->index("main")->set_probe_engine(engine);
  for (uint32_t s = 0; s < sharded->shard_count(); ++s) {
    FixIndex* idx = sharded->shard_db(s)->index("main");
    ASSERT_NE(idx, nullptr);
    idx->set_probe_engine(engine);
  }
}

// The acceptance matrix: every dataset, at 1/2/4/8 shards, under both
// sound_probe settings and both probe engines, must gather byte-identical
// results to the unsharded index over the same documents.
TEST_F(ShardedDatabaseTest, ParityMatrixAcrossDatasetsShardsEnginesSound) {
  for (const DatasetCase& c : kDatasets) {
    SCOPED_TRACE(c.name);
    for (bool sound : {false, true}) {
      SCOPED_TRACE(sound ? "sound_probe" : "paper_probe");
      Database db(Subdir(std::string(c.name) + (sound ? "_s" : "_p")));
      c.generate(db.corpus());
      ASSERT_TRUE(db.Finalize().ok());
      IndexOptions options;
      options.depth_limit = c.depth_limit;
      options.sound_probe = sound;
      ASSERT_TRUE(db.BuildIndex("main", options, nullptr).ok());

      for (uint32_t shards : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("shards=" + std::to_string(shards));
        const std::string sdir = Subdir(std::string(c.name) +
                                        (sound ? "_s" : "_p") + "_n" +
                                        std::to_string(shards));
        ShardedOptions sopts;
        sopts.shard_count = shards;
        sopts.index = options;
        auto sdb = ShardedDatabase::Partition(*db.corpus(), sdir, sopts);
        ASSERT_TRUE(sdb.ok()) << sdb.status();
        ASSERT_TRUE((*sdb)->BuildIndexes("main").ok());
        ASSERT_EQ((*sdb)->shard_count(), shards);

        for (ProbeEngine engine : {ProbeEngine::kBTree, ProbeEngine::kSpatial}) {
          SCOPED_TRACE(engine == ProbeEngine::kBTree ? "btree" : "spatial");
          SetEngineEverywhere(&db, sdb->get(), engine);
          for (const char* xpath : c.xpaths) {
            SCOPED_TRACE(xpath);
            std::vector<NodeRef> expect, got;
            auto base = db.Query("main", xpath, &expect);
            ASSERT_TRUE(base.ok()) << base.status();
            auto stats = (*sdb)->Query("main", xpath, &got);
            ASSERT_TRUE(stats.ok()) << stats.status();
            EXPECT_EQ(got, expect);
            EXPECT_EQ(stats->result_count, base->result_count);
            EXPECT_FALSE(stats->degraded);
            EXPECT_TRUE(stats->used_index);
            // Shards partition the entry space: the scattered index holds
            // exactly the entries the monolithic one does.
            EXPECT_EQ(stats->total_entries, base->total_entries);
          }
        }
      }
    }
  }
}

// One XPath compiled once serves every scatter leg: the shared cache hits
// on repeats while the per-shard Database plan caches stay cold (scatter
// legs enter below Compile).
TEST_F(ShardedDatabaseTest, SharedPlanCacheServesAllShards) {
  Database db(Subdir("src"));
  GenTinyTcmd(db.corpus());
  ASSERT_TRUE(db.Finalize().ok());

  ShardedOptions sopts;
  sopts.shard_count = 4;
  auto sdb = ShardedDatabase::Partition(*db.corpus(), Subdir("sharded"), sopts);
  ASSERT_TRUE(sdb.ok()) << sdb.status();
  ASSERT_TRUE((*sdb)->BuildIndexes("main").ok());

  const std::vector<std::string> xpaths = {"//author/contact/email",
                                           "//author/contact/email",
                                           "/article/body/section/p"};
  for (int round = 0; round < 3; ++round) {
    auto outcomes = (*sdb)->ExecuteMany("main", xpaths);
    ASSERT_TRUE(outcomes.ok());
    for (const auto& out : *outcomes) ASSERT_TRUE(out.status.ok());
  }
  PlanCache::Stats stats = (*sdb)->plan_cache_stats();
  EXPECT_GT(stats.hits, 0u);
  // At most two misses per distinct XPath, ever (the double-checked
  // lookup in Compile records the re-check under the lock as a miss too).
  EXPECT_LE(stats.misses, 4u);
  for (uint32_t s = 0; s < (*sdb)->shard_count(); ++s) {
    PlanCache::Stats shard_stats = (*sdb)->shard_db(s)->plan_cache_stats();
    EXPECT_EQ(shard_stats.hits + shard_stats.misses, 0u)
        << "shard " << s << " compiled on its own";
  }

  // Per-query error isolation mirrors Database::ExecuteMany: a bad XPath
  // fails only itself, an unknown index fails the whole batch.
  auto outcomes =
      (*sdb)->ExecuteMany("main", {"//author", "not an xpath", "//title"});
  ASSERT_TRUE(outcomes.ok());
  EXPECT_TRUE((*outcomes)[0].status.ok());
  EXPECT_EQ((*outcomes)[1].status.code(), StatusCode::kParseError);
  EXPECT_TRUE((*outcomes)[2].status.ok());
  EXPECT_FALSE((*sdb)->ExecuteMany("nope", {"//author"}).ok());
}

// Damage one shard's pages on disk: reopening quarantines that shard alone
// (its queries degrade to a full scan over its slice), the other shards
// keep serving indexed, and the gathered answers never change. Rebuilding
// restores full indexed service.
TEST_F(ShardedDatabaseTest, QuarantineIsolatesTheDamagedShard) {
  Database db(Subdir("src"));
  GenTinyDblp(db.corpus());
  ASSERT_TRUE(db.Finalize().ok());

  const std::string sdir = Subdir("sharded");
  const std::vector<std::string> xpaths = {"//inproceedings/title",
                                           "//dblp/inproceedings/author"};
  std::vector<std::vector<NodeRef>> baseline(xpaths.size());
  {
    ShardedOptions sopts;
    sopts.shard_count = 4;
    auto sdb = ShardedDatabase::Partition(*db.corpus(), sdir, sopts);
    ASSERT_TRUE(sdb.ok()) << sdb.status();
    ASSERT_TRUE((*sdb)->BuildIndexes("main").ok());
    for (size_t q = 0; q < xpaths.size(); ++q) {
      ASSERT_TRUE((*sdb)->Query("main", xpaths[q], &baseline[q]).ok());
      ASSERT_FALSE(baseline[q].empty());
    }
  }  // closed: all shard files released before we damage them

  // Zero a stretch of shard 1's page file, past the header.
  const std::string victim = sdir + "/gen-0/shard-0001/main.fix";
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(8192);
    std::string garbage(4096, '\xee');
    f.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
    ASSERT_TRUE(f.good());
  }

  auto reopened = ShardedDatabase::Open(sdir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ShardedDatabase* sdb = reopened->get();
  std::vector<bool> degraded = sdb->DegradedShards("main");
  ASSERT_EQ(degraded.size(), 4u);
  EXPECT_TRUE(degraded[1]);
  EXPECT_FALSE(degraded[0]);
  EXPECT_FALSE(degraded[2]);
  EXPECT_FALSE(degraded[3]);
  EXPECT_TRUE(sdb->IsDegraded("main"));

  for (size_t q = 0; q < xpaths.size(); ++q) {
    SCOPED_TRACE(xpaths[q]);
    std::vector<NodeRef> results;
    auto stats = sdb->Query("main", xpaths[q], &results);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(results, baseline[q]);   // zero result corruption
    EXPECT_TRUE(stats->degraded);      // the damaged leg full-scanned
    EXPECT_FALSE(stats->used_index);   // merged AND over legs
  }

  // Inserts aimed at the quarantined shard still land: the commit is
  // skipped (full scan already covers the new document), others commit
  // through their healthy COW path. Route a document onto shard 1 by
  // walking global ids until the hash says so.
  uint32_t next = static_cast<uint32_t>(sdb->num_docs());
  while (ShardedDatabase::RouteDoc(next, 4) != 1) {
    auto id = sdb->InsertXml(
        "main", "<dblp><www><title>filler</title></www></dblp>");
    ASSERT_TRUE(id.ok()) << id.status();
    ASSERT_EQ(*id, next);
    ++next;
  }
  auto onto_damaged = sdb->InsertXml(
      "main",
      "<dblp><inproceedings><author>QuarantinedShardAuthor</author>"
      "<title>injected</title></inproceedings></dblp>");
  ASSERT_TRUE(onto_damaged.ok()) << onto_damaged.status();
  std::vector<NodeRef> results;
  auto stats = sdb->Query("main", "//inproceedings/author", &results);
  ASSERT_TRUE(stats.ok());
  bool found = false;
  for (const NodeRef& r : results) found = found || r.doc_id == *onto_damaged;
  EXPECT_TRUE(found);

  // Recovery: a parallel rebuild clears the quarantine and answers match.
  ASSERT_TRUE(sdb->RebuildIndexes("main").ok());
  EXPECT_FALSE(sdb->IsDegraded("main"));
  for (size_t q = 0; q < xpaths.size(); ++q) {
    std::vector<NodeRef> after;
    auto st = sdb->Query("main", xpaths[q], &after);
    ASSERT_TRUE(st.ok());
    EXPECT_FALSE(st->degraded);
    EXPECT_TRUE(st->used_index);
  }
}

// Per-tenant shard overrides (a different probe engine and sound_probe on
// some shards) change per-shard cost profiles, never answers.
TEST_F(ShardedDatabaseTest, PerShardOptionOverridesKeepParity) {
  Database db(Subdir("src"));
  GenTinyXMark(db.corpus());
  ASSERT_TRUE(db.Finalize().ok());
  IndexOptions base;
  base.depth_limit = 6;
  ASSERT_TRUE(db.BuildIndex("main", base, nullptr).ok());

  ShardedOptions sopts;
  sopts.shard_count = 4;
  sopts.index = base;
  sopts.shard_overrides[1].depth_limit = 6;
  sopts.shard_overrides[1].sound_probe = true;
  sopts.shard_overrides[2].depth_limit = 6;
  sopts.shard_overrides[2].probe_engine = ProbeEngine::kSpatial;
  auto sdb = ShardedDatabase::Partition(*db.corpus(), Subdir("sharded"), sopts);
  ASSERT_TRUE(sdb.ok()) << sdb.status();
  ASSERT_TRUE((*sdb)->BuildIndexes("main").ok());

  for (const char* xpath : {"//item/mailbox/mail", "//person/name",
                            "//closed_auction/annotation/description"}) {
    SCOPED_TRACE(xpath);
    std::vector<NodeRef> expect, got;
    ASSERT_TRUE(db.Query("main", xpath, &expect).ok());
    ASSERT_TRUE((*sdb)->Query("main", xpath, &got).ok());
    EXPECT_EQ(got, expect);
  }
}

// Online rebalance: split 2 -> 4 shards and shrink 4 -> 3, with answers
// byte-identical before and after, the layout generation advancing, and
// the whole thing surviving a close/reopen (manifest + routing rederive).
TEST_F(ShardedDatabaseTest, RebalancePreservesAnswersAndSurvivesReopen) {
  Database db(Subdir("src"));
  GenTinyDblp(db.corpus());
  ASSERT_TRUE(db.Finalize().ok());
  const std::string sdir = Subdir("sharded");
  const std::vector<std::string> xpaths = {"//inproceedings/title",
                                           "//article[number]/author"};

  ShardedOptions sopts;
  sopts.shard_count = 2;
  auto created = ShardedDatabase::Partition(*db.corpus(), sdir, sopts);
  ASSERT_TRUE(created.ok()) << created.status();
  ShardedDatabase* sdb = created->get();
  ASSERT_TRUE(sdb->BuildIndexes("main").ok());

  std::vector<std::vector<NodeRef>> baseline(xpaths.size());
  for (size_t q = 0; q < xpaths.size(); ++q) {
    ASSERT_TRUE(sdb->Query("main", xpaths[q], &baseline[q]).ok());
  }
  const uint64_t docs_before = sdb->num_docs();

  ASSERT_TRUE(sdb->Rebalance(4, "main").ok());
  EXPECT_EQ(sdb->shard_count(), 4u);
  EXPECT_EQ(sdb->layout_generation(), 1u);
  EXPECT_EQ(sdb->num_docs(), docs_before);
  for (size_t q = 0; q < xpaths.size(); ++q) {
    std::vector<NodeRef> got;
    ASSERT_TRUE(sdb->Query("main", xpaths[q], &got).ok());
    EXPECT_EQ(got, baseline[q]);
  }
  // The old generation's directories are retired.
  EXPECT_FALSE(std::filesystem::exists(sdir + "/gen-0"));

  ASSERT_TRUE(sdb->Rebalance(3, "main").ok());
  EXPECT_EQ(sdb->shard_count(), 3u);
  for (size_t q = 0; q < xpaths.size(); ++q) {
    std::vector<NodeRef> got;
    ASSERT_TRUE(sdb->Query("main", xpaths[q], &got).ok());
    EXPECT_EQ(got, baseline[q]);
  }

  // Writes after the rebalance, then a cold reopen. The inserted document
  // matches neither workload XPath, so the baselines must hold.
  auto id = sdb->InsertXml("main",
                           "<dblp><www><author>RebalancedAuthor</author>"
                           "<title>t</title></www></dblp>");
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(*id, static_cast<uint32_t>(docs_before));
  (*created).reset();

  auto reopened = ShardedDatabase::Open(sdir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->shard_count(), 3u);
  EXPECT_EQ((*reopened)->num_docs(), docs_before + 1);
  EXPECT_FALSE((*reopened)->IsDegraded("main"));
  std::vector<NodeRef> got;
  ASSERT_TRUE((*reopened)->Query("main", xpaths[0], &got).ok());
  EXPECT_EQ(got, baseline[0]);
}

// Batched inserts commit per shard in parallel and report global ids in
// input order; a reopened database re-derives the same placement.
TEST_F(ShardedDatabaseTest, InsertManyCommitsShardsInParallel) {
  Database db(Subdir("src"));
  GenTinyTcmd(db.corpus());
  ASSERT_TRUE(db.Finalize().ok());
  const std::string sdir = Subdir("sharded");
  ShardedOptions sopts;
  sopts.shard_count = 4;
  auto sdb = ShardedDatabase::Partition(*db.corpus(), sdir, sopts);
  ASSERT_TRUE(sdb.ok()) << sdb.status();
  ASSERT_TRUE((*sdb)->BuildIndexes("main").ok());
  const uint64_t before = (*sdb)->num_docs();

  std::vector<std::string> batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back("<article><prolog><title>batch" + std::to_string(i) +
                    "</title><authors><author><name>BatchedWriter</name>"
                    "</author></authors></prolog><body><section><title>s"
                    "</title><p>x</p></section></body><epilog><references>"
                    "<a_id>r</a_id></references></epilog></article>");
  }
  auto ids = (*sdb)->InsertMany("main", batch);
  ASSERT_TRUE(ids.ok()) << ids.status();
  ASSERT_EQ(ids->size(), batch.size());
  for (size_t i = 0; i < ids->size(); ++i) {
    EXPECT_EQ((*ids)[i], static_cast<uint32_t>(before + i));
  }

  std::vector<NodeRef> results;
  auto stats = (*sdb)->Query("main", "//author/name", &results);
  ASSERT_TRUE(stats.ok());
  size_t inserted_hits = 0;
  for (const NodeRef& r : results) {
    if (r.doc_id >= before) ++inserted_hits;
  }
  EXPECT_EQ(inserted_hits, batch.size());
  EXPECT_FALSE(stats->degraded);

  (*sdb).reset();
  auto reopened = ShardedDatabase::Open(sdir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->num_docs(), before + batch.size());
  std::vector<NodeRef> again;
  ASSERT_TRUE((*reopened)->Query("main", "//author/name", &again).ok());
  EXPECT_EQ(again, results);
}

// TSan target: concurrent scatter-gather readers against a single writer
// inserting documents. The inserted documents share no labels with the
// read workload, so every reader must reproduce its baseline exactly while
// corpus appends, per-shard saves, and COW index commits land underneath.
TEST_F(ShardedDatabaseTest, ConcurrentScatterGatherStress) {
  Database db(Subdir("src"));
  GenTinyXMark(db.corpus());
  ASSERT_TRUE(db.Finalize().ok());
  IndexOptions base;
  base.depth_limit = 6;
  ShardedOptions sopts;
  sopts.shard_count = 4;
  sopts.index = base;
  auto created = ShardedDatabase::Partition(*db.corpus(), Subdir("sharded"),
                                            sopts);
  ASSERT_TRUE(created.ok()) << created.status();
  ShardedDatabase* sdb = created->get();
  ASSERT_TRUE(sdb->BuildIndexes("main").ok());

  const std::vector<std::string> xpaths = {
      "//item/mailbox/mail", "//person/name",
      "//closed_auction/annotation/description",
      "//open_auction[seller]/annotation/description/text"};
  std::vector<std::vector<NodeRef>> baseline(xpaths.size());
  for (size_t q = 0; q < xpaths.size(); ++q) {
    ASSERT_TRUE(sdb->Query("main", xpaths[q], &baseline[q]).ok());
  }

  constexpr int kReaders = 4;
  constexpr int kWriterDocs = 24;
  std::atomic<bool> done{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      for (bool final_pass = false; !final_pass;) {
        final_pass = done.load();
        for (size_t i = 0; i < xpaths.size(); ++i) {
          const size_t q = (i + t) % xpaths.size();
          std::vector<NodeRef> results;
          auto stats = sdb->Query("main", xpaths[q], &results);
          if (!stats.ok() || stats->degraded) {
            failures.fetch_add(1);
          } else if (results != baseline[q]) {
            mismatches.fetch_add(1);
          }
        }
        // Batch path under the same churn.
        auto outcomes = sdb->ExecuteMany("main", xpaths);
        if (!outcomes.ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t q = 0; q < xpaths.size(); ++q) {
          if (!(*outcomes)[q].status.ok() ||
              (*outcomes)[q].results != baseline[q]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }

  for (int i = 0; i < kWriterDocs; ++i) {
    auto id = sdb->InsertXml("main", "<shardnoise><blob>stress doc " +
                                         std::to_string(i) +
                                         "</blob></shardnoise>");
    ASSERT_TRUE(id.ok()) << id.status();
    std::this_thread::yield();
  }
  done.store(true);
  for (std::thread& th : readers) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(sdb->plan_cache_stats().hits, 0u);

  // All writer documents are queryable afterwards, from every shard they
  // hashed onto.
  std::vector<NodeRef> blobs;
  ASSERT_TRUE(sdb->Query("main", "//shardnoise/blob", &blobs).ok());
  EXPECT_EQ(blobs.size(), static_cast<size_t>(kWriterDocs));
}

// Manifest validation: a torn or scribbled manifest must fail the open
// with Corruption, never misroute documents.
TEST_F(ShardedDatabaseTest, CorruptManifestFailsOpen) {
  Database db(Subdir("src"));
  GenTinyTcmd(db.corpus());
  ASSERT_TRUE(db.Finalize().ok());
  const std::string sdir = Subdir("sharded");
  ShardedOptions sopts;
  sopts.shard_count = 2;
  {
    auto sdb = ShardedDatabase::Partition(*db.corpus(), sdir, sopts);
    ASSERT_TRUE(sdb.ok()) << sdb.status();
  }
  EXPECT_TRUE(IsShardedLayout(sdir));
  EXPECT_FALSE(IsShardedLayout(dir_ + "/src"));

  auto layout = ReadShardLayout(sdir);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->shard_count, 2u);
  EXPECT_EQ(layout->shard_dirs.size(), 2u);

  {
    std::ofstream f(sdir + "/shards.manifest",
                    std::ios::binary | std::ios::trunc);
    f << "FXSHgarbage";
  }
  auto reopened = ShardedDatabase::Open(sdir);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption()) << reopened.status();

  EXPECT_FALSE(ShardedDatabase::Partition(*db.corpus(), sdir, sopts).ok())
      << "partitioning over an existing layout must be refused";
}

}  // namespace
}  // namespace fix
