// Guards fixctl's help text against drifting from the flags the parser
// accepts: both are generated from the tables in examples/fixctl_cli.cc,
// and this test pins the tables to the flags the library actually honors
// (IndexOptions fields, query/stats modes).

#include "fixctl_cli.h"

#include <gtest/gtest.h>

#include <string>

namespace {

TEST(FixctlCliTest, EveryCommandPresent) {
  for (const char* name :
       {"gen", "load", "build", "query", "stats", "wal", "help"}) {
    EXPECT_NE(fixctl::FindCommand(name), nullptr) << name;
  }
  EXPECT_EQ(fixctl::FindCommand("nope"), nullptr);
}

TEST(FixctlCliTest, WalCommandShape) {
  // `fixctl wal <dir>` takes no flags; its help must name the things it
  // reports (generation, torn tail) so the synopsis stays honest.
  const fixctl::CliCommand* wal = fixctl::FindCommand("wal");
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(wal->num_flags, 0u);
  EXPECT_EQ(std::string(wal->operands), "<dir>");
  EXPECT_NE(std::string(wal->help).find("generation"), std::string::npos);
  EXPECT_NE(std::string(wal->help).find("torn"), std::string::npos);
}

TEST(FixctlCliTest, BuildFlagsMatchIndexOptions) {
  // One entry per IndexOptions knob fixctl exposes — including the PR 3
  // additions (--threads, --cache-mb) this test exists to keep visible.
  const fixctl::CliCommand* build = fixctl::FindCommand("build");
  ASSERT_NE(build, nullptr);
  for (const char* flag : {"--depth", "--clustered", "--beta", "--lambda2",
                           "--sound", "--threads", "--cache-mb",
                           "--probe-engine", "--shards"}) {
    const fixctl::CliFlag* f = fixctl::FindFlag(*build, flag);
    ASSERT_NE(f, nullptr) << flag;
    EXPECT_NE(f->help[0], '\0') << flag << " has no help text";
  }
  EXPECT_EQ(build->num_flags, 9u)
      << "flag table and this test disagree; update both when fixctl build "
         "gains or loses a flag";
  EXPECT_EQ(fixctl::FindFlag(*build, "--explain"), nullptr);
}

TEST(FixctlCliTest, ValueFlagsDeclareOperands) {
  const fixctl::CliCommand* build = fixctl::FindCommand("build");
  ASSERT_NE(build, nullptr);
  for (const char* flag : {"--depth", "--beta", "--threads", "--cache-mb",
                           "--probe-engine", "--shards"}) {
    ASSERT_NE(fixctl::FindFlag(*build, flag), nullptr);
    EXPECT_NE(fixctl::FindFlag(*build, flag)->value_name, nullptr) << flag;
  }
  for (const char* flag : {"--clustered", "--lambda2", "--sound"}) {
    ASSERT_NE(fixctl::FindFlag(*build, flag), nullptr);
    EXPECT_EQ(fixctl::FindFlag(*build, flag)->value_name, nullptr) << flag;
  }
}

TEST(FixctlCliTest, QueryAndStatsFlags) {
  const fixctl::CliCommand* query = fixctl::FindCommand("query");
  ASSERT_NE(query, nullptr);
  EXPECT_NE(fixctl::FindFlag(*query, "--explain"), nullptr);
  EXPECT_NE(fixctl::FindFlag(*query, "--metrics"), nullptr);
  const fixctl::CliCommand* stats = fixctl::FindCommand("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_NE(fixctl::FindFlag(*stats, "--format"), nullptr);
}

TEST(FixctlCliTest, UsageMentionsEveryFlagOfEveryCommand) {
  // The sync property the satellite fix asked for: a flag cannot exist in
  // the parser's table without appearing in the usage text, because the
  // usage text is generated from the same table — assert it anyway so a
  // rewrite of UsageText() cannot silently drop flags.
  const std::string usage = fixctl::UsageText();
  const std::string help = fixctl::HelpText();
  for (const fixctl::CliCommand& cmd : fixctl::Commands()) {
    EXPECT_NE(usage.find(std::string("fixctl ") + cmd.name),
              std::string::npos)
        << cmd.name;
    for (size_t i = 0; i < cmd.num_flags; ++i) {
      EXPECT_NE(usage.find(cmd.flags[i].name), std::string::npos)
          << cmd.flags[i].name;
      EXPECT_NE(help.find(cmd.flags[i].help), std::string::npos)
          << cmd.flags[i].name;
    }
  }
}

}  // namespace
