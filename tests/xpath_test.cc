// Tests for the XPath-subset parser and the TwigQuery model, including
// every query string used in the paper's evaluation section.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/twig_query.h"
#include "query/xpath_parser.h"

namespace fix {
namespace {

TwigQuery MustParse(const std::string& text) {
  auto q = ParseXPath(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status();
  return std::move(q).value();
}

TEST(XPathParserTest, SimplePath) {
  TwigQuery q = MustParse("/a/b/c");
  EXPECT_EQ(q.steps.size(), 3u);
  EXPECT_EQ(q.steps[q.root].name, "a");
  EXPECT_EQ(q.steps[q.root].axis, Axis::kChild);
  EXPECT_EQ(q.steps[q.result].name, "c");
  EXPECT_EQ(q.Depth(), 3);
  EXPECT_TRUE(q.IsPureTwig());
}

TEST(XPathParserTest, DescendantRoot) {
  TwigQuery q = MustParse("//article/title");
  EXPECT_EQ(q.steps[q.root].axis, Axis::kDescendant);
  EXPECT_TRUE(q.IsPureTwig());
  EXPECT_EQ(q.ToString(), "//article/title");
}

TEST(XPathParserTest, Predicates) {
  TwigQuery q = MustParse("//article[author]/ee");
  EXPECT_EQ(q.steps.size(), 3u);
  const QueryStep& root = q.steps[q.root];
  EXPECT_EQ(root.children.size(), 2u);  // author (pred) + ee (main)
  EXPECT_GE(root.main_child, 0);
  EXPECT_EQ(q.steps[q.result].name, "ee");
  EXPECT_EQ(q.ToString(), "//article[author]/ee");
}

TEST(XPathParserTest, NestedPredicatesWithRelativeDescendant) {
  TwigQuery q = MustParse("//open_auction[.//bidder[name][email]]/price");
  EXPECT_FALSE(q.IsPureTwig());  // .//bidder is an interior descendant edge
  EXPECT_EQ(q.steps[q.result].name, "price");
  // bidder carries two predicates.
  uint32_t bidder = UINT32_MAX;
  for (uint32_t i = 0; i < q.steps.size(); ++i) {
    if (q.steps[i].name == "bidder") bidder = i;
  }
  ASSERT_NE(bidder, UINT32_MAX);
  EXPECT_EQ(q.steps[bidder].axis, Axis::kDescendant);
  EXPECT_EQ(q.steps[bidder].children.size(), 2u);
}

TEST(XPathParserTest, PredicatePath) {
  TwigQuery q = MustParse(
      "//item[payment][quantity][shipping][mailbox/mail/text]"
      "/description/parlist");
  EXPECT_TRUE(q.IsPureTwig());
  EXPECT_EQ(q.steps[q.root].children.size(), 5u);
  EXPECT_EQ(q.Depth(), 4);  // item/mailbox/mail/text is the deepest chain
  EXPECT_EQ(q.steps[q.result].name, "parlist");
}

TEST(XPathParserTest, ValuePredicates) {
  TwigQuery q = MustParse("//proceedings[publisher=\"Springer\"][title]");
  EXPECT_TRUE(q.HasValuePredicates());
  uint32_t pub = UINT32_MAX;
  for (uint32_t i = 0; i < q.steps.size(); ++i) {
    if (q.steps[i].name == "publisher") pub = i;
  }
  ASSERT_NE(pub, UINT32_MAX);
  ASSERT_TRUE(q.steps[pub].value_eq.has_value());
  EXPECT_EQ(*q.steps[pub].value_eq, "Springer");
  // Value adds a pattern level.
  EXPECT_EQ(q.Depth(), 3);
}

TEST(XPathParserTest, SingleQuotedLiteral) {
  TwigQuery q = MustParse("//inproceedings[year='1998']/author");
  EXPECT_TRUE(q.HasValuePredicates());
}

TEST(XPathParserTest, AllPaperQueriesParse) {
  const char* queries[] = {
      "/article/epilog[acknowledgements]/references/a_id",
      "/article/prolog[keywords]/authors/author/contact[phone]",
      "/article[epilog]/prolog/authors/author",
      "//proceedings[booktitle]/title[sup][i]",
      "//article[number]/author",
      "//inproceedings[url]/title",
      "//category/description[parlist]/parlist/listitem/text",
      "//closed_auction/annotation/description/text",
      "//open_auction[seller]/annotation/description/text",
      "//EMPTY/S/NP[PP]/NP",
      "//S[VP]/NP/NP/PP/NP",
      "//EMPTY/S[VP]/NP",
      "//item/mailbox/mail/text/emph/keyword",
      "//description/parlist/listitem",
      "//item[name]/mailbox/mail[to]/text[bold]/emph/bold",
      "//item[payment][quantity][shipping][mailbox/mail/text]"
      "/description/parlist",
      "//EMPTY/S/NP/NP/PP",
      "//EMPTY/S/VP",
      "//inproceedings/title/i",
      "//dblp/inproceedings/author",
      "//inproceedings[url]/title[sub][i]",
      "//proceedings[publisher=\"Springer\"][title]",
      "//inproceedings[year=\"1998\"][title]/author",
      "//open_auction[.//bidder[name][email]]/price",
  };
  for (const char* text : queries) {
    auto q = ParseXPath(text);
    EXPECT_TRUE(q.ok()) << text << ": " << q.status();
  }
}

TEST(XPathParserTest, ToStringRoundTrips) {
  const char* queries[] = {
      "//a/b/c",
      "/a[b]/c",
      "//a[b][c/d]/e",
      "//a[b=\"x\"]/c",
      "//S[VP]/NP/NP/PP/NP",
  };
  for (const char* text : queries) {
    TwigQuery q1 = MustParse(text);
    std::string printed = q1.ToString();
    TwigQuery q2 = MustParse(printed);
    EXPECT_EQ(q2.ToString(), printed) << text;
    EXPECT_EQ(q1.steps.size(), q2.steps.size()) << text;
  }
}

TEST(XPathParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("a/b").ok());       // missing leading axis
  EXPECT_FALSE(ParseXPath("/a[b").ok());      // unterminated predicate
  EXPECT_FALSE(ParseXPath("/a]").ok());       // stray bracket
  EXPECT_FALSE(ParseXPath("//").ok());        // missing name
  EXPECT_FALSE(ParseXPath("/a/'lit'").ok());  // literal as a step
  EXPECT_FALSE(ParseXPath("/a[b=]").ok());    // missing literal
  EXPECT_FALSE(ParseXPath("/a[b=\"x]").ok()); // unterminated literal
  EXPECT_FALSE(ParseXPath("/a extra").ok());  // trailing junk
}

TEST(TwigQueryTest, ResolveLabels) {
  LabelTable labels;
  labels.Intern("a");
  TwigQuery q = MustParse("//a/b");
  q.ResolveLabels(&labels);
  EXPECT_EQ(q.steps[q.root].label, labels.Find("a"));
  EXPECT_NE(q.steps[q.result].label, kInvalidLabel);  // b was interned
}

TEST(TwigQueryTest, DepthCountsValueLevel) {
  TwigQuery plain = MustParse("//a/b");
  TwigQuery valued = MustParse("//a/b=\"x\"");
  EXPECT_EQ(plain.Depth(), 2);
  EXPECT_EQ(valued.Depth(), 3);
}

}  // namespace
}  // namespace fix
