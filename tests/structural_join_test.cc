// Tests for the join-based refinement engine: positional labels, the
// individual joins, and full equivalence with the navigational TwigMatcher
// over random generated corpora and the paper's query shapes.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/corpus.h"
#include "datagen/datasets.h"
#include "datagen/query_gen.h"
#include "query/match.h"
#include "query/structural_join.h"
#include "query/xpath_parser.h"
#include "xml/parser.h"

namespace fix {
namespace {

TwigQuery MustParse(const std::string& text, LabelTable* labels) {
  auto q = ParseXPath(text);
  EXPECT_TRUE(q.ok()) << q.status();
  TwigQuery query = std::move(q).value();
  query.ResolveLabels(labels);
  return query;
}

TEST(PositionIndexTest, IntervalInvariants) {
  LabelTable labels;
  auto doc = ParseXml("<a><b><c/><d/></b><b>t</b></a>", &labels);
  ASSERT_TRUE(doc.ok());
  PositionIndex index(&*doc);
  // The document node spans everything at level 0.
  EXPECT_EQ(index.position(0).level, 0u);
  // Containment: every element's interval nests within its parent's.
  for (NodeId n = 1; n < doc->num_nodes(); ++n) {
    if (!doc->IsElement(n)) continue;
    const auto& pos = index.position(n);
    const auto& parent = index.position(doc->parent(n));
    EXPECT_GT(pos.start, parent.start);
    EXPECT_LE(pos.end, parent.end == 0 ? UINT32_MAX : parent.end);
    EXPECT_EQ(pos.level, parent.level + 1);
    EXPECT_GE(pos.end, pos.start);
  }
  // Streams are sorted by start and complete.
  LabelId b = labels.Find("b");
  ASSERT_EQ(index.Stream(b).size(), 2u);
  EXPECT_LT(index.Stream(b)[0].start, index.Stream(b)[1].start);
  EXPECT_EQ(index.AllElements().size(), doc->CountElements());
  EXPECT_TRUE(index.Stream(999999).empty());
}

TEST(StructuralJoinTest, HandCheckedQueries) {
  LabelTable labels;
  auto doc = ParseXml(
      "<lib><book><title/><isbn/></book><book><title/></book>"
      "<shelf><book><isbn/></book></shelf></lib>",
      &labels);
  ASSERT_TRUE(doc.ok());
  PositionIndex index(&*doc);
  StructuralJoinEngine engine(&*doc, &index);

  EXPECT_EQ(engine.Evaluate(MustParse("//book", &labels)).size(), 3u);
  EXPECT_EQ(engine.Evaluate(MustParse("//book[isbn]/title", &labels)).size(),
            1u);
  EXPECT_EQ(engine.Evaluate(MustParse("/lib/book", &labels)).size(), 2u);
  EXPECT_EQ(engine.Evaluate(MustParse("//lib//isbn", &labels)).size(), 2u);
  EXPECT_EQ(engine.Evaluate(MustParse("//shelf/book/isbn", &labels)).size(),
            1u);
  EXPECT_EQ(engine.Evaluate(MustParse("//shelf/title", &labels)).size(), 0u);
  EXPECT_GT(engine.positions_scanned(), 0u);
}

TEST(StructuralJoinTest, ValueAndWildcardQueries) {
  LabelTable labels;
  auto doc = ParseXml(
      "<d><p><pub>Springer</pub><t/></p><p><pub>ACM</pub><t/></p></d>",
      &labels);
  ASSERT_TRUE(doc.ok());
  PositionIndex index(&*doc);
  StructuralJoinEngine engine(&*doc, &index);
  EXPECT_EQ(
      engine.Evaluate(MustParse("//p[pub=\"Springer\"]/t", &labels)).size(),
      1u);
  EXPECT_EQ(engine.Evaluate(MustParse("//d/*/pub", &labels)).size(), 2u);
  EXPECT_EQ(engine.Evaluate(MustParse("//*[pub=\"ACM\"]", &labels)).size(),
            1u);
}

class JoinEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinEquivalenceTest, MatchesNavigationalEngine) {
  Corpus corpus;
  switch (GetParam()) {
    case 0: {
      TcmdOptions o;
      o.num_docs = 20;
      GenerateTcmd(&corpus, o);
      break;
    }
    case 1: {
      XMarkOptions o;
      o.num_items = 18;
      o.num_people = 18;
      o.num_open_auctions = 18;
      o.num_closed_auctions = 18;
      o.num_categories = 9;
      GenerateXMark(&corpus, o);
      break;
    }
    default: {
      TreebankOptions o;
      o.num_sentences = 60;
      GenerateTreebank(&corpus, o);
      break;
    }
  }
  QueryGenOptions qopts;
  qopts.seed = 606 + GetParam();
  qopts.max_depth = 4;
  auto queries = GenerateRandomQueries(corpus, 50, qopts);
  ASSERT_GT(queries.size(), 10u);
  // A few fixed shapes with interior // and rooted axes on top.
  LabelTable* labels = corpus.labels();
  queries.push_back(MustParse("//S//NP", labels));
  queries.push_back(MustParse("//item[name]//keyword", labels));
  queries.push_back(MustParse("/article/prolog//author", labels));

  for (uint32_t d = 0; d < corpus.num_docs(); ++d) {
    const Document& doc = corpus.doc(d);
    PositionIndex index(&doc);
    TwigMatcher matcher(&doc);
    for (const auto& q : queries) {
      StructuralJoinEngine engine(&doc, &index);
      std::vector<NodeId> via_join = engine.Evaluate(q);
      std::vector<NodeId> via_nav = matcher.Evaluate(q);
      std::sort(via_nav.begin(), via_nav.end());
      EXPECT_EQ(via_join, via_nav) << q.ToString() << " doc " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, JoinEquivalenceTest,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(info.param == 0   ? "tcmd"
                                              : info.param == 1 ? "xmark"
                                                                : "treebank");
                         });

}  // namespace
}  // namespace fix
