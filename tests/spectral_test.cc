// Tests for the spectral machinery: the symmetric eigensolver against
// analytically known spectra, the skew-spectrum fast path against the
// Hermitian-embedding reference, and the interlacing property (Theorem 3)
// on randomly generated DAG patterns.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "graph/bisim_builder.h"
#include "spectral/edge_encoder.h"
#include "spectral/skew_matrix.h"
#include "spectral/spectrum.h"
#include "spectral/sym_eigen.h"
#include "xml/parser.h"

namespace fix {
namespace {

constexpr double kTol = 1e-9;

std::vector<double> Sorted(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// --- symmetric eigensolver ----------------------------------------------

TEST(SymEigenTest, DiagonalMatrix) {
  DenseMatrix m(3);
  m.at(0, 0) = 4;
  m.at(1, 1) = -1;
  m.at(2, 2) = 2.5;
  auto eigs = SymmetricEigenvalues(m);
  ASSERT_TRUE(eigs.ok());
  std::vector<double> got = Sorted(*eigs);
  EXPECT_NEAR(got[0], -1, kTol);
  EXPECT_NEAR(got[1], 2.5, kTol);
  EXPECT_NEAR(got[2], 4, kTol);
}

TEST(SymEigenTest, TwoByTwoAnalytic) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  DenseMatrix m(2);
  m.at(0, 0) = 2;
  m.at(0, 1) = 1;
  m.at(1, 0) = 1;
  m.at(1, 1) = 2;
  auto eigs = SymmetricEigenvalues(m);
  ASSERT_TRUE(eigs.ok());
  std::vector<double> got = Sorted(*eigs);
  EXPECT_NEAR(got[0], 1, kTol);
  EXPECT_NEAR(got[1], 3, kTol);
}

TEST(SymEigenTest, PathGraphAdjacency) {
  // Path P_n adjacency eigenvalues: 2 cos(k*pi/(n+1)), k = 1..n.
  const size_t n = 7;
  DenseMatrix m(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    m.at(i, i + 1) = 1;
    m.at(i + 1, i) = 1;
  }
  auto eigs = SymmetricEigenvalues(m);
  ASSERT_TRUE(eigs.ok());
  std::vector<double> got = Sorted(*eigs);
  std::vector<double> expected;
  for (size_t k = 1; k <= n; ++k) {
    expected.push_back(2 * std::cos(M_PI * static_cast<double>(k) / (n + 1)));
  }
  std::sort(expected.begin(), expected.end());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-8) << i;
  }
}

TEST(SymEigenTest, TraceAndFrobeniusInvariants) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 2 + rng.Uniform(14);
    DenseMatrix m(n);
    double trace = 0, frob = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j <= i; ++j) {
        double v = (rng.NextDouble() - 0.5) * 10;
        m.at(i, j) = v;
        m.at(j, i) = v;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      trace += m.at(i, i);
      for (size_t j = 0; j < n; ++j) frob += m.at(i, j) * m.at(i, j);
    }
    auto eigs = SymmetricEigenvalues(m);
    ASSERT_TRUE(eigs.ok());
    double sum = 0, sq = 0;
    for (double e : *eigs) {
      sum += e;
      sq += e * e;
    }
    EXPECT_NEAR(sum, trace, 1e-7 * (1 + std::fabs(trace)));
    EXPECT_NEAR(sq, frob, 1e-7 * (1 + frob));
  }
}

TEST(SymEigenTest, TrivialSizes) {
  DenseMatrix m0(0);
  auto e0 = SymmetricEigenvalues(m0);
  ASSERT_TRUE(e0.ok());
  EXPECT_TRUE(e0->empty());
  DenseMatrix m1(1);
  m1.at(0, 0) = -7;
  auto e1 = SymmetricEigenvalues(m1);
  ASSERT_TRUE(e1.ok());
  EXPECT_NEAR((*e1)[0], -7, kTol);
}

// --- skew spectrum ----------------------------------------------------------

TEST(SkewSpectrumTest, TwoCycleAnalytic) {
  // M = [[0, w], [-w, 0]] has iM eigenvalues ±w.
  DenseMatrix m(2);
  m.at(0, 1) = 3;
  m.at(1, 0) = -3;
  auto sigmas = SkewSpectrum(m);
  ASSERT_TRUE(sigmas.ok());
  ASSERT_EQ(sigmas->size(), 2u);
  EXPECT_NEAR((*sigmas)[0], 3, kTol);
  EXPECT_NEAR((*sigmas)[1], 3, kTol);
  auto pair = SkewEigPair(m);
  ASSERT_TRUE(pair.ok());
  EXPECT_NEAR(pair->lambda_max, 3, kTol);
  EXPECT_NEAR(pair->lambda_min, -3, kTol);
}

TEST(SkewSpectrumTest, StarGraphAnalytic) {
  // Root with k unit-weight children: σ_max = sqrt(k), rest zero.
  const size_t k = 5;
  DenseMatrix m(k + 1);
  for (size_t i = 1; i <= k; ++i) {
    m.at(0, i) = 1;
    m.at(i, 0) = -1;
  }
  auto pair = SkewEigPair(m);
  ASSERT_TRUE(pair.ok());
  EXPECT_NEAR(pair->lambda_max, std::sqrt(5.0), 1e-8);
  EXPECT_NEAR(pair->lambda_min, -std::sqrt(5.0), 1e-8);
}

TEST(SkewSpectrumTest, FastPathMatchesEmbeddingReference) {
  Rng rng(41);
  for (int trial = 0; trial < 15; ++trial) {
    size_t n = 2 + rng.Uniform(10);
    DenseMatrix m(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (rng.Chance(0.4)) {
          double w = 1 + rng.Uniform(9);
          m.at(j, i) = w;
          m.at(i, j) = -w;
        }
      }
    }
    auto fast = SkewSpectrum(m);
    auto ref = SkewSpectrumEmbedding(m);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(ref.ok());
    ASSERT_EQ(fast->size(), ref->size());
    for (size_t i = 0; i < fast->size(); ++i) {
      EXPECT_NEAR((*fast)[i], (*ref)[i], 1e-6 * (1 + (*fast)[0])) << i;
    }
  }
}

TEST(SkewSpectrumTest, EigPairFromSpectrumPicksSecondDistinctMagnitude) {
  // Magnitudes come in pairs: [σ1, σ1, σ2, σ2] -> λ2 = σ2.
  EigPair p = EigPairFromSpectrum({5.0, 5.0, 2.0, 2.0});
  EXPECT_EQ(p.lambda_max, 5.0);
  EXPECT_EQ(p.lambda_min, -5.0);
  EXPECT_EQ(p.lambda2, 2.0);
  EigPair empty = EigPairFromSpectrum({});
  EXPECT_EQ(empty.lambda_max, 0.0);
}

// --- matrix construction ------------------------------------------------

TEST(SkewMatrixTest, AntiSymmetryAndWeightConsistency) {
  LabelTable labels;
  auto doc = ParseXml("<r><a><b/></a><a><b/></a><c><b/></c></r>", &labels);
  ASSERT_TRUE(doc.ok());
  auto graph = BuildBisimGraph(*doc);
  ASSERT_TRUE(graph.ok());
  EdgeEncoder encoder;
  DenseMatrix m = BuildSkewMatrix(*graph, &encoder);
  ASSERT_EQ(m.n(), graph->num_vertices());
  for (size_t i = 0; i < m.n(); ++i) {
    EXPECT_EQ(m.at(i, i), 0.0);
    for (size_t j = 0; j < m.n(); ++j) {
      EXPECT_EQ(m.at(i, j), -m.at(j, i));
    }
  }
  // Same label pair -> same weight: (a,b) and (c,b) must differ, but both
  // a->b edges collapse to the same bisim edge anyway. Weights are small
  // positive integers.
  EXPECT_EQ(encoder.Weight(labels.Find("a"), labels.Find("b")),
            encoder.Weight(labels.Find("a"), labels.Find("b")));
  EXPECT_NE(encoder.Weight(labels.Find("a"), labels.Find("b")),
            encoder.Weight(labels.Find("c"), labels.Find("b")));
}

TEST(SkewMatrixTest, IsomorphicGraphsIsospectral) {
  LabelTable labels;
  auto d1 = ParseXml("<r><a><x/></a><b/></r>", &labels);
  auto d2 = ParseXml("<r><b/><a><x/></a></r>", &labels);  // reordered
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  auto g1 = BuildBisimGraph(*d1);
  auto g2 = BuildBisimGraph(*d2);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EdgeEncoder encoder;
  auto s1 = SkewSpectrum(BuildSkewMatrix(*g1, &encoder));
  auto s2 = SkewSpectrum(BuildSkewMatrix(*g2, &encoder));
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_EQ(s1->size(), s2->size());
  for (size_t i = 0; i < s1->size(); ++i) {
    EXPECT_NEAR((*s1)[i], (*s2)[i], 1e-9);
  }
}

// --- Theorem 3 (interlacing / containment) -----------------------------

// Builds the induced subgraph of `graph` on the vertices reachable from
// `start`, re-using the same edge weights via the shared encoder.
DenseMatrix InducedReachableMatrix(const BisimGraph& graph,
                                   BisimVertexId start, EdgeEncoder* encoder,
                                   size_t* out_n) {
  std::set<BisimVertexId> keep;
  std::vector<BisimVertexId> stack{start};
  while (!stack.empty()) {
    BisimVertexId v = stack.back();
    stack.pop_back();
    if (!keep.insert(v).second) continue;
    for (BisimVertexId c : graph.vertex(v).children) stack.push_back(c);
  }
  std::vector<BisimVertexId> order(keep.begin(), keep.end());
  DenseMatrix m(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    const BisimVertex& u = graph.vertex(order[i]);
    for (BisimVertexId c : u.children) {
      auto it = std::lower_bound(order.begin(), order.end(), c);
      size_t j = static_cast<size_t>(it - order.begin());
      double w = encoder->Weight(u.label, graph.vertex(c).label);
      m.at(i, j) = w;
      m.at(j, i) = -w;
    }
  }
  *out_n = order.size();
  return m;
}

TEST(InterlacingTest, ReachableInducedSubgraphsContained) {
  // Theorem 3: for induced subgraphs, [λ_min(H), λ_max(H)] is inside
  // [λ_min(G), λ_max(G)]. Reachable sets induce subgraphs of the DAG.
  Rng rng(53);
  LabelTable labels;
  const char* docs[] = {
      "<r><a><b/><c><d/></c></a><e><b/></e><a><c><d/><b/></c></a></r>",
      "<r><x><y><z/></y></x><x><z/></x><w><y><z/></y><x/></w></r>",
      "<bib><article><title/><author><email/></author></article>"
      "<book><title/><author><phone/><email/></author></book></bib>",
  };
  for (const char* xml : docs) {
    auto doc = ParseXml(xml, &labels);
    ASSERT_TRUE(doc.ok());
    auto graph = BuildBisimGraph(*doc);
    ASSERT_TRUE(graph.ok());
    EdgeEncoder encoder;
    auto whole = SkewEigPair(BuildSkewMatrix(*graph, &encoder));
    ASSERT_TRUE(whole.ok());
    for (BisimVertexId v = 0; v < graph->num_vertices(); ++v) {
      size_t n = 0;
      DenseMatrix sub = InducedReachableMatrix(*graph, v, &encoder, &n);
      auto pair = SkewEigPair(sub);
      ASSERT_TRUE(pair.ok());
      EXPECT_LE(pair->lambda_max, whole->lambda_max + 1e-9);
      EXPECT_GE(pair->lambda_min, whole->lambda_min - 1e-9);
    }
    (void)rng;
  }
}

TEST(InterlacingTest, RandomVertexDeletionContained) {
  // Directly exercises the proof shape: remove one vertex (and incident
  // edges) from a random skew matrix; the range must shrink or stay.
  Rng rng(67);
  for (int trial = 0; trial < 25; ++trial) {
    size_t n = 3 + rng.Uniform(9);
    DenseMatrix m(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (rng.Chance(0.5)) {
          double w = 1 + rng.Uniform(6);
          m.at(j, i) = w;
          m.at(i, j) = -w;
        }
      }
    }
    size_t drop = rng.Uniform(n);
    DenseMatrix sub(n - 1);
    for (size_t i = 0, si = 0; i < n; ++i) {
      if (i == drop) continue;
      for (size_t j = 0, sj = 0; j < n; ++j) {
        if (j == drop) continue;
        sub.at(si, sj) = m.at(i, j);
        ++sj;
      }
      ++si;
    }
    auto big = SkewEigPair(m);
    auto small = SkewEigPair(sub);
    ASSERT_TRUE(big.ok());
    ASSERT_TRUE(small.ok());
    EXPECT_LE(small->lambda_max, big->lambda_max + 1e-9);
    // λ2 interlaces as well (Cauchy, k = 2).
    EXPECT_LE(small->lambda2, big->lambda2 + 1e-9);
  }
}

#if FIX_DCHECKS_ENABLED
// The eigendecomposition entry points must trip the anti-symmetry invariant
// on a corrupted matrix (debug/sanitizer builds only; release compiles the
// check out).
TEST(SkewSpectrumDeathTest, NonAntisymmetricInputIsCaught) {
  DenseMatrix m(2);
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;  // anti-symmetry requires -1.0
  EXPECT_DEATH((void)SkewSpectrum(m), "FIX_DCHECK failed");
  EXPECT_DEATH((void)SkewSpectrumEmbedding(m), "FIX_DCHECK failed");
}
#endif

}  // namespace
}  // namespace fix
