// B+-tree tests: basics, splits across multiple levels, duplicates spanning
// leaf boundaries, range scans, deletion, persistence, and a randomized
// model test against std::multimap.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/btree.h"

namespace fix {
namespace {

constexpr uint32_t kKey = 8;
constexpr uint32_t kVal = 8;

std::string K(uint64_t v) {
  std::string out(kKey, '\0');
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>(v >> (56 - 8 * i));
  return out;
}

std::string V(uint64_t v) { return K(v); }

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_btree_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    ASSERT_TRUE(file_.Open(dir_ + "/tree", true).ok());
    pool_ = std::make_unique<BufferPool>(&file_, 64);
    auto tree = BTree::Create(pool_.get(), kKey, kVal);
    ASSERT_TRUE(tree.ok()) << tree.status();
    tree_ = std::make_unique<BTree>(std::move(tree).value());
  }
  void TearDown() override {
    tree_.reset();
    pool_.reset();
    (void)file_.Close();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  PageFile file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, EmptyTree) {
  EXPECT_EQ(tree_->num_entries(), 0u);
  EXPECT_FALSE(tree_->Get(K(1)).ok());
  auto it = tree_->SeekFirst();
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());
}

TEST_F(BTreeTest, InsertAndGet) {
  ASSERT_TRUE(tree_->Insert(K(5), V(50)).ok());
  ASSERT_TRUE(tree_->Insert(K(3), V(30)).ok());
  ASSERT_TRUE(tree_->Insert(K(9), V(90)).ok());
  EXPECT_EQ(tree_->num_entries(), 3u);
  auto got = tree_->Get(K(3));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, V(30));
  EXPECT_FALSE(tree_->Get(K(4)).ok());
}

TEST_F(BTreeTest, SizeMismatchRejected) {
  EXPECT_FALSE(tree_->Insert("short", V(1)).ok());
  EXPECT_FALSE(tree_->Insert(K(1), "bad").ok());
  EXPECT_FALSE(tree_->Get("x").ok());
}

TEST_F(BTreeTest, OrderedIterationAfterManySplits) {
  const int n = 20000;  // forces multi-level splits with 8+8 byte entries
  Rng rng(11);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) keys.push_back(rng.Next());
  for (uint64_t k : keys) {
    ASSERT_TRUE(tree_->Insert(K(k), V(k ^ 0xff)).ok());
  }
  EXPECT_EQ(tree_->num_entries(), static_cast<uint64_t>(n));
  EXPECT_GT(tree_->height(), 1u);

  auto it = tree_->SeekFirst();
  ASSERT_TRUE(it.ok());
  std::string prev;
  int count = 0;
  while (it->Valid()) {
    std::string key(it->key());
    if (count > 0) {
      EXPECT_LE(prev, key);
    }
    prev = key;
    ++count;
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(count, n);
}

TEST_F(BTreeTest, SequentialInsertAscendingAndDescending) {
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(tree_->Insert(K(i), V(i)).ok());
  }
  for (int i = 9999; i >= 7000; --i) {
    ASSERT_TRUE(tree_->Insert(K(i), V(i)).ok());
  }
  for (int i = 0; i < 3000; i += 97) {
    auto got = tree_->Get(K(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, V(i));
  }
  for (int i = 7000; i < 10000; i += 83) {
    ASSERT_TRUE(tree_->Get(K(i)).ok()) << i;
  }
}

TEST_F(BTreeTest, DuplicateKeysAllRetrievable) {
  // Insert many duplicates of few keys so runs span leaf splits.
  const int dups = 800;
  for (int i = 0; i < dups; ++i) {
    ASSERT_TRUE(tree_->Insert(K(42), V(i)).ok());
    ASSERT_TRUE(tree_->Insert(K(7), V(i)).ok());
  }
  ASSERT_TRUE(tree_->Insert(K(100), V(0)).ok());

  auto it = tree_->Seek(K(42));
  ASSERT_TRUE(it.ok());
  int found = 0;
  while (it->Valid() && it->key() == K(42)) {
    ++found;
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(found, dups);
  // The scan must land exactly on the next key afterwards.
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), K(100));
}

TEST_F(BTreeTest, SeekSemantics) {
  for (uint64_t k : {10u, 20u, 30u}) {
    ASSERT_TRUE(tree_->Insert(K(k), V(k)).ok());
  }
  auto it = tree_->Seek(K(15));
  ASSERT_TRUE(it.ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), K(20));  // first key >= 15
  auto it2 = tree_->Seek(K(20));
  ASSERT_TRUE(it2.ok());
  EXPECT_EQ(it2->key(), K(20));  // exact
  auto it3 = tree_->Seek(K(31));
  ASSERT_TRUE(it3.ok());
  EXPECT_FALSE(it3->Valid());  // past the end
}

TEST_F(BTreeTest, DeleteSpecificValue) {
  ASSERT_TRUE(tree_->Insert(K(1), V(10)).ok());
  ASSERT_TRUE(tree_->Insert(K(1), V(11)).ok());
  ASSERT_TRUE(tree_->Insert(K(2), V(20)).ok());
  ASSERT_TRUE(tree_->Delete(K(1), V(10)).ok());
  EXPECT_EQ(tree_->num_entries(), 2u);
  auto got = tree_->Get(K(1));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, V(11));
  EXPECT_TRUE(tree_->Delete(K(1), V(11)).ok());
  EXPECT_FALSE(tree_->Get(K(1)).ok());
  EXPECT_FALSE(tree_->Delete(K(1), V(11)).ok());  // already gone
}

TEST_F(BTreeTest, PersistAndReopen) {
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree_->Insert(K(i * 3), V(i)).ok());
  }
  ASSERT_TRUE(tree_->Flush().ok());
  tree_.reset();
  pool_.reset();
  ASSERT_TRUE(file_.Close().ok());

  PageFile file2;
  ASSERT_TRUE(file2.Open(dir_ + "/tree", false).ok());
  BufferPool pool2(&file2, 64);
  auto reopened = BTree::Open(&pool2);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->num_entries(), 5000u);
  for (int i = 0; i < 5000; i += 191) {
    auto got = reopened->Get(K(i * 3));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, V(i));
  }
}

TEST_F(BTreeTest, OpenRejectsGarbageFile) {
  PageFile garbage;
  ASSERT_TRUE(garbage.Open(dir_ + "/garbage", true).ok());
  PageId id;
  ASSERT_TRUE(garbage.AllocatePage(&id).ok());
  BufferPool pool(&garbage, 16);
  EXPECT_FALSE(BTree::Open(&pool).ok());
}

// Randomized model test: the tree must agree with std::multimap under a
// mixed insert/delete/lookup workload.
TEST_F(BTreeTest, ModelConformance) {
  Rng rng(77);
  std::multimap<std::string, std::string> model;
  for (int op = 0; op < 30000; ++op) {
    uint64_t k = rng.Uniform(500);  // small key space -> many duplicates
    int action = static_cast<int>(rng.Uniform(10));
    if (action < 6) {
      uint64_t v = rng.Next();
      ASSERT_TRUE(tree_->Insert(K(k), V(v)).ok());
      model.emplace(K(k), V(v));
    } else if (action < 8) {
      auto range = model.equal_range(K(k));
      if (range.first != range.second) {
        ASSERT_TRUE(tree_->Delete(K(k), range.first->second).ok());
        model.erase(range.first);
      } else {
        EXPECT_FALSE(tree_->Get(K(k)).ok());
      }
    } else {
      bool in_model = model.count(K(k)) > 0;
      EXPECT_EQ(tree_->Get(K(k)).ok(), in_model);
    }
  }
  EXPECT_EQ(tree_->num_entries(), model.size());
  // Full-scan equivalence.
  auto it = tree_->SeekFirst();
  ASSERT_TRUE(it.ok());
  auto mit = model.begin();
  while (it->Valid()) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it->key(), mit->first);
    ++mit;
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(mit, model.end());
}

// --- BulkLoad ---------------------------------------------------------------

/// Entries with capacity math available: with kKey = kVal = 8 a leaf holds
/// (kPageSize - 8) / 16 entries.
size_t LeafCap() { return (kPageSize - 8) / (kKey + kVal); }

std::vector<std::pair<std::string, std::string>> MakeEntries(size_t n) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.emplace_back(K(i), V(i * 3 + 1));
  return out;
}

class BTreeBulkLoadTest : public BTreeTest {
 protected:
  /// Bulk-loads `entries` into the fixture tree and cross-checks it against
  /// a second, incrementally-filled tree: same count, same full scan, same
  /// point lookups, and both pass the structural audit.
  void LoadAndCompare(
      const std::vector<std::pair<std::string, std::string>>& entries) {
    ASSERT_TRUE(tree_->BulkLoad(entries).ok());
    ASSERT_TRUE(tree_->VerifyStructure().ok());
    EXPECT_EQ(tree_->num_entries(), entries.size());

    PageFile ref_file;
    ASSERT_TRUE(ref_file.Open(dir_ + "/ref", true).ok());
    {
      BufferPool ref_pool(&ref_file, 64);
      auto ref = BTree::Create(&ref_pool, kKey, kVal);
      ASSERT_TRUE(ref.ok());
      for (const auto& [k, v] : entries) {
        ASSERT_TRUE(ref->Insert(k, v).ok());
      }
      ASSERT_TRUE(ref->VerifyStructure().ok());

      auto it = tree_->SeekFirst();
      auto rit = ref->SeekFirst();
      ASSERT_TRUE(it.ok());
      ASSERT_TRUE(rit.ok());
      while (rit->Valid()) {
        ASSERT_TRUE(it->Valid());
        EXPECT_EQ(it->key(), rit->key());
        EXPECT_EQ(it->value(), rit->value());
        ASSERT_TRUE(it->Next().ok());
        ASSERT_TRUE(rit->Next().ok());
      }
      EXPECT_FALSE(it->Valid());

      for (size_t i = 0; i < entries.size(); i += 7) {
        auto got = tree_->Get(entries[i].first);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, entries[i].second);
      }
    }
    ASSERT_TRUE(ref_file.Close().ok());
  }
};

TEST_F(BTreeBulkLoadTest, Empty) {
  ASSERT_TRUE(tree_->BulkLoad({}).ok());
  EXPECT_EQ(tree_->num_entries(), 0u);
  ASSERT_TRUE(tree_->VerifyStructure().ok());
  // The tree stays usable for incremental inserts afterwards.
  ASSERT_TRUE(tree_->Insert(K(1), V(1)).ok());
  EXPECT_TRUE(tree_->Get(K(1)).ok());
}

TEST_F(BTreeBulkLoadTest, SingleEntry) { LoadAndCompare(MakeEntries(1)); }

TEST_F(BTreeBulkLoadTest, ExactlyOneLeaf) {
  LoadAndCompare(MakeEntries(LeafCap()));
}

TEST_F(BTreeBulkLoadTest, OneLeafPlusOne) {
  LoadAndCompare(MakeEntries(LeafCap() + 1));
}

TEST_F(BTreeBulkLoadTest, MultiLevel) {
  // Enough for several inner levels with 8-byte keys.
  LoadAndCompare(MakeEntries(10000));
}

TEST_F(BTreeBulkLoadTest, DuplicateKeysSurvive) {
  // Equal keys keep input order in a bulk load, which need not match the
  // incremental tree's internal duplicate placement — compare multisets.
  // (The FIX index never stores duplicates: the seq suffix makes keys
  // unique; this guards plain duplicate storage.)
  std::vector<std::pair<std::string, std::string>> entries;
  for (size_t i = 0; i < 600; ++i) entries.emplace_back(K(i / 3), V(i));
  ASSERT_TRUE(tree_->BulkLoad(entries).ok());
  ASSERT_TRUE(tree_->VerifyStructure().ok());
  EXPECT_EQ(tree_->num_entries(), entries.size());
  std::multimap<std::string, std::string> want(entries.begin(), entries.end());
  std::multimap<std::string, std::string> got;
  auto it = tree_->SeekFirst();
  ASSERT_TRUE(it.ok());
  std::string prev_key;
  while (it->Valid()) {
    EXPECT_LE(prev_key, std::string(it->key()));
    prev_key = std::string(it->key());
    got.emplace(it->key(), it->value());
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(got, want);
}

TEST_F(BTreeBulkLoadTest, RejectsUnsortedInput) {
  std::vector<std::pair<std::string, std::string>> entries = {{K(2), V(2)},
                                                              {K(1), V(1)}};
  EXPECT_FALSE(tree_->BulkLoad(entries).ok());
}

TEST_F(BTreeBulkLoadTest, RejectsWrongSizes) {
  EXPECT_FALSE(tree_->BulkLoad({{"short", V(1)}}).ok());
  EXPECT_FALSE(tree_->BulkLoad({{K(1), "tiny"}}).ok());
}

TEST_F(BTreeBulkLoadTest, RejectsNonEmptyTree) {
  ASSERT_TRUE(tree_->Insert(K(1), V(1)).ok());
  EXPECT_FALSE(tree_->BulkLoad(MakeEntries(3)).ok());
}

TEST_F(BTreeBulkLoadTest, PersistsAcrossReopen) {
  auto entries = MakeEntries(5000);
  ASSERT_TRUE(tree_->BulkLoad(entries).ok());
  ASSERT_TRUE(tree_->Flush().ok());
  tree_.reset();
  pool_.reset();
  ASSERT_TRUE(file_.Close().ok());

  ASSERT_TRUE(file_.Open(dir_ + "/tree", false).ok());
  pool_ = std::make_unique<BufferPool>(&file_, 64);
  auto reopened = BTree::Open(pool_.get());
  ASSERT_TRUE(reopened.ok());
  tree_ = std::make_unique<BTree>(std::move(reopened).value());
  EXPECT_EQ(tree_->num_entries(), entries.size());
  ASSERT_TRUE(tree_->VerifyStructure().ok());
  auto got = tree_->Get(K(4321));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, V(4321 * 3 + 1));
}

// --- COW batches / generations ----------------------------------------------

class BTreeBatchTest : public BTreeTest {
 protected:
  /// Commits keys [lo, hi) as one COW batch and returns the commit record.
  WalCommit CommitRange(uint64_t lo, uint64_t hi) {
    EXPECT_TRUE(tree_->BeginBatch().ok());
    for (uint64_t i = lo; i < hi; ++i) {
      EXPECT_TRUE(tree_->Insert(K(i), V(i)).ok());
    }
    auto commit = tree_->PrepareCommit();
    EXPECT_TRUE(commit.ok()) << commit.status();
    tree_->FinalizeCommit();
    return *commit;
  }
};

// Publication is FinalizeCommit alone: neither the COW inserts nor the
// durable flush in PrepareCommit may leak into what readers see.
TEST_F(BTreeBatchTest, CommitPublishesAtFinalizeNotBefore) {
  const WalCommit first = CommitRange(0, 100);
  EXPECT_EQ(tree_->num_entries(), 100u);
  const uint64_t gen1 = tree_->generation();
  EXPECT_EQ(first.generation, gen1);

  ASSERT_TRUE(tree_->BeginBatch().ok());
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(tree_->Insert(K(i), V(i)).ok());
  }
  EXPECT_EQ(tree_->num_entries(), 100u);
  EXPECT_EQ(tree_->generation(), gen1);
  auto commit = tree_->PrepareCommit();
  ASSERT_TRUE(commit.ok()) << commit.status();
  EXPECT_EQ(tree_->num_entries(), 100u);  // flushed, still unpublished
  EXPECT_EQ(tree_->generation(), gen1);
  EXPECT_EQ(commit->generation, gen1 + 1);
  EXPECT_EQ(commit->num_entries, 200u);

  tree_->FinalizeCommit();
  EXPECT_EQ(tree_->num_entries(), 200u);
  EXPECT_EQ(tree_->generation(), gen1 + 1);
  ASSERT_TRUE(tree_->VerifyStructure().ok());
  for (int i = 0; i < 200; i += 13) {
    EXPECT_TRUE(tree_->Get(K(i)).ok()) << i;
  }
}

// AbortBatch (default: the commit record provably never reached the log)
// restores the published generation exactly and recycles the batch's fresh
// pages, so an aborted batch costs no file growth when retried.
TEST_F(BTreeBatchTest, AbortRestoresPublishedStateAndRecyclesPages) {
  CommitRange(0, 100);
  const uint64_t gen1 = tree_->generation();

  // Abort before PrepareCommit: nothing was ever flushed.
  ASSERT_TRUE(tree_->BeginBatch().ok());
  ASSERT_TRUE(tree_->Insert(K(500), V(500)).ok());
  tree_->AbortBatch();
  EXPECT_EQ(tree_->generation(), gen1);
  EXPECT_EQ(tree_->num_entries(), 100u);
  EXPECT_FALSE(tree_->Get(K(500)).ok());

  // Abort after PrepareCommit: pages hit the disk, then the (hypothetical)
  // WAL append failed cleanly — state must roll back all the same.
  ASSERT_TRUE(tree_->BeginBatch().ok());
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(tree_->Insert(K(i), V(i)).ok());
  }
  auto staged = tree_->PrepareCommit();
  ASSERT_TRUE(staged.ok()) << staged.status();
  tree_->AbortBatch();
  EXPECT_EQ(tree_->generation(), gen1);
  EXPECT_EQ(tree_->num_entries(), 100u);
  EXPECT_FALSE(tree_->Get(K(150)).ok());
  ASSERT_TRUE(tree_->VerifyStructure().ok());

  // Retrying the same batch reuses the aborted batch's recycled pages
  // instead of growing the file.
  const PageId before = file_.num_pages();
  CommitRange(100, 200);
  EXPECT_LE(file_.num_pages(), before + 2);
  EXPECT_EQ(tree_->num_entries(), 200u);
  ASSERT_TRUE(tree_->VerifyStructure().ok());
}

// The ambiguous-commit abort: PrepareCommit flushed, the WAL append FAILED
// but its record may still be durable (e.g. the write landed and only the
// fsync errored). AbortBatch(blank_pages=false) must leave the prepared
// generation's pages intact and unrecycled so a replay that finds the
// commit record can adopt it — this is the exact scenario behind the
// fail-stop latch in FixIndex::CommitBatch.
TEST_F(BTreeBatchTest, AbortPreservingPagesKeepsPreparedGenerationAdoptable) {
  CommitRange(0, 100);
  const uint64_t gen1 = tree_->generation();

  ASSERT_TRUE(tree_->BeginBatch().ok());
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(tree_->Insert(K(i), V(i)).ok());
  }
  auto commit = tree_->PrepareCommit();
  ASSERT_TRUE(commit.ok()) << commit.status();
  tree_->AbortBatch(/*blank_pages=*/false);

  // The tree itself serves generation N, as if the batch never happened.
  EXPECT_EQ(tree_->generation(), gen1);
  EXPECT_EQ(tree_->num_entries(), 100u);
  ASSERT_TRUE(tree_->VerifyStructure().ok());

  // Replay's view: the commit record surfaced from the log after all, and
  // the pages it references must still be exactly what PrepareCommit wrote.
  ASSERT_TRUE(tree_->AdoptCommit(*commit).ok());
  EXPECT_EQ(tree_->generation(), commit->generation);
  EXPECT_EQ(tree_->num_entries(), 200u);
  ASSERT_TRUE(tree_->VerifyStructure().ok());
  for (int i = 0; i < 200; i += 7) {
    auto got = tree_->Get(K(i));
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(*got, V(i));
  }
}

TEST_F(BTreeBatchTest, AdoptCommitRejectsOutOfRangeRecords) {
  CommitRange(0, 10);
  WalCommit bogus;
  bogus.generation = 99;
  bogus.root = file_.num_pages() + 100;  // beyond the file
  bogus.height = 1;
  bogus.num_entries = 10;
  EXPECT_FALSE(tree_->AdoptCommit(bogus).ok());
  bogus.root = 0;  // the meta page can never be a root
  EXPECT_FALSE(tree_->AdoptCommit(bogus).ok());
}

// Generation numbering survives Checkpoint + reopen: the meta page carries
// it, so a recovered tree keeps counting where the crashed one stopped
// (WAL records compare against it to decide roll-forward vs. no-op).
TEST_F(BTreeBatchTest, GenerationPersistsAcrossCheckpointAndReopen) {
  CommitRange(0, 100);
  CommitRange(100, 200);
  const uint64_t gen = tree_->generation();
  EXPECT_GE(gen, 2u);
  ASSERT_TRUE(tree_->Checkpoint().ok());
  tree_.reset();
  pool_.reset();
  ASSERT_TRUE(file_.Close().ok());

  ASSERT_TRUE(file_.Open(dir_ + "/tree", false).ok());
  pool_ = std::make_unique<BufferPool>(&file_, 64);
  auto reopened = BTree::Open(pool_.get());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  tree_ = std::make_unique<BTree>(std::move(reopened).value());
  EXPECT_EQ(tree_->generation(), gen);
  EXPECT_EQ(tree_->num_entries(), 200u);
  ASSERT_TRUE(tree_->VerifyStructure().ok());
}

// Superseded pages are recycled once their generation is durable and
// unpinned: a long run of tiny commits must not grow the file linearly in
// the number of commits.
TEST_F(BTreeBatchTest, RetiredPagesAreRecycledAcrossCommits) {
  CommitRange(0, 100);
  const PageId before = file_.num_pages();
  constexpr int kCommits = 60;
  for (int i = 0; i < kCommits; ++i) {
    CommitRange(100 + i, 101 + i);  // one entry per commit
  }
  EXPECT_EQ(tree_->num_entries(), uint64_t{100 + kCommits});
  ASSERT_TRUE(tree_->VerifyStructure().ok());
  // 160 8+8-byte entries fit in a page or two; without recycling each
  // commit would leak its COW'd path (≥ height pages per commit).
  EXPECT_LT(file_.num_pages(), before + kCommits / 2);
}

}  // namespace
}  // namespace fix
