// Unit tests for src/common: Status/Result, byte codecs, varints, and the
// deterministic RNG.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace fix {
namespace {

// --- Status -----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, EveryCodeHasAName) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

Status Propagates(bool fail) {
  FIX_RETURN_IF_ERROR(fail ? Status::IOError("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Propagates(false).ok());
  EXPECT_TRUE(Propagates(true).IsIOError());
}

// --- Result -----------------------------------------------------------------

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

Result<int> UsesAssignOrReturn(int x) {
  int doubled = 0;
  FIX_ASSIGN_OR_RETURN(doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = UsesAssignOrReturn(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 11);
  EXPECT_FALSE(UsesAssignOrReturn(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// --- byte codecs ------------------------------------------------------------

TEST(BytesTest, Fixed32RoundTrip) {
  char buf[4];
  EncodeFixed32(buf, 0xdeadbeef);
  EXPECT_EQ(DecodeFixed32(buf), 0xdeadbeefu);
}

TEST(BytesTest, Fixed64RoundTrip) {
  char buf[8];
  EncodeFixed64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(DecodeFixed64(buf), 0x0123456789abcdefULL);
}

TEST(BytesTest, BigEndianPreservesOrder) {
  char a[4], b[4];
  EncodeBigEndian32(a, 5);
  EncodeBigEndian32(b, 1000);
  EXPECT_LT(std::memcmp(a, b, 4), 0);
  EXPECT_EQ(DecodeBigEndian32(a), 5u);
  EXPECT_EQ(DecodeBigEndian32(b), 1000u);

  char c[8], d[8];
  EncodeBigEndian64(c, 77);
  EncodeBigEndian64(d, 1ULL << 40);
  EXPECT_LT(std::memcmp(c, d, 8), 0);
  EXPECT_EQ(DecodeBigEndian64(d), 1ULL << 40);
}

TEST(BytesTest, OrderPreservingDoubleRoundTrip) {
  const double values[] = {0.0,  -0.0,   1.5,    -1.5,   3.14159,
                           -2.7, 1e-300, -1e300, 1e300,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()};
  for (double v : values) {
    EXPECT_EQ(OrderPreservingToDouble(OrderPreservingDouble(v)), v) << v;
  }
}

TEST(BytesTest, OrderPreservingDoubleIsMonotone) {
  std::vector<double> values = {-1e308, -42.0, -1.0, -1e-10, 0.0,
                                1e-10,  1.0,   42.0, 1e308};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(OrderPreservingDouble(values[i]),
              OrderPreservingDouble(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(BytesTest, OrderPreservingDoubleRandomizedMonotone) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double a = (rng.NextDouble() - 0.5) * 1e6;
    double b = (rng.NextDouble() - 0.5) * 1e6;
    if (a > b) std::swap(a, b);
    EXPECT_LE(OrderPreservingDouble(a), OrderPreservingDouble(b));
  }
}

TEST(BytesTest, VarintRoundTrip) {
  const uint32_t values[] = {0, 1, 127, 128, 300, 16383, 16384, UINT32_MAX};
  std::string buf;
  for (uint32_t v : values) PutVarint32(&buf, v);
  size_t pos = 0;
  for (uint32_t v : values) {
    uint32_t out = 0;
    ASSERT_TRUE(GetVarint32(buf, &pos, &out));
    EXPECT_EQ(out, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(BytesTest, Varint64RoundTrip) {
  const uint64_t values[] = {0, 1, 1ULL << 35, UINT64_MAX};
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(buf, &pos, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(BytesTest, VarintTruncationDetected) {
  std::string buf;
  PutVarint32(&buf, 300);
  buf.pop_back();  // drop the final byte
  size_t pos = 0;
  uint32_t out;
  EXPECT_FALSE(GetVarint32(buf, &pos, &out));
}

TEST(BytesTest, FnvHashStableAndSpreads) {
  EXPECT_EQ(Fnv1a64(std::string("abc")), Fnv1a64(std::string("abc")));
  EXPECT_NE(Fnv1a64(std::string("abc")), Fnv1a64(std::string("abd")));
  EXPECT_NE(Fnv1a64(std::string("")), Fnv1a64(std::string("x")));
}

// --- RNG --------------------------------------------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
  }
  // Different seed should diverge immediately (overwhelming probability).
  Rng a2(42);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RngTest, UniformWithinBound) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Chance(0.25);
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(RngTest, PickWeightedHonorsWeights) {
  Rng rng(5);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.PickWeighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(RngTest, GeometricCountBounded) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    int n = rng.GeometricCount(2, 5, 0.5);
    EXPECT_GE(n, 2);
    EXPECT_LE(n, 5);
  }
}

// --- FIX_DCHECK -------------------------------------------------------------

TEST(DcheckTest, PassingChecksAreSilent) {
  FIX_DCHECK(1 + 1 == 2);
  FIX_DCHECK_EQ(4, 4);
  FIX_DCHECK_NE(4, 5);
  FIX_DCHECK_LT(4, 5);
  FIX_DCHECK_LE(5, 5);
  FIX_DCHECK_GT(5, 4);
  FIX_DCHECK_GE(5, 5);
}

#if FIX_DCHECKS_ENABLED
TEST(DcheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(FIX_DCHECK(2 + 2 == 5), "FIX_DCHECK failed");
  EXPECT_DEATH(FIX_DCHECK_EQ(1, 2), "1 == 2 \\(1 vs 2\\)");
}
#else
TEST(DcheckTest, DisabledChecksDoNotEvaluateTheCondition) {
  int evaluations = 0;
  auto bump = [&evaluations] { return ++evaluations > 0; };
  FIX_DCHECK(bump());
  FIX_DCHECK_EQ(bump(), true);
  EXPECT_EQ(evaluations, 0);
}
#endif

}  // namespace
}  // namespace fix
