# Included from the generated CTestTestfile (via TEST_INCLUDE_FILES) after
# gtest test discovery. Re-applies the full ctest label list to every test
# an executable defines, because forwarding a multi-label list through
# gtest_discover_tests(PROPERTIES LABELS ...) flattens it to one label —
# each ${ARGN}/command-line hop splits on the list separator.
#
# Inputs (set by the per-target <name>_labels.cmake shim):
#   FIX_TESTS_FILE  - the <name>[1]_tests.cmake discovery output
#   FIX_TEST_LABELS - the label list to apply
if(EXISTS "${FIX_TESTS_FILE}")
  file(STRINGS "${FIX_TESTS_FILE}" _fix_add_test_lines REGEX "^add_test")
  foreach(_fix_line IN LISTS _fix_add_test_lines)
    # Test names are bracket-quoted: add_test([=[Suite.Case]=] ...). None of
    # our test names contain `]`, so capture up to the first one.
    if(_fix_line MATCHES "^add_test\\(\\[=+\\[([^]]+)\\]")
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES
        LABELS "${FIX_TEST_LABELS}")
    endif()
  endforeach()
endif()
