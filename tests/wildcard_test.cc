// Tests for wildcard (*) NameTests across the stack: parsing, matching
// semantics, FIX lookup degradation (label-only / full-scan fallback), and
// the F&B baseline.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "baseline/fb_index.h"
#include "baseline/full_scan.h"
#include "core/corpus.h"
#include "core/fix_index.h"
#include "core/fix_query.h"
#include "query/match.h"
#include "query/xpath_parser.h"
#include "xml/parser.h"

namespace fix {
namespace {

TwigQuery MustParse(const std::string& text, LabelTable* labels) {
  auto q = ParseXPath(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status();
  TwigQuery query = std::move(q).value();
  query.ResolveLabels(labels);
  return query;
}

TEST(WildcardParseTest, ParsesAndPrints) {
  auto q = ParseXPath("//a/*/c");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->HasWildcard());
  EXPECT_EQ(q->ToString(), "//a/*/c");
  auto q2 = ParseXPath("//*[b]/c");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->steps[q2->root].wildcard);
  EXPECT_FALSE(ParseXPath("//a/**").ok());  // double star is not a name
}

TEST(WildcardMatchTest, MatchesAnyElement) {
  LabelTable labels;
  auto doc = ParseXml("<a><x><c/></x><y><c/></y><z><d/></z></a>", &labels);
  ASSERT_TRUE(doc.ok());
  TwigMatcher matcher(&*doc);
  EXPECT_EQ(matcher.Evaluate(MustParse("//a/*/c", &labels)).size(), 2u);
  EXPECT_EQ(matcher.Evaluate(MustParse("//a/*", &labels)).size(), 3u);
  EXPECT_EQ(matcher.Evaluate(MustParse("//*[d]", &labels)).size(), 1u);
  // Wildcards never match text nodes.
  auto doc2 = ParseXml("<a>text</a>", &labels);
  ASSERT_TRUE(doc2.ok());
  TwigMatcher matcher2(&*doc2);
  EXPECT_EQ(matcher2.Evaluate(MustParse("//a/*", &labels)).size(), 0u);
}

class WildcardIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_wild_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    ASSERT_TRUE(corpus_
                    .AddXml("<r><a><x><c/></x></a><a><y><c/></y></a>"
                            "<b><z><c/></z></b></r>")
                    .ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  FixIndex Build(int depth_limit) {
    IndexOptions options;
    options.depth_limit = depth_limit;
    options.path = dir_ + "/w.fix";
    auto index = FixIndex::Build(&corpus_, options, nullptr);
    EXPECT_TRUE(index.ok());
    return std::move(index).value();
  }

  std::string dir_;
  Corpus corpus_;
};

TEST_F(WildcardIndexTest, LabelOnlyDegradationStaysExact) {
  FixIndex index = Build(3);
  FixQueryProcessor processor(&corpus_, &index);
  for (const char* text : {"//a/*/c", "//a/*", "//b/*"}) {
    TwigQuery q = MustParse(text, corpus_.labels());
    std::vector<NodeRef> via_index;
    auto stats = processor.Execute(q, &via_index);
    ASSERT_TRUE(stats.ok()) << text;
    EXPECT_TRUE(stats->covered) << text;
    std::vector<NodeRef> via_scan;
    FullScan(corpus_, q, &via_scan);
    std::set<std::pair<uint32_t, uint32_t>> a, b;
    for (auto r : via_index) a.insert({r.doc_id, r.node_id});
    for (auto r : via_scan) b.insert({r.doc_id, r.node_id});
    EXPECT_EQ(a, b) << text;
  }
}

TEST_F(WildcardIndexTest, WildcardRootFallsBackToFullScan) {
  FixIndex index = Build(3);
  FixQueryProcessor processor(&corpus_, &index);
  TwigQuery q = MustParse("//*[x]/x/c", corpus_.labels());
  std::vector<NodeRef> results;
  auto stats = processor.Execute(q, &results);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->used_index);
  EXPECT_EQ(results.size(), 1u);
}

TEST_F(WildcardIndexTest, LabelScanPrunesOtherLabels) {
  FixIndex index = Build(3);
  TwigQuery q = MustParse("//a/*/c", corpus_.labels());
  auto lookup = index.Lookup(q);
  ASSERT_TRUE(lookup.ok());
  // Only the two a entries qualify — b, r, x, y, z, c are pruned by label.
  EXPECT_EQ(lookup->candidates.size(), 2u);
}

TEST_F(WildcardIndexTest, EstimateHandlesWildcards) {
  FixIndex index = Build(3);
  auto est = index.EstimateCandidates(MustParse("//a/*", corpus_.labels()));
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(*est, 2u);  // label count of a
  auto est2 =
      index.EstimateCandidates(MustParse("//*[x]", corpus_.labels()));
  ASSERT_TRUE(est2.ok());
  EXPECT_EQ(*est2, index.num_entries());  // no pruning possible
}

TEST(WildcardFbTest, FbIndexHandlesWildcards) {
  Corpus corpus;
  ASSERT_TRUE(corpus
                  .AddXml("<r><a><x><c/></x></a><a><y><c/></y></a>"
                          "<b><z><c/></z></b></r>")
                  .ok());
  auto index = FbIndex::Build(&corpus, nullptr);
  ASSERT_TRUE(index.ok());
  for (const char* text : {"//a/*/c", "//*[z]", "//r/*/*/c", "//a/*"}) {
    auto parsed = ParseXPath(text);
    TwigQuery q = std::move(parsed).value();
    q.ResolveLabels(corpus.labels());
    std::vector<NodeRef> via_fb, via_scan;
    auto stats = index->Execute(q, &via_fb);
    ASSERT_TRUE(stats.ok()) << text;
    FullScan(corpus, q, &via_scan);
    std::set<std::pair<uint32_t, uint32_t>> a, b;
    for (auto r : via_fb) a.insert({r.doc_id, r.node_id});
    for (auto r : via_scan) b.insert({r.doc_id, r.node_id});
    EXPECT_EQ(a, b) << text;
  }
}

}  // namespace
}  // namespace fix
