// fixd service tests over real loopback sockets: wire parity with the
// in-process Database (every QUERY/QUERY_BATCH answer byte-identical),
// INSERT visibility, typed load-shedding under a saturated worker pool,
// graceful drain (in-flight requests finish, fresh ones get
// kShuttingDown), and the HTTP sidecar endpoints. Exercises both poller
// backends (epoll where available, poll via force_poll).

#include "server/fixd_server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/net.h"
#include "common/wire.h"
#include "core/database.h"
#include "server/client.h"

namespace fix {
namespace server {
namespace {

const char* const kXPaths[] = {
    "//inproceedings/title/i",
    "//dblp/inproceedings/author",
    "//inproceedings[url]/title",
};

std::string TestDoc(int i) {
  return "<dblp><inproceedings><author>Author " + std::to_string(i) +
         "</author><title>Title <i>emph " + std::to_string(i) +
         "</i></title><url>db/" + std::to_string(i) +
         "</url><year>1999</year></inproceedings></dblp>";
}

/// Blocks the worker executing the first QUERY until Release(); lets the
/// tests hold a request in flight deterministically.
class WorkerLatch {
 public:
  void Block(uint8_t op) {
    if (static_cast<wire::Op>(op) != wire::Op::kQuery) return;
    if (armed_.exchange(false)) {
      MutexLock lock(mu_);
      entered_ = true;
      cv_.NotifyAll();
      while (!released_) cv_.Wait(mu_);
    }
  }
  void AwaitEntered() {
    MutexLock lock(mu_);
    while (!entered_) cv_.Wait(mu_);
  }
  void Release() {
    MutexLock lock(mu_);
    released_ = true;
    cv_.NotifyAll();
  }

 private:
  std::atomic<bool> armed_{true};
  Mutex mu_;
  CondVar cv_;
  bool entered_ FIX_GUARDED_BY(mu_) = false;
  bool released_ FIX_GUARDED_BY(mu_) = false;
};

class FixdServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/fixd_svc_" + info->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    Database seed(dir_);
    for (int i = 0; i < 8; ++i) {
      auto id = seed.AddXml(TestDoc(i));
      ASSERT_TRUE(id.ok()) << id.status();
    }
    ASSERT_TRUE(seed.Save().ok());
    IndexOptions options;
    options.depth_limit = 3;
    auto built = seed.BuildIndex("main", options);
    ASSERT_TRUE(built.ok()) << built.status();

    auto opened = Database::Open(dir_);
    ASSERT_TRUE(opened.ok()) << opened.status();
    db_ = std::move(opened).value();
  }

  void TearDown() override {
    server_.reset();
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  /// Starts a server on an ephemeral loopback port.
  void StartServer(ServerOptions options) {
    options.host = "127.0.0.1";
    options.port = 0;
    options.index = "main";
    options.index_options.depth_limit = 3;
    server_ = std::make_unique<Server>(db_.get(), options);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started;
  }

  Result<std::unique_ptr<FixdClient>> Connect() {
    return FixdClient::Connect("127.0.0.1", server_->port());
  }

  std::string dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
};

/// Reads one response frame from a raw socket (for tests that pipeline
/// past FixdClient's one-in-flight discipline).
void ReadFrame(int fd, uint8_t* type, std::string* payload) {
  char header[wire::kHeaderSize];
  ASSERT_TRUE(net::RecvExact(fd, header, sizeof(header), 5000).ok());
  ASSERT_EQ(header[0], wire::kMagic0);
  ASSERT_EQ(header[1], wire::kMagic1);
  *type = static_cast<uint8_t>(header[3]);
  const uint32_t len = DecodeFixed32(header + 4);
  ASSERT_LE(len, wire::kMaxPayload);
  payload->resize(len);
  if (len > 0) {
    ASSERT_TRUE(net::RecvExact(fd, payload->data(), len, 5000).ok());
  }
}

TEST_F(FixdServiceTest, LoopbackParityWithInProcessExecution) {
  StartServer(ServerOptions{});
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE((*client)->Ping().ok());

  // Every QUERY answer must match the in-process Database byte for byte:
  // same rows, same order, same stats the wire carries.
  for (const char* xpath : kXPaths) {
    std::vector<NodeRef> want;
    auto stats = db_->Query("main", xpath, &want);
    ASSERT_TRUE(stats.ok()) << xpath;

    auto outcome = (*client)->Query("main", xpath);
    ASSERT_TRUE(outcome.ok()) << xpath << ": " << outcome.status();
    EXPECT_EQ(outcome->result_count, stats->result_count) << xpath;
    EXPECT_EQ(outcome->used_index, stats->used_index) << xpath;
    EXPECT_EQ(outcome->candidates, stats->candidates) << xpath;
    ASSERT_EQ(outcome->results.size(), want.size()) << xpath;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(outcome->results[i].doc_id, want[i].doc_id);
      EXPECT_EQ(outcome->results[i].node_id, want[i].node_id);
    }
  }

  // QUERY_BATCH parity against ExecuteMany, including a per-query error
  // sandwiched between two good queries.
  std::vector<std::string> xpaths = {kXPaths[0], "//broken[", kXPaths[1]};
  auto local = db_->ExecuteMany("main", xpaths, 2);
  ASSERT_TRUE(local.ok());
  auto remote = (*client)->QueryBatch("main", xpaths, 2);
  ASSERT_TRUE(remote.ok()) << remote.status();
  ASSERT_EQ(remote->size(), xpaths.size());
  EXPECT_EQ((*remote)[1].code, wire::Code::kParseError);
  for (size_t q = 0; q < xpaths.size(); ++q) {
    const auto& l = (*local)[q];
    const auto& r = (*remote)[q];
    ASSERT_EQ(l.status.ok(), r.code == wire::Code::kOk) << xpaths[q];
    if (!l.status.ok()) continue;
    ASSERT_EQ(r.results.size(), l.results.size()) << xpaths[q];
    for (size_t i = 0; i < l.results.size(); ++i) {
      EXPECT_EQ(r.results[i].doc_id, l.results[i].doc_id);
      EXPECT_EQ(r.results[i].node_id, l.results[i].node_id);
    }
  }

  // Typed errors, not dropped connections.
  auto missing = (*client)->Query("no_such_index", kXPaths[0]);
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status();
  auto bad = (*client)->Query("main", "//broken[");
  EXPECT_TRUE(bad.status().IsParseError()) << bad.status();
  // The connection survived both errors.
  EXPECT_TRUE((*client)->Ping().ok());

  auto prom = (*client)->Stats();
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->find("fixd_requests_total"), std::string::npos);
  EXPECT_NE(prom->find("fixd_connections_open"), std::string::npos);

  ASSERT_TRUE(server_->Stop().ok());
}

TEST_F(FixdServiceTest, PollBackendServesTheSameProtocol) {
  ServerOptions options;
  options.force_poll = true;
  StartServer(options);
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status();
  std::vector<NodeRef> want;
  ASSERT_TRUE(db_->Query("main", kXPaths[0], &want).ok());
  auto outcome = (*client)->Query("main", kXPaths[0]);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_EQ(outcome->results.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(outcome->results[i].node_id, want[i].node_id);
  }
  ASSERT_TRUE(server_->Stop().ok());
}

TEST_F(FixdServiceTest, InsertIsVisibleToSubsequentQueries) {
  StartServer(ServerOptions{});
  auto client = Connect();
  ASSERT_TRUE(client.ok());

  auto before = (*client)->Query("main", kXPaths[0]);
  ASSERT_TRUE(before.ok());

  auto inserted = (*client)->Insert("main", TestDoc(100));
  ASSERT_TRUE(inserted.ok()) << inserted.status();
  EXPECT_EQ(inserted->doc_id, 8u);  // 8 seed docs
  EXPECT_GT(inserted->generation, 0u);

  auto after = (*client)->Query("main", kXPaths[0]);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->result_count, before->result_count + 1);

  // Malformed XML is a typed ParseError and changes nothing.
  auto rejected = (*client)->Insert("main", "<unclosed>");
  EXPECT_TRUE(rejected.status().IsParseError()) << rejected.status();
  auto unchanged = (*client)->Query("main", kXPaths[0]);
  ASSERT_TRUE(unchanged.ok());
  EXPECT_EQ(unchanged->result_count, after->result_count);

  ASSERT_TRUE(server_->Stop().ok());
}

TEST_F(FixdServiceTest, OverloadShedsWithTypedErrorAndLosesNothing) {
  WorkerLatch latch;
  ServerOptions options;
  options.workers = 1;
  options.max_inflight = 1;
  options.dispatch_hook_for_test = [&latch](uint8_t op) { latch.Block(op); };
  StartServer(options);

  std::vector<NodeRef> want;
  ASSERT_TRUE(db_->Query("main", kXPaths[0], &want).ok());

  // Client A's query occupies the only in-flight slot (the worker parks
  // in the latch after admission).
  auto a = Connect();
  ASSERT_TRUE(a.ok());
  Result<wire::QueryOutcome> a_outcome = Status::Internal("unset");
  std::thread a_thread([&] { a_outcome = (*a)->Query("main", kXPaths[0]); });
  latch.AwaitEntered();
  ASSERT_EQ(server_->inflight(), 1);

  // Client B must be shed immediately with the typed retryable error —
  // not queued, not disconnected.
  auto b = Connect();
  ASSERT_TRUE(b.ok());
  auto b_outcome = (*b)->Query("main", kXPaths[0]);
  EXPECT_TRUE(b_outcome.status().IsUnavailable()) << b_outcome.status();
  EXPECT_NE(b_outcome.status().message().find("Overloaded"),
            std::string::npos)
      << b_outcome.status();

  // Releasing the worker completes A's request with a correct answer:
  // shedding shed B's request only, nothing was silently dropped.
  latch.Release();
  a_thread.join();
  ASSERT_TRUE(a_outcome.ok()) << a_outcome.status();
  ASSERT_EQ(a_outcome->results.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(a_outcome->results[i].node_id, want[i].node_id);
  }
  // B's connection survived the shed and serves again now.
  auto b_retry = (*b)->Query("main", kXPaths[0]);
  EXPECT_TRUE(b_retry.ok()) << b_retry.status();

  ASSERT_TRUE(server_->Stop().ok());
}

TEST_F(FixdServiceTest, GracefulDrainFinishesInflightAndRejectsFresh) {
  WorkerLatch latch;
  ServerOptions options;
  options.workers = 1;
  options.drain_timeout_ms = 10'000;
  options.dispatch_hook_for_test = [&latch](uint8_t op) { latch.Block(op); };
  StartServer(options);

  std::vector<NodeRef> want;
  ASSERT_TRUE(db_->Query("main", kXPaths[0], &want).ok());

  // Pipeline QUERY then PING on a raw socket: the query is admitted (and
  // parked in the latch); the ping stays buffered behind the server's
  // one-request-per-connection discipline until the query completes —
  // by which point the server is draining.
  auto sock = net::ConnectTcp("127.0.0.1", server_->port(), 5000);
  ASSERT_TRUE(sock.ok());
  std::string frames;
  std::string payload;
  wire::EncodeQueryRequest({"main", kXPaths[0]}, &payload);
  wire::AppendFrame(static_cast<uint8_t>(wire::Op::kQuery), payload,
                    &frames);
  wire::AppendFrame(static_cast<uint8_t>(wire::Op::kPing), "", &frames);
  ASSERT_TRUE(net::SendAll(sock->get(), frames, 5000).ok());
  latch.AwaitEntered();
  ASSERT_EQ(server_->inflight(), 1);

  server_->BeginDrain();
  latch.Release();

  // The in-flight query finished and its (correct) response flushed
  // before the connection went away.
  uint8_t type = 0;
  std::string response;
  ReadFrame(sock->get(), &type, &response);
  EXPECT_EQ(type, static_cast<uint8_t>(wire::Op::kQuery) |
                      wire::kResponseBit);
  wire::QueryOutcome outcome;
  ASSERT_TRUE(wire::DecodeQueryResponse(response, &outcome).ok());
  ASSERT_EQ(outcome.results.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(outcome.results[i].node_id, want[i].node_id);
  }

  // The pipelined ping was fresh work under drain: typed kShuttingDown.
  ReadFrame(sock->get(), &type, &response);
  EXPECT_EQ(type, static_cast<uint8_t>(wire::Op::kPing) |
                      wire::kResponseBit);
  wire::Code code = wire::Code::kOk;
  std::string error;
  size_t body_offset = 0;
  ASSERT_TRUE(
      wire::DecodeResponseHead(response, &code, &error, &body_offset).ok());
  EXPECT_EQ(code, wire::Code::kShuttingDown) << error;

  // Nothing was force-closed: the drain completes cleanly.
  Status drained = server_->WaitDrained();
  EXPECT_TRUE(drained.ok()) << drained;
}

TEST_F(FixdServiceTest, HttpSidecarServesStatsAndHealth) {
  StartServer(ServerOptions{});

  auto get = [&](const std::string& request) {
    auto sock = net::ConnectTcp("127.0.0.1", server_->port(), 5000);
    EXPECT_TRUE(sock.ok());
    EXPECT_TRUE(net::SendAll(sock->get(), request, 5000).ok());
    // The server closes after one response (Connection: close), so read
    // to EOF.
    std::string response;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(sock->get(), buf, sizeof(buf), 0);
      if (n <= 0) break;
      response.append(buf, static_cast<size_t>(n));
    }
    return response;
  };

  // Prime a counter so the exposition provably carries fixd metrics.
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Ping().ok());

  std::string health = get("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos);

  std::string stats = get("GET /stats HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(stats.find("200 OK"), std::string::npos);
  EXPECT_NE(stats.find("fixd_requests_total"), std::string::npos);
  EXPECT_NE(stats.find("fixd_request_latency_us"), std::string::npos);

  std::string missing = get("GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);

  std::string post = get("POST /stats HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);

  ASSERT_TRUE(server_->Stop().ok());
}

TEST_F(FixdServiceTest, GarbageBytesGetTypedBadFrameThenClose) {
  StartServer(ServerOptions{});
  auto sock = net::ConnectTcp("127.0.0.1", server_->port(), 5000);
  ASSERT_TRUE(sock.ok());
  // Not HTTP, not a valid frame: 12+ garbage bytes sniff as wire mode and
  // poison the frame reader.
  ASSERT_TRUE(
      net::SendAll(sock->get(), "ZZZZZZZZZZZZZZZZ", 5000).ok());
  uint8_t type = 0;
  std::string response;
  ReadFrame(sock->get(), &type, &response);
  EXPECT_EQ(type, wire::kResponseBit);  // frame-level error channel
  wire::Code code = wire::Code::kOk;
  std::string error;
  size_t body_offset = 0;
  ASSERT_TRUE(
      wire::DecodeResponseHead(response, &code, &error, &body_offset).ok());
  EXPECT_EQ(code, wire::Code::kBadFrame);
  // The server closes the unsynchronized stream after the error flushes.
  char byte;
  EXPECT_EQ(::recv(sock->get(), &byte, 1, 0), 0);
  ASSERT_TRUE(server_->Stop().ok());
}

}  // namespace
}  // namespace server
}  // namespace fix
