// Tests for the navigational twig matcher (the refinement engine): axis
// semantics, predicates, value constraints, result bindings, and
// context-rooted evaluation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/match.h"
#include "query/xpath_parser.h"
#include "xml/parser.h"

namespace fix {
namespace {

class MatchTest : public ::testing::Test {
 protected:
  Document Parse(const std::string& xml) {
    auto doc = ParseXml(xml, &labels_);
    EXPECT_TRUE(doc.ok()) << doc.status();
    return std::move(doc).value();
  }

  TwigQuery Query(const std::string& text) {
    auto q = ParseXPath(text);
    EXPECT_TRUE(q.ok()) << q.status();
    TwigQuery query = std::move(q).value();
    query.ResolveLabels(&labels_);
    return query;
  }

  size_t Count(const Document& doc, const std::string& text) {
    TwigMatcher matcher(&doc);
    return matcher.Evaluate(Query(text)).size();
  }

  LabelTable labels_;
};

TEST_F(MatchTest, ChildAxis) {
  Document doc = Parse("<a><b/><c><b/></c></a>");
  EXPECT_EQ(Count(doc, "/a/b"), 1u);
  EXPECT_EQ(Count(doc, "/a/c/b"), 1u);
  EXPECT_EQ(Count(doc, "/a/x"), 0u);
  EXPECT_EQ(Count(doc, "/b"), 0u);  // b is not the root element
}

TEST_F(MatchTest, DescendantAxis) {
  Document doc = Parse("<a><b/><c><b/></c></a>");
  EXPECT_EQ(Count(doc, "//b"), 2u);
  EXPECT_EQ(Count(doc, "//a"), 1u);
  EXPECT_EQ(Count(doc, "//c//b"), 1u);
}

TEST_F(MatchTest, InteriorDescendant) {
  Document doc = Parse("<a><x><y><b/></y></x><b/></a>");
  EXPECT_EQ(Count(doc, "/a//b"), 2u);
  EXPECT_EQ(Count(doc, "/a/x//b"), 1u);
}

TEST_F(MatchTest, Predicates) {
  Document doc = Parse(
      "<lib><book><title/><isbn/></book><book><title/></book></lib>");
  EXPECT_EQ(Count(doc, "//book[isbn]/title"), 1u);
  EXPECT_EQ(Count(doc, "//book/title"), 2u);
  EXPECT_EQ(Count(doc, "//book[isbn][title]"), 1u);
}

TEST_F(MatchTest, PredicatePaths) {
  Document doc = Parse(
      "<r><item><mailbox><mail><text/></mail></mailbox><d/></item>"
      "<item><mailbox/><d/></item></r>");
  EXPECT_EQ(Count(doc, "//item[mailbox/mail/text]/d"), 1u);
  EXPECT_EQ(Count(doc, "//item[mailbox]/d"), 2u);
  EXPECT_EQ(Count(doc, "//item[.//text]/d"), 1u);
}

TEST_F(MatchTest, ValueEquality) {
  Document doc = Parse(
      "<dblp><inproceedings><year>1998</year><title/></inproceedings>"
      "<inproceedings><year>1999</year><title/></inproceedings></dblp>");
  EXPECT_EQ(Count(doc, "//inproceedings[year=\"1998\"]/title"), 1u);
  EXPECT_EQ(Count(doc, "//inproceedings[year=\"1997\"]/title"), 0u);
  EXPECT_EQ(Count(doc, "//inproceedings[year]/title"), 2u);
}

TEST_F(MatchTest, ResultBindingsAreDeduplicated) {
  // Two distinct b-parents share one c descendant set; result nodes must be
  // unique even when reachable through multiple bindings.
  Document doc = Parse("<a><b><b><c/></b></b></a>");
  EXPECT_EQ(Count(doc, "//b//c"), 1u);
}

TEST_F(MatchTest, ExistsMatchesEvaluate) {
  Document doc = Parse("<a><b><c/></b></a>");
  TwigMatcher matcher(&doc);
  EXPECT_TRUE(matcher.Exists(Query("//b/c")));
  EXPECT_FALSE(matcher.Exists(Query("//c/b")));
}

TEST_F(MatchTest, EvaluateAtBindsContext) {
  Document doc = Parse("<a><s><n/></s><s><m/></s></a>");
  TwigQuery q = Query("//s/n");
  TwigMatcher matcher(&doc);
  // Locate the two s elements.
  NodeId root = doc.root_element();
  NodeId s1 = doc.first_child(root);
  NodeId s2 = doc.next_sibling(s1);
  EXPECT_TRUE(matcher.ExistsAt(s1, q));
  EXPECT_FALSE(matcher.ExistsAt(s2, q));
  // Context label must match the root step.
  EXPECT_FALSE(matcher.ExistsAt(root, q));
}

TEST_F(MatchTest, NewQueryResetsMemo) {
  Document doc = Parse("<a><b/></a>");
  TwigMatcher matcher(&doc);
  TwigQuery q1 = Query("//a[b]");
  TwigQuery q2 = Query("//a[c]");
  NodeId root = doc.root_element();
  EXPECT_TRUE(matcher.ExistsAt(root, q1));
  matcher.NewQuery();
  EXPECT_FALSE(matcher.ExistsAt(root, q2));
}

TEST_F(MatchTest, RecursiveLabelsDeepNesting) {
  Document doc = Parse("<S><S><NP/><S><NP><PP/></NP></S></S></S>");
  EXPECT_EQ(Count(doc, "//S/NP"), 2u);
  EXPECT_EQ(Count(doc, "//S//NP"), 2u);
  EXPECT_EQ(Count(doc, "//S/S/NP[PP]"), 1u);
  EXPECT_EQ(Count(doc, "//NP[PP]"), 1u);
}

TEST_F(MatchTest, TextNodesNeverBindSteps) {
  Document doc = Parse("<a>b<b/></a>");  // text "b" plus element <b>
  EXPECT_EQ(Count(doc, "//a/b"), 1u);
}

TEST_F(MatchTest, NodesVisitedGrowsWithWork) {
  Document doc = Parse("<a><b/><b/><b/><b/></a>");
  TwigMatcher matcher(&doc);
  matcher.Evaluate(Query("//b"));
  EXPECT_GT(matcher.nodes_visited(), 0u);
}

TEST_F(MatchTest, UnknownLabelNeverMatches) {
  Document doc = Parse("<a><b/></a>");
  EXPECT_EQ(Count(doc, "//zzz"), 0u);
}

}  // namespace
}  // namespace fix
