// Tests for the synthetic data generators: determinism, the structural
// signatures the paper's analysis relies on, and the random query
// generator.

#include <gtest/gtest.h>

#include <set>

#include "core/corpus.h"
#include "datagen/datasets.h"
#include "datagen/query_gen.h"
#include "query/match.h"
#include "query/xpath_parser.h"
#include "xml/doc_stats.h"

namespace fix {
namespace {

size_t CountMatches(const Corpus& corpus, const std::string& text) {
  auto parsed = ParseXPath(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  TwigQuery q = std::move(parsed).value();
  size_t n = 0;
  for (uint32_t d = 0; d < corpus.num_docs(); ++d) {
    TwigQuery local = q;
    local.ResolveLabels(const_cast<Corpus&>(corpus).labels());
    TwigMatcher matcher(&corpus.doc(d));
    n += matcher.Evaluate(local).size();
  }
  return n;
}

TEST(TcmdGenTest, ShapeAndDeterminism) {
  Corpus c1, c2;
  TcmdOptions options;
  options.num_docs = 50;
  GenerateTcmd(&c1, options);
  GenerateTcmd(&c2, options);
  ASSERT_EQ(c1.num_docs(), 50u);
  EXPECT_EQ(c1.TotalElements(), c2.TotalElements());  // deterministic
  // Every document is a small article; depth is uniform and small.
  for (uint32_t d = 0; d < c1.num_docs(); ++d) {
    const Document& doc = c1.doc(d);
    EXPECT_EQ(c1.labels()->Name(doc.label(doc.root_element())), "article");
    int depth = doc.Depth(doc.root_element());
    EXPECT_GE(depth, 4);
    EXPECT_LE(depth, 8);
  }
  // The representative queries must hit a sensible fraction of docs.
  EXPECT_GT(CountMatches(c1, "/article[epilog]/prolog/authors/author"), 0u);
  EXPECT_GT(CountMatches(
                c1, "/article/prolog[keywords]/authors/author/contact[phone]"),
            0u);
}

TEST(DblpGenTest, ShallowAndRegular) {
  Corpus corpus;
  DblpOptions options;
  options.num_publications = 500;
  GenerateDblp(&corpus, options);
  ASSERT_EQ(corpus.num_docs(), 1u);
  const Document& doc = corpus.doc(0);
  DocStats stats = ComputeDocStats(doc, *corpus.labels());
  EXPECT_LE(stats.max_depth, 5);  // dblp/pub/title/i/text()
  EXPECT_GT(stats.elements, 2000u);
  // The paper's query vocabulary must be live.
  EXPECT_GT(CountMatches(corpus, "//inproceedings/title"), 0u);
  EXPECT_GT(CountMatches(corpus, "//article[number]/author"), 0u);
  EXPECT_GT(CountMatches(corpus, "//proceedings[publisher=\"Springer\"]"),
            0u);
  // Selectivity ordering: [url]/title common, [booktitle]/title[sup][i]
  // rare.
  size_t lo = CountMatches(corpus, "//inproceedings[url]/title");
  size_t hi = CountMatches(corpus, "//proceedings[booktitle]/title[sup][i]");
  EXPECT_GT(lo, hi);
}

TEST(XMarkGenTest, StructureRichAuctionSite) {
  Corpus corpus;
  XMarkOptions options;
  options.num_items = 60;
  options.num_people = 60;
  options.num_open_auctions = 60;
  options.num_closed_auctions = 60;
  options.num_categories = 30;
  GenerateXMark(&corpus, options);
  ASSERT_EQ(corpus.num_docs(), 1u);
  const Document& doc = corpus.doc(0);
  EXPECT_EQ(corpus.labels()->Name(doc.label(doc.root_element())), "site");
  DocStats stats = ComputeDocStats(doc, *corpus.labels());
  EXPECT_GE(stats.max_depth, 7);  // recursive parlists go deep
  // Paper queries must be satisfiable.
  EXPECT_GT(CountMatches(corpus, "//description/parlist/listitem"), 0u);
  EXPECT_GT(CountMatches(corpus,
                         "//closed_auction/annotation/description/text"),
            0u);
  EXPECT_GT(CountMatches(corpus, "//item/mailbox/mail/text/emph/keyword"),
            0u);
  EXPECT_GT(CountMatches(
                corpus, "//open_auction[seller]/annotation/description/text"),
            0u);
}

TEST(TreebankGenTest, DeepRecursiveParses) {
  Corpus corpus;
  TreebankOptions options;
  options.num_sentences = 150;
  GenerateTreebank(&corpus, options);
  ASSERT_EQ(corpus.num_docs(), 1u);
  const Document& doc = corpus.doc(0);
  DocStats stats = ComputeDocStats(doc, *corpus.labels());
  EXPECT_GE(stats.max_depth, 10);  // deep recursion
  EXPECT_GT(CountMatches(corpus, "//EMPTY/S/VP"), 0u);
  EXPECT_GT(CountMatches(corpus, "//EMPTY/S[VP]/NP"), 0u);
  EXPECT_GT(CountMatches(corpus, "//NP[PP]"), 0u);
  // Recursion: S below S.
  EXPECT_GT(CountMatches(corpus, "//S//S"), 0u);
}

TEST(QueryGenTest, GeneratesResolvedDistinctSatisfiableQueries) {
  Corpus corpus;
  TcmdOptions options;
  options.num_docs = 20;
  GenerateTcmd(&corpus, options);
  QueryGenOptions qopts;
  qopts.seed = 3;
  auto queries = GenerateRandomQueries(corpus, 50, qopts);
  EXPECT_GT(queries.size(), 25u);
  std::set<std::string> texts;
  for (const auto& q : queries) {
    EXPECT_TRUE(q.IsPureTwig());
    EXPECT_GE(q.Depth(), 2);
    EXPECT_LE(q.Depth(), qopts.max_depth);
    for (const auto& s : q.steps) EXPECT_NE(s.label, kInvalidLabel);
    texts.insert(q.ToString());
    // Sampled from the data, so every query matches somewhere.
    bool found = false;
    for (uint32_t d = 0; d < corpus.num_docs() && !found; ++d) {
      TwigMatcher matcher(&corpus.doc(d));
      found = matcher.Exists(q);
    }
    EXPECT_TRUE(found) << q.ToString();
  }
  EXPECT_EQ(texts.size(), queries.size());  // distinct
}

TEST(QueryGenTest, DeterministicPerSeed) {
  Corpus corpus;
  TcmdOptions options;
  options.num_docs = 10;
  GenerateTcmd(&corpus, options);
  QueryGenOptions qopts;
  qopts.seed = 9;
  auto q1 = GenerateRandomQueries(corpus, 20, qopts);
  auto q2 = GenerateRandomQueries(corpus, 20, qopts);
  ASSERT_EQ(q1.size(), q2.size());
  for (size_t i = 0; i < q1.size(); ++i) {
    EXPECT_EQ(q1[i].ToString(), q2[i].ToString());
  }
}

}  // namespace
}  // namespace fix
