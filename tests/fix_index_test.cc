// Tests for FixIndex construction and lookup (Algorithms 1 and 2) on small
// hand-checkable corpora.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "core/corpus.h"
#include "core/fix_index.h"
#include "query/xpath_parser.h"

namespace fix {
namespace {

class FixIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_index_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void AddXml(const std::string& xml) {
    auto id = corpus_.AddXml(xml);
    ASSERT_TRUE(id.ok()) << id.status();
  }

  TwigQuery Query(const std::string& text) {
    auto q = ParseXPath(text);
    EXPECT_TRUE(q.ok()) << q.status();
    TwigQuery query = std::move(q).value();
    query.ResolveLabels(corpus_.labels());
    return query;
  }

  IndexOptions Options(int depth_limit, bool clustered = false) {
    IndexOptions options;
    options.depth_limit = depth_limit;
    options.clustered = clustered;
    options.path = dir_ + "/test.fix";
    options.buffer_pool_pages = 64;
    return options;
  }

  std::string dir_;
  Corpus corpus_;
};

TEST_F(FixIndexTest, CollectionIndexOneEntryPerDocument) {
  AddXml("<a><b/></a>");
  AddXml("<a><c/></a>");
  AddXml("<x><y/></x>");
  BuildStats stats;
  auto index = FixIndex::Build(&corpus_, Options(0), &stats);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_EQ(index->num_entries(), 3u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.oversized_patterns, 0u);
  EXPECT_GT(stats.btree_bytes, 0u);
}

TEST_F(FixIndexTest, RootedLookupPrunesByLabelAndSpectrum) {
  AddXml("<a><b/><c/></a>");   // doc 0: matches /a[b]/c
  AddXml("<a><b/></a>");       // doc 1: has a,b but no c
  AddXml("<x><b/><c/></x>");   // doc 2: wrong root label
  auto index = FixIndex::Build(&corpus_, Options(0), nullptr);
  ASSERT_TRUE(index.ok());
  auto lookup = index->Lookup(Query("/a[b]/c"));
  ASSERT_TRUE(lookup.ok());
  ASSERT_TRUE(lookup->covered);
  // Doc 2 pruned by root label. Doc 1 pruned by eigenvalues (its pattern
  // a->b has a smaller spectral radius than the query pattern a->{b,c}).
  std::set<uint32_t> docs;
  for (const auto& c : lookup->candidates) docs.insert(c.ref.doc_id);
  EXPECT_TRUE(docs.count(0));
  EXPECT_FALSE(docs.count(2));
  EXPECT_FALSE(docs.count(1));
}

TEST_F(FixIndexTest, DescendantRootedLookupScansAllLabels) {
  AddXml("<r><a><b/></a></r>");
  AddXml("<s><a><b/></a></s>");
  AddXml("<t><c/></t>");
  auto index = FixIndex::Build(&corpus_, Options(0), nullptr);
  ASSERT_TRUE(index.ok());
  // //a/b matches below two differently-labelled roots: both documents
  // must be candidates (no false negatives).
  auto lookup = index->Lookup(Query("//a/b"));
  ASSERT_TRUE(lookup.ok());
  std::set<uint32_t> docs;
  for (const auto& c : lookup->candidates) docs.insert(c.ref.doc_id);
  EXPECT_TRUE(docs.count(0));
  EXPECT_TRUE(docs.count(1));
}

TEST_F(FixIndexTest, DepthLimitedOneEntryPerElement) {
  // Theorem 4: with a positive depth limit on a deeper document, exactly
  // one entry per element.
  AddXml("<a><b><c><d/></c></b><b><c/></b></a>");  // 6 elements, depth 4
  BuildStats stats;
  auto index = FixIndex::Build(&corpus_, Options(2), &stats);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_EQ(index->num_entries(), 6u);
}

TEST_F(FixIndexTest, DepthLimitedEnumeratesShallowDocsToo) {
  // Unlike Algorithm 1 as printed (see the deviation note in fix_index.cc),
  // a depth-limited index enumerates per element for every document, so
  // //-rooted queries can find matches inside shallow documents.
  AddXml("<a><b/></a>");                            // depth 2 <= limit
  AddXml("<a><b><c><d><e/></d></c></b></a>");       // depth 5 > limit
  auto index = FixIndex::Build(&corpus_, Options(3), nullptr);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_entries(), 7u);  // 2 + 5 elements
  // The shallow document's b is reachable through the probe.
  auto lookup = index->Lookup(Query("//b"));
  ASSERT_TRUE(lookup.ok());
  std::set<uint32_t> docs;
  for (const auto& c : lookup->candidates) docs.insert(c.ref.doc_id);
  EXPECT_TRUE(docs.count(0));
  EXPECT_TRUE(docs.count(1));
}

TEST_F(FixIndexTest, DepthLimitedCoverageCheck) {
  AddXml("<a><b><c><d/></c></b></a>");
  auto index = FixIndex::Build(&corpus_, Options(2), nullptr);
  ASSERT_TRUE(index.ok());
  auto covered = index->Lookup(Query("//b/c"));
  ASSERT_TRUE(covered.ok());
  EXPECT_TRUE(covered->covered);
  auto too_deep = index->Lookup(Query("//b/c/d"));
  ASSERT_TRUE(too_deep.ok());
  EXPECT_FALSE(too_deep->covered);
}

TEST_F(FixIndexTest, DepthLimitedCandidatesAreElements) {
  AddXml("<r><s><n/></s><s><m/></s><s><n/></s><t><n/></t></r>");
  auto index = FixIndex::Build(&corpus_, Options(2), nullptr);
  ASSERT_TRUE(index.ok());
  auto lookup = index->Lookup(Query("//s/n"));
  ASSERT_TRUE(lookup.ok());
  // Every candidate must carry the root-step label (t/n/m/r entries are
  // pruned by label). The two s[n] elements are guaranteed candidates (no
  // false negatives); s[m] may survive as a spectral false positive when
  // its edge weight exceeds the query's — refinement rejects it later.
  const Document& doc = corpus_.doc(0);
  size_t s_candidates = 0;
  for (const auto& c : lookup->candidates) {
    EXPECT_EQ(corpus_.labels()->Name(doc.label(c.ref.node_id)), "s");
    ++s_candidates;
  }
  EXPECT_GE(s_candidates, 2u);
  EXPECT_LE(s_candidates, 3u);
}

TEST_F(FixIndexTest, ClusteredIndexStoresSubtreeCopies) {
  AddXml("<a><b/><c/></a>");
  AddXml("<a><b/></a>");
  BuildStats stats;
  auto index = FixIndex::Build(&corpus_, Options(0, /*clustered=*/true),
                               &stats);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_GT(stats.clustered_bytes, 0u);
  auto lookup = index->Lookup(Query("/a[b]/c"));
  ASSERT_TRUE(lookup.ok());
  ASSERT_EQ(lookup->candidates.size(), 1u);
  // The clustered record must decode back to the matching document.
  auto record = index->clustered_store()->Read(
      RecordId{lookup->candidates[0].clustered_offset});
  ASSERT_TRUE(record.ok());
  EXPECT_FALSE(record->empty());
}

TEST_F(FixIndexTest, OversizedPatternsAlwaysCandidates) {
  AddXml("<a><b/><c/><d/><e/><f/><g/></a>");
  IndexOptions options = Options(0);
  options.max_pattern_vertices = 3;  // force the oversized path
  BuildStats stats;
  auto index = FixIndex::Build(&corpus_, options, &stats);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(stats.oversized_patterns, 1u);
  // Any probe with the right root label must return it as candidate.
  auto lookup = index->Lookup(Query("/a[b][c][d][e][f]/g"));
  ASSERT_TRUE(lookup.ok());
  EXPECT_EQ(lookup->candidates.size(), 1u);
}

TEST_F(FixIndexTest, ValueIndexNeverLosesMatches) {
  AddXml("<p><pub>Springer</pub><t/></p>");
  AddXml("<p><pub>ACM</pub><t/></p>");
  AddXml("<p><t/></p>");  // no pub at all
  IndexOptions options = Options(0);
  options.value_beta = 64;
  auto index = FixIndex::Build(&corpus_, options, nullptr);
  ASSERT_TRUE(index.ok());
  auto lookup = index->Lookup(Query("/p[pub=\"Springer\"]/t"));
  ASSERT_TRUE(lookup.ok());
  // Doc 0 must be a candidate (no false negative). Doc 1 may survive as a
  // spectral false positive (value buckets only shift edge weights), but
  // doc 2 — structurally missing pub — must be pruned: its pattern lacks
  // the pub edge entirely and its spectral radius is strictly smaller.
  std::set<uint32_t> docs;
  for (const auto& c : lookup->candidates) docs.insert(c.ref.doc_id);
  EXPECT_TRUE(docs.count(0));
  EXPECT_FALSE(docs.count(2));
}

TEST_F(FixIndexTest, Lambda2TightensPruning) {
  // Two documents with equal spectral radius but different second
  // eigenvalue would be distinguished only with use_lambda2. At minimum the
  // flag must not introduce false negatives.
  AddXml("<a><b/><b/><c><d/></c></a>");
  AddXml("<a><c><d/></c></a>");
  IndexOptions options = Options(0);
  options.use_lambda2 = true;
  auto index = FixIndex::Build(&corpus_, options, nullptr);
  ASSERT_TRUE(index.ok());
  auto lookup = index->Lookup(Query("/a/c/d"));
  ASSERT_TRUE(lookup.ok());
  std::set<uint32_t> docs;
  for (const auto& c : lookup->candidates) docs.insert(c.ref.doc_id);
  EXPECT_TRUE(docs.count(0));
  EXPECT_TRUE(docs.count(1));
}

TEST_F(FixIndexTest, QueryFeaturesSymmetricRange) {
  AddXml("<a><b/></a>");
  auto index = FixIndex::Build(&corpus_, Options(0), nullptr);
  ASSERT_TRUE(index.ok());
  auto key = index->QueryFeatures(Query("//a[b]"));
  ASSERT_TRUE(key.ok());
  // Anti-symmetric matrices: λ_min = -λ_max, always.
  EXPECT_DOUBLE_EQ(key->lambda_min, -key->lambda_max);
  EXPECT_GT(key->lambda_max, 0.0);
}

TEST_F(FixIndexTest, BuildRequiresPath) {
  AddXml("<a/>");
  IndexOptions options;
  EXPECT_FALSE(FixIndex::Build(&corpus_, options, nullptr).ok());
}

}  // namespace
}  // namespace fix
