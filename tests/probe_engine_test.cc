// Engine-parity property tests for IndexOptions::probe_engine: the kd-tree
// spatial probe must return candidate sets byte-identical to the B+-tree
// range scan — same entries, same order — for random twig probes under both
// sound_probe settings, including exact ε-boundary equality. Plus the
// snapshot contract: a reader's pinned spatial snapshot stays consistent
// (same generation, same answers) while COW commits publish new ones.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "core/corpus.h"
#include "core/feature.h"
#include "core/fix_index.h"
#include "core/spatial_probe.h"
#include "datagen/datasets.h"
#include "datagen/query_gen.h"
#include "query/compile.h"
#include "query/xpath_parser.h"

namespace fix {
namespace {

enum class Gen { kTcmd, kDblp, kXMark, kTreebank };

const char* GenName(Gen g) {
  switch (g) {
    case Gen::kTcmd: return "tcmd";
    case Gen::kDblp: return "dblp";
    case Gen::kXMark: return "xmark";
    case Gen::kTreebank: return "treebank";
  }
  return "?";
}

// Small deterministic corpora — the generators are seeded, so these double
// as the "seeded random corpora" of the parity property.
void MakeCorpus(Gen g, Corpus* corpus) {
  switch (g) {
    case Gen::kTcmd: {
      TcmdOptions o;
      o.num_docs = 60;
      GenerateTcmd(corpus, o);
      break;
    }
    case Gen::kDblp: {
      DblpOptions o;
      o.num_publications = 120;
      GenerateDblp(corpus, o);
      break;
    }
    case Gen::kXMark: {
      XMarkOptions o;
      o.num_items = 24;
      o.num_people = 24;
      o.num_open_auctions = 24;
      o.num_closed_auctions = 24;
      o.num_categories = 12;
      GenerateXMark(corpus, o);
      break;
    }
    case Gen::kTreebank: {
      TreebankOptions o;
      o.num_sentences = 60;
      GenerateTreebank(corpus, o);
      break;
    }
  }
}

// Byte-exact fingerprint of a candidate list, in result order.
std::string Fingerprint(const std::vector<FixIndex::Candidate>& candidates) {
  std::string out;
  for (const FixIndex::Candidate& c : candidates) {
    out += EncodeFeatureKey(c.key);
    char buf[16];
    std::memcpy(buf, &c.ref.doc_id, 4);
    std::memcpy(buf + 4, &c.ref.node_id, 4);
    std::memcpy(buf + 8, &c.clustered_offset, 8);
    out.append(buf, sizeof(buf));
  }
  return out;
}

std::string TempDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/fix_probe_engine_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// The parity property: over every dataset generator, with λ₂ filtering on,
// under both sound_probe settings, and with both root-label modes, the two
// engines return byte-identical candidates for seeded random twig probes.
TEST(ProbeEngineParityTest, RandomProbesByteIdenticalAcrossEngines) {
  for (Gen g : {Gen::kTcmd, Gen::kDblp, Gen::kXMark, Gen::kTreebank}) {
    for (bool sound : {false, true}) {
      Corpus corpus;
      MakeCorpus(g, &corpus);
      std::string dir = TempDir(std::string(GenName(g)) +
                                (sound ? "_sound" : "_paper"));
      IndexOptions options;
      options.depth_limit = g == Gen::kTcmd ? 0 : 4;
      options.use_lambda2 = true;
      options.sound_probe = sound;
      options.path = dir + "/p.fix";
      auto index = FixIndex::Build(&corpus, options, nullptr);
      ASSERT_TRUE(index.ok()) << index.status().ToString();
      ASSERT_NE(index->spatial_probe(), nullptr);

      QueryGenOptions qopts;
      qopts.seed = 4242 + static_cast<uint64_t>(g);
      qopts.max_depth = options.depth_limit > 0 ? options.depth_limit : 5;
      qopts.rooted = g == Gen::kTcmd;
      auto queries = GenerateRandomQueries(corpus, 120, qopts);
      ASSERT_FALSE(queries.empty());

      uint64_t nonempty = 0;
      for (const TwigQuery& q : queries) {
        auto parts = DecomposeAtDescendantEdges(q);
        for (bool use_root_label : {true, false}) {
          auto by_btree = index->ProbeWithEngine(parts[0], use_root_label,
                                                 ProbeEngine::kBTree);
          auto by_kd = index->ProbeWithEngine(parts[0], use_root_label,
                                              ProbeEngine::kSpatial);
          ASSERT_TRUE(by_btree.ok());
          ASSERT_TRUE(by_kd.ok());
          EXPECT_EQ(by_btree->covered, by_kd->covered);
          ASSERT_EQ(Fingerprint(by_btree->candidates),
                    Fingerprint(by_kd->candidates))
              << GenName(g) << " sound=" << sound
              << " root_label=" << use_root_label
              << " query=" << q.ToString();
          if (use_root_label) nonempty += !by_btree->candidates.empty();
        }
      }
      // The property is vacuous if every probe came back empty.
      EXPECT_GT(nonempty, 0u) << GenName(g);
    }
  }
}

// ε-boundary equality: filter bounds placed EXACTLY on indexed eigenvalues
// (the ord-u64 comparisons are inclusive on both engines, so entries sitting
// on the boundary must appear in both candidate sets).
TEST(ProbeEngineParityTest, ExactBoundaryMatchesBruteForce) {
  Corpus corpus;
  MakeCorpus(Gen::kXMark, &corpus);
  std::string dir = TempDir("boundary");
  IndexOptions options;
  options.depth_limit = 4;
  options.use_lambda2 = true;
  options.path = dir + "/b.fix";
  auto index = FixIndex::Build(&corpus, options, nullptr);
  ASSERT_TRUE(index.ok());
  auto spatial = index->spatial_probe();
  ASSERT_NE(spatial, nullptr);

  // Collect every indexed key once, by scanning the tree.
  struct Row {
    FeatureKey key;
    uint64_t lmax, lmin, l2;
  };
  std::vector<Row> rows;
  auto it = index->btree()->SeekFirst();
  ASSERT_TRUE(it.ok());
  while (it->Valid()) {
    FeatureKey key = DecodeFeatureKey(it->key());
    rows.push_back({key, OrderPreservingDouble(key.lambda_max),
                    OrderPreservingDouble(key.lambda_min),
                    OrderPreservingDouble(key.lambda2)});
    ASSERT_TRUE(it->Next().ok());
  }
  ASSERT_GT(rows.size(), 100u);

  // Use every 37th entry's own eigenvalues as the filter bounds: each clause
  // sits exactly on that entry's boundary, so inclusivity bugs (>= vs >)
  // show up as the probe losing the entry itself.
  for (size_t i = 0; i < rows.size(); i += 37) {
    const Row& r = rows[i];
    SpatialProbe::Filter filter;
    filter.min_lmax = r.lmax;
    filter.max_lmin = r.lmin;
    filter.min_l2 = r.l2;
    std::vector<SpatialProbe::Hit> hits;
    spatial->Probe(r.key.root_label, filter, &hits);

    std::vector<uint32_t> want;
    for (const Row& cand : rows) {
      if (cand.key.root_label != r.key.root_label) continue;
      if (OrderPreservingDouble(cand.key.lambda_max) < filter.min_lmax ||
          OrderPreservingDouble(cand.key.lambda_min) > filter.max_lmin ||
          OrderPreservingDouble(cand.key.lambda2) < filter.min_l2) {
        continue;
      }
      want.push_back(cand.key.seq);
    }
    std::vector<uint32_t> got;
    got.reserve(hits.size());
    bool found_self = false;
    for (const SpatialProbe::Hit& h : hits) {
      got.push_back(h.key.seq);
      found_self |= h.key.seq == r.key.seq;
    }
    // The B+-tree scan above and EmitHits both order by (λ_max, λ_min, λ₂,
    // seq) within a label, so the sequences must line up exactly.
    EXPECT_EQ(got, want) << "entry " << i;
    EXPECT_TRUE(found_self) << "boundary entry " << i << " lost";
  }
}

// Snapshot discipline under COW commits: a reader that pinned the spatial
// snapshot keeps getting answers from the generation it pinned, while the
// index publishes fresh snapshots as the writer commits.
TEST(ProbeEngineSnapshotTest, PinnedSnapshotStableAcrossCommits) {
  Corpus corpus;
  MakeCorpus(Gen::kDblp, &corpus);
  std::string dir = TempDir("snapshot");
  IndexOptions options;
  options.depth_limit = 4;
  options.path = dir + "/s.fix";
  auto built = FixIndex::Build(&corpus, options, nullptr);
  ASSERT_TRUE(built.ok());
  FixIndex index = std::move(built).value();

  auto pinned = index.spatial_probe();
  ASSERT_NE(pinned, nullptr);
  const uint64_t pinned_gen = pinned->generation();
  const uint64_t pinned_total = pinned->total();
  EXPECT_EQ(pinned_gen, index.generation());

  LabelId label = corpus.labels()->Find("inproceedings");
  ASSERT_NE(label, kInvalidLabel);
  std::vector<SpatialProbe::Hit> before;
  pinned->Probe(label, SpatialProbe::Filter{}, &before);

  // Readers hammer their pinned snapshot while the writer commits.
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        std::vector<SpatialProbe::Hit> hits;
        pinned->Probe(label, SpatialProbe::Filter{}, &hits);
        if (hits.size() != before.size() ||
            pinned->generation() != pinned_gen) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  constexpr int kCommits = 6;
  for (int i = 0; i < kCommits; ++i) {
    auto id = corpus.AddXml(
        "<dblp><inproceedings><author>Snap " + std::to_string(i) +
        "</author><title>T</title></inproceedings></dblp>");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(index.InsertDocument(*id).ok());
  }
  stop.store(true);
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  // The pinned snapshot never moved; the published one tracked the commits.
  EXPECT_EQ(pinned->generation(), pinned_gen);
  EXPECT_EQ(pinned->total(), pinned_total);
  auto fresh = index.spatial_probe();
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->generation(), index.generation());
  EXPECT_GT(fresh->total(), pinned_total);

  // And the engines still agree after the commits.
  auto parsed = ParseXPath("//inproceedings/author");
  ASSERT_TRUE(parsed.ok());
  TwigQuery q = std::move(parsed).value();
  q.ResolveLabels(corpus.labels());
  auto by_btree =
      index.ProbeWithEngine(q, true, ProbeEngine::kBTree);
  auto by_kd =
      index.ProbeWithEngine(q, true, ProbeEngine::kSpatial);
  ASSERT_TRUE(by_btree.ok());
  ASSERT_TRUE(by_kd.ok());
  EXPECT_EQ(Fingerprint(by_btree->candidates),
            Fingerprint(by_kd->candidates));
  EXPECT_FALSE(by_btree->candidates.empty());
}

}  // namespace
}  // namespace fix
