// Tests for incremental index maintenance: InsertDocument / RemoveDocument
// on unclustered indexes — the update workload the paper's introduction
// holds against clustering indexes (Section 1: "updating as well as
// querying on the [F&B] structures could be expensive").

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "baseline/full_scan.h"
#include "core/corpus.h"
#include "core/fix_index.h"
#include "core/fix_query.h"
#include "core/metrics.h"
#include "datagen/datasets.h"
#include "datagen/query_gen.h"
#include "query/xpath_parser.h"

namespace fix {
namespace {

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_update_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  TwigQuery Query(const std::string& text) {
    auto q = ParseXPath(text);
    EXPECT_TRUE(q.ok());
    TwigQuery query = std::move(q).value();
    query.ResolveLabels(corpus_.labels());
    return query;
  }

  std::string dir_;
  Corpus corpus_;
};

TEST_F(UpdateTest, InsertedDocumentBecomesQueryable) {
  ASSERT_TRUE(corpus_.AddXml("<a><b/></a>").ok());
  IndexOptions options;
  options.depth_limit = 3;
  options.path = dir_ + "/i.fix";
  auto index = FixIndex::Build(&corpus_, options, nullptr);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_entries(), 2u);

  auto id = corpus_.AddXml("<a><b/><c><d/></c></a>");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(index->InsertDocument(*id, nullptr).ok());
  EXPECT_EQ(index->num_entries(), 6u);  // 2 + 4 elements

  FixQueryProcessor processor(&corpus_, &*index);
  std::vector<NodeRef> results;
  auto stats = processor.Execute(Query("//c/d"), &results);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc_id, *id);
}

TEST_F(UpdateTest, InsertIntoClusteredRejected) {
  ASSERT_TRUE(corpus_.AddXml("<a><b/></a>").ok());
  IndexOptions options;
  options.clustered = true;
  options.path = dir_ + "/c.fix";
  auto index = FixIndex::Build(&corpus_, options, nullptr);
  ASSERT_TRUE(index.ok());
  auto id = corpus_.AddXml("<a><c/></a>");
  ASSERT_TRUE(id.ok());
  auto status = index->InsertDocument(*id, nullptr);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotSupported);
}

TEST_F(UpdateTest, InsertRejectsUnknownDoc) {
  ASSERT_TRUE(corpus_.AddXml("<a/>").ok());
  IndexOptions options;
  options.path = dir_ + "/u.fix";
  auto index = FixIndex::Build(&corpus_, options, nullptr);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->InsertDocument(99, nullptr).ok());
}

TEST_F(UpdateTest, RemoveDocumentDropsItsEntries) {
  ASSERT_TRUE(corpus_.AddXml("<a><b/><c/></a>").ok());
  ASSERT_TRUE(corpus_.AddXml("<a><b/></a>").ok());
  ASSERT_TRUE(corpus_.AddXml("<a><b/><c/></a>").ok());
  IndexOptions options;
  options.depth_limit = 2;
  options.path = dir_ + "/r.fix";
  auto index = FixIndex::Build(&corpus_, options, nullptr);
  ASSERT_TRUE(index.ok());
  uint64_t before = index->num_entries();

  ASSERT_TRUE(index->RemoveDocument(0).ok());
  EXPECT_EQ(index->num_entries(), before - 3);  // doc 0 had 3 elements

  // doc 0's results no longer surface; the others are unaffected.
  FixQueryProcessor processor(&corpus_, &*index);
  std::vector<NodeRef> results;
  auto stats = processor.Execute(Query("//a[b]/c"), &results);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc_id, 2u);
}

TEST_F(UpdateTest, IncrementalBuildEqualsBulkBuild) {
  // Property: inserting documents one by one yields the same query answers
  // as building over the full corpus (keys may differ in weight order, but
  // refinement makes results exact either way).
  TcmdOptions gen;
  gen.num_docs = 30;
  GenerateTcmd(&corpus_, gen);

  // Bulk index over all 30.
  IndexOptions bulk_options;
  bulk_options.depth_limit = 4;
  bulk_options.path = dir_ + "/bulk.fix";
  auto bulk = FixIndex::Build(&corpus_, bulk_options, nullptr);
  ASSERT_TRUE(bulk.ok());

  // Incremental index: build over the first 10, insert the rest.
  Corpus staged;
  TcmdOptions gen2;
  gen2.num_docs = 30;
  GenerateTcmd(&staged, gen2);
  // (Rebuild over a second identical corpus so doc ids line up; build the
  // index after only "seeing" the first 10 by removing... simpler: build
  // an empty-ish index over a 10-doc view is not expressible, so build
  // over doc 0 only and insert 1..29.)
  IndexOptions inc_options;
  inc_options.depth_limit = 4;
  inc_options.path = dir_ + "/inc.fix";
  // Build over a corpus that currently has all docs, then remove all but
  // doc 0 and re-insert: exercises both paths heavily.
  auto inc = FixIndex::Build(&staged, inc_options, nullptr);
  ASSERT_TRUE(inc.ok());
  for (uint32_t d = 1; d < staged.num_docs(); ++d) {
    ASSERT_TRUE(inc->RemoveDocument(d).ok());
  }
  for (uint32_t d = 1; d < staged.num_docs(); ++d) {
    ASSERT_TRUE(inc->InsertDocument(d, nullptr).ok());
  }
  EXPECT_EQ(inc->num_entries(), bulk->num_entries());

  QueryGenOptions qopts;
  qopts.seed = 21;
  qopts.max_depth = 4;
  auto queries = GenerateRandomQueries(corpus_, 25, qopts);
  FixQueryProcessor bulk_proc(&corpus_, &*bulk);
  FixQueryProcessor inc_proc(&staged, &*inc);
  for (const auto& q : queries) {
    TwigQuery q2 = q;
    q2.ResolveLabels(staged.labels());
    auto a = bulk_proc.Execute(q);
    auto b = inc_proc.Execute(q2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->result_count, b->result_count) << q.ToString();
    EXPECT_EQ(a->producing, b->producing) << q.ToString();
  }
}

}  // namespace
}  // namespace fix
