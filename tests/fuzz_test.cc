// Deterministic fuzz suites: every parser/decoder must reject arbitrary
// garbage with a Status — never crash, never hang, never accept trailing
// junk — and survive mutations of valid inputs.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/persist.h"
#include "query/xpath_parser.h"
#include "storage/page_file.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace fix {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  size_t len = rng->Uniform(max_len + 1);
  std::string out(len, '\0');
  for (char& c : out) c = static_cast<char>(rng->Uniform(256));
  return out;
}

std::string RandomXmlish(Rng* rng, size_t max_len) {
  // Biased toward XML-relevant characters so parsing goes deeper.
  static constexpr char kAlphabet[] =
      "<>/=\"'&;![]CDATA-abcxyz \n\tqwe123#?";
  size_t len = rng->Uniform(max_len + 1);
  std::string out(len, '\0');
  for (char& c : out) {
    c = kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)];
  }
  return out;
}

TEST(FuzzTest, XmlParserSurvivesGarbage) {
  Rng rng(1001);
  LabelTable labels;
  for (int i = 0; i < 3000; ++i) {
    std::string input =
        (i % 2 == 0) ? RandomBytes(&rng, 200) : RandomXmlish(&rng, 200);
    auto doc = ParseXml(input, &labels);  // must not crash
    if (doc.ok()) {
      // Accidentally-valid documents must round-trip.
      std::string text = SerializeXml(*doc, labels);
      EXPECT_TRUE(ParseXml(text, &labels).ok()) << text;
    }
  }
}

TEST(FuzzTest, XmlParserSurvivesMutatedValidDocs) {
  Rng rng(1002);
  LabelTable labels;
  const std::string base =
      "<bib><book year=\"2006\"><title>FIX &amp; XML</title>"
      "<author><name>Zhang</name></author></book>"
      "<article><![CDATA[raw<>&]]></article></bib>";
  for (int i = 0; i < 3000; ++i) {
    std::string mutated = base;
    int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.Uniform(mutated.size());
      mutated[pos] = static_cast<char>(rng.Uniform(256));
    }
    auto doc = ParseXml(mutated, &labels);  // must not crash
    (void)doc;
  }
}

TEST(FuzzTest, XPathParserSurvivesGarbage) {
  Rng rng(1003);
  static constexpr char kAlphabet[] = "/[]*=\"'abcdef_ .@0";
  for (int i = 0; i < 5000; ++i) {
    size_t len = rng.Uniform(60);
    std::string input(len, '\0');
    for (char& c : input) {
      c = kAlphabet[rng.Uniform(sizeof(kAlphabet) - 1)];
    }
    auto q = ParseXPath(input);  // must not crash
    if (q.ok()) {
      // Valid parses must round-trip through their canonical form.
      std::string printed = q->ToString();
      auto again = ParseXPath(printed);
      EXPECT_TRUE(again.ok()) << input << " -> " << printed;
      if (again.ok()) {
        EXPECT_EQ(again->ToString(), printed);
      }
    }
  }
}

// Curated seed corpus: inputs chosen to reach the parser's deep and
// historically-buggy paths (entity expansion, CDATA edges, unterminated
// markup, deep nesting, attribute quoting, numeric character references).
// Each seed is parsed as-is and then under a deterministic mutation loop;
// the counts are sized so the whole suite stays well inside the tier-1
// budget under ASan/UBSan (the sanitizer build is the point: every byte the
// parser touches on these paths gets bounds- and UB-checked).
const char* const kXmlSeedCorpus[] = {
    "",
    "<",
    "<a",
    "<a>",
    "<a/>",
    "<a></a>",
    "<a></b>",
    "<?xml version=\"1.0\"?><a/>",
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a b=\"c\"/>",
    "<!DOCTYPE a><a/>",
    "<a b='c' d=\"e\">&amp;&lt;&gt;&quot;&apos;</a>",
    "<a>&#65;&#x41;&#xe9;</a>",
    "<a>&#0;</a>",
    "<a>&#xFFFFFFFF;</a>",
    "<a>&unknown;</a>",
    "<a><![CDATA[]]></a>",
    "<a><![CDATA[ ]] ]]> ]]></a>",
    "<a><![CDATA[<b>&amp;</b>]]></a>",
    "<a><!-- comment --><b/><!-- --></a>",
    "<a><!-- unterminated",
    "<a><?pi data?></a>",
    "<a b=\"\" b=\"\"/>",
    "<a b=c/>",
    "<a b/>",
    "<a \xff\xfe=\"x\"/>",
    "<a><b><c><d><e><f><g><h><i><j/></i></h></g></f></e></d></c></b></a>",
    "<a><b/><b/><b/><b/><b/><b/><b/><b/><b/><b/><b/><b/><b/><b/><b/></a>",
    "<root xmlns:x=\"urn:y\"><x:child x:attr=\"v\"/></root>",
    "<a>text<b>mixed</b>tail</a>",
    "<\xc3\xa9l\xc3\xa9ment/>",
};

const char* const kXPathSeedCorpus[] = {
    "",
    "/",
    "//",
    "/a",
    "//a",
    "/a/b/c",
    "/a//b",
    "/*",
    "//*",
    "/a/*/b",
    "/a[b]",
    "/a[b/c]",
    "/a[b][c]",
    "/a[b=\"v\"]",
    "/a[b='v']",
    "/a[.=\"v\"]",
    "/a[@id=\"1\"]",
    "/a[b=\"unterminated]",
    "/a[]",
    "/a[[b]]",
    "/a]b[",
    "a",
    "a/b",
    "/a/b[c=\"x\"]//d[e]/f",
    "//a[//b]",
    "/a[b = \"spaced\" ]",
    "/.",
    "/..",
    "/a\xff",
};

TEST(FuzzTest, XmlParserSeedCorpus) {
  LabelTable labels;
  for (const char* seed : kXmlSeedCorpus) {
    auto doc = ParseXml(seed, &labels);  // must not crash
    if (doc.ok()) {
      // Accidentally-valid seeds must round-trip.
      std::string text = SerializeXml(*doc, labels);
      EXPECT_TRUE(ParseXml(text, &labels).ok()) << text;
    }
  }
}

TEST(FuzzTest, XmlParserSeedCorpusMutations) {
  Rng rng(2001);
  LabelTable labels;
  for (const char* seed : kXmlSeedCorpus) {
    const std::string base = seed;
    if (base.empty()) continue;
    for (int i = 0; i < 200; ++i) {
      std::string mutated = base;
      switch (rng.Uniform(3)) {
        case 0:  // byte flip
          mutated[rng.Uniform(mutated.size())] =
              static_cast<char>(rng.Uniform(256));
          break;
        case 1:  // truncation
          mutated.resize(rng.Uniform(mutated.size() + 1));
          break;
        default:  // duplication (stresses sibling/nesting bookkeeping)
          mutated += base.substr(rng.Uniform(base.size()));
          break;
      }
      auto doc = ParseXml(mutated, &labels);  // must not crash
      (void)doc;
    }
  }
}

TEST(FuzzTest, XPathParserSeedCorpus) {
  for (const char* seed : kXPathSeedCorpus) {
    auto q = ParseXPath(seed);  // must not crash
    if (q.ok()) {
      std::string printed = q->ToString();
      auto again = ParseXPath(printed);
      EXPECT_TRUE(again.ok()) << seed << " -> " << printed;
      if (again.ok()) {
        EXPECT_EQ(again->ToString(), printed);
      }
    }
  }
}

TEST(FuzzTest, XPathParserSeedCorpusMutations) {
  Rng rng(2002);
  for (const char* seed : kXPathSeedCorpus) {
    const std::string base = seed;
    if (base.empty()) continue;
    for (int i = 0; i < 200; ++i) {
      std::string mutated = base;
      if (rng.Uniform(2) == 0) {
        mutated[rng.Uniform(mutated.size())] =
            static_cast<char>(rng.Uniform(256));
      } else {
        mutated.insert(rng.Uniform(mutated.size() + 1),
                       1, static_cast<char>(rng.Uniform(256)));
      }
      auto q = ParseXPath(mutated);  // must not crash
      (void)q;
    }
  }
}

TEST(FuzzTest, DocumentCodecSurvivesGarbage) {
  Rng rng(1004);
  for (int i = 0; i < 5000; ++i) {
    std::string buf = RandomBytes(&rng, 120);
    auto doc = DecodeDocument(buf);  // must not crash
    (void)doc;
  }
}

TEST(FuzzTest, DocumentCodecSurvivesTruncationsAndFlips) {
  LabelTable labels;
  auto doc = ParseXml("<a><b>text</b><c><d/><d/></c></a>", &labels);
  ASSERT_TRUE(doc.ok());
  std::string valid;
  EncodeDocument(*doc, &valid);

  // Every prefix must be cleanly rejected or decode to something (no UB).
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    auto truncated = DecodeDocument(valid.substr(0, cut));
    (void)truncated;
  }
  Rng rng(1005);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = valid;
    mutated[rng.Uniform(mutated.size())] =
        static_cast<char>(rng.Uniform(256));
    auto decoded = DecodeDocument(mutated);
    (void)decoded;  // any Status is fine; crashing is not
  }
}

TEST(FuzzTest, PersistDecodersSurviveGarbage) {
  Rng rng(1006);
  for (int i = 0; i < 4000; ++i) {
    std::string buf = RandomBytes(&rng, 150);
    LabelTable labels;
    (void)DecodeLabelTable(buf, &labels);
    (void)DecodeManifest(buf);
    (void)DecodeIndexMeta(buf);
  }
}

TEST(FuzzTest, IndexMetaPrefixesAlwaysRejected) {
  // The meta codec consumes the buffer exactly (trailing bytes are an
  // error), so every strict prefix must be rejected — there is no cut point
  // that silently decodes to a shorter valid meta.
  IndexMeta meta;
  meta.options.depth_limit = 5;
  meta.next_seq = 9;
  meta.edge_weights = {{7, 1}, {8, 2}, {9, 3}};
  meta.indexed_docs = 1234;
  std::string buf = EncodeIndexMeta(meta);
  ASSERT_TRUE(DecodeIndexMeta(buf).ok());
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    auto decoded = DecodeIndexMeta(buf.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << cut << " accepted";
  }
}

TEST(FuzzTest, ChecksummedPagesRejectBitFlipsOfStoredRecords) {
  // Serialized document records and index-meta bytes stored in checksummed
  // pages: any single-bit flip of the raw on-disk blocks must surface as
  // kCorruption from ReadPage — never a crash, never silently accepted data
  // handed to the deserializers.
  const std::string dir =
      ::testing::TempDir() + "/fix_fuzz_pages";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/records.pf";

  LabelTable labels;
  auto doc = ParseXml("<bib><book><title>FIX</title></book></bib>", &labels);
  ASSERT_TRUE(doc.ok());
  std::string record;
  EncodeDocument(*doc, &record);
  IndexMeta meta;
  meta.edge_weights = {{42, 1}};
  std::string meta_buf = EncodeIndexMeta(meta);

  PageFile file;
  ASSERT_TRUE(file.Open(path, /*create=*/true).ok());
  std::vector<char> payload(kPageSize, 0);
  for (const std::string* content : {&record, &meta_buf}) {
    PageId id = kInvalidPage;
    ASSERT_TRUE(file.AllocatePage(&id).ok());
    ASSERT_LE(content->size(), kPageSize);
    std::memset(payload.data(), 0, kPageSize);
    std::memcpy(payload.data(), content->data(), content->size());
    ASSERT_TRUE(file.WritePage(id, payload.data()).ok());
  }

  Rng rng(1008);
  std::vector<char> block(kDiskPageSize), out(kPageSize);
  for (int trial = 0; trial < 500; ++trial) {
    const PageId id = static_cast<PageId>(rng.Uniform(file.num_pages()));
    const size_t byte = rng.Uniform(kDiskPageSize);
    const int bit = static_cast<int>(rng.Uniform(8));
    ASSERT_TRUE(file.ReadRawBlock(id, block.data()).ok());
    block[byte] = static_cast<char>(block[byte] ^ (1 << bit));
    ASSERT_TRUE(file.WriteRawBlock(id, block.data()).ok());

    Status read = file.ReadPage(id, out.data());
    EXPECT_TRUE(read.IsCorruption())
        << "page " << id << " byte " << byte << " bit " << bit << ": "
        << read.ToString();

    block[byte] = static_cast<char>(block[byte] ^ (1 << bit));  // heal
    ASSERT_TRUE(file.WriteRawBlock(id, block.data()).ok());
    ASSERT_TRUE(file.ReadPage(id, out.data()).ok());
  }
  ASSERT_TRUE(file.Close().ok());
  std::filesystem::remove_all(dir);
}

TEST(FuzzTest, PersistDecodersSurviveMutationsOfValidBuffers) {
  LabelTable labels;
  labels.Intern("alpha");
  labels.Intern("beta");
  std::string label_buf = EncodeLabelTable(labels);

  IndexMeta meta;
  meta.options.depth_limit = 6;
  meta.edge_weights = {{42, 1}, {43, 2}};
  std::string meta_buf = EncodeIndexMeta(meta);

  std::string manifest_buf = EncodeManifest({{0}, {77}, {12345}});

  Rng rng(1007);
  for (int i = 0; i < 3000; ++i) {
    for (const std::string* base : {&label_buf, &meta_buf, &manifest_buf}) {
      std::string mutated = *base;
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Uniform(256));
      LabelTable fresh;
      (void)DecodeLabelTable(mutated, &fresh);
      (void)DecodeManifest(mutated);
      (void)DecodeIndexMeta(mutated);
    }
  }
}

}  // namespace
}  // namespace fix
