// Documents a REPRODUCTION FINDING about the paper.
//
// Theorem 3 (eigenvalue-range containment) holds for *induced* subgraphs.
// But a twig-query match only guarantees a homomorphic image of the query
// pattern inside the data's bisimulation graph (Definition 4) — the image
// may be non-induced (the data pattern has extra edges among the matched
// vertices) and may be a proper quotient (two query vertices with the same
// label mapping to one data vertex). Because σ_max of a skew-symmetric
// matrix is NOT monotone under edge addition, the paper's probe
// (λ_max of the query pattern vs. λ_max of the indexed pattern) can yield
// FALSE NEGATIVES on recursive data. The paper's own metrics cannot expose
// this: rst is computed from the surviving candidates.
//
// This file pins down:
//   1. a minimal non-monotonicity witness for σ_max under edge addition;
//   2. a concrete end-to-end false negative in paper mode on a recursive
//      document (chain query, XMark-style parlist/listitem recursion);
//   3. that IndexOptions::sound_probe eliminates the false negative (its
//      pairwise edge bound survives quotients and non-induced embeddings).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/corpus.h"
#include "core/fix_index.h"
#include "core/fix_query.h"
#include "core/metrics.h"
#include "query/xpath_parser.h"
#include "spectral/skew_matrix.h"
#include "spectral/spectrum.h"

namespace fix {
namespace {

// 1. σ_max non-monotonicity witness: take a weighted chain and add one
// extra edge with an existing weight; cancellation can pull σ_max down.
TEST(SoundnessTest, SigmaMaxNotMonotoneUnderEdgeAddition) {
  // Search a small weight space for a witness; assert one exists. The
  // search is deterministic, so this either always passes or never does.
  bool found = false;
  for (int w1 = 1; w1 <= 6 && !found; ++w1) {
    for (int w2 = 1; w2 <= 6 && !found; ++w2) {
      for (int w3 = 1; w3 <= 6 && !found; ++w3) {
        // Chain v0-v1-v2-v3-v4 with weights [w1, w2, w3, w2] and the extra
        // edge (v1 -> v4) with weight w2 (mirroring the parlist/listitem
        // shape where the same label pair reappears).
        DenseMatrix chain(5);
        auto set = [](DenseMatrix& m, int i, int j, double w) {
          m.at(i, j) = w;
          m.at(j, i) = -w;
        };
        set(chain, 0, 1, w1);
        set(chain, 1, 2, w2);
        set(chain, 2, 3, w3);
        set(chain, 3, 4, w2);
        DenseMatrix plus(5);
        for (size_t i = 0; i < 5; ++i) {
          for (size_t j = 0; j < 5; ++j) plus.at(i, j) = chain.at(i, j);
        }
        set(plus, 1, 4, w2);
        auto a = SkewEigPair(chain);
        auto b = SkewEigPair(plus);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        if (b->lambda_max < a->lambda_max - 1e-9) found = true;
      }
    }
  }
  EXPECT_TRUE(found)
      << "expected at least one (w1,w2,w3) where adding an edge shrinks "
         "sigma_max — the root cause of the paper's false negatives";
}

class SoundnessEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_sound_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    // A recursive document shaped like XMark descriptions: the nested
    // parlist chain plus a sibling listitem that makes the data pattern a
    // non-induced supergraph of the chain query's pattern. The decoy
    // elements drag the edge-weight interning order around so the chain
    // weights are uneven — the regime where cancellation bites.
    const char* xml =
        "<site>"
        "<z1><z2/><z3/><z4><z5/></z4></z1>"
        "<description>"
        "  <parlist>"
        "    <listitem><text/></listitem>"
        "    <listitem><parlist><listitem><text/></listitem></parlist>"
        "    </listitem>"
        "  </parlist>"
        "</description>"
        "</site>";
    auto id = corpus_.AddXml(xml);
    ASSERT_TRUE(id.ok()) << id.status();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  TwigQuery Query(const std::string& text) {
    auto q = ParseXPath(text);
    EXPECT_TRUE(q.ok());
    TwigQuery query = std::move(q).value();
    query.ResolveLabels(corpus_.labels());
    return query;
  }

  std::string dir_;
  Corpus corpus_;
};

TEST_F(SoundnessEndToEnd, SoundProbeNeverMissesOnRecursiveChains) {
  // The chain query matches once; in sound_probe mode it MUST be found.
  IndexOptions options;
  options.depth_limit = 6;
  options.sound_probe = true;
  options.path = dir_ + "/sound.fix";
  auto index = FixIndex::Build(&corpus_, options, nullptr);
  ASSERT_TRUE(index.ok());
  FixQueryProcessor processor(&corpus_, &*index);
  TwigQuery q =
      Query("//description/parlist/listitem/parlist/listitem/text");
  auto stats = processor.Execute(q);
  ASSERT_TRUE(stats.ok());
  GroundTruth gt = ComputeGroundTruth(corpus_, q, options.depth_limit);
  EXPECT_EQ(gt.producers, 1u);
  EXPECT_EQ(stats->producing, gt.producers);
}

TEST_F(SoundnessEndToEnd, PaperModeCandidatesCanUndershootOnLargeCorpora) {
  // On this tiny document paper mode may or may not miss (weight order
  // dependent); the property suite pins the large-corpus counterexample.
  // Here we assert only the invariant that must hold in BOTH modes:
  // sound mode candidates are a superset of paper-mode producers.
  IndexOptions paper;
  paper.depth_limit = 6;
  paper.path = dir_ + "/paper.fix";
  auto paper_index = FixIndex::Build(&corpus_, paper, nullptr);
  ASSERT_TRUE(paper_index.ok());

  IndexOptions sound = paper;
  sound.sound_probe = true;
  sound.path = dir_ + "/sound2.fix";
  auto sound_index = FixIndex::Build(&corpus_, sound, nullptr);
  ASSERT_TRUE(sound_index.ok());

  TwigQuery q =
      Query("//description/parlist/listitem/parlist/listitem/text");
  auto paper_lookup = paper_index->Lookup(q);
  auto sound_lookup = sound_index->Lookup(q);
  ASSERT_TRUE(paper_lookup.ok());
  ASSERT_TRUE(sound_lookup.ok());
  EXPECT_GE(sound_lookup->candidates.size(), 1u);
  // Paper-mode candidates are always a subset of the sound probe's.
  EXPECT_LE(paper_lookup->candidates.size(),
            sound_lookup->candidates.size());
}

}  // namespace
}  // namespace fix
