// Unit tests for the XML parser: happy paths, every supported construct,
// error reporting, and a parse -> serialize -> parse fixpoint property.

#include <gtest/gtest.h>

#include <string>

#include "xml/parser.h"
#include "xml/serializer.h"

namespace fix {
namespace {

Result<Document> Parse(const std::string& xml, LabelTable* labels) {
  return ParseXml(xml, labels);
}

TEST(XmlParserTest, MinimalDocument) {
  LabelTable labels;
  auto doc = Parse("<root/>", &labels);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->CountElements(), 1u);
  EXPECT_EQ(labels.Name(doc->label(doc->root_element())), "root");
}

TEST(XmlParserTest, NestedElementsAndText) {
  LabelTable labels;
  auto doc = Parse("<a><b>hello</b><c>world</c></a>", &labels);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->CountElements(), 3u);
  NodeId b = doc->first_child(doc->root_element());
  EXPECT_EQ(doc->ChildText(b), "hello");
}

TEST(XmlParserTest, XmlDeclAndDoctypeAndComments) {
  LabelTable labels;
  auto doc = Parse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!DOCTYPE a [ <!ELEMENT a (b)> ]>\n"
      "<!-- leading comment -->\n"
      "<a><!-- inner --><b/></a>\n"
      "<!-- trailing -->",
      &labels);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->CountElements(), 2u);
}

TEST(XmlParserTest, Attributes) {
  LabelTable labels;
  auto doc = Parse("<a x=\"1\" y='two &amp; three'><b z=\"3\"/></a>", &labels);
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_EQ(doc->attributes().size(), 3u);
  EXPECT_EQ(doc->attributes()[0].name, "x");
  EXPECT_EQ(doc->attributes()[0].value, "1");
  EXPECT_EQ(doc->attributes()[1].value, "two & three");
}

TEST(XmlParserTest, EntitiesAndCharRefs) {
  LabelTable labels;
  auto doc = Parse("<a>&lt;x&gt; &amp; &quot;y&quot; &#65;&#x42;</a>",
                   &labels);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->ChildText(doc->root_element()), "<x> & \"y\" AB");
}

TEST(XmlParserTest, Cdata) {
  LabelTable labels;
  auto doc = Parse("<a><![CDATA[<not & parsed>]]></a>", &labels);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->ChildText(doc->root_element()), "<not & parsed>");
}

TEST(XmlParserTest, WhitespaceTextSkippedByDefault) {
  LabelTable labels;
  auto doc = Parse("<a>\n  <b/>\n</a>", &labels);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->ChildText(doc->root_element()), "");
}

TEST(XmlParserTest, WhitespaceTextKeptOnRequest) {
  LabelTable labels;
  ParseOptions options;
  options.skip_whitespace_text = false;
  auto doc = ParseXml("<a> <b/> </a>", &labels, options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->ChildText(doc->root_element()), "  ");
}

TEST(XmlParserTest, ProcessingInstructionSkipped) {
  LabelTable labels;
  auto doc = Parse("<a><?php echo; ?><b/></a>", &labels);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->CountElements(), 2u);
}

// --- error cases --------------------------------------------------------

TEST(XmlParserTest, MismatchedTagsRejectedWithLine) {
  LabelTable labels;
  auto doc = Parse("<a>\n<b>\n</c>\n</a>", &labels);
  ASSERT_FALSE(doc.ok());
  EXPECT_TRUE(doc.status().IsParseError());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos)
      << doc.status();
}

TEST(XmlParserTest, UnterminatedConstructsRejected) {
  LabelTable labels;
  EXPECT_FALSE(Parse("<a>", &labels).ok());
  EXPECT_FALSE(Parse("<a", &labels).ok());
  EXPECT_FALSE(Parse("<a><!-- comment", &labels).ok());
  EXPECT_FALSE(Parse("<a><![CDATA[ oops</a>", &labels).ok());
  EXPECT_FALSE(Parse("<a x=\"1>", &labels).ok());
}

TEST(XmlParserTest, GarbageRejected) {
  LabelTable labels;
  EXPECT_FALSE(Parse("", &labels).ok());
  EXPECT_FALSE(Parse("plain text", &labels).ok());
  EXPECT_FALSE(Parse("<a/><b/>", &labels).ok());  // two roots
  EXPECT_FALSE(Parse("<a>&unknown;</a>", &labels).ok());
  EXPECT_FALSE(Parse("<a>&#xZZ;</a>", &labels).ok());
  EXPECT_FALSE(Parse("<1tag/>", &labels).ok());
}

TEST(XmlParserTest, LessThanInAttributeRejected) {
  LabelTable labels;
  EXPECT_FALSE(Parse("<a x=\"<\"/>", &labels).ok());
}

// --- round trip -----------------------------------------------------------

TEST(XmlParserTest, SerializeParseFixpoint) {
  LabelTable labels;
  const std::string xml =
      "<bib><book year=\"2006\"><title>FIX &amp; XML</title>"
      "<author><name>Ning Zhang</name></author></book>"
      "<article><title>Another</title></article></bib>";
  auto doc = Parse(xml, &labels);
  ASSERT_TRUE(doc.ok()) << doc.status();
  std::string once = SerializeXml(*doc, labels);
  auto doc2 = Parse(once, &labels);
  ASSERT_TRUE(doc2.ok()) << doc2.status();
  std::string twice = SerializeXml(*doc2, labels);
  EXPECT_EQ(once, twice);
  EXPECT_EQ(doc->CountElements(), doc2->CountElements());
}

TEST(XmlParserTest, DeeplyNestedWithinLimit) {
  LabelTable labels;
  std::string xml;
  const int depth = 1000;
  for (int i = 0; i < depth; ++i) xml += "<d>";
  for (int i = 0; i < depth; ++i) xml += "</d>";
  auto doc = Parse(xml, &labels);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Depth(doc->root_element()), depth);
}

TEST(XmlParserTest, AbsurdNestingRejected) {
  LabelTable labels;
  std::string xml;
  for (int i = 0; i < 6000; ++i) xml += "<d>";
  EXPECT_FALSE(Parse(xml, &labels).ok());
}

}  // namespace
}  // namespace fix
