// The storage fault-injection suite: every failure mode a disk can produce
// (bit rot, misdirected blocks, torn writes, transient and hard I/O errors,
// fsync failure, power loss mid-write) is injected underneath the checksum
// layer via FaultInjectionPageIo and must surface as a clean Status — and
// the database must recover by quarantining damaged indexes and answering
// from the full-scan baseline, never returning a wrong result.
//
// The CrashRecovery tests are the acceptance gate: they kill index builds
// and updates at 20+ distinct injected crash points, reopen the database,
// and assert that every query answer equals the navigational baseline and
// the surviving index is either scrub-clean or detected-and-degraded.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/rng.h"
#include "core/corpus.h"
#include "core/database.h"
#include "core/fix_index.h"
#include "core/fix_query.h"
#include "core/persist.h"
#include "datagen/datasets.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/page_io.h"
#include "storage/record_store.h"
#include "storage/scrub.h"
#include "storage/wal.h"

namespace fix {
namespace {

// --- shared helpers ---------------------------------------------------------

/// Flips one bit of the file at `path` in place.
void FlipBitInFile(const std::string& path, uint64_t byte, int bit) {
  auto contents = ReadFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  ASSERT_LT(byte, contents->size());
  (*contents)[byte] = static_cast<char>((*contents)[byte] ^ (1u << bit));
  ASSERT_TRUE(WriteFile(path, *contents).ok());
}

/// Recomputes the CRC32C field of a raw disk block so a deliberately
/// mutated block still passes the checksum — used to reach the checks that
/// sit behind it (version, structure).
void RestampCrc(char* block) {
  uint32_t crc = Crc32c(block, 12);
  crc = Crc32c(block + 16, kDiskPageSize - 16, crc);
  EncodeFixed32(block + 12, crc);
}

/// Opens the page file at `path`, applies `edit` to page `id`'s payload,
/// and writes it back with a freshly stamped (valid) header. Simulates
/// damage the per-page checksum cannot see.
void EditPayload(const std::string& path, PageId id,
                 const std::function<void(char*)>& edit) {
  PageFile file;
  ASSERT_TRUE(file.Open(path, /*create=*/false).ok());
  std::vector<char> payload(kPageSize);
  ASSERT_TRUE(file.ReadPage(id, payload.data()).ok());
  edit(payload.data());
  ASSERT_TRUE(file.WritePage(id, payload.data()).ok());
  ASSERT_TRUE(file.Close().ok());
}

/// A PageFile over a FaultInjectionPageIo, with the injector handle exposed.
struct InjectedFile {
  std::unique_ptr<PageFile> file;
  FaultInjectionPageIo* io = nullptr;  // owned by `file`
};

InjectedFile MakeInjected(uint64_t seed = 0x5eed) {
  auto io = std::make_unique<FaultInjectionPageIo>(
      std::make_unique<FilePageIo>(), seed);
  FaultInjectionPageIo* raw = io.get();
  return {std::make_unique<PageFile>(std::move(io)), raw};
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/fix_fault_" + info->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Creates a page file with `n` pages of distinct recognizable payloads.
  void BuildPageFile(const std::string& path, PageId n) {
    PageFile file;
    ASSERT_TRUE(file.Open(path, /*create=*/true).ok());
    std::vector<char> payload(kPageSize);
    for (PageId i = 0; i < n; ++i) {
      PageId id = kInvalidPage;
      ASSERT_TRUE(file.AllocatePage(&id).ok());
      ASSERT_EQ(id, i);
      FillPayload(i, payload.data());
      ASSERT_TRUE(file.WritePage(id, payload.data()).ok());
    }
    ASSERT_TRUE(file.Sync().ok());
    ASSERT_TRUE(file.Close().ok());
  }

  static void FillPayload(PageId id, char* buf) {
    for (size_t i = 0; i < kPageSize; ++i) {
      buf[i] = static_cast<char>((id * 131 + i) & 0xff);
    }
  }

  std::string dir_;
};

// --- checksum primitives ----------------------------------------------------

TEST(Crc32cTest, KnownVectorAndChaining) {
  // The RFC 3720 check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // Chained extents equal the CRC of the concatenation.
  EXPECT_EQ(Crc32c("6789", 4, Crc32c("12345", 5)), 0xE3069283u);
  // Sensitivity: one flipped bit changes the sum.
  EXPECT_NE(Crc32c("123456788", 9), 0xE3069283u);
}

// --- page-level detection ---------------------------------------------------

TEST_F(FaultInjectionTest, BitFlipInPayloadDetected) {
  const std::string path = dir_ + "/f.pf";
  BuildPageFile(path, 3);

  // Flip one payload bit of page 1 directly in the raw file.
  FlipBitInFile(path, 1 * kDiskPageSize + kPageHeaderSize + 1000, 3);

  PageFile file;
  ASSERT_TRUE(file.Open(path, false).ok());
  std::vector<char> buf(kPageSize);
  Status read = file.ReadPage(1, buf.data());
  EXPECT_TRUE(read.IsCorruption()) << read.ToString();
  EXPECT_NE(read.ToString().find("checksum"), std::string::npos)
      << read.ToString();
  EXPECT_EQ(file.checksum_failures(), 1u);
  // Undamaged neighbors still verify.
  EXPECT_TRUE(file.ReadPage(0, buf.data()).ok());
  EXPECT_TRUE(file.ReadPage(2, buf.data()).ok());
  ASSERT_TRUE(file.Close().ok());
}

TEST_F(FaultInjectionTest, BitFlipInHeaderDetected) {
  const std::string path = dir_ + "/f.pf";
  BuildPageFile(path, 2);
  // Magic field of page 1. (Page 0's magic doubles as the file-format
  // sniff, so rotting it makes the whole file unidentifiable — a different,
  // also-detected failure.)
  FlipBitInFile(path, kDiskPageSize, 0);

  PageFile file;
  ASSERT_TRUE(file.Open(path, false).ok());
  std::vector<char> buf(kPageSize);
  Status read = file.ReadPage(1, buf.data());
  EXPECT_TRUE(read.IsCorruption());
  EXPECT_NE(read.ToString().find("magic"), std::string::npos)
      << read.ToString();
  ASSERT_TRUE(file.Close().ok());
}

TEST_F(FaultInjectionTest, MisdirectedBlockDetected) {
  const std::string path = dir_ + "/f.pf";
  BuildPageFile(path, 3);

  // Copy page 1's raw block (checksum and all) into slot 2: a misdirected
  // write. The block is self-consistent, so only the embedded id catches it.
  PageFile file;
  ASSERT_TRUE(file.Open(path, false).ok());
  std::vector<char> block(kDiskPageSize);
  ASSERT_TRUE(file.ReadRawBlock(1, block.data()).ok());
  ASSERT_TRUE(file.WriteRawBlock(2, block.data()).ok());

  std::vector<char> buf(kPageSize);
  Status read = file.ReadPage(2, buf.data());
  EXPECT_TRUE(read.IsCorruption());
  EXPECT_NE(read.ToString().find("misdirected"), std::string::npos)
      << read.ToString();
  EXPECT_TRUE(file.ReadPage(1, buf.data()).ok());
  ASSERT_TRUE(file.Close().ok());
}

TEST_F(FaultInjectionTest, UnsupportedVersionDetected) {
  const std::string path = dir_ + "/f.pf";
  BuildPageFile(path, 1);

  PageFile file;
  ASSERT_TRUE(file.Open(path, false).ok());
  std::vector<char> block(kDiskPageSize);
  ASSERT_TRUE(file.ReadRawBlock(0, block.data()).ok());
  EncodeFixed32(block.data() + 4, kPageFormatVersion + 7);
  RestampCrc(block.data());  // valid checksum: the version check must fire
  ASSERT_TRUE(file.WriteRawBlock(0, block.data()).ok());

  std::vector<char> buf(kPageSize);
  Status read = file.ReadPage(0, buf.data());
  EXPECT_TRUE(read.IsCorruption());
  EXPECT_NE(read.ToString().find("version"), std::string::npos)
      << read.ToString();
  ASSERT_TRUE(file.Close().ok());
}

// --- format versioning ------------------------------------------------------

TEST_F(FaultInjectionTest, LegacyV0FileUpgradedLosslessly) {
  const std::string path = dir_ + "/v0.pf";
  // A version-0 file: headerless, raw 4096-byte payloads.
  std::string raw;
  std::vector<char> payload(kPageSize);
  for (PageId i = 0; i < 5; ++i) {
    FillPayload(i, payload.data());
    raw.append(payload.data(), kPageSize);
  }
  ASSERT_TRUE(WriteFile(path, raw).ok());

  // The scrub path must refuse to touch (and thus upgrade) it.
  {
    PageFile ro;
    Status scrub_open = ro.OpenForScrub(path);
    EXPECT_TRUE(scrub_open.IsCorruption()) << scrub_open.ToString();
  }

  // A normal open upgrades in place; contents survive bit for bit.
  PageFile file;
  ASSERT_TRUE(file.Open(path, false).ok());
  EXPECT_EQ(file.num_pages(), 5u);
  std::vector<char> expect(kPageSize), got(kPageSize);
  for (PageId i = 0; i < 5; ++i) {
    FillPayload(i, expect.data());
    ASSERT_TRUE(file.ReadPage(i, got.data()).ok());
    EXPECT_EQ(std::memcmp(expect.data(), got.data(), kPageSize), 0)
        << "page " << i;
  }
  ASSERT_TRUE(file.Close().ok());

  // The upgraded file is framed and scrub-clean.
  EXPECT_EQ(std::filesystem::file_size(path), 5 * kDiskPageSize);
  auto report = ScrubPageFile(path, {/*verify_structure=*/false});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean());
  EXPECT_EQ(report->pages, 5u);
}

TEST_F(FaultInjectionTest, TornTrailingPageTruncatedOnOpen) {
  const std::string path = dir_ + "/torn.pf";
  BuildPageFile(path, 4);

  // Append a partial block: a torn final write after power loss.
  auto contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(WriteFile(path, *contents + std::string(513, 'x')).ok());

  // Scrub refuses to repair.
  {
    PageFile ro;
    EXPECT_TRUE(ro.OpenForScrub(path).IsCorruption());
  }
  // A normal open truncates the tail; the complete pages survive.
  PageFile file;
  ASSERT_TRUE(file.Open(path, false).ok());
  EXPECT_EQ(file.num_pages(), 4u);
  std::vector<char> buf(kPageSize);
  for (PageId i = 0; i < 4; ++i) {
    EXPECT_TRUE(file.ReadPage(i, buf.data()).ok());
  }
  ASSERT_TRUE(file.Close().ok());
  EXPECT_EQ(std::filesystem::file_size(path), 4 * kDiskPageSize);
}

// --- injected I/O faults ----------------------------------------------------

TEST_F(FaultInjectionTest, TransientFaultsAreRetried) {
  InjectedFile f = MakeInjected();
  ASSERT_TRUE(f.file->Open(dir_ + "/t.pf", true).ok());
  PageId id = kInvalidPage;
  ASSERT_TRUE(f.file->AllocatePage(&id).ok());

  std::vector<char> buf(kPageSize, 'a');
  f.io->FailNextWrites(2, /*transient=*/true);
  EXPECT_TRUE(f.file->WritePage(id, buf.data()).ok());
  EXPECT_GE(f.file->retries(), 2u);

  f.io->FailNextReads(3, /*transient=*/true);
  EXPECT_TRUE(f.file->ReadPage(id, buf.data()).ok());
  EXPECT_GE(f.file->retries(), 5u);
  ASSERT_TRUE(f.file->Close().ok());
}

TEST_F(FaultInjectionTest, TransientFaultExhaustionBecomesIOError) {
  InjectedFile f = MakeInjected();
  ASSERT_TRUE(f.file->Open(dir_ + "/t.pf", true).ok());
  PageId id = kInvalidPage;
  ASSERT_TRUE(f.file->AllocatePage(&id).ok());

  std::vector<char> buf(kPageSize, 'b');
  f.io->FailNextReads(100, /*transient=*/true);
  Status read = f.file->ReadPage(id, buf.data());
  EXPECT_TRUE(read.IsIOError()) << read.ToString();
  EXPECT_NE(read.ToString().find("transient fault persisted"),
            std::string::npos)
      << read.ToString();
  ASSERT_TRUE(f.file->Close().ok());
}

TEST_F(FaultInjectionTest, HardFaultsAreNotRetried) {
  InjectedFile f = MakeInjected();
  ASSERT_TRUE(f.file->Open(dir_ + "/t.pf", true).ok());
  PageId id = kInvalidPage;
  ASSERT_TRUE(f.file->AllocatePage(&id).ok());
  std::vector<char> buf(kPageSize, 'c');

  const uint64_t retries_before = f.file->retries();
  f.io->FailNextReads(1, /*transient=*/false);
  EXPECT_TRUE(f.file->ReadPage(id, buf.data()).IsIOError());
  f.io->FailNextWrites(1, /*transient=*/false);
  EXPECT_TRUE(f.file->WritePage(id, buf.data()).IsIOError());
  EXPECT_EQ(f.file->retries(), retries_before);  // hard EIO: no retry loop

  f.io->FailNextSyncs(1);
  EXPECT_TRUE(f.file->Sync().IsIOError());
  EXPECT_TRUE(f.file->Sync().ok());  // fault budget drained
  ASSERT_TRUE(f.file->Close().ok());
}

TEST_F(FaultInjectionTest, SilentTornWriteCaughtByChecksum) {
  InjectedFile f = MakeInjected(/*seed=*/77);
  ASSERT_TRUE(f.file->Open(dir_ + "/t.pf", true).ok());
  PageId id = kInvalidPage;
  ASSERT_TRUE(f.file->AllocatePage(&id).ok());
  std::vector<char> old_data(kPageSize, 'o'), new_data(kPageSize, 'n');
  ASSERT_TRUE(f.file->WritePage(id, old_data.data()).ok());

  // The device claims success but persists only a prefix. The write can
  // never round-trip: either the mixed block fails its checksum, or (tiny
  // prefix) the previous version survives intact — but the new payload must
  // never be returned as verified.
  f.io->TearNextWrite(/*silent=*/true);
  ASSERT_TRUE(f.file->WritePage(id, new_data.data()).ok());  // the lie

  std::vector<char> got(kPageSize);
  Status read = f.file->ReadPage(id, got.data());
  if (read.ok()) {
    EXPECT_EQ(std::memcmp(got.data(), old_data.data(), kPageSize), 0);
  } else {
    EXPECT_TRUE(read.IsCorruption()) << read.ToString();
  }
  ASSERT_TRUE(f.file->Close().ok());
}

TEST_F(FaultInjectionTest, ReportedTornWriteReturnsError) {
  InjectedFile f = MakeInjected();
  ASSERT_TRUE(f.file->Open(dir_ + "/t.pf", true).ok());
  PageId id = kInvalidPage;
  ASSERT_TRUE(f.file->AllocatePage(&id).ok());
  std::vector<char> buf(kPageSize, 'd');
  f.io->TearNextWrite(/*silent=*/false);
  Status write = f.file->WritePage(id, buf.data());
  EXPECT_TRUE(write.IsIOError()) << write.ToString();
  ASSERT_TRUE(f.file->Close().ok());
}

TEST_F(FaultInjectionTest, CrashAfterWritesKillsDevice) {
  InjectedFile f = MakeInjected();
  ASSERT_TRUE(f.file->Open(dir_ + "/t.pf", true).ok());
  PageId id = kInvalidPage;
  ASSERT_TRUE(f.file->AllocatePage(&id).ok());
  std::vector<char> buf(kPageSize, 'e');
  ASSERT_TRUE(f.file->WritePage(id, buf.data()).ok());

  f.io->CrashAfterWrites(1);
  EXPECT_TRUE(f.file->WritePage(id, buf.data()).ok());  // last one through
  EXPECT_FALSE(f.io->crashed());
  EXPECT_TRUE(f.file->WritePage(id, buf.data()).IsIOError());  // trips
  EXPECT_TRUE(f.io->crashed());
  // Everything after the crash fails, including reads and syncs.
  EXPECT_TRUE(f.file->ReadPage(id, buf.data()).IsIOError());
  EXPECT_TRUE(f.file->Sync().IsIOError());
  ASSERT_TRUE(f.file->Close().ok());
}

TEST_F(FaultInjectionTest, BufferPoolSurvivesRepeatedFailedFetches) {
  const std::string path = dir_ + "/f.pf";
  BuildPageFile(path, 6);
  FlipBitInFile(path, 2 * kDiskPageSize + kPageHeaderSize + 10, 1);

  PageFile file;
  ASSERT_TRUE(file.Open(path, false).ok());
  BufferPool pool(&file, /*capacity=*/8);
  // Regression: a failed Fetch must hand its frame back. With capacity 8,
  // leaking one frame per failure would exhaust the pool within 8 tries.
  for (int i = 0; i < 20; ++i) {
    auto fetched = pool.Fetch(2);
    ASSERT_FALSE(fetched.ok());
    EXPECT_TRUE(fetched.status().IsCorruption());
  }
  for (PageId id : {0u, 1u, 3u, 4u, 5u}) {
    auto fetched = pool.Fetch(id);
    EXPECT_TRUE(fetched.ok()) << "page " << id << ": " << fetched.status();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(file.Close().ok());
}

// --- record store -----------------------------------------------------------

TEST_F(FaultInjectionTest, RecordStoreDetectsBitRot) {
  const std::string path = dir_ + "/r.dat";
  RecordId id{};
  {
    RecordStore store;
    ASSERT_TRUE(store.Open(path, true).ok());
    auto appended = store.Append(std::string(100, 'p'));
    ASSERT_TRUE(appended.ok());
    id = *appended;
    ASSERT_TRUE(store.Sync().ok());
    ASSERT_TRUE(store.Close().ok());
  }
  // Corrupt the record magic.
  FlipBitInFile(path, id.offset, 0);
  {
    RecordStore store;
    ASSERT_TRUE(store.Open(path, false).ok());
    EXPECT_TRUE(store.Read(id).status().IsCorruption());
    EXPECT_TRUE(store.Touch(id).IsCorruption());
    ASSERT_TRUE(store.Close().ok());
  }
  // Restore the magic, blow up the length field instead.
  FlipBitInFile(path, id.offset, 0);
  FlipBitInFile(path, id.offset + 4, 7);  // length: 100 -> huge
  {
    RecordStore store;
    ASSERT_TRUE(store.Open(path, false).ok());
    EXPECT_TRUE(store.Read(id).status().IsCorruption());
    ASSERT_TRUE(store.Close().ok());
  }
}

// --- index meta codec -------------------------------------------------------

TEST(IndexMetaCodecTest, StorageFieldsRoundTripAndRejectTruncation) {
  IndexMeta meta;
  meta.storage_format = kPageFormatVersion;
  meta.indexed_docs = 42;
  std::string buf = EncodeIndexMeta(meta);

  auto restored = DecodeIndexMeta(buf);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->storage_format, kPageFormatVersion);
  EXPECT_EQ(restored->indexed_docs, 42u);

  // Truncating into the v2 tail is corruption, not silent acceptance.
  auto cut = DecodeIndexMeta(buf.substr(0, buf.size() - 1));
  EXPECT_TRUE(cut.status().IsCorruption()) << cut.status();

  // Version 0 and from-the-future versions are rejected up front.
  std::string v0 = buf;
  v0[4] = 0;  // varint version right after the 4-byte magic
  EXPECT_TRUE(DecodeIndexMeta(v0).status().IsCorruption());
  std::string v127 = buf;
  v127[4] = 127;
  EXPECT_TRUE(DecodeIndexMeta(v127).status().IsCorruption());
}

// --- B+-tree structural audit -----------------------------------------------

class BTreeAuditTest : public FaultInjectionTest {
 protected:
  /// Builds a two-level tree (meta + inner root + several leaves) with
  /// valid checksums throughout, and returns a node page of each kind.
  void BuildTree(const std::string& path) {
    PageFile file;
    ASSERT_TRUE(file.Open(path, true).ok());
    BufferPool pool(&file, 64);
    auto tree = BTree::Create(&pool, /*key_size=*/8, /*value_size=*/8);
    ASSERT_TRUE(tree.ok());
    char key[8], value[8] = {0};
    for (uint32_t i = 0; i < 2000; ++i) {
      EncodeFixed32(key, 0);
      EncodeFixed32(key + 4, __builtin_bswap32(i));  // big-endian: memcmp order
      ASSERT_TRUE(
          tree->Insert({key, sizeof key}, {value, sizeof value}).ok());
    }
    ASSERT_TRUE(tree->Flush().ok());
    ASSERT_EQ(tree->height(), 2u);
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(file.Close().ok());
  }

  /// First page (id >= 1) whose node-type byte equals `want`.
  PageId FindNode(const std::string& path, uint8_t want) {
    PageFile file;
    EXPECT_TRUE(file.Open(path, false).ok());
    PageId found = kInvalidPage;
    std::vector<char> buf(kPageSize);
    for (PageId id = 1; id < file.num_pages() && found == kInvalidPage;
         ++id) {
      EXPECT_TRUE(file.ReadPage(id, buf.data()).ok());
      if (static_cast<uint8_t>(buf[0]) == want) found = id;
    }
    EXPECT_TRUE(file.Close().ok());
    return found;
  }

  /// The audit must flag the file even though every page checksum is valid.
  void ExpectAuditViolation(const std::string& path,
                            const std::string& needle) {
    auto report = ScrubPageFile(path);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->ok_pages, report->pages);  // checksums all pass...
    ASSERT_FALSE(report->clean()) << "expected violation: " << needle;
    EXPECT_NE(report->violations[0].find(needle), std::string::npos)
        << report->violations[0];
  }
};

TEST_F(BTreeAuditTest, CleanTreePassesScrub) {
  const std::string path = dir_ + "/t.bt";
  BuildTree(path);
  auto report = ScrubPageFile(path);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->violations[0];
  EXPECT_GT(report->pages, 3u);
}

TEST_F(BTreeAuditTest, RejectsForeignMetaPage) {
  const std::string path = dir_ + "/t.bt";
  BuildTree(path);
  EditPayload(path, 0, [](char* p) { EncodeFixed32(p, 0xdeadbeef); });
  ExpectAuditViolation(path, "not a FIX B+-tree");
}

TEST_F(BTreeAuditTest, RejectsImplausibleGeometry) {
  const std::string path = dir_ + "/t.bt";
  BuildTree(path);
  // key_size field in the meta page blown up past any page capacity.
  EditPayload(path, 0, [](char* p) { EncodeFixed32(p + 4, 1u << 30); });
  ExpectAuditViolation(path, "implausible");
}

TEST_F(BTreeAuditTest, DetectsBadNodeType) {
  const std::string path = dir_ + "/t.bt";
  BuildTree(path);
  PageId leaf = FindNode(path, /*kLeaf=*/0);
  ASSERT_NE(leaf, kInvalidPage);
  EditPayload(path, leaf, [](char* p) { p[0] = 9; });
  ExpectAuditViolation(path, "bad node type");
}

TEST_F(BTreeAuditTest, DetectsOverflowingLeafCount) {
  const std::string path = dir_ + "/t.bt";
  BuildTree(path);
  PageId leaf = FindNode(path, 0);
  ASSERT_NE(leaf, kInvalidPage);
  EditPayload(path, leaf, [](char* p) {
    p[2] = static_cast<char>(0xff);  // count u16 -> 65535, past capacity
    p[3] = static_cast<char>(0xff);
  });
  ExpectAuditViolation(path, "leaf page");
}

TEST_F(BTreeAuditTest, DetectsKeysOutOfOrderInLeaf) {
  const std::string path = dir_ + "/t.bt";
  BuildTree(path);
  PageId leaf = FindNode(path, 0);
  ASSERT_NE(leaf, kInvalidPage);
  EditPayload(path, leaf, [](char* p) {
    // Swap the first two 16-byte (key, value) entries.
    char tmp[16];
    std::memcpy(tmp, p + 8, 16);
    std::memcpy(p + 8, p + 24, 16);
    std::memcpy(p + 24, tmp, 16);
  });
  ExpectAuditViolation(path, "out of order");
}

TEST_F(BTreeAuditTest, DetectsChildIdOutOfRange) {
  const std::string path = dir_ + "/t.bt";
  BuildTree(path);
  PageId inner = FindNode(path, /*kInner=*/1);
  ASSERT_NE(inner, kInvalidPage);
  EditPayload(path, inner,
              [](char* p) { EncodeFixed32(p + 4, 1u << 20); });
  ExpectAuditViolation(path, "out of range");
}

TEST_F(BTreeAuditTest, DetectsCycle) {
  const std::string path = dir_ + "/t.bt";
  BuildTree(path);
  PageId inner = FindNode(path, 1);
  ASSERT_NE(inner, kInvalidPage);
  // Point the first child at the inner node itself.
  EditPayload(path, inner,
              [inner](char* p) { EncodeFixed32(p + 4, inner); });
  ExpectAuditViolation(path, "");  // cycle, depth, or type — any is a catch
}

TEST_F(BTreeAuditTest, DetectsBrokenSiblingChain) {
  const std::string path = dir_ + "/t.bt";
  BuildTree(path);
  // Find a leaf that is not the last in the chain, so cutting its next
  // pointer actually severs something.
  PageId leaf = kInvalidPage;
  {
    PageFile file;
    ASSERT_TRUE(file.Open(path, false).ok());
    std::vector<char> buf(kPageSize);
    for (PageId id = 1; id < file.num_pages() && leaf == kInvalidPage;
         ++id) {
      ASSERT_TRUE(file.ReadPage(id, buf.data()).ok());
      if (buf[0] == 0 && DecodeFixed32(buf.data() + 4) != kInvalidPage) {
        leaf = id;
      }
    }
    ASSERT_TRUE(file.Close().ok());
  }
  ASSERT_NE(leaf, kInvalidPage);
  // Truncate the chain: this leaf claims to be the last one.
  EditPayload(path, leaf,
              [](char* p) { EncodeFixed32(p + 4, kInvalidPage); });
  ExpectAuditViolation(path, "chain");
}

TEST_F(BTreeAuditTest, DetectsEntryCountMismatch) {
  const std::string path = dir_ + "/t.bt";
  BuildTree(path);
  // Meta page entry count is at a fixed slot; nudge it by one. Layout:
  // magic, key_size, value_size, root, height, then the u64 entry count.
  EditPayload(path, 0, [](char* p) {
    EncodeFixed32(p + 20, DecodeFixed32(p + 20) + 1);
  });
  ExpectAuditViolation(path, "entry count mismatch");
}

// --- scrub acceptance: random single-bit corruption -------------------------

TEST_F(FaultInjectionTest, ScrubDetectsEveryRandomSingleBitFlip) {
  const std::string path = dir_ + "/big.pf";
  constexpr PageId kPages = 1000;
  BuildPageFile(path, kPages);

  ScrubOptions opts;
  opts.verify_structure = false;  // raw page file, not a B+-tree
  {
    auto report = ScrubPageFile(path, opts);
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->clean());
    ASSERT_EQ(report->pages, kPages);
  }

  Rng rng(20260805);
  for (int trial = 0; trial < 100; ++trial) {
    const uint64_t byte = rng.Uniform(uint64_t{kPages} * kDiskPageSize);
    const int bit = static_cast<int>(rng.Uniform(8));
    FlipBitInFile(path, byte, bit);
    auto report = ScrubPageFile(path, opts);
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report->clean())
        << "undetected flip at byte " << byte << " bit " << bit;
    EXPECT_EQ(report->ok_pages, kPages - 1);
    FlipBitInFile(path, byte, bit);  // heal for the next trial
  }
  auto report = ScrubPageFile(path, opts);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
}

// --- database-level recovery ------------------------------------------------

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/fix_recov_" + info->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static IndexOptions TestIndexOptions() {
    IndexOptions options;
    options.depth_limit = 3;
    return options;
  }

  /// Populates `workdir` with a saved corpus (and optionally a built index).
  void MakeDatabase(const std::string& workdir, int num_docs,
                    bool build_index) {
    std::filesystem::create_directories(workdir);
    Database db(workdir);
    TcmdOptions gen;
    gen.seed = 7;
    gen.num_docs = num_docs;
    GenerateTcmd(db.corpus(), gen);
    ASSERT_TRUE(db.Save().ok());
    if (build_index) {
      auto built = db.BuildIndex("main", TestIndexOptions());
      ASSERT_TRUE(built.ok()) << built.status();
    }
  }

  /// Runs the recovery contract on a reopened database: every query answer
  /// must equal the navigational full-scan baseline, and the index must be
  /// either degraded (detected damage) or scrub-clean.
  void CheckRecoveredDatabase(const std::string& workdir) {
    auto db = Database::Open(workdir);
    ASSERT_TRUE(db.ok()) << db.status();
    for (const char* xpath : kQueries) {
      std::vector<NodeRef> got, want;
      auto stats = (*db)->Query("main", xpath, &got);
      ASSERT_TRUE(stats.ok()) << xpath << ": " << stats.status();
      auto compiled = (*db)->Compile(xpath);
      ASSERT_TRUE(compiled.ok());
      auto baseline =
          FullScanExecute((*db)->corpus(), *compiled, &want, /*total=*/0);
      ASSERT_TRUE(baseline.ok());
      EXPECT_EQ(Sorted(got), Sorted(want)) << xpath;
      EXPECT_EQ(stats->degraded, (*db)->IsDegraded("main")) << xpath;
    }
    if (!(*db)->IsDegraded("main")) {
      auto report = ScrubPageFile(workdir + "/main.fix");
      ASSERT_TRUE(report.ok()) << report.status();
      EXPECT_TRUE(report->clean()) << report->violations[0];
    }
  }

  static std::vector<std::pair<uint32_t, NodeId>> Sorted(
      const std::vector<NodeRef>& refs) {
    std::vector<std::pair<uint32_t, NodeId>> out;
    out.reserve(refs.size());
    for (const NodeRef& r : refs) out.emplace_back(r.doc_id, r.node_id);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Forwards every call to a shared injector. The PageFile destroys the
  /// PageIo it was handed when it goes away (e.g. a crashed BuildIndex
  /// tearing down its index), so the test keeps the injector alive through
  /// a shared_ptr and hands the file this disposable view instead.
  class SharedPageIo : public PageIo {
   public:
    explicit SharedPageIo(std::shared_ptr<PageIo> base)
        : base_(std::move(base)) {}
    [[nodiscard]] Status Open(const std::string& path, bool create) override {
      return base_->Open(path, create);
    }
    [[nodiscard]] Status Close() override { return base_->Close(); }
    bool is_open() const override { return base_->is_open(); }
    const std::string& path() const override { return base_->path(); }
    [[nodiscard]] Result<uint64_t> Size() const override {
      return base_->Size();
    }
    [[nodiscard]] Status Truncate(uint64_t size) override {
      return base_->Truncate(size);
    }
    [[nodiscard]] Status Read(uint64_t offset, char* buf,
                              size_t len) override {
      return base_->Read(offset, buf, len);
    }
    [[nodiscard]] Status Write(uint64_t offset, const char* buf,
                               size_t len) override {
      return base_->Write(offset, buf, len);
    }
    [[nodiscard]] Status Sync() override { return base_->Sync(); }

   private:
    std::shared_ptr<PageIo> base_;
  };

  /// An OpenOptions whose page files crash after `budget` writes; the
  /// injector handle is stored into `*out` when the factory runs. The test
  /// co-owns the injector so it can still inspect crashed()/counters after
  /// the database has torn the page file down.
  static Database::OpenOptions CrashyOptions(
      uint64_t budget, std::shared_ptr<FaultInjectionPageIo>* out) {
    Database::OpenOptions options;
    options.page_io_factory = [budget, out]() {
      auto io = std::make_shared<FaultInjectionPageIo>(
          std::make_unique<FilePageIo>());
      io->CrashAfterWrites(budget);
      *out = io;
      return std::unique_ptr<PageIo>(new SharedPageIo(io));
    };
    return options;
  }

  /// Like CrashyOptions, but arms the write-ahead-log backend instead of
  /// the page files: the data file stays healthy and only the log crashes.
  static Database::OpenOptions WalCrashyOptions(
      uint64_t budget, std::shared_ptr<FaultInjectionPageIo>* out) {
    Database::OpenOptions options;
    options.wal_io_factory = [budget, out]() {
      auto io = std::make_shared<FaultInjectionPageIo>(
          std::make_unique<FilePageIo>());
      io->CrashAfterWrites(budget);
      *out = io;
      return std::unique_ptr<PageIo>(new SharedPageIo(io));
    };
    return options;
  }

  /// Sorted query answers for every kQueries entry against `workdir` as it
  /// is on disk right now (opened fresh, no fault injection).
  std::vector<std::vector<std::pair<uint32_t, NodeId>>> QueryAnswers(
      const std::string& workdir) {
    std::vector<std::vector<std::pair<uint32_t, NodeId>>> out;
    auto db = Database::Open(workdir);
    EXPECT_TRUE(db.ok()) << db.status();
    if (!db.ok()) return out;
    for (const char* xpath : kQueries) {
      std::vector<NodeRef> got;
      auto stats = (*db)->Query("main", xpath, &got);
      EXPECT_TRUE(stats.ok()) << xpath << ": " << stats.status();
      out.push_back(Sorted(got));
    }
    return out;
  }

  static constexpr const char* kQueries[3] = {
      "/article[epilog]/prolog",
      "/article/prolog/authors",
      "/article/body/section",
  };

  std::string dir_;
};

TEST_F(RecoveryTest, CorruptIndexQuarantinedAtOpen) {
  MakeDatabase(dir_, /*num_docs=*/10, /*build_index=*/true);
  const std::string index_path = dir_ + "/main.fix";
  // Bit rot in the middle of the index file.
  FlipBitInFile(index_path, kDiskPageSize + kPageHeaderSize + 99, 5);

  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();  // recovery never aborts the open
  EXPECT_TRUE((*db)->IsDegraded("main"));
  EXPECT_EQ((*db)->health().quarantined_indexes, 1u);
  EXPECT_GE((*db)->health().corruption_events, 1u);
  EXPECT_TRUE(std::filesystem::exists(index_path + ".quarantined"));
  EXPECT_FALSE(std::filesystem::exists(index_path));

  // Queries still answer, correctly, flagged degraded.
  std::vector<NodeRef> got, want;
  auto stats = (*db)->Query("main", kQueries[0], &got);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->degraded);
  EXPECT_FALSE(stats->used_index);
  auto compiled = (*db)->Compile(kQueries[0]);
  ASSERT_TRUE(compiled.ok());
  ASSERT_TRUE(FullScanExecute((*db)->corpus(), *compiled, &want, 0).ok());
  EXPECT_EQ(Sorted(got), Sorted(want));
  EXPECT_EQ((*db)->health().degraded_queries, 1u);
}

TEST_F(RecoveryTest, StaleIndexQuarantinedAtOpen) {
  MakeDatabase(dir_, 8, true);
  // Grow the corpus after the index was built — the on-disk state a crash
  // between corpus append and index update leaves behind.
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_FALSE((*db)->IsDegraded("main"));  // sanity: clean before growth
    ASSERT_TRUE((*db)->AddXml("<article><prolog/></article>").ok());
    ASSERT_TRUE((*db)->Save().ok());
  }
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->IsDegraded("main"));
  std::vector<NodeRef> got;
  auto stats = (*db)->Query("main", "/article/prolog", &got);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->degraded);
  // The full scan sees the new document the index never covered.
  bool saw_new_doc = false;
  for (const NodeRef& r : got) saw_new_doc |= r.doc_id == 8;
  EXPECT_TRUE(saw_new_doc);
}

TEST_F(RecoveryTest, MidQueryCorruptionFallsBackToFullScan) {
  MakeDatabase(dir_, 10, true);
  const std::string index_path = dir_ + "/main.fix";
  // Rot every non-meta page so any lookup trips; skip attach verification
  // so the damage is only discovered mid-query.
  {
    PageFile file;
    ASSERT_TRUE(file.Open(index_path, false).ok());
    std::vector<char> block(kDiskPageSize);
    for (PageId id = 1; id < file.num_pages(); ++id) {
      ASSERT_TRUE(file.ReadRawBlock(id, block.data()).ok());
      block[kPageHeaderSize + 50] ^= 0x10;
      ASSERT_TRUE(file.WriteRawBlock(id, block.data()).ok());
    }
    ASSERT_TRUE(file.Close().ok());
  }
  Database::OpenOptions options;
  options.verify_on_attach = false;
  auto db = Database::Open(dir_, options);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_FALSE((*db)->IsDegraded("main"));  // damage not yet discovered

  std::vector<NodeRef> got, want;
  auto stats = (*db)->Query("main", kQueries[1], &got);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->degraded);
  EXPECT_TRUE((*db)->IsDegraded("main"));
  EXPECT_GE((*db)->health().corruption_events, 1u);
  EXPECT_TRUE(std::filesystem::exists(index_path + ".quarantined"));

  auto compiled = (*db)->Compile(kQueries[1]);
  ASSERT_TRUE(compiled.ok());
  ASSERT_TRUE(FullScanExecute((*db)->corpus(), *compiled, &want, 0).ok());
  EXPECT_EQ(Sorted(got), Sorted(want));
}

TEST_F(RecoveryTest, RebuildIndexRestoresService) {
  MakeDatabase(dir_, 10, true);
  FlipBitInFile(dir_ + "/main.fix", kDiskPageSize + 123, 2);

  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->IsDegraded("main"));

  auto rebuilt = (*db)->RebuildIndex("main", TestIndexOptions());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_FALSE((*db)->IsDegraded("main"));
  EXPECT_EQ((*db)->health().rebuilds, 1u);
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/main.fix.quarantined"));

  std::vector<NodeRef> got, want;
  auto stats = (*db)->Query("main", kQueries[2], &got);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->degraded);
  EXPECT_TRUE(stats->used_index);
  auto compiled = (*db)->Compile(kQueries[2]);
  ASSERT_TRUE(compiled.ok());
  ASSERT_TRUE(FullScanExecute((*db)->corpus(), *compiled, &want, 0).ok());
  EXPECT_EQ(Sorted(got), Sorted(want));

  // The rebuilt index survives a fresh recovery cycle, clean.
  auto db2 = Database::Open(dir_);
  ASSERT_TRUE(db2.ok());
  EXPECT_FALSE((*db2)->IsDegraded("main"));
  auto report = ScrubPageFile(dir_ + "/main.fix");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
}

// The acceptance matrix: kill index construction and incremental update at
// 20+ distinct write counts, then reopen and hold the recovery contract.
TEST_F(RecoveryTest, CrashRecoveryMatrix) {
  const std::string corpus_template = dir_ + "/tmpl_corpus";
  const std::string full_template = dir_ + "/tmpl_full";
  MakeDatabase(corpus_template, /*num_docs=*/24, /*build_index=*/false);
  MakeDatabase(full_template, /*num_docs=*/24, /*build_index=*/true);

  // Measure the write counts of a clean build and a clean update so the
  // crash points can be spread across the whole write schedule.
  uint64_t build_writes = 0;
  {
    const std::string wd = dir_ + "/measure_build";
    std::filesystem::copy(corpus_template, wd,
                          std::filesystem::copy_options::recursive);
    std::shared_ptr<FaultInjectionPageIo> io;
    auto options = CrashyOptions(/*budget=*/UINT64_MAX / 2, &io);
    auto db = Database::Open(wd, options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->BuildIndex("main", TestIndexOptions()).ok());
    ASSERT_NE(io, nullptr);
    build_writes = io->writes();
  }
  const std::string kNewDoc =
      "<article><prolog><title>t</title><authors><author><name>n</name>"
      "</author></authors></prolog><body><section><heading>h</heading>"
      "<p>p</p></section></body><epilog><references><a_id>r</a_id>"
      "</references></epilog></article>";
  uint64_t update_writes = 0;
  {
    const std::string wd = dir_ + "/measure_update";
    std::filesystem::copy(full_template, wd,
                          std::filesystem::copy_options::recursive);
    std::shared_ptr<FaultInjectionPageIo> io;
    auto options = CrashyOptions(UINT64_MAX / 2, &io);
    auto db = Database::Open(wd, options);
    ASSERT_TRUE(db.ok());
    ASSERT_FALSE((*db)->IsDegraded("main"));
    auto doc_id = (*db)->AddXml(kNewDoc);
    ASSERT_TRUE(doc_id.ok());
    const uint64_t before = io->writes();
    ASSERT_TRUE((*db)->index("main")->InsertDocument(*doc_id).ok());
    ASSERT_TRUE((*db)->Save().ok());
    update_writes = io->writes() - before;
  }
  ASSERT_GE(build_writes, 2u);
  ASSERT_GE(update_writes, 1u);

  // Crash points: every update write count, plus build write counts spread
  // over the whole schedule until the acceptance floor of 20 is met.
  std::set<uint64_t> update_points, build_points;
  for (uint64_t k = 0; k < update_writes && update_points.size() < 8; ++k) {
    update_points.insert(k);
  }
  const size_t build_quota =
      std::max<size_t>(20 - std::min<size_t>(update_points.size(), 19), 14);
  for (size_t i = 0; i < build_quota; ++i) {
    build_points.insert(i * build_writes / build_quota);
  }
  ASSERT_GE(build_points.size() + update_points.size(), 20u)
      << "corpus too small to yield 20 distinct crash points: "
      << build_writes << " build writes, " << update_writes
      << " update writes";

  int triggered_build = 0, triggered_update = 0;

  for (uint64_t k : build_points) {
    SCOPED_TRACE("build crash after " + std::to_string(k) + " writes");
    const std::string wd = dir_ + "/build_k" + std::to_string(k);
    std::filesystem::copy(corpus_template, wd,
                          std::filesystem::copy_options::recursive);
    {
      std::shared_ptr<FaultInjectionPageIo> io;
      auto options = CrashyOptions(k, &io);
      auto db = Database::Open(wd, options);
      ASSERT_TRUE(db.ok());
      auto built = (*db)->BuildIndex("main", TestIndexOptions());
      ASSERT_NE(io, nullptr);
      ASSERT_TRUE(io->crashed());  // k < build_writes: the crash must trip
      EXPECT_FALSE(built.ok());    // and the failure must not be swallowed
      ++triggered_build;
    }
    CheckRecoveredDatabase(wd);
  }

  for (uint64_t k : update_points) {
    SCOPED_TRACE("update crash after " + std::to_string(k) + " writes");
    const std::string wd = dir_ + "/update_k" + std::to_string(k);
    std::filesystem::copy(full_template, wd,
                          std::filesystem::copy_options::recursive);
    {
      std::shared_ptr<FaultInjectionPageIo> io;
      auto options = CrashyOptions(UINT64_MAX / 2, &io);
      auto db = Database::Open(wd, options);
      ASSERT_TRUE(db.ok());
      ASSERT_FALSE((*db)->IsDegraded("main"));
      auto doc_id = (*db)->AddXml(kNewDoc);
      ASSERT_TRUE(doc_id.ok());
      // Re-arm at the update's k-th write (attach already consumed reads
      // but no writes; arming here scopes the budget to the update path).
      io->CrashAfterWrites(k);
      Status inserted = (*db)->index("main")->InsertDocument(*doc_id);
      ASSERT_TRUE(io->crashed());
      EXPECT_FALSE(inserted.ok());
      ASSERT_TRUE((*db)->Save().ok());  // the corpus append itself survives
      ++triggered_update;
    }
    CheckRecoveredDatabase(wd);
  }

  EXPECT_GE(triggered_build + triggered_update, 20);
  EXPECT_GE(triggered_build, 1);
  EXPECT_GE(triggered_update, 1);
}

// --- WAL crash-recovery matrix ----------------------------------------------

constexpr const char* kWalNewDoc =
    "<article><prolog><title>t</title><authors><author><name>n</name>"
    "</author></authors></prolog><body><section><heading>h</heading>"
    "<p>p</p></section></body><epilog><references><a_id>r</a_id>"
    "</references></epilog></article>";

// The COW+WAL acceptance matrix: crash the data file at every write index
// of an InsertDocument commit, and crash the log itself at every one of its
// write indexes. After each crash the database is reopened and must hold
// the atomicity contract: if the WAL commit record reached the disk, replay
// adopts the post-write index with ZERO quarantines and full index service;
// if it did not, the pre-write index is quarantined as stale and the
// degraded full scan answers from the post-write corpus. Either way every
// answer is byte-identical to the never-crashed twin.
TEST_F(RecoveryTest, WalCrashRecoveryMatrix) {
  const std::string full_template = dir_ + "/tmpl_full";
  MakeDatabase(full_template, /*num_docs=*/24, /*build_index=*/true);

  // Never-crashed twin: the post-insert ground truth.
  const std::string twin = dir_ + "/twin";
  std::filesystem::copy(full_template, twin,
                        std::filesystem::copy_options::recursive);
  {
    auto db = Database::Open(twin);
    ASSERT_TRUE(db.ok()) << db.status();
    auto doc_id = (*db)->AddXml(kWalNewDoc);
    ASSERT_TRUE(doc_id.ok());
    ASSERT_TRUE((*db)->index("main")->InsertDocument(*doc_id).ok());
    ASSERT_TRUE((*db)->Save().ok());
  }
  const auto post = QueryAnswers(twin);
  ASSERT_EQ(post.size(), 3u);

  // Measure the insert's write schedule on both files.
  uint64_t data_writes = 0, wal_writes = 0;
  {
    const std::string wd = dir_ + "/measure";
    std::filesystem::copy(full_template, wd,
                          std::filesystem::copy_options::recursive);
    std::shared_ptr<FaultInjectionPageIo> data_io, wal_io;
    auto options = CrashyOptions(UINT64_MAX / 2, &data_io);
    options.wal_io_factory =
        WalCrashyOptions(UINT64_MAX / 2, &wal_io).wal_io_factory;
    auto db = Database::Open(wd, options);
    ASSERT_TRUE(db.ok());
    auto doc_id = (*db)->AddXml(kWalNewDoc);
    ASSERT_TRUE(doc_id.ok());
    const uint64_t d0 = data_io->writes(), w0 = wal_io->writes();
    ASSERT_TRUE((*db)->index("main")->InsertDocument(*doc_id).ok());
    data_writes = data_io->writes() - d0;
    wal_writes = wal_io->writes() - w0;
  }
  ASSERT_GE(data_writes, 2u);
  ASSERT_GE(wal_writes, 1u);

  // Crash points: every log write index exhaustively; the data-file
  // schedule either exhaustively (small) or spread, always including the
  // last two indexes — those land on the post-commit checkpoint and
  // exercise the zero-quarantine roll-forward side. A budget equal to the
  // whole schedule (the crash never trips) is the success boundary case.
  std::set<uint64_t> data_points, wal_points;
  for (uint64_t k = 0; k <= wal_writes; ++k) wal_points.insert(k);
  if (data_writes <= 14) {
    for (uint64_t k = 0; k <= data_writes; ++k) data_points.insert(k);
  } else {
    for (uint64_t i = 0; i < 10; ++i) {
      data_points.insert(i * data_writes / 10);
    }
    for (uint64_t k = data_writes - 2; k <= data_writes; ++k) {
      data_points.insert(k);
    }
  }

  int committed_runs = 0, aborted_runs = 0;
  auto run_point = [&](const std::string& wd, bool crash_wal, uint64_t k) {
    std::filesystem::copy(full_template, wd,
                          std::filesystem::copy_options::recursive);
    {
      std::shared_ptr<FaultInjectionPageIo> io;
      auto options = crash_wal ? WalCrashyOptions(UINT64_MAX / 2, &io)
                               : CrashyOptions(UINT64_MAX / 2, &io);
      auto db = Database::Open(wd, options);
      ASSERT_TRUE(db.ok()) << db.status();
      ASSERT_FALSE((*db)->IsDegraded("main"));
      auto doc_id = (*db)->AddXml(kWalNewDoc);
      ASSERT_TRUE(doc_id.ok());
      io->CrashAfterWrites(k);  // re-arm: scope the budget to the insert
      Status inserted = (*db)->index("main")->InsertDocument(*doc_id);
      (void)inserted;  // success or failure — both are valid crash outcomes
      ASSERT_TRUE((*db)->Save().ok());  // the corpus append itself survives
    }
    // Decide the expected side from the disk state alone, the way recovery
    // will: a durable commit record covering the new document, or (when
    // the whole insert ran to completion and reset the log) a sidecar meta
    // already carrying the new coverage.
    bool committed = false;
    {
      auto scan = Wal::Inspect(wd + "/main.fix.wal");
      ASSERT_TRUE(scan.ok()) << scan.status();
      committed = scan->has_commit && scan->last_commit.indexed_docs == 25;
      if (!committed) {
        auto meta_buf = ReadFile(wd + "/main.fix.meta");
        ASSERT_TRUE(meta_buf.ok());
        auto meta = DecodeIndexMeta(*meta_buf);
        ASSERT_TRUE(meta.ok()) << meta.status();
        committed = meta->indexed_docs == 25;
      }
    }
    (committed ? committed_runs : aborted_runs) += 1;

    auto db = Database::Open(wd);
    ASSERT_TRUE(db.ok()) << db.status();
    if (committed) {
      // Committed side: replay must land the post-write index with zero
      // quarantines — no degraded window for an acknowledged-on-disk
      // commit.
      EXPECT_FALSE((*db)->IsDegraded("main"));
      EXPECT_EQ((*db)->health().quarantined_indexes, 0u);
    } else {
      // Aborted side: the index is pre-write but the corpus moved on, so
      // staleness quarantine + degraded full scan is the contract.
      EXPECT_TRUE((*db)->IsDegraded("main"));
      EXPECT_EQ((*db)->health().quarantined_indexes, 1u);
    }
    for (size_t i = 0; i < 3; ++i) {
      std::vector<NodeRef> got;
      auto stats = (*db)->Query("main", kQueries[i], &got);
      ASSERT_TRUE(stats.ok()) << kQueries[i] << ": " << stats.status();
      EXPECT_EQ(Sorted(got), post[i]) << kQueries[i];
      EXPECT_EQ(stats->degraded, !committed) << kQueries[i];
    }
    if (committed) {
      // The recovered index is structurally sound and the log was
      // checkpointed back to empty.
      auto report = ScrubPageFile(wd + "/main.fix");
      ASSERT_TRUE(report.ok()) << report.status();
      EXPECT_TRUE(report->clean()) << report->violations[0];
      auto after = Wal::Inspect(wd + "/main.fix.wal");
      ASSERT_TRUE(after.ok()) << after.status();
      EXPECT_EQ(after->records, 0u);
      EXPECT_FALSE(after->torn_tail);
    }
  };

  for (uint64_t k : data_points) {
    SCOPED_TRACE("data-file crash after " + std::to_string(k) + " writes");
    run_point(dir_ + "/data_k" + std::to_string(k), /*crash_wal=*/false, k);
  }
  for (uint64_t k : wal_points) {
    SCOPED_TRACE("log crash after " + std::to_string(k) + " writes");
    run_point(dir_ + "/wal_k" + std::to_string(k), /*crash_wal=*/true, k);
  }
  EXPECT_GE(committed_runs, 2);
  EXPECT_GE(aborted_runs, 2);
}

// Crashing an online rebuild must leave the old index serving at full
// fidelity — the zero-degraded-window contract: the side-path build dies,
// its files are removed, and neither the live handle nor a later reopen
// sees any damage or quarantine.
TEST_F(RecoveryTest, RebuildCrashKeepsOldIndexServing) {
  const std::string tmpl = dir_ + "/tmpl";
  MakeDatabase(tmpl, /*num_docs=*/24, /*build_index=*/true);
  const auto baseline = QueryAnswers(tmpl);
  ASSERT_EQ(baseline.size(), 3u);

  // Every rebuild page file (old index attach, side build, reopen) gets its
  // own injector with the same budget; collecting them lets the test sum
  // the whole write schedule and later detect which one crashed.
  auto multi_options =
      [](uint64_t budget,
         std::vector<std::shared_ptr<FaultInjectionPageIo>>* all) {
        Database::OpenOptions options;
        options.page_io_factory = [budget, all]() {
          auto io = std::make_shared<FaultInjectionPageIo>(
              std::make_unique<FilePageIo>());
          io->CrashAfterWrites(budget);
          all->push_back(io);
          return std::unique_ptr<PageIo>(new SharedPageIo(io));
        };
        return options;
      };

  uint64_t rebuild_writes = 0;
  {
    const std::string wd = dir_ + "/measure";
    std::filesystem::copy(tmpl, wd,
                          std::filesystem::copy_options::recursive);
    std::vector<std::shared_ptr<FaultInjectionPageIo>> ios;
    auto db = Database::Open(wd, multi_options(UINT64_MAX / 2, &ios));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->RebuildIndex("main", TestIndexOptions()).ok());
    for (const auto& io : ios) rebuild_writes += io->writes();
  }
  ASSERT_GE(rebuild_writes, 2u);

  std::set<uint64_t> points;
  for (uint64_t i = 0; i < 8; ++i) {
    points.insert(i * rebuild_writes / 8);
  }
  points.insert(rebuild_writes);  // success boundary: the crash never trips

  int crashed_runs = 0;
  for (uint64_t k : points) {
    SCOPED_TRACE("rebuild crash after " + std::to_string(k) + " writes");
    const std::string wd = dir_ + "/rebuild_k" + std::to_string(k);
    std::filesystem::copy(tmpl, wd,
                          std::filesystem::copy_options::recursive);
    {
      std::vector<std::shared_ptr<FaultInjectionPageIo>> ios;
      auto db = Database::Open(wd, multi_options(k, &ios));
      ASSERT_TRUE(db.ok()) << db.status();
      ASSERT_FALSE((*db)->IsDegraded("main"));
      auto rebuilt = (*db)->RebuildIndex("main", TestIndexOptions());
      if (!rebuilt.ok()) {
        ++crashed_runs;
        // Old index untouched and still serving — no degraded window, no
        // quarantine, answers identical to before the attempt.
        EXPECT_FALSE((*db)->IsDegraded("main"));
        EXPECT_EQ((*db)->health().quarantined_indexes, 0u);
        EXPECT_EQ((*db)->health().rebuilds, 0u);
        ASSERT_NE((*db)->index("main"), nullptr);
      } else {
        EXPECT_EQ((*db)->health().rebuilds, 1u);
      }
      for (size_t i = 0; i < 3; ++i) {
        std::vector<NodeRef> got;
        auto stats = (*db)->Query("main", kQueries[i], &got);
        ASSERT_TRUE(stats.ok()) << kQueries[i] << ": " << stats.status();
        EXPECT_FALSE(stats->degraded);
        EXPECT_EQ(Sorted(got), baseline[i]) << kQueries[i];
      }
      // The failed side build cleans up after itself.
      if (!rebuilt.ok()) {
        EXPECT_FALSE(std::filesystem::exists(wd + "/main.fix.rebuild"));
      }
    }
    CheckRecoveredDatabase(wd);
  }
  EXPECT_GE(crashed_runs, 2);
}

// An fsync failure on the log is fail-stop: the insert reports failure (an
// unsynced commit is never acked), no later commit can sneak past the dead
// log, and after a crash the reopened database is consistent — the
// never-acked commit either fully applies (its bytes did reach the disk
// before the failed flush) or is discarded with the index quarantined as
// stale; it is never half-applied.
TEST_F(RecoveryTest, WalFsyncFailureIsFailStop) {
  const std::string wd = dir_ + "/db";
  MakeDatabase(wd, /*num_docs=*/24, /*build_index=*/true);

  std::shared_ptr<FaultInjectionPageIo> wal_io;
  auto options = WalCrashyOptions(UINT64_MAX / 2, &wal_io);
  {
    auto db = Database::Open(wd, options);
    ASSERT_TRUE(db.ok()) << db.status();
    FixIndex* index = (*db)->index("main");
    ASSERT_NE(index, nullptr);
    const uint64_t gen_before = index->generation();
    const uint64_t entries_before = index->num_entries();
    auto doc_id = (*db)->AddXml(kWalNewDoc);
    ASSERT_TRUE(doc_id.ok());

    wal_io->FailNextSyncs(1);
    Status inserted = index->InsertDocument(*doc_id);
    EXPECT_TRUE(inserted.IsIOError()) << inserted.ToString();
    EXPECT_TRUE(index->wal().failed());
    EXPECT_EQ(index->generation(), gen_before);      // never published
    EXPECT_EQ(index->num_entries(), entries_before); // readers see nothing

    // Fail-stop latch: the next commit cannot be acked either, even though
    // no new fault is armed — a log that lost one flush cannot promise
    // ordering for the next.
    Status again = index->InsertDocument(*doc_id);
    EXPECT_FALSE(again.ok());
    EXPECT_EQ(index->generation(), gen_before);

    ASSERT_TRUE((*db)->Save().ok());
  }  // crash

  // The record's bytes may or may not have reached the disk before the
  // failed flush; both outcomes must reopen consistent. Classify from the
  // log like recovery does.
  auto scan = Wal::Inspect(wd + "/main.fix.wal");
  ASSERT_TRUE(scan.ok()) << scan.status();
  const bool landed = scan->has_commit && scan->last_commit.indexed_docs == 25;

  auto db = Database::Open(wd);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->IsDegraded("main"), !landed);
  EXPECT_EQ((*db)->health().quarantined_indexes, landed ? 0u : 1u);
  for (const char* xpath : kQueries) {
    std::vector<NodeRef> got, want;
    auto stats = (*db)->Query("main", xpath, &got);
    ASSERT_TRUE(stats.ok()) << xpath << ": " << stats.status();
    auto compiled = (*db)->Compile(xpath);
    ASSERT_TRUE(compiled.ok());
    ASSERT_TRUE(FullScanExecute((*db)->corpus(), *compiled, &want, 0).ok());
    EXPECT_EQ(Sorted(got), Sorted(want)) << xpath;
  }
}

// A torn tail in the log (a commit record half-written by power loss) must
// be detected and discarded on reopen, without disturbing the committed
// prefix: the index stays at its last durable state, no quarantine, and
// the reopened log is clean again.
TEST_F(RecoveryTest, WalTornTailDiscardedOnReopen) {
  const std::string wd = dir_ + "/db";
  MakeDatabase(wd, /*num_docs=*/24, /*build_index=*/true);
  {
    auto db = Database::Open(wd);
    ASSERT_TRUE(db.ok()) << db.status();
    auto doc_id = (*db)->AddXml(kWalNewDoc);
    ASSERT_TRUE(doc_id.ok());
    ASSERT_TRUE((*db)->index("main")->InsertDocument(*doc_id).ok());
    ASSERT_TRUE((*db)->Save().ok());
  }
  const auto post = QueryAnswers(wd);
  ASSERT_EQ(post.size(), 3u);

  // Half a record frame: a length field promising more bytes than exist.
  const std::string wal_path = wd + "/main.fix.wal";
  auto contents = ReadFile(wal_path);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(WriteFile(wal_path, *contents + std::string(13, '\xab')).ok());
  {
    auto scan = Wal::Inspect(wal_path);
    ASSERT_TRUE(scan.ok()) << scan.status();
    EXPECT_TRUE(scan->torn_tail);
    EXPECT_EQ(scan->records, 0u);  // the tail is garbage, the prefix empty
  }

  auto db = Database::Open(wd);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_FALSE((*db)->IsDegraded("main"));
  EXPECT_EQ((*db)->health().quarantined_indexes, 0u);
  for (size_t i = 0; i < 3; ++i) {
    std::vector<NodeRef> got;
    auto stats = (*db)->Query("main", kQueries[i], &got);
    ASSERT_TRUE(stats.ok()) << kQueries[i] << ": " << stats.status();
    EXPECT_FALSE(stats->degraded);
    EXPECT_EQ(Sorted(got), post[i]) << kQueries[i];
  }
  auto after = Wal::Inspect(wal_path);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->torn_tail);
  EXPECT_EQ(after->records, 0u);
}

}  // namespace
}  // namespace fix
