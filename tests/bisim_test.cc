// Tests for the bisimulation-graph builder and the depth-limited traveler,
// including the paper's bibliography example (Figures 1 and 2).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "graph/bisim_builder.h"
#include "graph/bisim_traveler.h"
#include "xml/parser.h"

namespace fix {
namespace {

// The bibliography document of Figure 1 (attribute-free rendition).
constexpr const char* kBibXml = R"(
<bib>
  <article>
    <title/>
    <author><address/><email/><affiliation/></author>
  </article>
  <article>
    <title/>
    <author><email/><affiliation/></author>
  </article>
  <book>
    <title/>
    <author><affiliation/><address/><phone/></author>
  </book>
  <www>
    <title/>
    <author><email/></author>
  </www>
  <inproceedings>
    <title/>
    <author><email/><affiliation/></author>
  </inproceedings>
</bib>)";

Result<BisimGraph> BuildFromXml(const char* xml, LabelTable* labels) {
  auto doc = ParseXml(xml, labels);
  if (!doc.ok()) return doc.status();
  return BuildBisimGraph(*doc);
}

TEST(BisimBuilderTest, PaperBibliographyExample) {
  LabelTable labels;
  auto graph = BuildFromXml(kBibXml, &labels);
  ASSERT_TRUE(graph.ok()) << graph.status();
  // Figure 2's downward-bisimulation graph of this document has 15
  // vertices: bib, article, book, www, inproceedings, title, 4 distinct
  // author signatures (the www-author {email} and the
  // article2/inproceedings-author {email, affiliation} merge), and the 5
  // leaf labels address/email/affiliation/phone... — leaves title, address,
  // email, affiliation, phone collapse to one vertex per label.
  // Counting: leaves = 5 (title, address, email, affiliation, phone);
  // authors = 4 distinct child sets; publications: article, book, www,
  // inproceedings = 4 (the two articles share one vertex); root = 1.
  // The paper's matrix is 15x15; our count must marry that: 5+4+4+1 = 14?
  // The paper counts the www-author {email} as distinct from the
  // inproceedings-author {email, affiliation}: 4 author signatures are
  // {address,email,affiliation}, {email,affiliation}, {affiliation,
  // address,phone}, {email} — yes 4. Publications: article{title,author1},
  // article{title,author2} -> two DIFFERENT signatures (different author
  // vertices) -> 2 article vertices. Total: 5 + 4 + (2+1+1+1) + 1 = 15.
  EXPECT_EQ(graph->num_vertices(), 15u);
  EXPECT_EQ(labels.Name(graph->vertex(graph->root()).label), "bib");
  EXPECT_EQ(graph->max_depth(), 4);
}

TEST(BisimBuilderTest, IdenticalSubtreesShareOneVertex) {
  LabelTable labels;
  auto graph = BuildFromXml(
      "<r><a><b/><c/></a><a><b/><c/></a><a><b/><c/></a></r>", &labels);
  ASSERT_TRUE(graph.ok());
  // r, a, b, c -> 4 vertices regardless of the three repetitions.
  EXPECT_EQ(graph->num_vertices(), 4u);
  EXPECT_EQ(graph->num_edges(), 3u);  // r->a, a->b, a->c
}

TEST(BisimBuilderTest, ChildOrderIrrelevant) {
  LabelTable labels;
  auto g1 = BuildFromXml("<r><x><a/><b/></x></r>", &labels);
  auto g2 = BuildFromXml("<r><x><b/><a/></x></r>", &labels);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g1->num_vertices(), g2->num_vertices());
  EXPECT_EQ(g1->num_edges(), g2->num_edges());
}

TEST(BisimBuilderTest, DuplicateChildrenDeduplicated) {
  LabelTable labels;
  auto graph = BuildFromXml("<r><a/><a/><a/></r>", &labels);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_vertices(), 2u);
  EXPECT_EQ(graph->vertex(graph->root()).children.size(), 1u);
}

TEST(BisimBuilderTest, DepthTracksLongestPath) {
  LabelTable labels;
  auto graph = BuildFromXml("<r><a><b><c/></b></a><d/></r>", &labels);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->max_depth(), 4);
  // Leaves have depth 1.
  for (BisimVertexId v = 0; v < graph->num_vertices(); ++v) {
    if (graph->vertex(v).children.empty()) {
      EXPECT_EQ(graph->vertex(v).depth, 1);
    }
  }
}

TEST(BisimBuilderTest, CloseCallbackSeesEveryElement) {
  LabelTable labels;
  auto doc = ParseXml("<r><a><b/></a><a><b/></a></r>", &labels);
  ASSERT_TRUE(doc.ok());
  DocumentEventStream stream(&*doc, 0, nullptr);
  BisimBuilder builder;
  int closes = 0;
  int roots = 0;
  auto graph = builder.Build(
      &stream, [&](BisimGraph*, BisimVertexId, NodeRef, bool is_root) {
        ++closes;
        roots += is_root;
        return Status::OK();
      });
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(closes, 5);  // r, a, b, a, b
  EXPECT_EQ(roots, 1);
}

// --- traveler / depth-limited patterns --------------------------------------

TEST(BisimTravelerTest, FullReplayRoundTrips) {
  LabelTable labels;
  auto graph = BuildFromXml(kBibXml, &labels);
  ASSERT_TRUE(graph.ok());
  // Unlimited traveler + rebuild must reproduce an isomorphic graph.
  auto rebuilt = BuildDepthLimitedPattern(*graph, graph->root(), 0);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(rebuilt->num_vertices(), graph->num_vertices());
  EXPECT_EQ(rebuilt->num_edges(), graph->num_edges());
}

TEST(BisimTravelerTest, DepthLimitTruncates) {
  LabelTable labels;
  auto graph = BuildFromXml(kBibXml, &labels);
  ASSERT_TRUE(graph.ok());
  auto limited = BuildDepthLimitedPattern(*graph, graph->root(), 2);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->max_depth(), 2);
  // Depth-2 pattern of bib: root + {article, book, www, inproceedings} as
  // leaf vertices. Both articles truncate to the same leaf signature.
  EXPECT_EQ(limited->num_vertices(), 5u);
}

TEST(BisimTravelerTest, TruncationMergesFormerlyDistinctVertices) {
  LabelTable labels;
  // Two a-subtrees differ only at depth 3; truncated at 2 they merge.
  auto graph = BuildFromXml("<r><a><b><x/></b></a><a><b><y/></b></a></r>",
                            &labels);
  ASSERT_TRUE(graph.ok());
  auto limited = BuildDepthLimitedPattern(*graph, graph->root(), 2);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->num_vertices(), 2u);  // r and a
}

TEST(BisimTravelerTest, SubpatternFromInnerVertex) {
  LabelTable labels;
  auto graph = BuildFromXml(kBibXml, &labels);
  ASSERT_TRUE(graph.ok());
  // Find the book vertex and expand it.
  BisimVertexId book = kInvalidVertex;
  for (BisimVertexId v = 0; v < graph->num_vertices(); ++v) {
    if (labels.Name(graph->vertex(v).label) == "book") book = v;
  }
  ASSERT_NE(book, kInvalidVertex);
  auto pattern = BuildDepthLimitedPattern(*graph, book, 2);
  ASSERT_TRUE(pattern.ok());
  EXPECT_EQ(labels.Name(pattern->vertex(pattern->root()).label), "book");
  EXPECT_EQ(pattern->max_depth(), 2);
}

TEST(ExpandedPatternSizeTest, MatchesManualCounts) {
  LabelTable labels;
  auto graph = BuildFromXml("<r><a><b/><b/></a><a><b/><b/></a></r>", &labels);
  ASSERT_TRUE(graph.ok());
  // Bisim: r -> a -> b. Expansion of r unlimited: r + a + b = 3 (children
  // deduplicate in the bisim graph, so expansion is over the DAG).
  EXPECT_EQ(ExpandedPatternSize(*graph, graph->root(), 0, 1000), 3u);
  EXPECT_EQ(ExpandedPatternSize(*graph, graph->root(), 1, 1000), 1u);
  EXPECT_EQ(ExpandedPatternSize(*graph, graph->root(), 2, 1000), 2u);
}

TEST(ExpandedPatternSizeTest, SaturatesAtCap) {
  // A DAG with exponential tree expansion needs two DISTINCT children per
  // level (identical subtrees would hash-cons into one child). Build the
  // graph directly: level i has an 'a' and a 'b' vertex, each pointing at
  // both level i-1 vertices, so expanding to a tree doubles per level.
  LabelTable labels;
  LabelId la = labels.Intern("a");
  LabelId lb = labels.Intern("b");
  BisimGraph graph;
  BisimVertexId prev_a = graph.AddVertex({la, {}, 1, std::nullopt});
  BisimVertexId prev_b = graph.AddVertex({lb, {}, 1, std::nullopt});
  for (int level = 2; level <= 16; ++level) {
    BisimVertexId a =
        graph.AddVertex({la, {prev_a, prev_b}, level, std::nullopt});
    BisimVertexId b =
        graph.AddVertex({lb, {prev_a, prev_b}, level, std::nullopt});
    prev_a = a;
    prev_b = b;
  }
  graph.set_root(prev_a);
  EXPECT_EQ(ExpandedPatternSize(graph, graph.root(), 0, 5000), 5000u);
  // A shallow limit keeps it small: 1 + 2 + 4 = 7 nodes at depth 3.
  EXPECT_EQ(ExpandedPatternSize(graph, graph.root(), 3, 5000), 7u);
}

TEST(BisimBuilderTest, MalformedStreamsRejected) {
  // A close without an open.
  struct BadStream : EventStream {
    int emitted = 0;
    bool Next(SaxEvent* e) override {
      if (emitted++ > 0) return false;
      e->kind = SaxEvent::Kind::kClose;
      e->label = 1;
      e->ref = {0, 0};
      return true;
    }
  } bad;
  BisimBuilder builder;
  EXPECT_FALSE(builder.Build(&bad).ok());

  // An open never closed.
  struct Unclosed : EventStream {
    int emitted = 0;
    bool Next(SaxEvent* e) override {
      if (emitted++ > 0) return false;
      e->kind = SaxEvent::Kind::kOpen;
      e->label = 1;
      e->ref = {0, 0};
      return true;
    }
  } unclosed;
  EXPECT_FALSE(builder.Build(&unclosed).ok());
}

}  // namespace
}  // namespace fix
