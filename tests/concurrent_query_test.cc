// Concurrent read-path tests: many threads querying one Database against
// single-threaded baselines, ExecuteMany determinism on all four generated
// datasets, sharded BufferPool fetches, and the PlanCache. These carry the
// `concurrency` ctest label so CI runs them in both the Release and TSan
// trees (tools/ci.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/database.h"
#include "datagen/datasets.h"
#include "query/plan_cache.h"
#include "query/xpath_parser.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace fix {
namespace {

class ConcurrentQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_conc_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

void GenerateSmallXMark(Corpus* corpus) {
  XMarkOptions o;
  o.num_items = 80;
  o.num_people = 90;
  o.num_open_auctions = 90;
  o.num_closed_auctions = 80;
  o.num_categories = 40;
  GenerateXMark(corpus, o);
}

// Eight threads replay a mixed workload — covered lookups through the
// unclustered and clustered indexes plus an uncovered query that falls back
// to the full scan — and every execution must reproduce the single-threaded
// baseline exactly (same NodeRefs in the same order).
TEST_F(ConcurrentQueryTest, StressMixedWorkloadMatchesBaseline) {
  Database db(dir_);
  GenerateSmallXMark(db.corpus());
  ASSERT_TRUE(db.Finalize().ok());

  IndexOptions unclustered;
  unclustered.depth_limit = 6;
  IndexOptions clustered = unclustered;
  clustered.clustered = true;
  IndexOptions shallow;
  shallow.depth_limit = 2;  // anything deeper is uncovered -> full scan
  ASSERT_TRUE(db.BuildIndex("u", unclustered, nullptr).ok());
  ASSERT_TRUE(db.BuildIndex("c", clustered, nullptr).ok());
  ASSERT_TRUE(db.BuildIndex("shallow", shallow, nullptr).ok());

  const std::vector<std::pair<std::string, std::string>> workload = {
      {"u", "//item/mailbox/mail"},
      {"u", "//closed_auction/annotation/description"},
      {"u", "//open_auction[seller]/annotation/description/text"},
      {"c", "//person/name"},
      {"c", "//item[name]/description"},
      {"shallow", "//item/mailbox/mail/text/emph"},
  };

  std::vector<std::vector<NodeRef>> baseline(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto stats = db.Query(workload[i].first, workload[i].second,
                          &baseline[i]);
    ASSERT_TRUE(stats.ok()) << workload[i].second << ": " << stats.status();
    if (workload[i].first == "shallow") {
      EXPECT_FALSE(stats->covered);
      EXPECT_FALSE(stats->used_index);
    }
  }

  constexpr int kThreads = 8;
  constexpr int kIterations = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Stagger starting offsets so threads hit different queries at once.
      for (int it = 0; it < kIterations; ++it) {
        for (size_t i = 0; i < workload.size(); ++i) {
          size_t w = (i + t) % workload.size();
          std::vector<NodeRef> results;
          auto stats = db.Query(workload[w].first, workload[w].second,
                                &results);
          if (!stats.ok()) {
            failures.fetch_add(1);
          } else if (results != baseline[w]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(db.plan_cache_stats().hits, 0u);
}

struct DatasetCase {
  const char* name;
  void (*generate)(Corpus*);
  int depth_limit;
  std::vector<const char*> xpaths;
};

void GenSmallTcmd(Corpus* c) {
  TcmdOptions o;
  o.num_docs = 60;
  GenerateTcmd(c, o);
}
void GenSmallDblp(Corpus* c) {
  DblpOptions o;
  o.num_publications = 400;
  GenerateDblp(c, o);
}
void GenSmallTreebank(Corpus* c) {
  TreebankOptions o;
  o.num_sentences = 150;
  GenerateTreebank(c, o);
}

// ExecuteMany with a thread pool must be byte-identical to both its own
// threads=1 mode and the plain sequential Query path, on every dataset
// family — this is the determinism contract in database.h.
TEST_F(ConcurrentQueryTest, ExecuteManyDeterministicAcrossDatasets) {
  const DatasetCase cases[] = {
      {"tcmd", GenSmallTcmd, 0,
       {"/article/prolog/authors/author/name", "//author/contact/email",
        "/article/body/section/p"}},
      {"dblp", GenSmallDblp, 6,
       {"//inproceedings/title", "//article[number]/author",
        "//dblp/inproceedings/author"}},
      {"xmark", GenerateSmallXMark, 6,
       {"//item/mailbox/mail", "//closed_auction/annotation/description",
        "//person/name"}},
      {"treebank", GenSmallTreebank, 6,
       {"//EMPTY/S/VP", "//EMPTY/S[VP]/NP", "//S/NP/PP"}},
  };

  for (const DatasetCase& c : cases) {
    SCOPED_TRACE(c.name);
    std::string subdir = dir_ + "/" + c.name;
    std::filesystem::create_directories(subdir);
    Database db(subdir);
    c.generate(db.corpus());
    ASSERT_TRUE(db.Finalize().ok());
    IndexOptions options;
    options.depth_limit = c.depth_limit;
    ASSERT_TRUE(db.BuildIndex("main", options, nullptr).ok());

    std::vector<std::string> xpaths(c.xpaths.begin(), c.xpaths.end());
    std::vector<std::vector<NodeRef>> sequential(xpaths.size());
    for (size_t i = 0; i < xpaths.size(); ++i) {
      ASSERT_TRUE(db.Query("main", xpaths[i], &sequential[i]).ok());
    }

    auto one = db.ExecuteMany("main", xpaths, /*threads=*/1);
    auto four = db.ExecuteMany("main", xpaths, /*threads=*/4);
    ASSERT_TRUE(one.ok()) << one.status();
    ASSERT_TRUE(four.ok()) << four.status();
    ASSERT_EQ(one->size(), xpaths.size());
    ASSERT_EQ(four->size(), xpaths.size());
    for (size_t i = 0; i < xpaths.size(); ++i) {
      SCOPED_TRACE(xpaths[i]);
      ASSERT_TRUE((*one)[i].status.ok());
      ASSERT_TRUE((*four)[i].status.ok());
      EXPECT_EQ((*one)[i].results, sequential[i]);
      EXPECT_EQ((*four)[i].results, sequential[i]);
      EXPECT_EQ((*one)[i].stats.result_count, sequential[i].size());
      EXPECT_EQ((*four)[i].stats.result_count, sequential[i].size());
    }
  }
}

// A parse failure in one batch entry must not fail its batchmates; an
// unknown index name must fail the whole batch.
TEST_F(ConcurrentQueryTest, ExecuteManyIsolatesPerQueryErrors) {
  Database db(dir_);
  ASSERT_TRUE(db.AddXml("<a><b><c/></b></a>").ok());
  ASSERT_TRUE(db.Finalize().ok());
  ASSERT_TRUE(db.BuildIndex("main", IndexOptions{}, nullptr).ok());

  auto outcomes =
      db.ExecuteMany("main", {"//a/b", "not an xpath", "//b/c"}, 2);
  ASSERT_TRUE(outcomes.ok());
  ASSERT_EQ(outcomes->size(), 3u);
  EXPECT_TRUE((*outcomes)[0].status.ok());
  EXPECT_EQ((*outcomes)[1].status.code(), StatusCode::kParseError);
  EXPECT_TRUE((*outcomes)[2].status.ok());
  EXPECT_EQ((*outcomes)[2].results.size(), 1u);

  EXPECT_FALSE(db.ExecuteMany("nope", {"//a"}, 2).ok());
}

// The uncovered-query fallback must keep the lookup-phase stats it paid for
// (lookup_ms, entries scanned) instead of reporting a free full scan.
TEST_F(ConcurrentQueryTest, FullScanFallbackKeepsLookupStats) {
  Database db(dir_);
  GenerateSmallXMark(db.corpus());
  ASSERT_TRUE(db.Finalize().ok());
  IndexOptions shallow;
  shallow.depth_limit = 2;
  ASSERT_TRUE(db.BuildIndex("shallow", shallow, nullptr).ok());

  std::vector<NodeRef> results;
  auto stats = db.Query("shallow", "//item/mailbox/mail/text/emph", &results);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_FALSE(stats->covered);
  EXPECT_FALSE(stats->used_index);
  EXPECT_GT(stats->lookup_ms, 0.0);
  EXPECT_GT(stats->result_count, 0u);
}

// Many threads fetching a disjoint-then-overlapping page set through a
// multi-shard pool must always observe the bytes that were written, and the
// atomic counters must balance.
TEST_F(ConcurrentQueryTest, BufferPoolConcurrentFetchesSeeCorrectBytes) {
  PageFile file;
  ASSERT_TRUE(file.Open(dir_ + "/pool.pages", true).ok());
  BufferPool pool(&file, /*capacity=*/64);
  EXPECT_GT(pool.num_shards(), 1u);

  constexpr int kPages = 200;
  std::vector<PageId> ids;
  ids.reserve(kPages);
  for (int i = 0; i < kPages; ++i) {
    auto page = pool.New();
    ASSERT_TRUE(page.ok());
    std::memcpy(page->data(), &i, sizeof(i));
    page->MarkDirty();
    ids.push_back(page->page_id());
  }
  ASSERT_TRUE(pool.FlushAll().ok());

  constexpr int kThreads = 8;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 5; ++round) {
        for (int i = t; i < kPages; i += 2) {  // overlapping slices
          auto page = pool.Fetch(ids[i]);
          if (!page.ok()) {
            bad.fetch_add(1);
            continue;
          }
          int got = -1;
          std::memcpy(&got, page->data(), sizeof(got));
          if (got != i) bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(pool.hits(), 0u);
}

TEST_F(ConcurrentQueryTest, PlanCacheHitMissEviction) {
  PlanCache cache(/*shard_capacity=*/2);
  auto plan = ParseXPath("//a/b");
  ASSERT_TRUE(plan.ok());

  EXPECT_FALSE(cache.Lookup("//a/b").has_value());
  cache.Insert("//a/b", *plan);
  EXPECT_TRUE(cache.Lookup("//a/b").has_value());
  cache.Insert("//a/b", *plan);  // duplicate insert is a no-op
  EXPECT_EQ(cache.GetStats().entries, 1u);

  // Flood well past capacity: entries stay bounded, evictions happen.
  for (int i = 0; i < 100; ++i) {
    cache.Insert("//q" + std::to_string(i), *plan);
  }
  PlanCache::Stats stats = cache.GetStats();
  EXPECT_LE(stats.entries, 2 * PlanCache::kNumShards);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);

  cache.Clear();
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST_F(ConcurrentQueryTest, PlanCacheConcurrentMixedUse) {
  PlanCache cache;
  auto plan = ParseXPath("//a/b");
  ASSERT_TRUE(plan.ok());

  constexpr int kThreads = 8;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        std::string key = "//k" + std::to_string((i + t) % 32);
        if (auto hit = cache.Lookup(key)) {
          if (hit->steps.size() != plan->steps.size()) bad.fetch_add(1);
        } else {
          cache.Insert(key, *plan);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_LE(cache.GetStats().entries, 32u);
}

}  // namespace
}  // namespace fix
