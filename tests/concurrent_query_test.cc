// Concurrent read-path tests: many threads querying one Database against
// single-threaded baselines, ExecuteMany determinism on all four generated
// datasets, sharded BufferPool fetches, and the PlanCache. These carry the
// `concurrency` ctest label so CI runs them in both the Release and TSan
// trees (tools/ci.sh).

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/fix_index.h"
#include "datagen/datasets.h"
#include "query/plan_cache.h"
#include "query/xpath_parser.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace fix {
namespace {

class ConcurrentQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_conc_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

void GenerateSmallXMark(Corpus* corpus) {
  XMarkOptions o;
  o.num_items = 80;
  o.num_people = 90;
  o.num_open_auctions = 90;
  o.num_closed_auctions = 80;
  o.num_categories = 40;
  GenerateXMark(corpus, o);
}

// Eight threads replay a mixed workload — covered lookups through the
// unclustered and clustered indexes plus an uncovered query that falls back
// to the full scan — and every execution must reproduce the single-threaded
// baseline exactly (same NodeRefs in the same order).
TEST_F(ConcurrentQueryTest, StressMixedWorkloadMatchesBaseline) {
  Database db(dir_);
  GenerateSmallXMark(db.corpus());
  ASSERT_TRUE(db.Finalize().ok());

  IndexOptions unclustered;
  unclustered.depth_limit = 6;
  IndexOptions clustered = unclustered;
  clustered.clustered = true;
  IndexOptions shallow;
  shallow.depth_limit = 2;  // anything deeper is uncovered -> full scan
  ASSERT_TRUE(db.BuildIndex("u", unclustered, nullptr).ok());
  ASSERT_TRUE(db.BuildIndex("c", clustered, nullptr).ok());
  ASSERT_TRUE(db.BuildIndex("shallow", shallow, nullptr).ok());

  const std::vector<std::pair<std::string, std::string>> workload = {
      {"u", "//item/mailbox/mail"},
      {"u", "//closed_auction/annotation/description"},
      {"u", "//open_auction[seller]/annotation/description/text"},
      {"c", "//person/name"},
      {"c", "//item[name]/description"},
      {"shallow", "//item/mailbox/mail/text/emph"},
  };

  std::vector<std::vector<NodeRef>> baseline(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto stats = db.Query(workload[i].first, workload[i].second,
                          &baseline[i]);
    ASSERT_TRUE(stats.ok()) << workload[i].second << ": " << stats.status();
    if (workload[i].first == "shallow") {
      EXPECT_FALSE(stats->covered);
      EXPECT_FALSE(stats->used_index);
    }
  }

  constexpr int kThreads = 8;
  constexpr int kIterations = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Stagger starting offsets so threads hit different queries at once.
      for (int it = 0; it < kIterations; ++it) {
        for (size_t i = 0; i < workload.size(); ++i) {
          size_t w = (i + t) % workload.size();
          std::vector<NodeRef> results;
          auto stats = db.Query(workload[w].first, workload[w].second,
                                &results);
          if (!stats.ok()) {
            failures.fetch_add(1);
          } else if (results != baseline[w]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(db.plan_cache_stats().hits, 0u);
}

struct DatasetCase {
  const char* name;
  void (*generate)(Corpus*);
  int depth_limit;
  std::vector<const char*> xpaths;
};

void GenSmallTcmd(Corpus* c) {
  TcmdOptions o;
  o.num_docs = 60;
  GenerateTcmd(c, o);
}
void GenSmallDblp(Corpus* c) {
  DblpOptions o;
  o.num_publications = 400;
  GenerateDblp(c, o);
}
void GenSmallTreebank(Corpus* c) {
  TreebankOptions o;
  o.num_sentences = 150;
  GenerateTreebank(c, o);
}

// ExecuteMany with a thread pool must be byte-identical to both its own
// threads=1 mode and the plain sequential Query path, on every dataset
// family — this is the determinism contract in database.h.
TEST_F(ConcurrentQueryTest, ExecuteManyDeterministicAcrossDatasets) {
  const DatasetCase cases[] = {
      {"tcmd", GenSmallTcmd, 0,
       {"/article/prolog/authors/author/name", "//author/contact/email",
        "/article/body/section/p"}},
      {"dblp", GenSmallDblp, 6,
       {"//inproceedings/title", "//article[number]/author",
        "//dblp/inproceedings/author"}},
      {"xmark", GenerateSmallXMark, 6,
       {"//item/mailbox/mail", "//closed_auction/annotation/description",
        "//person/name"}},
      {"treebank", GenSmallTreebank, 6,
       {"//EMPTY/S/VP", "//EMPTY/S[VP]/NP", "//S/NP/PP"}},
  };

  for (const DatasetCase& c : cases) {
    SCOPED_TRACE(c.name);
    std::string subdir = dir_ + "/" + c.name;
    std::filesystem::create_directories(subdir);
    Database db(subdir);
    c.generate(db.corpus());
    ASSERT_TRUE(db.Finalize().ok());
    IndexOptions options;
    options.depth_limit = c.depth_limit;
    ASSERT_TRUE(db.BuildIndex("main", options, nullptr).ok());

    std::vector<std::string> xpaths(c.xpaths.begin(), c.xpaths.end());
    std::vector<std::vector<NodeRef>> sequential(xpaths.size());
    for (size_t i = 0; i < xpaths.size(); ++i) {
      ASSERT_TRUE(db.Query("main", xpaths[i], &sequential[i]).ok());
    }

    auto one = db.ExecuteMany("main", xpaths, /*threads=*/1);
    auto four = db.ExecuteMany("main", xpaths, /*threads=*/4);
    ASSERT_TRUE(one.ok()) << one.status();
    ASSERT_TRUE(four.ok()) << four.status();
    ASSERT_EQ(one->size(), xpaths.size());
    ASSERT_EQ(four->size(), xpaths.size());
    for (size_t i = 0; i < xpaths.size(); ++i) {
      SCOPED_TRACE(xpaths[i]);
      ASSERT_TRUE((*one)[i].status.ok());
      ASSERT_TRUE((*four)[i].status.ok());
      EXPECT_EQ((*one)[i].results, sequential[i]);
      EXPECT_EQ((*four)[i].results, sequential[i]);
      EXPECT_EQ((*one)[i].stats.result_count, sequential[i].size());
      EXPECT_EQ((*four)[i].stats.result_count, sequential[i].size());
    }
  }
}

// A parse failure in one batch entry must not fail its batchmates; an
// unknown index name must fail the whole batch.
TEST_F(ConcurrentQueryTest, ExecuteManyIsolatesPerQueryErrors) {
  Database db(dir_);
  ASSERT_TRUE(db.AddXml("<a><b><c/></b></a>").ok());
  ASSERT_TRUE(db.Finalize().ok());
  ASSERT_TRUE(db.BuildIndex("main", IndexOptions{}, nullptr).ok());

  auto outcomes =
      db.ExecuteMany("main", {"//a/b", "not an xpath", "//b/c"}, 2);
  ASSERT_TRUE(outcomes.ok());
  ASSERT_EQ(outcomes->size(), 3u);
  EXPECT_TRUE((*outcomes)[0].status.ok());
  EXPECT_EQ((*outcomes)[1].status.code(), StatusCode::kParseError);
  EXPECT_TRUE((*outcomes)[2].status.ok());
  EXPECT_EQ((*outcomes)[2].results.size(), 1u);

  EXPECT_FALSE(db.ExecuteMany("nope", {"//a"}, 2).ok());
}

// The uncovered-query fallback must keep the lookup-phase stats it paid for
// (lookup_ms, entries scanned) instead of reporting a free full scan.
TEST_F(ConcurrentQueryTest, FullScanFallbackKeepsLookupStats) {
  Database db(dir_);
  GenerateSmallXMark(db.corpus());
  ASSERT_TRUE(db.Finalize().ok());
  IndexOptions shallow;
  shallow.depth_limit = 2;
  ASSERT_TRUE(db.BuildIndex("shallow", shallow, nullptr).ok());

  std::vector<NodeRef> results;
  auto stats = db.Query("shallow", "//item/mailbox/mail/text/emph", &results);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_FALSE(stats->covered);
  EXPECT_FALSE(stats->used_index);
  EXPECT_GT(stats->lookup_ms, 0.0);
  EXPECT_GT(stats->result_count, 0u);
}

// Many threads fetching a disjoint-then-overlapping page set through a
// multi-shard pool must always observe the bytes that were written, and the
// atomic counters must balance.
TEST_F(ConcurrentQueryTest, BufferPoolConcurrentFetchesSeeCorrectBytes) {
  PageFile file;
  ASSERT_TRUE(file.Open(dir_ + "/pool.pages", true).ok());
  BufferPool pool(&file, /*capacity=*/64);
  EXPECT_GT(pool.num_shards(), 1u);

  constexpr int kPages = 200;
  std::vector<PageId> ids;
  ids.reserve(kPages);
  for (int i = 0; i < kPages; ++i) {
    auto page = pool.New();
    ASSERT_TRUE(page.ok());
    std::memcpy(page->data(), &i, sizeof(i));
    page->MarkDirty();
    ids.push_back(page->page_id());
  }
  ASSERT_TRUE(pool.FlushAll().ok());

  constexpr int kThreads = 8;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 5; ++round) {
        for (int i = t; i < kPages; i += 2) {  // overlapping slices
          auto page = pool.Fetch(ids[i]);
          if (!page.ok()) {
            bad.fetch_add(1);
            continue;
          }
          int got = -1;
          std::memcpy(&got, page->data(), sizeof(got));
          if (got != i) bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);

  // The threaded phase alone cannot guarantee a hit: with 200 pages cycling
  // through 64 frames, fully serialized threads hit LRU's worst case (every
  // fetch a miss). A pinned page cannot be evicted, so re-fetching it while
  // the first handle is live is a hit regardless of scheduling.
  auto pinned = pool.Fetch(ids[0]);
  ASSERT_TRUE(pinned.ok());
  auto again = pool.Fetch(ids[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_GT(pool.hits(), 0u);
}

TEST_F(ConcurrentQueryTest, PlanCacheHitMissEviction) {
  PlanCache cache(/*shard_capacity=*/2);
  auto plan = ParseXPath("//a/b");
  ASSERT_TRUE(plan.ok());

  EXPECT_FALSE(cache.Lookup("//a/b").has_value());
  cache.Insert("//a/b", *plan);
  EXPECT_TRUE(cache.Lookup("//a/b").has_value());
  cache.Insert("//a/b", *plan);  // duplicate insert is a no-op
  EXPECT_EQ(cache.GetStats().entries, 1u);

  // Flood well past capacity: entries stay bounded, evictions happen.
  for (int i = 0; i < 100; ++i) {
    cache.Insert("//q" + std::to_string(i), *plan);
  }
  PlanCache::Stats stats = cache.GetStats();
  EXPECT_LE(stats.entries, 2 * PlanCache::kNumShards);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);

  cache.Clear();
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST_F(ConcurrentQueryTest, PlanCacheConcurrentMixedUse) {
  PlanCache cache;
  auto plan = ParseXPath("//a/b");
  ASSERT_TRUE(plan.ok());

  constexpr int kThreads = 8;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        std::string key = "//k" + std::to_string((i + t) % 32);
        if (auto hit = cache.Lookup(key)) {
          if (hit->steps.size() != plan->steps.size()) bad.fetch_add(1);
        } else {
          cache.Insert(key, *plan);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_LE(cache.GetStats().entries, 32u);
}

std::string Key8(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08d", i);
  return std::string(buf, 8);
}

// Snapshot isolation at the B+-tree layer, deterministically: an iterator
// pinned on generation N must keep yielding exactly generation N's entries
// — byte-identical, in order — while the writer prepares, commits, and
// publishes generation N+1 underneath it. The second batch interleaves odd
// keys between the first batch's even keys so nearly every gen-N leaf is
// superseded by COW; the pinned snapshot is what keeps those retired pages
// from being recycled under the iterator.
TEST_F(ConcurrentQueryTest, BTreeIteratorPinsGenerationAcrossCommit) {
  PageFile file;
  ASSERT_TRUE(file.Open(dir_ + "/snap.pages", true).ok());
  BufferPool pool(&file, /*capacity=*/64);
  auto tree = BTree::Create(&pool, /*key_size=*/8, /*value_size=*/8);
  ASSERT_TRUE(tree.ok()) << tree.status();

  constexpr int kPerBatch = 100;
  ASSERT_TRUE(tree->BeginBatch().ok());
  for (int i = 0; i < kPerBatch; ++i) {  // generation 1: even keys
    ASSERT_TRUE(tree->Insert(Key8(2 * i), Key8(2 * i)).ok());
  }
  auto c1 = tree->PrepareCommit();
  ASSERT_TRUE(c1.ok()) << c1.status();
  tree->FinalizeCommit();
  const uint64_t gen1 = tree->generation();

  // Pin generation 1 and consume a prefix before the writer moves on.
  auto pinned = tree->SeekFirst();
  ASSERT_TRUE(pinned.ok()) << pinned.status();
  std::vector<std::string> seen;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pinned->Valid());
    seen.emplace_back(pinned->key());
    ASSERT_TRUE(pinned->Next().ok());
  }

  ASSERT_TRUE(tree->BeginBatch().ok());
  for (int i = 0; i < kPerBatch; ++i) {  // generation 2: odd keys between
    ASSERT_TRUE(tree->Insert(Key8(2 * i + 1), Key8(2 * i + 1)).ok());
  }
  auto c2 = tree->PrepareCommit();
  ASSERT_TRUE(c2.ok()) << c2.status();
  tree->FinalizeCommit();
  EXPECT_EQ(tree->generation(), gen1 + 1);
  EXPECT_EQ(tree->num_entries(), uint64_t{2 * kPerBatch});

  // The pinned iterator finishes its scan against generation 1: all even
  // keys, none of generation 2's odd keys, values intact.
  while (pinned->Valid()) {
    seen.emplace_back(pinned->key());
    EXPECT_EQ(pinned->value(), pinned->key());
    ASSERT_TRUE(pinned->Next().ok());
  }
  ASSERT_EQ(seen.size(), size_t{kPerBatch});
  for (int i = 0; i < kPerBatch; ++i) EXPECT_EQ(seen[i], Key8(2 * i));

  // A fresh iterator sees generation 2: both batches, interleaved.
  auto fresh = tree->SeekFirst();
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  int count = 0;
  while (fresh->Valid()) {
    EXPECT_EQ(fresh->key(), Key8(count));
    ++count;
    ASSERT_TRUE(fresh->Next().ok());
  }
  EXPECT_EQ(count, 2 * kPerBatch);
}

std::string SectionDoc(int i) {
  std::string doc = "<article><prolog><title>conc" + std::to_string(i) +
                    "</title><authors><author><name>writer</name>"
                    "<contact><email>w" + std::to_string(i) +
                    "@x</email></contact></author></authors></prolog><body>";
  for (int s = 0; s <= i; ++s) {
    doc += "<section><title>s</title><p>snapshot body text</p></section>";
  }
  doc += "</body><epilog><references><a_id>r</a_id></references>"
         "</epilog></article>";
  return doc;
}

// Snapshot isolation end to end: reader threads query at full index service
// while a single writer commits generations N+1..N+5 (one InsertDocument
// per new document). Every result a reader observes must be byte-identical
// to one of the six sequential index states — captured up front from a
// deterministic twin database — and the state a thread observes for a given
// query may only move forward, because published generations are monotonic.
// No fault injection here: this file runs under TSan (`concurrency` label),
// which is exactly the point — readers during commit must be race-free.
TEST_F(ConcurrentQueryTest, ReadersSeeOnlyCommittedGenerationsDuringInserts) {
  constexpr int kExtraDocs = 5;
  const std::vector<std::string> xpaths = {
      "/article/body/section/p", "/article/prolog/authors/author/name",
      "//author/contact/email"};
  const size_t kQ = xpaths.size();

  // Both databases are built identically: generated corpus, index over it,
  // then the extra documents appended to the corpus (before any reader
  // thread exists — corpus mutation is writer-exclusive) but not yet
  // indexed. Identical construction order means identical NodeRefs.
  std::vector<uint32_t> twin_ids, main_ids;
  auto setup = [&](const std::string& sub, std::vector<uint32_t>* ids) {
    std::string d = dir_ + "/" + sub;
    std::filesystem::create_directories(d);
    auto db = std::make_unique<Database>(d);
    TcmdOptions o;
    o.num_docs = 40;
    GenerateTcmd(db->corpus(), o);
    EXPECT_TRUE(db->Finalize().ok());
    auto built = db->BuildIndex("main", IndexOptions{}, nullptr);
    EXPECT_TRUE(built.ok()) << built.status();
    for (int i = 0; i < kExtraDocs; ++i) {
      auto id = db->AddXml(SectionDoc(i));
      EXPECT_TRUE(id.ok());
      ids->push_back(*id);
    }
    return db;
  };

  // Twin: insert sequentially, capturing the answer set of every state k
  // (= after k inserts). states[k][q] is the only thing a reader running
  // against the main database is ever allowed to see for query q.
  auto twin = setup("twin", &twin_ids);
  std::vector<std::vector<std::vector<NodeRef>>> states(
      kExtraDocs + 1, std::vector<std::vector<NodeRef>>(kQ));
  for (int k = 0; k <= kExtraDocs; ++k) {
    for (size_t q = 0; q < kQ; ++q) {
      auto stats = twin->Query("main", xpaths[q], &states[k][q]);
      ASSERT_TRUE(stats.ok()) << stats.status();
      ASSERT_FALSE(stats->degraded);
    }
    if (k < kExtraDocs) {
      ASSERT_TRUE(
          twin->index("main")->InsertDocument(twin_ids[k]).ok());
    }
  }
  // The new documents must actually change the answers, or the isolation
  // check below would be vacuous.
  ASSERT_NE(states[0][0], states[kExtraDocs][0]);

  auto db = setup("main", &main_ids);
  ASSERT_EQ(main_ids, twin_ids);
  FixIndex* index = db->index("main");
  ASSERT_NE(index, nullptr);

  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};   // query errors or degraded answers
  std::atomic<int> unmatched{0};  // result equal to no committed state
  std::atomic<int> regressed{0};  // observed state or generation went back
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      std::vector<int> last_state(kQ, 0);
      uint64_t last_gen = 0;
      // Keep reading until the writer is done, then one more full pass so
      // the final state is observed too.
      for (bool final_pass = false; !final_pass;) {
        final_pass = done.load();
        // generation()/num_entries() are the reader-safe stat surface; they
        // must be callable mid-commit (TSan guards this claim).
        uint64_t gen = index->generation();
        (void)index->num_entries();
        if (gen < last_gen) regressed.fetch_add(1);
        last_gen = gen;
        for (size_t q = 0; q < kQ; ++q) {
          std::vector<NodeRef> results;
          auto stats = db->Query("main", xpaths[q], &results);
          if (!stats.ok() || stats->degraded) {
            failures.fetch_add(1);
            continue;
          }
          int match = -1;
          for (int k = 0; k <= kExtraDocs; ++k) {
            if (results == states[k][q]) {
              match = k;
              break;
            }
          }
          if (match < 0) {
            unmatched.fetch_add(1);
          } else if (match < last_state[q]) {
            regressed.fetch_add(1);
          } else {
            last_state[q] = match;
          }
        }
      }
    });
  }

  for (int k = 0; k < kExtraDocs; ++k) {
    ASSERT_TRUE(index->InsertDocument(main_ids[k]).ok());
    std::this_thread::yield();
  }
  done.store(true);
  for (std::thread& th : readers) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(unmatched.load(), 0);
  EXPECT_EQ(regressed.load(), 0);
  EXPECT_EQ(index->generation(), twin->index("main")->generation());
  for (size_t q = 0; q < kQ; ++q) {
    std::vector<NodeRef> results;
    ASSERT_TRUE(db->Query("main", xpaths[q], &results).ok());
    EXPECT_EQ(results, states[kExtraDocs][q]) << xpaths[q];
  }
}

}  // namespace
}  // namespace fix
