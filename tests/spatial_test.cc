// Tests for the kd-tree SpatialProbe (Section 8 extension): equivalence
// with the brute-force dominance filter and pruning of probe work.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>

#include "core/corpus.h"
#include "core/fix_index.h"
#include "core/spatial_probe.h"
#include "datagen/datasets.h"

namespace fix {
namespace {

class SpatialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_spatial_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
    XMarkOptions gen;
    gen.num_items = 48;
    gen.num_people = 48;
    gen.num_open_auctions = 48;
    gen.num_closed_auctions = 48;
    gen.num_categories = 24;
    GenerateXMark(&corpus_, gen);
    IndexOptions options;
    options.depth_limit = 4;
    options.path = dir_ + "/s.fix";
    auto index = FixIndex::Build(&corpus_, options, nullptr);
    ASSERT_TRUE(index.ok());
    index_ = std::make_unique<FixIndex>(std::move(index).value());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Brute-force reference: scan the B+-tree and filter.
  std::vector<SpatialProbe::Hit> BruteForce(LabelId label, double a,
                                            double b) {
    std::vector<SpatialProbe::Hit> out;
    auto it = index_->btree()->SeekFirst();
    EXPECT_TRUE(it.ok());
    while (it->Valid()) {
      FeatureKey key = DecodeFeatureKey(it->key());
      if (key.root_label == label && key.lambda_max >= a &&
          key.lambda2 >= b) {
        out.push_back({key, DecodeIndexValue(it->value())});
      }
      EXPECT_TRUE(it->Next().ok());
    }
    return out;
  }

  static std::set<uint32_t> Seqs(const std::vector<SpatialProbe::Hit>& hits) {
    std::set<uint32_t> out;
    for (const auto& h : hits) out.insert(h.key.seq);
    return out;
  }

  std::string dir_;
  Corpus corpus_;
  std::unique_ptr<FixIndex> index_;
};

TEST_F(SpatialTest, BuildsOverWholeIndex) {
  auto probe = SpatialProbe::FromBTree(index_->btree());
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->total(), index_->num_entries());
  EXPECT_GT(probe->ApproxBytes(), 0u);
}

TEST_F(SpatialTest, DominanceQueryMatchesBruteForce) {
  auto probe = SpatialProbe::FromBTree(index_->btree());
  ASSERT_TRUE(probe.ok());
  const char* names[] = {"item", "open_auction", "listitem", "mail",
                         "description", "person"};
  const double bounds[][2] = {{0, 0},   {1, 0},    {5, 1},
                              {10, 3},  {50, 10},  {2.5, 2.5}};
  for (const char* name : names) {
    LabelId label = corpus_.labels()->Find(name);
    ASSERT_NE(label, kInvalidLabel) << name;
    for (const auto& bound : bounds) {
      auto got = probe->Query(label, bound[0], bound[1]);
      auto want = BruteForce(label, bound[0], bound[1]);
      EXPECT_EQ(Seqs(got), Seqs(want))
          << name << " a=" << bound[0] << " b=" << bound[1];
    }
  }
}

TEST_F(SpatialTest, UnknownLabelEmpty) {
  auto probe = SpatialProbe::FromBTree(index_->btree());
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->Query(999999, 0, 0).empty());
}

TEST_F(SpatialTest, SelectiveProbesVisitFewNodes) {
  auto probe = SpatialProbe::FromBTree(index_->btree());
  ASSERT_TRUE(probe.ok());
  LabelId item = corpus_.labels()->Find("item");
  ASSERT_NE(item, kInvalidLabel);

  // An unselective probe visits ~everything; a highly selective one (both
  // bounds far out) must prune most of the tree.
  uint64_t visited_all = 0;
  auto everything = probe->Query(item, 0, 0, &visited_all);
  uint64_t visited_tight = 0;
  auto tight = probe->Query(item, 1e8, 1e8, &visited_tight);
  EXPECT_TRUE(tight.empty());
  EXPECT_GT(visited_all, 0u);
  EXPECT_LE(visited_tight, 2u);  // bounding boxes kill the root immediately
  EXPECT_GE(everything.size(), tight.size());
}

TEST_F(SpatialTest, TinyTrees) {
  // Degenerate sizes: empty corpus label and a single-entry label.
  Corpus tiny;
  ASSERT_TRUE(tiny.AddXml("<only><child/></only>").ok());
  IndexOptions options;
  options.depth_limit = 2;
  options.path = dir_ + "/tiny.fix";
  auto index = FixIndex::Build(&tiny, options, nullptr);
  ASSERT_TRUE(index.ok());
  auto probe = SpatialProbe::FromBTree(index->btree());
  ASSERT_TRUE(probe.ok());
  LabelId only = tiny.labels()->Find("only");
  EXPECT_EQ(probe->Query(only, 0, 0).size(), 1u);
  EXPECT_EQ(probe->Query(only, 1e9, 0).size(), 0u);
}

}  // namespace
}  // namespace fix
