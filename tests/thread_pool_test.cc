// ThreadPool / ParallelFor tests. Registered under the `concurrency` ctest
// label so tools/ci.sh can run them under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "common/thread_pool.h"

namespace fix {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 20 * (round + 1));
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No Wait: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexInline) {
  // Null pool => inline execution on the caller.
  std::vector<int> hits(97, 0);
  ParallelFor(nullptr, hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexPooled) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  ParallelFor(&pool, hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelFor(&pool, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(&pool, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;  // n == 1 runs inline: no race on the plain int
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForsShareOnePool) {
  // Two back-to-back ParallelFor calls on the same pool must not steal each
  // other's completion signal (each call carries a private latch).
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<uint64_t> sum{0};
    ParallelFor(&pool, 128, [&](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 128u * 127u / 2);
  }
}

TEST(ThreadPoolTest, SubmittersFromManyThreads) {
  // Tasks may themselves submit (the pattern a nested pipeline would use).
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      for (int j = 0; j < 10; ++j) {
        pool.Submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace fix
