// Fault-injection tests for the spatial-probe sidecar (`<index>.spatial`):
// a damaged or missing sidecar must never produce wrong answers — opening
// falls back to the B+-tree probe engine, queries return exactly the
// baseline results, and the damage is visible to the offline scrub
// (SpatialProbe::InspectSidecar, the check fixdb_scrub runs). A later COW
// commit rebuilds and re-persists the sidecar, healing the degradation.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/spatial_probe.h"

namespace fix {
namespace {

class SpatialSidecarTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_spatial_sidecar_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    Database db(dir_);
    for (int i = 0; i < 40; ++i) {
      auto id = db.AddXml(
          "<dblp><inproceedings><author>A" + std::to_string(i) +
          "</author><title>T<i>x</i></title><url>u" + std::to_string(i) +
          "</url></inproceedings></dblp>");
      ASSERT_TRUE(id.ok());
    }
    ASSERT_TRUE(db.Save().ok());
    IndexOptions options;
    options.depth_limit = 4;
    auto index = db.BuildIndex("main", options);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE(std::filesystem::exists(SidecarPath()));

    // Ground truth from the freshly built (spatial-resident) index.
    baseline_ = RunQuery(&db);
    ASSERT_FALSE(baseline_.empty());
  }

  std::string SidecarPath() const { return dir_ + "/main.fix.spatial"; }

  std::vector<NodeRef> RunQuery(Database* db) {
    std::vector<NodeRef> results;
    auto stats = db->Query("main", "//inproceedings/title/i", &results);
    EXPECT_TRUE(stats.ok());
    return results;
  }

  /// Reopens the database and checks the invariant this whole test file is
  /// about: the index attaches healthy (never quarantined for sidecar
  /// damage), answers match the baseline exactly, and the spatial probe is
  /// resident iff the sidecar was adoptable.
  void ExpectFallback(bool expect_spatial) {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_FALSE((*db)->IsDegraded("main"));
    FixIndex* index = (*db)->index("main");
    ASSERT_NE(index, nullptr);
    if (expect_spatial) {
      EXPECT_NE(index->spatial_probe(), nullptr);
    } else {
      EXPECT_EQ(index->spatial_probe(), nullptr);
    }
    auto results = RunQuery(db->get());
    ASSERT_EQ(results.size(), baseline_.size());
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].doc_id, baseline_[i].doc_id);
      EXPECT_EQ(results[i].node_id, baseline_[i].node_id);
    }
  }

  void CorruptByte(uint64_t offset) {
    std::fstream f(SidecarPath(),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  }

  std::string dir_;
  std::vector<NodeRef> baseline_;
};

TEST_F(SpatialSidecarTest, CleanSidecarAdoptedOnOpen) {
  auto info = SpatialProbe::InspectSidecar(SidecarPath());
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_GT(info->total, 0u);
  ExpectFallback(/*expect_spatial=*/true);
}

TEST_F(SpatialSidecarTest, BitFlipInPayloadFallsBackToBTree) {
  const uint64_t size = std::filesystem::file_size(SidecarPath());
  CorruptByte(size / 2);  // payload byte → CRC mismatch
  auto info = SpatialProbe::InspectSidecar(SidecarPath());
  EXPECT_FALSE(info.ok());
  EXPECT_FALSE(info.status().IsNotFound());  // scrub reports CORRUPT
  ExpectFallback(/*expect_spatial=*/false);
}

TEST_F(SpatialSidecarTest, BitFlipInHeaderFallsBackToBTree) {
  CorruptByte(1);  // magic byte
  auto info = SpatialProbe::InspectSidecar(SidecarPath());
  EXPECT_FALSE(info.ok());
  EXPECT_FALSE(info.status().IsNotFound());
  ExpectFallback(/*expect_spatial=*/false);
}

TEST_F(SpatialSidecarTest, TruncatedPayloadFallsBackToBTree) {
  const uint64_t size = std::filesystem::file_size(SidecarPath());
  std::filesystem::resize_file(SidecarPath(), size / 2);
  auto info = SpatialProbe::InspectSidecar(SidecarPath());
  EXPECT_FALSE(info.ok());
  EXPECT_FALSE(info.status().IsNotFound());
  ExpectFallback(/*expect_spatial=*/false);
}

TEST_F(SpatialSidecarTest, TruncatedBelowHeaderFallsBackToBTree) {
  std::filesystem::resize_file(SidecarPath(), 7);
  auto info = SpatialProbe::InspectSidecar(SidecarPath());
  EXPECT_FALSE(info.ok());
  EXPECT_FALSE(info.status().IsNotFound());
  ExpectFallback(/*expect_spatial=*/false);
}

TEST_F(SpatialSidecarTest, MissingSidecarIsCleanFallback) {
  std::filesystem::remove(SidecarPath());
  auto info = SpatialProbe::InspectSidecar(SidecarPath());
  EXPECT_FALSE(info.ok());
  EXPECT_TRUE(info.status().IsNotFound());  // absent is fine, not damage
  ExpectFallback(/*expect_spatial=*/false);
}

TEST_F(SpatialSidecarTest, CommitHealsCorruptSidecar) {
  const uint64_t size = std::filesystem::file_size(SidecarPath());
  CorruptByte(size / 2);
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    FixIndex* index = (*db)->index("main");
    ASSERT_NE(index, nullptr);
    EXPECT_EQ(index->spatial_probe(), nullptr);  // fell back
    // One COW commit rebuilds the kd-tree snapshot and re-persists it.
    auto id = (*db)->AddXml(
        "<dblp><inproceedings><author>Healer</author>"
        "<title>H<i>y</i></title></inproceedings></dblp>");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(index->InsertDocument(*id).ok());
    EXPECT_NE(index->spatial_probe(), nullptr);
    ASSERT_TRUE((*db)->Save().ok());  // keep corpus and index coverage in step
  }
  auto info = SpatialProbe::InspectSidecar(SidecarPath());
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  // Fresh process adopts the healed sidecar again.
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  FixIndex* index = (*db)->index("main");
  ASSERT_NE(index, nullptr);
  EXPECT_NE(index->spatial_probe(), nullptr);
  EXPECT_EQ(index->spatial_probe()->generation(), index->generation());
}

TEST_F(SpatialSidecarTest, StaleGenerationSidecarIgnored) {
  // Make the sidecar stale by committing while a copy of the old sidecar
  // is kept, then restoring it: generation mismatch → B+-tree fallback.
  const std::string stale_copy = dir_ + "/stale.spatial";
  std::filesystem::copy_file(SidecarPath(), stale_copy);
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    FixIndex* index = (*db)->index("main");
    ASSERT_NE(index, nullptr);
    auto id = (*db)->AddXml(
        "<dblp><inproceedings><author>Mover</author>"
        "<title>M<i>z</i></title></inproceedings></dblp>");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(index->InsertDocument(*id).ok());
    ASSERT_TRUE((*db)->Save().ok());
    baseline_.clear();
    baseline_ = RunQuery(db->get());  // new ground truth post-commit
  }
  std::filesystem::copy_file(stale_copy, SidecarPath(),
                             std::filesystem::copy_options::overwrite_existing);
  // The stale sidecar parses cleanly (its CRC is intact) but its generation
  // is behind the B+-tree's — the open must refuse to adopt it.
  auto info = SpatialProbe::InspectSidecar(SidecarPath());
  ASSERT_TRUE(info.ok());
  ExpectFallback(/*expect_spatial=*/false);
}

}  // namespace
}  // namespace fix
