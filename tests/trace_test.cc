// TraceSpan: zero-sink fast path, JSON-lines well-formedness, nesting, and
// attribute escaping.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace fix {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::Disable();  // a stray FIX_TRACE env var must not leak in
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = ::testing::TempDir() + "/fix_trace_" + info->name() + ".jsonl";
    std::filesystem::remove(path_);
  }

  void TearDown() override {
    Trace::Disable();
    std::filesystem::remove(path_);
  }

  std::vector<std::string> ReadLines() {
    std::ifstream in(path_);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  // Extracts the integer after `"field":` in a JSON line.
  static uint64_t Field(const std::string& line, const std::string& field) {
    const std::string needle = "\"" + field + "\":";
    size_t pos = line.find(needle);
    EXPECT_NE(pos, std::string::npos) << field << " in " << line;
    if (pos == std::string::npos) return 0;
    return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
  }

  std::string path_;
};

TEST_F(TraceTest, DisabledSpanIsInert) {
  ASSERT_FALSE(Trace::enabled());
  TraceSpan span("test.disabled");
  EXPECT_FALSE(span.active());
  span.AddAttr("ignored", uint64_t{1});  // must be a no-op, not a crash
}

TEST_F(TraceTest, EmptyPathRejected) {
  TraceOptions options;
  Status s = Trace::Enable(options);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(Trace::enabled());
}

TEST_F(TraceTest, EmitsOneWellFormedLinePerSpan) {
  TraceOptions options;
  options.path = path_;
  ASSERT_TRUE(Trace::Enable(options).ok());
  {
    TraceSpan span("test.one");
    span.AddAttr("count", uint64_t{7});
  }
  { TraceSpan span("test.two"); }
  Trace::Disable();

  std::vector<std::string> lines = ReadLines();
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    // Minimal JSON shape check: one object per line, no stray newline
    // inside, balanced quotes.
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    size_t quotes = 0;
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"' && (i == 0 || line[i - 1] != '\\')) ++quotes;
    }
    EXPECT_EQ(quotes % 2, 0u) << line;
  }
  EXPECT_NE(lines[0].find("\"name\":\"test.one\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"attrs\":{\"count\":7}"), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\":\"test.two\""), std::string::npos);
  // Wall/CPU fields exist and wall time is sane (well under a second).
  EXPECT_LT(Field(lines[0], "wall_us"), 1000000u);
  Field(lines[0], "cpu_us");
}

TEST_F(TraceTest, NestedSpansLinkParentIds) {
  TraceOptions options;
  options.path = path_;
  ASSERT_TRUE(Trace::Enable(options).ok());
  {
    TraceSpan outer("test.outer");
    {
      TraceSpan inner("test.inner");
      { TraceSpan leaf("test.leaf"); }
    }
    { TraceSpan sibling("test.sibling"); }
  }
  Trace::Disable();

  std::vector<std::string> lines = ReadLines();
  ASSERT_EQ(lines.size(), 4u);  // close order: leaf, inner, sibling, outer
  EXPECT_NE(lines[0].find("test.leaf"), std::string::npos);
  EXPECT_NE(lines[1].find("test.inner"), std::string::npos);
  EXPECT_NE(lines[2].find("test.sibling"), std::string::npos);
  EXPECT_NE(lines[3].find("test.outer"), std::string::npos);

  const uint64_t outer_id = Field(lines[3], "span");
  const uint64_t inner_id = Field(lines[1], "span");
  EXPECT_EQ(Field(lines[3], "parent"), 0u);  // top level
  EXPECT_EQ(Field(lines[1], "parent"), outer_id);
  EXPECT_EQ(Field(lines[0], "parent"), inner_id);
  EXPECT_EQ(Field(lines[2], "parent"), outer_id);  // sibling, not leaf/inner
}

TEST_F(TraceTest, StringAttrsAreEscaped) {
  TraceOptions options;
  options.path = path_;
  ASSERT_TRUE(Trace::Enable(options).ok());
  {
    TraceSpan span("test.escape");
    span.AddAttr("query", std::string_view("a\"b\\c\nd"));
    span.AddAttr("ratio", 0.5);
    span.AddAttr("delta", int64_t{-4});
  }
  Trace::Disable();

  std::vector<std::string> lines = ReadLines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"query\":\"a\\\"b\\\\c\\nd\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"ratio\":0.5"), std::string::npos);
  EXPECT_NE(lines[0].find("\"delta\":-4"), std::string::npos);
}

TEST_F(TraceTest, AppendModePreservesEarlierLines) {
  TraceOptions options;
  options.path = path_;
  ASSERT_TRUE(Trace::Enable(options).ok());
  { TraceSpan span("test.first"); }
  Trace::Disable();
  options.append = true;
  ASSERT_TRUE(Trace::Enable(options).ok());
  { TraceSpan span("test.second"); }
  Trace::Disable();

  std::vector<std::string> lines = ReadLines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("test.first"), std::string::npos);
  EXPECT_NE(lines[1].find("test.second"), std::string::npos);
}

TEST_F(TraceTest, SpanIdsAreUniqueAndIncreasing) {
  TraceOptions options;
  options.path = path_;
  ASSERT_TRUE(Trace::Enable(options).ok());
  for (int i = 0; i < 5; ++i) {
    TraceSpan span("test.seq");
  }
  Trace::Disable();
  std::vector<std::string> lines = ReadLines();
  ASSERT_EQ(lines.size(), 5u);
  uint64_t last = 0;
  for (const std::string& line : lines) {
    uint64_t id = Field(line, "span");
    EXPECT_GT(id, last);
    last = id;
  }
}

}  // namespace
}  // namespace fix
