// Structural-invariant property tests over generator-produced corpora:
//  * bisimulation graphs are canonical DAGs (sorted deduplicated children,
//    bottom-up ids, exact depths, unique signatures, fully reachable);
//  * Theorem 2 (structure preservation): a twig query matches a document
//    iff its twig pattern matches the document's bisimulation graph;
//  * F&B graphs are true forward+backward-stable partitions.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "common/bytes.h"
#include "core/corpus.h"
#include "datagen/datasets.h"
#include "datagen/query_gen.h"
#include "graph/bisim_builder.h"
#include "graph/fb_graph.h"
#include "query/match.h"

namespace fix {
namespace {

Corpus SmallCorpus(int which) {
  Corpus corpus;
  switch (which) {
    case 0: {
      TcmdOptions o;
      o.num_docs = 25;
      GenerateTcmd(&corpus, o);
      break;
    }
    case 1: {
      XMarkOptions o;
      o.num_items = 18;
      o.num_people = 18;
      o.num_open_auctions = 18;
      o.num_closed_auctions = 18;
      o.num_categories = 9;
      GenerateXMark(&corpus, o);
      break;
    }
    default: {
      TreebankOptions o;
      o.num_sentences = 60;
      GenerateTreebank(&corpus, o);
      break;
    }
  }
  return corpus;
}

class InvariantsTest : public ::testing::TestWithParam<int> {};

TEST_P(InvariantsTest, BisimGraphIsCanonicalDag) {
  Corpus corpus = SmallCorpus(GetParam());
  for (uint32_t d = 0; d < corpus.num_docs(); ++d) {
    auto graph = BuildBisimGraph(corpus.doc(d), d);
    ASSERT_TRUE(graph.ok());
    std::set<std::pair<LabelId, std::vector<BisimVertexId>>> signatures;
    std::vector<bool> reachable(graph->num_vertices(), false);
    std::vector<BisimVertexId> stack{graph->root()};
    while (!stack.empty()) {
      BisimVertexId v = stack.back();
      stack.pop_back();
      if (reachable[v]) continue;
      reachable[v] = true;
      for (BisimVertexId c : graph->vertex(v).children) stack.push_back(c);
    }
    for (BisimVertexId v = 0; v < graph->num_vertices(); ++v) {
      const BisimVertex& vert = graph->vertex(v);
      // Children are sorted, deduplicated, and created before the parent
      // (bottom-up construction => the graph is trivially acyclic).
      EXPECT_TRUE(std::is_sorted(vert.children.begin(), vert.children.end()));
      EXPECT_EQ(std::adjacent_find(vert.children.begin(), vert.children.end()),
                vert.children.end());
      int expected_depth = 1;
      for (BisimVertexId c : vert.children) {
        EXPECT_LT(c, v);
        expected_depth =
            std::max(expected_depth, graph->vertex(c).depth + 1);
      }
      EXPECT_EQ(vert.depth, expected_depth);
      // Signatures (label + child set) are unique: hash-consing worked.
      EXPECT_TRUE(
          signatures.emplace(vert.label, vert.children).second)
          << "duplicate signature";
      EXPECT_TRUE(reachable[v]) << "orphan vertex " << v;
    }
  }
}

/// Definition 4 matcher: does the twig pattern of `q` match the
/// bisimulation graph? (Existential homomorphism, memoized.)
class PatternMatcher {
 public:
  PatternMatcher(const BisimGraph* graph, const TwigQuery* q)
      : graph_(graph), q_(q),
        memo_(q->steps.size(),
              std::vector<int8_t>(graph->num_vertices(), -1)) {}

  bool MatchesAnywhere() {
    for (BisimVertexId v = 0; v < graph_->num_vertices(); ++v) {
      if (Matches(q_->root, v)) return true;
    }
    return false;
  }

 private:
  bool Matches(uint32_t step, BisimVertexId v) {
    int8_t& memo = memo_[step][v];
    if (memo >= 0) return memo == 1;
    const QueryStep& s = q_->steps[step];
    bool ok = graph_->vertex(v).label == s.label;
    for (size_t i = 0; ok && i < s.children.size(); ++i) {
      uint32_t child_step = s.children[i];
      bool found = false;
      for (BisimVertexId c : graph_->vertex(v).children) {
        if (Matches(child_step, c)) {
          found = true;
          break;
        }
      }
      ok = found;
    }
    memo = ok ? 1 : 0;
    return ok;
  }

  const BisimGraph* graph_;
  const TwigQuery* q_;
  std::vector<std::vector<int8_t>> memo_;
};

TEST_P(InvariantsTest, Theorem2StructurePreservation) {
  Corpus corpus = SmallCorpus(GetParam());
  QueryGenOptions qopts;
  qopts.seed = 313 + GetParam();
  qopts.max_depth = 4;
  auto queries = GenerateRandomQueries(corpus, 40, qopts);
  ASSERT_GT(queries.size(), 10u);

  // Also throw in queries that should NOT match anywhere.
  {
    Corpus& c = corpus;
    TwigQuery bogus;
    bogus.steps.resize(2);
    bogus.steps[0].name = "article";
    bogus.steps[0].label = c.labels()->Intern("article");
    bogus.steps[0].axis = Axis::kDescendant;
    bogus.steps[0].children = {1};
    bogus.steps[0].main_child = 0;
    bogus.steps[1].name = "open_auction";
    bogus.steps[1].label = c.labels()->Intern("open_auction");
    bogus.steps[1].axis = Axis::kChild;
    bogus.root = 0;
    bogus.result = 1;
    queries.push_back(bogus);
  }

  for (uint32_t d = 0; d < corpus.num_docs(); ++d) {
    auto graph = BuildBisimGraph(corpus.doc(d), d);
    ASSERT_TRUE(graph.ok());
    TwigMatcher matcher(&corpus.doc(d));
    for (const auto& q : queries) {
      if (!q.IsPureTwig()) continue;
      bool on_tree = matcher.Exists(q);
      PatternMatcher pattern_matcher(&*graph, &q);
      bool on_graph = pattern_matcher.MatchesAnywhere();
      EXPECT_EQ(on_tree, on_graph)
          << "Theorem 2 violated for " << q.ToString() << " on doc " << d;
    }
  }
}

TEST_P(InvariantsTest, FbGraphIsStablePartition) {
  Corpus corpus = SmallCorpus(GetParam());
  std::vector<const Document*> docs;
  for (uint32_t d = 0; d < corpus.num_docs(); ++d) {
    docs.push_back(&corpus.doc(d));
  }
  auto graph = FbGraph::Build(docs);
  ASSERT_TRUE(graph.ok());

  // Recover each node's class from the extents.
  std::map<std::pair<uint32_t, NodeId>, FbClassId> cls;
  uint64_t extent_total = 0;
  for (FbClassId c = 0; c < graph->num_classes(); ++c) {
    for (const NodeRef& ref : graph->cls(c).extent) {
      auto [it, inserted] = cls.emplace(
          std::make_pair(ref.doc_id, ref.node_id), c);
      EXPECT_TRUE(inserted) << "node in two classes";
      ++extent_total;
    }
  }
  EXPECT_EQ(extent_total, graph->TotalExtent());

  // Stability: same class => same label, parent classes equal, child class
  // sets equal.
  for (FbClassId c = 0; c < graph->num_classes(); ++c) {
    const FbClass& fc = graph->cls(c);
    std::set<FbClassId> expected_children;
    FbClassId expected_parent = UINT32_MAX;
    bool first = true;
    for (const NodeRef& ref : fc.extent) {
      const Document& doc = corpus.doc(ref.doc_id);
      EXPECT_EQ(doc.label(ref.node_id), fc.label);
      FbClassId parent_cls =
          ref.node_id == 0
              ? UINT32_MAX
              : cls.at({ref.doc_id, doc.parent(ref.node_id)});
      std::set<FbClassId> children;
      for (NodeId ch = doc.first_child(ref.node_id); ch != kInvalidNode;
           ch = doc.next_sibling(ch)) {
        if (!doc.IsElement(ch)) continue;
        children.insert(cls.at({ref.doc_id, ch}));
      }
      if (first) {
        expected_parent = parent_cls;
        expected_children = children;
        first = false;
      } else {
        EXPECT_EQ(parent_cls, expected_parent) << "backward instability";
        EXPECT_EQ(children, expected_children) << "forward instability";
      }
    }
  }
}

// NB: no braced initializers inside the macro — commas inside braces split
// macro arguments.
INSTANTIATE_TEST_SUITE_P(Generators, InvariantsTest,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(info.param == 0   ? "tcmd"
                                              : info.param == 1 ? "xmark"
                                                                : "treebank");
                         });

}  // namespace
}  // namespace fix
