// Unit tests for the arena Document, the SAX replay stream, document
// statistics, and the binary codec.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xml/doc_stats.h"
#include "xml/document.h"
#include "xml/label_table.h"
#include "xml/sax.h"
#include "xml/serializer.h"
#include "xml/value_hash.h"

namespace fix {
namespace {

// Builds: <a><b>hi</b><c><b/></c></a>
Document MakeSample(LabelTable* labels) {
  Document doc;
  NodeId a = doc.AddElement(0, labels->Intern("a"));
  NodeId b1 = doc.AddElement(a, labels->Intern("b"));
  doc.AddText(b1, kInvalidLabel, "hi");
  NodeId c = doc.AddElement(a, labels->Intern("c"));
  doc.AddElement(c, labels->Intern("b"));
  return doc;
}

TEST(LabelTableTest, InternIsIdempotentAndDense) {
  LabelTable labels;
  EXPECT_EQ(labels.Find("nope"), kInvalidLabel);
  LabelId a = labels.Intern("a");
  LabelId b = labels.Intern("b");
  EXPECT_EQ(labels.Intern("a"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(labels.Name(a), "a");
  EXPECT_EQ(labels.Find("b"), b);
  // Document label is always id 0.
  EXPECT_EQ(LabelTable::DocumentLabel(), 0u);
  EXPECT_EQ(labels.Name(0), kDocumentLabel);
}

TEST(DocumentTest, StructureAndOrder) {
  LabelTable labels;
  Document doc = MakeSample(&labels);
  NodeId root = doc.root_element();
  ASSERT_NE(root, kInvalidNode);
  EXPECT_EQ(labels.Name(doc.label(root)), "a");
  // Children of <a>: b then c, in insertion order.
  NodeId b1 = doc.first_child(root);
  ASSERT_NE(b1, kInvalidNode);
  EXPECT_EQ(labels.Name(doc.label(b1)), "b");
  NodeId c = doc.next_sibling(b1);
  ASSERT_NE(c, kInvalidNode);
  EXPECT_EQ(labels.Name(doc.label(c)), "c");
  EXPECT_EQ(doc.next_sibling(c), kInvalidNode);
  EXPECT_EQ(doc.parent(c), root);
}

TEST(DocumentTest, CountsAndDepth) {
  LabelTable labels;
  Document doc = MakeSample(&labels);
  EXPECT_EQ(doc.CountElements(), 4u);  // a, b, c, b
  EXPECT_EQ(doc.Depth(doc.root_element()), 3);
  EXPECT_EQ(doc.ChildText(doc.first_child(doc.root_element())), "hi");
}

TEST(DocumentTest, EmptyDocumentHasNoRootElement) {
  Document doc;
  EXPECT_EQ(doc.root_element(), kInvalidNode);
  EXPECT_EQ(doc.CountElements(), 0u);
}

TEST(DocumentTest, DeepChainDepth) {
  LabelTable labels;
  Document doc;
  NodeId parent = 0;
  for (int i = 0; i < 500; ++i) {
    parent = doc.AddElement(parent, labels.Intern("x"));
  }
  EXPECT_EQ(doc.Depth(doc.root_element()), 500);
}

TEST(DocStatsTest, ComputesAggregates) {
  LabelTable labels;
  Document doc = MakeSample(&labels);
  DocStats stats = ComputeDocStats(doc, labels);
  EXPECT_EQ(stats.elements, 4u);
  EXPECT_EQ(stats.text_nodes, 1u);
  EXPECT_EQ(stats.text_bytes, 2u);
  EXPECT_EQ(stats.max_depth, 3);
  EXPECT_EQ(stats.distinct_labels, 3u);
}

// --- SAX replay ---------------------------------------------------------

std::vector<std::string> Replay(const Document& doc, const LabelTable& labels,
                                const ValueHasher* values = nullptr) {
  DocumentEventStream stream(&doc, 0, values);
  std::vector<std::string> out;
  SaxEvent e;
  while (stream.Next(&e)) {
    std::string tag =
        e.kind == SaxEvent::Kind::kOpen ? "<" : ">";
    out.push_back(tag + labels.Name(e.label));
  }
  return out;
}

TEST(SaxTest, StructuralEventOrder) {
  LabelTable labels;
  Document doc = MakeSample(&labels);
  std::vector<std::string> events = Replay(doc, labels);
  std::vector<std::string> expected = {"<a", "<b", ">b", "<c",
                                       "<b", ">b", ">c", ">a"};
  EXPECT_EQ(events, expected);
}

TEST(SaxTest, ValueEventsWhenHasherSupplied) {
  LabelTable labels;
  Document doc = MakeSample(&labels);
  ValueHasher hasher(&labels, 4);
  std::vector<std::string> events = Replay(doc, labels, &hasher);
  // The text node "hi" appears as an open/close pair of its bucket label.
  ASSERT_EQ(events.size(), 10u);
  EXPECT_EQ(events[2].substr(0, 3), "<#v");
  EXPECT_EQ(events[3].substr(0, 3), ">#v");
}

TEST(SaxTest, EventsBalanced) {
  LabelTable labels;
  Document doc = MakeSample(&labels);
  DocumentEventStream stream(&doc, 7, nullptr);
  int depth = 0;
  int max_depth = 0;
  SaxEvent e;
  while (stream.Next(&e)) {
    EXPECT_EQ(e.ref.doc_id, 7u);
    depth += (e.kind == SaxEvent::Kind::kOpen) ? 1 : -1;
    max_depth = std::max(max_depth, depth);
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(max_depth, 3);
}

TEST(SaxTest, SubtreeReplay) {
  LabelTable labels;
  Document doc = MakeSample(&labels);
  NodeId c = doc.next_sibling(doc.first_child(doc.root_element()));
  DocumentEventStream stream(&doc, 0, c, nullptr);
  std::vector<std::string> out;
  SaxEvent e;
  while (stream.Next(&e)) {
    out.push_back((e.kind == SaxEvent::Kind::kOpen ? "<" : ">") +
                  labels.Name(e.label));
  }
  std::vector<std::string> expected = {"<c", "<b", ">b", ">c"};
  EXPECT_EQ(out, expected);
}

// --- ValueHasher ----------------------------------------------------------

TEST(ValueHasherTest, DeterministicBuckets) {
  LabelTable labels;
  ValueHasher h(&labels, 8);
  EXPECT_EQ(h.LabelFor("Springer"), h.LabelFor("Springer"));
  LabelId l = h.LabelFor("1998");
  EXPECT_GE(labels.Name(l).rfind("#v", 0), 0u);
}

TEST(ValueHasherTest, BetaOneCollapsesEverything) {
  LabelTable labels;
  ValueHasher h(&labels, 1);
  EXPECT_EQ(h.LabelFor("a"), h.LabelFor("completely different"));
}

TEST(ValueHasherTest, SharedTableKeepsBucketsStable) {
  LabelTable labels;
  ValueHasher h1(&labels, 16);
  ValueHasher h2(&labels, 16);  // re-interns the same bucket labels
  EXPECT_EQ(h1.LabelFor("xyz"), h2.LabelFor("xyz"));
}

// --- binary codec -----------------------------------------------------------

TEST(CodecTest, EncodeDecodeRoundTrip) {
  LabelTable labels;
  Document doc = MakeSample(&labels);
  std::string buf;
  EncodeDocument(doc, &buf);
  auto decoded = DecodeDocument(buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  // Same serialization implies same tree.
  EXPECT_EQ(SerializeXml(*decoded, labels), SerializeXml(doc, labels));
  EXPECT_EQ(decoded->CountElements(), doc.CountElements());
}

TEST(CodecTest, SubtreeEncode) {
  LabelTable labels;
  Document doc = MakeSample(&labels);
  NodeId c = doc.next_sibling(doc.first_child(doc.root_element()));
  std::string buf;
  EncodeDocument(doc, &buf, c);
  auto decoded = DecodeDocument(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(SerializeXml(*decoded, labels), "<c><b/></c>");
}

TEST(CodecTest, CorruptionDetected) {
  LabelTable labels;
  Document doc = MakeSample(&labels);
  std::string buf;
  EncodeDocument(doc, &buf);
  std::string truncated = buf.substr(0, buf.size() / 2);
  EXPECT_FALSE(DecodeDocument(truncated).ok());
  std::string padded = buf + "junk";
  EXPECT_FALSE(DecodeDocument(padded).ok());
}

TEST(SerializeTest, EscapesMarkup) {
  EXPECT_EQ(XmlEscape("a<b&c>\"d'"), "a&lt;b&amp;c&gt;&quot;d&apos;");
}

}  // namespace
}  // namespace fix
