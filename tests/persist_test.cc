// Tests for persistence: the serialization codecs, Corpus save/load round
// trips, and reopening a FIX index from disk with identical query behavior.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/corpus.h"
#include "core/fix_index.h"
#include "core/fix_query.h"
#include "core/persist.h"
#include "datagen/datasets.h"
#include "datagen/query_gen.h"
#include "query/xpath_parser.h"

namespace fix {
namespace {

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // FIX_PERSIST_TEST_DIR (set by tools/ci.sh) redirects the output and
    // keeps it after the run so fixdb_scrub can verify every page file the
    // suite produced.
    const char* keep = std::getenv("FIX_PERSIST_TEST_DIR");
    keep_output_ = keep != nullptr && keep[0] != '\0';
    const std::string base = keep_output_ ? keep : ::testing::TempDir();
    dir_ = base + "/fix_persist_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    if (!keep_output_) std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  bool keep_output_ = false;
};

TEST_F(PersistTest, FileRoundTrip) {
  std::string payload = "hello\0world", path = dir_ + "/f";
  ASSERT_TRUE(WriteFile(path, payload).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
  EXPECT_FALSE(ReadFile(dir_ + "/missing").ok());
}

TEST_F(PersistTest, LabelTableRoundTrip) {
  LabelTable original;
  original.Intern("article");
  original.Intern("author");
  original.Intern("#v3");
  std::string buf = EncodeLabelTable(original);

  LabelTable restored;
  ASSERT_TRUE(DecodeLabelTable(buf, &restored).ok());
  ASSERT_EQ(restored.size(), original.size());
  for (LabelId id = 0; id < original.size(); ++id) {
    EXPECT_EQ(restored.Name(id), original.Name(id));
  }
  // Corruption is detected.
  std::string bad = buf;
  bad[0] ^= 0x55;
  LabelTable fresh;
  EXPECT_FALSE(DecodeLabelTable(bad, &fresh).ok());
  LabelTable fresh2;
  EXPECT_FALSE(DecodeLabelTable(buf.substr(0, buf.size() - 2), &fresh2).ok());
}

TEST_F(PersistTest, ManifestRoundTrip) {
  std::vector<RecordId> records = {{0}, {123}, {1ULL << 40}};
  auto restored = DecodeManifest(EncodeManifest(records));
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 3u);
  EXPECT_EQ((*restored)[2].offset, 1ULL << 40);
}

TEST_F(PersistTest, IndexMetaRoundTrip) {
  IndexMeta meta;
  meta.options.depth_limit = 6;
  meta.options.clustered = true;
  meta.options.value_beta = 10;
  meta.options.use_lambda2 = true;
  meta.options.sound_probe = true;
  meta.options.epsilon = 1e-7;
  meta.next_seq = 4242;
  meta.edge_weights = {{0x100000002ULL, 1}, {0x300000004ULL, 7}};
  meta.storage_format = 1;
  meta.indexed_docs = 321;
  auto restored = DecodeIndexMeta(EncodeIndexMeta(meta));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->options.depth_limit, 6);
  EXPECT_TRUE(restored->options.clustered);
  EXPECT_EQ(restored->options.value_beta, 10u);
  EXPECT_TRUE(restored->options.use_lambda2);
  EXPECT_TRUE(restored->options.sound_probe);
  EXPECT_DOUBLE_EQ(restored->options.epsilon, 1e-7);
  EXPECT_EQ(restored->next_seq, 4242u);
  EXPECT_EQ(restored->edge_weights, meta.edge_weights);
  EXPECT_EQ(restored->storage_format, 1u);
  EXPECT_EQ(restored->indexed_docs, 321u);
}

TEST_F(PersistTest, EdgeEncoderExportImport) {
  EdgeEncoder original;
  double w1 = original.Weight(3, 4);
  double w2 = original.Weight(5, 6);
  EdgeEncoder restored;
  restored.Import(original.Export());
  EXPECT_EQ(restored.Weight(3, 4), w1);
  EXPECT_EQ(restored.Weight(5, 6), w2);
  // New pairs continue after the imported maximum.
  EXPECT_GT(restored.Weight(7, 8), w2);
}

TEST_F(PersistTest, CorpusSaveLoadRoundTrip) {
  Corpus original;
  ASSERT_TRUE(original.AddXml("<a><b>text</b><c/></a>").ok());
  ASSERT_TRUE(original.AddXml("<x><y/></x>").ok());
  ASSERT_TRUE(original.Save(dir_).ok());

  auto restored = Corpus::Load(dir_);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->num_docs(), 2u);
  EXPECT_EQ(restored->TotalElements(), original.TotalElements());
  EXPECT_EQ(restored->labels()->size(), original.labels()->size());
  const Document& doc = restored->doc(0);
  EXPECT_EQ(doc.ChildText(doc.first_child(doc.root_element())), "text");
}

TEST_F(PersistTest, IndexReopenAnswersIdentically) {
  Corpus corpus;
  TcmdOptions gen;
  gen.num_docs = 40;
  GenerateTcmd(&corpus, gen);
  ASSERT_TRUE(corpus.Save(dir_).ok());

  IndexOptions options;
  options.depth_limit = 4;
  options.path = dir_ + "/idx.fix";
  auto built = FixIndex::Build(&corpus, options, nullptr);
  ASSERT_TRUE(built.ok());

  // Fresh process simulation: reload corpus, reopen index.
  auto corpus2 = Corpus::Load(dir_);
  ASSERT_TRUE(corpus2.ok());
  auto reopened = FixIndex::Open(&*corpus2, dir_ + "/idx.fix");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->num_entries(), built->num_entries());
  EXPECT_EQ(reopened->options().depth_limit, 4);

  QueryGenOptions qopts;
  qopts.seed = 55;
  qopts.max_depth = 4;
  auto queries = GenerateRandomQueries(corpus, 20, qopts);
  ASSERT_GT(queries.size(), 5u);
  for (const auto& q : queries) {
    auto a = built->Lookup(q);
    TwigQuery q2 = q;
    q2.ResolveLabels(corpus2->labels());
    auto b = reopened->Lookup(q2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->candidates.size(), b->candidates.size()) << q.ToString();
  }
}

TEST_F(PersistTest, ReopenedClusteredIndexServesCopies) {
  Corpus corpus;
  ASSERT_TRUE(corpus.AddXml("<a><b/><c/></a>").ok());
  ASSERT_TRUE(corpus.Save(dir_).ok());
  IndexOptions options;
  options.clustered = true;
  options.path = dir_ + "/c.fix";
  ASSERT_TRUE(FixIndex::Build(&corpus, options, nullptr).ok());

  auto corpus2 = Corpus::Load(dir_);
  ASSERT_TRUE(corpus2.ok());
  auto reopened = FixIndex::Open(&*corpus2, dir_ + "/c.fix");
  ASSERT_TRUE(reopened.ok());
  FixQueryProcessor processor(&*corpus2, &*reopened);
  auto parsed = ParseXPath("/a[b]/c");
  TwigQuery q = std::move(parsed).value();
  q.ResolveLabels(corpus2->labels());
  auto stats = processor.Execute(q);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->result_count, 1u);
  EXPECT_GT(stats->sequential_bytes, 0u);
}

TEST_F(PersistTest, OpenRejectsMissingOrCorruptMeta) {
  Corpus corpus;
  ASSERT_TRUE(corpus.AddXml("<a/>").ok());
  EXPECT_FALSE(FixIndex::Open(&corpus, dir_ + "/nonexistent.fix").ok());

  IndexOptions options;
  options.path = dir_ + "/ok.fix";
  ASSERT_TRUE(FixIndex::Build(&corpus, options, nullptr).ok());
  ASSERT_TRUE(WriteFile(dir_ + "/ok.fix.meta", "garbage").ok());
  EXPECT_FALSE(FixIndex::Open(&corpus, dir_ + "/ok.fix").ok());
}

}  // namespace
}  // namespace fix
