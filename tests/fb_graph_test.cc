// Tests for the F&B bisimulation graph: partition refinement correctness on
// hand-checkable documents, depth-uniform classes, and the Figure 1
// incompressibility example.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/fb_graph.h"
#include "xml/parser.h"

namespace fix {
namespace {

Result<FbGraph> BuildFromXml(const char* xml, LabelTable* labels) {
  auto doc = ParseXml(xml, labels);
  if (!doc.ok()) return doc.status();
  std::vector<const Document*> docs = {&*doc};
  auto graph = FbGraph::Build(docs);
  // doc is destroyed after return, so tests only use graph metadata.
  return graph;
}

TEST(FbGraphTest, IdenticalContextsMerge) {
  LabelTable labels;
  // The two <a><b/></a> subtrees are fully equivalent forward and backward.
  auto graph = BuildFromXml("<r><a><b/></a><a><b/></a></r>", &labels);
  ASSERT_TRUE(graph.ok()) << graph.status();
  // Classes: #doc, r, a, b.
  EXPECT_EQ(graph->num_classes(), 4u);
  EXPECT_EQ(graph->TotalExtent(), 6u);  // doc node + r + 2a + 2b
}

TEST(FbGraphTest, DifferentParentsSplitSameSubtrees) {
  LabelTable labels;
  // Both <c/> subtrees are identical downward, but one hangs under <a> and
  // one under <b>: backward stability must split them.
  auto graph = BuildFromXml("<r><a><c/></a><b><c/></b></r>", &labels);
  ASSERT_TRUE(graph.ok());
  // Classes: #doc, r, a, b, c-under-a, c-under-b = 6.
  EXPECT_EQ(graph->num_classes(), 6u);
}

TEST(FbGraphTest, DifferentChildrenSplitSameLabels) {
  LabelTable labels;
  auto graph = BuildFromXml("<r><a><x/></a><a><y/></a></r>", &labels);
  ASSERT_TRUE(graph.ok());
  // The two <a>s differ forward: classes #doc, r, a1, a2, x, y = 6.
  EXPECT_EQ(graph->num_classes(), 6u);
}

TEST(FbGraphTest, PaperAuthorsAreIncompressible) {
  LabelTable labels;
  // Figure 1's point: every author has a distinct parent or child set, so
  // F&B keeps them all apart (5 author classes), whereas the downward
  // bisimulation graph merges two of them (4 vertices).
  auto graph = BuildFromXml(R"(
    <bib>
      <article><title/><author><address/><email/><affiliation/></author></article>
      <article><title/><author><email/><affiliation/></author></article>
      <book><title/><author><affiliation/><address/><phone/></author></book>
      <www><title/><author><email/></author></www>
      <inproceedings><title/><author><email/><affiliation/></author></inproceedings>
    </bib>)",
                            &labels);
  ASSERT_TRUE(graph.ok());
  LabelId author = labels.Find("author");
  ASSERT_NE(author, kInvalidLabel);
  EXPECT_EQ(graph->ClassesWithLabel(author).size(), 5u);
}

TEST(FbGraphTest, ClassesAreDepthUniform) {
  LabelTable labels;
  auto doc = ParseXml(
      "<r><a><b><c/></b></a><a><b><c/></b></a><b><c/></b></r>", &labels);
  ASSERT_TRUE(doc.ok());
  std::vector<const Document*> docs = {&*doc};
  auto graph = FbGraph::Build(docs);
  ASSERT_TRUE(graph.ok());
  for (FbClassId c = 0; c < graph->num_classes(); ++c) {
    const FbClass& cls = graph->cls(c);
    // Every extent member must sit at the class depth.
    for (const NodeRef& ref : cls.extent) {
      int depth = 0;
      NodeId n = ref.node_id;
      while (n != 0) {
        n = doc->parent(n);
        ++depth;
      }
      EXPECT_EQ(depth, cls.depth);
    }
  }
}

TEST(FbGraphTest, EdgesConnectParentAndChildClasses) {
  LabelTable labels;
  auto doc = ParseXml("<r><a><b/></a></r>", &labels);
  ASSERT_TRUE(doc.ok());
  std::vector<const Document*> docs = {&*doc};
  auto graph = FbGraph::Build(docs);
  ASSERT_TRUE(graph.ok());
  // Chain: #doc -> r -> a -> b: 3 edges, symmetric parent links.
  EXPECT_EQ(graph->num_edges(), 3u);
  for (FbClassId c = 0; c < graph->num_classes(); ++c) {
    for (FbClassId ch : graph->cls(c).children) {
      const auto& parents = graph->cls(ch).parents;
      EXPECT_TRUE(std::find(parents.begin(), parents.end(), c) !=
                  parents.end());
    }
  }
}

TEST(FbGraphTest, MultipleDocumentsShareClasses) {
  LabelTable labels;
  auto d1 = ParseXml("<r><a/></r>", &labels);
  auto d2 = ParseXml("<r><a/></r>", &labels);
  auto d3 = ParseXml("<r><b/></r>", &labels);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  ASSERT_TRUE(d3.ok());
  std::vector<const Document*> docs = {&*d1, &*d2, &*d3};
  auto graph = FbGraph::Build(docs);
  ASSERT_TRUE(graph.ok());
  // d1 and d2 are identical: their node classes coincide; d3's r differs
  // (different children). Classes: doc12, doc3, r12, r3, a, b = 6.
  EXPECT_EQ(graph->num_classes(), 6u);
  EXPECT_EQ(graph->document_classes().size(), 2u);
}

TEST(FbGraphTest, TextNodesIgnored) {
  LabelTable labels;
  auto graph = BuildFromXml("<r><a>text one</a><a>different</a></r>",
                            &labels);
  ASSERT_TRUE(graph.ok());
  // Text differs but structure matches: #doc, r, a = 3 classes.
  EXPECT_EQ(graph->num_classes(), 3u);
}

}  // namespace
}  // namespace fix
