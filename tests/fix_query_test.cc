// End-to-end tests for FixQueryProcessor (Algorithm 2 with refinement):
// result correctness against the ground-truth matcher, metric counters, and
// the clustered / unclustered / value / fallback paths.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "baseline/full_scan.h"
#include "core/corpus.h"
#include "core/fix_index.h"
#include "core/fix_query.h"
#include "core/metrics.h"
#include "query/xpath_parser.h"

namespace fix {
namespace {

class FixQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_query_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void AddXml(const std::string& xml) {
    auto id = corpus_.AddXml(xml);
    ASSERT_TRUE(id.ok()) << id.status();
  }

  TwigQuery Query(const std::string& text) {
    auto q = ParseXPath(text);
    EXPECT_TRUE(q.ok()) << q.status();
    TwigQuery query = std::move(q).value();
    query.ResolveLabels(corpus_.labels());
    return query;
  }

  FixIndex BuildIndex(int depth_limit, bool clustered = false,
                      uint32_t beta = 0) {
    IndexOptions options;
    options.depth_limit = depth_limit;
    options.clustered = clustered;
    options.value_beta = beta;
    options.path = dir_ + "/q.fix";
    options.buffer_pool_pages = 64;
    auto index = FixIndex::Build(&corpus_, options, nullptr);
    EXPECT_TRUE(index.ok()) << index.status();
    return std::move(index).value();
  }

  std::string dir_;
  Corpus corpus_;
};

TEST_F(FixQueryTest, ResultsMatchFullScanCollection) {
  AddXml("<a><b/><c/></a>");
  AddXml("<a><b/></a>");
  AddXml("<a><c><b/></c></a>");
  AddXml("<x><b/><c/></x>");
  FixIndex index = BuildIndex(0);
  FixQueryProcessor processor(&corpus_, &index);

  for (const char* text : {"/a[b]/c", "//b", "//a/c", "/x/c", "//c/b"}) {
    TwigQuery q = Query(text);
    std::vector<NodeRef> via_index;
    auto stats = processor.Execute(q, &via_index);
    ASSERT_TRUE(stats.ok()) << text << ": " << stats.status();
    std::vector<NodeRef> via_scan;
    FullScan(corpus_, q, &via_scan);
    std::set<std::pair<uint32_t, uint32_t>> a, b;
    for (auto r : via_index) a.insert({r.doc_id, r.node_id});
    for (auto r : via_scan) b.insert({r.doc_id, r.node_id});
    EXPECT_EQ(a, b) << text;
    EXPECT_EQ(stats->result_count, b.size()) << text;
  }
}

TEST_F(FixQueryTest, ResultsMatchFullScanDepthLimited) {
  AddXml(
      "<site><people><person><name/><addr/></person>"
      "<person><name/></person></people>"
      "<items><item><name/><desc><par><t/></par></desc></item>"
      "<item><desc><t/></desc></item></items></site>");
  FixIndex index = BuildIndex(3);
  FixQueryProcessor processor(&corpus_, &index);
  for (const char* text :
       {"//person/name", "//item/desc", "//desc/par/t", "//person[addr]/name",
        "//item[name]/desc"}) {
    TwigQuery q = Query(text);
    std::vector<NodeRef> via_index;
    auto stats = processor.Execute(q, &via_index);
    ASSERT_TRUE(stats.ok()) << text;
    std::vector<NodeRef> via_scan;
    FullScan(corpus_, q, &via_scan);
    std::set<std::pair<uint32_t, uint32_t>> a, b;
    for (auto r : via_index) a.insert({r.doc_id, r.node_id});
    for (auto r : via_scan) b.insert({r.doc_id, r.node_id});
    EXPECT_EQ(a, b) << text;
  }
}

TEST_F(FixQueryTest, ClusteredCountsMatchUnclustered) {
  AddXml("<a><b/><c/></a>");
  AddXml("<a><b/></a>");
  AddXml("<a><b/><c/></a>");
  FixIndex unclustered = BuildIndex(0, false);
  IndexOptions copts;
  copts.depth_limit = 0;
  copts.clustered = true;
  copts.path = dir_ + "/clustered.fix";
  copts.buffer_pool_pages = 64;
  auto clustered = FixIndex::Build(&corpus_, copts, nullptr);
  ASSERT_TRUE(clustered.ok());

  FixQueryProcessor p1(&corpus_, &unclustered);
  FixQueryProcessor p2(&corpus_, &*clustered);
  TwigQuery q = Query("/a[b]/c");
  auto s1 = p1.Execute(q);
  auto s2 = p2.Execute(q);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->candidates, s2->candidates);
  EXPECT_EQ(s1->producing, s2->producing);
  EXPECT_EQ(s1->result_count, s2->result_count);
  EXPECT_GT(s2->sequential_bytes, 0u);
}

TEST_F(FixQueryTest, MetricsConsistent) {
  AddXml("<a><b/><c/></a>");   // produces
  AddXml("<a><b/></a>");       // pruned
  AddXml("<a><b/><c/></a>");   // produces
  AddXml("<z/>");              // pruned by label
  FixIndex index = BuildIndex(0);
  FixQueryProcessor processor(&corpus_, &index);
  auto stats = processor.Execute(Query("/a[b]/c"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->total_entries, 4u);
  EXPECT_EQ(stats->candidates, 2u);
  EXPECT_EQ(stats->producing, 2u);
  EXPECT_DOUBLE_EQ(stats->selectivity(), 0.5);
  EXPECT_DOUBLE_EQ(stats->pruning_power(), 0.5);
  EXPECT_DOUBLE_EQ(stats->false_positive_ratio(), 0.0);

  // Ground truth agrees.
  GroundTruth gt = ComputeGroundTruth(corpus_, Query("/a[b]/c"), 0);
  EXPECT_EQ(gt.entries, stats->total_entries);
  EXPECT_EQ(gt.producers, stats->producing);
}

TEST_F(FixQueryTest, UncoveredQueryFallsBackToFullScan) {
  AddXml("<a><b><c><d><e/></d></c></b></a>");
  FixIndex index = BuildIndex(2);
  FixQueryProcessor processor(&corpus_, &index);
  std::vector<NodeRef> results;
  auto stats = processor.Execute(Query("//b/c/d/e"), &results);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->covered);
  EXPECT_FALSE(stats->used_index);
  EXPECT_EQ(results.size(), 1u);
}

TEST_F(FixQueryTest, RootedQueryRejectsNonRootCandidates) {
  // A depth-limited index enumerates every element; a rooted query /b/c
  // must not accept the nested b element.
  AddXml("<b><c/><d><b><c/></b></d><e><f><g/></f></e></b>");
  FixIndex index = BuildIndex(2);
  FixQueryProcessor processor(&corpus_, &index);
  std::vector<NodeRef> results;
  auto stats = processor.Execute(Query("/b/c"), &results);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats->covered);
  ASSERT_EQ(results.size(), 1u);
  // The result must be the c directly under the document root's b.
  const Document& doc = corpus_.doc(0);
  EXPECT_EQ(doc.parent(results[0].node_id), doc.root_element());
}

TEST_F(FixQueryTest, ValueQueriesRefineExactly) {
  AddXml("<p><pub>Springer</pub><t/></p>");
  AddXml("<p><pub>ACM</pub><t/></p>");
  AddXml("<p><pub>Springer</pub></p>");  // no t: structural reject
  FixIndex index = BuildIndex(0, false, /*beta=*/16);
  FixQueryProcessor processor(&corpus_, &index);
  std::vector<NodeRef> results;
  auto stats = processor.Execute(Query("/p[pub=\"Springer\"]/t"), &results);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc_id, 0u);
  EXPECT_EQ(stats->producing, 1u);
}

TEST_F(FixQueryTest, InteriorDescendantQueriesWork) {
  AddXml("<open_auction><x><bidder><name/><email/></bidder></x>"
         "<price/></open_auction>");
  AddXml("<open_auction><price/></open_auction>");
  FixIndex index = BuildIndex(0);
  FixQueryProcessor processor(&corpus_, &index);
  std::vector<NodeRef> results;
  auto stats = processor.Execute(
      Query("//open_auction[.//bidder[name][email]]/price"), &results);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc_id, 0u);
}

TEST_F(FixQueryTest, RandomReadsChargedWithPrimaryStorage) {
  AddXml("<a><b/><c/></a>");
  AddXml("<a><b/><c/></a>");
  ASSERT_TRUE(corpus_.WritePrimaryStorage(dir_ + "/primary.dat").ok());
  FixIndex index = BuildIndex(0);
  FixQueryProcessor processor(&corpus_, &index);
  auto stats = processor.Execute(Query("/a[b]/c"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->random_reads, 2u);  // one pointer dereference per cand.
}

TEST_F(FixQueryTest, EmptyResultQuery) {
  AddXml("<a><b/></a>");
  FixIndex index = BuildIndex(0);
  FixQueryProcessor processor(&corpus_, &index);
  auto stats = processor.Execute(Query("//nothing/here"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->result_count, 0u);
  EXPECT_EQ(stats->candidates, 0u);
}

}  // namespace
}  // namespace fix
