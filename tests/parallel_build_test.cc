// Parallel construction pipeline tests: the built index must be
// byte-identical regardless of build_threads and feature_cache_mb, the
// bulk-loaded tree must pass the structural audit, and the cache must
// actually hit on repetitive data. Registered under the `concurrency` label
// so CI replays the multi-threaded builds under TSan.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/corpus.h"
#include "core/fix_index.h"
#include "core/fix_query.h"
#include "core/persist.h"
#include "datagen/datasets.h"
#include "query/xpath_parser.h"

namespace fix {
namespace {

class ParallelBuildTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fix_parallel_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// A corpus with heavy structural repetition (many near-identical small
  /// documents) plus one structure-rich document.
  static void FillCorpus(Corpus* corpus) {
    GenerateTcmd(corpus, TcmdOptions{.seed = 11, .num_docs = 60});
    GenerateXMark(corpus, XMarkOptions{.seed = 12,
                                       .num_items = 40,
                                       .num_people = 40,
                                       .num_open_auctions = 30,
                                       .num_closed_auctions = 20,
                                       .num_categories = 10});
  }

  std::string ReadAll(const std::string& path) {
    auto data = ReadFile(path);
    EXPECT_TRUE(data.ok()) << path << ": " << data.status();
    return data.ok() ? *data : std::string();
  }

  /// Builds one index and returns (stats, concatenated file bytes).
  std::pair<BuildStats, std::string> BuildOnce(Corpus* corpus,
                                               const std::string& tag,
                                               IndexOptions options) {
    options.path = dir_ + "/" + tag + ".fix";
    BuildStats stats;
    auto built = FixIndex::Build(corpus, options, &stats);
    EXPECT_TRUE(built.ok()) << built.status();
    if (built.ok()) {
      EXPECT_TRUE(built->Verify().ok());
    }
    std::string bytes = ReadAll(options.path) + ReadAll(options.path + ".meta");
    if (options.clustered) bytes += ReadAll(options.path + ".data");
    return {stats, std::move(bytes)};
  }

  std::string dir_;
};

TEST_F(ParallelBuildTest, EightThreadsByteIdenticalToOne) {
  Corpus corpus;
  FillCorpus(&corpus);
  for (int depth_limit : {0, 4}) {
    IndexOptions base;
    base.depth_limit = depth_limit;
    IndexOptions threaded = base;
    threaded.build_threads = 8;
    auto [stats1, bytes1] =
        BuildOnce(&corpus, "t1_d" + std::to_string(depth_limit), base);
    auto [stats8, bytes8] =
        BuildOnce(&corpus, "t8_d" + std::to_string(depth_limit), threaded);
    EXPECT_EQ(stats1.build_threads_used, 1u);
    EXPECT_EQ(stats8.build_threads_used, 8u);
    ASSERT_EQ(bytes1.size(), bytes8.size()) << "depth " << depth_limit;
    EXPECT_EQ(bytes1, bytes8) << "depth " << depth_limit;
    // The parallel stages only redistribute work: every counter that
    // describes the data (not the schedule) must agree.
    EXPECT_EQ(stats1.entries, stats8.entries);
    EXPECT_EQ(stats1.distinct_patterns, stats8.distinct_patterns);
    EXPECT_EQ(stats1.oversized_patterns, stats8.oversized_patterns);
    EXPECT_EQ(stats1.bisim_vertices, stats8.bisim_vertices);
    EXPECT_GT(stats1.entries, 0u);
  }
}

TEST_F(ParallelBuildTest, CacheOnOffByteIdentical) {
  Corpus corpus;
  FillCorpus(&corpus);
  IndexOptions cached;
  cached.depth_limit = 3;
  cached.build_threads = 4;
  IndexOptions uncached = cached;
  uncached.feature_cache_mb = 0;
  auto [stats_on, bytes_on] = BuildOnce(&corpus, "cache_on", cached);
  auto [stats_off, bytes_off] = BuildOnce(&corpus, "cache_off", uncached);
  EXPECT_EQ(bytes_on, bytes_off);
  EXPECT_GT(stats_on.feature_cache_hits, 0u)
      << "repetitive corpus must produce cache hits";
  EXPECT_EQ(stats_off.feature_cache_hits, 0u);
  EXPECT_EQ(stats_off.feature_cache_misses, 0u);
  EXPECT_EQ(stats_on.feature_cache_hits + stats_on.feature_cache_misses,
            stats_on.distinct_patterns - stats_on.oversized_patterns);
}

TEST_F(ParallelBuildTest, ClusteredParallelBuildByteIdentical) {
  Corpus corpus;
  GenerateTcmd(&corpus, TcmdOptions{.seed = 21, .num_docs = 50});
  IndexOptions base;
  base.depth_limit = 3;
  base.clustered = true;
  IndexOptions threaded = base;
  threaded.build_threads = 8;
  auto [stats1, bytes1] = BuildOnce(&corpus, "c1", base);
  auto [stats8, bytes8] = BuildOnce(&corpus, "c8", threaded);
  EXPECT_EQ(bytes1, bytes8);
  EXPECT_GT(stats1.clustered_bytes, 0u);
}

TEST_F(ParallelBuildTest, ZeroMeansHardwareConcurrency) {
  Corpus corpus;
  GenerateTcmd(&corpus, TcmdOptions{.seed = 31, .num_docs = 5});
  IndexOptions options;
  options.depth_limit = 2;
  options.build_threads = 0;
  auto [stats, bytes] = BuildOnce(&corpus, "hw", options);
  EXPECT_GE(stats.build_threads_used, 1u);
  EXPECT_LE(stats.build_threads_used, 64u);
}

TEST_F(ParallelBuildTest, ParallelBuildAnswersQueriesIdentically) {
  // End to end: the bulk-loaded parallel index must return the same result
  // set as the single-threaded one (and both must satisfy the query
  // processor's no-false-negative refinement).
  Corpus corpus;
  FillCorpus(&corpus);
  IndexOptions base;
  base.depth_limit = 4;
  IndexOptions threaded = base;
  threaded.build_threads = 8;
  base.path = dir_ + "/q1.fix";
  threaded.path = dir_ + "/q8.fix";
  auto idx1 = FixIndex::Build(&corpus, base, nullptr);
  auto idx8 = FixIndex::Build(&corpus, threaded, nullptr);
  ASSERT_TRUE(idx1.ok()) << idx1.status();
  ASSERT_TRUE(idx8.ok()) << idx8.status();
  for (const char* xpath : {"/article/body/section", "//author/name",
                            "//item/name", "//parlist//listitem"}) {
    auto query = ParseXPath(xpath);
    ASSERT_TRUE(query.ok()) << xpath;
    query->ResolveLabels(corpus.labels());
    FixQueryProcessor p1(&corpus, &*idx1);
    FixQueryProcessor p8(&corpus, &*idx8);
    std::vector<NodeRef> r1, r8;
    auto s1 = p1.Execute(*query, &r1);
    auto s8 = p8.Execute(*query, &r8);
    ASSERT_TRUE(s1.ok()) << xpath << ": " << s1.status();
    ASSERT_TRUE(s8.ok()) << xpath << ": " << s8.status();
    ASSERT_EQ(r1.size(), r8.size()) << xpath;
    for (size_t i = 0; i < r1.size(); ++i) {
      EXPECT_EQ(r1[i].doc_id, r8[i].doc_id) << xpath;
      EXPECT_EQ(r1[i].node_id, r8[i].node_id) << xpath;
    }
  }
}

}  // namespace
}  // namespace fix
