// FeatureCache tests: signature canonicality, hit/miss/eviction accounting,
// bitwise equality of cached vs recomputed features over random patterns,
// and concurrent hammering (run under TSan via the `concurrency` label).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "spectral/edge_encoder.h"
#include "spectral/feature_cache.h"
#include "spectral/skew_matrix.h"
#include "spectral/spectrum.h"

namespace fix {
namespace {

/// Random rooted DAG in bottom-up vertex order: vertex i may point at any
/// subset of [0, i), children sorted and deduplicated — the same shape
/// invariants BisimBuilder guarantees.
BisimGraph RandomPattern(Rng* rng, size_t max_vertices, uint32_t num_labels) {
  const size_t n = 1 + rng->Uniform(max_vertices);
  BisimGraph g;
  for (size_t i = 0; i < n; ++i) {
    BisimVertex v;
    v.label = static_cast<LabelId>(rng->Uniform(num_labels));
    if (i > 0) {
      const size_t fanout = rng->Uniform(3) + (i == n - 1 ? 1 : 0);
      for (size_t c = 0; c < fanout; ++c) {
        v.children.push_back(static_cast<BisimVertexId>(rng->Uniform(i)));
      }
      std::sort(v.children.begin(), v.children.end());
      v.children.erase(std::unique(v.children.begin(), v.children.end()),
                       v.children.end());
      int depth = 1;
      for (BisimVertexId c : v.children) {
        depth = std::max(depth, g.vertex(c).depth + 1);
      }
      v.depth = depth;
    }
    g.AddVertex(std::move(v));
  }
  g.set_root(static_cast<BisimVertexId>(n - 1));
  return g;
}

bool BitwiseEqual(const EigPair& a, const EigPair& b) {
  return std::memcmp(&a.lambda_max, &b.lambda_max, sizeof(double)) == 0 &&
         std::memcmp(&a.lambda_min, &b.lambda_min, sizeof(double)) == 0 &&
         std::memcmp(&a.lambda2, &b.lambda2, sizeof(double)) == 0;
}

TEST(CanonicalSignatureTest, IdenticalGraphsShareSignature) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    Rng a(1000 + i), b(1000 + i);
    BisimGraph g1 = RandomPattern(&a, 20, 5);
    BisimGraph g2 = RandomPattern(&b, 20, 5);
    EXPECT_EQ(CanonicalPatternSignature(g1), CanonicalPatternSignature(g2));
  }
}

BisimVertex MakeVertex(LabelId label, std::vector<BisimVertexId> children,
                       int depth) {
  BisimVertex v;
  v.label = label;
  v.children = std::move(children);
  v.depth = depth;
  return v;
}

TEST(CanonicalSignatureTest, DistinguishesLabelAndShape) {
  BisimGraph leaf_a;
  leaf_a.set_root(leaf_a.AddVertex(MakeVertex(1, {}, 1)));
  BisimGraph leaf_b;
  leaf_b.set_root(leaf_b.AddVertex(MakeVertex(2, {}, 1)));
  EXPECT_NE(CanonicalPatternSignature(leaf_a),
            CanonicalPatternSignature(leaf_b));

  // a(b) vs a(b, c): an extra distinct child must show up.
  BisimGraph one_child;
  {
    BisimVertexId c = one_child.AddVertex(MakeVertex(2, {}, 1));
    one_child.set_root(one_child.AddVertex(MakeVertex(1, {c}, 2)));
  }
  BisimGraph two_children;
  {
    BisimVertexId c1 = two_children.AddVertex(MakeVertex(2, {}, 1));
    BisimVertexId c2 = two_children.AddVertex(MakeVertex(3, {}, 1));
    two_children.set_root(two_children.AddVertex(MakeVertex(1, {c1, c2}, 2)));
  }
  EXPECT_NE(CanonicalPatternSignature(one_child),
            CanonicalPatternSignature(two_children));
}

TEST(FeatureCacheTest, LookupMissThenHit) {
  FeatureCache cache(1 << 20);
  CachedFeature out;
  EXPECT_FALSE(cache.Lookup("sig", &out));
  CachedFeature in;
  in.eigs = {1.5, -1.5, 0.5};
  in.solver_failed = false;
  cache.Insert("sig", in);
  ASSERT_TRUE(cache.Lookup("sig", &out));
  EXPECT_TRUE(BitwiseEqual(out.eigs, in.eigs));
  FeatureCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(FeatureCacheTest, SolverFailureBitRoundTrips) {
  FeatureCache cache(1 << 20);
  CachedFeature in;
  in.solver_failed = true;
  cache.Insert("bad", in);
  CachedFeature out;
  ASSERT_TRUE(cache.Lookup("bad", &out));
  EXPECT_TRUE(out.solver_failed);
}

TEST(FeatureCacheTest, EvictsUnderBudget) {
  // Tiny budget: inserting many entries must evict rather than grow.
  FeatureCache cache(16 * 1024);
  CachedFeature in;
  for (int i = 0; i < 4000; ++i) {
    cache.Insert("key-" + std::to_string(i), in);
  }
  FeatureCacheStats stats = cache.Stats();
  EXPECT_GT(stats.evictions, 0u);
  // At least the most recent insert of some shard survives.
  uint64_t survivors = 0;
  for (int i = 0; i < 4000; ++i) {
    CachedFeature out;
    if (cache.Lookup("key-" + std::to_string(i), &out)) ++survivors;
  }
  EXPECT_GT(survivors, 0u);
  EXPECT_LT(survivors, 4000u);
}

TEST(FeatureCacheTest, OversizedEntryIsSkippedNotCached) {
  FeatureCache cache(1024);  // shard budget = 64 bytes, below any entry cost
  CachedFeature in;
  cache.Insert(std::string(4096, 'k'), in);
  CachedFeature out;
  EXPECT_FALSE(cache.Lookup(std::string(4096, 'k'), &out));
}

TEST(FeatureCacheTest, CachedMatchesRecomputedOver1kRandomPatterns) {
  // ~300 distinct shapes sampled 1000 times with repetition: every hit must
  // return bit-for-bit what a fresh solve against the same frozen encoder
  // produces — the property BuildPipeline's determinism rests on.
  Rng rng(42);
  std::vector<BisimGraph> shapes;
  shapes.reserve(300);
  for (int i = 0; i < 300; ++i) {
    Rng shape_rng(5000 + rng.Uniform(120));  // duplicates by construction
    shapes.push_back(RandomPattern(&shape_rng, 12, 4));
  }
  // Freeze the encoder over every shape up front (phase B of the pipeline).
  EdgeEncoder encoder;
  for (const BisimGraph& g : shapes) InternPatternWeights(g, &encoder);

  FeatureCache cache(8 << 20);
  uint64_t hits_checked = 0;
  for (int probe = 0; probe < 1000; ++probe) {
    const BisimGraph& g = shapes[rng.Uniform(shapes.size())];
    DenseMatrix m = BuildSkewMatrixFrozen(g, encoder);
    auto fresh = SkewSpectrum(m);
    ASSERT_TRUE(fresh.ok());
    EigPair want = EigPairFromSpectrum(*fresh);

    std::string sig = CanonicalPatternSignature(g);
    CachedFeature cached;
    if (cache.Lookup(sig, &cached)) {
      EXPECT_TRUE(BitwiseEqual(cached.eigs, want))
          << "cache hit diverged from recomputation at probe " << probe;
      ++hits_checked;
    } else {
      CachedFeature store;
      store.eigs = want;
      cache.Insert(sig, store);
    }
  }
  EXPECT_GT(hits_checked, 500u);  // repetition guarantees plenty of hits
  FeatureCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, hits_checked);
  EXPECT_EQ(stats.hits + stats.misses, 1000u);
}

TEST(FeatureCacheTest, ConcurrentMixedLoad) {
  // 8 workers hammering overlapping keys; correctness = every successful
  // lookup returns the bits whose key it asked for. Run under TSan in CI.
  FeatureCache cache(1 << 20);
  ThreadPool pool(8);
  std::atomic<uint64_t> mismatches{0};
  ParallelFor(&pool, 64, [&](size_t task) {
    Rng rng(task);
    for (int i = 0; i < 500; ++i) {
      const uint64_t k = rng.Uniform(97);
      const std::string key = "key-" + std::to_string(k);
      CachedFeature out;
      if (cache.Lookup(key, &out)) {
        if (out.eigs.lambda_max != static_cast<double>(k)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        CachedFeature in;
        in.eigs.lambda_max = static_cast<double>(k);
        cache.Insert(key, in);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
  FeatureCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses, 64u * 500u);
}

}  // namespace
}  // namespace fix
