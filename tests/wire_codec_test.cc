// Wire codec unit tests: encode/decode round trips for every message in
// the fixd protocol, FrameReader resynchronization behavior, and a
// deterministic corruption fuzz — every single-byte mutation of a valid
// frame must either fail CRC/framing cleanly or decode without reading
// out of bounds; none may crash or hang.

#include "common/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/crc32c.h"

namespace fix {
namespace wire {
namespace {

Frame MustRead(FrameReader* reader) {
  Frame frame;
  std::string error;
  EXPECT_EQ(reader->Next(&frame, &error), FrameReader::Outcome::kFrame)
      << error;
  return frame;
}

TEST(WireFrameTest, RoundTripEmptyAndNonEmptyPayloads) {
  std::string stream;
  AppendFrame(static_cast<uint8_t>(Op::kPing), "", &stream);
  AppendFrame(static_cast<uint8_t>(Op::kQuery), "hello", &stream);

  FrameReader reader;
  reader.Feed(stream);
  Frame a = MustRead(&reader);
  EXPECT_EQ(a.type, static_cast<uint8_t>(Op::kPing));
  EXPECT_TRUE(a.payload.empty());
  Frame b = MustRead(&reader);
  EXPECT_EQ(b.type, static_cast<uint8_t>(Op::kQuery));
  EXPECT_EQ(b.payload, "hello");

  Frame extra;
  EXPECT_EQ(reader.Next(&extra, nullptr), FrameReader::Outcome::kNeedMore);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(WireFrameTest, ByteAtATimeFeedYieldsOneFrame) {
  std::string stream;
  AppendFrame(static_cast<uint8_t>(Op::kStats), "payload bytes", &stream);
  FrameReader reader;
  Frame frame;
  int frames = 0;
  for (char c : stream) {
    reader.Feed(std::string_view(&c, 1));
    if (reader.Next(&frame, nullptr) == FrameReader::Outcome::kFrame) {
      ++frames;
    }
  }
  EXPECT_EQ(frames, 1);
  EXPECT_EQ(frame.payload, "payload bytes");
}

TEST(WireFrameTest, BadMagicPoisonsTheReader) {
  std::string stream = "XXXXXXXXXXXX";  // 12 garbage header bytes
  FrameReader reader;
  reader.Feed(stream);
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.Next(&frame, &error), FrameReader::Outcome::kBad);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  // Even valid bytes after the poison must not resynchronize: the stream
  // boundary is unknown, so the connection owner has to close.
  std::string good;
  AppendFrame(static_cast<uint8_t>(Op::kPing), "", &good);
  reader.Feed(good);
  EXPECT_EQ(reader.Next(&frame, nullptr), FrameReader::Outcome::kBad);
}

TEST(WireFrameTest, RejectsWrongVersionOversizeAndBadCrc) {
  std::string good;
  AppendFrame(static_cast<uint8_t>(Op::kQuery), "abc", &good);

  {
    std::string s = good;
    s[2] = static_cast<char>(kProtocolVersion + 1);
    FrameReader reader;
    reader.Feed(s);
    Frame f;
    std::string error;
    EXPECT_EQ(reader.Next(&f, &error), FrameReader::Outcome::kBad);
    EXPECT_NE(error.find("version"), std::string::npos) << error;
  }
  {
    // Declared length above kMaxPayload must be rejected from the header
    // alone — no attempt to buffer 4 GiB.
    std::string s = good;
    EncodeFixed32(s.data() + 4, kMaxPayload + 1);
    FrameReader reader;
    reader.Feed(s);
    Frame f;
    EXPECT_EQ(reader.Next(&f, nullptr), FrameReader::Outcome::kBad);
  }
  {
    std::string s = good;
    s[kHeaderSize] ^= 0x01;  // flip one payload bit; CRC must catch it
    FrameReader reader;
    reader.Feed(s);
    Frame f;
    std::string error;
    EXPECT_EQ(reader.Next(&f, &error), FrameReader::Outcome::kBad);
    EXPECT_NE(error.find("CRC"), std::string::npos) << error;
  }
}

TEST(WireFrameTest, TruncatedFrameWaitsForMoreBytes) {
  std::string stream;
  AppendFrame(static_cast<uint8_t>(Op::kInsert), "0123456789", &stream);
  for (size_t cut = 0; cut < stream.size(); ++cut) {
    FrameReader reader;
    reader.Feed(std::string_view(stream).substr(0, cut));
    Frame f;
    EXPECT_EQ(reader.Next(&f, nullptr), FrameReader::Outcome::kNeedMore)
        << "prefix length " << cut;
  }
}

TEST(WireCodecTest, QueryRequestRoundTrip) {
  QueryRequest in{"main", "//a[b]/c"};
  std::string payload;
  EncodeQueryRequest(in, &payload);
  QueryRequest out;
  ASSERT_TRUE(DecodeQueryRequest(payload, &out).ok());
  EXPECT_EQ(out.index, in.index);
  EXPECT_EQ(out.xpath, in.xpath);
}

TEST(WireCodecTest, QueryBatchRequestRoundTrip) {
  QueryBatchRequest in;
  in.index = "main";
  in.threads = 4;
  in.xpaths = {"//a", "//b/c", "//d[e]"};
  std::string payload;
  EncodeQueryBatchRequest(in, &payload);
  QueryBatchRequest out;
  ASSERT_TRUE(DecodeQueryBatchRequest(payload, &out).ok());
  EXPECT_EQ(out.index, in.index);
  EXPECT_EQ(out.threads, in.threads);
  EXPECT_EQ(out.xpaths, in.xpaths);
}

TEST(WireCodecTest, InsertRequestRoundTrip) {
  InsertRequest in{"main", "<doc><a/></doc>"};
  std::string payload;
  EncodeInsertRequest(in, &payload);
  InsertRequest out;
  ASSERT_TRUE(DecodeInsertRequest(payload, &out).ok());
  EXPECT_EQ(out.index, in.index);
  EXPECT_EQ(out.xml, in.xml);
}

TEST(WireCodecTest, QueryResponseRoundTrip) {
  QueryOutcome in;
  in.used_index = true;
  in.degraded = false;
  in.candidates = 42;
  in.result_count = 3;
  in.results = {{0, 7}, {1, 9}, {2, 11}};
  std::string payload;
  EncodeQueryResponse(in, &payload);

  Code code = Code::kInternal;
  std::string error;
  size_t body_offset = 0;
  ASSERT_TRUE(DecodeResponseHead(payload, &code, &error, &body_offset).ok());
  EXPECT_EQ(code, Code::kOk);
  EXPECT_EQ(body_offset, 1u);

  QueryOutcome out;
  ASSERT_TRUE(DecodeQueryResponse(payload, &out).ok());
  EXPECT_EQ(out.code, Code::kOk);
  EXPECT_EQ(out.used_index, in.used_index);
  EXPECT_EQ(out.degraded, in.degraded);
  EXPECT_EQ(out.candidates, in.candidates);
  EXPECT_EQ(out.result_count, in.result_count);
  EXPECT_EQ(out.results, in.results);
}

TEST(WireCodecTest, QueryBatchResponseKeepsPerQueryErrors) {
  QueryOutcome ok;
  ok.result_count = 1;
  ok.results = {{3, 4}};
  QueryOutcome failed;
  failed.code = Code::kParseError;
  failed.error = "xpath: unexpected token";
  std::string payload;
  EncodeQueryBatchResponse({ok, failed}, &payload);

  std::vector<QueryOutcome> out;
  ASSERT_TRUE(DecodeQueryBatchResponse(payload, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].code, Code::kOk);
  EXPECT_EQ(out[0].results, ok.results);
  EXPECT_EQ(out[1].code, Code::kParseError);
  EXPECT_EQ(out[1].error, failed.error);
  EXPECT_TRUE(out[1].results.empty());
}

TEST(WireCodecTest, InsertAndStatsResponseRoundTrip) {
  InsertResponse ins{17, 12345};
  std::string payload;
  EncodeInsertResponse(ins, &payload);
  InsertResponse ins_out;
  ASSERT_TRUE(DecodeInsertResponse(payload, &ins_out).ok());
  EXPECT_EQ(ins_out.doc_id, ins.doc_id);
  EXPECT_EQ(ins_out.generation, ins.generation);

  StatsResponse stats{"# HELP fix_x y\nfix_x 1\n"};
  payload.clear();
  EncodeStatsResponse(stats, &payload);
  StatsResponse stats_out;
  ASSERT_TRUE(DecodeStatsResponse(payload, &stats_out).ok());
  EXPECT_EQ(stats_out.prometheus_text, stats.prometheus_text);
}

TEST(WireCodecTest, ErrorResponseRoundTrip) {
  std::string payload;
  EncodeErrorResponse(Code::kOverloaded, "shed: 128 in flight", &payload);
  Code code = Code::kOk;
  std::string error;
  size_t body_offset = 0;
  ASSERT_TRUE(DecodeResponseHead(payload, &code, &error, &body_offset).ok());
  EXPECT_EQ(code, Code::kOverloaded);
  EXPECT_EQ(error, "shed: 128 in flight");
}

TEST(WireCodecTest, TruncatedPayloadsFailCleanly) {
  // Every proper prefix of a valid encoding must be rejected (never
  // accepted with garbage, never read past the end).
  QueryBatchRequest req;
  req.index = "main";
  req.threads = 2;
  req.xpaths = {"//a/b", "//c"};
  std::string payload;
  EncodeQueryBatchRequest(req, &payload);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    QueryBatchRequest out;
    EXPECT_FALSE(
        DecodeQueryBatchRequest(payload.substr(0, cut), &out).ok())
        << "prefix length " << cut;
  }

  QueryOutcome outcome;
  outcome.result_count = 2;
  outcome.results = {{1, 2}, {3, 4}};
  std::string response;
  EncodeQueryResponse(outcome, &response);
  for (size_t cut = 0; cut < response.size(); ++cut) {
    QueryOutcome out;
    EXPECT_FALSE(DecodeQueryResponse(response.substr(0, cut), &out).ok())
        << "prefix length " << cut;
  }
}

TEST(WireCodecTest, OversizedInnerLengthIsRejectedBeforeAllocation) {
  // A recursive length field pointing past the payload end must fail
  // validation rather than resize() to the declared (hostile) size.
  std::string payload;
  EncodeQueryRequest({"main", "//a"}, &payload);
  EncodeFixed32(payload.data(), 0x7fffffff);  // index-string length
  QueryRequest out;
  EXPECT_FALSE(DecodeQueryRequest(payload, &out).ok());

  // Same for the result-row count in a query response.
  QueryOutcome outcome;
  outcome.results = {{1, 1}};
  outcome.result_count = 1;
  std::string response;
  EncodeQueryResponse(outcome, &response);
  // Count field sits after code(1) + flags(1) + candidates(8) + total(8).
  EncodeFixed32(response.data() + 18, 0x00ffffff);
  QueryOutcome decoded;
  EXPECT_FALSE(DecodeQueryResponse(response, &decoded).ok());
}

TEST(WireCodecTest, SingleByteCorruptionFuzzNeverCrashes) {
  // Deterministic fuzz: take one valid frame of each request/response
  // kind, flip every byte through a handful of XOR masks, and require the
  // frame layer (CRC) or the decoder to reject cleanly. Header bytes are
  // mutated too, covering magic/version/type/length corruption.
  std::vector<std::string> payloads;
  {
    std::string p;
    EncodeQueryRequest({"main", "//a[b]/c"}, &p);
    payloads.push_back(p);
    p.clear();
    QueryBatchRequest batch;
    batch.index = "main";
    batch.threads = 3;
    batch.xpaths = {"//a", "//b"};
    EncodeQueryBatchRequest(batch, &p);
    payloads.push_back(p);
    p.clear();
    EncodeInsertRequest({"main", "<d><e/></d>"}, &p);
    payloads.push_back(p);
    p.clear();
    QueryOutcome outcome;
    outcome.used_index = true;
    outcome.candidates = 5;
    outcome.result_count = 2;
    outcome.results = {{0, 1}, {0, 2}};
    EncodeQueryResponse(outcome, &p);
    payloads.push_back(p);
  }

  constexpr uint8_t kMasks[] = {0x01, 0x10, 0x80, 0xff};
  for (const std::string& payload : payloads) {
    std::string frame_bytes;
    AppendFrame(static_cast<uint8_t>(Op::kQuery), payload, &frame_bytes);
    for (size_t pos = 0; pos < frame_bytes.size(); ++pos) {
      for (uint8_t mask : kMasks) {
        std::string mutated = frame_bytes;
        mutated[pos] = static_cast<char>(mutated[pos] ^ mask);
        FrameReader reader;
        reader.Feed(mutated);
        Frame frame;
        switch (reader.Next(&frame, nullptr)) {
          case FrameReader::Outcome::kBad:
          case FrameReader::Outcome::kNeedMore:
            break;  // rejected at the frame layer (or length grew)
          case FrameReader::Outcome::kFrame: {
            // CRC happened to survive (e.g. type-byte mutation is not
            // covered by the payload CRC); decoding must still be safe.
            QueryRequest q;
            (void)DecodeQueryRequest(frame.payload, &q);
            QueryBatchRequest b;
            (void)DecodeQueryBatchRequest(frame.payload, &b);
            QueryOutcome o;
            (void)DecodeQueryResponse(frame.payload, &o);
            break;
          }
        }
      }
    }
  }
}

TEST(WireCodecTest, CodeMappingsAreStable) {
  EXPECT_EQ(CodeFromStatus(Status::OK()), Code::kOk);
  EXPECT_EQ(CodeFromStatus(Status::Unavailable("x")), Code::kOverloaded);
  EXPECT_EQ(CodeFromStatus(Status::NotFound("x")), Code::kNotFound);
  EXPECT_EQ(CodeFromStatus(Status::ParseError("x")), Code::kParseError);
  EXPECT_EQ(CodeFromStatus(Status::IOError("x")), Code::kIOError);
  EXPECT_EQ(CodeFromStatus(Status::Corruption("x")), Code::kIOError);
  EXPECT_EQ(CodeFromStatus(Status::Internal("x")), Code::kInternal);
  EXPECT_STREQ(CodeName(Code::kOverloaded), "Overloaded");
  EXPECT_TRUE(IsKnownOp(static_cast<uint8_t>(Op::kPing)));
  EXPECT_TRUE(IsKnownOp(static_cast<uint8_t>(Op::kStats) | kResponseBit));
  EXPECT_FALSE(IsKnownOp(0x00));
  EXPECT_FALSE(IsKnownOp(0x7f));
}

}  // namespace
}  // namespace wire
}  // namespace fix
