// Cross-module property tests, parameterized over data sets and index
// configurations. These are the load-bearing invariants of the paper:
//
//  P1 (no false negatives / Theorems 3+5): every index entry that produces
//     a result survives the index probe, for random data-sampled queries.
//  P2 (exactness after refinement): FIX results == full-scan results.
//  P3 (Theorem 4): depth-limited indexing creates exactly one entry per
//     element of documents deeper than the limit.
//  P4 (spectral symmetry): every indexed key has λ_min = -λ_max.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>

#include "baseline/full_scan.h"
#include "core/corpus.h"
#include "core/feature.h"
#include "core/fix_index.h"
#include "core/fix_query.h"
#include "core/metrics.h"
#include "datagen/datasets.h"
#include "datagen/query_gen.h"

namespace fix {
namespace {

enum class DataSet { kTcmd, kDblp, kXMark, kTreebank };

struct Config {
  DataSet data;
  int depth_limit;
  bool clustered;
  bool use_lambda2;
  bool sound_probe;
  const char* name;
};

void Generate(DataSet data, Corpus* corpus) {
  switch (data) {
    case DataSet::kTcmd: {
      TcmdOptions o;
      o.num_docs = 60;
      GenerateTcmd(corpus, o);
      break;
    }
    case DataSet::kDblp: {
      DblpOptions o;
      o.num_publications = 350;
      GenerateDblp(corpus, o);
      break;
    }
    case DataSet::kXMark: {
      XMarkOptions o;
      o.num_items = 24;
      o.num_people = 24;
      o.num_open_auctions = 24;
      o.num_closed_auctions = 24;
      o.num_categories = 12;
      GenerateXMark(corpus, o);
      break;
    }
    case DataSet::kTreebank: {
      TreebankOptions o;
      o.num_sentences = 80;
      GenerateTreebank(corpus, o);
      break;
    }
  }
}

class PropertyTest : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    // Include the test-case name: ctest runs the cases of one dataset as
    // separate parallel processes, and a shared directory would let one
    // case's TearDown delete another's live index files.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    std::string case_name = info->name();  // "TestName/param" for TEST_P
    std::replace(case_name.begin(), case_name.end(), '/', '_');
    dir_ = ::testing::TempDir() + "/fix_prop_" + case_name;
    std::filesystem::create_directories(dir_);
    Generate(GetParam().data, &corpus_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  Corpus corpus_;
};

TEST_P(PropertyTest, NoFalseNegativesAndExactResults) {
  const Config& config = GetParam();
  IndexOptions options;
  options.depth_limit = config.depth_limit;
  options.clustered = config.clustered;
  options.use_lambda2 = config.use_lambda2;
  options.sound_probe = config.sound_probe;
  options.path = dir_ + "/prop.fix";
  auto index = FixIndex::Build(&corpus_, options, nullptr);
  ASSERT_TRUE(index.ok()) << index.status();

  QueryGenOptions qopts;
  qopts.seed = 1234;
  qopts.max_depth =
      config.depth_limit > 0 ? config.depth_limit : 4;
  auto queries = GenerateRandomQueries(corpus_, 30, qopts);
  ASSERT_GT(queries.size(), 5u);

  FixQueryProcessor processor(&corpus_, &*index);
  for (const auto& q : queries) {
    std::vector<NodeRef> via_index;
    auto stats = processor.Execute(q, &via_index);
    ASSERT_TRUE(stats.ok()) << q.ToString();
    ASSERT_TRUE(stats->covered) << q.ToString();

    // P1: producing candidates == ground-truth producers. A missing
    // producer would be a false negative.
    GroundTruth gt = ComputeGroundTruth(corpus_, q, config.depth_limit);
    EXPECT_EQ(stats->producing, gt.producers) << q.ToString();
    EXPECT_EQ(stats->total_entries, gt.entries) << q.ToString();
    EXPECT_GE(stats->candidates, gt.producers) << q.ToString();
    if (!config.clustered) {
      // Clustered refinement counts per-candidate bindings (copies cannot
      // be deduplicated globally); only the unclustered count is exact.
      EXPECT_EQ(stats->result_count, gt.results) << q.ToString();
    }

    // P2: exact result set (unclustered refinement reports refs).
    if (!config.clustered) {
      std::vector<NodeRef> via_scan;
      FullScan(corpus_, q, &via_scan);
      std::set<std::pair<uint32_t, uint32_t>> a, b;
      for (auto r : via_index) a.insert({r.doc_id, r.node_id});
      for (auto r : via_scan) b.insert({r.doc_id, r.node_id});
      EXPECT_EQ(a, b) << q.ToString();
    }
  }
}

TEST_P(PropertyTest, EntryCountMatchesTheorem4) {
  const Config& config = GetParam();
  IndexOptions options;
  options.depth_limit = config.depth_limit;
  options.clustered = config.clustered;
  options.path = dir_ + "/count.fix";
  auto index = FixIndex::Build(&corpus_, options, nullptr);
  ASSERT_TRUE(index.ok());
  uint64_t expected = 0;
  for (uint32_t d = 0; d < corpus_.num_docs(); ++d) {
    const Document& doc = corpus_.doc(d);
    if (doc.root_element() == kInvalidNode) continue;
    if (config.depth_limit == 0) {
      expected += 1;  // whole-document unit
    } else {
      expected += doc.CountElements();  // one per element (Theorem 4)
    }
  }
  EXPECT_EQ(index->num_entries(), expected);
}

TEST_P(PropertyTest, IndexedKeysAreSymmetricRanges) {
  const Config& config = GetParam();
  IndexOptions options;
  options.depth_limit = config.depth_limit;
  options.path = dir_ + "/sym.fix";
  auto index = FixIndex::Build(&corpus_, options, nullptr);
  ASSERT_TRUE(index.ok());
  auto it = index->btree()->SeekFirst();
  ASSERT_TRUE(it.ok());
  uint64_t checked = 0;
  while (it->Valid()) {
    FeatureKey k = DecodeFeatureKey(it->key());
    EXPECT_DOUBLE_EQ(k.lambda_min, -k.lambda_max);
    EXPECT_GE(k.lambda_max, 0.0);
    EXPECT_GE(k.lambda_max, k.lambda2);
    ++checked;
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(checked, index->num_entries());
}

// Paper-mode (sound_probe=false) configurations are deterministic (fixed
// seeds) and pass on these data/query mixes; xmark_l6 in paper mode is the
// documented counterexample (see soundness_test.cc) and therefore runs the
// provably sound probe here.
INSTANTIATE_TEST_SUITE_P(
    AllDataSets, PropertyTest,
    ::testing::Values(
        Config{DataSet::kTcmd, 0, false, false, false, "tcmd_l0"},
        Config{DataSet::kTcmd, 0, true, false, false, "tcmd_l0_clustered"},
        Config{DataSet::kTcmd, 0, false, true, false, "tcmd_l0_lambda2"},
        Config{DataSet::kTcmd, 0, false, false, true, "tcmd_l0_sound"},
        Config{DataSet::kDblp, 4, false, false, false, "dblp_l4"},
        Config{DataSet::kDblp, 4, true, false, false, "dblp_l4_clustered"},
        Config{DataSet::kDblp, 4, false, false, true, "dblp_l4_sound"},
        Config{DataSet::kXMark, 4, false, false, false, "xmark_l4"},
        Config{DataSet::kXMark, 4, false, true, false, "xmark_l4_lambda2"},
        Config{DataSet::kXMark, 6, false, false, true, "xmark_l6_sound"},
        Config{DataSet::kXMark, 6, true, false, true,
               "xmark_l6_sound_clustered"},
        Config{DataSet::kTreebank, 4, false, false, false, "treebank_l4"},
        Config{DataSet::kTreebank, 4, true, false, false,
               "treebank_l4_clustered"},
        Config{DataSet::kTreebank, 6, false, false, true,
               "treebank_l6_sound"}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace fix
