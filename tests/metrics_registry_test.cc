// MetricsRegistry: exact concurrent counting, histogram quantile error
// bounds, and snapshot-while-writing safety (the latter is what the
// `concurrency` ctest label runs under TSan).

#include "common/metrics_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace fix {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(CounterTest, AddAndReset) {
  Counter counter;
  counter.Add(41);
  counter.Increment();
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAddNegative) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-25);
  EXPECT_EQ(gauge.value(), -15);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(HistogramTest, BucketRoundTrip) {
  // Every value lands in a bucket whose bounds contain it, and each
  // bucket's upper bound maps back to that bucket.
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{15}, uint64_t{16},
                     uint64_t{17}, uint64_t{100}, uint64_t{1023},
                     uint64_t{1024}, uint64_t{999999}, uint64_t{1} << 40,
                     uint64_t{UINT64_MAX / 2}}) {
    const size_t i = Histogram::BucketIndex(v);
    ASSERT_LT(i, Histogram::kNumBuckets);
    EXPECT_LE(v, Histogram::BucketUpperBound(i)) << "value " << v;
    if (i > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(i - 1)) << "value " << v;
    }
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(i)), i)
        << "bucket " << i;
  }
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram hist;
  for (uint64_t v = 0; v < 16; ++v) hist.Record(v);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 16u);
  EXPECT_EQ(snap.sum, 120u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 15u);
  // Values below 16 get exact buckets, so quantiles are exact rank values
  // (rank = floor(q * count), cumulative-count convention).
  EXPECT_EQ(snap.p50, 7u);
  EXPECT_EQ(snap.p95, 14u);
}

TEST(HistogramTest, QuantileErrorBounded) {
  // Uniform 1..10000: every reported quantile must be an upper bound on the
  // true quantile with at most 12.5% relative error (the sub-bucket width).
  Histogram hist;
  constexpr uint64_t kN = 10000;
  for (uint64_t v = 1; v <= kN; ++v) hist.Record(v);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kN);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, kN);
  const struct {
    uint64_t reported;
    uint64_t truth;
  } cases[] = {{snap.p50, kN / 2}, {snap.p95, kN * 95 / 100},
               {snap.p99, kN * 99 / 100}};
  for (const auto& c : cases) {
    EXPECT_GE(c.reported, c.truth);
    EXPECT_LE(static_cast<double>(c.reported),
              static_cast<double>(c.truth) * 1.125 + 1.0);
  }
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_LE(snap.p99, snap.max);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram hist;
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.p99, 0u);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(HistogramTest, SnapshotWhileWriting) {
  // Readers snapshot continuously while writers record; every snapshot must
  // be internally consistent (ordered quantiles, quantiles bounded by max,
  // count never decreasing). Run under TSan via the `concurrency` label.
  Histogram hist;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&hist, &stop, t] {
      uint64_t v = static_cast<uint64_t>(t) + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        hist.Record(v % 100000);
        v = v * 2862933555777941757ull + 3037000493ull;  // cheap LCG
      }
    });
  }
  uint64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    HistogramSnapshot snap = hist.Snapshot();
    EXPECT_GE(snap.count, last_count);
    last_count = snap.count;
    if (snap.count > 0) {
      EXPECT_LE(snap.p50, snap.p95);
      EXPECT_LE(snap.p95, snap.p99);
      EXPECT_LE(snap.p99, snap.max);
      EXPECT_LE(snap.min, snap.max);
    }
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointer) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  Counter* a = registry.FindOrCreateCounter("test.registry.stable", "ops", "");
  Counter* b = registry.FindOrCreateCounter("test.registry.stable", "ops", "");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryTest, TypeMismatchReturnsNull) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  ASSERT_NE(registry.FindOrCreateCounter("test.registry.typed", "ops", ""),
            nullptr);
  EXPECT_EQ(registry.FindOrCreateGauge("test.registry.typed", "ops", ""),
            nullptr);
  EXPECT_EQ(registry.FindOrCreateHistogram("test.registry.typed", "ops", ""),
            nullptr);
}

TEST(MetricsRegistryTest, SnapshotSortedAndComplete) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.FindOrCreateCounter("test.snap.b", "ops", "")->Add(2);
  registry.FindOrCreateCounter("test.snap.a", "ops", "")->Add(1);
  std::vector<MetricSnapshot> snaps = registry.Snapshot();
  size_t found = 0;
  for (size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_LT(snaps[i - 1].name, snaps[i].name);  // sorted, unique
  }
  for (const MetricSnapshot& s : snaps) {
    if (s.name == "test.snap.a") {
      ++found;
      EXPECT_GE(s.counter, 1u);
    }
    if (s.name == "test.snap.b") {
      ++found;
      EXPECT_GE(s.counter, 2u);
    }
  }
  EXPECT_EQ(found, 2u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationOneWinner) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter* c = registry.FindOrCreateCounter("test.registry.race", "ops",
                                                "registration race");
      c->Increment();
      seen[static_cast<size_t>(t)] = c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[0], seen[static_cast<size_t>(t)]);
  }
  EXPECT_EQ(seen[0]->value(), static_cast<uint64_t>(kThreads));
}

TEST(MetricsRegistryTest, PrometheusTextFormat) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.FindOrCreateCounter("test.prom.counter", "ops", "a counter")
      ->Add(7);
  registry.FindOrCreateGauge("test.prom.gauge", "items", "a gauge")->Set(-3);
  registry.FindOrCreateHistogram("test.prom.hist", "us", "a histogram")
      ->Record(42);
  std::string text = registry.PrometheusText();
  // Dots map to underscores; counters/gauges print raw, histograms print
  // summary quantiles plus _sum/_count.
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_counter 7"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge -3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_hist summary"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count"), std::string::npos);
  // No un-mapped dotted names anywhere in the exposition.
  EXPECT_EQ(text.find("test.prom"), std::string::npos);
}

TEST(MetricsRegistryTest, HumanTableListsMetrics) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  registry.FindOrCreateCounter("test.human.counter", "ops", "")->Add(5);
  std::string table = registry.HumanTable();
  EXPECT_NE(table.find("test.human.counter"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllZeroesValuesKeepsRegistrations) {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  Counter* c = registry.FindOrCreateCounter("test.reset.counter", "ops", "");
  Histogram* h = registry.FindOrCreateHistogram("test.reset.hist", "us", "");
  c->Add(9);
  h->Record(100);
  registry.ResetAllForTest();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->Snapshot().count, 0u);
  // Cached pointers stay valid and usable after the reset.
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
}

}  // namespace
}  // namespace fix
