// Golden-suite coverage for the fixlint analyzer (tools/fixlint_lib.h,
// rule catalog in docs/STATIC_ANALYSIS.md).
//
// Snippets live in tests/fixlint_golden/{bad,good}/*.snip — C++ fragments
// with directive comments the harness turns into an Analyze() call:
//
//   // path: src/golden/foo.cc        pretend repo path for the snippet
//   // expect: <rule>                 one line per expected finding (bad/)
//   // doc-lock-order: <rank> <name>  adds an ARCHITECTURE.md lock entry
//   // doc-metric: <name>             adds a documented metric name
//
// Every bad snippet must produce exactly its expected findings and no
// others; every good snippet must come back clean. Rules whose findings
// attach to the docs themselves (options-doc-drift and the doc-side halves
// of metric-doc-drift / lock-order) are driven by in-code configs, and the
// whole real source tree is re-analyzed at the end and must be clean.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/fixlint_lib.h"

namespace {

namespace fs = std::filesystem;

fs::path GoldenDir() {
  return fs::path(FIX_SOURCE_ROOT) / "tests" / "fixlint_golden";
}

struct Snippet {
  std::string file;          // snippet filename, for failure messages
  std::string pretend_path;  // the repo path Analyze() sees
  std::vector<std::string> expects;
  fixlint::Config config;
  std::string content;
};

bool Directive(const std::string& line, const std::string& prefix,
               std::string* value) {
  if (line.rfind(prefix, 0) != 0) return false;
  *value = line.substr(prefix.size());
  return true;
}

Snippet ParseSnippet(const fs::path& file) {
  Snippet s;
  s.file = file.filename().string();
  std::ifstream in(file);
  EXPECT_TRUE(in.is_open()) << file;
  std::ostringstream content;
  std::string line, value, lock_entries, metric_entries;
  while (std::getline(in, line)) {
    content << line << '\n';
    if (Directive(line, "// path: ", &value)) {
      s.pretend_path = value;
    } else if (Directive(line, "// expect: ", &value)) {
      s.expects.push_back(value);
    } else if (Directive(line, "// doc-lock-order: ", &value)) {
      lock_entries += value + "\n";
    } else if (Directive(line, "// doc-metric: ", &value)) {
      metric_entries += "`" + value + "`\n";
    }
  }
  s.content = content.str();
  if (!lock_entries.empty()) {
    s.config.architecture_doc = "<!-- LOCK-ORDER:BEGIN -->\n" + lock_entries +
                                "<!-- LOCK-ORDER:END -->\n";
  }
  if (!metric_entries.empty()) s.config.observability_doc = metric_entries;
  return s;
}

std::vector<Snippet> LoadSnippets(const std::string& subdir) {
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(GoldenDir() / subdir)) {
    if (entry.path().extension() == ".snip") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<Snippet> out;
  for (const fs::path& p : paths) out.push_back(ParseSnippet(p));
  return out;
}

std::vector<fixlint::Finding> AnalyzeSnippet(const Snippet& s) {
  return fixlint::Analyze({{s.pretend_path, s.content}}, s.config);
}

std::string Dump(const std::vector<fixlint::Finding>& findings) {
  std::string out;
  for (const fixlint::Finding& f : findings) {
    out += "\n  " + fixlint::FormatFinding(f);
  }
  return out.empty() ? std::string("\n  (no findings)") : out;
}

TEST(FixlintGolden, BadSnippetsTriggerExactlyTheirRules) {
  const std::vector<Snippet> snippets = LoadSnippets("bad");
  ASSERT_GE(snippets.size(), 8u);
  for (const Snippet& s : snippets) {
    ASSERT_FALSE(s.pretend_path.empty()) << s.file;
    ASSERT_FALSE(s.expects.empty()) << s.file << ": bad snippet needs expects";
    const std::vector<fixlint::Finding> findings = AnalyzeSnippet(s);
    std::multiset<std::string> got, want(s.expects.begin(), s.expects.end());
    for (const fixlint::Finding& f : findings) got.insert(f.rule);
    EXPECT_EQ(want, got) << s.file << Dump(findings);
  }
}

TEST(FixlintGolden, GoodSnippetsComeBackClean) {
  const std::vector<Snippet> snippets = LoadSnippets("good");
  ASSERT_GE(snippets.size(), 4u);
  for (const Snippet& s : snippets) {
    ASSERT_FALSE(s.pretend_path.empty()) << s.file;
    EXPECT_TRUE(s.expects.empty()) << s.file << ": good snippets take no expects";
    const std::vector<fixlint::Finding> findings = AnalyzeSnippet(s);
    EXPECT_TRUE(findings.empty()) << s.file << Dump(findings);
  }
}

TEST(FixlintGolden, EveryRuleIsExercisedByTheSuite) {
  const std::vector<std::string> names = fixlint::RuleNames();
  const std::set<std::string> rules(names.begin(), names.end());
  EXPECT_EQ(7u, rules.size());
  std::set<std::string> covered;
  for (const Snippet& s : LoadSnippets("bad")) {
    for (const std::string& e : s.expects) {
      EXPECT_TRUE(rules.count(e)) << s.file << ": unknown rule " << e;
      covered.insert(e);
    }
  }
  // options-doc-drift findings attach to the header/doc paths, not to a
  // snippet file; the in-code tests below carry that rule.
  covered.insert("options-doc-drift");
  EXPECT_EQ(rules, covered);
}

TEST(Fixlint, SuppressionCoversOnlyTheNamedRule) {
  fixlint::SourceFile f;
  f.path = "src/golden/s.cc";
  f.content =
      "void F() {\n"
      "  int x = rand();  // fixlint:ignore(banned-function)\n"
      "  (void)x;\n"
      "}\n";
  EXPECT_TRUE(fixlint::Analyze({f}, fixlint::Config{}).empty());

  f.content =
      "void F() {\n"
      "  int x = rand();  // fixlint:ignore(raw-lock)\n"
      "  (void)x;\n"
      "}\n";
  const std::vector<fixlint::Finding> findings =
      fixlint::Analyze({f}, fixlint::Config{});
  ASSERT_EQ(1u, findings.size()) << Dump(findings);
  EXPECT_EQ("banned-function", findings[0].rule);
  EXPECT_EQ(2, findings[0].line);
}

TEST(Fixlint, OptionsDriftIsReportedInBothDirections) {
  fixlint::Config config;
  config.index_options_header =
      "struct IndexOptions {\n"
      "  int documented = 1;\n"
      "  int undocumented = 2;\n"
      "};\n";
  config.architecture_doc =
      "<!-- OPTIONS-INVENTORY:BEGIN -->\n"
      "| `documented` | 1 | yes | a field |\n"
      "| `ghost` | 0 | no | removed long ago |\n"
      "<!-- OPTIONS-INVENTORY:END -->\n";
  const std::vector<fixlint::Finding> findings =
      fixlint::Analyze({}, config);
  ASSERT_EQ(2u, findings.size()) << Dump(findings);
  std::map<std::string, std::string> by_path;
  for (const fixlint::Finding& f : findings) {
    EXPECT_EQ("options-doc-drift", f.rule);
    by_path[f.path] = f.message;
  }
  EXPECT_NE(std::string::npos,
            by_path["src/core/index_options.h"].find("undocumented"));
  EXPECT_NE(std::string::npos,
            by_path["docs/ARCHITECTURE.md"].find("ghost"));
}

TEST(Fixlint, DocumentedButUnregisteredMetricIsDrift) {
  fixlint::Config config;
  config.observability_doc = "| `fix.golden.ghost` | counter | never |\n";
  const std::vector<fixlint::Finding> findings =
      fixlint::Analyze({}, config);
  ASSERT_EQ(1u, findings.size()) << Dump(findings);
  EXPECT_EQ("metric-doc-drift", findings[0].rule);
  EXPECT_EQ("docs/OBSERVABILITY.md", findings[0].path);
}

TEST(Fixlint, UntaggedDocLockEntryIsReported) {
  fixlint::Config config;
  config.architecture_doc =
      "<!-- LOCK-ORDER:BEGIN -->\n"
      "1 Golden::mu_\n"
      "<!-- LOCK-ORDER:END -->\n";
  const std::vector<fixlint::Finding> findings =
      fixlint::Analyze({}, config);
  ASSERT_EQ(1u, findings.size()) << Dump(findings);
  EXPECT_EQ("lock-order", findings[0].rule);
  EXPECT_EQ("docs/ARCHITECTURE.md", findings[0].path);
}

TEST(Fixlint, DuplicateDocLockEntryIsReported) {
  fixlint::Config config;
  config.architecture_doc =
      "<!-- LOCK-ORDER:BEGIN -->\n"
      "1 Golden::mu_\n"
      "2 Golden::mu_\n"
      "<!-- LOCK-ORDER:END -->\n";
  fixlint::SourceFile f;
  f.path = "src/golden/locks.cc";
  f.content = "// LOCK-ORDER: 1 Golden::mu_\nint mu_;\n";
  const std::vector<fixlint::Finding> findings =
      fixlint::Analyze({f}, config);
  ASSERT_EQ(1u, findings.size()) << Dump(findings);
  EXPECT_EQ("lock-order", findings[0].rule);
  EXPECT_NE(std::string::npos, findings[0].message.find("duplicate"));
}

TEST(Fixlint, FormatFindingOmitsLineZero) {
  fixlint::Finding f{"docs/ARCHITECTURE.md", 0, "lock-order", "msg"};
  EXPECT_EQ("docs/ARCHITECTURE.md: [lock-order] msg",
            fixlint::FormatFinding(f));
  f.line = 12;
  EXPECT_EQ("docs/ARCHITECTURE.md:12: [lock-order] msg",
            fixlint::FormatFinding(f));
}

TEST(Fixlint, LoadTreeRejectsNonRepoRoot) {
  std::vector<fixlint::SourceFile> files;
  fixlint::Config config;
  std::string error;
  EXPECT_FALSE(fixlint::LoadTree(GoldenDir().string(), &files, &config,
                                 &error));
  EXPECT_FALSE(error.empty());
}

// The capstone: the real tree must stay lint-clean by construction. Same
// check as the `fixlint_tree` ctest, but failing inside the golden suite
// prints each finding as its own assertion.
TEST(Fixlint, RealSourceTreeIsClean) {
  std::vector<fixlint::SourceFile> files;
  fixlint::Config config;
  std::string error;
  ASSERT_TRUE(fixlint::LoadTree(FIX_SOURCE_ROOT, &files, &config, &error))
      << error;
  EXPECT_GT(files.size(), 100u);
  for (const fixlint::Finding& f : fixlint::Analyze(files, config)) {
    ADD_FAILURE() << fixlint::FormatFinding(f);
  }
}

}  // namespace
