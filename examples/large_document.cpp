// Scenario: one large structure-rich document (the XMark regime) indexed
// with a subpattern depth limit — one index entry per element (Theorem 4) —
// and compared against the no-index navigational scan and the F&B covering
// index on the same queries.
//
//   ./large_document [workdir]

#include <cstdio>
#include <filesystem>
#include <string>

#include "baseline/fb_index.h"
#include "baseline/full_scan.h"
#include "core/database.h"
#include "datagen/datasets.h"

int main(int argc, char** argv) {
  std::string workdir = argc > 1 ? argv[1] : "/tmp/fix_large_doc";
  std::filesystem::create_directories(workdir);
  fix::Database db(workdir);

  fix::XMarkOptions gen;
  gen.num_items = 120;
  gen.num_people = 120;
  gen.num_open_auctions = 120;
  gen.num_closed_auctions = 120;
  gen.num_categories = 60;
  fix::GenerateXMark(db.corpus(), gen);
  if (auto s = db.Finalize(); !s.ok()) return 1;
  std::printf("document: %zu elements\n", db.corpus()->TotalElements());

  fix::IndexOptions options;
  options.depth_limit = 6;  // covers twig queries up to 6 levels
  fix::BuildStats stats;
  if (!db.BuildIndex("xmark", options, &stats).ok()) return 1;
  std::printf("FIX index: %llu entries (one per element), built in %.2f s, "
              "%llu oversized pattern(s)\n",
              static_cast<unsigned long long>(stats.entries),
              stats.construction_seconds,
              static_cast<unsigned long long>(stats.oversized_patterns));

  fix::FbBuildStats fb_stats;
  auto fb = fix::FbIndex::Build(db.corpus(), &fb_stats);
  if (!fb.ok()) return 1;
  std::printf("F&B index: %llu classes, %llu edges\n\n",
              static_cast<unsigned long long>(fb_stats.classes),
              static_cast<unsigned long long>(fb_stats.edges));

  const char* queries[] = {
      "//item/mailbox/mail/text/emph/keyword",
      "//open_auction[seller]/annotation/description/text",
      "//category/description[parlist]/parlist/listitem/text",
  };
  std::printf("%-55s %10s %12s %10s\n", "query", "NoK(ms)", "FIX(ms)",
              "F&B(ms)");
  for (const char* text : queries) {
    auto compiled = db.Compile(text);
    if (!compiled.ok()) return 1;

    fix::ScanStats scan = fix::FullScan(*db.corpus(), *compiled);
    auto exec = db.Query("xmark", text);
    if (!exec.ok()) return 1;
    auto fb_exec = fb->Execute(*compiled);
    if (!fb_exec.ok()) return 1;

    std::printf("%-55s %10.2f %12.2f %10.2f   (%llu results, pp %.1f%%)\n",
                text, scan.eval_ms, exec->lookup_ms + exec->refine_ms,
                fb_exec->eval_ms,
                static_cast<unsigned long long>(exec->result_count),
                exec->pruning_power() * 100);
  }
  return 0;
}
