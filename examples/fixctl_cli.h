// fixctl's command/flag tables, split out of the binary so a unit test
// (tests/fixctl_cli_test.cc) can assert the help text never drifts from
// the flags the parser actually accepts — the single source of truth for
// both is the tables below.

#ifndef FIX_EXAMPLES_FIXCTL_CLI_H_
#define FIX_EXAMPLES_FIXCTL_CLI_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace fixctl {

struct CliFlag {
  const char* name;        ///< including leading dashes, e.g. "--threads"
  const char* value_name;  ///< nullptr for boolean flags
  const char* help;        ///< one-line description
};

struct CliCommand {
  const char* name;      ///< subcommand, e.g. "build"
  const char* operands;  ///< positional operand synopsis
  const char* help;      ///< one-line description
  const CliFlag* flags;  ///< may be nullptr
  size_t num_flags;
};

/// Every subcommand fixctl accepts, in display order.
const std::vector<CliCommand>& Commands();

/// The command named `name`, or nullptr.
const CliCommand* FindCommand(std::string_view name);

/// The flag named `name` within `cmd`, or nullptr. Parsers route through
/// this so accepting an undeclared flag is impossible.
const CliFlag* FindFlag(const CliCommand& cmd, std::string_view name);

/// Compact synopsis (the `usage:` block).
std::string UsageText();

/// Full help: synopsis plus per-command flag descriptions.
std::string HelpText();

}  // namespace fixctl

#endif  // FIX_EXAMPLES_FIXCTL_CLI_H_
