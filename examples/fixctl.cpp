// fixctl: a command-line driver for the whole library — generate or load a
// corpus, build indexes, run queries, inspect statistics. This is the
// "ops tool" a downstream user would reach for first.
//
// Run `fixctl help` for the full command synopsis; the tables driving both
// the parser and the help text live in fixctl_cli.{h,cc} and are kept in
// sync by tests/fixctl_cli_test.cc.
//
// <dir> holds the corpus (labels/primary/manifest) and one index
// ("main.fix"). Every subcommand is restartable: state lives on disk.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/thread_pool.h"
#include "core/corpus.h"
#include "core/fix_index.h"
#include "core/fix_query.h"
#include "core/metrics.h"
#include "core/persist.h"
#include "core/sharded_database.h"
#include "datagen/datasets.h"
#include "common/timer.h"
#include "fixctl_cli.h"
#include "query/xpath_parser.h"
#include "server/client.h"
#include "storage/wal.h"
#include "xml/doc_stats.h"

namespace {

int Usage() {
  std::fprintf(stderr, "%s", fixctl::UsageText().c_str());
  return 2;
}

int Fail(const fix::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdGen(const std::string& dir, const std::string& kind, double scale) {
  fix::Corpus corpus;
  if (kind == "tcmd") {
    fix::TcmdOptions o;
    o.num_docs = static_cast<int>(o.num_docs * scale);
    fix::GenerateTcmd(&corpus, o);
  } else if (kind == "dblp") {
    fix::DblpOptions o;
    o.num_publications = static_cast<int>(o.num_publications * scale);
    fix::GenerateDblp(&corpus, o);
  } else if (kind == "xmark") {
    fix::XMarkOptions o;
    o.num_items = static_cast<int>(o.num_items * scale);
    o.num_people = static_cast<int>(o.num_people * scale);
    o.num_open_auctions = static_cast<int>(o.num_open_auctions * scale);
    o.num_closed_auctions = static_cast<int>(o.num_closed_auctions * scale);
    o.num_categories = static_cast<int>(o.num_categories * scale);
    fix::GenerateXMark(&corpus, o);
  } else if (kind == "treebank") {
    fix::TreebankOptions o;
    o.num_sentences = static_cast<int>(o.num_sentences * scale);
    fix::GenerateTreebank(&corpus, o);
  } else {
    return Usage();
  }
  if (auto s = corpus.Save(dir); !s.ok()) return Fail(s);
  std::printf("generated %zu document(s), %zu elements -> %s\n",
              corpus.num_docs(), corpus.TotalElements(), dir.c_str());
  return 0;
}

int CmdLoad(const std::string& dir, const std::vector<std::string>& files) {
  fix::Corpus corpus;
  for (const std::string& file : files) {
    auto xml = fix::ReadFile(file);
    if (!xml.ok()) return Fail(xml.status());
    auto id = corpus.AddXml(*xml);
    if (!id.ok()) {
      std::fprintf(stderr, "%s: ", file.c_str());
      return Fail(id.status());
    }
  }
  if (auto s = corpus.Save(dir); !s.ok()) return Fail(s);
  std::printf("loaded %zu document(s), %zu elements -> %s\n",
              corpus.num_docs(), corpus.TotalElements(), dir.c_str());
  return 0;
}

int CmdBuild(const std::string& dir, int argc, char** argv) {
  const fixctl::CliCommand* cmd = fixctl::FindCommand("build");
  fix::IndexOptions options;
  uint32_t shards = 0;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (fixctl::FindFlag(*cmd, arg) == nullptr) {
      std::fprintf(stderr, "fixctl build: unknown flag %s\n", arg.c_str());
      return Usage();
    }
    if (arg == "--depth" && i + 1 < argc) {
      options.depth_limit = std::atoi(argv[++i]);
    } else if (arg == "--clustered") {
      options.clustered = true;
    } else if (arg == "--beta" && i + 1 < argc) {
      options.value_beta = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--lambda2") {
      options.use_lambda2 = true;
    } else if (arg == "--sound") {
      options.sound_probe = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      options.build_threads = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--cache-mb" && i + 1 < argc) {
      options.feature_cache_mb = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--probe-engine" && i + 1 < argc) {
      std::string engine = argv[++i];
      if (engine == "btree") {
        options.probe_engine = fix::ProbeEngine::kBTree;
      } else if (engine == "spatial") {
        options.probe_engine = fix::ProbeEngine::kSpatial;
      } else if (engine == "auto") {
        options.probe_engine = fix::ProbeEngine::kAuto;
      } else {
        std::fprintf(stderr, "fixctl build: unknown probe engine '%s'\n",
                     engine.c_str());
        return Usage();
      }
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<uint32_t>(std::atoi(argv[++i]));
      if (shards == 0) {
        std::fprintf(stderr, "fixctl build: --shards must be >= 1\n");
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  auto corpus = fix::Corpus::Load(dir);
  if (!corpus.ok()) return Fail(corpus.status());
  if (shards > 0) {
    // Sharded layout: partition the corpus across N hash shards in this
    // same directory and build every shard's index in parallel. query and
    // stats auto-detect the layout via shards.manifest.
    fix::ShardedOptions sopts;
    sopts.shard_count = shards;
    sopts.index = options;
    auto sdb = fix::ShardedDatabase::Partition(*corpus, dir, sopts);
    if (!sdb.ok()) return Fail(sdb.status());
    fix::BuildStats stats;
    if (auto s = (*sdb)->BuildIndexes("main", &stats); !s.ok()) return Fail(s);
    std::printf("built %u shard(s): %llu entries in %.2f s (B+-trees "
                "%.1f MB); %llu oversized pattern(s)\n",
                shards, static_cast<unsigned long long>(stats.entries),
                stats.construction_seconds,
                stats.btree_bytes / (1024.0 * 1024.0),
                static_cast<unsigned long long>(stats.oversized_patterns));
    return 0;
  }
  options.path = dir + "/main.fix";
  fix::BuildStats stats;
  auto index = fix::FixIndex::Build(&*corpus, options, &stats);
  if (!index.ok()) return Fail(index.status());
  std::printf("built %llu entries in %.2f s (B+-tree %.1f MB",
              static_cast<unsigned long long>(stats.entries),
              stats.construction_seconds,
              stats.btree_bytes / (1024.0 * 1024.0));
  if (options.clustered) {
    std::printf(", copies %.1f MB", stats.clustered_bytes / (1024.0 * 1024.0));
  }
  std::printf("); %llu oversized pattern(s)\n",
              static_cast<unsigned long long>(stats.oversized_patterns));
  return 0;
}

int CmdPing(const std::string& address) {
  fix::Timer timer;
  auto client = fix::server::FixdClient::Connect(address);
  if (!client.ok()) return Fail(client.status());
  if (auto s = (*client)->Ping(); !s.ok()) return Fail(s);
  std::printf("PONG from %s (%.2f ms)\n", address.c_str(),
              timer.ElapsedMillis());
  return 0;
}

/// Remote query: ships the XPath to a fixd server and prints the wire
/// outcome. The server owns parsing and execution, so --explain/--metrics
/// (local index introspection) do not apply here; results are printed as
/// (doc, node) pairs — label names live in the server's corpus.
int CmdQueryRemote(const std::string& address, const std::string& xpath) {
  auto client = fix::server::FixdClient::Connect(address);
  if (!client.ok()) return Fail(client.status());
  auto outcome = (*client)->Query("main", xpath);
  if (!outcome.ok()) return Fail(outcome.status());
  std::printf("%llu result(s); candidates %llu%s%s\n",
              static_cast<unsigned long long>(outcome->result_count),
              static_cast<unsigned long long>(outcome->candidates),
              outcome->used_index ? "" : " [full-scan fallback]",
              outcome->degraded ? " [index degraded]" : "");
  size_t shown = 0;
  for (const fix::wire::WireNodeRef& ref : outcome->results) {
    if (shown++ == 10) {
      std::printf("  ... (%zu more)\n", outcome->results.size() - 10);
      break;
    }
    std::printf("  doc %u node %u\n", ref.doc_id, ref.node_id);
  }
  return 0;
}

int CmdStatsRemote(const std::string& address) {
  auto client = fix::server::FixdClient::Connect(address);
  if (!client.ok()) return Fail(client.status());
  auto text = (*client)->Stats();
  if (!text.ok()) return Fail(text.status());
  std::printf("%s", text->c_str());
  return 0;
}

/// Sharded-layout query: open the layout, scatter the compiled plan to
/// every shard, gather in doc order. --explain's candidate estimate is a
/// single-index introspection and does not apply here.
int CmdQuerySharded(const std::string& dir, const std::string& xpath,
                    bool metrics, int threads) {
  fix::ShardedOptions sopts;
  sopts.scatter_threads = threads;
  auto sdb = fix::ShardedDatabase::Open(dir, sopts);
  if (!sdb.ok()) return Fail(sdb.status());
  std::vector<fix::NodeRef> results;
  auto stats = (*sdb)->Query("main", xpath, &results);
  if (!stats.ok()) return Fail(stats.status());
  std::printf("%llu result(s) across %u shard(s); candidates %llu/%llu "
              "(pp %.2f%%), lookup %.2f ms, refine %.2f ms%s%s\n",
              static_cast<unsigned long long>(stats->result_count),
              (*sdb)->shard_count(),
              static_cast<unsigned long long>(stats->candidates),
              static_cast<unsigned long long>(stats->total_entries),
              stats->pruning_power() * 100, stats->lookup_ms,
              stats->refine_ms,
              stats->used_index ? "" : " [full-scan fallback]",
              stats->degraded ? " [shard(s) degraded]" : "");
  size_t shown = 0;
  for (const fix::NodeRef& ref : results) {
    if (shown++ == 10) {
      std::printf("  ... (%zu more)\n", results.size() - 10);
      break;
    }
    std::printf("  doc %u node %u\n", ref.doc_id, ref.node_id);
  }
  if (metrics) {
    std::printf("\n%s",
                fix::MetricsRegistry::Instance().HumanTable().c_str());
  }
  return 0;
}

int CmdQuery(const std::string& dir, const std::string& xpath, bool explain,
             bool metrics, int threads) {
  if (fix::IsShardedLayout(dir)) {
    return CmdQuerySharded(dir, xpath, metrics, threads);
  }
  auto corpus = fix::Corpus::Load(dir);
  if (!corpus.ok()) return Fail(corpus.status());
  auto index = fix::FixIndex::Open(&*corpus, dir + "/main.fix");
  if (!index.ok()) return Fail(index.status());
  auto parsed = fix::ParseXPath(xpath);
  if (!parsed.ok()) return Fail(parsed.status());
  fix::TwigQuery query = std::move(parsed).value();
  query.ResolveLabels(corpus->labels());

  if (explain) {
    auto estimate = index->EstimateCandidates(query);
    if (estimate.ok()) {
      std::printf("estimate: ~%llu candidate(s) of %llu entries\n",
                  static_cast<unsigned long long>(*estimate),
                  static_cast<unsigned long long>(index->num_entries()));
    }
  }
  size_t n = threads > 0
                 ? static_cast<size_t>(threads)
                 : std::max(1u, std::thread::hardware_concurrency());
  n = std::min<size_t>(n, 64);
  std::unique_ptr<fix::ThreadPool> pool;
  if (n > 1) pool = std::make_unique<fix::ThreadPool>(n);
  fix::FixQueryProcessor processor(&*corpus, &*index, pool.get());
  std::vector<fix::NodeRef> results;
  auto stats = processor.Execute(query, &results);
  if (!stats.ok()) return Fail(stats.status());
  std::printf("%llu result(s); candidates %llu/%llu (pp %.2f%%), "
              "lookup %.2f ms, refine %.2f ms%s\n",
              static_cast<unsigned long long>(stats->result_count),
              static_cast<unsigned long long>(stats->candidates),
              static_cast<unsigned long long>(stats->total_entries),
              stats->pruning_power() * 100, stats->lookup_ms,
              stats->refine_ms,
              stats->used_index ? "" : " [full-scan fallback]");
  size_t shown = 0;
  for (const fix::NodeRef& ref : results) {
    if (shown++ == 10) {
      std::printf("  ... (%zu more)\n", results.size() - 10);
      break;
    }
    std::printf("  doc %u node %u <%s>\n", ref.doc_id, ref.node_id,
                corpus->labels()
                    ->Name(corpus->doc(ref.doc_id).label(ref.node_id))
                    .c_str());
  }
  if (metrics) {
    std::printf("\n%s",
                fix::MetricsRegistry::Instance().HumanTable().c_str());
  }
  return 0;
}

/// Sharded-layout stats: shard map from the manifest, per-shard doc and
/// health summary from the opened layout, then the registry snapshot.
int CmdStatsSharded(const std::string& dir, bool prom) {
  auto sdb = fix::ShardedDatabase::Open(dir);
  if (!sdb.ok()) return Fail(sdb.status());
  if (!prom) {
    std::printf("sharded layout: %u shard(s), generation %llu, %llu "
                "document(s)\n",
                (*sdb)->shard_count(),
                static_cast<unsigned long long>((*sdb)->layout_generation()),
                static_cast<unsigned long long>((*sdb)->num_docs()));
    std::vector<bool> degraded = (*sdb)->DegradedShards("main");
    for (uint32_t s = 0; s < (*sdb)->shard_count(); ++s) {
      fix::Database* db = (*sdb)->shard_db(s);
      std::printf("  shard %04u: %zu doc(s)%s\n", s,
                  db != nullptr ? db->corpus()->num_docs() : 0,
                  s < degraded.size() && degraded[s]
                      ? "  [index DEGRADED — full scan]"
                      : "");
    }
  }
  fix::MetricsRegistry& registry = fix::MetricsRegistry::Instance();
  if (prom) {
    std::printf("%s", registry.PrometheusText().c_str());
  } else {
    std::printf("\n%s", registry.HumanTable().c_str());
  }
  return 0;
}

int CmdStats(const std::string& dir, const std::string& format) {
  if (format != "human" && format != "prom") {
    std::fprintf(stderr, "fixctl stats: unknown format '%s'\n",
                 format.c_str());
    return Usage();
  }
  if (fix::IsShardedLayout(dir)) {
    return CmdStatsSharded(dir, format == "prom");
  }
  auto corpus = fix::Corpus::Load(dir);
  if (!corpus.ok()) return Fail(corpus.status());
  const bool prom = format == "prom";
  if (!prom) {
    fix::DocStats agg;
    for (uint32_t d = 0; d < corpus->num_docs(); ++d) {
      agg.Merge(ComputeDocStats(corpus->doc(d), *corpus->labels()));
    }
    std::printf("documents: %zu\nelements:  %zu\ntext:      %zu node(s), "
                "%zu byte(s)\nmax depth: %d\nlabels:    %zu\n",
                corpus->num_docs(), agg.elements, agg.text_nodes,
                agg.text_bytes, agg.max_depth, corpus->labels()->size());
  }
  auto index = fix::FixIndex::Open(&*corpus, dir + "/main.fix");
  if (!prom) {
    if (index.ok()) {
      std::printf("index:     %llu entries, depth limit %d%s%s\n",
                  static_cast<unsigned long long>(index->num_entries()),
                  index->options().depth_limit,
                  index->options().clustered ? ", clustered" : "",
                  index->options().value_beta > 0 ? ", values" : "");
      const char* engine_names[] = {"btree", "spatial", "auto"};
      auto spatial = index->spatial_probe();
      std::printf("probe:     engine %s, spatial %s\n",
                  engine_names[static_cast<uint32_t>(
                      index->options().probe_engine)],
                  spatial ? "resident" : "not resident (B+-tree fallback)");
    } else {
      std::printf("index:     (none built)\n");
    }
  }
  // Live registry snapshot. In a fresh process this reflects the work this
  // command just did (opening the corpus and index populates the PageIo
  // and buffer-pool counters); a long-lived embedder sees its own history.
  // Prometheus mode prints the exposition alone so the output scrapes
  // cleanly.
  fix::MetricsRegistry& registry = fix::MetricsRegistry::Instance();
  if (prom) {
    std::printf("%s", registry.PrometheusText().c_str());
  } else {
    std::printf("\n%s", registry.HumanTable().c_str());
  }
  return 0;
}

int CmdWal(const std::string& dir) {
  const std::string wal_path = dir + "/main.fix.wal";
  auto scan = fix::Wal::Inspect(wal_path);
  if (!scan.ok()) {
    if (scan.status().IsNotFound()) {
      std::printf("%s: no write-ahead log (index predates the WAL, or none "
                  "built)\n",
                  wal_path.c_str());
      return 0;
    }
    return Fail(scan.status());
  }
  std::printf("%s:\n", wal_path.c_str());
  std::printf("  geometry:       key %u B, value %u B\n", scan->key_size,
              scan->value_size);
  std::printf("  records:        %llu intact (%llu bytes incl. header)\n",
              static_cast<unsigned long long>(scan->records),
              static_cast<unsigned long long>(scan->valid_bytes));
  std::printf("  torn tail:      %s\n",
              scan->torn_tail ? "YES (discarded on next open)" : "no");
  if (scan->has_commit) {
    const fix::WalCommit& c = scan->last_commit;
    std::printf("  last commit:    generation %llu, root page %u, height %u, "
                "%llu entries\n",
                static_cast<unsigned long long>(c.generation), c.root,
                c.height, static_cast<unsigned long long>(c.num_entries));
    std::printf("                  indexed_docs %llu, next_seq %llu\n",
                static_cast<unsigned long long>(c.indexed_docs),
                static_cast<unsigned long long>(c.next_seq));
  } else {
    std::printf("  last commit:    (none — log is empty or checkpointed)\n");
  }
  // Cross-check against the sidecar meta: after a clean checkpoint the
  // sidecar carries the committed generation and the log is empty, so a
  // commit newer than the sidecar means a crash left roll-forward pending.
  auto meta_buf = fix::ReadFile(dir + "/main.fix.meta");
  if (meta_buf.ok()) {
    auto meta = fix::DecodeIndexMeta(*meta_buf);
    if (meta.ok()) {
      std::printf("  sidecar meta:   generation %llu\n",
                  static_cast<unsigned long long>(meta->generation));
      if (scan->has_commit &&
          scan->last_commit.generation > meta->generation) {
        std::printf("  status:         roll-forward PENDING (log generation "
                    "ahead of sidecar; next open replays it)\n");
      } else {
        std::printf("  status:         checkpointed (sidecar is current)\n");
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "help") == 0 ||
                    std::strcmp(argv[1], "--help") == 0)) {
    std::printf("%s", fixctl::HelpText().c_str());
    return 0;
  }
  if (argc < 3) return Usage();
  std::string cmd = argv[1];
  std::string dir = argv[2];
  if (cmd == "ping") {
    // The operand is host:port, not a directory — no filesystem touch.
    if (argc != 3) return Usage();
    return CmdPing(dir);
  }
  // Remote query/stats never open <dir>; creating it would be a
  // surprising side effect, so scan for --remote before touching disk.
  std::string remote;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--remote=";
    if (arg.rfind(prefix, 0) == 0) {
      remote = arg.substr(prefix.size());
    } else if (arg == "--remote" && i + 1 < argc) {
      remote = argv[i + 1];
    }
  }
  if (remote.empty()) std::filesystem::create_directories(dir);
  if (cmd == "gen" && argc >= 4) {
    return CmdGen(dir, argv[3], argc >= 5 ? std::atof(argv[4]) : 1.0);
  }
  if (cmd == "load" && argc >= 4) {
    return CmdLoad(dir, {argv + 3, argv + argc});
  }
  if (cmd == "build") {
    return CmdBuild(dir, argc - 3, argv + 3);
  }
  if (cmd == "query" && argc >= 4) {
    const fixctl::CliCommand* spec = fixctl::FindCommand("query");
    bool explain = false;
    bool metrics = false;
    int threads = 1;
    for (int i = 4; i < argc; ++i) {
      std::string arg = argv[i];
      const std::string tprefix = "--threads=";
      if (arg.rfind(tprefix, 0) == 0) {
        threads = std::atoi(arg.c_str() + tprefix.size());
        continue;
      }
      if (arg.rfind("--remote=", 0) == 0) continue;  // consumed above
      if (fixctl::FindFlag(*spec, argv[i]) == nullptr) return Usage();
      if (arg == "--explain") explain = true;
      if (arg == "--metrics") metrics = true;
      if (arg == "--threads") {
        if (i + 1 >= argc) return Usage();
        threads = std::atoi(argv[++i]);
      }
      if (arg == "--remote") ++i;  // value consumed above
    }
    if (!remote.empty()) {
      if (explain || metrics || threads != 1) {
        std::fprintf(stderr,
                     "fixctl query: --explain/--metrics/--threads are local "
                     "index options; not valid with --remote\n");
        return Usage();
      }
      return CmdQueryRemote(remote, argv[3]);
    }
    return CmdQuery(dir, argv[3], explain, metrics, threads);
  }
  if (cmd == "stats") {
    const fixctl::CliCommand* spec = fixctl::FindCommand("stats");
    std::string format = "human";
    for (int i = 3; i < argc; ++i) {
      std::string arg = argv[i];
      const std::string prefix = "--format=";
      if (arg.rfind(prefix, 0) == 0) {
        format = arg.substr(prefix.size());
      } else if (arg.rfind("--remote=", 0) == 0) {
        continue;  // consumed by the pre-scan above
      } else if (fixctl::FindFlag(*spec, arg) != nullptr && i + 1 < argc) {
        const char* value = argv[++i];
        if (arg == "--format") format = value;
        // --remote's value was consumed by the pre-scan above.
      } else {
        return Usage();
      }
    }
    if (!remote.empty()) return CmdStatsRemote(remote);
    return CmdStats(dir, format);
  }
  if (cmd == "wal") {
    if (argc != 3) return Usage();
    return CmdWal(dir);
  }
  return Usage();
}
