// Quickstart: load a few XML documents, build a FIX index, run twig
// queries, and look at the pruning statistics.
//
//   ./quickstart [workdir]
//
// This is the 60-second tour of the public API: Database -> AddXml ->
// BuildIndex -> Query.

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/database.h"

namespace {

constexpr const char* kDocs[] = {
    "<bib><book><title>Spectra of Graphs</title>"
    "<author><name>Cvetkovic</name><email>c@example.com</email></author>"
    "</book></bib>",

    "<bib><article><title>Holistic Twig Joins</title>"
    "<author><name>Bruno</name></author><ee>doi:10.1/x</ee></article>"
    "<article><title>Structural Joins</title>"
    "<author><name>Al-Khalifa</name></author></article></bib>",

    "<bib><inproceedings><title>FIX</title>"
    "<author><name>Zhang</name><affiliation>UWaterloo</affiliation>"
    "</author><year>2006</year></inproceedings></bib>",
};

}  // namespace

int main(int argc, char** argv) {
  std::string workdir = argc > 1 ? argv[1] : "/tmp/fix_quickstart";
  std::filesystem::create_directories(workdir);
  fix::Database db(workdir);

  // 1. Load documents.
  for (const char* xml : kDocs) {
    auto id = db.AddXml(xml);
    if (!id.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }
  if (auto s = db.Finalize(); !s.ok()) {
    std::fprintf(stderr, "finalize failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. Build an unclustered FIX index over the collection (each document
  //    is one indexable unit; depth_limit = 0).
  fix::BuildStats stats;
  auto index = db.BuildIndex("main", fix::IndexOptions{}, &stats);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %llu documents in %.2f ms (B+-tree: %llu bytes)\n\n",
              static_cast<unsigned long long>(stats.entries),
              stats.construction_seconds * 1e3,
              static_cast<unsigned long long>(stats.btree_bytes));

  // 3. Run twig queries and inspect the pruning statistics.
  const char* queries[] = {
      "//article[author]/ee",
      "//book/author/email",
      "//author[name][affiliation]",
      "/bib/article/title",
  };
  for (const char* text : queries) {
    std::vector<fix::NodeRef> results;
    auto exec = db.Query("main", text, &results);
    if (!exec.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   exec.status().ToString().c_str());
      return 1;
    }
    std::printf("%-35s -> %llu result(s); candidates %llu/%llu "
                "(pruning power %.0f%%)\n",
                text, static_cast<unsigned long long>(exec->result_count),
                static_cast<unsigned long long>(exec->candidates),
                static_cast<unsigned long long>(exec->total_entries),
                exec->pruning_power() * 100);
  }
  return 0;
}
