#include "fixctl_cli.h"

#include <cstring>

namespace fixctl {

namespace {

const CliFlag kBuildFlags[] = {
    {"--depth", "k", "depth limit L (0 = whole-document patterns)"},
    {"--clustered", nullptr, "materialize subtree copies in key order"},
    {"--beta", "B", "value-hash bucket count (0 = structure only)"},
    {"--lambda2", nullptr, "add the third singular value to the key"},
    {"--sound", nullptr, "probe with the pairwise bound only (no false "
                         "negatives under quotienting)"},
    {"--threads", "N", "build worker threads (0 = hardware concurrency)"},
    {"--cache-mb", "M", "spectral feature cache budget in MiB (0 = off)"},
    {"--probe-engine", "btree|spatial|auto",
     "containment probe engine (auto = spatial when resident, persisted)"},
    {"--shards", "N",
     "partition into N hash shards and build each shard's index in "
     "parallel (sharded layout; query/stats auto-detect it)"},
};

const CliFlag kQueryFlags[] = {
    {"--explain", nullptr, "print the candidate estimate before executing"},
    {"--metrics", nullptr, "dump the metrics registry after the query"},
    {"--threads", "N",
     "parallelize candidate refinement over N threads (0 = all cores)"},
    {"--remote", "host:port",
     "execute on a running fixd server instead of opening <dir>"},
};

const CliFlag kStatsFlags[] = {
    {"--format", "human|prom",
     "output format: fixed-width table (default) or Prometheus text"},
    {"--remote", "host:port",
     "scrape a running fixd server's live metrics (Prometheus text)"},
};

const CliCommand kCommands[] = {
    {"gen", "<dir> <tcmd|dblp|xmark|treebank> [scale]",
     "generate a synthetic corpus", nullptr, 0},
    {"load", "<dir> <file.xml>...", "load XML files into a corpus", nullptr,
     0},
    {"build", "<dir>", "build the FIX index (main.fix)", kBuildFlags,
     sizeof(kBuildFlags) / sizeof(kBuildFlags[0])},
    {"query", "<dir> \"<xpath>\"", "run a twig query through the index",
     kQueryFlags, sizeof(kQueryFlags) / sizeof(kQueryFlags[0])},
    {"stats", "<dir>", "corpus/index summary plus live metrics", kStatsFlags,
     sizeof(kStatsFlags) / sizeof(kStatsFlags[0])},
    {"wal", "<dir>",
     "inspect the index write-ahead log (records, last committed "
     "generation, torn tail)",
     nullptr, 0},
    {"ping", "<host:port>", "round-trip a PING against a fixd server",
     nullptr, 0},
    {"help", "", "print this help", nullptr, 0},
};

}  // namespace

const std::vector<CliCommand>& Commands() {
  static const std::vector<CliCommand> commands(
      kCommands, kCommands + sizeof(kCommands) / sizeof(kCommands[0]));
  return commands;
}

const CliCommand* FindCommand(std::string_view name) {
  for (const CliCommand& c : Commands()) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

const CliFlag* FindFlag(const CliCommand& cmd, std::string_view name) {
  for (size_t i = 0; i < cmd.num_flags; ++i) {
    if (name == cmd.flags[i].name) return &cmd.flags[i];
  }
  return nullptr;
}

std::string UsageText() {
  std::string out = "usage:\n";
  for (const CliCommand& c : Commands()) {
    out += "  fixctl ";
    out += c.name;
    if (c.operands[0] != '\0') {
      out += " ";
      out += c.operands;
    }
    for (size_t i = 0; i < c.num_flags; ++i) {
      out += " [";
      out += c.flags[i].name;
      if (c.flags[i].value_name != nullptr) {
        out += " ";
        out += c.flags[i].value_name;
      }
      out += "]";
    }
    out += "\n";
  }
  return out;
}

std::string HelpText() {
  std::string out = UsageText();
  for (const CliCommand& c : Commands()) {
    out += "\n";
    out += c.name;
    out += ": ";
    out += c.help;
    out += "\n";
    for (size_t i = 0; i < c.num_flags; ++i) {
      const CliFlag& f = c.flags[i];
      out += "  ";
      out += f.name;
      if (f.value_name != nullptr) {
        out += " <";
        out += f.value_name;
        out += ">";
      }
      size_t col = std::strlen(f.name) +
                   (f.value_name != nullptr ? std::strlen(f.value_name) + 3
                                            : 0) +
                   2;
      for (; col < 24; ++col) out += " ";
      out += f.help;
      out += "\n";
    }
  }
  return out;
}

}  // namespace fixctl
