// Scenario: integrated structure + value search (Section 4.6) on a
// DBLP-style bibliography — value-equality predicates answered through the
// same spectral index by hashing PCDATA into a small label domain β.
//
//   ./value_search [workdir]
//
// Also demonstrates the β trade-off: a larger β separates values better
// (fewer false positives) but grows the pattern space.

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/database.h"
#include "datagen/datasets.h"

int main(int argc, char** argv) {
  std::string workdir = argc > 1 ? argv[1] : "/tmp/fix_value_search";
  std::filesystem::create_directories(workdir);
  fix::Database db(workdir);

  fix::DblpOptions gen;
  gen.num_publications = 3000;
  fix::GenerateDblp(db.corpus(), gen);
  if (auto s = db.Finalize(); !s.ok()) return 1;
  std::printf("bibliography: %zu elements\n\n", db.corpus()->TotalElements());

  // Structural-only index vs value-integrated indexes at two β settings.
  struct Setup {
    const char* name;
    uint32_t beta;
  } setups[] = {{"structural (beta=0)", 0},
                {"values beta=2", 2},
                {"values beta=10", 10}};

  for (const Setup& setup : setups) {
    fix::IndexOptions options;
    options.depth_limit = 6;
    options.value_beta = setup.beta;
    fix::BuildStats stats;
    auto index = db.BuildIndex(std::string("idx_") + setup.name, options,
                               &stats);
    if (!index.ok()) {
      std::fprintf(stderr, "build: %s\n", index.status().ToString().c_str());
      return 1;
    }
    std::printf("%-22s: %7llu entries, %6.1f KiB, built in %.2f s\n",
                setup.name, static_cast<unsigned long long>(stats.entries),
                stats.btree_bytes / 1024.0, stats.construction_seconds);
  }
  std::printf("\n");

  const char* queries[] = {
      "//proceedings[publisher=\"Springer\"][title]",
      "//inproceedings[year=\"1998\"][title]/author",
  };
  for (const char* text : queries) {
    std::printf("%s\n", text);
    for (const Setup& setup : setups) {
      auto exec = db.Query(std::string("idx_") + setup.name, text);
      if (!exec.ok()) {
        std::fprintf(stderr, "query: %s\n",
                     exec.status().ToString().c_str());
        return 1;
      }
      std::printf("  %-22s pp %6.2f%%  fpr %6.2f%%  -> %llu results\n",
                  setup.name, exec->pruning_power() * 100,
                  exec->false_positive_ratio() * 100,
                  static_cast<unsigned long long>(exec->result_count));
    }
  }
  return 0;
}
