// Scenario: a text-centric document collection (the XBench TCMD regime of
// Section 6.1) — thousands of small near-regular articles indexed as whole
// units, queried with rooted branching paths.
//
//   ./document_collection [workdir]
//
// Demonstrates: generator-driven loading, clustered vs unclustered indexes
// side by side, and the implementation-independent metrics of Section 6.2.

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/database.h"
#include "core/metrics.h"
#include "datagen/datasets.h"

int main(int argc, char** argv) {
  std::string workdir = argc > 1 ? argv[1] : "/tmp/fix_collection";
  std::filesystem::create_directories(workdir);
  fix::Database db(workdir);

  // A scaled-down TCMD collection: 300 article documents.
  fix::TcmdOptions gen;
  gen.num_docs = 300;
  fix::GenerateTcmd(db.corpus(), gen);
  if (auto s = db.Finalize(); !s.ok()) {
    std::fprintf(stderr, "finalize: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("collection: %zu documents, %zu elements\n\n",
              db.corpus()->num_docs(), db.corpus()->TotalElements());

  fix::IndexOptions unclustered;  // depth_limit 0: one unit per document
  fix::IndexOptions clustered;
  clustered.clustered = true;

  fix::BuildStats ustats, cstats;
  if (!db.BuildIndex("unclustered", unclustered, &ustats).ok() ||
      !db.BuildIndex("clustered", clustered, &cstats).ok()) {
    std::fprintf(stderr, "index build failed\n");
    return 1;
  }
  std::printf("unclustered index: %llu entries, %.1f KiB, no copy store\n",
              static_cast<unsigned long long>(ustats.entries),
              ustats.btree_bytes / 1024.0);
  std::printf("clustered index:   %llu entries, %.1f KiB + %.1f KiB copies\n\n",
              static_cast<unsigned long long>(cstats.entries),
              cstats.btree_bytes / 1024.0, cstats.clustered_bytes / 1024.0);

  const char* queries[] = {
      "/article/epilog[acknowledgements]/references/a_id",
      "/article/prolog[keywords]/authors/author/contact[phone]",
      "/article[epilog]/prolog/authors/author",
  };
  std::printf("%-58s %8s %8s %8s\n", "query", "sel", "pp", "fpr");
  for (const char* text : queries) {
    auto exec = db.Query("unclustered", text);
    if (!exec.ok()) {
      std::fprintf(stderr, "query %s: %s\n", text,
                   exec.status().ToString().c_str());
      return 1;
    }
    std::printf("%-58s %7.1f%% %7.1f%% %7.1f%%\n", text,
                exec->selectivity() * 100, exec->pruning_power() * 100,
                exec->false_positive_ratio() * 100);
  }
  return 0;
}
