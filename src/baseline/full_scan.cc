#include "baseline/full_scan.h"

#include "common/timer.h"
#include "query/match.h"

namespace fix {

ScanStats FullScan(const Corpus& corpus, const TwigQuery& query,
                   std::vector<NodeRef>* results) {
  if (results != nullptr) results->clear();
  ScanStats stats;
  Timer timer;
  for (uint32_t d = 0; d < corpus.num_docs(); ++d) {
    TwigMatcher matcher(&corpus.doc(d));
    std::vector<NodeId> bindings = matcher.Evaluate(query);
    stats.nodes_visited += matcher.nodes_visited();
    stats.result_count += bindings.size();
    if (!bindings.empty()) ++stats.producing_docs;
    if (results != nullptr) {
      for (NodeId b : bindings) results->push_back({d, b});
    }
  }
  stats.eval_ms = timer.ElapsedMillis();
  return stats;
}

}  // namespace fix
