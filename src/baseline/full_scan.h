// FullScan: the no-index baseline — the NoK-style navigational operator run
// over every document in the corpus (Section 6.3's "NoK" bars).

#ifndef FIX_BASELINE_FULL_SCAN_H_
#define FIX_BASELINE_FULL_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/corpus.h"
#include "query/twig_query.h"

namespace fix {

struct ScanStats {
  uint64_t result_count = 0;
  uint64_t producing_docs = 0;
  uint64_t nodes_visited = 0;
  double eval_ms = 0;
};

/// Evaluates `query` against every document.
ScanStats FullScan(const Corpus& corpus, const TwigQuery& query,
                   std::vector<NodeRef>* results = nullptr);

}  // namespace fix

#endif  // FIX_BASELINE_FULL_SCAN_H_
