#include "baseline/fb_index.h"

#include <algorithm>
#include <memory>
#include <set>

#include "common/timer.h"
#include "query/match.h"

namespace fix {

Result<FbIndex> FbIndex::Build(const Corpus* corpus, FbBuildStats* stats) {
  Timer timer;
  std::vector<const Document*> docs;
  docs.reserve(corpus->num_docs());
  for (uint32_t d = 0; d < corpus->num_docs(); ++d) {
    docs.push_back(&corpus->doc(d));
  }
  FbGraph graph;
  FIX_ASSIGN_OR_RETURN(graph, FbGraph::Build(docs));
  FbIndex index(corpus, std::move(graph));

  // Deep-first topological order (children strictly deeper than parents).
  index.topo_deep_first_.resize(index.graph_.num_classes());
  for (FbClassId c = 0; c < index.graph_.num_classes(); ++c) {
    index.topo_deep_first_[c] = c;
  }
  std::sort(index.topo_deep_first_.begin(), index.topo_deep_first_.end(),
            [&](FbClassId a, FbClassId b) {
              return index.graph_.cls(a).depth > index.graph_.cls(b).depth;
            });

  if (stats != nullptr) {
    stats->construction_seconds = timer.ElapsedSeconds();
    stats->classes = index.graph_.num_classes();
    stats->edges = index.graph_.num_edges();
    stats->size_bytes = index.graph_.ApproxSizeBytes();
  }
  return index;
}

std::vector<bool> FbIndex::DescendantsReaching(
    const std::vector<bool>& targets, FbExecStats* stats) const {
  std::vector<bool> down(graph_.num_classes(), false);
  for (FbClassId c : topo_deep_first_) {
    bool hit = false;
    for (FbClassId ch : graph_.cls(c).children) {
      if (targets[ch] || down[ch]) {
        hit = true;
        break;
      }
    }
    down[c] = hit;
    ++stats->classes_visited;
  }
  return down;
}

void FbIndex::ComputeSat(const TwigQuery& q, uint32_t step,
                         std::vector<std::vector<bool>>* sat,
                         FbExecStats* stats) const {
  for (uint32_t child : q.steps[step].children) {
    ComputeSat(q, child, sat, stats);
  }
  const QueryStep& s = q.steps[step];
  size_t n = graph_.num_classes();
  std::vector<bool>& mine = (*sat)[step];
  mine.assign(n, false);

  // Precompute descendant reachability for //-axis children.
  std::vector<std::vector<bool>> down(s.children.size());
  for (size_t i = 0; i < s.children.size(); ++i) {
    uint32_t cs = s.children[i];
    if (q.steps[cs].axis == Axis::kDescendant) {
      down[i] = DescendantsReaching((*sat)[cs], stats);
    }
  }

  // Wildcard steps consider every class; concrete steps only their label's.
  std::vector<FbClassId> all;
  if (s.wildcard) {
    all.resize(graph_.num_classes());
    for (FbClassId c = 0; c < all.size(); ++c) all[c] = c;
  }
  const std::vector<FbClassId>& candidates =
      s.wildcard ? all : graph_.ClassesWithLabel(s.label);
  for (FbClassId c : candidates) {
    ++stats->classes_visited;
    bool ok = true;
    for (size_t i = 0; i < s.children.size() && ok; ++i) {
      uint32_t cs = s.children[i];
      if (q.steps[cs].axis == Axis::kChild) {
        bool found = false;
        for (FbClassId ch : graph_.cls(c).children) {
          if ((*sat)[cs][ch]) {
            found = true;
            break;
          }
        }
        ok = found;
      } else {
        ok = down[i][c];
      }
    }
    mine[c] = ok;
  }
}

Result<FbExecStats> FbIndex::Execute(const TwigQuery& query,
                                     std::vector<NodeRef>* results) {
  if (results != nullptr) results->clear();
  FbExecStats stats;
  Timer timer;
  size_t n = graph_.num_classes();

  std::vector<std::vector<bool>> sat(query.steps.size());
  ComputeSat(query, query.root, &sat, &stats);

  // Root step: bind under the document node per the root axis.
  std::vector<bool> frontier(n, false);
  const QueryStep& root = query.steps[query.root];
  if (root.axis == Axis::kChild) {
    for (FbClassId dc : graph_.document_classes()) {
      for (FbClassId ch : graph_.cls(dc).children) {
        if (sat[query.root][ch]) frontier[ch] = true;
        ++stats.classes_visited;
      }
    }
  } else {
    for (FbClassId c = 0; c < n; ++c) {
      if (graph_.cls(c).depth >= 1 && sat[query.root][c]) frontier[c] = true;
    }
    stats.classes_visited += n;
  }

  // Remember the root-binding classes for value refinement.
  std::vector<bool> root_frontier = frontier;

  // Walk the main path.
  uint32_t step = query.root;
  while (query.steps[step].main_child >= 0) {
    uint32_t next =
        query.steps[step].children[query.steps[step].main_child];
    std::vector<bool> expanded(n, false);
    if (query.steps[next].axis == Axis::kChild) {
      for (FbClassId c = 0; c < n; ++c) {
        if (!frontier[c]) continue;
        for (FbClassId ch : graph_.cls(c).children) {
          if (sat[next][ch]) expanded[ch] = true;
          ++stats.classes_visited;
        }
      }
    } else {
      // Descendant axis: classes with a strict ancestor in the frontier
      // (shallow-first propagation over the layered DAG).
      std::vector<bool> anc(n, false);
      for (auto it = topo_deep_first_.rbegin(); it != topo_deep_first_.rend();
           ++it) {
        FbClassId c = *it;
        for (FbClassId p : graph_.cls(c).parents) {
          if (frontier[p] || anc[p]) {
            anc[c] = true;
            break;
          }
        }
        ++stats.classes_visited;
      }
      for (FbClassId c = 0; c < n; ++c) {
        if (anc[c] && sat[next][c]) expanded[c] = true;
      }
    }
    frontier = std::move(expanded);
    step = next;
  }

  if (!query.HasValuePredicates()) {
    // Covering-index property: class satisfaction is uniform, so results
    // are exactly the extents of the surviving result-step classes.
    std::set<std::pair<uint32_t, NodeId>> dedup;
    for (FbClassId c = 0; c < n; ++c) {
      if (!frontier[c]) continue;
      for (const NodeRef& ref : graph_.cls(c).extent) {
        if (dedup.insert({ref.doc_id, ref.node_id}).second) {
          if (results != nullptr) results->push_back(ref);
        }
      }
    }
    stats.result_count = dedup.size();
    stats.eval_ms = timer.ElapsedMillis();
    return stats;
  }

  // Value predicates: structural navigation found root-binding classes (a
  // superset — values ignored); verify each extent element against the full
  // query on the documents.
  std::set<std::pair<uint32_t, NodeId>> dedup;
  uint32_t current_doc = UINT32_MAX;
  std::unique_ptr<TwigMatcher> matcher;
  for (FbClassId c = 0; c < n; ++c) {
    if (!root_frontier[c]) continue;
    for (const NodeRef& ref : graph_.cls(c).extent) {
      ++stats.refined_nodes;
      if (ref.doc_id != current_doc) {
        current_doc = ref.doc_id;
        matcher = std::make_unique<TwigMatcher>(&corpus_->doc(ref.doc_id));
      }
      for (NodeId b : matcher->EvaluateAt(ref.node_id, query)) {
        if (dedup.insert({ref.doc_id, b}).second) {
          if (results != nullptr) results->push_back({ref.doc_id, b});
        }
      }
    }
  }
  stats.result_count = dedup.size();
  stats.eval_ms = timer.ElapsedMillis();
  return stats;
}

}  // namespace fix
