// FbIndex: the comparison baseline — query evaluation over the F&B
// bisimulation graph (the covering index of [18], disk-based in [27]).
//
// Because F&B classes are stable both forward and backward, satisfaction of
// a structural twig query is uniform across a class: evaluation never
// touches the documents and the answer is a union of class extents. Queries
// with value predicates keep the structural part on the graph and verify
// values by refining the root-binding extents against the documents (values
// are not part of the F&B partition) — exactly the behaviour the paper
// leans on in Section 6.4.

#ifndef FIX_BASELINE_FB_INDEX_H_
#define FIX_BASELINE_FB_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/corpus.h"
#include "graph/fb_graph.h"
#include "query/twig_query.h"

namespace fix {

struct FbExecStats {
  uint64_t classes_visited = 0;  ///< graph-navigation work
  uint64_t result_count = 0;     ///< result-step bindings
  uint64_t refined_nodes = 0;    ///< extent nodes verified against documents
  double eval_ms = 0;
};

struct FbBuildStats {
  double construction_seconds = 0;
  uint64_t classes = 0;
  uint64_t edges = 0;
  uint64_t size_bytes = 0;
};

class FbIndex {
 public:
  /// Builds the F&B graph over the whole corpus.
  [[nodiscard]] static Result<FbIndex> Build(const Corpus* corpus, FbBuildStats* stats);

  FbIndex(FbIndex&&) = default;
  FbIndex& operator=(FbIndex&&) = default;

  /// Evaluates a twig query (with / and // axes anywhere). Results are the
  /// bindings of the result step.
  [[nodiscard]] Result<FbExecStats> Execute(const TwigQuery& query,
                              std::vector<NodeRef>* results = nullptr);

  const FbGraph& graph() const { return graph_; }

 private:
  FbIndex(const Corpus* corpus, FbGraph graph)
      : corpus_(corpus), graph_(std::move(graph)) {}

  /// Marks classes whose subtrees satisfy query step `step` (label +
  /// value-stripped predicate children). Post-order over the query.
  void ComputeSat(const TwigQuery& q, uint32_t step,
                  std::vector<std::vector<bool>>* sat,
                  FbExecStats* stats) const;

  /// reach[c] = c or a strict descendant of c is in `targets`.
  std::vector<bool> DescendantsReaching(const std::vector<bool>& targets,
                                        FbExecStats* stats) const;

  const Corpus* corpus_;
  FbGraph graph_;
  std::vector<FbClassId> topo_deep_first_;  // classes by depth descending
};

}  // namespace fix

#endif  // FIX_BASELINE_FB_INDEX_H_
