// LabelTable: interns element names (and hashed value labels, Section 4.6)
// into dense 32-bit ids.
//
// The edge-weight encoding of Section 3.2 keys off (label, label) pairs, so
// the whole pipeline — documents, bisimulation graphs, queries — must agree
// on one label numbering. A LabelTable is owned by the Corpus and shared by
// every component.

#ifndef FIX_XML_LABEL_TABLE_H_
#define FIX_XML_LABEL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fix {

using LabelId = uint32_t;

inline constexpr LabelId kInvalidLabel = UINT32_MAX;

/// Reserved label for the synthetic document node (the parent of the root
/// element; Definition 2 maps a twig-query root to it).
inline constexpr std::string_view kDocumentLabel = "#doc";

/// Bidirectional string<->LabelId map. Ids are dense, starting at 0, and id 0
/// is always the document label. Not thread-safe; callers serialize access.
class LabelTable {
 public:
  LabelTable() { Intern(std::string(kDocumentLabel)); }

  LabelTable(const LabelTable&) = delete;
  LabelTable& operator=(const LabelTable&) = delete;
  LabelTable(LabelTable&&) = default;
  LabelTable& operator=(LabelTable&&) = default;

  /// Returns the id for `name`, creating it if unseen.
  LabelId Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    LabelId id = static_cast<LabelId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name`, or kInvalidLabel if it was never interned.
  /// Query compilation uses this: a NameTest naming an unknown label cannot
  /// match anything.
  LabelId Find(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? kInvalidLabel : it->second;
  }

  const std::string& Name(LabelId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

  static constexpr LabelId DocumentLabel() { return 0; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;
};

}  // namespace fix

#endif  // FIX_XML_LABEL_TABLE_H_
