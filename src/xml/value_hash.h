// ValueHasher: maps PCDATA strings into a small label domain (Section 4.6).
//
// The paper hashes values into (α, α+β] where α is the largest element
// label; here we intern β distinct bucket labels "#v<k>" into the shared
// LabelTable, which achieves the same thing (bucket labels are disjoint from
// element labels) without needing to know α up front. Collisions are by
// design: they introduce false positives only, never false negatives, and
// the refinement phase compares raw strings.

#ifndef FIX_XML_VALUE_HASH_H_
#define FIX_XML_VALUE_HASH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/logging.h"
#include "xml/label_table.h"

namespace fix {

class ValueHasher {
 public:
  /// Interns β bucket labels in `labels`. β must be >= 1. The same
  /// (LabelTable, β) pair must be used at index-build time and query time.
  ValueHasher(LabelTable* labels, uint32_t beta) : beta_(beta) {
    FIX_CHECK(beta >= 1);
    bucket_labels_.reserve(beta);
    for (uint32_t k = 0; k < beta; ++k) {
      bucket_labels_.push_back(labels->Intern("#v" + std::to_string(k)));
    }
  }

  /// The value label for a PCDATA string.
  LabelId LabelFor(std::string_view value) const {
    return bucket_labels_[Fnv1a64(value.data(), value.size()) % beta_];
  }

  uint32_t beta() const { return beta_; }

 private:
  uint32_t beta_;
  std::vector<LabelId> bucket_labels_;
};

}  // namespace fix

#endif  // FIX_XML_VALUE_HASH_H_
