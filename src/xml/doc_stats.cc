#include "xml/doc_stats.h"

#include <set>

namespace fix {

DocStats ComputeDocStats(const Document& doc, const LabelTable& labels) {
  DocStats stats;
  std::set<LabelId> seen;
  for (NodeId id = 1; id < doc.num_nodes(); ++id) {
    if (doc.IsElement(id)) {
      ++stats.elements;
      seen.insert(doc.label(id));
      // <tag></tag> plus a rough per-element markup overhead.
      stats.serialized_bytes += 2 * labels.Name(doc.label(id)).size() + 5;
    } else {
      ++stats.text_nodes;
      stats.text_bytes += doc.text(id).size();
      stats.serialized_bytes += doc.text(id).size();
    }
  }
  NodeId root = doc.root_element();
  stats.max_depth = root == kInvalidNode ? 0 : doc.Depth(root);
  stats.distinct_labels = seen.size();
  return stats;
}

}  // namespace fix
