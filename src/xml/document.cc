#include "xml/document.h"

#include <algorithm>

namespace fix {

size_t Document::CountElements() const {
  size_t n = 0;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::kElement) ++n;
  }
  return n;
}

int Document::Depth(NodeId id) const {
  // Iterative post-order with explicit depth tracking; documents can be deep
  // (Treebank), so no recursion here.
  struct Frame {
    NodeId node;
    int depth;
  };
  std::vector<Frame> stack;
  stack.push_back({id, 1});
  int max_depth = 0;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, f.depth);
    for (NodeId c = first_child(f.node); c != kInvalidNode;
         c = next_sibling(c)) {
      stack.push_back({c, f.depth + 1});
    }
  }
  return max_depth;
}

std::string Document::ChildText(NodeId id) const {
  std::string out;
  for (NodeId c = first_child(id); c != kInvalidNode; c = next_sibling(c)) {
    if (IsText(c)) out += text(c);
  }
  return out;
}

}  // namespace fix
