// Text serialization (Document -> XML string) and the compact binary codec
// used by the primary record store and the clustered index.

#ifndef FIX_XML_SERIALIZER_H_
#define FIX_XML_SERIALIZER_H_

#include <string>

#include "common/result.h"
#include "xml/document.h"
#include "xml/label_table.h"

namespace fix {

struct SerializeOptions {
  bool pretty = false;       ///< newline + two-space indentation per level
  bool attributes = true;    ///< emit retained attributes
};

/// Serializes the subtree rooted at `start` (defaults to the root element)
/// back to XML text, escaping markup characters in text and attributes.
std::string SerializeXml(const Document& doc, const LabelTable& labels,
                         SerializeOptions options = {},
                         NodeId start = kInvalidNode);

/// Escapes &, <, >, ", ' for embedding in XML text or attribute values.
std::string XmlEscape(std::string_view raw);

// ---------------------------------------------------------------------------
// Binary codec. Format (all varints):
//   [num_nodes u32] then per node (pre-order, excluding the document node):
//   [label u32] [parent u32] [kind u8-as-varint] [text? len + bytes]
// Label ids refer to the corpus-wide LabelTable, which is persisted
// separately (see storage/record_store.h).
// ---------------------------------------------------------------------------

/// Encodes the whole document (or the subtree at `start`) into `out`.
void EncodeDocument(const Document& doc, std::string* out,
                    NodeId start = kInvalidNode);

/// Decodes a buffer produced by EncodeDocument. The result is a standalone
/// Document whose root element is the encoded subtree's root.
[[nodiscard]] Result<Document> DecodeDocument(const std::string& buf);

}  // namespace fix

#endif  // FIX_XML_SERIALIZER_H_
