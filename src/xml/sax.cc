#include "xml/sax.h"

namespace fix {

bool DocumentEventStream::Next(SaxEvent* event) {
  if (!started_) {
    started_ = true;
    if (start_ == kInvalidNode || !Emittable(start_)) return false;
    event->kind = SaxEvent::Kind::kOpen;
    event->label = EffectiveLabel(start_);
    event->ref = {doc_id_, start_};
    stack_.push_back({start_, doc_->first_child(start_)});
    return true;
  }
  while (!stack_.empty()) {
    Frame& top = stack_.back();
    while (top.next_child != kInvalidNode && !Emittable(top.next_child)) {
      top.next_child = doc_->next_sibling(top.next_child);
    }
    if (top.next_child == kInvalidNode) {
      event->kind = SaxEvent::Kind::kClose;
      event->label = EffectiveLabel(top.node);
      event->ref = {doc_id_, top.node};
      stack_.pop_back();
      return true;
    }
    NodeId child = top.next_child;
    top.next_child = doc_->next_sibling(child);
    event->kind = SaxEvent::Kind::kOpen;
    event->label = EffectiveLabel(child);
    event->ref = {doc_id_, child};
    stack_.push_back({child, doc_->first_child(child)});
    return true;
  }
  return false;
}

}  // namespace fix
