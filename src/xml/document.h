// Document: an arena-allocated DOM for one XML document.
//
// Nodes live in a flat vector and refer to each other by 32-bit ids
// (first-child / next-sibling / parent), which keeps the tree compact and
// cache-friendly — the refinement engine traverses these trees in inner
// loops. Node 0 is always the synthetic document node (label "#doc"),
// matching Definition 2's "the root of the twig query matches the document
// node".

#ifndef FIX_XML_DOCUMENT_H_
#define FIX_XML_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "xml/label_table.h"

namespace fix {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// Node kinds. Attributes are parsed but kept out of the node tree (they are
/// not indexed by FIX); text nodes participate when value indexing is on.
enum class NodeKind : uint8_t { kElement = 0, kText = 1 };

/// A reference into the corpus' primary storage: which document, which node.
/// This is the "pointer" stored as the value of unclustered index entries.
struct NodeRef {
  uint32_t doc_id = 0;
  NodeId node_id = 0;

  bool operator==(const NodeRef&) const = default;
};

class Document {
 public:
  struct Node {
    LabelId label = kInvalidLabel;   // element name or value label
    NodeKind kind = NodeKind::kElement;
    NodeId parent = kInvalidNode;
    NodeId first_child = kInvalidNode;
    NodeId next_sibling = kInvalidNode;
    uint32_t text = UINT32_MAX;      // index into text pool (text nodes only)
  };

  struct Attribute {
    NodeId owner;        // element the attribute belongs to
    std::string name;
    std::string value;
  };

  Document() {
    Node doc_node;
    doc_node.label = LabelTable::DocumentLabel();
    nodes_.push_back(doc_node);
  }

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  // -- construction (used by the parser, deserializer, and generators) ------

  /// Appends an element child under `parent` and returns its id.
  NodeId AddElement(NodeId parent, LabelId label) {
    return AddNode(parent, label, NodeKind::kElement, UINT32_MAX);
  }

  /// Appends a text child under `parent`. `label` is the (possibly hashed)
  /// value label; the raw text is retained for refinement-time comparison.
  NodeId AddText(NodeId parent, LabelId label, std::string_view text) {
    uint32_t text_idx = static_cast<uint32_t>(texts_.size());
    texts_.emplace_back(text);
    return AddNode(parent, label, NodeKind::kText, text_idx);
  }

  void AddAttribute(NodeId owner, std::string name, std::string value) {
    attributes_.push_back({owner, std::move(name), std::move(value)});
  }

  // -- accessors -------------------------------------------------------------

  const Node& node(NodeId id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  LabelId label(NodeId id) const { return nodes_[id].label; }
  NodeKind kind(NodeId id) const { return nodes_[id].kind; }
  NodeId parent(NodeId id) const { return nodes_[id].parent; }
  NodeId first_child(NodeId id) const { return nodes_[id].first_child; }
  NodeId next_sibling(NodeId id) const { return nodes_[id].next_sibling; }

  bool IsElement(NodeId id) const {
    return nodes_[id].kind == NodeKind::kElement;
  }
  bool IsText(NodeId id) const { return nodes_[id].kind == NodeKind::kText; }

  const std::string& text(NodeId id) const {
    FIX_CHECK(IsText(id));
    return texts_[nodes_[id].text];
  }

  /// The root *element* (first element child of the document node), or
  /// kInvalidNode for an empty document.
  NodeId root_element() const {
    for (NodeId c = first_child(0); c != kInvalidNode; c = next_sibling(c)) {
      if (IsElement(c)) return c;
    }
    return kInvalidNode;
  }

  /// Number of element nodes, excluding the synthetic document node (the
  /// paper's "# elements" statistic).
  size_t CountElements() const;

  /// Depth of the subtree rooted at `id`, counting `id` itself as level 1.
  /// Depth of the whole document = Depth(root_element()).
  int Depth(NodeId id) const;

  /// Concatenated text content directly under `id` (child text nodes only),
  /// used for value-equality refinement.
  std::string ChildText(NodeId id) const;

  /// Total bytes of text payload (for size statistics).
  size_t TextBytes() const {
    size_t n = 0;
    for (const auto& t : texts_) n += t.size();
    return n;
  }

 private:
  NodeId AddNode(NodeId parent, LabelId label, NodeKind kind, uint32_t text) {
    FIX_CHECK(parent < nodes_.size());
    NodeId id = static_cast<NodeId>(nodes_.size());
    Node n;
    n.label = label;
    n.kind = kind;
    n.parent = parent;
    n.text = text;
    nodes_.push_back(n);
    // Append at the end of the parent's child list, preserving document
    // order. last_child_ scratch avoids O(children) appends.
    if (parent >= last_child_.size()) last_child_.resize(parent + 1, kInvalidNode);
    NodeId last = last_child_[parent];
    if (last == kInvalidNode || nodes_[last].parent != parent) {
      // No cached last child (or stale cache): walk the chain.
      NodeId c = nodes_[parent].first_child;
      if (c == kInvalidNode) {
        nodes_[parent].first_child = id;
      } else {
        while (nodes_[c].next_sibling != kInvalidNode) c = nodes_[c].next_sibling;
        nodes_[c].next_sibling = id;
      }
    } else {
      nodes_[last].next_sibling = id;
    }
    last_child_[parent] = id;
    return id;
  }

  std::vector<Node> nodes_;
  std::vector<std::string> texts_;
  std::vector<Attribute> attributes_;
  std::vector<NodeId> last_child_;  // construction scratch
};

}  // namespace fix

#endif  // FIX_XML_DOCUMENT_H_
