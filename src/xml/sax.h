// SAX-style event streams.
//
// Algorithm 1 (CONSTRUCT-ENTRIES) is written against an event stream, not a
// DOM: it consumes open/close events and maintains a PathStack of
// signatures. Two producers implement this interface:
//   * DocumentEventStream — replays a stored Document in document order;
//   * BisimTraveler (graph/bisim_traveler.h) — regenerates events from a
//     bisimulation graph under a depth limit (GEN-SUBPATTERN).

#ifndef FIX_XML_SAX_H_
#define FIX_XML_SAX_H_

#include <vector>

#include "xml/document.h"
#include "xml/label_table.h"
#include "xml/value_hash.h"

namespace fix {

/// One parse event. Open events carry the label and the "start_ptr" into
/// primary storage (paper, Algorithm 1 line 6); close events identify the
/// node being closed.
struct SaxEvent {
  enum class Kind : uint8_t { kOpen, kClose };
  Kind kind;
  LabelId label;
  NodeRef ref;
};

/// Pull-based event source.
class EventStream {
 public:
  virtual ~EventStream() = default;

  /// Produces the next event. Returns false at end of stream.
  virtual bool Next(SaxEvent* event) = 0;
};

/// Replays the subtree rooted at `start` of a Document as an event stream.
///
/// When a ValueHasher is supplied, text nodes are emitted as open/close pairs
/// whose label is the hashed value label (Section 4.6); otherwise text nodes
/// are silently skipped and the stream is purely structural.
class DocumentEventStream : public EventStream {
 public:
  DocumentEventStream(const Document* doc, uint32_t doc_id,
                      const ValueHasher* values = nullptr)
      : DocumentEventStream(doc, doc_id, doc->root_element(), values) {}

  /// Streams only the subtree rooted at `start`.
  DocumentEventStream(const Document* doc, uint32_t doc_id, NodeId start,
                      const ValueHasher* values)
      : doc_(doc), doc_id_(doc_id), start_(start), values_(values) {}

  bool Next(SaxEvent* event) override;

 private:
  struct Frame {
    NodeId node;
    NodeId next_child;
  };

  bool Emittable(NodeId id) const {
    return doc_->IsElement(id) || values_ != nullptr;
  }

  LabelId EffectiveLabel(NodeId id) const {
    if (doc_->IsElement(id)) return doc_->label(id);
    return values_->LabelFor(doc_->text(id));
  }

  const Document* doc_;
  uint32_t doc_id_;
  NodeId start_;
  const ValueHasher* values_;
  bool started_ = false;
  std::vector<Frame> stack_;
};

}  // namespace fix

#endif  // FIX_XML_SAX_H_
