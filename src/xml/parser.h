// A from-scratch, non-validating XML parser producing arena Documents.
//
// Supported: elements, attributes, character data, CDATA sections, the five
// predefined entities plus numeric character references, comments,
// processing instructions, an XML declaration, and a DOCTYPE declaration
// with an (ignored) internal subset. Namespaces are not expanded; prefixed
// names are treated as opaque labels, which matches how the paper's data
// sets use tags.

#ifndef FIX_XML_PARSER_H_
#define FIX_XML_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/document.h"
#include "xml/label_table.h"

namespace fix {

struct ParseOptions {
  /// Drop text nodes that are entirely XML whitespace (the usual choice for
  /// data-centric documents; pretty-printing indentation is not data).
  bool skip_whitespace_text = true;
  /// Retain attributes on the Document (they are never indexed).
  bool keep_attributes = true;
};

class XmlParser {
 public:
  /// Labels are interned into `labels`, which must outlive the parser.
  explicit XmlParser(LabelTable* labels, ParseOptions options = {})
      : labels_(labels), options_(options) {}

  /// Parses a complete document. On failure the Status message includes the
  /// 1-based line number of the offending construct.
  [[nodiscard]] Result<Document> Parse(std::string_view input);

 private:
  // Character-level helpers; all operate on (input_, pos_).
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char Get();
  bool Consume(char c);
  bool ConsumeLiteral(std::string_view lit);
  void SkipWhitespace();
  [[nodiscard]] Status Fail(const std::string& what) const;

  [[nodiscard]] Status ParseProlog();
  [[nodiscard]] Status ParseMisc();           // comments / PIs between markup
  [[nodiscard]] Status ParseComment();
  [[nodiscard]] Status ParsePi();
  [[nodiscard]] Status ParseDoctype();
  [[nodiscard]] Status ParseElement(Document* doc, NodeId parent, int depth);
  [[nodiscard]] Status ParseAttributes(Document* doc, NodeId element);
  [[nodiscard]] Status ParseContent(Document* doc, NodeId element, int depth);
  [[nodiscard]] Status ParseCdata(std::string* out);
  [[nodiscard]] Status ParseReference(std::string* out);
  [[nodiscard]] Result<std::string> ParseName();

  static bool IsNameStartChar(char c);
  static bool IsNameChar(char c);
  static bool IsXmlWhitespace(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }

  void FlushText(Document* doc, NodeId parent, std::string* text);

  LabelTable* labels_;
  ParseOptions options_;
  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
};

/// Convenience wrapper constructing a parser for one call.
[[nodiscard]] Result<Document> ParseXml(std::string_view input, LabelTable* labels,
                          ParseOptions options = {});

}  // namespace fix

#endif  // FIX_XML_PARSER_H_
