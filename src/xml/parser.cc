#include "xml/parser.h"

#include <cctype>
#include <charconv>

namespace fix {

namespace {
// The parser recurses per element level; this cap keeps deeply nested (or
// adversarial) input from exhausting the call stack. It must hold with the
// fattest frames we build: under ASan/UBSan the ParseElement/ParseContent
// pair costs several KiB of redzoned stack, so 5000 levels overflowed the
// default 8 MiB stack (caught by the sanitizer suite). 1500 leaves a >2x
// margin there while staying far above any non-adversarial document.
constexpr int kMaxElementDepth = 1500;
}  // namespace

char XmlParser::Get() {
  char c = input_[pos_++];
  if (c == '\n') ++line_;
  return c;
}

bool XmlParser::Consume(char c) {
  if (AtEnd() || Peek() != c) return false;
  Get();
  return true;
}

bool XmlParser::ConsumeLiteral(std::string_view lit) {
  if (input_.substr(pos_, lit.size()) != lit) return false;
  for (size_t i = 0; i < lit.size(); ++i) Get();
  return true;
}

void XmlParser::SkipWhitespace() {
  while (!AtEnd() && IsXmlWhitespace(Peek())) Get();
}

Status XmlParser::Fail(const std::string& what) const {
  return Status::ParseError(what + " (line " + std::to_string(line_) + ")");
}

bool XmlParser::IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool XmlParser::IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

Result<Document> XmlParser::Parse(std::string_view input) {
  input_ = input;
  pos_ = 0;
  line_ = 1;

  Document doc;
  FIX_RETURN_IF_ERROR(ParseProlog());
  SkipWhitespace();
  if (AtEnd() || Peek() != '<') {
    return Fail("expected root element");
  }
  FIX_RETURN_IF_ERROR(ParseElement(&doc, /*parent=*/0, /*depth=*/1));
  // Trailing Misc (comments, PIs, whitespace) after the root element.
  FIX_RETURN_IF_ERROR(ParseMisc());
  SkipWhitespace();
  if (!AtEnd()) {
    return Fail("content after root element");
  }
  return doc;
}

Status XmlParser::ParseProlog() {
  SkipWhitespace();
  if (ConsumeLiteral("<?xml")) {
    // XML declaration: skip to "?>".
    while (!AtEnd() && !ConsumeLiteral("?>")) Get();
  }
  FIX_RETURN_IF_ERROR(ParseMisc());
  SkipWhitespace();
  if (input_.substr(pos_, 9) == "<!DOCTYPE") {
    FIX_RETURN_IF_ERROR(ParseDoctype());
    FIX_RETURN_IF_ERROR(ParseMisc());
  }
  return Status::OK();
}

Status XmlParser::ParseMisc() {
  for (;;) {
    SkipWhitespace();
    if (input_.substr(pos_, 4) == "<!--") {
      FIX_RETURN_IF_ERROR(ParseComment());
    } else if (input_.substr(pos_, 2) == "<?" &&
               input_.substr(pos_, 5) != "<?xml") {
      FIX_RETURN_IF_ERROR(ParsePi());
    } else {
      return Status::OK();
    }
  }
}

Status XmlParser::ParseComment() {
  FIX_CHECK(ConsumeLiteral("<!--"));
  while (!AtEnd()) {
    if (ConsumeLiteral("-->")) return Status::OK();
    Get();
  }
  return Fail("unterminated comment");
}

Status XmlParser::ParsePi() {
  FIX_CHECK(ConsumeLiteral("<?"));
  while (!AtEnd()) {
    if (ConsumeLiteral("?>")) return Status::OK();
    Get();
  }
  return Fail("unterminated processing instruction");
}

Status XmlParser::ParseDoctype() {
  FIX_CHECK(ConsumeLiteral("<!DOCTYPE"));
  int bracket_depth = 0;
  while (!AtEnd()) {
    char c = Get();
    if (c == '[') {
      ++bracket_depth;
    } else if (c == ']') {
      --bracket_depth;
    } else if (c == '>' && bracket_depth == 0) {
      return Status::OK();
    }
  }
  return Fail("unterminated DOCTYPE");
}

Result<std::string> XmlParser::ParseName() {
  if (AtEnd() || !IsNameStartChar(Peek())) {
    return Fail("expected a name");
  }
  std::string name;
  name.push_back(Get());
  while (!AtEnd() && IsNameChar(Peek())) name.push_back(Get());
  return name;
}

Status XmlParser::ParseElement(Document* doc, NodeId parent, int depth) {
  if (depth > kMaxElementDepth) return Fail("document too deep");
  if (!Consume('<')) return Fail("expected '<'");
  std::string name;
  FIX_ASSIGN_OR_RETURN(name, ParseName());
  NodeId element = doc->AddElement(parent, labels_->Intern(name));
  FIX_RETURN_IF_ERROR(ParseAttributes(doc, element));
  SkipWhitespace();
  if (ConsumeLiteral("/>")) return Status::OK();
  if (!Consume('>')) return Fail("expected '>' closing start tag <" + name);
  FIX_RETURN_IF_ERROR(ParseContent(doc, element, depth));
  // ParseContent stops right after "</".
  std::string close_name;
  FIX_ASSIGN_OR_RETURN(close_name, ParseName());
  if (close_name != name) {
    return Fail("mismatched end tag </" + close_name + "> for <" + name + ">");
  }
  SkipWhitespace();
  if (!Consume('>')) return Fail("expected '>' closing end tag");
  return Status::OK();
}

Status XmlParser::ParseAttributes(Document* doc, NodeId element) {
  for (;;) {
    // Require at least one whitespace char before an attribute name.
    size_t before = pos_;
    SkipWhitespace();
    if (AtEnd()) return Fail("unterminated start tag");
    char c = Peek();
    if (c == '>' || c == '/') {
      return Status::OK();
    }
    if (before == pos_) return Fail("expected whitespace before attribute");
    std::string name;
    FIX_ASSIGN_OR_RETURN(name, ParseName());
    SkipWhitespace();
    if (!Consume('=')) return Fail("expected '=' in attribute " + name);
    SkipWhitespace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Fail("expected quoted attribute value");
    }
    char quote = Get();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        FIX_RETURN_IF_ERROR(ParseReference(&value));
      } else if (Peek() == '<') {
        return Fail("'<' in attribute value");
      } else {
        value.push_back(Get());
      }
    }
    if (!Consume(quote)) return Fail("unterminated attribute value");
    if (options_.keep_attributes) {
      doc->AddAttribute(element, std::move(name), std::move(value));
    }
  }
}

Status XmlParser::ParseContent(Document* doc, NodeId element, int depth) {
  std::string text;
  for (;;) {
    if (AtEnd()) return Fail("unexpected end of input inside element");
    char c = Peek();
    if (c == '<') {
      if (ConsumeLiteral("</")) {
        FlushText(doc, element, &text);
        return Status::OK();
      }
      if (input_.substr(pos_, 4) == "<!--") {
        FIX_RETURN_IF_ERROR(ParseComment());
        continue;
      }
      if (input_.substr(pos_, 9) == "<![CDATA[") {
        FIX_RETURN_IF_ERROR(ParseCdata(&text));
        continue;
      }
      if (input_.substr(pos_, 2) == "<?") {
        FIX_RETURN_IF_ERROR(ParsePi());
        continue;
      }
      FlushText(doc, element, &text);
      FIX_RETURN_IF_ERROR(ParseElement(doc, element, depth + 1));
      continue;
    }
    if (c == '&') {
      FIX_RETURN_IF_ERROR(ParseReference(&text));
      continue;
    }
    text.push_back(Get());
  }
}

Status XmlParser::ParseCdata(std::string* out) {
  FIX_CHECK(ConsumeLiteral("<![CDATA["));
  while (!AtEnd()) {
    if (ConsumeLiteral("]]>")) return Status::OK();
    out->push_back(Get());
  }
  return Fail("unterminated CDATA section");
}

Status XmlParser::ParseReference(std::string* out) {
  FIX_CHECK(Consume('&'));
  std::string entity;
  while (!AtEnd() && Peek() != ';') {
    entity.push_back(Get());
    if (entity.size() > 10) return Fail("entity reference too long");
  }
  if (!Consume(';')) return Fail("unterminated entity reference");
  if (entity == "lt") {
    out->push_back('<');
  } else if (entity == "gt") {
    out->push_back('>');
  } else if (entity == "amp") {
    out->push_back('&');
  } else if (entity == "apos") {
    out->push_back('\'');
  } else if (entity == "quot") {
    out->push_back('"');
  } else if (!entity.empty() && entity[0] == '#') {
    long code = 0;
    bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
    const char* first = entity.data() + (hex ? 2 : 1);
    const char* last = entity.data() + entity.size();
    auto [ptr, ec] = std::from_chars(first, last, code, hex ? 16 : 10);
    if (ec != std::errc() || ptr != last || first == last) {
      return Fail("bad character reference &" + entity + ";");
    }
    if (code <= 0 || code > 0x10FFFF) {
      return Fail("character reference out of range");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  } else {
    return Fail("unknown entity &" + entity + ";");
  }
  return Status::OK();
}

void XmlParser::FlushText(Document* doc, NodeId parent, std::string* text) {
  if (text->empty()) return;
  bool all_ws = true;
  for (char c : *text) {
    if (!IsXmlWhitespace(c)) {
      all_ws = false;
      break;
    }
  }
  if (!(all_ws && options_.skip_whitespace_text)) {
    doc->AddText(parent, kInvalidLabel, *text);
  }
  text->clear();
}

Result<Document> ParseXml(std::string_view input, LabelTable* labels,
                          ParseOptions options) {
  XmlParser parser(labels, options);
  return parser.Parse(input);
}

}  // namespace fix
