// Per-document / per-corpus statistics used by Table 1 and the harness
// reports.

#ifndef FIX_XML_DOC_STATS_H_
#define FIX_XML_DOC_STATS_H_

#include <cstdint>
#include <map>

#include "xml/document.h"
#include "xml/label_table.h"

namespace fix {

struct DocStats {
  size_t elements = 0;       ///< element nodes (document node excluded)
  size_t text_nodes = 0;
  size_t text_bytes = 0;
  int max_depth = 0;         ///< root element counts as level 1
  size_t distinct_labels = 0;
  size_t serialized_bytes = 0;  ///< approximate XML size

  DocStats& Merge(const DocStats& other) {
    elements += other.elements;
    text_nodes += other.text_nodes;
    text_bytes += other.text_bytes;
    if (other.max_depth > max_depth) max_depth = other.max_depth;
    serialized_bytes += other.serialized_bytes;
    return *this;
  }
};

/// Computes statistics for one document.
DocStats ComputeDocStats(const Document& doc, const LabelTable& labels);

}  // namespace fix

#endif  // FIX_XML_DOC_STATS_H_
