#include "xml/serializer.h"

#include <vector>

#include "common/bytes.h"

namespace fix {

std::string XmlEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

void SerializeNode(const Document& doc, const LabelTable& labels,
                   const SerializeOptions& options, NodeId id, int indent,
                   std::string* out) {
  if (doc.IsText(id)) {
    *out += XmlEscape(doc.text(id));
    return;
  }
  const std::string& name = labels.Name(doc.label(id));
  if (options.pretty && !out->empty()) {
    *out += '\n';
    out->append(static_cast<size_t>(indent) * 2, ' ');
  }
  *out += '<';
  *out += name;
  if (options.attributes) {
    for (const auto& attr : doc.attributes()) {
      if (attr.owner == id) {
        *out += ' ';
        *out += attr.name;
        *out += "=\"";
        *out += XmlEscape(attr.value);
        *out += '"';
      }
    }
  }
  NodeId child = doc.first_child(id);
  if (child == kInvalidNode) {
    *out += "/>";
    return;
  }
  *out += '>';
  bool has_element_child = false;
  for (NodeId c = child; c != kInvalidNode; c = doc.next_sibling(c)) {
    if (doc.IsElement(c)) has_element_child = true;
    SerializeNode(doc, labels, options, c, indent + 1, out);
  }
  if (options.pretty && has_element_child) {
    *out += '\n';
    out->append(static_cast<size_t>(indent) * 2, ' ');
  }
  *out += "</";
  *out += name;
  *out += '>';
}

}  // namespace

std::string SerializeXml(const Document& doc, const LabelTable& labels,
                         SerializeOptions options, NodeId start) {
  if (start == kInvalidNode) start = doc.root_element();
  std::string out;
  if (start != kInvalidNode) {
    SerializeNode(doc, labels, options, start, 0, &out);
  }
  return out;
}

void EncodeDocument(const Document& doc, std::string* out, NodeId start) {
  if (start == kInvalidNode) start = doc.root_element();
  // Pre-order walk collecting (node, new_parent) pairs; new ids are assigned
  // in visit order starting at 1 (0 is the implicit document node).
  struct Item {
    NodeId node;
    uint32_t new_parent;
  };
  std::vector<Item> order;
  if (start != kInvalidNode) {
    std::vector<Item> stack{{start, 0}};
    while (!stack.empty()) {
      Item item = stack.back();
      stack.pop_back();
      uint32_t new_id = static_cast<uint32_t>(order.size()) + 1;
      order.push_back(item);
      // Push children in reverse so they pop in document order.
      std::vector<NodeId> children;
      for (NodeId c = doc.first_child(item.node); c != kInvalidNode;
           c = doc.next_sibling(c)) {
        children.push_back(c);
      }
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        stack.push_back({*it, new_id});
      }
    }
  }
  PutVarint32(out, static_cast<uint32_t>(order.size()));
  for (const Item& item : order) {
    PutVarint32(out, doc.label(item.node));
    PutVarint32(out, item.new_parent);
    PutVarint32(out, static_cast<uint32_t>(doc.kind(item.node)));
    if (doc.IsText(item.node)) {
      const std::string& t = doc.text(item.node);
      PutVarint32(out, static_cast<uint32_t>(t.size()));
      out->append(t);
    }
  }
}

Result<Document> DecodeDocument(const std::string& buf) {
  size_t pos = 0;
  uint32_t n = 0;
  if (!GetVarint32(buf, &pos, &n)) {
    return Status::Corruption("document record: truncated header");
  }
  Document doc;
  for (uint32_t i = 1; i <= n; ++i) {
    uint32_t label, parent, kind;
    if (!GetVarint32(buf, &pos, &label) || !GetVarint32(buf, &pos, &parent) ||
        !GetVarint32(buf, &pos, &kind)) {
      return Status::Corruption("document record: truncated node");
    }
    if (parent >= i) {
      return Status::Corruption("document record: parent after child");
    }
    if (kind == static_cast<uint32_t>(NodeKind::kElement)) {
      doc.AddElement(parent, label);
    } else if (kind == static_cast<uint32_t>(NodeKind::kText)) {
      uint32_t len;
      if (!GetVarint32(buf, &pos, &len) || pos + len > buf.size()) {
        return Status::Corruption("document record: truncated text");
      }
      doc.AddText(parent, label, std::string_view(buf).substr(pos, len));
      pos += len;
    } else {
      return Status::Corruption("document record: bad node kind");
    }
  }
  if (pos != buf.size()) {
    return Status::Corruption("document record: trailing bytes");
  }
  return doc;
}

}  // namespace fix
