// Dense matrices for spectral feature extraction.
//
// A bisimulation graph (labeled DAG) is translated to an anti-symmetric
// matrix (Section 3.2): edge (u, v) with weight w contributes M[u][v] = w
// and M[v][u] = -w. The matrix is small — patterns are depth-limited — so a
// dense row-major layout is the right representation.

#ifndef FIX_SPECTRAL_SKEW_MATRIX_H_
#define FIX_SPECTRAL_SKEW_MATRIX_H_

#include <cstddef>
#include <vector>

#include "graph/bisim_graph.h"
#include "spectral/edge_encoder.h"

namespace fix {

/// Minimal dense square matrix.
class DenseMatrix {
 public:
  explicit DenseMatrix(size_t n) : n_(n), data_(n * n, 0.0) {}

  size_t n() const { return n_; }
  double& at(size_t i, size_t j) { return data_[i * n_ + j]; }
  double at(size_t i, size_t j) const { return data_[i * n_ + j]; }

  const std::vector<double>& data() const { return data_; }

 private:
  size_t n_;
  std::vector<double> data_;
};

/// Translates a bisimulation graph into its anti-symmetric matrix. Vertex i
/// of the graph maps to dimension i (any numbering works: permutations are
/// isospectral).
DenseMatrix BuildSkewMatrix(const BisimGraph& graph, EdgeEncoder* encoder);

/// Interns every edge weight BuildSkewMatrix would request for `graph`, in
/// the same first-seen order, without building the matrix. The construction
/// pipeline runs this sequentially over patterns in document/close order so
/// the encoder's weight assignment is independent of how many solver
/// threads later run.
void InternPatternWeights(const BisimGraph& graph, EdgeEncoder* encoder);

/// BuildSkewMatrix against a frozen encoder: every (label, label) pair of
/// `graph` must already be interned (see InternPatternWeights). Safe to
/// call from many threads concurrently.
DenseMatrix BuildSkewMatrixFrozen(const BisimGraph& graph,
                                  const EdgeEncoder& encoder);

}  // namespace fix

#endif  // FIX_SPECTRAL_SKEW_MATRIX_H_
