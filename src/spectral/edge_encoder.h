// EdgeEncoder: assigns a distinct positive integer weight to each
// (source-label, target-label) pair, the encoding of Section 3.2 that folds
// vertex labels into edge weights so the labeled DAG can become a weighted
// matrix.
//
// Build side and query side MUST share one encoder instance (or a restored
// copy): Theorem 3's containment argument requires that an edge common to a
// query pattern and an indexed pattern carry the same weight in both
// matrices. Pairs are interned on first sight; a pair first seen in a query
// simply gets a fresh weight, which is harmless — such an edge exists in no
// indexed pattern, so the no-false-negative guarantee is unaffected.

#ifndef FIX_SPECTRAL_EDGE_ENCODER_H_
#define FIX_SPECTRAL_EDGE_ENCODER_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "xml/label_table.h"

namespace fix {

class EdgeEncoder {
 public:
  EdgeEncoder() = default;
  EdgeEncoder(const EdgeEncoder&) = delete;
  EdgeEncoder& operator=(const EdgeEncoder&) = delete;
  EdgeEncoder(EdgeEncoder&&) = default;
  EdgeEncoder& operator=(EdgeEncoder&&) = default;

  /// Weight for the edge (from, to); interned on first use. Weights are
  /// 1, 2, 3, ... in first-seen order.
  double Weight(LabelId from, LabelId to) {
    uint64_t key = (static_cast<uint64_t>(from) << 32) | to;
    auto [it, inserted] = weights_.emplace(key, next_weight_);
    if (inserted) ++next_weight_;
    return static_cast<double>(it->second);
  }

  /// Read-only lookup for concurrent use by the construction pipeline's
  /// solver threads: the pair must already be interned (the sequential
  /// interning phase guarantees it). Never mutates, so any number of
  /// threads may call it while no thread calls Weight/Import.
  double FrozenWeight(LabelId from, LabelId to) const {
    uint64_t key = (static_cast<uint64_t>(from) << 32) | to;
    auto it = weights_.find(key);
    FIX_CHECK(it != weights_.end());
    return static_cast<double>(it->second);
  }

  size_t num_pairs() const { return weights_.size(); }

  /// Snapshot of the interned (label-pair, weight) mapping, for index
  /// persistence. Pairs are unordered.
  std::vector<std::pair<uint64_t, uint32_t>> Export() const {
    return {weights_.begin(), weights_.end()};
  }

  /// Restores a snapshot (replacing any current state). next weight resumes
  /// after the largest imported weight so later interning stays distinct.
  void Import(const std::vector<std::pair<uint64_t, uint32_t>>& pairs) {
    weights_.clear();
    next_weight_ = 1;
    for (const auto& [key, weight] : pairs) {
      weights_.emplace(key, weight);
      if (weight >= next_weight_) next_weight_ = weight + 1;
    }
  }

 private:
  std::unordered_map<uint64_t, uint32_t> weights_;
  uint32_t next_weight_ = 1;
};

}  // namespace fix

#endif  // FIX_SPECTRAL_EDGE_ENCODER_H_
