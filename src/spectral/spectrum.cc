#include "spectral/spectrum.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "common/metrics_registry.h"
#include "common/timer.h"
#include "spectral/sym_eigen.h"

namespace fix {

namespace {

// Every spectral key computed anywhere (build, probe, cache miss) funnels
// through SkewSpectrum, so this is the one place eigensolve cost is
// accounted (docs/OBSERVABILITY.md).
Counter& EigCount() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.spectral.eigensolve.count", "ops", "skew-spectrum eigensolves");
  return *c;
}
Counter& EigFailures() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.spectral.eigensolve_failures.count", "ops",
      "eigensolves that did not converge");
  return *c;
}
Histogram& EigLatency() {
  static Histogram* h = MetricsRegistry::Instance().FindOrCreateHistogram(
      "fix.spectral.eigensolve_us", "us", "skew-spectrum eigensolve latency");
  return *h;
}
Histogram& EigMatrixDim() {
  static Histogram* h = MetricsRegistry::Instance().FindOrCreateHistogram(
      "fix.spectral.matrix_dim", "n", "bisimulation matrix dimension");
  return *h;
}

// Debug-build validation that `m` really is anti-symmetric (zero diagonal,
// M[i][j] == -M[j][i]) before we rely on it for the MᵀM shortcut. O(n²) but
// stops at the first violation, reporting the offending (i, j) so a bad
// matrix is diagnosable without dumping all n² entries. Compiled out of
// release builds.
void DcheckAntiSymmetric(const DenseMatrix& m) {
#if FIX_DCHECKS_ENABLED
  for (size_t i = 0; i < m.n(); ++i) {
    if (m.at(i, i) != 0.0) {
      ::fix::internal_check::DCheckOpFail(
          __FILE__, __LINE__, "anti-symmetry: nonzero diagonal at (i, i), i",
          i, m.at(i, i));
    }
    for (size_t j = i + 1; j < m.n(); ++j) {
      if (m.at(i, j) != -m.at(j, i)) {
        ::fix::internal_check::DCheckOpFail(
            __FILE__, __LINE__,
            ("anti-symmetry violated at (i, j) = (" + std::to_string(i) +
             ", " + std::to_string(j) + "): m(i, j) vs -m(j, i)")
                .c_str(),
            m.at(i, j), -m.at(j, i));
      }
    }
  }
#else
  (void)m;
#endif
}

}  // namespace

Result<std::vector<double>> SkewSpectrum(const DenseMatrix& m) {
  const size_t n = m.n();
  if (n == 0) return std::vector<double>{};  // empty pattern: empty spectrum
  DcheckAntiSymmetric(m);
  Timer timer;
  EigMatrixDim().Record(n);
  // B = MᵀM; for anti-symmetric M this is symmetric positive semidefinite
  // with eigenvalues σᵢ². Anti-symmetry turns the column dot product
  // Σₖ m(k,i)·m(k,j) into the row dot product Σₖ m(i,k)·m(j,k) — the two
  // are bitwise identical per term ((-a)·(-b) flips both sign bits) — so
  // the whole product runs on unit-stride rows instead of strided columns,
  // and only the lower triangle is computed. Tiling i and j keeps a block
  // of j-rows resident in cache across the i-block; k always runs 0..n-1
  // ascending within one (i, j) pair, preserving the accumulation order
  // (and therefore the exact floating-point result) of the naive loop.
  constexpr size_t kBlock = 64;
  DenseMatrix b(n);
  const std::vector<double>& data = m.data();
  for (size_t ib = 0; ib < n; ib += kBlock) {
    const size_t imax = std::min(ib + kBlock, n);
    for (size_t jb = 0; jb <= ib; jb += kBlock) {
      for (size_t i = ib; i < imax; ++i) {
        const double* row_i = data.data() + i * n;
        const size_t jmax = std::min(jb + kBlock, i + 1);
        for (size_t j = jb; j < jmax; ++j) {
          const double* row_j = data.data() + j * n;
          double sum = 0.0;
          for (size_t k = 0; k < n; ++k) {
            sum += row_i[k] * row_j[k];
          }
          b.at(i, j) = sum;
          b.at(j, i) = sum;
        }
      }
    }
  }
  auto sq_or = SymmetricEigenvalues(b);
  if (!sq_or.ok()) {
    EigFailures().Increment();
    return sq_or.status();
  }
  std::vector<double> sq = std::move(sq_or).value();
  EigCount().Increment();
  EigLatency().Record(static_cast<uint64_t>(timer.ElapsedMicros()));
  std::vector<double> sigmas(sq.size());
  for (size_t i = 0; i < sq.size(); ++i) {
    sigmas[i] = std::sqrt(std::max(0.0, sq[i]));  // clamp round-off
  }
  std::sort(sigmas.begin(), sigmas.end(), std::greater<double>());
  return sigmas;
}

EigPair EigPairFromSpectrum(const std::vector<double>& sigmas) {
  EigPair pair;
  pair.lambda_max = sigmas.empty() ? 0.0 : sigmas.front();
  pair.lambda_min = -pair.lambda_max;
  pair.lambda2 = sigmas.size() > 2 ? sigmas[2] : 0.0;
  return pair;
}

Result<EigPair> SkewEigPair(const DenseMatrix& m) {
  if (m.n() == 0) return EigPair{};
  std::vector<double> sigmas;
  FIX_ASSIGN_OR_RETURN(sigmas, SkewSpectrum(m));
  return EigPairFromSpectrum(sigmas);
}

Result<std::vector<double>> SkewSpectrumEmbedding(const DenseMatrix& m) {
  DcheckAntiSymmetric(m);
  size_t n = m.n();
  DenseMatrix big(2 * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      big.at(i, n + j) = -m.at(i, j);
      big.at(n + i, j) = m.at(i, j);
    }
  }
  std::vector<double> eigs;
  FIX_ASSIGN_OR_RETURN(eigs, SymmetricEigenvalues(big));
  // Each eigenvalue of iM appears twice; keep magnitudes of the positive
  // copies (spectrum is symmetric about 0), i.e. the top n by magnitude
  // after folding.
  std::vector<double> mags(eigs.size());
  for (size_t i = 0; i < eigs.size(); ++i) mags[i] = std::fabs(eigs[i]);
  std::sort(mags.begin(), mags.end(), std::greater<double>());
  // mags holds each σ four times? No: spectrum of the embedding is
  // {±σᵢ, ±σᵢ} — each σ magnitude appears twice per sign, i.e. every
  // magnitude appears exactly twice among the 2n values... of which both
  // signs fold to the same magnitude. Dedup by taking every other entry.
  std::vector<double> sigmas;
  sigmas.reserve(n);
  for (size_t i = 0; i < mags.size(); i += 2) sigmas.push_back(mags[i]);
  return sigmas;
}

}  // namespace fix
