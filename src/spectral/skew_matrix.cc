#include "spectral/skew_matrix.h"

namespace fix {

DenseMatrix BuildSkewMatrix(const BisimGraph& graph, EdgeEncoder* encoder) {
  DenseMatrix m(graph.num_vertices());
  for (BisimVertexId u = 0; u < graph.num_vertices(); ++u) {
    const BisimVertex& vu = graph.vertex(u);
    for (BisimVertexId v : vu.children) {
      double w = encoder->Weight(vu.label, graph.vertex(v).label);
      m.at(u, v) = w;
      m.at(v, u) = -w;
    }
  }
  return m;
}

}  // namespace fix
