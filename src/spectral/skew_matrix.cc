#include "spectral/skew_matrix.h"

namespace fix {

DenseMatrix BuildSkewMatrix(const BisimGraph& graph, EdgeEncoder* encoder) {
  DenseMatrix m(graph.num_vertices());
  for (BisimVertexId u = 0; u < graph.num_vertices(); ++u) {
    const BisimVertex& vu = graph.vertex(u);
    for (BisimVertexId v : vu.children) {
      double w = encoder->Weight(vu.label, graph.vertex(v).label);
      m.at(u, v) = w;
      m.at(v, u) = -w;
    }
  }
  return m;
}

void InternPatternWeights(const BisimGraph& graph, EdgeEncoder* encoder) {
  // Must visit edges in exactly BuildSkewMatrix's order: first-seen order
  // determines the weight values.
  for (BisimVertexId u = 0; u < graph.num_vertices(); ++u) {
    const BisimVertex& vu = graph.vertex(u);
    for (BisimVertexId v : vu.children) {
      encoder->Weight(vu.label, graph.vertex(v).label);
    }
  }
}

DenseMatrix BuildSkewMatrixFrozen(const BisimGraph& graph,
                                  const EdgeEncoder& encoder) {
  DenseMatrix m(graph.num_vertices());
  for (BisimVertexId u = 0; u < graph.num_vertices(); ++u) {
    const BisimVertex& vu = graph.vertex(u);
    for (BisimVertexId v : vu.children) {
      double w = encoder.FrozenWeight(vu.label, graph.vertex(v).label);
      m.at(u, v) = w;
      m.at(v, u) = -w;
    }
  }
  return m;
}

}  // namespace fix
