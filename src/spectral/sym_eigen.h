// Real-symmetric eigenvalue solver: Householder tridiagonalization followed
// by the implicit-shift QL iteration — the classic dense symmetric pipeline
// (the paper's reference [22], Numerical Recipes). Only eigenvalues are
// computed; FIX never needs eigenvectors.

#ifndef FIX_SPECTRAL_SYM_EIGEN_H_
#define FIX_SPECTRAL_SYM_EIGEN_H_

#include <vector>

#include "common/result.h"
#include "spectral/skew_matrix.h"

namespace fix {

/// Computes all eigenvalues of a symmetric matrix (only the lower triangle
/// is read). Returns them unsorted. Fails only if the QL iteration does not
/// converge (pathological input).
[[nodiscard]] Result<std::vector<double>> SymmetricEigenvalues(const DenseMatrix& m);

}  // namespace fix

#endif  // FIX_SPECTRAL_SYM_EIGEN_H_
