// Spectral features of anti-symmetric matrices (Section 3.3).
//
// For a real anti-symmetric M, iM is Hermitian, so the eigenvalues of iM
// are real and come in ±σ pairs where the σ are the singular values of M.
// We therefore obtain the full spectrum from a symmetric eigensolve of
// MᵀM (= -M², whose eigenvalues are the σ²) — an n×n problem instead of the
// 2n×2n Hermitian embedding. The embedding solver is retained as a slow
// reference used by tests to cross-check the fast path.
//
// Consequence the paper does not spell out: λ_min = -λ_max for every
// pattern, so the (λ_min, λ_max) key is one effective scalar feature plus
// the root label. We keep the paper's pair faithfully and expose the second
// singular value λ₂ as an optional extension feature (ablation A).

#ifndef FIX_SPECTRAL_SPECTRUM_H_
#define FIX_SPECTRAL_SPECTRUM_H_

#include <vector>

#include "common/result.h"
#include "graph/bisim_graph.h"
#include "spectral/skew_matrix.h"

namespace fix {

/// Magnitudes of the eigenvalues of iM (the singular values of M), sorted
/// descending. `m` must be anti-symmetric.
[[nodiscard]] Result<std::vector<double>> SkewSpectrum(const DenseMatrix& m);

/// (λ_max, λ_min) of iM. λ_min = -λ_max by anti-symmetry; returned as a pair
/// to mirror the paper's key layout.
[[nodiscard]] Result<EigPair> SkewEigPair(const DenseMatrix& m);

/// Derives the feature tuple from a sorted-descending magnitude spectrum.
/// The eigenvalues of iM sorted as reals are [σ₁, σ₂, …, −σ₂, −σ₁], so the
/// magnitude list carries each σ twice and the second-largest *eigenvalue*
/// is the third magnitude. λ₂ is monotone under induced subgraphs by Cauchy
/// interlacing (λ₂(H) ≤ λ₂(G)), hence a valid extra pruning feature.
EigPair EigPairFromSpectrum(const std::vector<double>& sigmas);

/// Reference implementation via the real-symmetric embedding
/// [[0, -M], [M, 0]] of the Hermitian iM (each eigenvalue of iM appears
/// twice). O((2n)³); for tests only.
[[nodiscard]] Result<std::vector<double>> SkewSpectrumEmbedding(const DenseMatrix& m);

}  // namespace fix

#endif  // FIX_SPECTRAL_SPECTRUM_H_
