// FeatureCache: a sharded, bounded memo of spectral features keyed by the
// canonical signature of a pattern's bisimulation graph.
//
// Downward bisimulation makes structurally identical subtrees collapse to
// identical pattern graphs, and the same depth-L patterns recur massively
// across elements and documents (the paper's own motivation for bisimulation
// in Section 4). Construction therefore memoizes (pattern shape) → EigPair
// so only the first occurrence of a shape pays the O(n³) eigensolve.
//
// Soundness: the full serialized signature is the map key — the hash is used
// only for shard selection — so a hash collision can never alias two
// different shapes onto one cached result. The signature is canonical
// because every pattern graph is produced by the deterministic
// BisimTraveler → BisimBuilder round trip, which numbers vertices in
// first-close order of a fixed traversal: isomorphic patterns serialize to
// identical byte strings.
//
// Concurrency: 16 shards, each behind its own mutex, so solver threads
// rarely contend. Eviction is FIFO per shard under a per-shard byte budget.
// Cache behavior never affects build output — a miss recomputes the same
// bits a hit would have returned (the edge-weight encoding is frozen before
// solving starts) — so eviction timing being thread-schedule-dependent is
// harmless; only the hit/miss counters vary.

#ifndef FIX_SPECTRAL_FEATURE_CACHE_H_
#define FIX_SPECTRAL_FEATURE_CACHE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "graph/bisim_graph.h"

namespace fix {

/// Canonical byte-string signature of a pattern graph: vertex count, root,
/// and per-vertex (label, children) in vertex-id order. Two pattern graphs
/// get equal signatures iff they are identical as numbered graphs, which
/// for traveler-rebuilt patterns means structurally identical shapes.
std::string CanonicalPatternSignature(const BisimGraph& graph);

/// Cached solve result. `solver_failed` records that the eigensolver did
/// not converge for this shape (the pattern was indexed with the artificial
/// always-a-candidate range); replaying it on a hit keeps the
/// oversized-pattern counter deterministic.
struct CachedFeature {
  EigPair eigs;
  bool solver_failed = false;
};

struct FeatureCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

class FeatureCache {
 public:
  /// `budget_bytes` bounds the total (approximate) memory of cached
  /// entries across all shards.
  explicit FeatureCache(size_t budget_bytes);

  FeatureCache(const FeatureCache&) = delete;
  FeatureCache& operator=(const FeatureCache&) = delete;

  /// Returns true and fills `*out` when `key` is cached.
  bool Lookup(std::string_view key, CachedFeature* out);

  /// Inserts (key, value), evicting oldest entries of the target shard if
  /// the shard exceeds its budget slice. Concurrent duplicate inserts (two
  /// threads missing on the same key) keep the first value.
  void Insert(std::string_view key, const CachedFeature& value);

  /// Aggregated counters across shards.
  FeatureCacheStats Stats() const;

 private:
  struct Entry {
    std::string key;
    CachedFeature value;
  };
  struct Shard {
    // LOCK-ORDER: 9 FeatureCache::Shard::mu
    mutable Mutex mu;
    // front = newest, evict from the back
    std::list<Entry> entries FIX_GUARDED_BY(mu);
    // Keys view into the owning list entry, so each key is stored once.
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index
        FIX_GUARDED_BY(mu);
    size_t bytes FIX_GUARDED_BY(mu) = 0;
    uint64_t hits FIX_GUARDED_BY(mu) = 0;
    uint64_t misses FIX_GUARDED_BY(mu) = 0;
    uint64_t evictions FIX_GUARDED_BY(mu) = 0;
  };

  static constexpr size_t kNumShards = 16;

  Shard& ShardFor(std::string_view key);
  static size_t EntryBytes(std::string_view key);

  size_t shard_budget_;
  std::array<Shard, kNumShards> shards_;
};

}  // namespace fix

#endif  // FIX_SPECTRAL_FEATURE_CACHE_H_
