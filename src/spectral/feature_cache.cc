#include "spectral/feature_cache.h"

#include <functional>

#include "common/bytes.h"
#include "common/metrics_registry.h"

namespace fix {

namespace {

// Process-wide mirrors of the per-cache shard counters (Stats() keeps the
// per-instance view used by BuildStats).
Counter& CacheHits() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.spectral.cache.hits", "ops", "feature-cache signature hits");
  return *c;
}
Counter& CacheMisses() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.spectral.cache.misses", "ops", "feature-cache signature misses");
  return *c;
}
Counter& CacheEvictions() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.spectral.cache.evictions", "ops",
      "feature-cache entries evicted by the byte budget");
  return *c;
}

}  // namespace

std::string CanonicalPatternSignature(const BisimGraph& graph) {
  std::string sig;
  // Typical depth-limited patterns are tens of vertices; one reserve avoids
  // repeated growth without overshooting for the common case.
  sig.reserve(16 + graph.num_vertices() * 6);
  PutVarint64(&sig, graph.num_vertices());
  PutVarint32(&sig, graph.root());
  for (BisimVertexId v = 0; v < graph.num_vertices(); ++v) {
    const BisimVertex& vert = graph.vertex(v);
    PutVarint32(&sig, vert.label);
    PutVarint64(&sig, vert.children.size());
    for (BisimVertexId child : vert.children) {
      PutVarint32(&sig, child);
    }
  }
  return sig;
}

FeatureCache::FeatureCache(size_t budget_bytes)
    : shard_budget_(budget_bytes / kNumShards) {}

FeatureCache::Shard& FeatureCache::ShardFor(std::string_view key) {
  return shards_[std::hash<std::string_view>{}(key) % kNumShards];
}

size_t FeatureCache::EntryBytes(std::string_view key) {
  // Key bytes + list node + hash-map slot, approximately.
  return key.size() + sizeof(Entry) + 64;
}

bool FeatureCache::Lookup(std::string_view key, CachedFeature* out) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    CacheMisses().Increment();
    return false;
  }
  ++shard.hits;
  CacheHits().Increment();
  *out = it->second->value;
  return true;
}

void FeatureCache::Insert(std::string_view key, const CachedFeature& value) {
  const size_t cost = EntryBytes(key);
  if (cost > shard_budget_) return;  // would evict the whole shard for one key
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  if (shard.index.count(key) > 0) return;  // lost a benign insert race
  shard.entries.push_front(Entry{std::string(key), value});
  shard.index.emplace(std::string_view(shard.entries.front().key),
                      shard.entries.begin());
  shard.bytes += cost;
  while (shard.bytes > shard_budget_ && !shard.entries.empty()) {
    const Entry& oldest = shard.entries.back();
    shard.bytes -= EntryBytes(oldest.key);
    shard.index.erase(std::string_view(oldest.key));
    shard.entries.pop_back();
    ++shard.evictions;
    CacheEvictions().Increment();
  }
}

FeatureCacheStats FeatureCache::Stats() const {
  FeatureCacheStats out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
  }
  return out;
}

}  // namespace fix
