#include "spectral/sym_eigen.h"

#include <cmath>
#include <limits>

namespace fix {

namespace {

/// Householder reduction of a symmetric matrix to tridiagonal form
/// (diagonal d, off-diagonal e with e[0] unused). Eigenvector accumulation
/// is omitted. `a` is destroyed.
void Tridiagonalize(std::vector<double>& a, size_t n, std::vector<double>& d,
                    std::vector<double>& e) {
  auto at = [&](size_t i, size_t j) -> double& { return a[i * n + j]; };

  for (size_t i = n - 1; i >= 1; --i) {
    size_t l = i - 1;
    double h = 0.0;
    if (l > 0) {
      double scale = 0.0;
      for (size_t k = 0; k <= l; ++k) scale += std::fabs(at(i, k));
      if (scale == 0.0) {
        e[i] = at(i, l);
      } else {
        for (size_t k = 0; k <= l; ++k) {
          at(i, k) /= scale;
          h += at(i, k) * at(i, k);
        }
        double f = at(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        at(i, l) = f - g;
        f = 0.0;
        for (size_t j = 0; j <= l; ++j) {
          g = 0.0;
          for (size_t k = 0; k <= j; ++k) g += at(j, k) * at(i, k);
          for (size_t k = j + 1; k <= l; ++k) g += at(k, j) * at(i, k);
          e[j] = g / h;
          f += e[j] * at(i, j);
        }
        double hh = f / (h + h);
        for (size_t j = 0; j <= l; ++j) {
          f = at(i, j);
          e[j] = g = e[j] - hh * f;
          for (size_t k = 0; k <= j; ++k) {
            at(j, k) -= f * e[k] + g * at(i, k);
          }
        }
      }
    } else {
      e[i] = at(i, l);
    }
    d[i] = h;
  }
  e[0] = 0.0;
  for (size_t i = 0; i < n; ++i) d[i] = at(i, i);
}

/// QL iteration with implicit shifts on a tridiagonal matrix. On success d
/// holds the eigenvalues. Returns false if an eigenvalue fails to converge.
bool QlImplicit(std::vector<double>& d, std::vector<double>& e, size_t n) {
  if (n == 0) return true;
  for (size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  // Convergence threshold: bisimulation-pattern matrices have massively
  // degenerate spectra (many identical rows), where a machine-epsilon test
  // can stall the QL sweeps indefinitely. FIX feature keys carry an ε-slack
  // of 1e-6 (IndexOptions::epsilon), so 1e-13 relative is far more than
  // accurate enough and converges robustly.
  constexpr double kTol = 1e-13;
  for (size_t l = 0; l < n; ++l) {
    int iter = 0;
    size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= kTol * dd) {
          break;
        }
      }
      if (m != l) {
        if (iter++ == 100) return false;
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        // Rotate from m-1 down to l; a signed index allows the i >= l exit
        // test after an early break (underflow split).
        long i = static_cast<long>(m) - 1;
        for (; i >= static_cast<long>(l); --i) {
          double f = s * e[i];
          double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
        }
        if (r == 0.0 && i >= static_cast<long>(l)) {
          // Underflow split mid-sweep: restart this eigenvalue.
          continue;
        }
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

}  // namespace

Result<std::vector<double>> SymmetricEigenvalues(const DenseMatrix& m) {
  size_t n = m.n();
  if (n == 0) return std::vector<double>{};
  if (n == 1) return std::vector<double>{m.at(0, 0)};

  std::vector<double> a = m.data();  // working copy (destroyed)
  std::vector<double> d(n, 0.0), e(n, 0.0);
  Tridiagonalize(a, n, d, e);
  if (!QlImplicit(d, e, n)) {
    return Status::Internal("symmetric QL iteration failed to converge");
  }
  return d;
}

}  // namespace fix
