// XBench TCMD stand-in: a collection of small text-centric article
// documents (news-corpus style). Every document shares one skeleton with
// independently sampled optional sections, which is exactly the "small
// degree of variations" the paper describes — most random twig queries have
// low selectivity here.
//
// The Table 2 representative queries and their tuned frequencies:
//   TCMD_hi  /article/epilog[acknowledgements]/references/a_id   sel ~0.79
//   TCMD_md  /article/prolog[keywords]/authors/author/contact[phone] ~0.49
//   TCMD_lo  /article[epilog]/prolog/authors/author              sel ~0.17

#include "datagen/datasets.h"

#include <string>

#include "common/rng.h"
#include "datagen/doc_builder.h"
#include "datagen/text_pool.h"

namespace fix {

namespace {

void GenerateArticle(DocBuilder& b, Rng& rng, TextPool& text) {
  b.Open("article");

  // prolog: always present.
  b.Open("prolog");
  b.Leaf("title", text.Sentence(&rng, 4, 9));
  b.Open("authors");
  int num_authors = rng.GeometricCount(1, 5, 0.45);
  for (int a = 0; a < num_authors; ++a) {
    b.Open("author");
    b.Leaf("name", text.PersonName(&rng));
    if (rng.Chance(0.80)) {
      b.Open("contact");
      if (rng.Chance(0.88)) b.Leaf("phone", text.Phone(&rng));
      if (rng.Chance(0.75)) b.Leaf("email", text.Email(&rng));
      b.Close();
    }
    if (rng.Chance(0.4)) b.Leaf("affiliation", text.Company(&rng));
    b.Close();
  }
  b.Close();  // authors
  if (rng.Chance(0.72)) {
    b.Open("keywords");
    int n = rng.GeometricCount(1, 6, 0.5);
    for (int k = 0; k < n; ++k) b.Leaf("keyword", text.Word(&rng));
    b.Close();
  }
  if (rng.Chance(0.6)) b.Leaf("abstract", text.Sentence(&rng, 15, 40));
  b.Leaf("genre", text.Genre(&rng));
  b.Leaf("date", text.Date(&rng));
  b.Close();  // prolog

  // body: always present; sections of paragraphs.
  b.Open("body");
  int sections = rng.GeometricCount(1, 5, 0.55);
  for (int s = 0; s < sections; ++s) {
    b.Open("section");
    b.Leaf("heading", text.Sentence(&rng, 2, 5));
    int paras = rng.GeometricCount(1, 6, 0.6);
    for (int p = 0; p < paras; ++p) {
      b.Leaf("p", text.Sentence(&rng, 10, 40));
    }
    b.Close();
  }
  b.Close();  // body

  // epilog: optional parts drive the representative selectivities.
  if (rng.Chance(0.85)) {
    b.Open("epilog");
    if (rng.Chance(0.35)) {
      b.Leaf("acknowledgements", text.Sentence(&rng, 6, 15));
    }
    if (rng.Chance(0.70)) {
      b.Open("references");
      int refs = rng.GeometricCount(1, 8, 0.6);
      for (int r = 0; r < refs; ++r) {
        b.Leaf("a_id", "ref-" + std::to_string(rng.Uniform(100000)));
      }
      b.Close();
    }
    if (rng.Chance(0.3)) b.Leaf("copyright", text.Company(&rng));
    b.Close();
  }

  b.Close();  // article
}

}  // namespace

void GenerateTcmd(Corpus* corpus, const TcmdOptions& options) {
  Rng rng(options.seed);
  TextPool text;
  for (int d = 0; d < options.num_docs; ++d) {
    DocBuilder b(corpus->labels());
    GenerateArticle(b, rng, text);
    corpus->AddDocument(b.Take());
  }
}

}  // namespace fix
