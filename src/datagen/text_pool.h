// TextPool: deterministic fake text for the generators — names, words,
// dates, and small-vocabulary fields (the value-index experiments rely on
// repeated values such as publisher="Springer" and year="1998").

#ifndef FIX_DATAGEN_TEXT_POOL_H_
#define FIX_DATAGEN_TEXT_POOL_H_

#include <string>

#include "common/rng.h"

namespace fix {

class TextPool {
 public:
  std::string Word(Rng* rng) const;
  std::string Sentence(Rng* rng, int min_words, int max_words) const;
  std::string PersonName(Rng* rng) const;
  std::string Company(Rng* rng) const;
  std::string Email(Rng* rng) const;
  std::string Phone(Rng* rng) const;
  std::string Date(Rng* rng) const;
  std::string Genre(Rng* rng) const;
  std::string Year(Rng* rng) const;       ///< "1990".."2005", skewed recent
  std::string Publisher(Rng* rng) const;  ///< small skewed vocabulary
  std::string Country(Rng* rng) const;
};

}  // namespace fix

#endif  // FIX_DATAGEN_TEXT_POOL_H_
