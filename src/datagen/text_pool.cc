#include "datagen/text_pool.h"

#include <array>
#include <vector>

namespace fix {

namespace {

constexpr std::array<const char*, 48> kWords = {
    "auction",  "market",   "system",   "index",    "query",   "pattern",
    "graph",    "matrix",   "feature",  "storage",  "engine",  "stream",
    "vector",   "cluster",  "branch",   "element",  "price",   "value",
    "network",  "process",  "result",   "update",   "search",  "filter",
    "balance",  "payment",  "record",   "series",   "signal",  "domain",
    "measure",  "transfer", "exchange", "commerce", "report",  "section",
    "analysis", "spectrum", "theory",   "method",   "policy",  "review",
    "history",  "science",  "machine",  "language", "project", "design"};

constexpr std::array<const char*, 24> kFirstNames = {
    "John",  "Mary",  "Ning",   "Tamer", "Ihab",  "Ashraf", "Wei",  "Anna",
    "Peter", "Laura", "Samir",  "Elena", "Jorge", "Yuki",   "Omar", "Ines",
    "Niels", "Priya", "Hannah", "Luis",  "Keiko", "Ravi",   "Sara", "Tom"};

constexpr std::array<const char*, 24> kLastNames = {
    "Smith",   "Zhang",  "Ozsu",   "Ilyas",   "Aboulnaga", "Mueller",
    "Tanaka",  "Garcia", "Kumar",  "Johnson", "Petrov",    "Rossi",
    "Novak",   "Silva",  "Chen",   "Kim",     "Haddad",    "Olsen",
    "Fischer", "Brown",  "Dubois", "Moreau",  "Santos",    "Walker"};

constexpr std::array<const char*, 10> kCompanies = {
    "Springer",       "ACM Press",     "IEEE",           "Morgan Kaufmann",
    "Elsevier",       "Reuters",       "Global Media",   "North Labs",
    "Apex Systems",   "Delta Corp"};

constexpr std::array<const char*, 8> kGenres = {
    "news", "finance", "sports", "science", "politics",
    "arts", "weather", "technology"};

constexpr std::array<const char*, 12> kCountries = {
    "United States", "Canada", "Germany", "Japan",     "Brazil", "France",
    "Italy",         "India",  "China",   "Australia", "Egypt",  "Norway"};

}  // namespace

std::string TextPool::Word(Rng* rng) const {
  return kWords[rng->Uniform(kWords.size())];
}

std::string TextPool::Sentence(Rng* rng, int min_words, int max_words) const {
  int n = static_cast<int>(rng->UniformInt(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += Word(rng);
  }
  return out;
}

std::string TextPool::PersonName(Rng* rng) const {
  std::string out = kFirstNames[rng->Uniform(kFirstNames.size())];
  out += ' ';
  out += kLastNames[rng->Uniform(kLastNames.size())];
  return out;
}

std::string TextPool::Company(Rng* rng) const {
  return kCompanies[rng->Uniform(kCompanies.size())];
}

std::string TextPool::Email(Rng* rng) const {
  return Word(rng) + std::to_string(rng->Uniform(1000)) + "@example.com";
}

std::string TextPool::Phone(Rng* rng) const {
  return "+1-" + std::to_string(100 + rng->Uniform(900)) + "-" +
         std::to_string(1000000 + rng->Uniform(9000000));
}

std::string TextPool::Date(Rng* rng) const {
  return std::to_string(1990 + rng->Uniform(16)) + "-" +
         std::to_string(1 + rng->Uniform(12)) + "-" +
         std::to_string(1 + rng->Uniform(28));
}

std::string TextPool::Genre(Rng* rng) const {
  return kGenres[rng->Uniform(kGenres.size())];
}

std::string TextPool::Year(Rng* rng) const {
  // Skewed toward recent years, as in DBLP.
  int offset = static_cast<int>(rng->Uniform(16));
  if (rng->Chance(0.5)) offset = 8 + static_cast<int>(rng->Uniform(8));
  return std::to_string(1990 + offset);
}

std::string TextPool::Publisher(Rng* rng) const {
  // Skewed: Springer dominates, as it does in DBLP proceedings.
  const std::vector<double> weights = {5,   3,   2,   1.5, 1,
                                       0.3, 0.3, 0.3, 0.2, 0.2};
  return kCompanies[rng->PickWeighted(weights)];
}

std::string TextPool::Country(Rng* rng) const {
  return kCountries[rng->Uniform(kCountries.size())];
}

}  // namespace fix
