// Synthetic stand-ins for the paper's four data sets (Section 6.1).
//
// The originals (XBench TCMD, DBLP, XMark sf=1, Treebank) are not shipped
// offline; each generator reproduces the *structural signature* the paper's
// analysis relies on:
//   * TCMD     — a large collection of small, near-regular text-centric
//                documents with optional sections (low structural variety);
//   * DBLP     — one large, very shallow, very regular document (structures
//                repeat massively; patterns are unselective);
//   * XMark    — one large, fairly deep, structure-rich, wide document
//                (auction site; recursive parlist/listitem descriptions);
//   * Treebank — one large, deep, highly recursive document (parse trees)
//                with very selective structures.
// All generators are deterministic in their seed; scale knobs default to
// laptop-friendly sizes (document in EXPERIMENTS.md relative to the paper's
// full-size data).

#ifndef FIX_DATAGEN_DATASETS_H_
#define FIX_DATAGEN_DATASETS_H_

#include <cstdint>

#include "core/corpus.h"

namespace fix {

struct TcmdOptions {
  uint64_t seed = 1;
  int num_docs = 2607;  ///< the paper's document count
};

struct DblpOptions {
  uint64_t seed = 2;
  int num_publications = 30000;  ///< paper: ~400k publications, 4M elements
};

struct XMarkOptions {
  uint64_t seed = 3;
  int num_items = 3000;         ///< items across all regions
  int num_people = 3600;
  int num_open_auctions = 3600;
  int num_closed_auctions = 3000;
  int num_categories = 1500;
};

struct TreebankOptions {
  uint64_t seed = 4;
  int num_sentences = 12000;  ///< paper: 2.4M elements
};

/// Each generator appends its document(s) to `corpus`.
void GenerateTcmd(Corpus* corpus, const TcmdOptions& options);
void GenerateDblp(Corpus* corpus, const DblpOptions& options);
void GenerateXMark(Corpus* corpus, const XMarkOptions& options);
void GenerateTreebank(Corpus* corpus, const TreebankOptions& options);

}  // namespace fix

#endif  // FIX_DATAGEN_DATASETS_H_
