#include "datagen/query_gen.h"

#include <algorithm>
#include <set>
#include <string>

namespace fix {

namespace {

/// Recursively samples a twig below `node`, appending steps to `q`.
/// Returns the created step index.
uint32_t SampleStep(const Document& doc, NodeId node, int depth_left,
                    const QueryGenOptions& options, Rng* rng, TwigQuery* q) {
  uint32_t step_idx = static_cast<uint32_t>(q->steps.size());
  q->steps.emplace_back();
  q->steps[step_idx].label = doc.label(node);
  q->steps[step_idx].axis = Axis::kChild;

  if (depth_left <= 1) return step_idx;

  // Candidate children, one representative per distinct label (keeps
  // sibling predicates label-distinct, like every query in the paper).
  std::vector<NodeId> reps;
  std::set<LabelId> seen;
  for (NodeId c = doc.first_child(node); c != kInvalidNode;
       c = doc.next_sibling(c)) {
    if (!doc.IsElement(c)) continue;
    if (seen.insert(doc.label(c)).second) reps.push_back(c);
  }
  if (reps.empty()) return step_idx;

  // Shuffle representatives (Fisher-Yates) and keep up to max_branch.
  for (size_t i = reps.size(); i > 1; --i) {
    std::swap(reps[i - 1], reps[rng->Uniform(i)]);
  }
  int kept = 0;
  for (NodeId c : reps) {
    if (kept >= options.max_branch) break;
    if (kept > 0 && !rng->Chance(options.descend_p)) continue;
    uint32_t child_step =
        SampleStep(doc, c, depth_left - 1, options, rng, q);
    QueryStep& me = q->steps[step_idx];
    if (me.main_child < 0) {
      me.main_child = static_cast<int>(me.children.size());
    }
    me.children.push_back(child_step);
    ++kept;
  }
  return step_idx;
}

}  // namespace

std::vector<TwigQuery> GenerateRandomQueries(const Corpus& corpus, int count,
                                             const QueryGenOptions& options) {
  Rng rng(options.seed);
  std::vector<TwigQuery> out;
  std::set<std::string> seen;
  if (corpus.num_docs() == 0) return out;

  int attempts = 0;
  const int max_attempts = count * 40 + 100;
  while (static_cast<int>(out.size()) < count && attempts++ < max_attempts) {
    uint32_t doc_id = static_cast<uint32_t>(rng.Uniform(corpus.num_docs()));
    const Document& doc = corpus.doc(doc_id);
    if (doc.num_nodes() < 2) continue;

    NodeId start = kInvalidNode;
    if (options.rooted) {
      start = doc.root_element();
    } else {
      // Uniform random element (rejection sampling over node ids).
      for (int tries = 0; tries < 16; ++tries) {
        NodeId n = 1 + static_cast<NodeId>(rng.Uniform(doc.num_nodes() - 1));
        if (doc.IsElement(n)) {
          start = n;
          break;
        }
      }
    }
    if (start == kInvalidNode) continue;

    int depth = 2 + static_cast<int>(rng.Uniform(
                        static_cast<uint64_t>(options.max_depth - 1)));
    TwigQuery q;
    SampleStep(doc, start, depth, options, &rng, &q);
    if (q.steps.size() < 2) continue;  // degenerate: started at a leaf
    q.root = 0;
    q.steps[0].axis = options.rooted ? Axis::kChild : Axis::kDescendant;
    // Result step: end of the main path.
    uint32_t r = 0;
    while (q.steps[r].main_child >= 0) {
      r = q.steps[r].children[q.steps[r].main_child];
    }
    q.result = r;
    // Fill names from labels for printing/round-tripping.
    for (QueryStep& s : q.steps) {
      s.name = corpus.labels().Name(s.label);
    }
    std::string text = q.ToString();
    if (seen.insert(text).second) out.push_back(std::move(q));
  }
  return out;
}

}  // namespace fix
