// Random twig-query generation (Section 6.2: "we randomly generate 1000
// test queries").
//
// Queries are sampled from the data: pick a random element, walk down a few
// levels keeping a random subset of children (deduplicated by label so
// sibling predicates are label-distinct, as all of the paper's queries
// are), and emit the resulting twig with a // root axis. Sampling from the
// data yields the realistic selectivity spread the paper bins into
// low/medium/high.

#ifndef FIX_DATAGEN_QUERY_GEN_H_
#define FIX_DATAGEN_QUERY_GEN_H_

#include <vector>

#include "common/rng.h"
#include "core/corpus.h"
#include "query/twig_query.h"

namespace fix {

struct QueryGenOptions {
  uint64_t seed = 99;
  int max_depth = 4;        ///< levels in the generated twig
  int max_branch = 3;       ///< children kept per node
  double descend_p = 0.65;  ///< chance of keeping each (label-distinct) child
  bool rooted = false;      ///< emit / (from root) instead of // queries
};

/// Generates `count` distinct random twig queries over the corpus. Labels
/// are resolved. Queries that degenerate (empty) are skipped, so fewer than
/// `count` may return on tiny corpora.
std::vector<TwigQuery> GenerateRandomQueries(const Corpus& corpus, int count,
                                             const QueryGenOptions& options);

}  // namespace fix

#endif  // FIX_DATAGEN_QUERY_GEN_H_
