// DBLP stand-in: one large, shallow, very regular bibliography document.
// The same handful of publication skeletons repeat tens of thousands of
// times, so structural patterns are unselective — the regime where the
// paper found FIX's structural pruning weakest and value integration most
// valuable (Sections 6.2-6.4).
//
// Representative/runtime/value queries exercised on this set:
//   //proceedings[booktitle]/title[sup][i]          (hi)
//   //article[number]/author                        (md)
//   //inproceedings[url]/title                      (lo)
//   //inproceedings/title/i                         (hi sp)
//   //dblp/inproceedings/author                     (lo sp)
//   //inproceedings[url]/title[sub][i]              (hi bp)
//   //proceedings[publisher="Springer"][title]      (value hi)
//   //inproceedings[year="1998"][title]/author      (value lo)

#include "datagen/datasets.h"

#include <string>

#include "common/rng.h"
#include "datagen/doc_builder.h"
#include "datagen/text_pool.h"

namespace fix {

namespace {

/// Titles occasionally contain inline markup children (sub/sup/i), which is
/// what makes //title[sup][i] highly selective.
void GenerateTitle(DocBuilder& b, Rng& rng, TextPool& text, double fancy_p) {
  b.Open("title");
  b.Text(text.Sentence(&rng, 3, 10));
  if (rng.Chance(fancy_p)) {
    if (rng.Chance(0.6)) b.Leaf("i", text.Word(&rng));
    if (rng.Chance(0.35)) b.Leaf("sub", text.Word(&rng));
    if (rng.Chance(0.25)) b.Leaf("sup", text.Word(&rng));
  }
  b.Close();
}

void GenerateAuthors(DocBuilder& b, Rng& rng, TextPool& text) {
  int n = rng.GeometricCount(1, 6, 0.5);
  for (int i = 0; i < n; ++i) b.Leaf("author", text.PersonName(&rng));
}

void GenerateArticle(DocBuilder& b, Rng& rng, TextPool& text) {
  b.Open("article");
  GenerateAuthors(b, rng, text);
  GenerateTitle(b, rng, text, 0.10);
  b.Leaf("journal", text.Word(&rng) + " Journal");
  b.Leaf("volume", std::to_string(1 + rng.Uniform(40)));
  if (rng.Chance(0.30)) {
    b.Leaf("number", std::to_string(1 + rng.Uniform(12)));
  }
  b.Leaf("pages", std::to_string(rng.Uniform(500)) + "-" +
                      std::to_string(500 + rng.Uniform(100)));
  b.Leaf("year", text.Year(&rng));
  if (rng.Chance(0.55)) b.Leaf("url", "db/journals/" + text.Word(&rng));
  if (rng.Chance(0.4)) b.Leaf("ee", "https://doi.example/" + text.Word(&rng));
  b.Close();
}

void GenerateInproceedings(DocBuilder& b, Rng& rng, TextPool& text) {
  b.Open("inproceedings");
  GenerateAuthors(b, rng, text);
  GenerateTitle(b, rng, text, 0.08);
  b.Leaf("booktitle", text.Word(&rng) + " Conference");
  b.Leaf("pages", std::to_string(rng.Uniform(500)) + "-" +
                      std::to_string(500 + rng.Uniform(100)));
  b.Leaf("year", text.Year(&rng));
  if (rng.Chance(0.60)) b.Leaf("url", "db/conf/" + text.Word(&rng));
  if (rng.Chance(0.45)) {
    b.Leaf("ee", "https://doi.example/" + text.Word(&rng));
  }
  if (rng.Chance(0.8)) b.Leaf("crossref", "conf/" + text.Word(&rng));
  b.Close();
}

void GenerateProceedings(DocBuilder& b, Rng& rng, TextPool& text) {
  b.Open("proceedings");
  int editors = rng.GeometricCount(1, 3, 0.4);
  for (int i = 0; i < editors; ++i) b.Leaf("editor", text.PersonName(&rng));
  GenerateTitle(b, rng, text, 0.04);
  b.Leaf("booktitle", text.Word(&rng) + " Conference");
  b.Leaf("publisher", text.Publisher(&rng));
  b.Leaf("year", text.Year(&rng));
  if (rng.Chance(0.7)) b.Leaf("isbn", std::to_string(rng.Uniform(1u << 30)));
  if (rng.Chance(0.5)) b.Leaf("url", "db/conf/" + text.Word(&rng));
  b.Close();
}

void GenerateBook(DocBuilder& b, Rng& rng, TextPool& text) {
  b.Open("book");
  GenerateAuthors(b, rng, text);
  GenerateTitle(b, rng, text, 0.05);
  b.Leaf("publisher", text.Publisher(&rng));
  b.Leaf("year", text.Year(&rng));
  if (rng.Chance(0.6)) b.Leaf("isbn", std::to_string(rng.Uniform(1u << 30)));
  b.Close();
}

}  // namespace

void GenerateDblp(Corpus* corpus, const DblpOptions& options) {
  Rng rng(options.seed);
  TextPool text;
  DocBuilder b(corpus->labels());
  b.Open("dblp");
  const std::vector<double> mix = {42, 40, 6, 3};  // art/inproc/proc/book
  for (int i = 0; i < options.num_publications; ++i) {
    switch (rng.PickWeighted(mix)) {
      case 0:
        GenerateArticle(b, rng, text);
        break;
      case 1:
        GenerateInproceedings(b, rng, text);
        break;
      case 2:
        GenerateProceedings(b, rng, text);
        break;
      default:
        GenerateBook(b, rng, text);
        break;
    }
  }
  b.Close();
  corpus->AddDocument(b.Take());
}

}  // namespace fix
