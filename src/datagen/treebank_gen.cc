// Treebank stand-in: one large, deep, highly recursive document of parse
// trees. Constituents (S, NP, VP, PP, SBAR, ...) nest recursively with
// grammar-like productions, so structures are extremely selective and the
// bisimulation graph is large relative to the tree — the paper's worst case
// for index size and the best case for pruning power.
//
// Queries exercised on this set:
//   //EMPTY/S/NP[PP]/NP        (hi)          //EMPTY/S/NP/NP/PP (hi sp)
//   //S[VP]/NP/NP/PP/NP        (md)          //EMPTY/S/VP       (lo sp)
//   //EMPTY/S[VP]/NP           (lo)

#include "datagen/datasets.h"

#include <string>

#include "common/rng.h"
#include "datagen/doc_builder.h"
#include "datagen/text_pool.h"

namespace fix {

namespace {

// Nonterminal ids.
enum Nt { kS, kNp, kVp, kPp, kSbar, kAdjp, kAdvp, kWhnp, kNtCount };

constexpr const char* kNtNames[kNtCount] = {"S",    "NP",   "VP",   "PP",
                                            "SBAR", "ADJP", "ADVP", "WHNP"};

struct Grammar {
  /// Expands `nt` at `depth`, writing elements into the builder. The deeper
  /// we are, the more productions collapse to terminals, bounding depth
  /// stochastically (documents reach depth ~15-25 like real Treebank).
  void Expand(DocBuilder& b, Rng& rng, TextPool& text, Nt nt, int depth) {
    b.Open(kNtNames[nt]);
    double decay = 1.0 / (1.0 + 0.22 * depth);
    switch (nt) {
      case kS:
        if (rng.Chance(0.85 * decay + 0.1)) Expand(b, rng, text, kNp, depth + 1);
        if (rng.Chance(0.9 * decay + 0.08)) Expand(b, rng, text, kVp, depth + 1);
        if (rng.Chance(0.18 * decay)) Expand(b, rng, text, kSbar, depth + 1);
        if (rng.Chance(0.12 * decay)) Expand(b, rng, text, kAdvp, depth + 1);
        break;
      case kNp:
        Terminal(b, rng, text, "DT", 0.4);
        Terminal(b, rng, text, "JJ", 0.3);
        Terminal(b, rng, text, "NN", 0.9);
        if (rng.Chance(0.38 * decay)) Expand(b, rng, text, kNp, depth + 1);
        if (rng.Chance(0.30 * decay)) Expand(b, rng, text, kPp, depth + 1);
        if (rng.Chance(0.10 * decay)) Expand(b, rng, text, kSbar, depth + 1);
        break;
      case kVp:
        Terminal(b, rng, text, rng.Chance(0.5) ? "VB" : "VBD", 0.95);
        if (rng.Chance(0.55 * decay)) Expand(b, rng, text, kNp, depth + 1);
        if (rng.Chance(0.25 * decay)) Expand(b, rng, text, kPp, depth + 1);
        if (rng.Chance(0.15 * decay)) Expand(b, rng, text, kS, depth + 1);
        if (rng.Chance(0.12 * decay)) Expand(b, rng, text, kAdvp, depth + 1);
        break;
      case kPp:
        Terminal(b, rng, text, "IN", 0.95);
        if (rng.Chance(0.8 * decay + 0.1)) Expand(b, rng, text, kNp, depth + 1);
        break;
      case kSbar:
        if (rng.Chance(0.4)) Expand(b, rng, text, kWhnp, depth + 1);
        if (rng.Chance(0.9 * decay + 0.05)) Expand(b, rng, text, kS, depth + 1);
        break;
      case kAdjp:
        Terminal(b, rng, text, "JJ", 0.95);
        if (rng.Chance(0.2 * decay)) Expand(b, rng, text, kPp, depth + 1);
        break;
      case kAdvp:
        Terminal(b, rng, text, "RB", 0.95);
        break;
      case kWhnp:
        Terminal(b, rng, text, "PRP", 0.8);
        break;
      default:
        break;
    }
    b.Close();
  }

  void Terminal(DocBuilder& b, Rng& rng, TextPool& text, const char* tag,
                double p) {
    if (rng.Chance(p)) b.Leaf(tag, text.Word(&rng));
  }
};

}  // namespace

void GenerateTreebank(Corpus* corpus, const TreebankOptions& options) {
  Rng rng(options.seed);
  TextPool text;
  Grammar grammar;
  DocBuilder b(corpus->labels());
  b.Open("FILE");
  for (int s = 0; s < options.num_sentences; ++s) {
    // Real Treebank wraps sentences in EMPTY elements (anonymized headers).
    b.Open("EMPTY");
    grammar.Expand(b, rng, text, kS, 1);
    if (rng.Chance(0.1)) grammar.Expand(b, rng, text, kS, 1);
    b.Close();
  }
  b.Close();
  corpus->AddDocument(b.Take());
}

}  // namespace fix
