// XMark stand-in: one large, structure-rich auction-site document.
// Recursive parlist/listitem descriptions, deeply nested inline markup in
// mail text, and wide variation in optional parts make the bisimulation
// graph flat and wide and most twig patterns highly selective — the regime
// where the paper found FIX close to the perfect index.
//
// Queries exercised on this set:
//   //category/description[parlist]/parlist/listitem/text        (hi)
//   //closed_auction/annotation/description/text                 (md)
//   //open_auction[seller]/annotation/description/text           (lo)
//   //item/mailbox/mail/text/emph/keyword                        (hi sp)
//   //description/parlist/listitem                               (lo sp)
//   //item[name]/mailbox/mail[to]/text[bold]/emph/bold           (hi bp)
//   //item[payment][quantity][shipping][mailbox/mail/text]
//        /description/parlist                                    (lo bp)

#include "datagen/datasets.h"

#include <string>

#include "common/rng.h"
#include "datagen/doc_builder.h"
#include "datagen/text_pool.h"

namespace fix {

namespace {

constexpr const char* kRegions[] = {"africa", "asia", "australia", "europe",
                                    "namerica", "samerica"};

/// Recursive description body: text, or a parlist of listitems that may
/// nest further parlists (XMark's signature recursion).
void GenerateDescription(DocBuilder& b, Rng& rng, TextPool& text, int depth,
                         double parlist_p) {
  b.Open("description");
  if (rng.Chance(parlist_p)) {
    b.Open("parlist");
    int items = rng.GeometricCount(1, 4, 0.5);
    for (int i = 0; i < items; ++i) {
      b.Open("listitem");
      if (depth < 3 && rng.Chance(0.25)) {
        b.Open("parlist");
        int inner = rng.GeometricCount(1, 3, 0.4);
        for (int j = 0; j < inner; ++j) {
          b.Open("listitem");
          b.Leaf("text", text.Sentence(&rng, 5, 15));
          b.Close();
        }
        b.Close();
      } else {
        b.Leaf("text", text.Sentence(&rng, 5, 20));
      }
      b.Close();
    }
    b.Close();
  } else {
    b.Leaf("text", text.Sentence(&rng, 8, 30));
  }
  b.Close();
}

/// Mail text with nested inline markup: text -> emph -> keyword/bold etc.
void GenerateRichText(DocBuilder& b, Rng& rng, TextPool& text) {
  b.Open("text");
  b.Text(text.Sentence(&rng, 5, 15));
  if (rng.Chance(0.5)) {
    b.Open("emph");
    b.Text(text.Word(&rng));
    if (rng.Chance(0.45)) b.Leaf("keyword", text.Word(&rng));
    if (rng.Chance(0.3)) b.Leaf("bold", text.Word(&rng));
    b.Close();
  }
  if (rng.Chance(0.3)) b.Leaf("bold", text.Word(&rng));
  if (rng.Chance(0.25)) b.Leaf("keyword", text.Word(&rng));
  b.Close();
}

void GenerateItem(DocBuilder& b, Rng& rng, TextPool& text, int id) {
  b.Open("item");
  b.Leaf("location", text.Country(&rng));
  b.Leaf("quantity", std::to_string(1 + rng.Uniform(5)));
  b.Leaf("name", "item-" + std::to_string(id) + " " + text.Word(&rng));
  if (rng.Chance(0.85)) {
    b.Open("payment");
    b.Text(rng.Chance(0.5) ? "Creditcard" : "Cash");
    b.Close();
  }
  GenerateDescription(b, rng, text, 1, 0.55);
  if (rng.Chance(0.8)) b.Leaf("shipping", "Will ship internationally");
  int incats = rng.GeometricCount(1, 3, 0.4);
  for (int c = 0; c < incats; ++c) {
    b.Leaf("incategory", "category" + std::to_string(rng.Uniform(120)));
  }
  b.Open("mailbox");
  int mails = rng.GeometricCount(0, 4, 0.55);
  for (int m = 0; m < mails; ++m) {
    b.Open("mail");
    b.Leaf("from", text.PersonName(&rng));
    if (rng.Chance(0.85)) b.Leaf("to", text.PersonName(&rng));
    b.Leaf("date", text.Date(&rng));
    GenerateRichText(b, rng, text);
    b.Close();
  }
  b.Close();  // mailbox
  b.Close();  // item
}

void GeneratePerson(DocBuilder& b, Rng& rng, TextPool& text, int id) {
  b.Open("person");
  b.Leaf("name", text.PersonName(&rng));
  b.Leaf("emailaddress", text.Email(&rng));
  if (rng.Chance(0.4)) b.Leaf("phone", text.Phone(&rng));
  if (rng.Chance(0.35)) {
    b.Open("address");
    b.Leaf("street", std::to_string(1 + rng.Uniform(200)) + " " +
                         text.Word(&rng) + " St");
    b.Leaf("city", text.Word(&rng));
    b.Leaf("country", text.Country(&rng));
    b.Close();
  }
  if (rng.Chance(0.3)) {
    b.Open("watches");
    int w = rng.GeometricCount(1, 3, 0.4);
    for (int i = 0; i < w; ++i) {
      b.Leaf("watch", "open_auction" + std::to_string(rng.Uniform(300)));
    }
    b.Close();
  }
  (void)id;
  b.Close();
}

void GenerateAnnotation(DocBuilder& b, Rng& rng, TextPool& text) {
  b.Open("annotation");
  b.Leaf("author", text.PersonName(&rng));
  if (rng.Chance(0.88)) GenerateDescription(b, rng, text, 2, 0.3);
  b.Leaf("happiness", std::to_string(1 + rng.Uniform(10)));
  b.Close();
}

void GenerateOpenAuction(DocBuilder& b, Rng& rng, TextPool& text, int id) {
  b.Open("open_auction");
  b.Leaf("initial", std::to_string(1 + rng.Uniform(300)));
  int bidders = rng.GeometricCount(0, 5, 0.5);
  for (int i = 0; i < bidders; ++i) {
    b.Open("bidder");
    b.Leaf("date", text.Date(&rng));
    b.Leaf("time", std::to_string(rng.Uniform(24)) + ":00");
    b.Leaf("personref", "person" + std::to_string(rng.Uniform(300)));
    b.Leaf("increase", std::to_string(1 + rng.Uniform(20)));
    b.Close();
  }
  b.Leaf("current", std::to_string(1 + rng.Uniform(500)));
  b.Leaf("itemref", "item" + std::to_string(id));
  if (rng.Chance(0.55)) {
    b.Leaf("seller", "person" + std::to_string(rng.Uniform(300)));
  }
  GenerateAnnotation(b, rng, text);
  b.Leaf("quantity", std::to_string(1 + rng.Uniform(5)));
  b.Leaf("type", rng.Chance(0.5) ? "Regular" : "Featured");
  b.Open("interval");
  b.Leaf("start", text.Date(&rng));
  b.Leaf("end", text.Date(&rng));
  b.Close();
  b.Close();
}

void GenerateClosedAuction(DocBuilder& b, Rng& rng, TextPool& text, int id) {
  b.Open("closed_auction");
  b.Leaf("seller", "person" + std::to_string(rng.Uniform(300)));
  b.Leaf("buyer", "person" + std::to_string(rng.Uniform(300)));
  b.Leaf("itemref", "item" + std::to_string(id));
  b.Leaf("price", std::to_string(1 + rng.Uniform(500)));
  b.Leaf("date", text.Date(&rng));
  b.Leaf("quantity", std::to_string(1 + rng.Uniform(5)));
  b.Leaf("type", rng.Chance(0.5) ? "Regular" : "Featured");
  if (rng.Chance(0.8)) GenerateAnnotation(b, rng, text);
  b.Close();
}

void GenerateCategory(DocBuilder& b, Rng& rng, TextPool& text, int id) {
  b.Open("category");
  b.Leaf("name", "category-" + std::to_string(id) + " " + text.Word(&rng));
  // Category descriptions lean heavily on parlists, making the
  // description[parlist]/parlist/... chain common under category but the
  // full 5-deep chain still selective overall.
  GenerateDescription(b, rng, text, 1, 0.7);
  b.Close();
}

}  // namespace

void GenerateXMark(Corpus* corpus, const XMarkOptions& options) {
  Rng rng(options.seed);
  TextPool text;
  DocBuilder b(corpus->labels());
  b.Open("site");

  b.Open("regions");
  int item_id = 0;
  for (const char* region : kRegions) {
    b.Open(region);
    int items = options.num_items / 6 + 1;
    for (int i = 0; i < items; ++i) GenerateItem(b, rng, text, item_id++);
    b.Close();
  }
  b.Close();

  b.Open("categories");
  for (int c = 0; c < options.num_categories; ++c) {
    GenerateCategory(b, rng, text, c);
  }
  b.Close();

  b.Open("people");
  for (int p = 0; p < options.num_people; ++p) {
    GeneratePerson(b, rng, text, p);
  }
  b.Close();

  b.Open("open_auctions");
  for (int a = 0; a < options.num_open_auctions; ++a) {
    GenerateOpenAuction(b, rng, text, a);
  }
  b.Close();

  b.Open("closed_auctions");
  for (int a = 0; a < options.num_closed_auctions; ++a) {
    GenerateClosedAuction(b, rng, text, a);
  }
  b.Close();

  b.Close();  // site
  corpus->AddDocument(b.Take());
}

}  // namespace fix
