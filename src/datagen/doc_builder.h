// DocBuilder: a tiny open/text/close helper the synthetic generators use to
// assemble arena Documents directly (no XML round trip).

#ifndef FIX_DATAGEN_DOC_BUILDER_H_
#define FIX_DATAGEN_DOC_BUILDER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "xml/document.h"
#include "xml/label_table.h"

namespace fix {

class DocBuilder {
 public:
  explicit DocBuilder(LabelTable* labels) : labels_(labels) {
    stack_.push_back(0);  // document node
  }

  DocBuilder& Open(std::string_view tag) {
    NodeId id = doc_.AddElement(stack_.back(), labels_->Intern(tag));
    stack_.push_back(id);
    return *this;
  }

  DocBuilder& Text(std::string_view text) {
    doc_.AddText(stack_.back(), kInvalidLabel, text);
    return *this;
  }

  DocBuilder& Close() {
    FIX_CHECK(stack_.size() > 1);
    stack_.pop_back();
    return *this;
  }

  /// Open + Text + Close in one go.
  DocBuilder& Leaf(std::string_view tag, std::string_view text) {
    return Open(tag).Text(text).Close();
  }

  /// Open + Close (empty element).
  DocBuilder& Empty(std::string_view tag) { return Open(tag).Close(); }

  /// Finishes construction; all elements must be closed.
  Document Take() {
    FIX_CHECK(stack_.size() == 1);
    return std::move(doc_);
  }

 private:
  LabelTable* labels_;
  Document doc_;
  std::vector<NodeId> stack_;
};

}  // namespace fix

#endif  // FIX_DATAGEN_DOC_BUILDER_H_
