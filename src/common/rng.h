// Deterministic pseudo-random number generation for data generators and
// benchmarks. Every generator in this project takes an explicit seed so that
// data sets, query workloads, and therefore benchmark tables are reproducible
// run-to-run and machine-to-machine.

#ifndef FIX_COMMON_RNG_H_
#define FIX_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fix {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, and — unlike
/// std::mt19937 streams across standard libraries — a fixed algorithm we
/// control, so seeds reproduce identical data everywhere.
class Rng {
 public:
  /// Seeds the generator; the seed is expanded with splitmix64 so that
  /// small consecutive seeds give uncorrelated streams.
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection method (unbiased).
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    assert(!items.empty());
    return items[Uniform(items.size())];
  }

  /// Samples an index according to non-negative weights (roulette wheel).
  /// The weights need not be normalized; at least one must be positive.
  size_t PickWeighted(const std::vector<double>& weights);

  /// Geometric-ish count: starts at min and keeps incrementing while a
  /// coin with probability `continue_p` comes up heads, capped at max.
  /// Used by data generators to produce skewed fan-outs.
  int GeometricCount(int min, int max, double continue_p) {
    int n = min;
    while (n < max && Chance(continue_p)) ++n;
    return n;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace fix

#endif  // FIX_COMMON_RNG_H_
