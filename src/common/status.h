// Status: lightweight error propagation without exceptions.
//
// Library code in this project never throws; fallible operations return a
// Status (or a Result<T>, see result.h). This follows the RocksDB/Arrow
// idiom for database systems code.

#ifndef FIX_COMMON_STATUS_H_
#define FIX_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace fix {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller supplied a bad argument
  kNotFound,          ///< key / file / label not present
  kCorruption,        ///< on-disk structure failed validation
  kIOError,           ///< underlying filesystem call failed
  kNotSupported,      ///< feature intentionally unimplemented
  kOutOfRange,        ///< index or offset beyond a bound
  kParseError,        ///< XML or XPath text could not be parsed
  kInternal,          ///< invariant violation (a bug)
  kUnavailable,       ///< transient failure; safe to retry with backoff
};

/// Returns a human-readable name for a StatusCode ("Ok", "IOError", ...).
const char* StatusCodeName(StatusCode code);

/// A Status is either OK (cheap, no allocation) or an error carrying a
/// code plus a message describing what failed.
///
/// Marked [[nodiscard]] at class level: every function returning a Status
/// must have its result inspected (or explicitly voided with a comment
/// saying why the error is ignorable).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers; prefer these over the raw constructor.
  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  [[nodiscard]] static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  [[nodiscard]] static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] bool IsNotFound() const {
    return code_ == StatusCode::kNotFound;
  }
  [[nodiscard]] bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  [[nodiscard]] bool IsParseError() const {
    return code_ == StatusCode::kParseError;
  }
  [[nodiscard]] bool IsCorruption() const {
    return code_ == StatusCode::kCorruption;
  }
  [[nodiscard]] bool IsIOError() const { return code_ == StatusCode::kIOError; }
  [[nodiscard]] bool IsUnavailable() const {
    return code_ == StatusCode::kUnavailable;
  }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller. Use inside functions that
/// themselves return Status.
#define FIX_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::fix::Status _fix_status = (expr);           \
    if (!_fix_status.ok()) return _fix_status;    \
  } while (0)

}  // namespace fix

#endif  // FIX_COMMON_STATUS_H_
