#include "common/metrics_registry.h"

#include <algorithm>
#include <cstdio>

namespace fix {

namespace {

/// Highest set bit position (undefined for 0; callers guard).
inline int Msb(uint64_t v) { return 63 - __builtin_clzll(v); }

/// Relaxed atomic min/max update. Races between two updaters can only
/// settle on one of the two candidate values, both of which were observed,
/// so the result is always a value that was actually recorded.
void RelaxedMin(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v < cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void RelaxedMax(std::atomic<uint64_t>* slot, uint64_t v) {
  uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map '.'
/// (and any other outlaw byte) to '_'.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

// --- Histogram ---------------------------------------------------------------

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < 16) return static_cast<size_t>(value);
  const int msb = Msb(value);  // >= 4
  // Top three mantissa bits below the leading bit select the sub-bucket.
  const uint64_t sub = (value >> (msb - 3)) - 8;  // 0..7
  return 16 + static_cast<size_t>(msb - 4) * 8 + static_cast<size_t>(sub);
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i < 16) return static_cast<uint64_t>(i);
  const uint64_t octave = i / 8 + 2;      // 16 -> 4, 24 -> 5, ...
  const uint64_t sub = (i - 16) % 8;      // 0..7
  // Lower bound is (8 + sub) << (octave - 3); the bucket spans one
  // (1 << (octave - 3)) stride, inclusive upper bound = next lower - 1.
  return ((8 + sub + 1) << (octave - 3)) - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  RelaxedMin(&min_, value);
  RelaxedMax(&max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  std::array<uint64_t, kNumBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  // Quantiles from the bucket counts themselves (total), not count_: the
  // two can disagree transiently under concurrent writers, and quantile
  // ranks must be consistent with the array being walked.
  out.count = total;
  out.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t min = min_.load(std::memory_order_relaxed);
  out.min = min == UINT64_MAX ? 0 : min;
  out.max = max_.load(std::memory_order_relaxed);
  if (total == 0) return out;
  const auto quantile = [&](double q) -> uint64_t {
    // Smallest bucket whose cumulative count reaches ceil(q * total).
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
    if (rank < 1) rank = 1;
    if (rank > total) rank = total;
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += counts[i];
      if (seen >= rank) return std::min(BucketUpperBound(i), out.max);
    }
    return out.max;
  };
  out.p50 = quantile(0.50);
  out.p95 = quantile(0.95);
  out.p99 = quantile(0.99);
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// --- MetricsRegistry ---------------------------------------------------------

MetricsRegistry& MetricsRegistry::Instance() {
  // Leaked on purpose: metrics are updated from static destructors of
  // other translation units (buffer pools torn down at exit), so the
  // registry must never be destroyed first.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(std::string_view name,
                                                      std::string_view unit,
                                                      std::string_view help,
                                                      MetricType type) {
  MutexLock lock(mu_);
  for (auto& e : entries_) {
    if (e->name == name) return e->type == type ? e.get() : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->unit = std::string(unit);
  entry->help = std::string(help);
  entry->type = type;
  switch (type) {
    case MetricType::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricType::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricType::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* MetricsRegistry::FindOrCreateCounter(std::string_view name,
                                              std::string_view unit,
                                              std::string_view help) {
  Entry* e = FindOrCreate(name, unit, help, MetricType::kCounter);
  return e == nullptr ? nullptr : e->counter.get();
}

Gauge* MetricsRegistry::FindOrCreateGauge(std::string_view name,
                                          std::string_view unit,
                                          std::string_view help) {
  Entry* e = FindOrCreate(name, unit, help, MetricType::kGauge);
  return e == nullptr ? nullptr : e->gauge.get();
}

Histogram* MetricsRegistry::FindOrCreateHistogram(std::string_view name,
                                                  std::string_view unit,
                                                  std::string_view help) {
  Entry* e = FindOrCreate(name, unit, help, MetricType::kHistogram);
  return e == nullptr ? nullptr : e->histogram.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    MutexLock lock(mu_);
    out.reserve(entries_.size());
    for (const auto& e : entries_) {
      MetricSnapshot s;
      s.name = e->name;
      s.unit = e->unit;
      s.help = e->help;
      s.type = e->type;
      switch (e->type) {
        case MetricType::kCounter:
          s.counter = e->counter->value();
          break;
        case MetricType::kGauge:
          s.gauge = e->gauge->value();
          break;
        case MetricType::kHistogram:
          s.hist = e->histogram->Snapshot();
          break;
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::PrometheusText() const {
  std::string out;
  char buf[160];
  for (const MetricSnapshot& m : Snapshot()) {
    const std::string name = PromName(m.name);
    if (!m.help.empty()) {
      out += "# HELP " + name + " " + m.help +
             (m.unit.empty() ? "" : " (" + m.unit + ")") + "\n";
    }
    switch (m.type) {
      case MetricType::kCounter:
        out += "# TYPE " + name + " counter\n";
        std::snprintf(buf, sizeof(buf), "%s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(m.counter));
        out += buf;
        break;
      case MetricType::kGauge:
        out += "# TYPE " + name + " gauge\n";
        std::snprintf(buf, sizeof(buf), "%s %lld\n", name.c_str(),
                      static_cast<long long>(m.gauge));
        out += buf;
        break;
      case MetricType::kHistogram: {
        out += "# TYPE " + name + " summary\n";
        const struct {
          const char* q;
          uint64_t v;
        } qs[] = {{"0.5", m.hist.p50}, {"0.95", m.hist.p95},
                  {"0.99", m.hist.p99}};
        for (const auto& q : qs) {
          std::snprintf(buf, sizeof(buf), "%s{quantile=\"%s\"} %llu\n",
                        name.c_str(), q.q,
                        static_cast<unsigned long long>(q.v));
          out += buf;
        }
        std::snprintf(buf, sizeof(buf), "%s_sum %llu\n%s_count %llu\n",
                      name.c_str(),
                      static_cast<unsigned long long>(m.hist.sum),
                      name.c_str(),
                      static_cast<unsigned long long>(m.hist.count));
        out += buf;
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::HumanTable() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-44s %-10s %s\n", "metric", "unit",
                "value");
  out += buf;
  for (const MetricSnapshot& m : Snapshot()) {
    switch (m.type) {
      case MetricType::kCounter:
        std::snprintf(buf, sizeof(buf), "%-44s %-10s %llu\n", m.name.c_str(),
                      m.unit.c_str(),
                      static_cast<unsigned long long>(m.counter));
        break;
      case MetricType::kGauge:
        std::snprintf(buf, sizeof(buf), "%-44s %-10s %lld\n", m.name.c_str(),
                      m.unit.c_str(), static_cast<long long>(m.gauge));
        break;
      case MetricType::kHistogram:
        std::snprintf(
            buf, sizeof(buf),
            "%-44s %-10s n=%llu p50=%llu p95=%llu p99=%llu max=%llu "
            "mean=%.1f\n",
            m.name.c_str(), m.unit.c_str(),
            static_cast<unsigned long long>(m.hist.count),
            static_cast<unsigned long long>(m.hist.p50),
            static_cast<unsigned long long>(m.hist.p95),
            static_cast<unsigned long long>(m.hist.p99),
            static_cast<unsigned long long>(m.hist.max), m.hist.mean());
        break;
    }
    out += buf;
  }
  return out;
}

void MetricsRegistry::ResetAllForTest() {
  MutexLock lock(mu_);
  for (auto& e : entries_) {
    switch (e->type) {
      case MetricType::kCounter:
        e->counter->Reset();
        break;
      case MetricType::kGauge:
        e->gauge->Reset();
        break;
      case MetricType::kHistogram:
        e->histogram->Reset();
        break;
    }
  }
}

}  // namespace fix
