#include "common/trace.h"

#include <time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#if defined(__linux__)
#include <sys/syscall.h>
#endif

namespace fix {

namespace {

// Sink state. `g_enabled` is the hot-path flag: span construction reads it
// with one relaxed load. The FILE* and the mutex serializing line appends
// are only touched on the slow (enabled) path. Span destructors fire under
// callers' locks (e.g. Database::compile_mu_ during plan compilation), so
// g_sink_mu ranks last alongside MetricsRegistry::mu_.
std::atomic<bool> g_enabled{false};
// LOCK-ORDER: 12 Trace::g_sink_mu
Mutex g_sink_mu;  // guards g_sink and line appends
std::FILE* g_sink FIX_GUARDED_BY(g_sink_mu) = nullptr;  // owned unless stderr
bool g_sink_is_stderr FIX_GUARDED_BY(g_sink_mu) = false;

std::atomic<uint64_t> g_next_span_id{1};

// Innermost live span on this thread; 0 = top level.
thread_local uint64_t t_current_span = 0;

uint64_t OsThreadId() {
#if defined(__linux__)
  return static_cast<uint64_t>(::syscall(SYS_gettid));
#else
  return static_cast<uint64_t>(::getpid());
#endif
}

uint64_t NowEpochUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t NowWallNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t NowCpuNs() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

bool Trace::enabled() { return g_enabled.load(std::memory_order_relaxed); }

Status Trace::Enable(const TraceOptions& options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("TraceOptions.path is empty");
  }
  std::FILE* f = nullptr;
  bool is_stderr = false;
  if (options.path == "-") {
    f = stderr;
    is_stderr = true;
  } else {
    f = std::fopen(options.path.c_str(), options.append ? "ae" : "we");
    if (f == nullptr) {
      return Status::IOError("cannot open trace sink: " + options.path);
    }
  }
  {
    MutexLock lock(g_sink_mu);
    if (g_sink != nullptr && !g_sink_is_stderr) std::fclose(g_sink);
    g_sink = f;
    g_sink_is_stderr = is_stderr;
  }
  g_enabled.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void Trace::Disable() {
  g_enabled.store(false, std::memory_order_relaxed);
  MutexLock lock(g_sink_mu);
  if (g_sink != nullptr && !g_sink_is_stderr) std::fclose(g_sink);
  g_sink = nullptr;
  g_sink_is_stderr = false;
}

void Trace::InitFromEnv() {
  const char* path = std::getenv("FIX_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  TraceOptions options;
  options.path = path;
  options.append = true;  // many processes (ctest, fixctl runs) may share it
  // Falls back to no tracing on failure; tracing must never break the tool.
  Status s = Trace::Enable(options);
  if (!s.ok()) {
    std::fprintf(stderr, "fix: FIX_TRACE ignored: %s\n", s.ToString().c_str());
  }
}

namespace {
// Attach the env-driven sink before main(); harmless when FIX_TRACE is
// unset (one getenv).
struct TraceEnvInit {
  TraceEnvInit() { Trace::InitFromEnv(); }
};
TraceEnvInit g_trace_env_init;
}  // namespace

TraceSpan::TraceSpan(const char* name) {
  if (!Trace::enabled()) return;
  active_ = true;
  name_ = name;
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = t_current_span;
  t_current_span = span_id_;
  start_epoch_us_ = NowEpochUs();
  start_cpu_ns_ = NowCpuNs();
  start_wall_ns_ = NowWallNs();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const uint64_t wall_ns = NowWallNs() - start_wall_ns_;
  const uint64_t cpu_ns = NowCpuNs() - start_cpu_ns_;
  t_current_span = parent_id_;

  std::string line;
  line.reserve(160 + attrs_.size());
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"span\":%" PRIu64 ",\"parent\":%" PRIu64
                ",\"tid\":%" PRIu64 ",\"ts_us\":%" PRIu64
                ",\"wall_us\":%" PRIu64 ",\"cpu_us\":%" PRIu64,
                name_, span_id_, parent_id_, OsThreadId(), start_epoch_us_,
                wall_ns / 1000, cpu_ns / 1000);
  line += buf;
  if (!attrs_.empty()) {
    line += ",\"attrs\":{";
    line.append(attrs_, 1, attrs_.size() - 1);  // drop leading comma
    line += "}";
  }
  line += "}\n";

  MutexLock lock(g_sink_mu);
  // The sink may have been disabled between construction and destruction;
  // drop the line rather than write to a closed FILE.
  if (g_sink != nullptr) {
    std::fwrite(line.data(), 1, line.size(), g_sink);
    std::fflush(g_sink);
  }
}

void TraceSpan::AddAttr(std::string_view key, uint64_t value) {
  if (!active_) return;
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"%.*s\":%" PRIu64,
                static_cast<int>(key.size()), key.data(), value);
  attrs_ += buf;
}

void TraceSpan::AddAttr(std::string_view key, int64_t value) {
  if (!active_) return;
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"%.*s\":%" PRId64,
                static_cast<int>(key.size()), key.data(), value);
  attrs_ += buf;
}

void TraceSpan::AddAttr(std::string_view key, double value) {
  if (!active_) return;
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"%.*s\":%.6g",
                static_cast<int>(key.size()), key.data(), value);
  attrs_ += buf;
}

void TraceSpan::AddAttr(std::string_view key, std::string_view value) {
  if (!active_) return;
  attrs_ += ",\"";
  AppendJsonEscaped(&attrs_, key);
  attrs_ += "\":\"";
  AppendJsonEscaped(&attrs_, value);
  attrs_ += "\"";
}

}  // namespace fix
