#include "common/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fix {
namespace net {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Resolves the narrow address vocabulary this module supports: dotted
/// IPv4 literals plus "localhost". No DNS — fixd is a loopback/numeric
/// deployment and a resolver dependency would drag blocking lookups into
/// the event loop.
Status ResolveIpv4(const std::string& host, struct in_addr* out) {
  std::string h = host.empty() ? "0.0.0.0" : host;
  if (h == "localhost") h = "127.0.0.1";
  if (inet_pton(AF_INET, h.c_str(), out) != 1) {
    return Status::InvalidArgument("net: not a numeric IPv4 address: '" +
                                   host + "'");
  }
  return Status::OK();
}

/// Waits for readiness. `events` is POLLIN or POLLOUT; timeout_ms <= 0
/// blocks forever. Returns OK when ready, Unavailable on timeout.
Status PollFor(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::Unavailable("net: socket timeout");
    if (errno == EINTR) continue;
    return Status::IOError(Errno("poll"));
  }
}

}  // namespace

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ParseHostPort(std::string_view address, std::string* host,
                     uint16_t* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return Status::InvalidArgument("net: expected host:port, got '" +
                                   std::string(address) + "'");
  }
  std::string_view port_part = address.substr(colon + 1);
  uint32_t value = 0;
  for (char c : port_part) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("net: bad port in '" +
                                     std::string(address) + "'");
    }
    value = value * 10 + static_cast<uint32_t>(c - '0');
    if (value > 65535) {
      return Status::InvalidArgument("net: port out of range in '" +
                                     std::string(address) + "'");
    }
  }
  if (value == 0) {
    return Status::InvalidArgument("net: port 0 is not connectable in '" +
                                   std::string(address) + "'");
  }
  *host = std::string(address.substr(0, colon));
  *port = static_cast<uint16_t>(value);
  return Status::OK();
}

Result<Fd> ListenTcp(const std::string& host, uint16_t port, int backlog) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  FIX_RETURN_IF_ERROR(ResolveIpv4(host, &addr.sin_addr));

  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IOError(Errno("socket"));
  int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return Status::IOError(Errno("setsockopt(SO_REUSEADDR)"));
  }
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IOError(Errno("bind"));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::IOError(Errno("listen"));
  }
  return fd;
}

Result<uint16_t> LocalPort(const Fd& fd) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return Status::IOError(Errno("getsockname"));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Fd> ConnectTcp(const std::string& host, uint16_t port,
                      int timeout_ms) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  FIX_RETURN_IF_ERROR(ResolveIpv4(host, &addr.sin_addr));

  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IOError(Errno("socket"));

  // Connect non-blocking so the handshake honors the deadline, then flip
  // back: the request/response helpers below use per-call poll deadlines
  // on a blocking socket.
  FIX_RETURN_IF_ERROR(SetNonBlocking(fd.get(), true));
  int rc = ::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    return Status::IOError(Errno("connect"));
  }
  if (rc != 0) {
    FIX_RETURN_IF_ERROR(PollFor(fd.get(), POLLOUT, timeout_ms));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Status::IOError(Errno("getsockopt(SO_ERROR)"));
    }
    if (err != 0) {
      return Status::IOError(std::string("connect: ") + std::strerror(err));
    }
  }
  FIX_RETURN_IF_ERROR(SetNonBlocking(fd.get(), false));
  int one = 1;
  if (::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) !=
      0) {
    return Status::IOError(Errno("setsockopt(TCP_NODELAY)"));
  }
  return fd;
}

Status SetNonBlocking(int fd, bool enable) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::IOError(Errno("fcntl(F_GETFL)"));
  int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) != 0) {
    return Status::IOError(Errno("fcntl(F_SETFL)"));
  }
  return Status::OK();
}

Status SendAll(int fd, std::string_view data, int timeout_ms) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      FIX_RETURN_IF_ERROR(PollFor(fd, POLLOUT, timeout_ms));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(Errno("send"));
  }
  return Status::OK();
}

Status RecvExact(int fd, void* buf, size_t len, int timeout_ms) {
  char* out = static_cast<char*>(buf);
  size_t off = 0;
  while (off < len) {
    // Wait for readability first: on a blocking socket a bare recv() would
    // ignore the deadline entirely.
    FIX_RETURN_IF_ERROR(PollFor(fd, POLLIN, timeout_ms));
    ssize_t n = ::recv(fd, out + off, len - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::IOError("net: connection closed by peer");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::IOError(Errno("recv"));
  }
  return Status::OK();
}

}  // namespace net
}  // namespace fix
