// Per-query trace spans: RAII wall+CPU timing with nesting, emitted as
// JSON lines to an optional sink.
//
// The contract that makes this safe to leave in hot paths: with no sink
// attached (the default), constructing and destroying a TraceSpan is one
// relaxed atomic load and a branch — no clock reads, no allocation, no
// formatting. Attaching a sink (programmatically via Trace::Enable, or by
// setting the FIX_TRACE environment variable to a file path before the
// first span) turns every span into one JSON line on close:
//
//   {"name":"query.lookup","span":7,"parent":6,"tid":140245,
//    "ts_us":1722950000123456,"wall_us":412,"cpu_us":395,
//    "attrs":{"candidates":128}}
//
//   name     span name (stable identifier; dotted, lowercase)
//   span     process-unique span id
//   parent   id of the innermost enclosing live span on this thread, 0 if
//            top-level (nesting is tracked per thread)
//   tid      OS thread id
//   ts_us    wall-clock start, microseconds since the Unix epoch
//   wall_us  elapsed wall time
//   cpu_us   elapsed CPU time of this thread (CLOCK_THREAD_CPUTIME_ID)
//   attrs    optional key -> number|string map added via AddAttr
//
// Lines are appended under a mutex, so a trace file interleaves whole
// lines from many threads but never partial ones. Spans close in LIFO
// order per thread (they are scoped), so a child's line precedes its
// parent's.
//
// Thread-safety: Trace::Enable/Disable may race with span construction;
// a span captures the sink decision once at construction.

#ifndef FIX_COMMON_TRACE_H_
#define FIX_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace fix {

struct TraceOptions {
  /// JSON-lines output path. "-" means stderr.
  std::string path;
  /// Append to an existing file instead of truncating.
  bool append = false;
};

/// Global trace sink control. All methods are safe from any thread.
class Trace {
 public:
  /// True when a sink is attached (the span fast-path check).
  static bool enabled();

  /// Opens `options.path` and routes every subsequently *constructed* span
  /// to it. Replaces any previous sink.
  [[nodiscard]] static Status Enable(const TraceOptions& options);

  /// Detaches and closes the sink. Spans constructed while it was attached
  /// still write their line (the file closes after the last one releases
  /// it).
  static void Disable();

  /// Reads FIX_TRACE; when set and non-empty, calls Enable with its value
  /// as the path. Invoked automatically before main() from trace.cc, so
  /// `FIX_TRACE=/tmp/t.jsonl fixctl query ...` needs no code changes.
  static void InitFromEnv();
};

/// One timed, nestable span. Construct at the top of the region; the line
/// is emitted at destruction. Non-copyable, non-movable: a span is bound
/// to its scope and thread.
class TraceSpan {
 public:
  /// `name` must outlive the span (string literals only, by convention).
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a key -> value attribute to the span's JSON line. No-ops when
  /// tracing is disabled. Keys must be JSON-safe identifiers; string
  /// values are escaped.
  void AddAttr(std::string_view key, uint64_t value);
  void AddAttr(std::string_view key, int64_t value);
  void AddAttr(std::string_view key, double value);
  void AddAttr(std::string_view key, std::string_view value);

  bool active() const { return active_; }

 private:
  bool active_ = false;
  const char* name_ = nullptr;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t start_epoch_us_ = 0;
  uint64_t start_wall_ns_ = 0;
  uint64_t start_cpu_ns_ = 0;
  std::string attrs_;  // pre-rendered ,"key":value fragments
};

}  // namespace fix

#endif  // FIX_COMMON_TRACE_H_
