// MetricsRegistry: the process-wide observability substrate — named
// counters, gauges, and log-scale latency histograms, registered once and
// updated lock-free from any thread.
//
// Design constraints (see docs/OBSERVABILITY.md for the full metric list):
//
//   * Hot-path updates are a single relaxed atomic RMW — no locks, no
//     allocation, no syscalls. A Counter::Increment costs a handful of
//     nanoseconds, cheap enough to live inside the buffer pool's Fetch and
//     the B+-tree probe loop.
//   * Registration is the only synchronized operation (a mutex over a
//     name → metric map) and happens once per call site, typically through
//     a function-local static; after that, call sites hold a stable
//     pointer. Metrics are never unregistered, so pointers never dangle.
//   * Snapshot() reads every atomic with relaxed loads while writers keep
//     writing. A snapshot is therefore not an atomic cut across metrics
//     (count and sum of a histogram may disagree by in-flight updates),
//     which is the standard, documented trade-off for wait-free telemetry.
//
// Histograms are log-scale (HdrHistogram-style sub-bucketing): values below
// 16 are exact; above, each power-of-two octave is split into 8 sub-buckets,
// bounding the relative quantile error at 12.5%. p50/p95/p99 are derived
// from the bucket counts at snapshot time, never maintained online.

#ifndef FIX_COMMON_METRICS_REGISTRY_H_
#define FIX_COMMON_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fix {

/// Monotonically increasing event count. Thread-safety: all methods are
/// safe to call concurrently; updates use relaxed atomics (no ordering
/// guarantees with respect to other memory, which telemetry never needs).
class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  /// Test/bench support: reset to zero (registration survives).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value (last build's thread count, attached index
/// count, ...). Thread-safety: same as Counter.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Quantiles and moments derived from a histogram's buckets at snapshot
/// time. Quantile values are bucket upper bounds, so each q is an upper
/// bound on the true quantile with relative error <= 12.5%.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< 0 when count == 0
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  double mean() const { return count == 0 ? 0 : double(sum) / double(count); }
};

/// Log-scale histogram of non-negative integer samples (typically
/// microseconds, sometimes dimensions or byte counts — the unit is carried
/// by the registration, not the type). Thread-safety: Record and Snapshot
/// may run concurrently from any number of threads; everything is relaxed
/// atomics.
class Histogram {
 public:
  void Record(uint64_t value);

  /// Derives count/sum/min/max/p50/p95/p99 from the live buckets. Safe
  /// while writers write; the result is a consistent-enough view, not an
  /// atomic cut (see file comment).
  HistogramSnapshot Snapshot() const;

  /// Test/bench support: zero every bucket (registration survives).
  void Reset();

  /// Inclusive upper bound of bucket `i` (exposed for the quantile-bounds
  /// tests; bucket layout is an implementation detail otherwise).
  static uint64_t BucketUpperBound(size_t i);
  static size_t BucketIndex(uint64_t value);

  /// Values < 16 get exact buckets; octaves 4..63 get 8 sub-buckets each.
  static constexpr size_t kNumBuckets = 16 + (64 - 4) * 8;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One metric in a registry snapshot.
struct MetricSnapshot {
  std::string name;
  std::string unit;
  std::string help;
  MetricType type = MetricType::kCounter;
  uint64_t counter = 0;     ///< kCounter
  int64_t gauge = 0;        ///< kGauge
  HistogramSnapshot hist;   ///< kHistogram
};

class MetricsRegistry {
 public:
  /// The process-wide registry. First call constructs it; never destroyed
  /// (intentional leak so metrics outlive static-destruction order).
  static MetricsRegistry& Instance();

  /// Finds or registers the named metric. The returned pointer is stable
  /// for the life of the process — call once and cache it (the idiomatic
  /// call site is a function-local static). `unit` and `help` are recorded
  /// on first registration and ignored afterwards. Registering the same
  /// name with two different metric types is a programming error and
  /// returns the first registration's object of the *requested* type only
  /// if types match; otherwise nullptr (tests assert on this).
  Counter* FindOrCreateCounter(std::string_view name, std::string_view unit,
                               std::string_view help) FIX_EXCLUDES(mu_);
  Gauge* FindOrCreateGauge(std::string_view name, std::string_view unit,
                           std::string_view help) FIX_EXCLUDES(mu_);
  Histogram* FindOrCreateHistogram(std::string_view name,
                                   std::string_view unit,
                                   std::string_view help) FIX_EXCLUDES(mu_);

  /// Relaxed-read snapshot of every registered metric, sorted by name.
  /// Safe while writers keep writing.
  std::vector<MetricSnapshot> Snapshot() const FIX_EXCLUDES(mu_);

  /// Prometheus text exposition (text/plain; version 0.0.4): counters and
  /// gauges as-is, histograms as summaries with p50/p95/p99 quantile
  /// labels. Metric names have '.' mapped to '_'.
  std::string PrometheusText() const;

  /// Fixed-width human table (the `fixctl stats` format): one row per
  /// metric, histograms showing count/p50/p95/p99/max.
  std::string HumanTable() const;

  /// Zeroes every registered metric's value. Registrations (and cached
  /// pointers) survive. Tests and the bench harness use this to scope a
  /// snapshot to one run.
  void ResetAllForTest() FIX_EXCLUDES(mu_);

 private:
  MetricsRegistry() = default;

  struct Entry {
    std::string name;
    std::string unit;
    std::string help;
    MetricType type;
    // Exactly one of these is set, matching `type`. unique_ptr keeps the
    // metric's address stable across map growth.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(std::string_view name, std::string_view unit,
                      std::string_view help, MetricType type)
      FIX_EXCLUDES(mu_);

  // Registration can happen under any subsystem lock (e.g. a BufferPool
  // shard registering its hit counter lazily), so mu_ ranks last.
  // LOCK-ORDER: 12 MetricsRegistry::mu_
  mutable Mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_ FIX_GUARDED_BY(mu_);
};

}  // namespace fix

#endif  // FIX_COMMON_METRICS_REGISTRY_H_
