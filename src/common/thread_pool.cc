#include "common/thread_pool.h"

#include <atomic>

#include "common/logging.h"

namespace fix {

ThreadPool::ThreadPool(size_t num_threads) {
  FIX_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared claim counter + a private completion latch, so concurrent
  // ParallelFor calls on one pool cannot observe each other's completion.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending;
  };
  const size_t helpers = std::min(pool->num_threads(), n);
  auto latch = std::make_shared<Latch>();
  latch->pending = helpers;
  for (size_t w = 0; w < helpers; ++w) {
    pool->Submit([next, latch, &fn, n] {
      for (size_t i = next->fetch_add(1, std::memory_order_relaxed); i < n;
           i = next->fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
      {
        std::lock_guard<std::mutex> lock(latch->mu);
        --latch->pending;
      }
      latch->cv.notify_one();
    });
  }
  // The calling thread works the same claim loop instead of idling.
  for (size_t i = next->fetch_add(1, std::memory_order_relaxed); i < n;
       i = next->fetch_add(1, std::memory_order_relaxed)) {
    fn(i);
  }
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&latch] { return latch->pending == 0; });
}

}  // namespace fix
