#include "common/thread_pool.h"

#include <atomic>
#include <memory>

#include "common/logging.h"

namespace fix {

ThreadPool::ThreadPool(size_t num_threads) {
  FIX_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  // Explicit loop, not a predicate lambda: clang's thread-safety analysis
  // checks lambda bodies without the enclosing lock context.
  while (!queue_.empty() || active_ != 0) {
    idle_cv_.Wait(mu_);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) {
        work_cv_.Wait(mu_);
      }
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
    }
    idle_cv_.NotifyAll();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared claim counter + a private completion latch, so concurrent
  // ParallelFor calls on one pool cannot observe each other's completion.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  struct Latch {
    Mutex mu;
    CondVar cv;
    size_t pending FIX_GUARDED_BY(mu);
  };
  const size_t helpers = std::min(pool->num_threads(), n);
  auto latch = std::make_shared<Latch>();
  {
    MutexLock lock(latch->mu);
    latch->pending = helpers;
  }
  for (size_t w = 0; w < helpers; ++w) {
    pool->Submit([next, latch, &fn, n] {
      for (size_t i = next->fetch_add(1, std::memory_order_relaxed); i < n;
           i = next->fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
      {
        MutexLock lock(latch->mu);
        --latch->pending;
      }
      latch->cv.NotifyOne();
    });
  }
  // The calling thread works the same claim loop instead of idling.
  for (size_t i = next->fetch_add(1, std::memory_order_relaxed); i < n;
       i = next->fetch_add(1, std::memory_order_relaxed)) {
    fn(i);
  }
  MutexLock lock(latch->mu);
  while (latch->pending != 0) {
    latch->cv.Wait(latch->mu);
  }
}

}  // namespace fix
