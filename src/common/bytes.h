// Byte-order-stable encoding helpers used by the on-disk structures.
//
// All on-disk integers are little-endian. Keys that must sort correctly
// under memcmp (the B+-tree comparator operates on encoded keys) use the
// big-endian "order-preserving" encoders at the bottom of this header.

#ifndef FIX_COMMON_BYTES_H_
#define FIX_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace fix {

// ---------------------------------------------------------------------------
// Little-endian fixed-width codecs (storage payloads).
// ---------------------------------------------------------------------------

inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));  // little-endian hosts only
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline uint64_t DecodeFixed64(const char* src) {
  uint64_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

// ---------------------------------------------------------------------------
// Order-preserving big-endian codecs (B+-tree keys).
// ---------------------------------------------------------------------------

/// Writes `value` big-endian so that memcmp order == numeric order.
inline void EncodeBigEndian32(char* dst, uint32_t value) {
  dst[0] = static_cast<char>(value >> 24);
  dst[1] = static_cast<char>(value >> 16);
  dst[2] = static_cast<char>(value >> 8);
  dst[3] = static_cast<char>(value);
}

inline uint32_t DecodeBigEndian32(const char* src) {
  const auto* u = reinterpret_cast<const unsigned char*>(src);
  return (static_cast<uint32_t>(u[0]) << 24) |
         (static_cast<uint32_t>(u[1]) << 16) |
         (static_cast<uint32_t>(u[2]) << 8) | static_cast<uint32_t>(u[3]);
}

inline void EncodeBigEndian64(char* dst, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<char>(value >> (56 - 8 * i));
  }
}

inline uint64_t DecodeBigEndian64(const char* src) {
  const auto* u = reinterpret_cast<const unsigned char*>(src);
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value = (value << 8) | u[i];
  }
  return value;
}

/// Maps a double to a u64 whose unsigned order equals the double's numeric
/// order (IEEE-754 trick: flip all bits of negatives, flip the sign bit of
/// non-negatives). NaNs must not be passed.
inline uint64_t OrderPreservingDouble(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  if (bits & (1ULL << 63)) {
    return ~bits;  // negative: reverse order
  }
  return bits | (1ULL << 63);  // non-negative: shift above negatives
}

/// Inverse of OrderPreservingDouble.
inline double OrderPreservingToDouble(uint64_t encoded) {
  uint64_t bits;
  if (encoded & (1ULL << 63)) {
    bits = encoded & ~(1ULL << 63);
  } else {
    bits = ~encoded;
  }
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

// ---------------------------------------------------------------------------
// Misc.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Varints (LEB128), used by the document binary codec.
// ---------------------------------------------------------------------------

inline void PutVarint32(std::string* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

inline void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

/// Reads a varint32 at `*pos`, advancing it. Returns false on truncation or
/// overflow.
inline bool GetVarint32(const std::string& src, size_t* pos, uint32_t* out) {
  uint32_t result = 0;
  for (int shift = 0; shift <= 28; shift += 7) {
    if (*pos >= src.size()) return false;
    uint8_t byte = static_cast<uint8_t>(src[(*pos)++]);
    result |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return true;
    }
  }
  return false;
}

inline bool GetVarint64(const std::string& src, size_t* pos, uint64_t* out) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (*pos >= src.size()) return false;
    uint8_t byte = static_cast<uint8_t>(src[(*pos)++]);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return true;
    }
  }
  return false;
}

/// 64-bit FNV-1a hash, used for value hashing (Section 4.6) and signature
/// hash-consing in the bisimulation builder.
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Fnv1a64(const std::string& s) {
  return Fnv1a64(s.data(), s.size());
}

/// Mixes a 64-bit value into an accumulated hash (for hashing sequences of
/// integers without materializing a byte buffer).
inline uint64_t HashMix64(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace fix

#endif  // FIX_COMMON_BYTES_H_
