// The fixd wire protocol codec: length-prefixed, CRC-framed binary
// messages shared by the server (src/server), the fixctl --remote client,
// and bench_qps --remote. docs/FIXD.md is the normative specification;
// this header is its implementation and must not diverge.
//
// Frame layout (kHeaderSize = 12 bytes, then the payload):
//
//   offset  size  field
//   0       2     magic "FX"
//   2       1     protocol version (kProtocolVersion)
//   3       1     message type: Op value; responses set kResponseBit
//   4       4     payload length, little-endian (<= kMaxPayload)
//   8       4     CRC32C of the payload, little-endian
//
// Response payloads always begin with one Code byte; kOk is followed by
// the op-specific body, anything else by a length-prefixed error message.
// Strings are u32-length-prefixed byte runs; all integers little-endian
// via bytes.h. Decoders validate every length against the remaining
// payload before allocating, so a garbage frame costs bounded work.
//
// Thread-safety: the free functions are pure; a FrameReader is a plain
// buffer owned by one connection and must be externally serialized (fixd
// confines each one to its event loop).

#ifndef FIX_COMMON_WIRE_H_
#define FIX_COMMON_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace fix {
namespace wire {

inline constexpr char kMagic0 = 'F';
inline constexpr char kMagic1 = 'X';
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kHeaderSize = 12;
inline constexpr uint32_t kMaxPayload = 8u << 20;  // 8 MiB
inline constexpr uint8_t kResponseBit = 0x80;

/// Request opcodes. Response frames carry `op | kResponseBit`.
enum class Op : uint8_t {
  kPing = 0x01,
  kQuery = 0x02,
  kQueryBatch = 0x03,
  kInsert = 0x04,
  kStats = 0x05,
};

/// True when `type` (with kResponseBit stripped) names a known opcode.
bool IsKnownOp(uint8_t type);

/// Wire-level result codes, the first byte of every response payload.
/// Values are protocol surface — append only, never renumber (see
/// docs/FIXD.md, "Versioning rules").
enum class Code : uint8_t {
  kOk = 0,
  kBadFrame = 1,      ///< unparseable or oversized frame; connection closes
  kBadRequest = 2,    ///< well-framed but malformed payload
  kNotFound = 3,      ///< unknown index name
  kParseError = 4,    ///< XPath or XML rejected by the parser
  kOverloaded = 5,    ///< admission control shed the request; retry later
  kShuttingDown = 6,  ///< server is draining; reconnect elsewhere
  kInternal = 7,      ///< server-side invariant failure
  kIOError = 8,       ///< server-side storage failure
};

/// Human-readable name ("Ok", "Overloaded", ...) for logs and fixctl.
const char* CodeName(Code code);

/// Maps a fix::Status onto the wire code vocabulary (OK→kOk,
/// Unavailable→kOverloaded, NotFound→kNotFound, ParseError→kParseError,
/// IOError/Corruption→kIOError, everything else→kInternal).
Code CodeFromStatus(const Status& status);

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

/// One decoded frame: type byte plus the CRC-verified payload.
struct Frame {
  uint8_t type = 0;
  std::string payload;
};

/// Appends a complete frame (header + payload) for `type` to `*out`.
/// @pre payload.size() <= kMaxPayload.
void AppendFrame(uint8_t type, std::string_view payload, std::string* out);

/// Incremental frame decoder over a byte stream. Feed() appends raw bytes;
/// Next() yields complete frames until the buffer runs dry. A kBad outcome
/// poisons the reader — the stream has lost sync and the connection must
/// be closed (every later Next() repeats kBad).
class FrameReader {
 public:
  enum class Outcome {
    kFrame,     ///< *frame was filled with the next message
    kNeedMore,  ///< no complete frame buffered yet
    kBad,       ///< bad magic/version/length/CRC; close the connection
  };

  void Feed(std::string_view bytes) { buf_.append(bytes); }

  /// Extracts the next frame. On kBad, `*error` (if non-null) says what
  /// failed validation.
  Outcome Next(Frame* frame, std::string* error);

  /// Bytes buffered but not yet consumed (for backpressure accounting).
  size_t buffered_bytes() const { return buf_.size(); }

 private:
  std::string buf_;
  bool poisoned_ = false;
};

// ---------------------------------------------------------------------------
// Request payloads.
// ---------------------------------------------------------------------------

struct QueryRequest {
  std::string index;
  std::string xpath;
};

struct QueryBatchRequest {
  std::string index;
  uint32_t threads = 1;  ///< ExecuteMany fan-out requested by the client
  std::vector<std::string> xpaths;
};

struct InsertRequest {
  std::string index;  ///< index to extend incrementally (may be empty: none)
  std::string xml;    ///< document text
};

void EncodeQueryRequest(const QueryRequest& req, std::string* payload);
[[nodiscard]] Status DecodeQueryRequest(std::string_view payload,
                                        QueryRequest* req);

void EncodeQueryBatchRequest(const QueryBatchRequest& req,
                             std::string* payload);
[[nodiscard]] Status DecodeQueryBatchRequest(std::string_view payload,
                                             QueryBatchRequest* req);

void EncodeInsertRequest(const InsertRequest& req, std::string* payload);
[[nodiscard]] Status DecodeInsertRequest(std::string_view payload,
                                         InsertRequest* req);

// ---------------------------------------------------------------------------
// Response payloads.
// ---------------------------------------------------------------------------

/// A query result row: (doc_id, node_id) into primary storage, the wire
/// image of fix::NodeRef.
struct WireNodeRef {
  uint32_t doc_id = 0;
  uint32_t node_id = 0;

  bool operator==(const WireNodeRef&) const = default;
};

/// One query's outcome — either an error (code != kOk, message in
/// `error`) or stats + result rows. Used standalone for QUERY and
/// repeated for QUERY_BATCH, whose per-query statuses are independent.
struct QueryOutcome {
  Code code = Code::kOk;
  std::string error;
  bool used_index = false;
  bool degraded = false;
  uint64_t candidates = 0;
  uint64_t result_count = 0;
  std::vector<WireNodeRef> results;
};

struct InsertResponse {
  uint32_t doc_id = 0;
  uint64_t generation = 0;  ///< index generation after the commit (0: no index)
};

struct StatsResponse {
  std::string prometheus_text;
};

/// Encodes the generic error response payload: `code` byte + message.
/// @pre code != Code::kOk.
void EncodeErrorResponse(Code code, std::string_view message,
                         std::string* payload);

/// Decodes the leading code byte and, when it is an error, the message.
/// For kOk payloads, `*body_offset` is set to the first byte of the
/// op-specific body.
[[nodiscard]] Status DecodeResponseHead(std::string_view payload, Code* code,
                                        std::string* error,
                                        size_t* body_offset);

/// QUERY response body (after the kOk byte): one QueryOutcome.
/// @pre outcome.code == Code::kOk (errors go through EncodeErrorResponse).
void EncodeQueryResponse(const QueryOutcome& outcome, std::string* payload);
[[nodiscard]] Status DecodeQueryResponse(std::string_view payload,
                                         QueryOutcome* outcome);

/// QUERY_BATCH response body: u32 count, then each outcome (its own code
/// byte — a ParseError in one query does not fail its batchmates).
void EncodeQueryBatchResponse(const std::vector<QueryOutcome>& outcomes,
                              std::string* payload);
[[nodiscard]] Status DecodeQueryBatchResponse(
    std::string_view payload, std::vector<QueryOutcome>* outcomes);

void EncodeInsertResponse(const InsertResponse& resp, std::string* payload);
[[nodiscard]] Status DecodeInsertResponse(std::string_view payload,
                                          InsertResponse* resp);

void EncodeStatsResponse(const StatsResponse& resp, std::string* payload);
[[nodiscard]] Status DecodeStatsResponse(std::string_view payload,
                                         StatsResponse* resp);

/// PING response body is empty; PONG is the kOk byte alone.

}  // namespace wire
}  // namespace fix

#endif  // FIX_COMMON_WIRE_H_
