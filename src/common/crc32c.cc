#include "common/crc32c.h"

#include <cstring>

namespace fix {

namespace {

constexpr uint32_t kPoly = 0x82F63B78;  // reflected Castagnoli

struct Tables {
  uint32_t t[4][256];

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

uint32_t Crc32cSoftware(const unsigned char* p, size_t len, uint32_t crc) {
  const Tables& tb = GetTables();
  // Slicing-by-4: process aligned 4-byte words through four parallel tables.
  while (len >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xff] ^ tb.t[2][(crc >> 8) & 0xff] ^
          tb.t[1][(crc >> 16) & 0xff] ^ tb.t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
  }
  return crc;
}

#if defined(__x86_64__) && defined(__GNUC__)
#define FIX_CRC32C_HAVE_HW 1

// --- 3-lane hardware CRC -----------------------------------------------------
//
// A single crc32q dependency chain is latency-bound (~3 cycles per 8 bytes),
// so large buffers run three independent chains over adjacent 336-byte lanes
// and splice them with precomputed "advance the CRC past N zero bytes"
// operators. Appending N zero bytes is a linear map over GF(2), so the
// operator is a 32x32 bit matrix, applied here via four 256-entry lookup
// tables (same trick as zlib's crc32_combine, specialized to fixed N).

constexpr size_t kLane = 336;  // bytes per lane; superblock = 3 lanes

// column i = operator applied to the unit vector 1<<i
using CrcMatrix = uint32_t[32];

uint32_t MatrixTimes(const CrcMatrix m, uint32_t v) {
  uint32_t out = 0;
  for (int i = 0; v != 0; ++i, v >>= 1) {
    if (v & 1) out ^= m[i];
  }
  return out;
}

void MatrixMultiply(const CrcMatrix a, const CrcMatrix b, CrcMatrix out) {
  for (int i = 0; i < 32; ++i) out[i] = MatrixTimes(a, b[i]);
}

/// Lookup-table form of a zero-append operator: one 256-entry table per
/// input byte, so applying it is four loads and three xors.
struct ShiftTable {
  uint32_t t[4][256];

  void Build(const CrcMatrix m) {
    for (uint32_t b = 0; b < 256; ++b) {
      t[0][b] = MatrixTimes(m, b);
      t[1][b] = MatrixTimes(m, b << 8);
      t[2][b] = MatrixTimes(m, b << 16);
      t[3][b] = MatrixTimes(m, b << 24);
    }
  }

  uint32_t Apply(uint32_t crc) const {
    return t[0][crc & 0xff] ^ t[1][(crc >> 8) & 0xff] ^
           t[2][(crc >> 16) & 0xff] ^ t[3][crc >> 24];
  }
};

struct LaneShifts {
  ShiftTable by_lane;    // advance past kLane zero bytes
  ShiftTable by_2lanes;  // advance past 2*kLane zero bytes

  LaneShifts() {
    // One-zero-byte operator from the software table, then exponentiation
    // by squaring up to kLane bytes.
    const Tables& tb = GetTables();
    CrcMatrix byte_op;
    for (int i = 0; i < 32; ++i) {
      uint32_t c = 1u << i;
      byte_op[i] = (c >> 8) ^ tb.t[0][c & 0xff];
    }
    CrcMatrix power;   // byte_op^(2^k)
    CrcMatrix lane;    // byte_op^kLane, accumulated
    CrcMatrix scratch;
    std::memcpy(power, byte_op, sizeof(CrcMatrix));
    bool first = true;
    for (size_t n = kLane; n != 0; n >>= 1) {
      if (n & 1) {
        if (first) {
          std::memcpy(lane, power, sizeof(CrcMatrix));
          first = false;
        } else {
          MatrixMultiply(power, lane, scratch);
          std::memcpy(lane, scratch, sizeof(CrcMatrix));
        }
      }
      MatrixMultiply(power, power, scratch);
      std::memcpy(power, scratch, sizeof(CrcMatrix));
    }
    by_lane.Build(lane);
    CrcMatrix two;
    MatrixMultiply(lane, lane, two);
    by_2lanes.Build(two);
  }
};

const LaneShifts& GetLaneShifts() {
  static const LaneShifts shifts;
  return shifts;
}

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    const unsigned char* p, size_t len, uint32_t crc) {
  if (len >= 3 * kLane) {
    const LaneShifts& shifts = GetLaneShifts();
    do {
      uint64_t a = crc, b = 0, c = 0;
      const unsigned char* pa = p;
      const unsigned char* pb = p + kLane;
      const unsigned char* pc = p + 2 * kLane;
      for (size_t i = 0; i < kLane / 8; ++i) {
        uint64_t wa, wb, wc;
        std::memcpy(&wa, pa, 8);
        std::memcpy(&wb, pb, 8);
        std::memcpy(&wc, pc, 8);
        a = __builtin_ia32_crc32di(a, wa);
        b = __builtin_ia32_crc32di(b, wb);
        c = __builtin_ia32_crc32di(c, wc);
        pa += 8;
        pb += 8;
        pc += 8;
      }
      crc = shifts.by_2lanes.Apply(static_cast<uint32_t>(a)) ^
            shifts.by_lane.Apply(static_cast<uint32_t>(b)) ^
            static_cast<uint32_t>(c);
      p += 3 * kLane;
      len -= 3 * kLane;
    } while (len >= 3 * kLane);
  }
  uint64_t crc64 = crc;
  while (len >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    len -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  if (len >= 4) {
    uint32_t word;
    std::memcpy(&word, p, 4);
    crc = __builtin_ia32_crc32si(crc, word);
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
  }
  return crc;
}

bool HardwareCrcSupported() {
  static const bool supported = __builtin_cpu_supports("sse4.2");
  return supported;
}
#endif  // __x86_64__ && __GNUC__

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const uint32_t crc = ~seed;
#ifdef FIX_CRC32C_HAVE_HW
  if (HardwareCrcSupported()) {
    return ~Crc32cHardware(p, len, crc);
  }
#endif
  return ~Crc32cSoftware(p, len, crc);
}

}  // namespace fix
