#include "common/status.h"

namespace fix {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace fix
