// Annotated mutex wrappers for clang thread-safety analysis.
//
// libstdc++'s std::mutex / std::shared_mutex carry no capability
// attributes, so code locking them directly is invisible to clang's
// -Wthread-safety. These zero-overhead wrappers re-export the std
// primitives as annotated capabilities; under gcc every annotation macro
// expands to nothing and the wrappers inline away.
//
// Usage pattern (see docs/STATIC_ANALYSIS.md):
//
//   Mutex mu_;
//   int value_ FIX_GUARDED_BY(mu_);
//
//   void Bump() FIX_EXCLUDES(mu_) {
//     MutexLock lock(mu_);
//     ++value_;                       // ok: lock held
//   }
//
// Condition waits must use explicit loops, not predicate lambdas — clang
// analyzes lambda bodies without the enclosing REQUIRES context, so
// `cv.Wait(mu, [&]{ return ready_; })` would warn on `ready_`:
//
//   while (!ready_) cv_.Wait(mu_);
//
// The raw lock()/unlock() members exist so CondVar can treat Mutex as
// BasicLockable and so the RAII guards below can be implemented; direct
// calls elsewhere are rejected by `fixlint` (rule: raw-lock).

#ifndef FIX_COMMON_MUTEX_H_
#define FIX_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace fix {

/// Exclusive mutex, annotated as a clang thread-safety capability.
class FIX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FIX_ACQUIRE() { mu_.lock(); }      // fixlint:ignore(raw-lock)
  void unlock() FIX_RELEASE() { mu_.unlock(); }  // fixlint:ignore(raw-lock)

 private:
  std::mutex mu_;
};

/// Reader/writer mutex, annotated as a clang thread-safety capability.
class FIX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() FIX_ACQUIRE() { mu_.lock(); }      // fixlint:ignore(raw-lock)
  void unlock() FIX_RELEASE() { mu_.unlock(); }  // fixlint:ignore(raw-lock)
  void lock_shared() FIX_ACQUIRE_SHARED() {
    mu_.lock_shared();  // fixlint:ignore(raw-lock)
  }
  void unlock_shared() FIX_RELEASE_SHARED() {
    mu_.unlock_shared();  // fixlint:ignore(raw-lock)
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex (std::lock_guard equivalent).
class FIX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FIX_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();  // fixlint:ignore(raw-lock)
  }
  ~MutexLock() FIX_RELEASE() {
    mu_.unlock();  // fixlint:ignore(raw-lock)
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (reader) lock over SharedMutex.
class FIX_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) FIX_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();  // fixlint:ignore(raw-lock)
  }
  ~ReaderMutexLock() FIX_RELEASE_GENERIC() {
    mu_.unlock_shared();  // fixlint:ignore(raw-lock)
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class FIX_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) FIX_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();  // fixlint:ignore(raw-lock)
  }
  ~WriterMutexLock() FIX_RELEASE() {
    mu_.unlock();  // fixlint:ignore(raw-lock)
  }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable that waits on fix::Mutex. Wait releases and
/// re-acquires the mutex, which the FIX_REQUIRES annotation models as
/// "held across the call" — exactly the contract explicit wait loops rely
/// on. condition_variable_any accepts any BasicLockable, so no
/// unique_lock adapter is needed.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mu`; spurious wakeups happen, so always wait in a
  /// `while (!condition)` loop.
  void Wait(Mutex& mu) FIX_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace fix

#endif  // FIX_COMMON_MUTEX_H_
