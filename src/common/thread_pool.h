// A small fixed-size thread pool for the index construction pipeline.
//
// The pool is deliberately minimal: Submit enqueues a task, Wait blocks
// until every submitted task has finished. There is no futures machinery —
// pipeline stages communicate through pre-sized arrays indexed by task id,
// so workers never contend on output structures and the fallible work
// records per-slot Statuses instead of throwing.
//
// ParallelFor is the only construct the pipeline uses directly: it runs
// fn(0..n-1) with dynamic (claim-next) scheduling, the calling thread
// participating alongside the workers. With a null pool (or a single-thread
// pool) it degenerates to a plain sequential loop on the calling thread, so
// build_threads=1 exercises byte-for-byte the same code path without ever
// touching a mutex.

#ifndef FIX_COMMON_THREAD_POOL_H_
#define FIX_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fix {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw; fallible work should record a
  /// Status in caller-owned storage.
  void Submit(std::function<void()> task) FIX_EXCLUDES(mu_);

  /// Blocks until the queue is empty and no task is running.
  void Wait() FIX_EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() FIX_EXCLUDES(mu_);

  // LOCK-ORDER: 9 ThreadPool::mu_
  Mutex mu_;
  CondVar work_cv_;  // queue became non-empty / shutdown
  CondVar idle_cv_;  // a task finished or was dequeued
  std::deque<std::function<void()>> queue_ FIX_GUARDED_BY(mu_);
  size_t active_ FIX_GUARDED_BY(mu_) = 0;  // tasks currently executing
  bool stop_ FIX_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [0, n) with dynamic load balancing: each
/// participant claims the next unprocessed index from a shared counter, so
/// uneven per-item cost (one huge document among many small ones) cannot
/// idle the pool. The calling thread participates; the call returns only
/// after every index has been processed. With pool == nullptr or a
/// single-thread pool the loop runs inline on the calling thread.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace fix

#endif  // FIX_COMMON_THREAD_POOL_H_
