#include "common/wire.h"

#include "common/bytes.h"
#include "common/crc32c.h"

namespace fix {
namespace wire {

namespace {

// Decode helpers. Each validates against the remaining payload before
// consuming, so truncated or hostile frames fail cleanly instead of
// over-reading or over-allocating.

bool GetU8(std::string_view buf, size_t* pos, uint8_t* out) {
  if (*pos + 1 > buf.size()) return false;
  *out = static_cast<uint8_t>(buf[*pos]);
  *pos += 1;
  return true;
}

bool GetU32(std::string_view buf, size_t* pos, uint32_t* out) {
  if (*pos + 4 > buf.size()) return false;
  *out = DecodeFixed32(buf.data() + *pos);
  *pos += 4;
  return true;
}

bool GetU64(std::string_view buf, size_t* pos, uint64_t* out) {
  if (*pos + 8 > buf.size()) return false;
  *out = DecodeFixed64(buf.data() + *pos);
  *pos += 8;
  return true;
}

void PutString(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s);
}

bool GetString(std::string_view buf, size_t* pos, std::string* out) {
  uint32_t len = 0;
  if (!GetU32(buf, pos, &len)) return false;
  if (len > buf.size() - *pos) return false;  // length check, no overflow
  out->assign(buf.data() + *pos, len);
  *pos += len;
  return true;
}

Status Truncated(const char* what) {
  return Status::ParseError(std::string("wire: truncated ") + what);
}

Status Trailing(const char* what) {
  return Status::ParseError(std::string("wire: trailing bytes after ") +
                            what);
}

void EncodeOutcomeBody(const QueryOutcome& o, std::string* payload) {
  uint8_t flags = (o.used_index ? 0x01 : 0) | (o.degraded ? 0x02 : 0);
  payload->push_back(static_cast<char>(flags));
  PutFixed64(payload, o.candidates);
  PutFixed64(payload, o.result_count);
  PutFixed32(payload, static_cast<uint32_t>(o.results.size()));
  for (const WireNodeRef& r : o.results) {
    PutFixed32(payload, r.doc_id);
    PutFixed32(payload, r.node_id);
  }
}

Status DecodeOutcomeBody(std::string_view payload, size_t* pos,
                         QueryOutcome* o) {
  uint8_t flags = 0;
  uint32_t count = 0;
  if (!GetU8(payload, pos, &flags) || !GetU64(payload, pos, &o->candidates) ||
      !GetU64(payload, pos, &o->result_count) ||
      !GetU32(payload, pos, &count)) {
    return Truncated("query outcome");
  }
  o->used_index = (flags & 0x01) != 0;
  o->degraded = (flags & 0x02) != 0;
  if (count > (payload.size() - *pos) / 8) {
    return Truncated("query result rows");
  }
  o->results.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t doc = 0, node = 0;
    if (!GetU32(payload, pos, &doc) || !GetU32(payload, pos, &node)) {
      return Truncated("query result row");
    }
    o->results[i] = WireNodeRef{doc, node};
  }
  return Status::OK();
}

/// One QueryOutcome, its own leading code byte (batch element form).
void EncodeOutcome(const QueryOutcome& o, std::string* payload) {
  payload->push_back(static_cast<char>(o.code));
  if (o.code != Code::kOk) {
    PutString(payload, o.error);
    return;
  }
  EncodeOutcomeBody(o, payload);
}

Status DecodeOutcome(std::string_view payload, size_t* pos,
                     QueryOutcome* o) {
  uint8_t code = 0;
  if (!GetU8(payload, pos, &code)) return Truncated("outcome code");
  o->code = static_cast<Code>(code);
  if (o->code != Code::kOk) {
    if (!GetString(payload, pos, &o->error)) {
      return Truncated("outcome error message");
    }
    return Status::OK();
  }
  return DecodeOutcomeBody(payload, pos, o);
}

}  // namespace

bool IsKnownOp(uint8_t type) {
  switch (static_cast<Op>(type & ~kResponseBit)) {
    case Op::kPing:
    case Op::kQuery:
    case Op::kQueryBatch:
    case Op::kInsert:
    case Op::kStats:
      return true;
  }
  return false;
}

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk: return "Ok";
    case Code::kBadFrame: return "BadFrame";
    case Code::kBadRequest: return "BadRequest";
    case Code::kNotFound: return "NotFound";
    case Code::kParseError: return "ParseError";
    case Code::kOverloaded: return "Overloaded";
    case Code::kShuttingDown: return "ShuttingDown";
    case Code::kInternal: return "Internal";
    case Code::kIOError: return "IOError";
  }
  return "Unknown";
}

Code CodeFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return Code::kOk;
    case StatusCode::kNotFound: return Code::kNotFound;
    case StatusCode::kParseError: return Code::kParseError;
    case StatusCode::kUnavailable: return Code::kOverloaded;
    case StatusCode::kIOError:
    case StatusCode::kCorruption: return Code::kIOError;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange: return Code::kBadRequest;
    case StatusCode::kNotSupported:
    case StatusCode::kInternal: return Code::kInternal;
  }
  return Code::kInternal;
}

void AppendFrame(uint8_t type, std::string_view payload, std::string* out) {
  out->push_back(kMagic0);
  out->push_back(kMagic1);
  out->push_back(static_cast<char>(kProtocolVersion));
  out->push_back(static_cast<char>(type));
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  PutFixed32(out, Crc32c(payload.data(), payload.size()));
  out->append(payload);
}

FrameReader::Outcome FrameReader::Next(Frame* frame, std::string* error) {
  if (poisoned_) {
    if (error != nullptr) *error = "wire: stream already lost sync";
    return Outcome::kBad;
  }
  if (buf_.size() < kHeaderSize) return Outcome::kNeedMore;
  auto bad = [&](const std::string& why) {
    poisoned_ = true;
    if (error != nullptr) *error = why;
    return Outcome::kBad;
  };
  if (buf_[0] != kMagic0 || buf_[1] != kMagic1) {
    return bad("wire: bad magic");
  }
  uint8_t version = static_cast<uint8_t>(buf_[2]);
  if (version != kProtocolVersion) {
    return bad("wire: unsupported protocol version " +
               std::to_string(version));
  }
  uint32_t payload_len = DecodeFixed32(buf_.data() + 4);
  if (payload_len > kMaxPayload) {
    return bad("wire: payload length " + std::to_string(payload_len) +
               " exceeds limit");
  }
  if (buf_.size() < kHeaderSize + payload_len) return Outcome::kNeedMore;
  uint32_t want_crc = DecodeFixed32(buf_.data() + 8);
  uint32_t got_crc = Crc32c(buf_.data() + kHeaderSize, payload_len);
  if (want_crc != got_crc) {
    return bad("wire: payload CRC mismatch");
  }
  frame->type = static_cast<uint8_t>(buf_[3]);
  frame->payload.assign(buf_, kHeaderSize, payload_len);
  buf_.erase(0, kHeaderSize + payload_len);
  return Outcome::kFrame;
}

void EncodeQueryRequest(const QueryRequest& req, std::string* payload) {
  PutString(payload, req.index);
  PutString(payload, req.xpath);
}

Status DecodeQueryRequest(std::string_view payload, QueryRequest* req) {
  size_t pos = 0;
  if (!GetString(payload, &pos, &req->index) ||
      !GetString(payload, &pos, &req->xpath)) {
    return Truncated("QUERY request");
  }
  if (pos != payload.size()) return Trailing("QUERY request");
  return Status::OK();
}

void EncodeQueryBatchRequest(const QueryBatchRequest& req,
                             std::string* payload) {
  PutString(payload, req.index);
  PutFixed32(payload, req.threads);
  PutFixed32(payload, static_cast<uint32_t>(req.xpaths.size()));
  for (const std::string& xpath : req.xpaths) PutString(payload, xpath);
}

Status DecodeQueryBatchRequest(std::string_view payload,
                               QueryBatchRequest* req) {
  size_t pos = 0;
  uint32_t count = 0;
  if (!GetString(payload, &pos, &req->index) ||
      !GetU32(payload, &pos, &req->threads) ||
      !GetU32(payload, &pos, &count)) {
    return Truncated("QUERY_BATCH request");
  }
  // Each xpath costs at least its 4-byte length prefix.
  if (count > (payload.size() - pos) / 4) {
    return Truncated("QUERY_BATCH xpath list");
  }
  req->xpaths.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!GetString(payload, &pos, &req->xpaths[i])) {
      return Truncated("QUERY_BATCH xpath");
    }
  }
  if (pos != payload.size()) return Trailing("QUERY_BATCH request");
  return Status::OK();
}

void EncodeInsertRequest(const InsertRequest& req, std::string* payload) {
  PutString(payload, req.index);
  PutString(payload, req.xml);
}

Status DecodeInsertRequest(std::string_view payload, InsertRequest* req) {
  size_t pos = 0;
  if (!GetString(payload, &pos, &req->index) ||
      !GetString(payload, &pos, &req->xml)) {
    return Truncated("INSERT request");
  }
  if (pos != payload.size()) return Trailing("INSERT request");
  return Status::OK();
}

void EncodeErrorResponse(Code code, std::string_view message,
                         std::string* payload) {
  payload->push_back(static_cast<char>(code));
  PutString(payload, message);
}

Status DecodeResponseHead(std::string_view payload, Code* code,
                          std::string* error, size_t* body_offset) {
  size_t pos = 0;
  uint8_t raw = 0;
  if (!GetU8(payload, &pos, &raw)) return Truncated("response code");
  *code = static_cast<Code>(raw);
  error->clear();
  if (*code != Code::kOk) {
    if (!GetString(payload, &pos, error)) {
      return Truncated("response error message");
    }
  }
  *body_offset = pos;
  return Status::OK();
}

void EncodeQueryResponse(const QueryOutcome& outcome, std::string* payload) {
  payload->push_back(static_cast<char>(Code::kOk));
  EncodeOutcomeBody(outcome, payload);
}

Status DecodeQueryResponse(std::string_view payload, QueryOutcome* outcome) {
  size_t pos = 0;
  FIX_RETURN_IF_ERROR(DecodeOutcome(payload, &pos, outcome));
  if (pos != payload.size()) return Trailing("QUERY response");
  return Status::OK();
}

void EncodeQueryBatchResponse(const std::vector<QueryOutcome>& outcomes,
                              std::string* payload) {
  payload->push_back(static_cast<char>(Code::kOk));
  PutFixed32(payload, static_cast<uint32_t>(outcomes.size()));
  for (const QueryOutcome& o : outcomes) EncodeOutcome(o, payload);
}

Status DecodeQueryBatchResponse(std::string_view payload,
                                std::vector<QueryOutcome>* outcomes) {
  size_t pos = 0;
  uint8_t code = 0;
  uint32_t count = 0;
  if (!GetU8(payload, &pos, &code)) return Truncated("batch response code");
  if (static_cast<Code>(code) != Code::kOk) {
    return Status::ParseError(
        "wire: batch body decode called on an error response");
  }
  if (!GetU32(payload, &pos, &count)) return Truncated("batch count");
  // Each outcome costs at least its code byte.
  if (count > payload.size() - pos) return Truncated("batch outcomes");
  outcomes->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    FIX_RETURN_IF_ERROR(DecodeOutcome(payload, &pos, &(*outcomes)[i]));
  }
  if (pos != payload.size()) return Trailing("QUERY_BATCH response");
  return Status::OK();
}

void EncodeInsertResponse(const InsertResponse& resp, std::string* payload) {
  payload->push_back(static_cast<char>(Code::kOk));
  PutFixed32(payload, resp.doc_id);
  PutFixed64(payload, resp.generation);
}

Status DecodeInsertResponse(std::string_view payload, InsertResponse* resp) {
  size_t pos = 0;
  uint8_t code = 0;
  if (!GetU8(payload, &pos, &code)) return Truncated("insert response");
  if (static_cast<Code>(code) != Code::kOk) {
    return Status::ParseError(
        "wire: insert body decode called on an error response");
  }
  if (!GetU32(payload, &pos, &resp->doc_id) ||
      !GetU64(payload, &pos, &resp->generation)) {
    return Truncated("INSERT response");
  }
  if (pos != payload.size()) return Trailing("INSERT response");
  return Status::OK();
}

void EncodeStatsResponse(const StatsResponse& resp, std::string* payload) {
  payload->push_back(static_cast<char>(Code::kOk));
  PutString(payload, resp.prometheus_text);
}

Status DecodeStatsResponse(std::string_view payload, StatsResponse* resp) {
  size_t pos = 0;
  uint8_t code = 0;
  if (!GetU8(payload, &pos, &code)) return Truncated("stats response");
  if (static_cast<Code>(code) != Code::kOk) {
    return Status::ParseError(
        "wire: stats body decode called on an error response");
  }
  if (!GetString(payload, &pos, &resp->prometheus_text)) {
    return Truncated("STATS response");
  }
  if (pos != payload.size()) return Trailing("STATS response");
  return Status::OK();
}

}  // namespace wire
}  // namespace fix
