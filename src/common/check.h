// Debug invariant checks, compiled out of release builds.
//
// FIX_CHECK (logging.h) is always on and reserved for cheap, unconditional
// programming-error traps. FIX_DCHECK and friends are for expensive
// structural invariants — B+-tree node ordering, buffer-pool pin balance,
// skew-matrix anti-symmetry — that we want validated on every hot-path
// operation in Debug and sanitizer builds but pay nothing for in release.
//
// The build enables them by defining FIX_ENABLE_DCHECKS (see the top-level
// CMakeLists.txt: automatic for CMAKE_BUILD_TYPE=Debug or any FIX_SANITIZE
// configuration, and forceable with -DFIX_DCHECK=ON).
//
// When disabled, the condition is still parsed (so it cannot bit-rot) but is
// never evaluated and generates no code.

#ifndef FIX_COMMON_CHECK_H_
#define FIX_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>

#include "common/logging.h"

#if defined(FIX_ENABLE_DCHECKS)
#define FIX_DCHECKS_ENABLED 1
#else
#define FIX_DCHECKS_ENABLED 0
#endif

namespace fix {
namespace internal_check {

/// Prints a failed binary-comparison check with both operand values, then
/// aborts. Out-of-line cold path so the check sites stay small.
template <typename A, typename B>
[[noreturn]] void DCheckOpFail(const char* file, int line, const char* expr,
                               const A& lhs, const B& rhs) {
  std::cerr << "FIX_DCHECK failed at " << file << ":" << line << ": " << expr
            << " (" << lhs << " vs " << rhs << ")" << std::endl;
  std::abort();
}

}  // namespace internal_check
}  // namespace fix

#if FIX_DCHECKS_ENABLED

#define FIX_DCHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::cerr << "FIX_DCHECK failed at " << __FILE__ << ":" << __LINE__  \
                << ": " #cond << std::endl;                                \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define FIX_DCHECK_OP_(op, a, b)                                           \
  do {                                                                     \
    const auto& _fix_dc_a = (a);                                           \
    const auto& _fix_dc_b = (b);                                           \
    if (!(_fix_dc_a op _fix_dc_b)) {                                       \
      ::fix::internal_check::DCheckOpFail(__FILE__, __LINE__,              \
                                          #a " " #op " " #b, _fix_dc_a,    \
                                          _fix_dc_b);                      \
    }                                                                      \
  } while (0)

#else  // !FIX_DCHECKS_ENABLED

// `false && (cond)` keeps the condition compiled (names stay checked, no
// unused-variable warnings) while guaranteeing it is never evaluated; the
// whole statement folds away at -O1.
#define FIX_DCHECK(cond) \
  do {                   \
    if (false && (cond)) {} \
  } while (0)

#define FIX_DCHECK_OP_(op, a, b) FIX_DCHECK((a)op(b))

#endif  // FIX_DCHECKS_ENABLED

#define FIX_DCHECK_EQ(a, b) FIX_DCHECK_OP_(==, a, b)
#define FIX_DCHECK_NE(a, b) FIX_DCHECK_OP_(!=, a, b)
#define FIX_DCHECK_LT(a, b) FIX_DCHECK_OP_(<, a, b)
#define FIX_DCHECK_LE(a, b) FIX_DCHECK_OP_(<=, a, b)
#define FIX_DCHECK_GT(a, b) FIX_DCHECK_OP_(>, a, b)
#define FIX_DCHECK_GE(a, b) FIX_DCHECK_OP_(>=, a, b)

#endif  // FIX_COMMON_CHECK_H_
