// Minimal POSIX TCP utilities for the fixd network service and its
// clients: an RAII file descriptor, listen/connect helpers, and blocking
// send/receive with poll-based deadlines.
//
// Scope is deliberately narrow — numeric IPv4 addresses (plus the literal
// "localhost") over TCP, which is everything the loopback-oriented fixd
// deployment model needs (see docs/FIXD.md). Every call loops on EINTR;
// the timed I/O helpers never busy-wait (they poll for readiness) and
// treat a peer close as an error rather than a short count, so callers
// only ever see whole reads and whole writes.
//
// Thread-safety: free functions are thread-safe; an Fd (like the raw
// descriptor it owns) must not be operated on concurrently from two
// threads except where the caller provides ordering. The fixd server
// confines each descriptor to its event loop; FixdClient confines its
// socket to one caller at a time (see client.h).

#ifndef FIX_COMMON_NET_H_
#define FIX_COMMON_NET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace fix {
namespace net {

/// Owning wrapper for a file descriptor: closes on destruction, move-only.
/// An Fd can be empty (valid() == false); releasing or moving from one
/// leaves it empty.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Transfers ownership to the caller.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes now (idempotent; EINTR is not retried per POSIX close rules).
  void Close();

 private:
  int fd_ = -1;
};

/// Splits "host:port". The host part may be empty ("":8080 is rejected);
/// port must parse as 1..65535.
[[nodiscard]] Status ParseHostPort(std::string_view address,
                                   std::string* host, uint16_t* port);

/// Opens a TCP listener bound to `host:port` (port 0 = kernel-assigned;
/// read it back with LocalPort). SO_REUSEADDR is set so restarts do not
/// trip over TIME_WAIT. The socket is returned in blocking mode.
[[nodiscard]] Result<Fd> ListenTcp(const std::string& host, uint16_t port,
                                   int backlog);

/// The port a bound socket actually listens on.
[[nodiscard]] Result<uint16_t> LocalPort(const Fd& fd);

/// Connects to `host:port`, waiting at most `timeout_ms` for the handshake
/// (<= 0 means block indefinitely). The socket is returned in blocking
/// mode with TCP_NODELAY set (the wire protocol is request/response).
[[nodiscard]] Result<Fd> ConnectTcp(const std::string& host, uint16_t port,
                                    int timeout_ms);

/// Switches O_NONBLOCK on or off.
[[nodiscard]] Status SetNonBlocking(int fd, bool enable);

/// Writes all of `data`, polling for writability between partial sends.
/// `timeout_ms` bounds the time spent waiting for the socket to accept
/// more bytes (per poll, not cumulative; <= 0 waits forever).
[[nodiscard]] Status SendAll(int fd, std::string_view data, int timeout_ms);

/// Reads exactly `len` bytes into `buf` under the same deadline rules.
/// A peer close before `len` bytes arrive returns IOError("connection
/// closed").
[[nodiscard]] Status RecvExact(int fd, void* buf, size_t len,
                               int timeout_ms);

}  // namespace net
}  // namespace fix

#endif  // FIX_COMMON_NET_H_
