// Clang thread-safety-analysis annotation shim.
//
// These macros expand to clang's [[clang::...]] capability attributes when
// the compiler understands them and to nothing otherwise (gcc — including
// this repo's pinned toolchain image — compiles them away). Annotated code
// is therefore portable; the *analysis* runs only under
//
//   cmake -B build-tsafety -S . -DCMAKE_CXX_COMPILER=clang++
//         -DFIX_THREAD_SAFETY=ON
//
// which turns on -Wthread-safety -Wthread-safety-beta -Werror (see the
// top-level CMakeLists.txt and docs/STATIC_ANALYSIS.md).
//
// The annotations only work on *annotated capability types*: libstdc++'s
// std::mutex is invisible to the analysis, which is why the concurrency
// surface uses the fix::Mutex / fix::SharedMutex wrappers from
// common/mutex.h rather than the std primitives directly.
//
// Naming follows the clang documentation: a "capability" is a resource
// (almost always a mutex) that must be held to touch the data it guards.
//   FIX_GUARDED_BY(mu)      field access requires holding mu
//   FIX_PT_GUARDED_BY(mu)   pointee access requires holding mu
//   FIX_REQUIRES(mu)        caller must hold mu (function precondition)
//   FIX_EXCLUDES(mu)        caller must NOT hold mu (anti-deadlock)
//   FIX_ACQUIRE/RELEASE     function acquires / releases mu
//   FIX_CAPABILITY(name)    class is a lockable capability
//   FIX_SCOPED_CAPABILITY   class is an RAII lock guard
//   FIX_ACQUIRED_AFTER/BEFORE  declared lock order (checked under
//                              -Wthread-safety-beta)

#ifndef FIX_COMMON_THREAD_ANNOTATIONS_H_
#define FIX_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define FIX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FIX_THREAD_ANNOTATION(x)  // no-op under gcc and other compilers
#endif

#define FIX_CAPABILITY(x) FIX_THREAD_ANNOTATION(capability(x))
#define FIX_SCOPED_CAPABILITY FIX_THREAD_ANNOTATION(scoped_lockable)

#define FIX_GUARDED_BY(x) FIX_THREAD_ANNOTATION(guarded_by(x))
#define FIX_PT_GUARDED_BY(x) FIX_THREAD_ANNOTATION(pt_guarded_by(x))

#define FIX_ACQUIRED_BEFORE(...) \
  FIX_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define FIX_ACQUIRED_AFTER(...) \
  FIX_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define FIX_REQUIRES(...) \
  FIX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FIX_REQUIRES_SHARED(...) \
  FIX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define FIX_ACQUIRE(...) FIX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FIX_ACQUIRE_SHARED(...) \
  FIX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define FIX_RELEASE(...) FIX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FIX_RELEASE_SHARED(...) \
  FIX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define FIX_RELEASE_GENERIC(...) \
  FIX_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define FIX_TRY_ACQUIRE(...) \
  FIX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define FIX_EXCLUDES(...) FIX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define FIX_ASSERT_CAPABILITY(x) FIX_THREAD_ANNOTATION(assert_capability(x))
#define FIX_RETURN_CAPABILITY(x) FIX_THREAD_ANNOTATION(lock_returned(x))

#define FIX_NO_THREAD_SAFETY_ANALYSIS \
  FIX_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // FIX_COMMON_THREAD_ANNOTATIONS_H_
