// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding every on-disk page (storage/page_file.cc) and the scrub
// tool. Software slicing-by-4 implementation: ~1.5 GB/s, far below the noise
// floor of index construction (the eigensolver dominates), so checksums stay
// on by default.

#ifndef FIX_COMMON_CRC32C_H_
#define FIX_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace fix {

/// CRC32C of `data[0, len)`. `seed` chains multi-extent checksums:
/// Crc32c(b, n, Crc32c(a, m)) == CRC of a||b.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace fix

#endif  // FIX_COMMON_CRC32C_H_
