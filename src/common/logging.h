// Minimal leveled logging to stderr. Benchmarks and examples use this for
// progress reporting; library code logs only at warning level and above.

#ifndef FIX_COMMON_LOGGING_H_
#define FIX_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace fix {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << Name(level) << " " << Basename(file) << ":" << line
            << "] ";
  }

  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      std::cerr << stream_.str() << std::endl;
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
    }
    return "?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define FIX_LOG(level)                                                     \
  ::fix::internal_logging::LogMessage(::fix::LogLevel::k##level, __FILE__, \
                                      __LINE__)                            \
      .stream()

/// Fatal invariant check: prints the condition and aborts. Used only for
/// programming errors, never for data-dependent failures (those return
/// Status).
#define FIX_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::cerr << "FIX_CHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " #cond << std::endl;                            \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

}  // namespace fix

#endif  // FIX_COMMON_LOGGING_H_
