#include "common/rng.h"

namespace fix {

size_t Rng::PickWeighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double r = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // numeric slack: last bucket
}

}  // namespace fix
