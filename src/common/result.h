// Result<T>: a value-or-Status return type, the companion of Status for
// functions that produce a value on success.

#ifndef FIX_COMMON_RESULT_H_
#define FIX_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace fix {

/// Holds either a T (when status().ok()) or an error Status.
///
/// Usage:
///   Result<int> r = Parse(text);
///   if (!r.ok()) return r.status();
///   Use(r.value());
/// Marked [[nodiscard]] at class level (see Status): discarding a Result
/// silently drops both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK Status (failure). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>), propagating its status on failure and
/// otherwise move-assigning the value into `lhs`.
#define FIX_ASSIGN_OR_RETURN(lhs, rexpr)          \
  FIX_ASSIGN_OR_RETURN_IMPL_(                     \
      FIX_RESULT_CONCAT_(_fix_result_, __LINE__), lhs, rexpr)

#define FIX_RESULT_CONCAT_INNER_(a, b) a##b
#define FIX_RESULT_CONCAT_(a, b) FIX_RESULT_CONCAT_INNER_(a, b)
#define FIX_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace fix

#endif  // FIX_COMMON_RESULT_H_
