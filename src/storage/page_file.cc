#include "storage/page_file.h"

#include <stdio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/logging.h"

namespace fix {

namespace {

/// Transient (Unavailable) backend failures are retried this many times in
/// total before being promoted to a hard IOError.
constexpr int kMaxIoAttempts = 4;

uint64_t BlockOffset(PageId id) {
  return static_cast<uint64_t>(id) * kDiskPageSize;
}

}  // namespace

template <typename Op>
Status PageFile::RetryTransient(Op&& op) {
  Status s;
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    s = op();
    if (!s.IsUnavailable()) return s;
    if (attempt + 1 < kMaxIoAttempts) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      // 50us, 100us, 200us, ... — bounded by kMaxIoAttempts.
      ::usleep(static_cast<useconds_t>((1u << attempt) * 50));
    }
  }
  return Status::IOError("transient fault persisted after " +
                         std::to_string(kMaxIoAttempts) +
                         " attempts: " + s.message());
}

PageFile::~PageFile() {
  if (is_open()) {
    Status s = Close();
    if (!s.ok()) {
      FIX_LOG(Error) << "PageFile destructor: close failed for " << path_
                     << ": " << s.ToString();
    }
  }
}

Status PageFile::Open(const std::string& path, bool create) {
  return OpenInternal(path, create, /*allow_repair=*/true);
}

Status PageFile::OpenForScrub(const std::string& path) {
  return OpenInternal(path, /*create=*/false, /*allow_repair=*/false);
}

Status PageFile::OpenInternal(const std::string& path, bool create,
                              bool allow_repair) {
  if (is_open()) return Status::InvalidArgument("PageFile already open");
  if (io_ == nullptr) io_ = std::make_unique<FilePageIo>();
  FIX_RETURN_IF_ERROR(io_->Open(path, create));
  path_ = path;
  if (create) {
    // Match the historical O_TRUNC semantics of Open(create=true).
    FIX_RETURN_IF_ERROR(io_->Truncate(0));
    num_pages_ = 0;
    return Status::OK();
  }
  uint64_t size;
  {
    Result<uint64_t> r = io_->Size();
    FIX_RETURN_IF_ERROR(r.status());
    size = r.value();
  }
  if (size == 0) {
    num_pages_ = 0;
    return Status::OK();
  }
  if (size < 4) {
    return Status::Corruption("page file too small to identify: " + path);
  }
  char magic_buf[4];
  FIX_RETURN_IF_ERROR(io_->Read(0, magic_buf, sizeof(magic_buf)));
  const uint32_t magic = DecodeFixed32(magic_buf);
  // Zero magic + disk-block alignment means a v1 file whose first page was
  // allocated (metadata-only truncate) but never written — e.g. a crash
  // between allocation and the first flush. Its blocks verify lazily on
  // read, so fall through to the v1 path rather than misreading it as v0.
  if (magic != kPageMagic && !(magic == 0 && size % kDiskPageSize == 0)) {
    // Headerless version-0 file: raw 4096-byte payloads back to back.
    if (size % kPageSize != 0) {
      return Status::Corruption("page file size not page-aligned: " + path);
    }
    if (!allow_repair) {
      return Status::Corruption(
          "legacy unchecksummed (v0) page file; open it normally once to "
          "upgrade: " +
          path);
    }
    return UpgradeV0File(size);
  }
  uint64_t tail = size % kDiskPageSize;
  if (tail != 0) {
    if (!allow_repair) {
      return Status::Corruption("torn trailing page (" +
                                std::to_string(tail) +
                                " stray bytes): " + path);
    }
    // A torn final block can only come from a crash mid-append; the page was
    // never acknowledged, so dropping it is safe and restores alignment.
    FIX_LOG(Warning) << "PageFile " << path << ": truncating torn final page ("
                     << tail << " stray bytes)";
    FIX_RETURN_IF_ERROR(io_->Truncate(size - tail));
    size -= tail;
  }
  num_pages_ = static_cast<PageId>(size / kDiskPageSize);
  return Status::OK();
}

Status PageFile::UpgradeV0File(uint64_t size) {
  const PageId pages = static_cast<PageId>(size / kPageSize);
  FIX_LOG(Info) << "PageFile " << path_ << ": upgrading v0 file (" << pages
                << " pages) to checksummed v1 format";
  const std::string tmp_path = path_ + ".upgrade";
  // The temp file is written through a plain backend even when io_ is a
  // fault injector: the upgrade is part of Open, and injected faults are
  // aimed at steady-state page traffic.
  FilePageIo tmp;
  FIX_RETURN_IF_ERROR(tmp.Open(tmp_path, /*create=*/true));
  FIX_RETURN_IF_ERROR(tmp.Truncate(0));
  std::vector<char> block(kDiskPageSize);
  for (PageId id = 0; id < pages; ++id) {
    FIX_RETURN_IF_ERROR(io_->Read(static_cast<uint64_t>(id) * kPageSize,
                                  block.data() + kPageHeaderSize, kPageSize));
    StampHeader(id, block.data());
    FIX_RETURN_IF_ERROR(tmp.Write(BlockOffset(id), block.data(),
                                  kDiskPageSize));
  }
  FIX_RETURN_IF_ERROR(tmp.Sync());
  FIX_RETURN_IF_ERROR(tmp.Close());
  FIX_RETURN_IF_ERROR(io_->Close());
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return Status::IOError("rename " + tmp_path + " -> " + path_ + ": " +
                           std::strerror(errno));
  }
  FIX_RETURN_IF_ERROR(io_->Open(path_, /*create=*/false));
  num_pages_ = pages;
  return Status::OK();
}

Status PageFile::Close() {
  if (!is_open()) return Status::OK();
  return io_->Close();
}

Status PageFile::AllocatePage(PageId* id) {
  if (!is_open()) return Status::InvalidArgument("PageFile not open");
  const PageId next = num_pages_.load(std::memory_order_relaxed);
  *id = next;
  // Metadata-only extension; the block stays all-zero until its first real
  // write. A zero block has no valid header, so reading a page that was
  // allocated but never written reports corruption — the same
  // quarantine-and-rebuild path a torn write takes. (The v0 code wrote a
  // zero page here, doubling the data written per page for bytes that the
  // first eviction always overwrote.)
  FIX_RETURN_IF_ERROR(RetryTransient([&] {
    return io_->Truncate(static_cast<uint64_t>(next + 1) * kDiskPageSize);
  }));
  num_pages_.store(next + 1, std::memory_order_relaxed);
  return Status::OK();
}

void PageFile::StampHeader(PageId id, char* block) {
  EncodeFixed32(block + 0, kPageMagic);
  EncodeFixed32(block + 4, kPageFormatVersion);
  EncodeFixed32(block + 8, id);
  EncodeFixed64(block + 16,
                write_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
  uint32_t crc = Crc32c(block, 12);
  crc = Crc32c(block + 16, kDiskPageSize - 16, crc);
  EncodeFixed32(block + 12, crc);
}

Status PageFile::VerifyBlock(PageId id, const char* block) const {
  if (DecodeFixed32(block + 0) != kPageMagic) {
    return Status::Corruption("bad page magic on page " + std::to_string(id) +
                              " of " + path_);
  }
  const uint32_t version = DecodeFixed32(block + 4);
  if (version == 0 || version > kPageFormatVersion) {
    return Status::Corruption("unsupported page format version " +
                              std::to_string(version) + " on page " +
                              std::to_string(id) + " of " + path_);
  }
  const uint32_t stored_id = DecodeFixed32(block + 8);
  if (stored_id != id) {
    return Status::Corruption("misdirected page: block at slot " +
                              std::to_string(id) + " claims to be page " +
                              std::to_string(stored_id) + " in " + path_);
  }
  uint32_t crc = Crc32c(block, 12);
  crc = Crc32c(block + 16, kDiskPageSize - 16, crc);
  if (crc != DecodeFixed32(block + 12)) {
    return Status::Corruption("page checksum mismatch on page " +
                              std::to_string(id) + " of " + path_);
  }
  return Status::OK();
}

Status PageFile::ReadPageBlock(PageId id, char* block) {
  if (!is_open()) return Status::InvalidArgument("PageFile not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("read past end of page file");
  }
  FIX_RETURN_IF_ERROR(RetryTransient(
      [&] { return io_->Read(BlockOffset(id), block, kDiskPageSize); }));
  Status verified = VerifyBlock(id, block);
  if (!verified.ok()) {
    checksum_failures_.fetch_add(1, std::memory_order_relaxed);
    return verified;
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PageFile::WritePageBlock(PageId id, char* block) {
  if (!is_open()) return Status::InvalidArgument("PageFile not open");
  if (id > num_pages_) {
    return Status::OutOfRange("write past end of page file");
  }
  StampHeader(id, block);
  FIX_RETURN_IF_ERROR(RetryTransient(
      [&] { return io_->Write(BlockOffset(id), block, kDiskPageSize); }));
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PageFile::ReadPage(PageId id, char* buf) {
  char block[kDiskPageSize];
  FIX_RETURN_IF_ERROR(ReadPageBlock(id, block));
  std::memcpy(buf, block + kPageHeaderSize, kPageSize);
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const char* buf) {
  char block[kDiskPageSize];
  std::memcpy(block + kPageHeaderSize, buf, kPageSize);
  return WritePageBlock(id, block);
}

Status PageFile::Sync() {
  if (!is_open()) return Status::InvalidArgument("PageFile not open");
  return io_->Sync();
}

Status PageFile::ReadRawBlock(PageId id, char* buf) {
  if (!is_open()) return Status::InvalidArgument("PageFile not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("raw read past end of page file");
  }
  return io_->Read(BlockOffset(id), buf, kDiskPageSize);
}

Status PageFile::WriteRawBlock(PageId id, const char* buf) {
  if (!is_open()) return Status::InvalidArgument("PageFile not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("raw write past end of page file");
  }
  return io_->Write(BlockOffset(id), buf, kDiskPageSize);
}

}  // namespace fix
