#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace fix {

namespace {
std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}
}  // namespace

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PageFile::Open(const std::string& path, bool create) {
  if (fd_ >= 0) return Status::InvalidArgument("PageFile already open");
  int flags = O_RDWR;
  if (create) flags |= O_CREAT | O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return Status::IOError(Errno("open", path));
  path_ = path;
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return Status::IOError(Errno("lseek", path));
  if (size % kPageSize != 0) {
    return Status::Corruption("page file size not page-aligned: " + path);
  }
  num_pages_ = static_cast<PageId>(size / kPageSize);
  return Status::OK();
}

Status PageFile::Close() {
  if (fd_ < 0) return Status::OK();
  if (::close(fd_) != 0) {
    fd_ = -1;
    return Status::IOError(Errno("close", path_));
  }
  fd_ = -1;
  return Status::OK();
}

Status PageFile::AllocatePage(PageId* id) {
  if (fd_ < 0) return Status::InvalidArgument("PageFile not open");
  std::vector<char> zeros(kPageSize, 0);
  *id = num_pages_;
  FIX_RETURN_IF_ERROR(WritePage(*id, zeros.data()));
  ++num_pages_;
  return Status::OK();
}

Status PageFile::ReadPage(PageId id, char* buf) {
  if (fd_ < 0) return Status::InvalidArgument("PageFile not open");
  if (id >= num_pages_) {
    return Status::OutOfRange("read past end of page file");
  }
  ssize_t n = ::pread(fd_, buf, kPageSize,
                      static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(Errno("pread", path_));
  }
  ++reads_;
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const char* buf) {
  if (fd_ < 0) return Status::InvalidArgument("PageFile not open");
  if (id > num_pages_) {
    return Status::OutOfRange("write past end of page file");
  }
  ssize_t n = ::pwrite(fd_, buf, kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(Errno("pwrite", path_));
  }
  ++writes_;
  return Status::OK();
}

Status PageFile::Sync() {
  if (fd_ < 0) return Status::InvalidArgument("PageFile not open");
  if (::fsync(fd_) != 0) return Status::IOError(Errno("fsync", path_));
  return Status::OK();
}

}  // namespace fix
