#include "storage/btree.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fix {

namespace {
constexpr uint8_t kLeaf = 0;
constexpr uint8_t kInner = 1;
}  // namespace

/// A page superseded by a COW batch: freed while building `freed_gen`, so
/// it belongs to generations strictly below that.
struct RetiredPage {
  PageId page = kInvalidPage;
  uint64_t freed_gen = 0;
};

/// Shared writer/reader state, heap-allocated so the tree stays movable
/// while snapshots hold stable pointers. Reader-visible fields (`live`,
/// `published`) are guarded by `mu`; everything else is writer-owned and
/// only ever touched by the single write thread.
struct BTreeState {
  // LOCK-ORDER: 9 BTreeState::mu
  Mutex mu;
  /// Pinned generations: generation -> live Snapshot objects carrying it.
  /// Ordered so the minimum pinned generation is begin().
  std::map<uint64_t, uint64_t> live FIX_GUARDED_BY(mu);

  // Writer-owned bookkeeping (single write thread; no lock needed).
  uint64_t generation = 0;    ///< last published generation
  uint64_t working_gen = 0;   ///< generation under construction (in batch)
  uint64_t durable_gen = 0;   ///< last generation durable on disk (meta/WAL)
  bool in_batch = false;
  std::unordered_set<PageId> fresh;      ///< pages allocated by this batch
  std::deque<RetiredPage> retired;       ///< superseded, awaiting reclaim
  std::vector<PageId> reusable;          ///< reclaimed, ready for NewAt

  // Declared last: destroyed first, while `mu`/`live` are still alive (the
  // snapshot destructor locks `mu` to unpin its generation).
  std::shared_ptr<const BTree::Snapshot> published FIX_GUARDED_BY(mu);
};

BTree::Snapshot::~Snapshot() {
  if (state_ == nullptr) return;
  MutexLock lock(state_->mu);
  auto it = state_->live.find(generation);
  FIX_DCHECK(it != state_->live.end());
  if (it != state_->live.end() && --it->second == 0) {
    state_->live.erase(it);
  }
}

BTree::BTree(BufferPool* pool)
    : pool_(pool), state_(std::make_unique<BTreeState>()) {}

BTree::~BTree() = default;
BTree::BTree(BTree&&) noexcept = default;
BTree& BTree::operator=(BTree&&) noexcept = default;

uint64_t BTree::generation() const {
  MutexLock lock(state_->mu);
  return state_->published ? state_->published->generation : 0;
}

uint64_t BTree::num_entries() const {
  MutexLock lock(state_->mu);
  return state_->published ? state_->published->num_entries : num_entries_;
}

bool BTree::in_batch() const { return state_->in_batch; }

void BTree::Publish(uint64_t gen) {
  auto snap = std::make_shared<Snapshot>();
  snap->root = root_;
  snap->height = height_;
  snap->num_entries = num_entries_;
  snap->generation = gen;
  snap->state_ = state_.get();
  std::shared_ptr<const Snapshot> old;
  {
    MutexLock lock(state_->mu);
    ++state_->live[gen];
    old = std::move(state_->published);
    state_->published = std::move(snap);
    state_->generation = gen;
  }
  // `old` dies here, outside the lock: its destructor re-acquires mu.
}

// --- node accessors ---------------------------------------------------------

uint8_t BTree::NodeType(const char* page) {
  return static_cast<uint8_t>(page[0]);
}

uint16_t BTree::NodeCount(const char* page) {
  uint16_t v;
  std::memcpy(&v, page + 2, sizeof(v));
  return v;
}

void BTree::SetNodeType(char* page, uint8_t type) {
  page[0] = static_cast<char>(type);
}

void BTree::SetNodeCount(char* page, uint16_t count) {
  std::memcpy(page + 2, &count, sizeof(count));
}

uint32_t BTree::NodeLink(const char* page) { return DecodeFixed32(page + 4); }

void BTree::SetNodeLink(char* page, uint32_t link) {
  EncodeFixed32(page + 4, link);
}

uint32_t BTree::InnerChild(const char* page, uint16_t i) const {
  // Child 0 lives in the link slot; child i+1 follows separator i.
  if (i == 0) return NodeLink(page);
  return DecodeFixed32(InnerEntry(page, i - 1) + key_size_);
}

void BTree::SetInnerChild(char* page, uint16_t i, PageId child) const {
  if (i == 0) {
    SetNodeLink(page, child);
  } else {
    EncodeFixed32(InnerEntry(page, i - 1) + key_size_, child);
  }
}

int BTree::CompareKey(const char* a, std::string_view b) const {
  FIX_CHECK(b.size() == key_size_);
  return std::memcmp(a, b.data(), key_size_);
}

#if FIX_DCHECKS_ENABLED
void BTree::DcheckNodeInvariants(const char* page) const {
  uint8_t type = NodeType(page);
  FIX_DCHECK(type == kLeaf || type == kInner);
  uint16_t count = NodeCount(page);
  if (type == kLeaf) {
    FIX_DCHECK_LE(count, LeafCapacity());
    for (uint16_t i = 1; i < count; ++i) {
      // Non-descending: duplicate keys are stored adjacent.
      FIX_DCHECK_LE(
          std::memcmp(LeafEntry(page, i - 1), LeafEntry(page, i), key_size_),
          0);
    }
  } else {
    // An inner node always carries at least one separator (count+1 children)
    // and its child-0 link must be live.
    FIX_DCHECK_GE(count, 1);
    FIX_DCHECK_LE(count, InnerCapacity());
    FIX_DCHECK_NE(NodeLink(page), kInvalidPage);
    for (uint16_t i = 1; i < count; ++i) {
      FIX_DCHECK_LE(
          std::memcmp(InnerEntry(page, i - 1), InnerEntry(page, i), key_size_),
          0);
    }
    for (uint16_t i = 0; i <= count; ++i) {
      FIX_DCHECK_NE(InnerChild(page, i), kInvalidPage);
    }
  }
}
#endif  // FIX_DCHECKS_ENABLED

uint16_t BTree::LeafLowerBound(const char* page, std::string_view key) const {
  uint16_t lo = 0, hi = NodeCount(page);
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (CompareKey(LeafEntry(page, mid), key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint16_t BTree::InnerChildIndex(const char* page, std::string_view key) const {
  // lower_bound over separators: on equality we stay LEFT. With duplicate
  // keys a run may span a split boundary, so descent lands at-or-before the
  // first occurrence and the leaf sibling chain absorbs the slack (Seek and
  // Get scan forward across leaves).
  uint16_t lo = 0, hi = NodeCount(page);
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (CompareKey(InnerEntry(page, mid), key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;  // child index in [0, count]
}

// --- meta -------------------------------------------------------------------

Status BTree::WriteMeta() {
  PageHandle meta;
  FIX_ASSIGN_OR_RETURN(meta, pool_->Fetch(0));
  char* p = meta.data();
  EncodeFixed32(p, kBTreeMagic);
  EncodeFixed32(p + 4, key_size_);
  EncodeFixed32(p + 8, value_size_);
  EncodeFixed32(p + 12, root_);
  EncodeFixed32(p + 16, height_);
  EncodeFixed64(p + 20, num_entries_);
  // Offset 28: generation of the checkpointed root. Pre-generation files
  // carry zero here (pages are zeroed at allocation), which decodes as
  // generation 0 — exactly right for a tree that has never batch-committed.
  EncodeFixed64(p + 28, state_->generation);
  meta.MarkDirty();
  return Status::OK();
}

Status BTree::ReadMeta() {
  PageHandle meta;
  FIX_ASSIGN_OR_RETURN(meta, pool_->Fetch(0));
  const char* p = meta.data();
  if (DecodeFixed32(p) != kBTreeMagic) {
    return Status::Corruption("not a FIX B+-tree file");
  }
  key_size_ = DecodeFixed32(p + 4);
  value_size_ = DecodeFixed32(p + 8);
  root_ = DecodeFixed32(p + 12);
  height_ = DecodeFixed32(p + 16);
  num_entries_ = DecodeFixed64(p + 20);
  state_->generation = DecodeFixed64(p + 28);
  if (key_size_ == 0 || key_size_ > 512 || value_size_ > 1024) {
    return Status::Corruption("implausible B+-tree geometry");
  }
  return Status::OK();
}

Result<BTree> BTree::Create(BufferPool* pool, uint32_t key_size,
                            uint32_t value_size) {
  if (key_size == 0 || key_size > 512) {
    return Status::InvalidArgument("key_size must be in [1, 512]");
  }
  if (pool->file()->num_pages() != 0) {
    return Status::InvalidArgument("BTree::Create requires an empty file");
  }
  BTree tree(pool);
  tree.key_size_ = key_size;
  tree.value_size_ = value_size;
  // Page 0: meta. Page 1: empty leaf root.
  PageHandle meta;
  FIX_ASSIGN_OR_RETURN(meta, pool->New());
  FIX_CHECK(meta.page_id() == 0);
  meta.Release();
  PageHandle root;
  FIX_ASSIGN_OR_RETURN(root, pool->New());
  SetNodeType(root.data(), kLeaf);
  SetNodeCount(root.data(), 0);
  SetNodeLink(root.data(), kInvalidPage);
  root.MarkDirty();
  tree.root_ = root.page_id();
  root.Release();
  FIX_RETURN_IF_ERROR(tree.WriteMeta());
  tree.Publish(0);
  return tree;
}

Result<BTree> BTree::Open(BufferPool* pool) {
  BTree tree(pool);
  FIX_RETURN_IF_ERROR(tree.ReadMeta());
  tree.Publish(tree.state_->generation);
  tree.state_->durable_gen = tree.state_->generation;
  return tree;
}

Result<BTree> BTree::OpenRecovered(BufferPool* pool, uint32_t key_size,
                                   uint32_t value_size,
                                   const WalCommit& commit) {
  if (key_size == 0 || key_size > 512 || value_size > 1024) {
    return Status::Corruption("implausible B+-tree geometry in WAL header");
  }
  BTree tree(pool);
  tree.key_size_ = key_size;
  tree.value_size_ = value_size;
  FIX_RETURN_IF_ERROR(tree.AdoptCommit(commit));
  return tree;
}

Status BTree::AdoptCommit(const WalCommit& commit) {
  const PageId num_pages = pool_->file()->num_pages();
  if (commit.root == 0 || commit.root == kInvalidPage ||
      commit.root >= num_pages) {
    return Status::Corruption("WAL commit root out of range: " +
                              std::to_string(commit.root));
  }
  if (commit.height == 0) {
    return Status::Corruption("WAL commit height is zero");
  }
  root_ = commit.root;
  height_ = commit.height;
  num_entries_ = commit.num_entries;
  Publish(commit.generation);
  state_->durable_gen = commit.generation;
  return Status::OK();
}

void BTree::AddReusablePages(const std::vector<PageId>& pages) {
  for (PageId p : pages) {
    if (p == 0 || p == kInvalidPage) continue;
    state_->reusable.push_back(p);
  }
}

// --- insert (legacy in-place path) ------------------------------------------

Status BTree::InsertRec(PageId node_id, std::string_view key,
                        std::string_view value, SplitResult* out) {
  PageHandle node;
  FIX_ASSIGN_OR_RETURN(node, pool_->Fetch(node_id));
  char* page = node.data();

  if (NodeType(page) == kLeaf) {
    uint16_t count = NodeCount(page);
    uint16_t pos = LeafLowerBound(page, key);
    if (count < LeafCapacity()) {
      char* slot = LeafEntry(page, pos);
      std::memmove(slot + LeafEntrySize(), slot,
                   (count - pos) * LeafEntrySize());
      std::memcpy(slot, key.data(), key_size_);
      std::memcpy(slot + key_size_, value.data(), value_size_);
      SetNodeCount(page, count + 1);
      node.MarkDirty();
      DcheckNodeInvariants(page);
      out->split = false;
      return Status::OK();
    }
    // Split the leaf: left keeps the first half, right gets the rest.
    PageHandle right;
    FIX_ASSIGN_OR_RETURN(right, pool_->New());
    char* rpage = right.data();
    SetNodeType(rpage, kLeaf);
    uint16_t mid = count / 2;
    uint16_t right_count = count - mid;
    std::memcpy(LeafEntry(rpage, 0), LeafEntry(page, mid),
                right_count * LeafEntrySize());
    SetNodeCount(rpage, right_count);
    SetNodeLink(rpage, NodeLink(page));
    SetNodeCount(page, mid);
    SetNodeLink(page, right.page_id());
    // Insert into whichever half owns position `pos`. Inserting at pos ==
    // mid (end of left) is order-correct even when key equals the
    // separator, because inner navigation stays left on equality.
    char* target;
    if (pos <= mid) {
      uint16_t c = NodeCount(page);
      target = LeafEntry(page, pos);
      std::memmove(target + LeafEntrySize(), target,
                   (c - pos) * LeafEntrySize());
      SetNodeCount(page, c + 1);
    } else {
      uint16_t rpos = pos - mid;
      uint16_t c = NodeCount(rpage);
      target = LeafEntry(rpage, rpos);
      std::memmove(target + LeafEntrySize(), target,
                   (c - rpos) * LeafEntrySize());
      SetNodeCount(rpage, c + 1);
    }
    std::memcpy(target, key.data(), key_size_);
    std::memcpy(target + key_size_, value.data(), value_size_);
    node.MarkDirty();
    right.MarkDirty();
    DcheckNodeInvariants(page);
    DcheckNodeInvariants(rpage);
    out->split = true;
    out->separator.assign(LeafEntry(rpage, 0), key_size_);
    out->right = right.page_id();
    return Status::OK();
  }

  // Inner node.
  uint16_t child_idx = InnerChildIndex(page, key);
  PageId child = InnerChild(page, child_idx);
  SplitResult child_split;
  // Release the pin across the recursive call to bound pin depth? No:
  // keeping the parent pinned during descent is standard latch coupling and
  // the pool capacity (>= 8) covers the maximum height we build.
  FIX_RETURN_IF_ERROR(InsertRec(child, key, value, &child_split));
  if (!child_split.split) {
    out->split = false;
    return Status::OK();
  }

  // Insert (separator, right) after child_idx.
  uint16_t count = NodeCount(page);
  uint16_t pos = child_idx;  // separator array position
  if (count < InnerCapacity()) {
    char* slot = InnerEntry(page, pos);
    std::memmove(slot + InnerEntrySize(), slot,
                 (count - pos) * InnerEntrySize());
    std::memcpy(slot, child_split.separator.data(), key_size_);
    EncodeFixed32(slot + key_size_, child_split.right);
    SetNodeCount(page, count + 1);
    node.MarkDirty();
    DcheckNodeInvariants(page);
    out->split = false;
    return Status::OK();
  }

  // Split the inner node. Assemble the full separator/child sequence in a
  // scratch buffer, then redistribute with the middle separator moving up.
  size_t entry = InnerEntrySize();
  std::string scratch;
  scratch.resize(static_cast<size_t>(count + 1) * entry);
  std::memcpy(scratch.data(), InnerEntry(page, 0), pos * entry);
  std::memcpy(scratch.data() + pos * entry, child_split.separator.data(),
              key_size_);
  EncodeFixed32(scratch.data() + pos * entry + key_size_, child_split.right);
  std::memcpy(scratch.data() + (pos + 1) * entry, InnerEntry(page, pos),
              (count - pos) * entry);
  uint16_t total = count + 1;
  uint16_t left_count = total / 2;
  // separator at index left_count moves up; right node gets the rest.
  const char* up = scratch.data() + left_count * entry;

  PageHandle right;
  FIX_ASSIGN_OR_RETURN(right, pool_->New());
  char* rpage = right.data();
  SetNodeType(rpage, kInner);
  uint16_t right_count = total - left_count - 1;
  SetNodeLink(rpage, DecodeFixed32(up + key_size_));  // child right of `up`
  std::memcpy(InnerEntry(rpage, 0), up + entry, right_count * entry);
  SetNodeCount(rpage, right_count);

  std::memcpy(InnerEntry(page, 0), scratch.data(), left_count * entry);
  SetNodeCount(page, left_count);

  node.MarkDirty();
  right.MarkDirty();
  DcheckNodeInvariants(page);
  DcheckNodeInvariants(rpage);
  out->split = true;
  out->separator.assign(up, key_size_);
  out->right = right.page_id();
  return Status::OK();
}

Status BTree::Insert(std::string_view key, std::string_view value) {
  if (key.size() != key_size_ || value.size() != value_size_) {
    return Status::InvalidArgument("key/value size mismatch");
  }
  if (state_->in_batch) return InsertCow(key, value);
  SplitResult split;
  FIX_RETURN_IF_ERROR(InsertRec(root_, key, value, &split));
  if (split.split) {
    // Grow a new root.
    PageHandle new_root;
    FIX_ASSIGN_OR_RETURN(new_root, pool_->New());
    char* page = new_root.data();
    SetNodeType(page, kInner);
    SetNodeCount(page, 1);
    SetNodeLink(page, root_);
    char* slot = InnerEntry(page, 0);
    std::memcpy(slot, split.separator.data(), key_size_);
    EncodeFixed32(slot + key_size_, split.right);
    new_root.MarkDirty();
    DcheckNodeInvariants(page);
    root_ = new_root.page_id();
    ++height_;
  }
  ++num_entries_;
  FIX_RETURN_IF_ERROR(WriteMeta());
  // Same generation, new shape: re-publish so later reads see this write.
  Publish(state_->generation);
  return Status::OK();
}

// --- bulk load --------------------------------------------------------------

Status BTree::BulkLoad(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  if (num_entries_ != 0 || height_ != 1) {
    return Status::InvalidArgument(
        "BulkLoad requires a freshly created empty tree");
  }
  {
    PageHandle root;
    FIX_ASSIGN_OR_RETURN(root, pool_->Fetch(root_));
    if (NodeType(root.data()) != kLeaf || NodeCount(root.data()) != 0) {
      return Status::InvalidArgument(
          "BulkLoad requires the root to be an empty leaf");
    }
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].first.size() != key_size_ ||
        entries[i].second.size() != value_size_) {
      return Status::InvalidArgument("key/value size mismatch at entry " +
                                     std::to_string(i));
    }
    if (i > 0 && std::memcmp(entries[i - 1].first.data(),
                             entries[i].first.data(), key_size_) > 0) {
      return Status::InvalidArgument("BulkLoad input not sorted at entry " +
                                     std::to_string(i));
    }
  }
  if (entries.empty()) return WriteMeta();

  // A node of the level currently being assembled: its page and the
  // smallest key in its subtree (the separator its parent will carry).
  struct LevelNode {
    std::string low_key;
    PageId page;
  };
  std::vector<LevelNode> level;

  // Leaves: packed full, left to right. The first leaf reuses the empty
  // root page so a small load never abandons it; the previous leaf stays
  // pinned just long enough to patch its sibling link.
  const size_t leaf_cap = LeafCapacity();
  level.reserve(entries.size() / leaf_cap + 1);
  PageHandle prev;
  for (size_t pos = 0; pos < entries.size();) {
    PageHandle leaf;
    if (pos == 0) {
      FIX_ASSIGN_OR_RETURN(leaf, pool_->Fetch(root_));
    } else {
      FIX_ASSIGN_OR_RETURN(leaf, pool_->New());
    }
    const size_t take = std::min(leaf_cap, entries.size() - pos);
    char* page = leaf.data();
    SetNodeType(page, kLeaf);
    SetNodeCount(page, static_cast<uint16_t>(take));
    SetNodeLink(page, kInvalidPage);
    for (size_t i = 0; i < take; ++i) {
      char* slot = LeafEntry(page, static_cast<uint16_t>(i));
      std::memcpy(slot, entries[pos + i].first.data(), key_size_);
      std::memcpy(slot + key_size_, entries[pos + i].second.data(),
                  value_size_);
    }
    leaf.MarkDirty();
    DcheckNodeInvariants(page);
    if (prev.valid()) {
      SetNodeLink(prev.data(), leaf.page_id());
      prev.MarkDirty();
    }
    level.push_back(LevelNode{entries[pos].first, leaf.page_id()});
    prev = std::move(leaf);
    pos += take;
  }
  prev.Release();

  // Inner levels, bottom up. Children pack InnerCapacity()+1 per node,
  // except that a chunk never strands a single child for the next node —
  // an inner node must hold at least one separator (two children).
  // InnerCapacity() >= 7 for every legal key size, so shrinking a full
  // chunk by one always leaves a valid node.
  const size_t max_children = static_cast<size_t>(InnerCapacity()) + 1;
  while (level.size() > 1) {
    std::vector<LevelNode> parents;
    parents.reserve(level.size() / max_children + 1);
    for (size_t i = 0; i < level.size();) {
      size_t take = std::min(max_children, level.size() - i);
      if (level.size() - i - take == 1) --take;
      PageHandle node;
      FIX_ASSIGN_OR_RETURN(node, pool_->New());
      char* page = node.data();
      SetNodeType(page, kInner);
      SetNodeCount(page, static_cast<uint16_t>(take - 1));
      SetNodeLink(page, level[i].page);
      for (size_t c = 1; c < take; ++c) {
        char* slot = InnerEntry(page, static_cast<uint16_t>(c - 1));
        std::memcpy(slot, level[i + c].low_key.data(), key_size_);
        EncodeFixed32(slot + key_size_, level[i + c].page);
      }
      node.MarkDirty();
      DcheckNodeInvariants(page);
      parents.push_back(LevelNode{std::move(level[i].low_key),
                                  node.page_id()});
      i += take;
    }
    level = std::move(parents);
    ++height_;
  }
  root_ = level[0].page;
  num_entries_ = entries.size();
  FIX_RETURN_IF_ERROR(WriteMeta());
  Publish(state_->generation);
  return Status::OK();
}

// --- lookup / iteration -----------------------------------------------------

Result<PageHandle> BTree::FindLeafFrom(PageId root, std::string_view key) {
  PageId current = root;
  for (;;) {
    PageHandle node;
    FIX_ASSIGN_OR_RETURN(node, pool_->Fetch(current));
    if (NodeType(node.data()) == kLeaf) return node;
    uint16_t idx = InnerChildIndex(node.data(), key);
    current = InnerChild(node.data(), idx);
  }
}

Result<std::string> BTree::Get(std::string_view key) {
  // Seek handles descent landing one leaf early (duplicate runs spanning a
  // split boundary) by following the sibling chain.
  Iterator it;
  FIX_ASSIGN_OR_RETURN(it, Seek(key));
  if (it.Valid() && it.key() == key) {
    return std::string(it.value());
  }
  return Status::NotFound("key not in B+-tree");
}

Status BTree::Delete(std::string_view key, std::string_view value) {
  if (key.size() != key_size_ || value.size() != value_size_) {
    return Status::InvalidArgument("key/value size mismatch");
  }
  if (state_->in_batch) return DeleteCow(key, value);
  Iterator it;
  FIX_ASSIGN_OR_RETURN(it, Seek(key));
  while (it.Valid() && it.key() == key) {
    if (it.value() == value) {
      // Remove from the leaf the iterator is parked on.
      char* page = it.leaf_.data();
      uint16_t count = NodeCount(page);
      char* slot = LeafEntry(page, it.index_);
      std::memmove(slot, slot + LeafEntrySize(),
                   (count - it.index_ - 1) * LeafEntrySize());
      SetNodeCount(page, count - 1);
      it.leaf_.MarkDirty();
      DcheckNodeInvariants(page);
      --num_entries_;
      FIX_RETURN_IF_ERROR(WriteMeta());
      Publish(state_->generation);
      return Status::OK();
    }
    FIX_RETURN_IF_ERROR(it.Next());
  }
  return Status::NotFound("entry not in B+-tree");
}

Result<BTree::Iterator> BTree::Seek(std::string_view key) {
  if (key.size() != key_size_) {
    return Status::InvalidArgument("key size mismatch");
  }
  Iterator it;
  it.tree_ = this;
  // Pin the published generation: the descent below (and every later
  // Next()) touches only that generation's immutable pages, so a writer
  // committing newer generations cannot perturb this iterator.
  {
    MutexLock lock(state_->mu);
    it.snap_ = state_->published;
  }
  FIX_CHECK(it.snap_ != nullptr);
  FIX_ASSIGN_OR_RETURN(it.leaf_, FindLeafFrom(it.snap_->root, key));
  it.index_ = LeafLowerBound(it.leaf_.data(), key);
  it.valid_ = true;
  // The lower bound may be past this leaf's last entry; hop forward.
  while (it.valid_ && it.index_ >= NodeCount(it.leaf_.data())) {
    uint32_t next = NodeLink(it.leaf_.data());
    if (next == kInvalidPage) {
      it.valid_ = false;
      break;
    }
    FIX_ASSIGN_OR_RETURN(it.leaf_, pool_->Fetch(next));
    it.index_ = 0;
  }
  return it;
}

Result<BTree::Iterator> BTree::SeekFirst() {
  std::string smallest(key_size_, '\0');
  return Seek(smallest);
}

std::string_view BTree::Iterator::key() const {
  FIX_CHECK(valid_);
  return std::string_view(tree_->LeafEntry(leaf_.data(), index_),
                          tree_->key_size_);
}

std::string_view BTree::Iterator::value() const {
  FIX_CHECK(valid_);
  return std::string_view(
      tree_->LeafEntry(leaf_.data(), index_) + tree_->key_size_,
      tree_->value_size_);
}

Status BTree::Iterator::Next() {
  FIX_CHECK(valid_);
  ++index_;
  while (index_ >= NodeCount(leaf_.data())) {
    uint32_t next = NodeLink(leaf_.data());
    if (next == kInvalidPage) {
      valid_ = false;
      return Status::OK();
    }
    FIX_ASSIGN_OR_RETURN(leaf_, tree_->pool_->Fetch(next));
    index_ = 0;
  }
  return Status::OK();
}

Status BTree::Flush() {
  FIX_RETURN_IF_ERROR(WriteMeta());
  return pool_->FlushAll();
}

Status BTree::Checkpoint() {
  FIX_RETURN_IF_ERROR(WriteMeta());
  FIX_RETURN_IF_ERROR(pool_->FlushAll());
  FIX_RETURN_IF_ERROR(pool_->file()->Sync());
  state_->durable_gen = state_->generation;
  return Status::OK();
}

// --- COW batch (generation N -> N+1) ----------------------------------------

Status BTree::BeginBatch() {
  if (state_->in_batch) {
    return Status::InvalidArgument("a COW batch is already open");
  }
  state_->working_gen = state_->generation + 1;
  state_->in_batch = true;
  FIX_DCHECK(state_->fresh.empty());
  return Status::OK();
}

Result<WalCommit> BTree::PrepareCommit() {
  if (!state_->in_batch) {
    return Status::InvalidArgument("no COW batch open");
  }
  // Every page of the pending generation must be durable BEFORE the commit
  // record: replay repoints the tree at these pages sight unseen.
  FIX_RETURN_IF_ERROR(pool_->FlushAll());
  FIX_RETURN_IF_ERROR(pool_->file()->Sync());
  WalCommit commit;
  commit.generation = state_->working_gen;
  commit.root = root_;
  commit.height = height_;
  commit.num_entries = num_entries_;
  return commit;
}

void BTree::FinalizeCommit() {
  FIX_CHECK(state_->in_batch);
  Publish(state_->working_gen);
  // The caller's WAL commit record is fsync'd, so the new generation is
  // durable even though the meta page still names the old root.
  state_->durable_gen = state_->working_gen;
  state_->fresh.clear();
  state_->in_batch = false;
}

void BTree::AbortBatch(bool blank_pages) {
  FIX_CHECK(state_->in_batch);
  {
    MutexLock lock(state_->mu);
    const Snapshot& s = *state_->published;
    root_ = s.root;
    height_ = s.height;
    num_entries_ = s.num_entries;
  }
  // Drop everything the batch wrote. The pages stay allocated in the file;
  // stamp them as empty blocks so a later scrub of the file stays clean
  // (a discarded-but-never-flushed page would otherwise read back as an
  // unwritten zero block with no valid header). When the caller cannot
  // prove its commit record is absent from the log (blank_pages == false),
  // the pages are left exactly as PrepareCommit flushed them — a replay
  // that adopts the record must find them intact — and are not recycled.
  std::string zero(kPageSize, '\0');
  for (PageId p : state_->fresh) {
    pool_->Discard(p);
    if (!blank_pages) continue;
    Status stamped = pool_->file()->WritePage(p, zero.data());
    if (!stamped.ok()) {
      FIX_LOG(Warning) << "BTree::AbortBatch: could not blank page " << p
                       << ": " << stamped.ToString();
    }
    state_->reusable.push_back(p);
  }
  state_->fresh.clear();
  // Un-retire: pages superseded by the aborted batch are still live in the
  // published generation. They sit at the tail (retirements are in batch
  // order).
  while (!state_->retired.empty() &&
         state_->retired.back().freed_gen == state_->working_gen) {
    state_->retired.pop_back();
  }
  state_->in_batch = false;
}

void BTree::PromoteRetired() {
  uint64_t min_live;
  {
    MutexLock lock(state_->mu);
    min_live =
        state_->live.empty() ? UINT64_MAX : state_->live.begin()->first;
  }
  // `retired` is ordered by freed_gen (batches commit in generation order),
  // so reclaimable entries form a prefix. A page freed while building
  // generation F belongs to generations < F only; it is recyclable once no
  // reader pins a generation below F (min_live >= F) and the durable root
  // is at or past F (overwriting it cannot damage crash recovery).
  while (!state_->retired.empty()) {
    const RetiredPage& front = state_->retired.front();
    if (front.freed_gen > min_live || front.freed_gen > state_->durable_gen) {
      break;
    }
    state_->reusable.push_back(front.page);
    state_->retired.pop_front();
  }
}

Result<PageHandle> BTree::AllocNodePage() {
  if (state_->reusable.empty()) PromoteRetired();
  PageHandle handle;
  if (!state_->reusable.empty()) {
    PageId id = state_->reusable.back();
    state_->reusable.pop_back();
    FIX_ASSIGN_OR_RETURN(handle, pool_->NewAt(id));
  } else {
    FIX_ASSIGN_OR_RETURN(handle, pool_->New());
  }
  state_->fresh.insert(handle.page_id());
  return handle;
}

bool BTree::IsFresh(PageId id) const {
  return state_->fresh.count(id) != 0;
}

void BTree::Retire(PageId id) {
  state_->retired.push_back(RetiredPage{id, state_->working_gen});
}

Result<PageHandle> BTree::CowPage(PageId old_id) {
  PageHandle old;
  FIX_ASSIGN_OR_RETURN(old, pool_->Fetch(old_id));
  PageHandle copy;
  FIX_ASSIGN_OR_RETURN(copy, AllocNodePage());
  std::memcpy(copy.data(), old.data(), kPageSize);
  copy.MarkDirty();
  old.Release();
  Retire(old_id);
  return copy;
}

Status BTree::DescendPath(std::string_view key, std::vector<PathFrame>* path,
                          PageId* leaf) {
  path->clear();
  PageId cur = root_;
  for (;;) {
    PageHandle node;
    FIX_ASSIGN_OR_RETURN(node, pool_->Fetch(cur));
    if (NodeType(node.data()) == kLeaf) {
      *leaf = cur;
      return Status::OK();
    }
    uint16_t idx = InnerChildIndex(node.data(), key);
    path->push_back(PathFrame{cur, idx});
    cur = InnerChild(node.data(), idx);
  }
}

Status BTree::CowPath(std::vector<PathFrame>* path, PageId* leaf) {
  for (size_t i = 0; i < path->size(); ++i) {
    PathFrame& frame = (*path)[i];
    if (IsFresh(frame.id)) continue;
    PageHandle copy;
    FIX_ASSIGN_OR_RETURN(copy, CowPage(frame.id));
    const PageId new_id = copy.page_id();
    copy.Release();
    if (i == 0) {
      root_ = new_id;
    } else {
      // The parent is fresh (processed on an earlier iteration).
      PageHandle parent;
      FIX_ASSIGN_OR_RETURN(parent, pool_->Fetch((*path)[i - 1].id));
      SetInnerChild(parent.data(), (*path)[i - 1].slot, new_id);
      parent.MarkDirty();
    }
    frame.id = new_id;
  }
  if (!IsFresh(*leaf)) {
    PageHandle copy;
    FIX_ASSIGN_OR_RETURN(copy, CowPage(*leaf));
    const PageId new_id = copy.page_id();
    copy.Release();
    if (path->empty()) {
      root_ = new_id;
    } else {
      PageHandle parent;
      FIX_ASSIGN_OR_RETURN(parent, pool_->Fetch(path->back().id));
      SetInnerChild(parent.data(), path->back().slot, new_id);
      parent.MarkDirty();
    }
    // The copy has a new page id, so the previous leaf's sibling link (which
    // names the original) must be repointed in the new generation.
    FIX_RETURN_IF_ERROR(CowPatchPredecessor(*path, new_id));
    *leaf = new_id;
  }
  return Status::OK();
}

Status BTree::CowPatchPredecessor(const std::vector<PathFrame>& path,
                                  PageId new_leaf) {
  // Walk left along the leaf chain, copying as we go: the predecessor of
  // the copied leaf must point at the copy, and if that predecessor is not
  // itself part of the new generation it must be copied too — which renames
  // it and cascades the same obligation one leaf further left. The cascade
  // terminates at a fresh leaf or the chain head. `stack` mirrors the
  // root-to-parent descent of the leaf whose predecessor we currently need.
  std::vector<PathFrame> stack = path;
  PageId target = new_leaf;  // link value the predecessor must carry
  for (;;) {
    // Step left: the predecessor lives under the deepest ancestor where we
    // did not take child 0.
    while (!stack.empty() && stack.back().slot == 0) stack.pop_back();
    if (stack.empty()) return Status::OK();  // chain head: no predecessor
    --stack.back().slot;
    PageId cur;
    {
      PageHandle parent;
      FIX_ASSIGN_OR_RETURN(parent, pool_->Fetch(stack.back().id));
      cur = InnerChild(parent.data(), stack.back().slot);
    }
    // Rightmost descent to the predecessor leaf, copying inner nodes on the
    // way down (their child pointers get patched beneath them).
    for (;;) {
      PageHandle node;
      FIX_ASSIGN_OR_RETURN(node, pool_->Fetch(cur));
      if (NodeType(node.data()) == kLeaf) {
        if (IsFresh(cur)) {
          SetNodeLink(node.data(), target);
          node.MarkDirty();
          return Status::OK();
        }
        node.Release();
        PageHandle copy;
        FIX_ASSIGN_OR_RETURN(copy, CowPage(cur));
        SetNodeLink(copy.data(), target);
        copy.MarkDirty();
        const PageId new_id = copy.page_id();
        copy.Release();
        PageHandle parent;
        FIX_ASSIGN_OR_RETURN(parent, pool_->Fetch(stack.back().id));
        SetInnerChild(parent.data(), stack.back().slot, new_id);
        parent.MarkDirty();
        // This leaf was renamed too: its own predecessor must be patched.
        target = new_id;
        break;
      }
      if (!IsFresh(cur)) {
        node.Release();
        PageHandle copy;
        FIX_ASSIGN_OR_RETURN(copy, CowPage(cur));
        const PageId new_id = copy.page_id();
        copy.Release();
        PageHandle parent;
        FIX_ASSIGN_OR_RETURN(parent, pool_->Fetch(stack.back().id));
        SetInnerChild(parent.data(), stack.back().slot, new_id);
        parent.MarkDirty();
        cur = new_id;
        FIX_ASSIGN_OR_RETURN(node, pool_->Fetch(cur));
      }
      const uint16_t count = NodeCount(node.data());
      stack.push_back(PathFrame{cur, count});
      cur = InnerChild(node.data(), count);
    }
  }
}

Status BTree::InsertCow(std::string_view key, std::string_view value) {
  std::vector<PathFrame> path;
  PageId leaf_id = kInvalidPage;
  FIX_RETURN_IF_ERROR(DescendPath(key, &path, &leaf_id));
  FIX_RETURN_IF_ERROR(CowPath(&path, &leaf_id));

  // Every node on the path is now fresh: mutate in place, splitting upward
  // iteratively along the recorded path.
  bool pending = false;
  std::string sep;
  PageId right_id = kInvalidPage;
  {
    PageHandle leaf;
    FIX_ASSIGN_OR_RETURN(leaf, pool_->Fetch(leaf_id));
    char* page = leaf.data();
    uint16_t count = NodeCount(page);
    uint16_t pos = LeafLowerBound(page, key);
    if (count < LeafCapacity()) {
      char* slot = LeafEntry(page, pos);
      std::memmove(slot + LeafEntrySize(), slot,
                   (count - pos) * LeafEntrySize());
      std::memcpy(slot, key.data(), key_size_);
      std::memcpy(slot + key_size_, value.data(), value_size_);
      SetNodeCount(page, count + 1);
      leaf.MarkDirty();
      DcheckNodeInvariants(page);
    } else {
      // Split: same shape as the legacy path, but the right sibling is a
      // fresh page and the left (this leaf) is already fresh, so the new
      // right leaf's predecessor needs no chain patch.
      PageHandle right;
      FIX_ASSIGN_OR_RETURN(right, AllocNodePage());
      char* rpage = right.data();
      SetNodeType(rpage, kLeaf);
      uint16_t mid = count / 2;
      uint16_t right_count = count - mid;
      std::memcpy(LeafEntry(rpage, 0), LeafEntry(page, mid),
                  right_count * LeafEntrySize());
      SetNodeCount(rpage, right_count);
      SetNodeLink(rpage, NodeLink(page));
      SetNodeCount(page, mid);
      SetNodeLink(page, right.page_id());
      char* target;
      if (pos <= mid) {
        uint16_t c = NodeCount(page);
        target = LeafEntry(page, pos);
        std::memmove(target + LeafEntrySize(), target,
                     (c - pos) * LeafEntrySize());
        SetNodeCount(page, c + 1);
      } else {
        uint16_t rpos = pos - mid;
        uint16_t c = NodeCount(rpage);
        target = LeafEntry(rpage, rpos);
        std::memmove(target + LeafEntrySize(), target,
                     (c - rpos) * LeafEntrySize());
        SetNodeCount(rpage, c + 1);
      }
      std::memcpy(target, key.data(), key_size_);
      std::memcpy(target + key_size_, value.data(), value_size_);
      leaf.MarkDirty();
      right.MarkDirty();
      DcheckNodeInvariants(page);
      DcheckNodeInvariants(rpage);
      pending = true;
      sep.assign(LeafEntry(rpage, 0), key_size_);
      right_id = right.page_id();
    }
  }

  for (size_t i = path.size(); pending && i-- > 0;) {
    PageHandle node;
    FIX_ASSIGN_OR_RETURN(node, pool_->Fetch(path[i].id));
    char* page = node.data();
    uint16_t count = NodeCount(page);
    uint16_t pos = path[i].slot;
    if (count < InnerCapacity()) {
      char* slot = InnerEntry(page, pos);
      std::memmove(slot + InnerEntrySize(), slot,
                   (count - pos) * InnerEntrySize());
      std::memcpy(slot, sep.data(), key_size_);
      EncodeFixed32(slot + key_size_, right_id);
      SetNodeCount(page, count + 1);
      node.MarkDirty();
      DcheckNodeInvariants(page);
      pending = false;
      break;
    }
    // Split the inner node (scratch assembly, middle separator moves up).
    size_t entry = InnerEntrySize();
    std::string scratch;
    scratch.resize(static_cast<size_t>(count + 1) * entry);
    std::memcpy(scratch.data(), InnerEntry(page, 0), pos * entry);
    std::memcpy(scratch.data() + pos * entry, sep.data(), key_size_);
    EncodeFixed32(scratch.data() + pos * entry + key_size_, right_id);
    std::memcpy(scratch.data() + (pos + 1) * entry, InnerEntry(page, pos),
                (count - pos) * entry);
    uint16_t total = count + 1;
    uint16_t left_count = total / 2;
    const char* up = scratch.data() + left_count * entry;

    PageHandle right;
    FIX_ASSIGN_OR_RETURN(right, AllocNodePage());
    char* rpage = right.data();
    SetNodeType(rpage, kInner);
    uint16_t right_count = total - left_count - 1;
    SetNodeLink(rpage, DecodeFixed32(up + key_size_));
    std::memcpy(InnerEntry(rpage, 0), up + entry, right_count * entry);
    SetNodeCount(rpage, right_count);

    std::memcpy(InnerEntry(page, 0), scratch.data(), left_count * entry);
    SetNodeCount(page, left_count);

    node.MarkDirty();
    right.MarkDirty();
    DcheckNodeInvariants(page);
    DcheckNodeInvariants(rpage);
    sep.assign(up, key_size_);
    right_id = right.page_id();
  }

  if (pending) {
    PageHandle new_root;
    FIX_ASSIGN_OR_RETURN(new_root, AllocNodePage());
    char* page = new_root.data();
    SetNodeType(page, kInner);
    SetNodeCount(page, 1);
    SetNodeLink(page, root_);
    char* slot = InnerEntry(page, 0);
    std::memcpy(slot, sep.data(), key_size_);
    EncodeFixed32(slot + key_size_, right_id);
    new_root.MarkDirty();
    DcheckNodeInvariants(page);
    root_ = new_root.page_id();
    ++height_;
  }
  ++num_entries_;
  return Status::OK();
}

Status BTree::DeleteCow(std::string_view key, std::string_view value) {
  // Locate lazily (no copying) and only COW the path once the entry to
  // remove is found; a miss leaves the working generation untouched.
  std::vector<PathFrame> path;
  PageId leaf_id = kInvalidPage;
  FIX_RETURN_IF_ERROR(DescendPath(key, &path, &leaf_id));
  for (;;) {
    int found = -1;
    bool past = false;
    {
      PageHandle leaf;
      FIX_ASSIGN_OR_RETURN(leaf, pool_->Fetch(leaf_id));
      const char* page = leaf.data();
      const uint16_t count = NodeCount(page);
      for (uint16_t i = LeafLowerBound(page, key); i < count; ++i) {
        if (CompareKey(LeafEntry(page, i), key) > 0) {
          past = true;
          break;
        }
        if (std::memcmp(LeafEntry(page, i) + key_size_, value.data(),
                        value_size_) == 0) {
          found = i;
          break;
        }
      }
    }
    if (found >= 0) {
      FIX_RETURN_IF_ERROR(CowPath(&path, &leaf_id));
      PageHandle leaf;
      FIX_ASSIGN_OR_RETURN(leaf, pool_->Fetch(leaf_id));
      char* page = leaf.data();
      uint16_t count = NodeCount(page);
      char* slot = LeafEntry(page, static_cast<uint16_t>(found));
      std::memmove(slot, slot + LeafEntrySize(),
                   (count - found - 1) * LeafEntrySize());
      SetNodeCount(page, count - 1);
      leaf.MarkDirty();
      DcheckNodeInvariants(page);
      --num_entries_;
      return Status::OK();
    }
    if (past) return Status::NotFound("entry not in B+-tree");
    // Duplicate run continues in the next leaf: advance via the path (not
    // the sibling link) so the frames stay aligned for the eventual COW.
    bool advanced = false;
    while (!path.empty()) {
      PathFrame& frame = path.back();
      PageHandle node;
      FIX_ASSIGN_OR_RETURN(node, pool_->Fetch(frame.id));
      if (frame.slot < NodeCount(node.data())) {
        ++frame.slot;
        PageId cur = InnerChild(node.data(), frame.slot);
        node.Release();
        for (;;) {
          PageHandle down;
          FIX_ASSIGN_OR_RETURN(down, pool_->Fetch(cur));
          if (NodeType(down.data()) == kLeaf) {
            leaf_id = cur;
            break;
          }
          path.push_back(PathFrame{cur, 0});
          cur = InnerChild(down.data(), 0);
        }
        advanced = true;
        break;
      }
      node.Release();
      path.pop_back();
    }
    if (!advanced) return Status::NotFound("entry not in B+-tree");
  }
}

// --- structural verification ------------------------------------------------

Status BTree::VerifyNode(PageId id, uint32_t depth,
                         std::unordered_set<PageId>* visited,
                         std::vector<PageId>* leaves) {
  const PageId num_pages = pool_->file()->num_pages();
  if (id == kInvalidPage || id == 0 || id >= num_pages) {
    return Status::Corruption("B+-tree node id out of range: " +
                              std::to_string(id));
  }
  if (!visited->insert(id).second) {
    return Status::Corruption("B+-tree cycle: page " + std::to_string(id) +
                              " reachable twice");
  }
  PageHandle node;
  FIX_ASSIGN_OR_RETURN(node, pool_->Fetch(id));
  const char* page = node.data();
  const uint8_t type = NodeType(page);
  const uint16_t count = NodeCount(page);

  if (type == kLeaf) {
    if (depth != height_) {
      return Status::Corruption("leaf page " + std::to_string(id) +
                                " at depth " + std::to_string(depth) +
                                ", expected " + std::to_string(height_));
    }
    // count == 0 is legal (lazy deletion can empty a leaf).
    if (count > LeafCapacity()) {
      return Status::Corruption("leaf page " + std::to_string(id) +
                                " count exceeds capacity");
    }
    for (uint16_t i = 1; i < count; ++i) {
      if (std::memcmp(LeafEntry(page, i - 1), LeafEntry(page, i), key_size_) >
          0) {
        return Status::Corruption("keys out of order in leaf page " +
                                  std::to_string(id));
      }
    }
    leaves->push_back(id);
    return Status::OK();
  }

  if (type != kInner) {
    return Status::Corruption("bad node type " + std::to_string(type) +
                              " on page " + std::to_string(id));
  }
  if (depth >= height_) {
    return Status::Corruption("inner page " + std::to_string(id) +
                              " at leaf depth");
  }
  if (count == 0 || count > InnerCapacity()) {
    return Status::Corruption("inner page " + std::to_string(id) +
                              " separator count out of range");
  }
  for (uint16_t i = 1; i < count; ++i) {
    if (std::memcmp(InnerEntry(page, i - 1), InnerEntry(page, i), key_size_) >
        0) {
      return Status::Corruption("separators out of order in inner page " +
                                std::to_string(id));
    }
  }
  // Copy the child list out, then unpin before recursing: the walk must not
  // hold a pin per level of recursion fan-out, only per depth.
  std::vector<PageId> children;
  children.reserve(count + 1);
  for (uint16_t i = 0; i <= count; ++i) {
    children.push_back(InnerChild(page, i));
  }
  node.Release();
  for (PageId child : children) {
    FIX_RETURN_IF_ERROR(VerifyNode(child, depth + 1, visited, leaves));
  }
  return Status::OK();
}

Status BTree::VerifyStructure() {
  std::unordered_set<PageId> visited;
  return VerifyAndCollect(&visited);
}

Status BTree::VerifyAndCollect(std::unordered_set<PageId>* reachable) {
  reachable->clear();
  std::vector<PageId> leaves;
  FIX_RETURN_IF_ERROR(VerifyNode(root_, 1, reachable, &leaves));

  // The sibling chain must thread the leaves exactly in discovery (key)
  // order and terminate, keys must be globally non-descending across it,
  // and the entries it holds must add up to the meta count.
  uint64_t total_entries = 0;
  std::string prev_key;
  bool have_prev = false;
  for (size_t i = 0; i < leaves.size(); ++i) {
    PageHandle leaf;
    FIX_ASSIGN_OR_RETURN(leaf, pool_->Fetch(leaves[i]));
    const char* page = leaf.data();
    const uint16_t count = NodeCount(page);
    total_entries += count;
    for (uint16_t j = 0; j < count; ++j) {
      const char* key = LeafEntry(page, j);
      if (have_prev && std::memcmp(prev_key.data(), key, key_size_) > 0) {
        return Status::Corruption("keys out of order across leaf chain at page " +
                                  std::to_string(leaves[i]));
      }
      prev_key.assign(key, key_size_);
      have_prev = true;
    }
    const uint32_t link = NodeLink(page);
    const PageId expected =
        (i + 1 < leaves.size()) ? leaves[i + 1] : kInvalidPage;
    if (link != expected) {
      return Status::Corruption("leaf sibling chain broken at page " +
                                std::to_string(leaves[i]) + ": link " +
                                std::to_string(link) + ", expected " +
                                std::to_string(expected));
    }
  }
  if (total_entries != num_entries_) {
    return Status::Corruption("entry count mismatch: meta says " +
                              std::to_string(num_entries_) +
                              ", leaves hold " +
                              std::to_string(total_entries));
  }
  return Status::OK();
}

}  // namespace fix
