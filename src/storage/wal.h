// Write-ahead log for the COW B+-tree's commit protocol.
//
// The WAL is a sidecar file (`<index>.fix.wal`) of CRC32C-framed,
// length-prefixed records appended strictly sequentially. It is written
// through the same PageIo seam as the page file, so FaultInjectionPageIo
// can inject EIO, torn writes, fsync failures, and crash-after-N into the
// log itself — the recovery path is testable below the framing.
//
// On-disk format:
//
//   header (32 bytes, written once at creation):
//     offset  size  field
//     ------  ----  ---------------------------------------------------
//          0     4  magic "FXWL" (little-endian 0x4c575846)
//          4     4  format version (currently 1)
//          8     4  B+-tree key size   } geometry duplicated here so a
//         12     4  B+-tree value size } torn data-file meta page does
//                                        not strand recovery
//         16    12  reserved (zero)
//         28     4  CRC32C over bytes [0, 28)
//
//   records, appended back to back after the header:
//     len(4) | crc(4) | payload(len)
//   `crc` is CRC32C over the payload. A record whose length field runs
//   past EOF or whose CRC mismatches is a torn tail: it and everything
//   after it are discarded by recovery (the bytes before it are intact by
//   induction — records are appended and fsync'd in order).
//
//   commit payload (kCommit): type(1) | generation(8) | root(4) |
//   height(4) | num_entries(8) | indexed_docs(8) | next_seq(8), all
//   little-endian. One commit record is appended (and fsync'd) per durable
//   B+-tree generation; replay adopts the last valid commit whose
//   generation exceeds the data file's meta page. The trailing two fields
//   are opaque application state (FixIndex's document count and sequence
//   allocator) carried so a crash between the WAL commit and the sidecar
//   meta rewrite still recovers a self-consistent index.
//
// Durability contract (fail-stop): AppendCommit returns OK only after the
// record has been written AND fsync'd. If the fsync fails the Wal enters a
// dead state where every later append fails too — an unsynced commit is
// never acked, and the caller routes the error into the quarantine path.
//
// Thread-safety: none. The single writer owns the Wal; readers never touch
// it (snapshot pinning is in-memory).

#ifndef FIX_STORAGE_WAL_H_
#define FIX_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/page_io.h"

namespace fix {

/// "FXWL" little-endian — stamped at offset 0 of the log header.
inline constexpr uint32_t kWalMagic = 0x4c575846;
inline constexpr uint32_t kWalFormatVersion = 1;
inline constexpr uint64_t kWalHeaderSize = 32;

/// One durable B+-tree generation: everything recovery needs to re-point
/// the tree at the committed root.
struct WalCommit {
  uint64_t generation = 0;
  uint32_t root = 0;
  uint32_t height = 0;
  uint64_t num_entries = 0;
  // Opaque application state (the B+-tree neither reads nor writes these;
  // FixIndex stamps them before AppendCommit and restores them on replay).
  uint64_t indexed_docs = 0;
  uint64_t next_seq = 0;
};

/// Result of scanning a log: how much of it is intact and what the last
/// committed generation (if any) says.
struct WalScanResult {
  uint64_t records = 0;        ///< valid records before the torn tail
  uint64_t valid_bytes = 0;    ///< header + intact records
  bool torn_tail = false;      ///< trailing garbage/partial record present
  bool has_commit = false;     ///< at least one valid commit record
  WalCommit last_commit;       ///< meaningful iff has_commit
  uint32_t key_size = 0;       ///< geometry from the header
  uint32_t value_size = 0;
};

class Wal {
 public:
  using IoFactory = std::function<std::unique_ptr<PageIo>()>;

  /// Creates (truncating any predecessor) a log at `path` and writes the
  /// header. A null `factory` uses a plain file.
  [[nodiscard]] static Result<Wal> Create(const std::string& path,
                                          uint32_t key_size,
                                          uint32_t value_size,
                                          const IoFactory& factory);

  /// Opens an existing log, scanning it for the intact prefix. A missing
  /// file is created fresh with the given geometry (a WAL-less index from
  /// an older build simply has no committed generations to replay). The
  /// torn tail, if any, is left in place — call TruncateTail() once the
  /// adopted state is durable in the data file.
  [[nodiscard]] static Result<Wal> Open(const std::string& path,
                                        uint32_t key_size,
                                        uint32_t value_size,
                                        const IoFactory& factory);

  Wal() = default;
  Wal(Wal&&) = default;
  Wal& operator=(Wal&&) = default;

  /// Appends one commit record and fsyncs the log. Fail-stop: any write or
  /// sync failure poisons the Wal (every later append fails) — an unsynced
  /// commit is never acked.
  [[nodiscard]] Status AppendCommit(const WalCommit& commit);

  /// Discards everything after the intact prefix found at Open (or after
  /// the last successful append). No-op when the log is already clean.
  [[nodiscard]] Status TruncateTail();

  /// Empties the log back to a bare header (checkpoint: the data file's
  /// meta page now carries the committed root, so the records are spent).
  /// The truncate is fsync'd.
  [[nodiscard]] Status Reset();

  [[nodiscard]] Status Close();

  /// Scan summary as of Open, updated by successful appends.
  const WalScanResult& state() const { return state_; }
  const std::string& path() const { return path_; }
  bool failed() const { return failed_; }

  /// Read-only inspection of a log file (fixctl wal, fixdb_scrub --wal):
  /// validates the header, walks the records, and reports the intact
  /// prefix without mutating the file. NotFound if there is no log.
  [[nodiscard]] static Result<WalScanResult> Inspect(const std::string& path);

 private:
  [[nodiscard]] static Status WriteHeader(PageIo* io, uint32_t key_size,
                                          uint32_t value_size);
  [[nodiscard]] static Result<WalScanResult> ScanIo(PageIo* io);

  std::unique_ptr<PageIo> io_;
  std::string path_;
  WalScanResult state_;
  bool failed_ = false;  // fail-stop latch: set on any write/sync error
};

}  // namespace fix

#endif  // FIX_STORAGE_WAL_H_
