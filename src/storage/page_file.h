// PageFile: a file of fixed-size (4 KiB payload) pages addressed by page id.
//
// This is the framing layer of the storage substrate; the buffer pool sits
// on top of it and the B+-tree on top of that. Underneath, all raw byte I/O
// goes through a PageIo backend (page_io.h), which tests replace with a
// FaultInjectionPageIo to exercise the failure paths below the checksums.
//
// On-disk format (v1): each page occupies kDiskPageSize = 4120 bytes —
// a 24-byte header followed by the 4096-byte payload the upper layers see.
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------------
//        0     4  magic "FXPG" (little-endian 0x47505846 on disk)
//        4     4  format version (currently 1)
//        8     4  page id — catches misdirected reads/writes: a block that
//                 lands at the wrong offset fails this check even when its
//                 checksum is self-consistent
//       12     4  CRC32C over bytes [0,12) and [16,4120) of the disk block,
//                 i.e. everything except the CRC field itself, so any
//                 single-bit flip anywhere in the block is detected
//       16     8  write counter — session-monotonic LSN stamped on every
//                 write; purely diagnostic (scrub reports it for forensics)
//
// The payload stride stays 4096 so version-0 files (headerless, payload
// only) upgrade losslessly: each old page becomes the payload of a new
// framed page without re-packing any B+-tree node. The upgrade happens once,
// on open, through a temp file + rename so a crash mid-upgrade leaves the
// original intact.
//
// Transient backend failures (Status::Unavailable) are retried internally
// with exponential backoff; corruption and hard I/O errors propagate.

#ifndef FIX_STORAGE_PAGE_FILE_H_
#define FIX_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/page_io.h"

namespace fix {

/// Payload bytes per page — the page size the upper layers (buffer pool,
/// B+-tree) see. Unchanged from format v0.
inline constexpr size_t kPageSize = 4096;
using PageId = uint32_t;
inline constexpr PageId kInvalidPage = UINT32_MAX;

/// Per-page header: magic + version + page id + CRC32C + write counter.
inline constexpr size_t kPageHeaderSize = 24;
/// Physical bytes per page on disk (header + payload).
inline constexpr size_t kDiskPageSize = kPageHeaderSize + kPageSize;
/// "FXPG" little-endian.
inline constexpr uint32_t kPageMagic = 0x47505846;
inline constexpr uint32_t kPageFormatVersion = 1;

class PageFile {
 public:
  PageFile() = default;
  /// Uses the given backend instead of a plain file — this is how tests
  /// slide a FaultInjectionPageIo underneath the checksum layer.
  explicit PageFile(std::unique_ptr<PageIo> io) : io_(std::move(io)) {}
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens (or creates+truncates, if `create`) the file. Re-opening an
  /// existing file recovers the page count from its size. A headerless
  /// version-0 file is upgraded in place (temp file + rename) to the framed
  /// format; a v1 file with a torn final page (partial trailing block) has
  /// the tail truncated with a logged warning.
  [[nodiscard]] Status Open(const std::string& path, bool create);

  /// Like Open(create=false) but strictly read-only in effect: no format
  /// upgrade, no tail repair. Used by the scrub tool, which must never
  /// mutate the file it is diagnosing.
  [[nodiscard]] Status OpenForScrub(const std::string& path);

  [[nodiscard]] Status Close();

  bool is_open() const { return io_ != nullptr && io_->is_open(); }

  /// Extends the file by one page (metadata-only truncate; the block stays
  /// zero until first written) and returns its id. Reading a page that was
  /// never written after allocation reports kCorruption, as the zero block
  /// carries no valid header.
  [[nodiscard]] Status AllocatePage(PageId* id);

  /// Reads page `id` into `buf` (must hold kPageSize bytes). Verifies the
  /// header: magic/version mismatch, wrong embedded page id (misdirected
  /// I/O), or CRC failure all return kCorruption.
  [[nodiscard]] Status ReadPage(PageId id, char* buf);

  /// Writes kPageSize bytes from `buf` to page `id`, stamping a fresh
  /// header (page id, write counter, CRC32C).
  [[nodiscard]] Status WritePage(PageId id, const char* buf);

  /// Zero-copy variants for the buffer pool: `block` is a caller-owned
  /// kDiskPageSize buffer whose payload lives at block + kPageHeaderSize.
  /// ReadPageBlock verifies in place; WritePageBlock stamps the header in
  /// place (mutating the header region of `block`) and writes. Both skip the
  /// staging copy ReadPage/WritePage pay for their payload-only interface.
  [[nodiscard]] Status ReadPageBlock(PageId id, char* block);
  [[nodiscard]] Status WritePageBlock(PageId id, char* block);

  [[nodiscard]] Status Sync();

  PageId num_pages() const {
    return num_pages_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return path_; }

  /// Physical I/O counters (for the benchmark harnesses). Relaxed atomics:
  /// ReadPage/ReadPageBlock are safe from many threads concurrently (the
  /// backend uses positioned reads), and the bookkeeping must not race.
  /// Writes and allocation remain writer-exclusive.
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  void ResetCounters() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
  }

  /// Pages that failed header/CRC verification on read (never reset).
  uint64_t checksum_failures() const {
    return checksum_failures_.load(std::memory_order_relaxed);
  }
  /// Transient-fault retries performed (successful or not).
  uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

  /// Reads the raw kDiskPageSize block of page `id` without any header or
  /// checksum verification. For the scrub tool and tests only.
  [[nodiscard]] Status ReadRawBlock(PageId id, char* buf);
  /// Writes a raw kDiskPageSize block verbatim (no header stamping). For
  /// tests that simulate misdirected writes and bit rot.
  [[nodiscard]] Status WriteRawBlock(PageId id, const char* buf);

 private:
  [[nodiscard]] Status OpenInternal(const std::string& path, bool create,
                                    bool allow_repair);
  [[nodiscard]] Status UpgradeV0File(uint64_t size);
  /// Verifies the header of the block in `block` against expected id.
  [[nodiscard]] Status VerifyBlock(PageId id, const char* block) const;
  void StampHeader(PageId id, char* block);
  /// Runs `op` up to kMaxIoAttempts times while it returns Unavailable,
  /// sleeping with exponential backoff between attempts.
  template <typename Op>
  [[nodiscard]] Status RetryTransient(Op&& op);

  std::unique_ptr<PageIo> io_;
  // Relaxed atomics: AllocatePage (writer) extends the file while reader
  // threads bounds-check concurrently, and a reader-side eviction may flush
  // a dirty frame (stamping a write counter) while the writer also writes.
  std::atomic<PageId> num_pages_{0};
  std::string path_;
  std::atomic<uint64_t> write_counter_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  std::atomic<uint64_t> retries_{0};
};

}  // namespace fix

#endif  // FIX_STORAGE_PAGE_FILE_H_
