// PageFile: a file of fixed-size (4 KiB) pages addressed by page id.
//
// This is the lowest layer of the storage substrate; the buffer pool sits on
// top of it and the B+-tree on top of that. Reads and writes use
// pread/pwrite so the file offset is never shared state.

#ifndef FIX_STORAGE_PAGE_FILE_H_
#define FIX_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace fix {

inline constexpr size_t kPageSize = 4096;
using PageId = uint32_t;
inline constexpr PageId kInvalidPage = UINT32_MAX;

class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens (or creates, if `create`) the file. Re-opening an existing file
  /// recovers the page count from its size, which must be page-aligned.
  [[nodiscard]] Status Open(const std::string& path, bool create);

  [[nodiscard]] Status Close();

  bool is_open() const { return fd_ >= 0; }

  /// Extends the file by one zeroed page and returns its id.
  [[nodiscard]] Status AllocatePage(PageId* id);

  /// Reads page `id` into `buf` (must hold kPageSize bytes).
  [[nodiscard]] Status ReadPage(PageId id, char* buf);

  /// Writes kPageSize bytes from `buf` to page `id`.
  [[nodiscard]] Status WritePage(PageId id, const char* buf);

  [[nodiscard]] Status Sync();

  PageId num_pages() const { return num_pages_; }
  const std::string& path() const { return path_; }

  /// Physical I/O counters (for the benchmark harnesses).
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  void ResetCounters() { reads_ = writes_ = 0; }

 private:
  int fd_ = -1;
  PageId num_pages_ = 0;
  std::string path_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace fix

#endif  // FIX_STORAGE_PAGE_FILE_H_
