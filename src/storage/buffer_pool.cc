#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"
#include "common/metrics_registry.h"

namespace fix {

namespace {

// Process-wide mirrors of the per-pool hits_/misses_/evictions_ members
// (which tests assert on per instance; see docs/OBSERVABILITY.md).
Counter& PoolHits() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.bufferpool.hits", "ops", "page fetches served from the pool");
  return *c;
}
Counter& PoolMisses() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.bufferpool.misses", "ops", "page fetches that went to disk");
  return *c;
}
Counter& PoolEvictions() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.bufferpool.evictions", "ops", "frames reclaimed from the LRU list");
  return *c;
}

}  // namespace

PageHandle::PageHandle(BufferPool* pool, size_t frame, PageId page)
    : pool_(pool), frame_(frame), page_(page) {}

PageHandle::~PageHandle() { Release(); }

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_ = other.page_;
    other.pool_ = nullptr;
  }
  return *this;
}

char* PageHandle::data() {
  FIX_CHECK(valid());
  return pool_->FrameData(frame_);
}

const char* PageHandle::data() const {
  FIX_CHECK(valid());
  return pool_->FrameData(frame_);
}

void PageHandle::MarkDirty() {
  FIX_CHECK(valid());
  pool_->MarkDirty(frame_);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::~BufferPool() {
#if FIX_DCHECKS_ENABLED
  // Pin balance: every Fetch/New must have been matched by a Release by the
  // time the pool dies, else an outstanding PageHandle points into freed
  // frames.
  for (const Frame& f : frames_) {
    FIX_DCHECK_EQ(f.pins, 0);
  }
#endif
}

BufferPool::BufferPool(PageFile* file, size_t capacity) : file_(file) {
  FIX_CHECK(capacity >= 8);  // the B+-tree pins a handful of pages at once
  frames_.resize(capacity);
  free_frames_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_[i].data.resize(kDiskPageSize);
    free_frames_.push_back(capacity - 1 - i);
  }
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    ++hits_;
    PoolHits().Increment();
    Frame& f = frames_[it->second];
    FIX_DCHECK_EQ(f.page, id);
    FIX_DCHECK_GE(f.pins, 0);
    if (f.pins == 0 && f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pins;
    return PageHandle(this, it->second, id);
  }
  ++misses_;
  PoolMisses().Increment();
  size_t idx;
  FIX_ASSIGN_OR_RETURN(idx, GrabFrame());
  Frame& f = frames_[idx];
  Status read = file_->ReadPageBlock(id, f.data.data());
  if (!read.ok()) {
    // Nothing maps to this frame yet; hand it back so a failed read (e.g. a
    // corrupt page) does not permanently shrink the pool.
    free_frames_.push_back(idx);
    return read;
  }
  f.page = id;
  f.pins = 1;
  f.dirty = false;
  f.in_lru = false;
  page_to_frame_[id] = idx;
  return PageHandle(this, idx, id);
}

Result<PageHandle> BufferPool::New() {
  PageId id;
  FIX_RETURN_IF_ERROR(file_->AllocatePage(&id));
  size_t idx;
  FIX_ASSIGN_OR_RETURN(idx, GrabFrame());
  Frame& f = frames_[idx];
  std::memset(f.data.data(), 0, kDiskPageSize);
  f.page = id;
  f.pins = 1;
  f.dirty = true;  // a new page must reach disk even if never touched again
  f.in_lru = false;
  page_to_frame_[id] = idx;
  return PageHandle(this, idx, id);
}

Result<size_t> BufferPool::GrabFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::Internal("buffer pool exhausted: every frame is pinned");
  }
  size_t idx = lru_.back();
  Frame& f = frames_[idx];
  // Only unpinned frames live on the LRU list; evicting a pinned frame
  // would invalidate a live PageHandle.
  FIX_DCHECK_EQ(f.pins, 0);
  FIX_DCHECK_NE(f.page, kInvalidPage);
  if (f.dirty) {
    // Flush before unlinking: if the write fails the frame stays on the LRU
    // list (still cached, still dirty) instead of leaking.
    FIX_RETURN_IF_ERROR(file_->WritePageBlock(f.page, f.data.data()));
    f.dirty = false;
  }
  lru_.pop_back();
  f.in_lru = false;
  page_to_frame_.erase(f.page);
  f.page = kInvalidPage;
  ++evictions_;
  PoolEvictions().Increment();
  return idx;
}

void BufferPool::Unpin(size_t frame_idx) {
  FIX_DCHECK_LT(frame_idx, frames_.size());
  Frame& f = frames_[frame_idx];
  FIX_CHECK(f.pins > 0);
  FIX_DCHECK(!f.in_lru);  // pinned frames are never on the LRU list
  if (--f.pins == 0) {
    lru_.push_front(frame_idx);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.page != kInvalidPage && f.dirty) {
      FIX_RETURN_IF_ERROR(file_->WritePageBlock(f.page, f.data.data()));
      f.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace fix
