#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/metrics_registry.h"

namespace fix {

namespace {

// Process-wide mirrors of the per-pool hits_/misses_/evictions_ members
// (which tests assert on per instance; see docs/OBSERVABILITY.md).
Counter& PoolHits() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.bufferpool.hits", "ops", "page fetches served from the pool");
  return *c;
}
Counter& PoolMisses() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.bufferpool.misses", "ops", "page fetches that went to disk");
  return *c;
}
Counter& PoolEvictions() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.bufferpool.evictions", "ops", "frames reclaimed from the LRU list");
  return *c;
}

size_t FloorPow2(size_t n) {
  size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

PageHandle::PageHandle(BufferPool* pool, uint32_t shard, size_t frame,
                       PageId page)
    : pool_(pool), shard_(shard), frame_(frame), page_(page) {}

PageHandle::~PageHandle() { Release(); }

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    shard_ = other.shard_;
    frame_ = other.frame_;
    page_ = other.page_;
    other.pool_ = nullptr;
  }
  return *this;
}

char* PageHandle::data() {
  FIX_CHECK(valid());
  return pool_->FrameData(shard_, frame_);
}

const char* PageHandle::data() const {
  FIX_CHECK(valid());
  return pool_->FrameData(shard_, frame_);
}

void PageHandle::MarkDirty() {
  FIX_CHECK(valid());
  pool_->MarkDirty(shard_, frame_);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(shard_, frame_);
    pool_ = nullptr;
  }
}

BufferPool::~BufferPool() {
#if FIX_DCHECKS_ENABLED
  // Pin balance: every Fetch/New must have been matched by a Release by the
  // time the pool dies, else an outstanding PageHandle points into freed
  // frames.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const Frame& f : shard->frames) {
      FIX_DCHECK_EQ(f.pins, 0);
    }
  }
#endif
}

BufferPool::BufferPool(PageFile* file, size_t capacity, size_t shards)
    : file_(file), capacity_(capacity) {
  FIX_CHECK(capacity >= kMinFramesPerShard);  // the B+-tree pins several
                                              // pages at once
  size_t want = shards == 0 ? kMaxShards : shards;
  size_t num_shards = FloorPow2(
      std::min({want, kMaxShards, capacity / kMinFramesPerShard}));
  shard_mask_ = num_shards - 1;
  shards_.reserve(num_shards);
  size_t base = capacity / num_shards;
  size_t rem = capacity % num_shards;
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    size_t n = base + (s < rem ? 1 : 0);
    shard->frames.resize(n);
    shard->free_frames.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      shard->frames[i].data.resize(kDiskPageSize);
      shard->free_frames.push_back(n - 1 - i);
    }
    shards_.push_back(std::move(shard));
  }
}

Result<size_t> BufferPool::PinPageLocked(Shard* shard, PageId id) {
  auto it = shard->page_to_frame.find(id);
  if (it != shard->page_to_frame.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    PoolHits().Increment();
    Frame& f = shard->frames[it->second];
    FIX_DCHECK_EQ(f.page, id);
    FIX_DCHECK_GE(f.pins, 0);
    if (f.pins == 0 && f.in_lru) {
      shard->lru.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pins;
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  PoolMisses().Increment();
  size_t idx;
  FIX_ASSIGN_OR_RETURN(idx, GrabFrame(shard));
  Frame& f = shard->frames[idx];
  // The disk read runs under the shard mutex. That serializes misses within
  // one shard, but guarantees two threads fetching the same absent page
  // cannot both read it into different frames (no in-flight placeholder
  // state to track), and the other shards proceed unimpeded.
  Status read = file_->ReadPageBlock(id, f.data.data());
  if (!read.ok()) {
    // Nothing maps to this frame yet; hand it back so a failed read (e.g. a
    // corrupt page) does not permanently shrink the pool.
    shard->free_frames.push_back(idx);
    return read;
  }
  f.page = id;
  f.pins = 1;
  f.dirty = false;
  f.in_lru = false;
  shard->page_to_frame[id] = idx;
  return idx;
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  uint32_t s = ShardOf(id);
  Shard* shard = shards_[s].get();
  MutexLock lock(shard->mu);
  size_t idx;
  FIX_ASSIGN_OR_RETURN(idx, PinPageLocked(shard, id));
  return PageHandle(this, s, idx, id);
}

Result<PageHandle> BufferPool::New() {
  PageId id;
  FIX_RETURN_IF_ERROR(file_->AllocatePage(&id));
  uint32_t s = ShardOf(id);
  Shard* shard = shards_[s].get();
  MutexLock lock(shard->mu);
  size_t idx;
  FIX_ASSIGN_OR_RETURN(idx, GrabFrame(shard));
  Frame& f = shard->frames[idx];
  std::memset(f.data.data(), 0, kDiskPageSize);
  f.page = id;
  f.pins = 1;
  f.dirty = true;  // a new page must reach disk even if never touched again
  f.in_lru = false;
  shard->page_to_frame[id] = idx;
  return PageHandle(this, s, idx, id);
}

Result<PageHandle> BufferPool::NewAt(PageId id) {
  uint32_t s = ShardOf(id);
  Shard* shard = shards_[s].get();
  MutexLock lock(shard->mu);
  size_t idx;
  auto it = shard->page_to_frame.find(id);
  if (it != shard->page_to_frame.end()) {
    // Stale resident copy of the retired page: recycle its frame in place.
    idx = it->second;
    Frame& f = shard->frames[idx];
    FIX_DCHECK_EQ(f.pins, 0);  // no snapshot references a reclaimed page
    if (f.in_lru) {
      shard->lru.erase(f.lru_pos);
      f.in_lru = false;
    }
  } else {
    FIX_ASSIGN_OR_RETURN(idx, GrabFrame(shard));
    shard->page_to_frame[id] = idx;
  }
  Frame& f = shard->frames[idx];
  std::memset(f.data.data(), 0, kDiskPageSize);
  f.page = id;
  f.pins = 1;
  f.dirty = true;
  f.in_lru = false;
  return PageHandle(this, s, idx, id);
}

void BufferPool::Discard(PageId id) {
  uint32_t s = ShardOf(id);
  Shard* shard = shards_[s].get();
  MutexLock lock(shard->mu);
  auto it = shard->page_to_frame.find(id);
  if (it == shard->page_to_frame.end()) return;
  Frame& f = shard->frames[it->second];
  FIX_DCHECK_EQ(f.pins, 0);
  if (f.in_lru) {
    shard->lru.erase(f.lru_pos);
    f.in_lru = false;
  }
  f.dirty = false;
  f.page = kInvalidPage;
  shard->free_frames.push_back(it->second);
  shard->page_to_frame.erase(it);
}

Result<size_t> BufferPool::GrabFrame(Shard* shard) {
  if (!shard->free_frames.empty()) {
    size_t idx = shard->free_frames.back();
    shard->free_frames.pop_back();
    return idx;
  }
  if (shard->lru.empty()) {
    return Status::Internal("buffer pool exhausted: every frame is pinned");
  }
  size_t idx = shard->lru.back();
  Frame& f = shard->frames[idx];
  // Only unpinned frames live on the LRU list; evicting a pinned frame
  // would invalidate a live PageHandle.
  FIX_DCHECK_EQ(f.pins, 0);
  FIX_DCHECK_NE(f.page, kInvalidPage);
  if (f.dirty) {
    // Flush before unlinking: if the write fails the frame stays on the LRU
    // list (still cached, still dirty) instead of leaking.
    FIX_RETURN_IF_ERROR(file_->WritePageBlock(f.page, f.data.data()));
    f.dirty = false;
  }
  shard->lru.pop_back();
  f.in_lru = false;
  shard->page_to_frame.erase(f.page);
  f.page = kInvalidPage;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  PoolEvictions().Increment();
  return idx;
}

void BufferPool::Unpin(uint32_t shard_idx, size_t frame_idx) {
  Shard* shard = shards_[shard_idx].get();
  MutexLock lock(shard->mu);
  FIX_DCHECK_LT(frame_idx, shard->frames.size());
  Frame& f = shard->frames[frame_idx];
  FIX_CHECK(f.pins > 0);
  FIX_DCHECK(!f.in_lru);  // pinned frames are never on the LRU list
  if (--f.pins == 0) {
    shard->lru.push_front(frame_idx);
    f.lru_pos = shard->lru.begin();
    f.in_lru = true;
  }
}

void BufferPool::MarkDirty(uint32_t shard_idx, size_t frame_idx) {
  Shard* shard = shards_[shard_idx].get();
  MutexLock lock(shard->mu);
  shard->frames[frame_idx].dirty = true;
}

Status BufferPool::FlushAll() {
  for (std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(shard->mu);
    for (Frame& f : shard->frames) {
      if (f.page != kInvalidPage && f.dirty) {
        FIX_RETURN_IF_ERROR(file_->WritePageBlock(f.page, f.data.data()));
        f.dirty = false;
      }
    }
  }
  return Status::OK();
}

}  // namespace fix
