#include "storage/wal.h"

#include <cstring>
#include <vector>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/metrics_registry.h"

namespace fix {

namespace {

constexpr uint8_t kCommit = 1;
constexpr size_t kCommitPayloadSize = 1 + 8 + 4 + 4 + 8 + 8 + 8;
constexpr size_t kRecordFrameSize = 8;  // len(4) + crc(4)

// Process-wide WAL health counters (see docs/OBSERVABILITY.md).
Counter& WalAppends() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.wal.appends", "ops", "commit records appended and fsync'd");
  return *c;
}
Counter& WalReplays() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.wal.replayed", "ops",
      "committed generations adopted from the log at open");
  return *c;
}
Counter& WalTornTails() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.wal.torn_tails", "ops",
      "torn/partial record tails discarded by recovery");
  return *c;
}
Counter& WalSyncFailures() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.wal.sync_failures", "ops",
      "fsync failures that fail-stopped a commit");
  return *c;
}
Gauge& WalGeneration() {
  static Gauge* g = MetricsRegistry::Instance().FindOrCreateGauge(
      "fix.wal.generation", "generation",
      "last B+-tree generation committed through the log");
  return *g;
}

std::unique_ptr<PageIo> MakeIo(const Wal::IoFactory& factory) {
  if (factory) return factory();
  return std::make_unique<FilePageIo>();
}

void EncodeCommitPayload(const WalCommit& commit, char* buf) {
  buf[0] = static_cast<char>(kCommit);
  EncodeFixed64(buf + 1, commit.generation);
  EncodeFixed32(buf + 9, commit.root);
  EncodeFixed32(buf + 13, commit.height);
  EncodeFixed64(buf + 17, commit.num_entries);
  EncodeFixed64(buf + 25, commit.indexed_docs);
  EncodeFixed64(buf + 33, commit.next_seq);
}

}  // namespace

Status Wal::WriteHeader(PageIo* io, uint32_t key_size, uint32_t value_size) {
  char header[kWalHeaderSize];
  std::memset(header, 0, sizeof(header));
  EncodeFixed32(header, kWalMagic);
  EncodeFixed32(header + 4, kWalFormatVersion);
  EncodeFixed32(header + 8, key_size);
  EncodeFixed32(header + 12, value_size);
  EncodeFixed32(header + 28, Crc32c(header, 28));
  return io->Write(0, header, sizeof(header));
}

Result<WalScanResult> Wal::ScanIo(PageIo* io) {
  WalScanResult scan;
  uint64_t size;
  FIX_ASSIGN_OR_RETURN(size, io->Size());
  if (size < kWalHeaderSize) {
    return Status::Corruption("WAL truncated before the header");
  }
  char header[kWalHeaderSize];
  FIX_RETURN_IF_ERROR(io->Read(0, header, sizeof(header)));
  if (DecodeFixed32(header) != kWalMagic) {
    return Status::Corruption("not a FIX WAL file");
  }
  if (DecodeFixed32(header + 4) != kWalFormatVersion) {
    return Status::Corruption("unsupported WAL format version");
  }
  if (DecodeFixed32(header + 28) != Crc32c(header, 28)) {
    return Status::Corruption("WAL header CRC mismatch");
  }
  scan.key_size = DecodeFixed32(header + 8);
  scan.value_size = DecodeFixed32(header + 12);

  uint64_t pos = kWalHeaderSize;
  std::vector<char> payload;
  for (;;) {
    if (pos + kRecordFrameSize > size) {
      scan.torn_tail = pos < size;
      break;
    }
    char frame[kRecordFrameSize];
    FIX_RETURN_IF_ERROR(io->Read(pos, frame, sizeof(frame)));
    const uint32_t len = DecodeFixed32(frame);
    const uint32_t crc = DecodeFixed32(frame + 4);
    // A record longer than the file (or absurd: > 1 MiB) is a torn or
    // garbage length field, not an intact record.
    if (len > (1u << 20) || pos + kRecordFrameSize + len > size) {
      scan.torn_tail = true;
      break;
    }
    payload.resize(len);
    FIX_RETURN_IF_ERROR(io->Read(pos + kRecordFrameSize, payload.data(), len));
    if (Crc32c(payload.data(), len) != crc) {
      scan.torn_tail = true;
      break;
    }
    if (len == kCommitPayloadSize &&
        static_cast<uint8_t>(payload[0]) == kCommit) {
      scan.has_commit = true;
      scan.last_commit.generation = DecodeFixed64(payload.data() + 1);
      scan.last_commit.root = DecodeFixed32(payload.data() + 9);
      scan.last_commit.height = DecodeFixed32(payload.data() + 13);
      scan.last_commit.num_entries = DecodeFixed64(payload.data() + 17);
      scan.last_commit.indexed_docs = DecodeFixed64(payload.data() + 25);
      scan.last_commit.next_seq = DecodeFixed64(payload.data() + 33);
    }
    ++scan.records;
    pos += kRecordFrameSize + len;
  }
  scan.valid_bytes = pos;
  return scan;
}

Result<Wal> Wal::Create(const std::string& path, uint32_t key_size,
                        uint32_t value_size, const IoFactory& factory) {
  Wal wal;
  wal.io_ = MakeIo(factory);
  wal.path_ = path;
  FIX_RETURN_IF_ERROR(wal.io_->Open(path, /*create=*/true));
  FIX_RETURN_IF_ERROR(wal.io_->Truncate(0));
  FIX_RETURN_IF_ERROR(WriteHeader(wal.io_.get(), key_size, value_size));
  wal.state_.key_size = key_size;
  wal.state_.value_size = value_size;
  wal.state_.valid_bytes = kWalHeaderSize;
  return wal;
}

Result<Wal> Wal::Open(const std::string& path, uint32_t key_size,
                      uint32_t value_size, const IoFactory& factory) {
  {
    // Probe for existence through the backend (no filesystem calls here so
    // fault injection sees every touch). A failed open means no log yet.
    std::unique_ptr<PageIo> probe = MakeIo(factory);
    Status exists = probe->Open(path, /*create=*/false);
    if (!exists.ok()) {
      return Create(path, key_size, value_size, factory);
    }
    Status closed = probe->Close();
    (void)closed;
  }
  Wal wal;
  wal.io_ = MakeIo(factory);
  wal.path_ = path;
  FIX_RETURN_IF_ERROR(wal.io_->Open(path, /*create=*/false));
  Result<WalScanResult> scan = ScanIo(wal.io_.get());
  if (!scan.ok()) {
    // A log whose header never made it to disk carries no commitments;
    // recreate it. (Anything intact enough to parse is scanned above.)
    FIX_RETURN_IF_ERROR(wal.io_->Close());
    return Create(path, key_size, value_size, factory);
  }
  wal.state_ = *std::move(scan);
  if (wal.state_.has_commit) {
    WalReplays().Increment();
  }
  if (wal.state_.torn_tail) {
    WalTornTails().Increment();
  }
  return wal;
}

Status Wal::AppendCommit(const WalCommit& commit) {
  if (failed_) {
    return Status::IOError("WAL is fail-stopped after an earlier error");
  }
  char record[kRecordFrameSize + kCommitPayloadSize];
  char* payload = record + kRecordFrameSize;
  EncodeCommitPayload(commit, payload);
  EncodeFixed32(record, static_cast<uint32_t>(kCommitPayloadSize));
  EncodeFixed32(record + 4, Crc32c(payload, kCommitPayloadSize));
  Status written = io_->Write(state_.valid_bytes, record, sizeof(record));
  if (!written.ok()) {
    failed_ = true;
    return written;
  }
  // The commit is acked only after the fsync reports success; a failed
  // fsync fail-stops the log so no later append can leapfrog the hole.
  Status synced = io_->Sync();
  if (!synced.ok()) {
    failed_ = true;
    WalSyncFailures().Increment();
    return synced;
  }
  state_.valid_bytes += sizeof(record);
  state_.records += 1;
  state_.has_commit = true;
  state_.last_commit = commit;
  state_.torn_tail = false;
  WalAppends().Increment();
  WalGeneration().Set(static_cast<int64_t>(commit.generation));
  return Status::OK();
}

Status Wal::TruncateTail() {
  if (failed_) {
    return Status::IOError("WAL is fail-stopped after an earlier error");
  }
  uint64_t size;
  FIX_ASSIGN_OR_RETURN(size, io_->Size());
  if (size == state_.valid_bytes) return Status::OK();
  FIX_RETURN_IF_ERROR(io_->Truncate(state_.valid_bytes));
  state_.torn_tail = false;
  return Status::OK();
}

Status Wal::Reset() {
  if (failed_) {
    return Status::IOError("WAL is fail-stopped after an earlier error");
  }
  FIX_RETURN_IF_ERROR(io_->Truncate(kWalHeaderSize));
  Status synced = io_->Sync();
  if (!synced.ok()) {
    failed_ = true;
    WalSyncFailures().Increment();
    return synced;
  }
  state_.valid_bytes = kWalHeaderSize;
  state_.records = 0;
  state_.torn_tail = false;
  state_.has_commit = false;
  return Status::OK();
}

Status Wal::Close() {
  if (io_ == nullptr || !io_->is_open()) return Status::OK();
  return io_->Close();
}

Result<WalScanResult> Wal::Inspect(const std::string& path) {
  FilePageIo io;
  Status opened = io.Open(path, /*create=*/false);
  if (!opened.ok()) {
    return Status::NotFound("no WAL at " + path);
  }
  Result<WalScanResult> scan = ScanIo(&io);
  Status closed = io.Close();
  (void)closed;
  return scan;
}

}  // namespace fix
