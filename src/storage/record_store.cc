#include "storage/record_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/logging.h"
#include "storage/page_io.h"

namespace fix {

namespace {
constexpr uint32_t kRecordMagic = 0x46495852;  // "FIXR"

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}
}  // namespace

RecordStore::~RecordStore() {
  if (fd_ >= 0) {
    Status s = Close();
    if (!s.ok()) {
      FIX_LOG(Error) << "RecordStore destructor: close failed for " << path_
                     << ": " << s.ToString();
    }
  }
}

RecordStore& RecordStore::operator=(RecordStore&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    end_offset_ = other.end_offset_;
    num_records_ = other.num_records_;
    reads_.store(other.reads_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    other.fd_ = -1;
  }
  return *this;
}

Status RecordStore::Open(const std::string& path, bool create) {
  if (fd_ >= 0) return Status::InvalidArgument("RecordStore already open");
  int flags = O_RDWR;
  if (create) flags |= O_CREAT | O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return Status::IOError(Errno("open", path));
  path_ = path;
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return Status::IOError(Errno("lseek", path));
  end_offset_ = static_cast<uint64_t>(size);
  // num_records_ is recovered lazily only when a fresh file is created; for
  // re-opened files callers track counts in their own metadata.
  return Status::OK();
}

Status RecordStore::Close() {
  if (fd_ < 0) return Status::OK();
  if (::close(fd_) != 0) {
    fd_ = -1;
    return Status::IOError(Errno("close", path_));
  }
  fd_ = -1;
  return Status::OK();
}

Result<RecordId> RecordStore::Append(const std::string& payload) {
  if (fd_ < 0) return Status::InvalidArgument("RecordStore not open");
  if (payload.size() > UINT32_MAX) {
    return Status::InvalidArgument("record too large");
  }
  std::string frame;
  frame.reserve(8 + payload.size());
  PutFixed32(&frame, kRecordMagic);
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame += payload;
  FIX_RETURN_IF_ERROR(
      PWriteFull(fd_, end_offset_, frame.data(), frame.size(), path_));
  RecordId id{end_offset_};
  end_offset_ += frame.size();
  ++num_records_;
  return id;
}

Result<std::string> RecordStore::Read(RecordId id) const {
  if (fd_ < 0) return Status::InvalidArgument("RecordStore not open");
  char header[8];
  FIX_RETURN_IF_ERROR(
      PReadFull(fd_, id.offset, header, sizeof(header), path_));
  if (DecodeFixed32(header) != kRecordMagic) {
    return Status::Corruption("bad record magic in " + path_);
  }
  uint32_t len = DecodeFixed32(header + 4);
  if (id.offset + 8 + len > end_offset_) {
    return Status::Corruption("record length past end of " + path_);
  }
  std::string payload(len, '\0');
  FIX_RETURN_IF_ERROR(
      PReadFull(fd_, id.offset + 8, payload.data(), len, path_));
  reads_.fetch_add(1, std::memory_order_relaxed);
  return payload;
}

Status RecordStore::Touch(RecordId id) const {
  if (fd_ < 0) return Status::InvalidArgument("RecordStore not open");
  char header[8];
  FIX_RETURN_IF_ERROR(
      PReadFull(fd_, id.offset, header, sizeof(header), path_));
  if (DecodeFixed32(header) != kRecordMagic) {
    return Status::Corruption("bad record magic in " + path_);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status RecordStore::Sync() {
  if (fd_ < 0) return Status::InvalidArgument("RecordStore not open");
  if (::fsync(fd_) != 0) return Status::IOError(Errno("fsync", path_));
  return Status::OK();
}

}  // namespace fix
