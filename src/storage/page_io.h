// PageIo: the raw byte-addressed I/O substrate underneath PageFile.
//
// PageFile (the checksummed-page framing layer) talks to the disk only
// through this interface, which makes the real backend swappable for a
// FaultInjectionPageIo in tests: injected faults land *below* the page
// checksums, exactly where real torn writes, bit rot, and misdirected I/O
// happen, so the detection machinery is exercised end to end.
//
// FilePageIo is the production backend. Its Read/Write loop over
// pread/pwrite, retrying EINTR and continuing after short transfers, so a
// signal or a filesystem that returns partial counts never surfaces as a
// spurious failure (the seed treated any short transfer as fatal).

#ifndef FIX_STORAGE_PAGE_IO_H_
#define FIX_STORAGE_PAGE_IO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace fix {

class PageIo {
 public:
  virtual ~PageIo() = default;

  [[nodiscard]] virtual Status Open(const std::string& path, bool create) = 0;
  [[nodiscard]] virtual Status Close() = 0;
  virtual bool is_open() const = 0;
  virtual const std::string& path() const = 0;

  /// Current file size in bytes.
  [[nodiscard]] virtual Result<uint64_t> Size() const = 0;

  /// Truncates (or extends with zeros) the file to `size` bytes.
  [[nodiscard]] virtual Status Truncate(uint64_t size) = 0;

  /// Reads exactly `len` bytes at `offset`; anything less is an error.
  [[nodiscard]] virtual Status Read(uint64_t offset, char* buf,
                                    size_t len) = 0;

  /// Writes exactly `len` bytes at `offset`.
  [[nodiscard]] virtual Status Write(uint64_t offset, const char* buf,
                                     size_t len) = 0;

  [[nodiscard]] virtual Status Sync() = 0;
};

/// Reads exactly `len` bytes at `offset` from `fd`, retrying EINTR and
/// resuming short transfers. Hitting EOF before `len` bytes is an IOError.
[[nodiscard]] Status PReadFull(int fd, uint64_t offset, char* buf, size_t len,
                               const std::string& path);

/// Writes exactly `len` bytes at `offset` to `fd`, retrying EINTR and
/// resuming short transfers.
[[nodiscard]] Status PWriteFull(int fd, uint64_t offset, const char* buf,
                                size_t len, const std::string& path);

/// The production backend: a plain file accessed with pread/pwrite.
class FilePageIo : public PageIo {
 public:
  FilePageIo() = default;
  ~FilePageIo() override;

  FilePageIo(const FilePageIo&) = delete;
  FilePageIo& operator=(const FilePageIo&) = delete;

  [[nodiscard]] Status Open(const std::string& path, bool create) override;
  [[nodiscard]] Status Close() override;
  bool is_open() const override { return fd_ >= 0; }
  const std::string& path() const override { return path_; }
  [[nodiscard]] Result<uint64_t> Size() const override;
  [[nodiscard]] Status Truncate(uint64_t size) override;
  [[nodiscard]] Status Read(uint64_t offset, char* buf, size_t len) override;
  [[nodiscard]] Status Write(uint64_t offset, const char* buf,
                             size_t len) override;
  [[nodiscard]] Status Sync() override;

 private:
  int fd_ = -1;
  std::string path_;
};

/// Wraps any PageIo and injects faults on a deterministic, seedable
/// schedule. All faults are armed explicitly by the test; an unarmed
/// injector is a transparent pass-through.
///
/// Fault kinds:
///   * transient read/write failures  -> Status::Unavailable (the framing
///     layer must retry with backoff and succeed once the budget drains)
///   * hard read/write/sync failures  -> Status::IOError (simulated EIO)
///   * torn writes: only a prefix of the buffer reaches the backend; the
///     call either lies (reports success — firmware-style silent tear,
///     caught later by the page checksum) or reports failure
///   * crash points: after N more successful writes the injector goes dead —
///     the tripping write is itself torn (a seeded prefix survives) and
///     every later operation fails, modeling power loss mid-write. The test
///     then discards in-memory state and reopens the file fresh.
class FaultInjectionPageIo : public PageIo {
 public:
  /// `seed` drives the torn-write prefix lengths (deterministic schedules).
  explicit FaultInjectionPageIo(std::unique_ptr<PageIo> base,
                                uint64_t seed = 0x5eed)
      : base_(std::move(base)), rng_(seed) {}

  // --- fault arming ---------------------------------------------------------
  void FailNextReads(uint64_t n, bool transient) {
    read_faults_ = n;
    read_faults_transient_ = transient;
  }
  void FailNextWrites(uint64_t n, bool transient) {
    write_faults_ = n;
    write_faults_transient_ = transient;
  }
  void FailNextSyncs(uint64_t n) { sync_faults_ = n; }
  /// The next write persists only a seeded prefix. `silent` => the call
  /// still reports success.
  void TearNextWrite(bool silent) {
    tear_next_write_ = true;
    tear_silent_ = silent;
  }
  /// After `n` more successful writes, the injector enters the crashed
  /// state (the n+1-th write is torn and everything after fails).
  void CrashAfterWrites(uint64_t n) {
    crash_armed_ = true;
    crash_budget_ = n;
  }
  bool crashed() const { return crashed_; }

  // --- counters -------------------------------------------------------------
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t injected_faults() const { return injected_faults_; }

  // --- PageIo ---------------------------------------------------------------
  [[nodiscard]] Status Open(const std::string& path, bool create) override {
    return base_->Open(path, create);
  }
  [[nodiscard]] Status Close() override { return base_->Close(); }
  bool is_open() const override { return base_->is_open(); }
  const std::string& path() const override { return base_->path(); }
  [[nodiscard]] Result<uint64_t> Size() const override {
    return base_->Size();
  }
  [[nodiscard]] Status Truncate(uint64_t size) override;
  [[nodiscard]] Status Read(uint64_t offset, char* buf, size_t len) override;
  [[nodiscard]] Status Write(uint64_t offset, const char* buf,
                             size_t len) override;
  [[nodiscard]] Status Sync() override;

 private:
  [[nodiscard]] Status Crashed() const {
    return Status::IOError("injected crash: device is gone");
  }

  std::unique_ptr<PageIo> base_;
  Rng rng_;
  uint64_t read_faults_ = 0;
  bool read_faults_transient_ = false;
  uint64_t write_faults_ = 0;
  bool write_faults_transient_ = false;
  uint64_t sync_faults_ = 0;
  bool tear_next_write_ = false;
  bool tear_silent_ = false;
  bool crash_armed_ = false;
  uint64_t crash_budget_ = 0;
  bool crashed_ = false;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t injected_faults_ = 0;
};

}  // namespace fix

#endif  // FIX_STORAGE_PAGE_IO_H_
