// A disk-resident B+-tree with fixed-size keys and values, built on the
// buffer pool. This plays the role Berkeley DB's B-tree played in the
// paper's implementation: FIX feature keys are inserted here and queried
// with ordered range scans.
//
// Keys are compared with memcmp; callers encode them order-preservingly
// (see core/key_codec.h). Duplicate keys are permitted and stored adjacent.
//
// On-disk layout:
//   page 0          meta: magic, key/value size, root, height, entry count
//   other pages     nodes:
//     [0]  type (0 = leaf, 1 = inner)
//     [2]  count u16
//     [4]  next-leaf page id (leaf) / first-child page id (inner)
//     [8]  entries — leaf: count * (key, value)
//                    inner: count * (separator key, right child id)
//   An inner node with count separators has count+1 children; separator i
//   is the smallest key in child i+1's subtree.
//
// Deletion removes the leaf entry without rebalancing (lazy deletion), which
// is sufficient for this workload: FIX indexes are bulk-built and read-heavy.

#ifndef FIX_STORAGE_BTREE_H_
#define FIX_STORAGE_BTREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "storage/buffer_pool.h"

namespace fix {

/// "FIXB" — stamped at offset 0 of the meta page (page 0). Exposed so the
/// scrub tool can identify B+-tree files without opening a full BTree.
inline constexpr uint32_t kBTreeMagic = 0x46495842;

/// Thread-safety — concurrent-read contract: once a tree is built (or
/// opened) and no writer is active, Get/Seek/SeekFirst and iterator Next may
/// be called from any number of threads concurrently. Reads touch only the
/// lock-striped BufferPool (itself safe for concurrent Fetch/Release) and
/// the const meta fields root_/height_/key_size_/value_size_; nothing on the
/// read path mutates the tree. Each thread must use its own Iterator —
/// iterators themselves are not shared. Writers remain exclusive:
/// Insert/Delete/BulkLoad/Flush must not overlap with each other or with any
/// read (the parallel build pipeline funnels all inserts through one
/// thread). See docs/ARCHITECTURE.md, "Concurrent reads".
class BTree {
 public:
  /// Creates a new tree in `pool`'s file with the given fixed key/value
  /// sizes.
  ///
  /// @pre `pool` is non-null and its file is empty; one leaf entry and one
  ///      inner entry must each fit a page.
  /// @post page 0 holds the meta and page 1 an empty root leaf.
  /// @return the new tree, or InvalidArgument/IOError on failure.
  [[nodiscard]] static Result<BTree> Create(BufferPool* pool, uint32_t key_size,
                              uint32_t value_size);

  /// Opens an existing tree from page 0 of `pool`'s file.
  ///
  /// @pre `pool` is non-null and outlives the tree.
  /// @return the tree, or Corruption if the meta page fails validation
  ///         (magic, sizes, root id), or IOError.
  [[nodiscard]] static Result<BTree> Open(BufferPool* pool);

  BTree(BTree&&) = default;
  BTree& operator=(BTree&&) = default;

  /// Inserts one entry.
  ///
  /// @pre key/value sizes match the tree's configuration.
  /// @post num_entries() grows by one; splits may add pages but never move
  ///       existing entries to earlier keys.
  /// @return OK, InvalidArgument on a size mismatch, or a page I/O error.
  [[nodiscard]] Status Insert(std::string_view key, std::string_view value);

  /// Bulk-loads `entries` — which must be sorted by key, non-descending
  /// (duplicates allowed) — into a freshly created, still-empty tree,
  /// building 100%-packed leaves left to right and the inner levels bottom
  /// up. One sequential pass instead of n random root-to-leaf descents:
  /// every page is written exactly once and leaves carry no split slack.
  /// The tree remains fully mutable afterwards (Insert/Delete work as
  /// usual).
  ///
  /// @pre the tree is freshly created and empty; `entries` is sorted.
  /// @return OK, InvalidArgument if the tree is not empty, the input is
  ///         not sorted, or any key/value has the wrong size; else I/O
  ///         errors from page writes.
  [[nodiscard]] Status BulkLoad(
      const std::vector<std::pair<std::string, std::string>>& entries);

  /// Looks up the first entry with exactly `key`.
  ///
  /// @return the value, NotFound if absent, or Corruption/IOError from the
  ///         descent's page reads.
  [[nodiscard]] Result<std::string> Get(std::string_view key);

  /// Removes the first entry equal to (key, value). Lazy: pages are never
  /// merged or freed.
  ///
  /// @return OK, NotFound if no such pair exists, or a page I/O error.
  [[nodiscard]] Status Delete(std::string_view key, std::string_view value);

  /// Forward iterator over (key, value) pairs in key order.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    std::string_view key() const;
    std::string_view value() const;
    /// Advances; sets Valid() false at the end. Returns a Status because
    /// advancing may read a page.
    [[nodiscard]] Status Next();

   private:
    friend class BTree;
    BTree* tree_ = nullptr;
    PageHandle leaf_;
    uint16_t index_ = 0;
    bool valid_ = false;
  };

  /// Positions an iterator at the first entry with key >= `key`.
  ///
  /// @return the iterator (Valid() false when every key is smaller), or a
  ///         page read error. The iterator pins its leaf; it must not
  ///         outlive the tree.
  [[nodiscard]] Result<Iterator> Seek(std::string_view key);

  /// Positions an iterator at the smallest key.
  ///
  /// @return the iterator (Valid() false on an empty tree), or a page read
  ///         error.
  [[nodiscard]] Result<Iterator> SeekFirst();

  /// Writes all dirty pages and the meta page back to the file.
  ///
  /// @post on OK every modification so far is in the file (though not
  ///       necessarily fsync'ed — that is PageFile::Sync's job).
  /// @return OK or the first page write error.
  [[nodiscard]] Status Flush();

  /// Full structural audit, independent of page checksums: walks every node
  /// from the root checking node types, depths (all leaves at height_),
  /// fanout bounds, separator/key ordering, child-id ranges, cycles, the
  /// leaf sibling chain (must equal the in-order leaf sequence and end at
  /// kInvalidPage), global key order across the chain, and that the leaf
  /// entry total matches the meta entry count. Returns kCorruption with a
  /// description of the first violation. Catches damage that per-page CRCs
  /// cannot — pages that are internally consistent but mutually inconsistent
  /// (e.g. a crash that persisted only some dirty pages).
  ///
  /// @return OK, Corruption with the first violation, or a page I/O error.
  [[nodiscard]] Status VerifyStructure();

  uint64_t num_entries() const { return num_entries_; }
  uint32_t height() const { return height_; }
  uint32_t key_size() const { return key_size_; }
  uint32_t value_size() const { return value_size_; }

  /// Total on-disk size in bytes (page count * page size).
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(pool_->file()->num_pages()) * kPageSize;
  }

 private:
  explicit BTree(BufferPool* pool) : pool_(pool) {}

  // Node accessors (operate on raw page bytes).
  static uint8_t NodeType(const char* page);
  static uint16_t NodeCount(const char* page);
  static void SetNodeType(char* page, uint8_t type);
  static void SetNodeCount(char* page, uint16_t count);
  static uint32_t NodeLink(const char* page);
  static void SetNodeLink(char* page, uint32_t link);

  size_t LeafEntrySize() const { return key_size_ + value_size_; }
  size_t InnerEntrySize() const { return key_size_ + 4; }
  uint16_t LeafCapacity() const {
    return static_cast<uint16_t>((kPageSize - 8) / LeafEntrySize());
  }
  uint16_t InnerCapacity() const {
    return static_cast<uint16_t>((kPageSize - 8) / InnerEntrySize());
  }

  char* LeafEntry(char* page, uint16_t i) const {
    return page + 8 + i * LeafEntrySize();
  }
  const char* LeafEntry(const char* page, uint16_t i) const {
    return page + 8 + i * LeafEntrySize();
  }
  char* InnerEntry(char* page, uint16_t i) const {
    return page + 8 + i * InnerEntrySize();
  }
  const char* InnerEntry(const char* page, uint16_t i) const {
    return page + 8 + i * InnerEntrySize();
  }
  uint32_t InnerChild(const char* page, uint16_t i) const;

  int CompareKey(const char* a, std::string_view b) const;

  /// Debug-build structural validation of one node: plausible type, count
  /// within fanout capacity, keys/separators in non-descending order, and a
  /// live child-0 link for inner nodes. Called after every mutation that
  /// restructures a node (insert, split, delete). Compiles to nothing
  /// unless FIX_ENABLE_DCHECKS is defined.
#if FIX_DCHECKS_ENABLED
  void DcheckNodeInvariants(const char* page) const;
#else
  void DcheckNodeInvariants(const char*) const {}
#endif

  /// First leaf index with entry key >= key (lower bound).
  uint16_t LeafLowerBound(const char* page, std::string_view key) const;
  /// Child index to descend into for `key`.
  uint16_t InnerChildIndex(const char* page, std::string_view key) const;

  struct SplitResult {
    bool split = false;
    std::string separator;  // smallest key of the new right node
    PageId right = kInvalidPage;
  };

  [[nodiscard]] Status InsertRec(PageId node, std::string_view key, std::string_view value,
                   SplitResult* out);

  [[nodiscard]] Status WriteMeta();
  [[nodiscard]] Status ReadMeta();

  /// Recursive helper for VerifyStructure: validates the subtree under
  /// `id` (expected at `depth`, root = 1) and appends leaves in order.
  [[nodiscard]] Status VerifyNode(PageId id, uint32_t depth,
                                  std::unordered_set<PageId>* visited,
                                  std::vector<PageId>* leaves);

  /// Descends to the leaf that would contain `key`.
  [[nodiscard]] Result<PageHandle> FindLeaf(std::string_view key);

  BufferPool* pool_;
  uint32_t key_size_ = 0;
  uint32_t value_size_ = 0;
  PageId root_ = kInvalidPage;
  uint32_t height_ = 1;  // 1 = root is a leaf
  uint64_t num_entries_ = 0;
};

}  // namespace fix

#endif  // FIX_STORAGE_BTREE_H_
