// A disk-resident B+-tree with fixed-size keys and values, built on the
// buffer pool. This plays the role Berkeley DB's B-tree played in the
// paper's implementation: FIX feature keys are inserted here and queried
// with ordered range scans.
//
// Keys are compared with memcmp; callers encode them order-preservingly
// (see core/key_codec.h). Duplicate keys are permitted and stored adjacent.
//
// On-disk layout:
//   page 0          meta: magic, key/value size, root, height, entry count,
//                   generation
//   other pages     nodes:
//     [0]  type (0 = leaf, 1 = inner)
//     [2]  count u16
//     [4]  next-leaf page id (leaf) / first-child page id (inner)
//     [8]  entries — leaf: count * (key, value)
//                    inner: count * (separator key, right child id)
//   An inner node with count separators has count+1 children; separator i
//   is the smallest key in child i+1's subtree.
//
// Deletion removes the leaf entry without rebalancing (lazy deletion), which
// is sufficient for this workload: FIX indexes are bulk-built and read-heavy.
//
// Write paths — there are two, with different contracts:
//
//   * Legacy in-place (Insert/Delete outside a batch): mutates pages
//     directly, exactly the classic single-writer B+-tree. Cheap, not
//     crash-atomic, and must not overlap with any read.
//   * COW batch (BeginBatch .. Insert/Delete .. PrepareCommit /
//     FinalizeCommit, or AbortBatch): the writer builds generation N+1
//     out-of-place in freshly allocated pages — every page reachable from a
//     published snapshot is copied before modification, including the
//     leaf-chain predecessor of any copied leaf (its sibling link must point
//     at the copy, and patching it in place would corrupt both older
//     snapshots and the crash-recovery story, so the copy cascades left
//     until it meets a page that is already part of the new generation).
//     Readers keep serving from the pinned generation-N snapshot
//     throughout; pages superseded by N+1 are retired and reused only after
//     the last reader of every older generation unpins AND the page is not
//     referenced by the durable on-disk root.
//
// Thread-safety — snapshot contract: Get/Seek/SeekFirst and iterator Next
// may be called from any number of threads concurrently, and remain safe
// while a single COW-batch writer is active: each read pins the published
// generation snapshot (a shared_ptr handle) and only ever touches that
// generation's immutable pages plus the lock-striped BufferPool. Each
// thread must use its own Iterator. The legacy in-place mutators
// (Insert/Delete outside a batch), BulkLoad, and Flush remain fully
// writer-exclusive: they must not overlap with each other or with any
// read. At most one batch writer may exist at a time. See
// docs/ARCHITECTURE.md, "Write path: COW generations + WAL".

#ifndef FIX_STORAGE_BTREE_H_
#define FIX_STORAGE_BTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/wal.h"

namespace fix {

/// "FIXB" — stamped at offset 0 of the meta page (page 0). Exposed so the
/// scrub tool can identify B+-tree files without opening a full BTree.
inline constexpr uint32_t kBTreeMagic = 0x46495842;

class BTree {
 public:
  /// One published generation: the immutable root every reader of that
  /// generation descends from. Held by shared_ptr; the last release
  /// (reader or tree) unpins the generation, which is what allows its
  /// superseded pages to be recycled.
  struct Snapshot {
    PageId root = kInvalidPage;
    uint32_t height = 1;
    uint64_t num_entries = 0;
    uint64_t generation = 0;
    ~Snapshot();

   private:
    friend class BTree;
    struct BTreeState* state_ = nullptr;
  };

  /// Creates a new tree in `pool`'s file with the given fixed key/value
  /// sizes.
  ///
  /// @pre `pool` is non-null and its file is empty; one leaf entry and one
  ///      inner entry must each fit a page.
  /// @post page 0 holds the meta and page 1 an empty root leaf.
  /// @return the new tree, or InvalidArgument/IOError on failure.
  [[nodiscard]] static Result<BTree> Create(BufferPool* pool, uint32_t key_size,
                              uint32_t value_size);

  /// Opens an existing tree from page 0 of `pool`'s file.
  ///
  /// @pre `pool` is non-null and outlives the tree.
  /// @return the tree, or Corruption if the meta page fails validation
  ///         (magic, sizes, root id), or IOError.
  [[nodiscard]] static Result<BTree> Open(BufferPool* pool);

  /// Opens a tree whose meta page is unreadable (torn by a crash) from a
  /// WAL commit record instead: the geometry comes from the WAL header and
  /// the root from the commit. The caller must verify the result
  /// (VerifyStructure) and re-checkpoint the meta page.
  [[nodiscard]] static Result<BTree> OpenRecovered(BufferPool* pool,
                                                   uint32_t key_size,
                                                   uint32_t value_size,
                                                   const WalCommit& commit);

  ~BTree();
  BTree(BTree&&) noexcept;
  BTree& operator=(BTree&&) noexcept;

  /// Inserts one entry. Outside a batch this is the legacy in-place,
  /// writer-exclusive path; inside a batch it copies-on-write every page it
  /// touches, leaving all published generations intact.
  ///
  /// @pre key/value sizes match the tree's configuration.
  /// @post num_entries() grows by one; splits may add pages but never move
  ///       existing entries to earlier keys.
  /// @return OK, InvalidArgument on a size mismatch, or a page I/O error.
  [[nodiscard]] Status Insert(std::string_view key, std::string_view value);

  /// Bulk-loads `entries` — which must be sorted by key, non-descending
  /// (duplicates allowed) — into a freshly created, still-empty tree,
  /// building 100%-packed leaves left to right and the inner levels bottom
  /// up. One sequential pass instead of n random root-to-leaf descents:
  /// every page is written exactly once and leaves carry no split slack.
  /// The tree remains fully mutable afterwards (Insert/Delete work as
  /// usual).
  ///
  /// @pre the tree is freshly created and empty; `entries` is sorted.
  /// @return OK, InvalidArgument if the tree is not empty, the input is
  ///         not sorted, or any key/value has the wrong size; else I/O
  ///         errors from page writes.
  [[nodiscard]] Status BulkLoad(
      const std::vector<std::pair<std::string, std::string>>& entries);

  /// Looks up the first entry with exactly `key`.
  ///
  /// @return the value, NotFound if absent, or Corruption/IOError from the
  ///         descent's page reads.
  [[nodiscard]] Result<std::string> Get(std::string_view key);

  /// Removes the first entry equal to (key, value). Lazy: pages are never
  /// merged. Outside a batch the removal is in place; inside a batch it is
  /// copy-on-write like Insert.
  ///
  /// @return OK, NotFound if no such pair exists, or a page I/O error.
  [[nodiscard]] Status Delete(std::string_view key, std::string_view value);

  // --- COW batch (generation N -> N+1) --------------------------------------

  /// Starts building generation N+1. All Insert/Delete calls until
  /// PrepareCommit/AbortBatch go copy-on-write; readers keep serving
  /// generation N.
  [[nodiscard]] Status BeginBatch();

  /// Flushes every page of the pending generation and fsyncs the data file,
  /// then returns the commit record describing it (generation, root,
  /// height, entry count — the caller stamps its own fields and appends it
  /// to the WAL). The generation is NOT visible yet; call FinalizeCommit
  /// once the WAL append succeeded, or AbortBatch if it failed.
  [[nodiscard]] Result<WalCommit> PrepareCommit();

  /// Atomically publishes the prepared generation: readers arriving after
  /// this call see N+1; readers still pinning N keep their exact view.
  /// Marks the generation durable (the caller's WAL commit is fsync'd).
  void FinalizeCommit();

  /// Discards the pending generation: frees its fresh pages, restores the
  /// writer view to the published snapshot, and un-retires everything the
  /// batch superseded. Published generations are untouched (COW never
  /// mutates them), so this is exact. Pass `blank_pages = false` when the
  /// batch's WAL commit record may already be durable (an append or fsync
  /// failure after PrepareCommit): the fresh pages are then neither blanked
  /// on disk nor recycled, so a recovery that adopts the record finds them
  /// exactly as flushed.
  void AbortBatch(bool blank_pages = true);

  /// Adopts a WAL commit record on top of an opened tree (roll-forward):
  /// repoints the writer view and published snapshot at the committed
  /// generation. Validates the record against the file bounds.
  [[nodiscard]] Status AdoptCommit(const WalCommit& commit);

  /// Registers pages (e.g. found unreachable by recovery) as reusable by
  /// future allocations.
  void AddReusablePages(const std::vector<PageId>& pages);

  /// Forward iterator over (key, value) pairs in key order. Holds a pin on
  /// the generation it was created from: the writer may commit newer
  /// generations while it runs, and it will keep seeing its own.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    std::string_view key() const;
    std::string_view value() const;
    /// Advances; sets Valid() false at the end. Returns a Status because
    /// advancing may read a page.
    [[nodiscard]] Status Next();

   private:
    friend class BTree;
    BTree* tree_ = nullptr;
    std::shared_ptr<const Snapshot> snap_;
    PageHandle leaf_;
    uint16_t index_ = 0;
    bool valid_ = false;
  };

  /// Positions an iterator at the first entry with key >= `key`.
  ///
  /// @return the iterator (Valid() false when every key is smaller), or a
  ///         page read error. The iterator pins its leaf and its
  ///         generation; it must not outlive the tree.
  [[nodiscard]] Result<Iterator> Seek(std::string_view key);

  /// Positions an iterator at the smallest key.
  ///
  /// @return the iterator (Valid() false on an empty tree), or a page read
  ///         error.
  [[nodiscard]] Result<Iterator> SeekFirst();

  /// Writes all dirty pages and the meta page back to the file.
  ///
  /// @post on OK every modification so far is in the file (though not
  ///       necessarily fsync'ed — that is PageFile::Sync's job).
  /// @return OK or the first page write error.
  [[nodiscard]] Status Flush();

  /// Durable checkpoint: Flush + data-file fsync. After it returns OK the
  /// meta page carries the current root and generation, so the tree is
  /// self-contained (the WAL, if any, can be reset) and every page retired
  /// at or before this generation is safe to recycle on disk.
  [[nodiscard]] Status Checkpoint();

  /// Full structural audit, independent of page checksums: walks every node
  /// from the root checking node types, depths (all leaves at height_),
  /// fanout bounds, separator/key ordering, child-id ranges, cycles, the
  /// leaf sibling chain (must equal the in-order leaf sequence and end at
  /// kInvalidPage), global key order across the chain, and that the leaf
  /// entry total matches the meta entry count. Returns kCorruption with a
  /// description of the first violation. Catches damage that per-page CRCs
  /// cannot — pages that are internally consistent but mutually inconsistent
  /// (e.g. a crash that persisted only some dirty pages).
  ///
  /// @return OK, Corruption with the first violation, or a page I/O error.
  [[nodiscard]] Status VerifyStructure();

  /// VerifyStructure that additionally reports every page reachable from
  /// the current root (the generation-reachability set: meta page 0 is not
  /// included). Recovery uses the complement to rebuild free-page tracking
  /// and to quarantine torn never-referenced pages.
  [[nodiscard]] Status VerifyAndCollect(std::unordered_set<PageId>* reachable);

  /// Entry count of the last published snapshot — safe to call from reader
  /// threads while a batch writer is mid-commit (the writer's in-flight
  /// count becomes visible only at FinalizeCommit).
  uint64_t num_entries() const;
  uint32_t height() const { return height_; }
  uint32_t key_size() const { return key_size_; }
  uint32_t value_size() const { return value_size_; }
  /// Generation of the last published (committed or opened) snapshot.
  uint64_t generation() const;
  bool in_batch() const;

  /// Total on-disk size in bytes (page count * page size).
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(pool_->file()->num_pages()) * kPageSize;
  }

 private:
  explicit BTree(BufferPool* pool);

  // Node accessors (operate on raw page bytes).
  static uint8_t NodeType(const char* page);
  static uint16_t NodeCount(const char* page);
  static void SetNodeType(char* page, uint8_t type);
  static void SetNodeCount(char* page, uint16_t count);
  static uint32_t NodeLink(const char* page);
  static void SetNodeLink(char* page, uint32_t link);

  size_t LeafEntrySize() const { return key_size_ + value_size_; }
  size_t InnerEntrySize() const { return key_size_ + 4; }
  uint16_t LeafCapacity() const {
    return static_cast<uint16_t>((kPageSize - 8) / LeafEntrySize());
  }
  uint16_t InnerCapacity() const {
    return static_cast<uint16_t>((kPageSize - 8) / InnerEntrySize());
  }

  char* LeafEntry(char* page, uint16_t i) const {
    return page + 8 + i * LeafEntrySize();
  }
  const char* LeafEntry(const char* page, uint16_t i) const {
    return page + 8 + i * LeafEntrySize();
  }
  char* InnerEntry(char* page, uint16_t i) const {
    return page + 8 + i * InnerEntrySize();
  }
  const char* InnerEntry(const char* page, uint16_t i) const {
    return page + 8 + i * InnerEntrySize();
  }
  uint32_t InnerChild(const char* page, uint16_t i) const;
  void SetInnerChild(char* page, uint16_t i, PageId child) const;

  int CompareKey(const char* a, std::string_view b) const;

  /// Debug-build structural validation of one node: plausible type, count
  /// within fanout capacity, keys/separators in non-descending order, and a
  /// live child-0 link for inner nodes. Called after every mutation that
  /// restructures a node (insert, split, delete). Compiles to nothing
  /// unless FIX_ENABLE_DCHECKS is defined.
#if FIX_DCHECKS_ENABLED
  void DcheckNodeInvariants(const char* page) const;
#else
  void DcheckNodeInvariants(const char*) const {}
#endif

  /// First leaf index with entry key >= key (lower bound).
  uint16_t LeafLowerBound(const char* page, std::string_view key) const;
  /// Child index to descend into for `key`.
  uint16_t InnerChildIndex(const char* page, std::string_view key) const;

  struct SplitResult {
    bool split = false;
    std::string separator;  // smallest key of the new right node
    PageId right = kInvalidPage;
  };

  [[nodiscard]] Status InsertRec(PageId node, std::string_view key, std::string_view value,
                   SplitResult* out);

  [[nodiscard]] Status WriteMeta();
  [[nodiscard]] Status ReadMeta();

  /// Recursive helper for VerifyStructure: validates the subtree under
  /// `id` (expected at `depth`, root = 1) and appends leaves in order.
  [[nodiscard]] Status VerifyNode(PageId id, uint32_t depth,
                                  std::unordered_set<PageId>* visited,
                                  std::vector<PageId>* leaves);

  /// Descends to the leaf that would contain `key`, starting from `root`.
  [[nodiscard]] Result<PageHandle> FindLeafFrom(PageId root,
                                                std::string_view key);

  // --- COW machinery (batch path; see btree.cc) -----------------------------

  /// One inner level of a root-to-leaf descent: the node and the child slot
  /// taken. Fresh after CowPath.
  struct PathFrame {
    PageId id = kInvalidPage;
    uint16_t slot = 0;
  };

  [[nodiscard]] Result<PageHandle> AllocNodePage();
  bool IsFresh(PageId id) const;
  void Retire(PageId id);

  /// Copies node `old_id` into a fresh page; retires the original. Returns
  /// the pinned copy.
  [[nodiscard]] Result<PageHandle> CowPage(PageId old_id);

  /// Descends from the working root by `key` recording the inner path (no
  /// copying). `*leaf` receives the leaf id.
  [[nodiscard]] Status DescendPath(std::string_view key,
                                   std::vector<PathFrame>* path, PageId* leaf);

  /// Makes every node on `path` plus the leaf fresh (copy-on-write),
  /// patching parent child slots and — when the leaf itself is copied —
  /// the leaf-chain predecessor (CowPatchPredecessor). Updates path ids and
  /// `*leaf` in place.
  [[nodiscard]] Status CowPath(std::vector<PathFrame>* path, PageId* leaf);

  /// Repoints the sibling link of the leaf preceding `path`'s leaf at
  /// `new_leaf`. Copies the predecessor (and its ancestors) if it is not
  /// fresh, cascading left until it meets a fresh leaf or the chain head.
  [[nodiscard]] Status CowPatchPredecessor(const std::vector<PathFrame>& path,
                                           PageId new_leaf);

  /// Batch-mode insert: COW descent + in-leaf insert + iterative splits up
  /// the recorded path.
  [[nodiscard]] Status InsertCow(std::string_view key, std::string_view value);

  /// Batch-mode delete of the first (key, value) match: walks the duplicate
  /// run leaf by leaf (path successor walk), copying only the path that
  /// actually gets mutated.
  [[nodiscard]] Status DeleteCow(std::string_view key, std::string_view value);

  /// Publishes the current writer view as generation `gen`.
  void Publish(uint64_t gen);

  /// Moves retired pages whose generation constraints are satisfied onto
  /// the reusable list.
  void PromoteRetired();

  BufferPool* pool_;
  uint32_t key_size_ = 0;
  uint32_t value_size_ = 0;
  // Writer view: the generation under construction during a batch, the
  // published generation otherwise.
  PageId root_ = kInvalidPage;
  uint32_t height_ = 1;  // 1 = root is a leaf
  uint64_t num_entries_ = 0;
  // Heap-allocated shared state (snapshot handoff, generation pins, free
  // pages) so the tree stays movable while iterators hold stable pointers.
  std::unique_ptr<struct BTreeState> state_;
};

}  // namespace fix

#endif  // FIX_STORAGE_BTREE_H_
