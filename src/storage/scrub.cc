#include "storage/scrub.h"

#include <vector>

#include "common/bytes.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace fix {

Result<ScrubReport> ScrubPageFile(const std::string& path,
                                  const ScrubOptions& options) {
  PageFile file;
  FIX_RETURN_IF_ERROR(file.OpenForScrub(path));

  ScrubReport report;
  report.pages = file.num_pages();
  std::vector<char> payload(kPageSize);
  bool meta_page_ok = false;
  for (PageId id = 0; id < file.num_pages(); ++id) {
    Status s = file.ReadPage(id, payload.data());
    if (!s.ok()) {
      report.violations.push_back(s.ToString());
      continue;
    }
    ++report.ok_pages;
    if (id == 0) meta_page_ok = true;
  }

  if (options.verify_structure && file.num_pages() > 0) {
    if (!meta_page_ok) {
      report.violations.push_back(
          "structure audit skipped: meta page unreadable");
    } else {
      BufferPool pool(&file, /*capacity=*/64);
      Result<BTree> tree = BTree::Open(&pool);
      if (!tree.ok()) {
        report.violations.push_back("B+-tree open failed: " +
                                    tree.status().ToString());
      } else {
        Status s = tree.value().VerifyStructure();
        if (!s.ok()) report.violations.push_back(s.ToString());
      }
    }
  }

  FIX_RETURN_IF_ERROR(file.Close());
  return report;
}

}  // namespace fix
