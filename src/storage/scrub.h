// Offline verification of FIX page files: walks every page checking the
// self-describing header (magic, version, embedded page id, CRC32C), then
// audits the B+-tree structure on top. Never mutates the file — it opens
// through PageFile::OpenForScrub, which performs no upgrade or tail repair.
//
// Used by the fixdb_scrub tool and by the crash-recovery tests, which kill
// a build at an injected crash point and assert that reopening yields
// either a scrub-clean index or a detected corruption (never a silently
// wrong one).

#ifndef FIX_STORAGE_SCRUB_H_
#define FIX_STORAGE_SCRUB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fix {

struct ScrubOptions {
  /// Also open the file as a B+-tree and run BTree::VerifyStructure,
  /// catching cross-page inconsistencies that per-page checksums miss.
  bool verify_structure = true;
};

struct ScrubReport {
  uint64_t pages = 0;     ///< pages examined
  uint64_t ok_pages = 0;  ///< pages whose header + checksum verified
  /// Human-readable description of each violation found.
  std::vector<std::string> violations;

  [[nodiscard]] bool clean() const { return violations.empty(); }
};

/// Scrubs the page file at `path`. Returns an error Status only when the
/// file cannot be examined at all (missing, unreadable, legacy v0 format);
/// damage found inside an examinable file is reported via `violations`.
[[nodiscard]] Result<ScrubReport> ScrubPageFile(const std::string& path,
                                                const ScrubOptions& options = {});

}  // namespace fix

#endif  // FIX_STORAGE_SCRUB_H_
