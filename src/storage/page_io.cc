#include "storage/page_io.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <vector>

#include "common/metrics_registry.h"

namespace fix {

namespace {

// Process-wide I/O telemetry (docs/OBSERVABILITY.md). Registered once via
// function-local statics; every FilePageIo instance feeds the same totals.
Counter& PageReadOps() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.pageio.reads", "ops", "completed pread calls");
  return *c;
}
Counter& PageReadBytes() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.pageio.read_bytes", "bytes", "bytes read from disk");
  return *c;
}
Counter& PageWriteOps() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.pageio.writes", "ops", "completed pwrite calls");
  return *c;
}
Counter& PageWriteBytes() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.pageio.write_bytes", "bytes", "bytes written to disk");
  return *c;
}
Counter& PageFsyncs() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.pageio.fsyncs", "ops", "completed fsync calls");
  return *c;
}

}  // namespace

Status PReadFull(int fd, uint64_t offset, char* buf, size_t len,
                 const std::string& path) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pread(fd, buf + done, len - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread " + path + ": " + strerror(errno));
    }
    if (n == 0) {
      return Status::IOError("pread " + path + ": unexpected EOF at offset " +
                             std::to_string(offset + done));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PWriteFull(int fd, uint64_t offset, const char* buf, size_t len,
                  const std::string& path) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pwrite(fd, buf + done, len - done,
                         static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite " + path + ": " + strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

// --- FilePageIo --------------------------------------------------------------

FilePageIo::~FilePageIo() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status FilePageIo::Open(const std::string& path, bool create) {
  if (fd_ >= 0) return Status::InvalidArgument("PageIo already open");
  int flags = O_RDWR | O_CLOEXEC;
  if (create) flags |= O_CREAT;
  int fd;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("open " + path + ": " + strerror(errno));
    }
    return Status::IOError("open " + path + ": " + strerror(errno));
  }
  fd_ = fd;
  path_ = path;
  return Status::OK();
}

Status FilePageIo::Close() {
  if (fd_ < 0) return Status::OK();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    return Status::IOError("close " + path_ + ": " + strerror(errno));
  }
  return Status::OK();
}

Result<uint64_t> FilePageIo::Size() const {
  if (fd_ < 0) return Status::InvalidArgument("PageIo not open");
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat " + path_ + ": " + strerror(errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

Status FilePageIo::Truncate(uint64_t size) {
  if (fd_ < 0) return Status::InvalidArgument("PageIo not open");
  int rc;
  do {
    rc = ::ftruncate(fd_, static_cast<off_t>(size));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::IOError("ftruncate " + path_ + ": " + strerror(errno));
  }
  return Status::OK();
}

Status FilePageIo::Read(uint64_t offset, char* buf, size_t len) {
  if (fd_ < 0) return Status::InvalidArgument("PageIo not open");
  FIX_RETURN_IF_ERROR(PReadFull(fd_, offset, buf, len, path_));
  PageReadOps().Increment();
  PageReadBytes().Add(len);
  return Status::OK();
}

Status FilePageIo::Write(uint64_t offset, const char* buf, size_t len) {
  if (fd_ < 0) return Status::InvalidArgument("PageIo not open");
  FIX_RETURN_IF_ERROR(PWriteFull(fd_, offset, buf, len, path_));
  PageWriteOps().Increment();
  PageWriteBytes().Add(len);
  return Status::OK();
}

Status FilePageIo::Sync() {
  if (fd_ < 0) return Status::InvalidArgument("PageIo not open");
  int rc;
  do {
    rc = ::fsync(fd_);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::IOError("fsync " + path_ + ": " + strerror(errno));
  }
  PageFsyncs().Increment();
  return Status::OK();
}

// --- FaultInjectionPageIo ----------------------------------------------------

Status FaultInjectionPageIo::Truncate(uint64_t size) {
  if (crashed_) return Crashed();
  return base_->Truncate(size);
}

Status FaultInjectionPageIo::Read(uint64_t offset, char* buf, size_t len) {
  if (crashed_) return Crashed();
  ++reads_;
  if (read_faults_ > 0) {
    --read_faults_;
    ++injected_faults_;
    if (read_faults_transient_) {
      return Status::Unavailable("injected transient read fault");
    }
    return Status::IOError("injected read fault (EIO)");
  }
  return base_->Read(offset, buf, len);
}

Status FaultInjectionPageIo::Write(uint64_t offset, const char* buf,
                                   size_t len) {
  if (crashed_) return Crashed();
  ++writes_;
  if (write_faults_ > 0) {
    --write_faults_;
    ++injected_faults_;
    if (write_faults_transient_) {
      return Status::Unavailable("injected transient write fault");
    }
    return Status::IOError("injected write fault (EIO)");
  }
  if (crash_armed_ && crash_budget_ == 0) {
    // Power fails mid-write: a random prefix reaches the platter, then the
    // device disappears. Subsequent operations all fail until the caller
    // "reboots" by reopening the file through a fresh PageIo.
    crashed_ = true;
    crash_armed_ = false;
    ++injected_faults_;
    size_t kept = static_cast<size_t>(rng_.Uniform(len));
    if (kept > 0) {
      // Persist the surviving prefix on a best-effort basis, as the real
      // disk would; the error (if any) is unobservable to the crashed app.
      Status ignored = base_->Write(offset, buf, kept);
      (void)ignored;
    }
    return Crashed();
  }
  if (crash_armed_) --crash_budget_;
  if (tear_next_write_) {
    tear_next_write_ = false;
    ++injected_faults_;
    // Guarantee a strict prefix (at least 1 byte short) so the page really
    // is torn.
    size_t kept = static_cast<size_t>(rng_.Uniform(len));
    if (kept > 0) {
      FIX_RETURN_IF_ERROR(base_->Write(offset, buf, kept));
    }
    if (tear_silent_) return Status::OK();
    return Status::IOError("injected torn write");
  }
  return base_->Write(offset, buf, len);
}

Status FaultInjectionPageIo::Sync() {
  if (crashed_) return Crashed();
  if (sync_faults_ > 0) {
    --sync_faults_;
    ++injected_faults_;
    return Status::IOError("injected fsync fault");
  }
  return base_->Sync();
}

}  // namespace fix
