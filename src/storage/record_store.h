// RecordStore: an append-only heap file of length-prefixed records.
//
// Two roles in FIX (Figure 3/4):
//   * the *primary storage* keeping every document in encoded form —
//     unclustered index values point here and refinement performs a random
//     read per candidate;
//   * the *clustered store*, a second RecordStore written in feature-key
//     order at build time, so clustered refinement reads sequentially.
//
// Record framing: [magic u32][len u32][payload]. Offsets act as record ids.
//
// Thread-safety: Read/Touch are safe from any number of threads (positioned
// pread, atomic read counter). Append/Sync/Open/Close are writer-exclusive.

#ifndef FIX_STORAGE_RECORD_STORE_H_
#define FIX_STORAGE_RECORD_STORE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace fix {

struct RecordId {
  uint64_t offset = 0;

  bool operator==(const RecordId&) const = default;
};

class RecordStore {
 public:
  RecordStore() = default;
  ~RecordStore();

  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;
  RecordStore(RecordStore&& other) noexcept { *this = std::move(other); }
  RecordStore& operator=(RecordStore&& other) noexcept;

  [[nodiscard]] Status Open(const std::string& path, bool create);
  [[nodiscard]] Status Close();
  bool is_open() const { return fd_ >= 0; }

  /// Appends a record; returns its id.
  [[nodiscard]] Result<RecordId> Append(const std::string& payload);

  /// Reads the record at `id`.
  [[nodiscard]] Result<std::string> Read(RecordId id) const;

  /// Validates the record header at `id` without fetching the payload —
  /// one random I/O, used to charge pointer dereferences during
  /// unclustered-index refinement.
  [[nodiscard]] Status Touch(RecordId id) const;

  [[nodiscard]] Status Sync();

  uint64_t size_bytes() const { return end_offset_; }
  uint64_t num_records() const { return num_records_; }

  /// Read counter, the harnesses' refinement-I/O metric. Relaxed atomic so
  /// concurrent Read/Touch calls don't race on the bookkeeping.
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  void ResetCounters() { reads_.store(0, std::memory_order_relaxed); }

 private:
  int fd_ = -1;
  std::string path_;
  uint64_t end_offset_ = 0;
  uint64_t num_records_ = 0;
  mutable std::atomic<uint64_t> reads_{0};
};

}  // namespace fix

#endif  // FIX_STORAGE_RECORD_STORE_H_
