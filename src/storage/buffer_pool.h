// BufferPool: a fixed-capacity page cache with LRU eviction and pin counts,
// lock-striped for concurrent readers.
//
// All B+-tree page access goes through here. The hit/miss counters double as
// the logical-I/O metric reported by the benchmark harnesses (a miss is a
// physical read).
//
// Thread-safety: the pool is sharded into N lock-striped partitions (pages
// map to shards by page id). Each shard owns its frames, its LRU list, and a
// mutex; Fetch/New/Release/MarkDirty take only the owning shard's mutex, so
// probes against disjoint shards never contend. Counters are relaxed
// atomics. Concurrent Fetch/Release from any number of threads is safe —
// including concurrent fetches of the same page, which serialize on the
// shard mutex (the miss path performs its disk read while holding the shard
// lock, trading a little miss-path parallelism for a design with no
// in-flight placeholder states). Writes remain writer-exclusive: New,
// MarkDirty-after-mutation, and FlushAll must not run concurrently with any
// other pool call (see docs/ARCHITECTURE.md, "Concurrent reads").
//
// Eviction only considers unpinned frames of the shard being fetched into; a
// pinned frame is never evicted, so a live PageHandle's data() stays valid
// no matter what other threads fetch.

#ifndef FIX_STORAGE_BUFFER_POOL_H_
#define FIX_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page_file.h"

namespace fix {

class BufferPool;

/// RAII pin on a cached page. While a PageHandle is live, the frame cannot
/// be evicted. Mark the handle dirty after mutating data().
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, uint32_t shard, size_t frame, PageId page);
  ~PageHandle();

  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_; }

  char* data();
  const char* data() const;

  /// Must be called after mutating the page contents.
  void MarkDirty();

  /// Drops the pin early (destructor does the same).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  uint32_t shard_ = 0;
  size_t frame_ = 0;
  PageId page_ = kInvalidPage;
};

class BufferPool {
 public:
  /// `capacity` is the total number of kPageSize frames held in memory,
  /// split across the shards. `shards` = 0 picks automatically: the largest
  /// power of two <= min(kMaxShards, capacity / kMinFramesPerShard), so
  /// small pools (tests) degenerate to one shard with exactly the classic
  /// single-LRU semantics while production-sized pools stripe. An explicit
  /// `shards` is rounded down to a power of two and clamped the same way.
  BufferPool(PageFile* file, size_t capacity, size_t shards = 0);

  /// Debug builds verify pin balance at teardown: a live PageHandle
  /// outliving its pool is a use-after-free in waiting.
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned handle on page `id`, reading it from disk on a miss.
  /// Safe to call from any number of threads concurrently.
  [[nodiscard]] Result<PageHandle> Fetch(PageId id);

  /// Allocates a fresh page in the file and returns it pinned (zeroed).
  /// Writer-exclusive.
  [[nodiscard]] Result<PageHandle> New();

  /// Re-issues an already-allocated page id as a fresh zeroed page, pinned
  /// and dirty, without reading its stale on-disk content. Used by the COW
  /// write path to recycle retired pages (id < num_pages, no live snapshot
  /// references it). Writer-exclusive.
  [[nodiscard]] Result<PageHandle> NewAt(PageId id);

  /// Drops page `id` from the cache without writing it back, discarding any
  /// dirty content (abort path for pages that will never be referenced).
  /// No-op when the page is not resident; the page must not be pinned.
  /// Writer-exclusive.
  void Discard(PageId id);

  /// Writes back every dirty frame. Writer-exclusive.
  [[nodiscard]] Status FlushAll();

  // Counters (benchmarks read these). Relaxed atomics: safe to read while
  // readers run, exact once they quiesce.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  void ResetCounters() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  PageFile* file() { return file_; }

  /// Largest shard count a pool will stripe into.
  static constexpr size_t kMaxShards = 8;
  /// Every shard keeps at least this many frames (the B+-tree pins a
  /// handful of pages at once, and in the worst case they all hash to one
  /// shard).
  static constexpr size_t kMinFramesPerShard = 8;

 private:
  friend class PageHandle;

  struct Frame {
    PageId page = kInvalidPage;
    int pins = 0;
    bool dirty = false;
    std::vector<char> data;
    std::list<size_t>::iterator lru_pos;  // valid iff pins == 0 and resident
    bool in_lru = false;
  };

  /// One lock stripe: a mutex plus the frames, LRU list, and page map it
  /// guards. Heap-allocated so the pool stays movable-free but the shard
  /// addresses stay stable.
  struct Shard {
    // LOCK-ORDER: 10 BufferPool::Shard::mu
    Mutex mu;
    // `frames` is deliberately NOT FIX_GUARDED_BY(mu): FrameData reads a
    // frame's payload without the shard lock, protected by the pin protocol
    // instead (a pinned frame is never evicted or reused, so the bytes
    // cannot move underneath a live PageHandle). Mutating the vector itself
    // or a frame's metadata still requires mu.
    std::vector<Frame> frames;
    std::vector<size_t> free_frames FIX_GUARDED_BY(mu);
    std::list<size_t> lru FIX_GUARDED_BY(mu);  // front = most recent
    std::unordered_map<PageId, size_t> page_to_frame FIX_GUARDED_BY(mu);
  };

  uint32_t ShardOf(PageId id) const {
    return static_cast<uint32_t>(id & shard_mask_);
  }

  void Unpin(uint32_t shard_idx, size_t frame_idx);
  void MarkDirty(uint32_t shard_idx, size_t frame_idx);
  // Frames hold the full kDiskPageSize block so page I/O verifies and
  // stamps in place (PageFile::{Read,Write}PageBlock); handles only ever
  // see the payload region. Safe without the shard lock: the caller holds a
  // pin, so the frame cannot be evicted or reused underneath it.
  char* FrameData(uint32_t shard_idx, size_t frame_idx) {
    return shards_[shard_idx]->frames[frame_idx].data.data() +
           kPageHeaderSize;
  }

  /// Finds a frame of `shard` to (re)use: a never-used frame or the LRU
  /// unpinned one. Caller holds the shard mutex.
  [[nodiscard]] Result<size_t> GrabFrame(Shard* shard)
      FIX_REQUIRES(shard->mu);

  /// Pins page `id` into `shard` (hit or miss+read). Caller holds the shard
  /// mutex.
  [[nodiscard]] Result<size_t> PinPageLocked(Shard* shard, PageId id)
      FIX_REQUIRES(shard->mu);

  PageFile* file_;
  size_t capacity_ = 0;
  size_t shard_mask_ = 0;  // num_shards - 1; shard count is a power of two
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace fix

#endif  // FIX_STORAGE_BUFFER_POOL_H_
