// BufferPool: a fixed-capacity page cache with LRU eviction and pin counts.
//
// All B+-tree page access goes through here. The hit/miss counters double as
// the logical-I/O metric reported by the benchmark harnesses (a miss is a
// physical read).

#ifndef FIX_STORAGE_BUFFER_POOL_H_
#define FIX_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/page_file.h"

namespace fix {

class BufferPool;

/// RAII pin on a cached page. While a PageHandle is live, the frame cannot
/// be evicted. Mark the handle dirty after mutating data().
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, size_t frame, PageId page);
  ~PageHandle();

  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_; }

  char* data();
  const char* data() const;

  /// Must be called after mutating the page contents.
  void MarkDirty();

  /// Drops the pin early (destructor does the same).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_ = kInvalidPage;
};

class BufferPool {
 public:
  /// `capacity` is the number of kPageSize frames held in memory.
  BufferPool(PageFile* file, size_t capacity);

  /// Debug builds verify pin balance at teardown: a live PageHandle
  /// outliving its pool is a use-after-free in waiting.
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned handle on page `id`, reading it from disk on a miss.
  [[nodiscard]] Result<PageHandle> Fetch(PageId id);

  /// Allocates a fresh page in the file and returns it pinned (zeroed).
  [[nodiscard]] Result<PageHandle> New();

  /// Writes back every dirty frame.
  [[nodiscard]] Status FlushAll();

  // Counters (benchmarks read these).
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  void ResetCounters() { hits_ = misses_ = evictions_ = 0; }

  size_t capacity() const { return frames_.size(); }
  PageFile* file() { return file_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId page = kInvalidPage;
    int pins = 0;
    bool dirty = false;
    std::vector<char> data;
    std::list<size_t>::iterator lru_pos;  // valid iff pins == 0 and resident
    bool in_lru = false;
  };

  void Unpin(size_t frame_idx);
  void MarkDirty(size_t frame_idx) { frames_[frame_idx].dirty = true; }
  // Frames hold the full kDiskPageSize block so page I/O verifies and
  // stamps in place (PageFile::{Read,Write}PageBlock); handles only ever
  // see the payload region.
  char* FrameData(size_t frame_idx) {
    return frames_[frame_idx].data.data() + kPageHeaderSize;
  }

  /// Finds a frame to (re)use: a never-used frame or the LRU unpinned one.
  [[nodiscard]] Result<size_t> GrabFrame();

  PageFile* file_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  // front = most recent
  std::unordered_map<PageId, size_t> page_to_frame_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace fix

#endif  // FIX_STORAGE_BUFFER_POOL_H_
