#include "query/structural_join.h"

#include <algorithm>

namespace fix {

namespace {

/// First position in `list` with start > bound (lists are start-sorted).
size_t UpperBoundStart(const std::vector<PositionIndex::Pos>& list,
                       uint32_t bound) {
  size_t lo = 0, hi = list.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (list[mid].start <= bound) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Whether `list` contains the position with exactly this start.
bool ContainsStart(const std::vector<PositionIndex::Pos>& list,
                   uint32_t start) {
  size_t lo = 0, hi = list.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (list[mid].start < start) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < list.size() && list[lo].start == start;
}

}  // namespace

PositionIndex::PositionIndex(const Document* doc) {
  by_node_.resize(doc->num_nodes());
  // Iterative DFS assigning preorder starts to element nodes (document node
  // included at level 0) and subtree end bounds on the way out.
  struct Frame {
    NodeId node;
    NodeId next_child;
    uint32_t level;
  };
  uint32_t counter = 0;
  std::vector<Frame> stack;
  by_node_[0] = {counter++, 0, 0, 0};
  stack.push_back({0, doc->first_child(0), 0});
  size_t max_label = 0;
  while (!stack.empty()) {
    Frame& top = stack.back();
    NodeId c = top.next_child;
    while (c != kInvalidNode && !doc->IsElement(c)) {
      c = doc->next_sibling(c);
    }
    if (c == kInvalidNode) {
      by_node_[top.node].end = counter - 1;
      stack.pop_back();
      continue;
    }
    top.next_child = doc->next_sibling(c);
    by_node_[c] = {counter++, 0, stack.back().level + 1, c};
    max_label = std::max<size_t>(max_label, doc->label(c));
    stack.push_back({c, doc->first_child(c), by_node_[c].level});
  }
  by_label_.resize(max_label + 1);
  for (NodeId n = 1; n < doc->num_nodes(); ++n) {
    if (!doc->IsElement(n)) continue;
    by_label_[doc->label(n)].push_back(by_node_[n]);
    all_.push_back(by_node_[n]);
  }
  // Preorder assignment means per-label lists built in node order are NOT
  // automatically start-sorted (arena order is construction order, which is
  // preorder for parsed docs but not guaranteed) — sort defensively.
  for (auto& list : by_label_) {
    std::sort(list.begin(), list.end(),
              [](const Pos& a, const Pos& b) { return a.start < b.start; });
  }
  std::sort(all_.begin(), all_.end(),
            [](const Pos& a, const Pos& b) { return a.start < b.start; });
}

const std::vector<PositionIndex::Pos>& PositionIndex::Stream(
    LabelId label) const {
  if (label >= by_label_.size()) return empty_;
  return by_label_[label];
}

std::vector<PositionIndex::Pos> StructuralJoinEngine::SemiJoin(
    const std::vector<PositionIndex::Pos>& parents,
    const std::vector<PositionIndex::Pos>& children, Axis axis) {
  std::vector<PositionIndex::Pos> out;
  positions_scanned_ += parents.size();
  if (axis == Axis::kDescendant) {
    for (const auto& p : parents) {
      size_t i = UpperBoundStart(children, p.start);
      if (i < children.size() && children[i].start <= p.end) {
        out.push_back(p);
      }
    }
    return out;
  }
  // Child axis: walk the element's real children and probe the sorted list.
  for (const auto& p : parents) {
    bool found = false;
    for (NodeId c = doc_->first_child(p.node); c != kInvalidNode;
         c = doc_->next_sibling(c)) {
      if (!doc_->IsElement(c)) continue;
      ++positions_scanned_;
      if (ContainsStart(children, index_->position(c).start)) {
        found = true;
        break;
      }
    }
    if (found) out.push_back(p);
  }
  return out;
}

std::vector<PositionIndex::Pos> StructuralJoinEngine::JoinDown(
    const std::vector<PositionIndex::Pos>& parents,
    const std::vector<PositionIndex::Pos>& children_sat, Axis axis) {
  std::vector<PositionIndex::Pos> out;
  positions_scanned_ += children_sat.size();
  if (axis == Axis::kDescendant) {
    // Tree intervals never partially overlap, so "some earlier-starting
    // parent's end reaches my start" is exactly containment. One sweep.
    size_t pi = 0;
    uint32_t max_end = 0;
    bool any = false;
    for (const auto& c : children_sat) {
      while (pi < parents.size() && parents[pi].start < c.start) {
        max_end = std::max(max_end, parents[pi].end);
        any = true;
        ++pi;
      }
      if (any && max_end >= c.start) out.push_back(c);
    }
    return out;
  }
  for (const auto& c : children_sat) {
    NodeId parent = doc_->parent(c.node);
    if (parent == kInvalidNode || parent == 0) continue;
    if (ContainsStart(parents, index_->position(parent).start)) {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<PositionIndex::Pos> StructuralJoinEngine::SatList(
    const TwigQuery& q, uint32_t step) {
  const QueryStep& s = q.steps[step];
  std::vector<PositionIndex::Pos> base =
      s.wildcard ? index_->AllElements() : index_->Stream(s.label);
  positions_scanned_ += base.size();
  if (s.value_eq.has_value()) {
    std::vector<PositionIndex::Pos> filtered;
    for (const auto& p : base) {
      if (doc_->ChildText(p.node) == *s.value_eq) filtered.push_back(p);
    }
    base = std::move(filtered);
  }
  // Every child step constrains the subtree (this is the full-satisfaction
  // list used for predicates; the main path below the query root is joined
  // downward in Evaluate instead, so only predicate subtrees recurse here —
  // but a predicate's own chain recurses through all its children).
  for (uint32_t child : s.children) {
    if (base.empty()) break;
    std::vector<PositionIndex::Pos> child_sat = SatList(q, child);
    base = SemiJoin(base, child_sat, q.steps[child].axis);
  }
  return base;
}

std::vector<NodeId> StructuralJoinEngine::Evaluate(const TwigQuery& query) {
  // Local satisfaction of the root/main-path steps: all children except the
  // main continuation.
  auto local_sat = [&](uint32_t step) {
    const QueryStep& s = query.steps[step];
    std::vector<PositionIndex::Pos> base =
        s.wildcard ? index_->AllElements() : index_->Stream(s.label);
    positions_scanned_ += base.size();
    if (s.value_eq.has_value()) {
      std::vector<PositionIndex::Pos> filtered;
      for (const auto& p : base) {
        if (doc_->ChildText(p.node) == *s.value_eq) filtered.push_back(p);
      }
      base = std::move(filtered);
    }
    for (size_t i = 0; i < s.children.size(); ++i) {
      if (static_cast<int>(i) == s.main_child) continue;
      if (base.empty()) break;
      std::vector<PositionIndex::Pos> child_sat =
          SatList(query, s.children[i]);
      base = SemiJoin(base, child_sat, query.steps[s.children[i]].axis);
    }
    return base;
  };

  std::vector<PositionIndex::Pos> frontier = local_sat(query.root);
  if (query.steps[query.root].axis == Axis::kChild) {
    // Rooted query: the first step binds directly under the document node.
    std::vector<PositionIndex::Pos> level1;
    for (const auto& p : frontier) {
      if (p.level == 1) level1.push_back(p);
    }
    frontier = std::move(level1);
  }

  uint32_t step = query.root;
  while (!frontier.empty() && query.steps[step].main_child >= 0) {
    uint32_t next = query.steps[step].children[query.steps[step].main_child];
    frontier = JoinDown(frontier, local_sat(next), query.steps[next].axis);
    step = next;
  }

  std::vector<NodeId> out;
  out.reserve(frontier.size());
  for (const auto& p : frontier) out.push_back(p.node);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace fix
