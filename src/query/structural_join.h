// StructuralJoinEngine: a join-based twig evaluator in the style of
// Al-Khalifa et al. [3] — the other family of refinement operators the
// paper says FIX composes with ("an existing join-based or navigational
// operator can further test the validity on the pruned input").
//
// Elements get (start, end, level) interval labels; each query edge is a
// merge semi-join over per-label position lists sorted by start:
//   descendant:  parent.start < child.start && child.end <= parent.end
//   child:       containment && child.level == parent.level + 1
// Predicates are evaluated bottom-up as semi-joins onto the parent list;
// the main path is then joined top-down to bind the result step. Results
// are identical to the navigational TwigMatcher (property-tested), the
// work profile is different: sequential merges over sorted lists instead
// of pointer chasing.

#ifndef FIX_QUERY_STRUCTURAL_JOIN_H_
#define FIX_QUERY_STRUCTURAL_JOIN_H_

#include <cstdint>
#include <vector>

#include "query/twig_query.h"
#include "xml/document.h"

namespace fix {

/// Interval position labels for one document, plus per-label element lists
/// sorted by start — the "element streams" structural joins consume.
class PositionIndex {
 public:
  explicit PositionIndex(const Document* doc);

  struct Pos {
    uint32_t start;  ///< preorder rank
    uint32_t end;    ///< highest start in the subtree (containment bound)
    uint32_t level;  ///< document node = 0
    NodeId node;
  };

  /// Elements with `label`, sorted by start. Empty for unseen labels.
  const std::vector<Pos>& Stream(LabelId label) const;

  /// Every element, sorted by start (the wildcard stream).
  const std::vector<Pos>& AllElements() const { return all_; }

  const Pos& position(NodeId node) const { return by_node_[node]; }

 private:
  std::vector<std::vector<Pos>> by_label_;
  std::vector<Pos> all_;
  std::vector<Pos> by_node_;
  std::vector<Pos> empty_;
};

class StructuralJoinEngine {
 public:
  /// The engine borrows both; they must outlive it. One PositionIndex can
  /// serve many queries/engines.
  StructuralJoinEngine(const Document* doc, const PositionIndex* index)
      : doc_(doc), index_(index) {}

  /// Result-step bindings (sorted by node id, deduplicated). Semantics
  /// match TwigMatcher::Evaluate exactly, including value predicates and
  /// wildcards.
  std::vector<NodeId> Evaluate(const TwigQuery& query);

  /// Join work counter (positions touched by the merge joins).
  uint64_t positions_scanned() const { return positions_scanned_; }

 private:
  /// Bottom-up satisfaction lists: for query step s, the sorted positions
  /// of elements whose subtree satisfies s (label + value + predicate
  /// children).
  std::vector<PositionIndex::Pos> SatList(const TwigQuery& q, uint32_t step);

  /// Semi-join: members of `parents` having >= 1 match in `children` under
  /// `axis` (children sorted by start).
  std::vector<PositionIndex::Pos> SemiJoin(
      const std::vector<PositionIndex::Pos>& parents,
      const std::vector<PositionIndex::Pos>& children, Axis axis);

  /// Join down the main path: positions in `children_sat` with an ancestor
  /// (or parent, per axis) in `parents`.
  std::vector<PositionIndex::Pos> JoinDown(
      const std::vector<PositionIndex::Pos>& parents,
      const std::vector<PositionIndex::Pos>& children_sat, Axis axis);

  const Document* doc_;
  const PositionIndex* index_;
  uint64_t positions_scanned_ = 0;
};

}  // namespace fix

#endif  // FIX_QUERY_STRUCTURAL_JOIN_H_
