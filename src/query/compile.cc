#include "query/compile.h"

#include <deque>

#include "graph/bisim_builder.h"
#include "xml/sax.h"

namespace fix {

namespace {

/// Copies the maximal /-connected component of `q` rooted at `orig` into a
/// fresh TwigQuery; descendant-edge children are reported via `cuts`.
uint32_t CopyComponent(const TwigQuery& q, uint32_t orig, TwigQuery* out,
                       std::vector<uint32_t>* cuts, bool* saw_result) {
  const QueryStep& src = q.steps[orig];
  uint32_t copied = static_cast<uint32_t>(out->steps.size());
  out->steps.emplace_back();
  {
    QueryStep& dst = out->steps[copied];
    dst.name = src.name;
    dst.label = src.label;
    dst.wildcard = src.wildcard;
    dst.axis = (copied == 0) ? Axis::kDescendant : Axis::kChild;
    dst.value_eq = src.value_eq;
    dst.main_child = -1;
  }
  if (orig == q.result) {
    out->result = copied;
    *saw_result = true;
  }
  for (size_t i = 0; i < src.children.size(); ++i) {
    uint32_t child = src.children[i];
    if (q.steps[child].axis == Axis::kDescendant) {
      cuts->push_back(child);
      continue;
    }
    uint32_t copied_child = CopyComponent(q, child, out, cuts, saw_result);
    // Re-read src/dst: recursion may have reallocated out->steps.
    QueryStep& dst = out->steps[copied];
    if (static_cast<int>(i) == q.steps[orig].main_child) {
      dst.main_child = static_cast<int>(dst.children.size());
    }
    dst.children.push_back(copied_child);
  }
  return copied;
}

/// Streams a pure twig query tree as SAX events (open/close per step; value
/// constraints as extra leaf children).
class QueryEventStream : public EventStream {
 public:
  QueryEventStream(const TwigQuery* q, const ValueHasher* values)
      : q_(q), values_(values) {
    Emit(q_->root);
    pos_ = 0;
  }

  bool Next(SaxEvent* event) override {
    if (pos_ >= events_.size()) return false;
    *event = events_[pos_++];
    return true;
  }

 private:
  void Emit(uint32_t step) {
    const QueryStep& s = q_->steps[step];
    events_.push_back(
        {SaxEvent::Kind::kOpen, s.label, NodeRef{0, step}});
    if (s.value_eq.has_value() && values_ != nullptr) {
      LabelId vl = values_->LabelFor(*s.value_eq);
      events_.push_back({SaxEvent::Kind::kOpen, vl, NodeRef{0, step}});
      events_.push_back({SaxEvent::Kind::kClose, vl, NodeRef{0, step}});
    }
    for (uint32_t c : s.children) Emit(c);
    events_.push_back(
        {SaxEvent::Kind::kClose, s.label, NodeRef{0, step}});
  }

  const TwigQuery* q_;
  const ValueHasher* values_;
  std::vector<SaxEvent> events_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<TwigQuery> DecomposeAtDescendantEdges(const TwigQuery& q) {
  std::vector<TwigQuery> parts;
  std::deque<uint32_t> pending{q.root};
  while (!pending.empty()) {
    uint32_t start = pending.front();
    pending.pop_front();
    TwigQuery part;
    std::vector<uint32_t> cuts;
    bool saw_result = false;
    part.result = 0;
    CopyComponent(q, start, &part, &cuts, &saw_result);
    part.root = 0;
    if (parts.empty()) {
      // The top component keeps the original root axis (a rooted query
      // stays rooted; pruning soundness depends on this).
      part.steps[0].axis = q.steps[q.root].axis;
    }
    if (!saw_result) {
      // The result step lives in another component; for pruning purposes
      // the component's deepest main-path step stands in.
      uint32_t r = part.root;
      while (part.steps[r].main_child >= 0) {
        r = part.steps[r].children[part.steps[r].main_child];
      }
      part.result = r;
    }
    parts.push_back(std::move(part));
    for (uint32_t cut : cuts) pending.push_back(cut);
  }
  return parts;
}

Result<BisimGraph> QueryToBisimGraph(const TwigQuery& q,
                                     const ValueHasher* values) {
  if (!q.IsPureTwig()) {
    return Status::InvalidArgument(
        "query has interior // axes; decompose before building a pattern");
  }
  if (q.HasWildcard()) {
    return Status::InvalidArgument(
        "wildcard steps have no label to weight; spectral probing is "
        "unavailable for this pattern");
  }
  for (const QueryStep& s : q.steps) {
    if (s.label == kInvalidLabel) {
      return Status::InvalidArgument(
          "query labels unresolved; call ResolveLabels first");
    }
  }
  QueryEventStream events(&q, values);
  BisimBuilder builder;
  return builder.Build(&events);
}

}  // namespace fix
