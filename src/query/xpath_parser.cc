#include "query/xpath_parser.h"

#include <cctype>

#include "common/metrics_registry.h"
#include "common/timer.h"
#include "common/trace.h"

namespace fix {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<TwigQuery> Parse() {
    TwigQuery q;
    uint32_t first;
    FIX_RETURN_IF_ERROR(ParsePath(&q, /*allow_leading_dot=*/false, &first,
                                  &q.result));
    q.root = first;
    SkipSpace();
    if (!AtEnd()) {
      return Status::ParseError("trailing characters in path expression");
    }
    if (q.steps.empty()) {
      return Status::ParseError("empty path expression");
    }
    return q;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  /// Parses a sequence of steps. `first` receives the first step's index and
  /// `last` the final (deepest main-path) step's index.
  Status ParsePath(TwigQuery* q, bool allow_leading_dot, uint32_t* first,
                   uint32_t* last) {
    SkipSpace();
    Axis axis;
    if (allow_leading_dot && text_.substr(pos_, 3) == ".//") {
      pos_ += 3;
      axis = Axis::kDescendant;
    } else if (Consume('/')) {
      axis = Consume('/') ? Axis::kDescendant : Axis::kChild;
    } else if (allow_leading_dot) {
      // Predicate paths may start with a bare name: child axis.
      axis = Axis::kChild;
    } else {
      return Status::ParseError("path must start with '/' or '//'");
    }

    uint32_t prev = UINT32_MAX;
    *first = UINT32_MAX;
    for (;;) {
      uint32_t step = UINT32_MAX;
      FIX_RETURN_IF_ERROR(ParseStep(q, axis, &step));
      if (prev == UINT32_MAX) {
        *first = step;
      } else {
        q->steps[prev].main_child =
            static_cast<int>(q->steps[prev].children.size());
        q->steps[prev].children.push_back(step);
      }
      prev = step;
      SkipSpace();
      if (Consume('/')) {
        axis = Consume('/') ? Axis::kDescendant : Axis::kChild;
        continue;
      }
      break;
    }
    *last = prev;
    return Status::OK();
  }

  Status ParseStep(TwigQuery* q, Axis axis, uint32_t* out) {
    SkipSpace();
    bool wildcard = false;
    std::string name;
    if (!AtEnd() && Peek() == '*') {
      ++pos_;
      wildcard = true;
      name = "*";
    } else if (AtEnd() || !IsNameChar(Peek()) ||
               std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Status::ParseError("expected a name test at position " +
                                std::to_string(pos_));
    } else {
      while (!AtEnd() && IsNameChar(Peek())) name.push_back(text_[pos_++]);
    }

    QueryStep step;
    step.name = std::move(name);
    step.wildcard = wildcard;
    step.axis = axis;
    uint32_t idx = static_cast<uint32_t>(q->steps.size());
    q->steps.push_back(std::move(step));

    // A direct value constraint: name="literal" (sugar for [.="literal"]
    // attached to this step; used inside predicates, e.g. [year="1998"]).
    SkipSpace();
    if (!AtEnd() && Peek() == '=') {
      ++pos_;
      std::string literal;
      FIX_RETURN_IF_ERROR(ParseLiteral(&literal));
      q->steps[idx].value_eq = std::move(literal);
    }

    // Predicates.
    SkipSpace();
    while (Consume('[')) {
      uint32_t pred_first, pred_last;
      FIX_RETURN_IF_ERROR(
          ParsePath(q, /*allow_leading_dot=*/true, &pred_first, &pred_last));
      SkipSpace();
      if (!AtEnd() && Peek() == '=') {
        ++pos_;
        std::string literal;
        FIX_RETURN_IF_ERROR(ParseLiteral(&literal));
        q->steps[pred_last].value_eq = std::move(literal);
        SkipSpace();
      }
      if (!Consume(']')) {
        return Status::ParseError("expected ']' at position " +
                                  std::to_string(pos_));
      }
      q->steps[idx].children.push_back(pred_first);
      SkipSpace();
    }
    *out = idx;
    return Status::OK();
  }

  Status ParseLiteral(std::string* out) {
    SkipSpace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Status::ParseError("expected a quoted literal at position " +
                                std::to_string(pos_));
    }
    char quote = text_[pos_++];
    while (!AtEnd() && Peek() != quote) out->push_back(text_[pos_++]);
    if (!Consume(quote)) return Status::ParseError("unterminated literal");
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<TwigQuery> ParseXPath(std::string_view text) {
  static Counter* compiles = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.xpath.compile.count", "ops", "XPath expressions compiled");
  static Histogram* latency = MetricsRegistry::Instance().FindOrCreateHistogram(
      "fix.xpath.compile_us", "us", "XPath compile latency");
  TraceSpan span("xpath.compile");
  Timer timer;
  Parser parser(text);
  auto result = parser.Parse();
  compiles->Increment();
  latency->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
  span.AddAttr("ok", static_cast<uint64_t>(result.ok() ? 1 : 0));
  return result;
}

}  // namespace fix
