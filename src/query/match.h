// TwigMatcher: navigational twig-query evaluation over a Document.
//
// This plays the role of the NoK physical operator [32] in the paper's
// architecture (Figure 3): it is the *refinement* query processor run on
// the candidates FIX returns, and — run over every document without an
// index — the no-index baseline of Section 6.3.
//
// Semantics follow Definition 2: the query root binds under the document
// node; / steps bind to children, // steps to descendants; a step matches a
// node iff labels agree, its value constraint (if any) equals the node's
// text content, and every child step is satisfied below. Matching is
// memoized per (node, step), making evaluation linear in |doc|·|query| per
// call.

#ifndef FIX_QUERY_MATCH_H_
#define FIX_QUERY_MATCH_H_

#include <cstdint>
#include <vector>

#include "query/twig_query.h"
#include "xml/document.h"

namespace fix {

class TwigMatcher {
 public:
  explicit TwigMatcher(const Document* doc) : doc_(doc) {}

  /// All bindings of the result step, document-node context. Sorted,
  /// deduplicated.
  std::vector<NodeId> Evaluate(const TwigQuery& q);

  /// True iff the query has at least one match (existential test).
  bool Exists(const TwigQuery& q);

  /// Result bindings when `context` is forced to bind the root step
  /// (Algorithm 2: after index lookup the leading //-axis is replaced by /
  /// and evaluation starts at each candidate element).
  std::vector<NodeId> EvaluateAt(NodeId context, const TwigQuery& q);

  /// Existential form of EvaluateAt.
  bool ExistsAt(NodeId context, const TwigQuery& q);

  /// Batched form of EvaluateAt: evaluates once with the root-step frontier
  /// seeded from `contexts` (the paper's architecture — the pruned input
  /// set feeds a single NoK pass). Equivalent to the union of per-context
  /// EvaluateAt results, but without re-walking overlapping subtrees.
  std::vector<NodeId> EvaluateAtMany(const std::vector<NodeId>& contexts,
                                     const TwigQuery& q);

  /// EvaluateAt/ExistsAt share the (node, step) memo across candidates of
  /// one query for efficiency; call this before switching to a different
  /// query on the same matcher. Evaluate()/Exists() reset automatically.
  void NewQuery() { memo_.clear(); }

  /// Work counter: nodes touched by matching since construction (the
  /// implementation-independent cost proxy used in reports).
  uint64_t nodes_visited() const { return nodes_visited_; }

 private:
  /// Label + value + *predicate* children (main-path continuation excluded).
  bool SatisfiesLocal(NodeId node, const TwigQuery& q, uint32_t step);

  /// Full subtree satisfaction including the main-path child.
  bool Satisfies(NodeId node, const TwigQuery& q, uint32_t step);

  bool ExistsUnder(NodeId node, const TwigQuery& q, uint32_t step, Axis axis);

  std::vector<NodeId> MainPathFrontier(std::vector<NodeId> frontier,
                                       const TwigQuery& q);

  const Document* doc_;
  /// Per-step memo over nodes: 0 = unknown, 1 = satisfied, 2 = not.
  /// Flat arrays beat a hash map by several times in the matching inner
  /// loop; lazily allocated per step on first touch.
  std::vector<std::vector<uint8_t>> memo_;
  uint64_t nodes_visited_ = 0;
};

}  // namespace fix

#endif  // FIX_QUERY_MATCH_H_
