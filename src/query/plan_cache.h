// PlanCache: a small sharded cache of compiled query plans (XPath string →
// label-resolved TwigQuery), so repeated queries skip parse + resolve.
//
// Caching a *resolved* plan is sound because the LabelTable is append-only:
// a label id, once assigned, never changes or disappears, so a TwigQuery
// resolved against the corpus yesterday still means the same thing today.
// (Adding documents can introduce new labels, but cannot re-map old ones.)
//
// Thread-safety: fully thread-safe. Keys hash to one of kNumShards
// lock-striped partitions; Lookup/Insert take only that shard's mutex.
// Eviction is FIFO per shard — plans are tiny and re-compiling is cheap, so
// recency tracking isn't worth the extra bookkeeping on the hit path.
//
// Hits/misses/evictions feed the process-wide MetricsRegistry under
// `fix.query.plan_cache.*` (see docs/OBSERVABILITY.md).

#ifndef FIX_QUERY_PLAN_CACHE_H_
#define FIX_QUERY_PLAN_CACHE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "query/twig_query.h"

namespace fix {

class PlanCache {
 public:
  static constexpr size_t kNumShards = 8;
  static constexpr size_t kDefaultShardCapacity = 64;

  explicit PlanCache(size_t shard_capacity = kDefaultShardCapacity)
      : shard_capacity_(shard_capacity == 0 ? 1 : shard_capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `xpath`, or nullopt on a miss.
  std::optional<TwigQuery> Lookup(const std::string& xpath);

  /// Caches `plan` under `xpath`, evicting the shard's oldest entry when
  /// the shard is full. Inserting an already-present key is a no-op (the
  /// first compilation wins; both plans are identical anyway).
  void Insert(const std::string& xpath, const TwigQuery& plan);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };
  /// Snapshot of the counters plus the current entry count.
  Stats GetStats() const;

  /// Drops every cached plan (counters keep their values).
  void Clear();

 private:
  struct Shard {
    // LOCK-ORDER: 7 PlanCache::Shard::mu
    mutable Mutex mu;
    std::unordered_map<std::string, TwigQuery> plans FIX_GUARDED_BY(mu);
    std::deque<std::string> fifo FIX_GUARDED_BY(mu);  // front = oldest
    uint64_t hits FIX_GUARDED_BY(mu) = 0;
    uint64_t misses FIX_GUARDED_BY(mu) = 0;
    uint64_t evictions FIX_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const std::string& xpath) {
    return shards_[std::hash<std::string>{}(xpath) % kNumShards];
  }

  size_t shard_capacity_;
  std::array<Shard, kNumShards> shards_;
};

}  // namespace fix

#endif  // FIX_QUERY_PLAN_CACHE_H_
