// Query compilation for index lookup:
//  * decomposition of a general path expression into pure twig queries at
//    interior //-edges (Section 5), and
//  * conversion of a pure twig query into its bisimulation graph — the twig
//    pattern whose matrix/eigenvalues form the probe key (Algorithm 2,
//    CONVERT-TO-BISIM-GRAPH).

#ifndef FIX_QUERY_COMPILE_H_
#define FIX_QUERY_COMPILE_H_

#include <vector>

#include "common/result.h"
#include "graph/bisim_graph.h"
#include "query/twig_query.h"
#include "xml/value_hash.h"

namespace fix {

/// Splits `q` at every interior //-edge. The first element is the *top*
/// sub-twig (rooted at q's root); it is the one used for pruning against a
/// depth-limited index (Section 5: descendant sub-twigs give no pruning
/// power there). Every returned query is a pure twig with a // root axis.
std::vector<TwigQuery> DecomposeAtDescendantEdges(const TwigQuery& q);

/// Builds the bisimulation graph (twig pattern) of a pure twig query.
/// Value-equality constraints become hashed value-label children when a
/// hasher is supplied; they are ignored otherwise (structural-only probes
/// never produce false negatives, just weaker pruning). Fails on a query
/// with interior // axes — decompose first.
[[nodiscard]] Result<BisimGraph> QueryToBisimGraph(const TwigQuery& q,
                                     const ValueHasher* values = nullptr);

}  // namespace fix

#endif  // FIX_QUERY_COMPILE_H_
