#include "query/plan_cache.h"

#include "common/metrics_registry.h"

namespace fix {

namespace {

// Process-wide mirrors of the per-cache counters (docs/OBSERVABILITY.md).
Counter& CacheHits() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.query.plan_cache.hits", "ops",
      "query compilations served from the plan cache");
  return *c;
}
Counter& CacheMisses() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.query.plan_cache.misses", "ops",
      "plan-cache lookups that required a fresh compile");
  return *c;
}
Counter& CacheEvictions() {
  static Counter* c = MetricsRegistry::Instance().FindOrCreateCounter(
      "fix.query.plan_cache.evictions", "ops",
      "plans dropped from a full plan-cache shard (FIFO)");
  return *c;
}

}  // namespace

std::optional<TwigQuery> PlanCache::Lookup(const std::string& xpath) {
  Shard& shard = ShardFor(xpath);
  MutexLock lock(shard.mu);
  auto it = shard.plans.find(xpath);
  if (it == shard.plans.end()) {
    ++shard.misses;
    CacheMisses().Increment();
    return std::nullopt;
  }
  ++shard.hits;
  CacheHits().Increment();
  return it->second;
}

void PlanCache::Insert(const std::string& xpath, const TwigQuery& plan) {
  Shard& shard = ShardFor(xpath);
  MutexLock lock(shard.mu);
  if (shard.plans.count(xpath) > 0) return;
  if (shard.plans.size() >= shard_capacity_) {
    shard.plans.erase(shard.fifo.front());
    shard.fifo.pop_front();
    ++shard.evictions;
    CacheEvictions().Increment();
  }
  shard.plans.emplace(xpath, plan);
  shard.fifo.push_back(xpath);
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.entries += shard.plans.size();
  }
  return stats;
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.plans.clear();
    shard.fifo.clear();
  }
}

}  // namespace fix
