#include "query/twig_query.h"

#include <algorithm>

namespace fix {

namespace {

int DepthRec(const TwigQuery& q, uint32_t step) {
  int deepest = 0;
  for (uint32_t c : q.steps[step].children) {
    deepest = std::max(deepest, DepthRec(q, c));
  }
  // A value constraint adds a text-node level to the pattern.
  if (q.steps[step].value_eq.has_value()) deepest = std::max(deepest, 1);
  return deepest + 1;
}

}  // namespace

int TwigQuery::Depth() const {
  if (steps.empty()) return 0;
  return DepthRec(*this, root);
}

bool TwigQuery::IsPureTwig() const {
  for (uint32_t i = 0; i < steps.size(); ++i) {
    if (i != root && steps[i].axis == Axis::kDescendant) return false;
  }
  return true;
}

bool TwigQuery::HasValuePredicates() const {
  for (const QueryStep& s : steps) {
    if (s.value_eq.has_value()) return true;
  }
  return false;
}

void TwigQuery::ResolveLabels(LabelTable* labels) {
  for (QueryStep& s : steps) {
    if (s.wildcard) continue;  // wildcards bind no label
    s.label = labels->Intern(s.name);
  }
}

bool TwigQuery::HasWildcard() const {
  for (const QueryStep& s : steps) {
    if (s.wildcard) return true;
  }
  return false;
}

void TwigQuery::AppendStep(uint32_t step, bool is_root,
                           std::string* out) const {
  const QueryStep& s = steps[step];
  *out += (s.axis == Axis::kDescendant) ? "//" : "/";
  *out += s.name;
  if (s.value_eq.has_value()) {
    *out += "=\"" + *s.value_eq + "\"";
  }
  (void)is_root;
  // Predicates first (all children except the main-path continuation).
  for (size_t i = 0; i < s.children.size(); ++i) {
    if (static_cast<int>(i) == s.main_child) continue;
    *out += "[";
    std::string inner;
    AppendStep(s.children[i], false, &inner);
    // Inside a predicate, a leading child axis is written without '/'.
    if (!inner.empty() && inner[0] == '/' && inner[1] != '/') {
      inner.erase(0, 1);
    } else if (inner.size() > 1 && inner[0] == '/' && inner[1] == '/') {
      inner = ".//" + inner.substr(2);
    }
    *out += inner + "]";
  }
  if (s.main_child >= 0) {
    AppendStep(s.children[s.main_child], false, out);
  }
}

std::string TwigQuery::ToString() const {
  if (steps.empty()) return "";
  std::string out;
  AppendStep(root, true, &out);
  return out;
}

}  // namespace fix
