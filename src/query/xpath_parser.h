// Parser for the XPath fragment FIX evaluates (Sections 2.1, 4.6, 5):
//
//   path       := ('/' | '//') step (('/' | '//') step)*
//   step       := Name predicate*
//   predicate  := '[' relpath ('=' literal)? ']'
//   relpath    := ('.//')? step (('/' | '//') step)*
//   literal    := '"' ... '"' | "'" ... "'"
//
// Examples from the paper, all accepted:
//   //article[author]/ee
//   //open_auction[.//bidder[name][email]]/price
//   //inproceedings[year="1998"][title]/author

#ifndef FIX_QUERY_XPATH_PARSER_H_
#define FIX_QUERY_XPATH_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "query/twig_query.h"

namespace fix {

/// Parses `text` into a TwigQuery. Labels are left unresolved (call
/// TwigQuery::ResolveLabels before evaluation).
[[nodiscard]] Result<TwigQuery> ParseXPath(std::string_view text);

}  // namespace fix

#endif  // FIX_QUERY_XPATH_PARSER_H_
