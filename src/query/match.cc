#include "query/match.h"

#include <algorithm>

namespace fix {

bool TwigMatcher::Satisfies(NodeId node, const TwigQuery& q, uint32_t step) {
  if (memo_.size() < q.steps.size()) memo_.resize(q.steps.size());
  std::vector<uint8_t>& m = memo_[step];
  if (m.empty()) m.assign(doc_->num_nodes(), 0);
  if (m[node] != 0) return m[node] == 1;
  ++nodes_visited_;

  const QueryStep& s = q.steps[step];
  bool ok = doc_->IsElement(node) &&
            (s.wildcard || doc_->label(node) == s.label);
  if (ok && s.value_eq.has_value()) {
    ok = doc_->ChildText(node) == *s.value_eq;
  }
  if (ok) {
    for (uint32_t child_step : s.children) {
      if (!ExistsUnder(node, q, child_step, q.steps[child_step].axis)) {
        ok = false;
        break;
      }
    }
  }
  m[node] = ok ? 1 : 2;
  return ok;
}

bool TwigMatcher::ExistsUnder(NodeId node, const TwigQuery& q, uint32_t step,
                              Axis axis) {
  if (axis == Axis::kChild) {
    for (NodeId c = doc_->first_child(node); c != kInvalidNode;
         c = doc_->next_sibling(c)) {
      if (doc_->IsElement(c) && Satisfies(c, q, step)) return true;
    }
    return false;
  }
  // Descendant axis: depth-first over the strict descendants.
  std::vector<NodeId> stack;
  for (NodeId c = doc_->first_child(node); c != kInvalidNode;
       c = doc_->next_sibling(c)) {
    if (doc_->IsElement(c)) stack.push_back(c);
  }
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (Satisfies(n, q, step)) return true;
    for (NodeId c = doc_->first_child(n); c != kInvalidNode;
         c = doc_->next_sibling(c)) {
      if (doc_->IsElement(c)) stack.push_back(c);
    }
  }
  return false;
}

bool TwigMatcher::SatisfiesLocal(NodeId node, const TwigQuery& q,
                                 uint32_t step) {
  ++nodes_visited_;
  const QueryStep& s = q.steps[step];
  if (!doc_->IsElement(node)) return false;
  if (!s.wildcard && doc_->label(node) != s.label) return false;
  if (s.value_eq.has_value() && doc_->ChildText(node) != *s.value_eq) {
    return false;
  }
  for (size_t i = 0; i < s.children.size(); ++i) {
    if (static_cast<int>(i) == s.main_child) continue;
    uint32_t child_step = s.children[i];
    if (!ExistsUnder(node, q, child_step, q.steps[child_step].axis)) {
      return false;
    }
  }
  return true;
}

std::vector<NodeId> TwigMatcher::MainPathFrontier(std::vector<NodeId> frontier,
                                                  const TwigQuery& q) {
  uint32_t step = q.root;
  while (!frontier.empty() && q.steps[step].main_child >= 0) {
    uint32_t next = q.steps[step].children[q.steps[step].main_child];
    Axis axis = q.steps[next].axis;
    std::vector<NodeId> expanded;
    for (NodeId node : frontier) {
      if (axis == Axis::kChild) {
        for (NodeId c = doc_->first_child(node); c != kInvalidNode;
             c = doc_->next_sibling(c)) {
          if (doc_->IsElement(c) && SatisfiesLocal(c, q, next)) {
            expanded.push_back(c);
          }
        }
      } else {
        std::vector<NodeId> stack;
        for (NodeId c = doc_->first_child(node); c != kInvalidNode;
             c = doc_->next_sibling(c)) {
          if (doc_->IsElement(c)) stack.push_back(c);
        }
        while (!stack.empty()) {
          NodeId n = stack.back();
          stack.pop_back();
          if (SatisfiesLocal(n, q, next)) expanded.push_back(n);
          for (NodeId c = doc_->first_child(n); c != kInvalidNode;
               c = doc_->next_sibling(c)) {
            if (doc_->IsElement(c)) stack.push_back(c);
          }
        }
      }
    }
    std::sort(expanded.begin(), expanded.end());
    expanded.erase(std::unique(expanded.begin(), expanded.end()),
                   expanded.end());
    frontier = std::move(expanded);
    step = next;
  }
  return frontier;
}

std::vector<NodeId> TwigMatcher::Evaluate(const TwigQuery& q) {
  memo_.clear();
  std::vector<NodeId> frontier;
  const QueryStep& root = q.steps[q.root];
  if (root.axis == Axis::kChild) {
    for (NodeId c = doc_->first_child(0); c != kInvalidNode;
         c = doc_->next_sibling(c)) {
      if (doc_->IsElement(c) && SatisfiesLocal(c, q, q.root)) {
        frontier.push_back(c);
      }
    }
  } else {
    for (NodeId n = 1; n < doc_->num_nodes(); ++n) {
      if (doc_->IsElement(n) && SatisfiesLocal(n, q, q.root)) {
        frontier.push_back(n);
      }
    }
  }
  return MainPathFrontier(std::move(frontier), q);
}

bool TwigMatcher::Exists(const TwigQuery& q) { return !Evaluate(q).empty(); }

std::vector<NodeId> TwigMatcher::EvaluateAt(NodeId context,
                                            const TwigQuery& q) {
  std::vector<NodeId> frontier;
  if (SatisfiesLocal(context, q, q.root)) frontier.push_back(context);
  return MainPathFrontier(std::move(frontier), q);
}

bool TwigMatcher::ExistsAt(NodeId context, const TwigQuery& q) {
  return !EvaluateAt(context, q).empty();
}

std::vector<NodeId> TwigMatcher::EvaluateAtMany(
    const std::vector<NodeId>& contexts, const TwigQuery& q) {
  std::vector<NodeId> frontier;
  frontier.reserve(contexts.size());
  for (NodeId context : contexts) {
    if (SatisfiesLocal(context, q, q.root)) frontier.push_back(context);
  }
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());
  return MainPathFrontier(std::move(frontier), q);
}

}  // namespace fix
