// TwigQuery: the query tree of a path expression (Section 2.1).
//
// Steps form a tree: each step has a NameTest, the axis connecting it to
// its parent (/ or //), optional branching predicates (child steps off the
// main path), and an optional value-equality constraint ([tag = "..."],
// Section 4.6). The last step on the main path is the *result step* — the
// nodes it binds to are the query answer.
//
// Definition 1's pure twig queries have / axes everywhere except the root;
// general path expressions with interior // axes are decomposed into pure
// twigs for index lookup (Section 5, decompose.h).

#ifndef FIX_QUERY_TWIG_QUERY_H_
#define FIX_QUERY_TWIG_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "xml/label_table.h"

namespace fix {

enum class Axis : uint8_t { kChild, kDescendant };

struct QueryStep {
  std::string name;                  ///< NameTest as written ("*" = wildcard)
  LabelId label = kInvalidLabel;     ///< resolved against the corpus labels
  bool wildcard = false;             ///< NameTest "*": matches any element
  Axis axis = Axis::kChild;          ///< axis from parent to this step
  std::vector<uint32_t> children;    ///< all child steps (predicates + main)
  /// Index (within children) of the main-path continuation, or -1 if this
  /// step ends the main path.
  int main_child = -1;
  /// Value-equality constraint on this step's text content.
  std::optional<std::string> value_eq;
};

class TwigQuery {
 public:
  std::vector<QueryStep> steps;
  uint32_t root = 0;    ///< first step (child/descendant of document node)
  uint32_t result = 0;  ///< last step of the main path

  /// Depth of the query tree (root step = level 1).
  int Depth() const;

  /// True iff every non-root axis is / (Definition 1).
  bool IsPureTwig() const;

  /// True iff any step carries a value-equality constraint.
  bool HasValuePredicates() const;

  /// True iff any step is a wildcard NameTest. Wildcards disable spectral
  /// probing (a wildcard edge has no label pair to weight), so the index
  /// degrades to label-only or full-scan evaluation for such queries.
  bool HasWildcard() const;

  /// Resolves every step's label against `labels`, interning unseen names
  /// (an unseen name can never match, but interning keeps the edge-weight
  /// encoding total).
  void ResolveLabels(LabelTable* labels);

  /// Serializes back to XPath-like text (canonical form, for reports).
  std::string ToString() const;

 private:
  void AppendStep(uint32_t step, bool is_root, std::string* out) const;
};

}  // namespace fix

#endif  // FIX_QUERY_TWIG_QUERY_H_
