#include "graph/bisim_builder.h"

#include <algorithm>

#include "common/bytes.h"

namespace fix {

size_t BisimBuilder::SignatureHash::operator()(const Signature& sig) const {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  h = HashMix64(h, sig.label);
  for (BisimVertexId c : sig.children) h = HashMix64(h, c);
  return static_cast<size_t>(h);
}

Result<BisimGraph> BisimBuilder::Build(EventStream* events,
                                       const CloseCallback& on_close) {
  BisimGraph graph;
  SignatureMap sig_map;

  struct StackEntry {
    Signature sig;
    NodeRef start_ptr;
  };
  std::vector<StackEntry> path_stack;

  SaxEvent event;
  while (events->Next(&event)) {
    if (event.kind == SaxEvent::Kind::kOpen) {
      StackEntry entry;
      entry.sig.label = event.label;
      entry.start_ptr = event.ref;
      path_stack.push_back(std::move(entry));
      continue;
    }
    // Closing event.
    if (path_stack.empty()) {
      return Status::ParseError("event stream: close without matching open");
    }
    StackEntry entry = std::move(path_stack.back());
    path_stack.pop_back();
    // Canonicalize the child set.
    std::sort(entry.sig.children.begin(), entry.sig.children.end());
    entry.sig.children.erase(
        std::unique(entry.sig.children.begin(), entry.sig.children.end()),
        entry.sig.children.end());

    BisimVertexId vertex;
    auto it = sig_map.find(entry.sig);
    if (it != sig_map.end()) {
      vertex = it->second;
    } else {
      BisimVertex v;
      v.label = entry.sig.label;
      v.children = entry.sig.children;
      v.depth = 1;
      for (BisimVertexId c : v.children) {
        v.depth = std::max(v.depth, graph.vertex(c).depth + 1);
      }
      vertex = graph.AddVertex(std::move(v));
      sig_map.emplace(std::move(entry.sig), vertex);
    }

    bool is_root = path_stack.empty();
    if (is_root) {
      graph.set_root(vertex);
    } else {
      path_stack.back().sig.children.push_back(vertex);
    }
    if (on_close) {
      FIX_RETURN_IF_ERROR(on_close(&graph, vertex, entry.start_ptr, is_root));
    }
  }
  if (!path_stack.empty()) {
    return Status::ParseError("event stream: unclosed elements at end");
  }
  return graph;
}

Result<BisimGraph> BuildBisimGraph(const Document& doc, uint32_t doc_id,
                                   const ValueHasher* values) {
  DocumentEventStream stream(&doc, doc_id, values);
  BisimBuilder builder;
  return builder.Build(&stream);
}

}  // namespace fix
