// BisimGraph: the (downward) bisimulation graph of Definition 3.
//
// Two XML nodes map to the same vertex iff their subtrees are structurally
// identical (same label, same set of child vertices). The graph of a tree is
// a DAG; it is the object FIX extracts spectral features from, because it
// preserves existential twig matching (Theorem 2) while being exponentially
// smaller than the tree for repetitive data.

#ifndef FIX_GRAPH_BISIM_GRAPH_H_
#define FIX_GRAPH_BISIM_GRAPH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "xml/label_table.h"

namespace fix {

using BisimVertexId = uint32_t;
inline constexpr BisimVertexId kInvalidVertex = UINT32_MAX;

/// Cached spectral feature pair (Algorithm 1's u.eigs memo): λ_max and λ_min
/// of the depth-limited subpattern rooted at a vertex.
struct EigPair {
  double lambda_max = 0;
  double lambda_min = 0;
  /// Second-largest eigenvalue magnitude — the optional extension feature
  /// (Section 8 "finding more features"); 0 when not computed.
  double lambda2 = 0;
};

struct BisimVertex {
  LabelId label = kInvalidLabel;
  /// Child vertex ids, sorted ascending, deduplicated. Sorted order makes
  /// signatures canonical and traversals deterministic.
  std::vector<BisimVertexId> children;
  /// 1 + max depth of children (leaves have depth 1). Because children are
  /// created before parents (bottom-up construction), this is exact.
  int depth = 1;
  /// GEN-SUBPATTERN memo: set once the subpattern rooted here has been
  /// enumerated and its features computed (Algorithm 1, BTREE-INSERT line 1).
  std::optional<EigPair> eigs;
};

class BisimGraph {
 public:
  BisimGraph() = default;
  BisimGraph(BisimGraph&&) = default;
  BisimGraph& operator=(BisimGraph&&) = default;
  BisimGraph(const BisimGraph&) = delete;
  BisimGraph& operator=(const BisimGraph&) = delete;

  const BisimVertex& vertex(BisimVertexId id) const { return vertices_[id]; }
  BisimVertex& vertex(BisimVertexId id) { return vertices_[id]; }

  size_t num_vertices() const { return vertices_.size(); }

  size_t num_edges() const {
    size_t n = 0;
    for (const auto& v : vertices_) n += v.children.size();
    return n;
  }

  BisimVertexId root() const { return root_; }
  void set_root(BisimVertexId id) { root_ = id; }

  /// Maximum depth of the whole graph (the paper's G.dep).
  int max_depth() const {
    return root_ == kInvalidVertex ? 0 : vertices_[root_].depth;
  }

  BisimVertexId AddVertex(BisimVertex v) {
    vertices_.push_back(std::move(v));
    return static_cast<BisimVertexId>(vertices_.size() - 1);
  }

 private:
  std::vector<BisimVertex> vertices_;
  BisimVertexId root_ = kInvalidVertex;
};

}  // namespace fix

#endif  // FIX_GRAPH_BISIM_GRAPH_H_
