// BisimBuilder: single-pass construction of a bisimulation graph from a SAX
// event stream — Algorithm 1's CONSTRUCT-ENTRIES skeleton.
//
// A PathStack of signatures mirrors the open-element path. On every closing
// event the popped signature (label + set of resolved child vertices) is
// hash-consed: an existing vertex is reused, otherwise one is created. The
// optional per-close callback is the hook Algorithm 1 uses for
// GEN-SUBPATTERN / BTREE-INSERT; it receives the resolved vertex and the
// element's primary-storage pointer.

#ifndef FIX_GRAPH_BISIM_BUILDER_H_
#define FIX_GRAPH_BISIM_BUILDER_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/bisim_graph.h"
#include "xml/sax.h"

namespace fix {

class BisimBuilder {
 public:
  /// Called once per closing event, after the element's bisimulation vertex
  /// is known. `is_root` is true for the stream's outermost element.
  using CloseCallback =
      std::function<Status(BisimGraph* graph, BisimVertexId vertex,
                           NodeRef start_ptr, bool is_root)>;

  /// Consumes `events` to completion and returns the bisimulation graph.
  /// The callback may be null.
  [[nodiscard]] Result<BisimGraph> Build(EventStream* events,
                           const CloseCallback& on_close = nullptr);

 private:
  struct Signature {
    LabelId label;
    std::vector<BisimVertexId> children;  // sorted + deduplicated at lookup

    bool operator==(const Signature&) const = default;
  };

  struct SignatureHash {
    size_t operator()(const Signature& sig) const;
  };

  using SignatureMap =
      std::unordered_map<Signature, BisimVertexId, SignatureHash>;
};

/// Convenience: builds the purely structural bisimulation graph of a
/// document subtree.
[[nodiscard]] Result<BisimGraph> BuildBisimGraph(const Document& doc, uint32_t doc_id = 0,
                                   const ValueHasher* values = nullptr);

}  // namespace fix

#endif  // FIX_GRAPH_BISIM_BUILDER_H_
