// FbGraph: the forward-and-backward (F&B) bisimulation graph, the covering
// index of Kaushik et al. [18] and the disk-based baseline of Wang et al.
// [27] the paper compares against.
//
// Two element nodes share an F&B class iff they have the same label, their
// parents share a class, and their child class sets coincide — computed here
// by iterated partition refinement to a fixpoint. Unlike the (downward)
// bisimulation graph, F&B classes are also backward-stable, which is what
// makes the graph a covering index for branching path queries.

#ifndef FIX_GRAPH_FB_GRAPH_H_
#define FIX_GRAPH_FB_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "xml/document.h"
#include "xml/label_table.h"

namespace fix {

using FbClassId = uint32_t;

struct FbClass {
  LabelId label = kInvalidLabel;
  std::vector<FbClassId> children;  // sorted, deduplicated
  std::vector<FbClassId> parents;   // sorted, deduplicated
  std::vector<NodeRef> extent;      // XML nodes in this class
  /// Distance from the document node. F&B classes are depth-uniform
  /// (backward stability pins every member to the same level), so the class
  /// graph is a DAG layered by depth — query evaluation exploits this.
  int depth = 0;
};

class FbGraph {
 public:
  /// Builds the F&B graph of a set of documents (structural: element nodes
  /// only). Document indices in the span are used as NodeRef doc ids.
  [[nodiscard]] static Result<FbGraph> Build(const std::vector<const Document*>& docs);

  const FbClass& cls(FbClassId id) const { return classes_[id]; }
  size_t num_classes() const { return classes_.size(); }

  size_t num_edges() const {
    size_t n = 0;
    for (const auto& c : classes_) n += c.children.size();
    return n;
  }

  /// Classes of the per-document synthetic document nodes (entry points for
  /// rooted navigation).
  const std::vector<FbClassId>& document_classes() const {
    return document_classes_;
  }

  /// All classes carrying a given label (the label index every F&B
  /// implementation keeps for `//label` entry points).
  const std::vector<FbClassId>& ClassesWithLabel(LabelId label) const;

  /// Total extent entries (equals the number of element nodes + document
  /// nodes indexed).
  size_t TotalExtent() const {
    size_t n = 0;
    for (const auto& c : classes_) n += c.extent.size();
    return n;
  }

  /// Approximate serialized size in bytes (for Table 1-style reporting):
  /// class headers + edges + extents.
  uint64_t ApproxSizeBytes() const;

 private:
  std::vector<FbClass> classes_;
  std::vector<FbClassId> document_classes_;
  std::vector<std::vector<FbClassId>> by_label_;  // label -> classes
  std::vector<FbClassId> empty_;
};

}  // namespace fix

#endif  // FIX_GRAPH_FB_GRAPH_H_
