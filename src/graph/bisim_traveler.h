// BisimTraveler (Algorithm 1, GEN-SUBPATTERN): replays the subgraph of a
// bisimulation graph rooted at a vertex, limited to a given depth, as a SAX
// event stream.
//
// The depth-limited subgraph is generally NOT itself a bisimulation graph
// (truncation re-introduces structural repetition — the paper's bib example
// in Section 4.4), so GEN-SUBPATTERN feeds these events back through
// BisimBuilder to obtain a proper bisimulation graph of the k-pattern.

#ifndef FIX_GRAPH_BISIM_TRAVELER_H_
#define FIX_GRAPH_BISIM_TRAVELER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/bisim_builder.h"
#include "graph/bisim_graph.h"
#include "xml/sax.h"

namespace fix {

class BisimTraveler : public EventStream {
 public:
  /// Streams the expansion of `start` down to `depth_limit` levels (the
  /// start vertex is level 1). depth_limit <= 0 means unlimited, which is
  /// safe only because the graph is a DAG.
  BisimTraveler(const BisimGraph* graph, BisimVertexId start, int depth_limit)
      : graph_(graph), start_(start), depth_limit_(depth_limit) {}

  bool Next(SaxEvent* event) override;

 private:
  struct Frame {
    BisimVertexId vertex;
    size_t next_child;
    int level;
  };

  const BisimGraph* graph_;
  BisimVertexId start_;
  int depth_limit_;
  bool started_ = false;
  std::vector<Frame> stack_;
};

/// Size (in tree nodes) of the depth-limited expansion of `start`, computed
/// without materializing it; saturates at `cap`. Used to detect oversized
/// subpatterns (Section 6.1: such entries get the artificial [0, inf) range
/// instead of real eigenvalues).
uint64_t ExpandedPatternSize(const BisimGraph& graph, BisimVertexId start,
                             int depth_limit, uint64_t cap);

/// Builds the bisimulation graph of the depth-limited pattern rooted at
/// `start` (traveler + builder round trip).
[[nodiscard]] Result<BisimGraph> BuildDepthLimitedPattern(const BisimGraph& graph,
                                            BisimVertexId start,
                                            int depth_limit);

}  // namespace fix

#endif  // FIX_GRAPH_BISIM_TRAVELER_H_
